module gompresso

go 1.24
