#!/usr/bin/env bash
# Chaos smoke test for `gompresso serve` (CI: the chaos-smoke job; also
# runs locally from the repo root). Starts the daemon with a fault
# script injected (-fault: EIO + latency) plus one genuinely corrupt
# object, and checks the failure-domain acceptance criteria end to end:
#
#   - faulted paths answer 502/503 — the daemon never hangs or dies,
#   - the healthy object stays byte-identical to `gompresso cat`
#     throughout, served concurrently with every failure mode,
#   - a queued request is shed with 503 + Retry-After once the limiter
#     stays full past -queue-wait,
#   - a corrupt object is quarantined: the repeat request answers its
#     502 at least 10x faster than the first (fail-fast, no re-decode,
#     confirmed via the sequential_decodes_total counter),
#   - SIGTERM flips /readyz to 503 (while /healthz stays 200) before
#     the listener closes, and the daemon exits 0.
set -euo pipefail

work=$(mktemp -d)
srv_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill -9 "$srv_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

bin="$work/gompresso"
go build -o "$bin" ./cmd/gompresso

# Fixture: one healthy indexed container (the control), two gzip objects
# the fault script will break (EIO past the header; slow reads), and one
# genuinely corrupt object — a large gzip cut short at 90%, so its first
# decode burns real work before failing and the quarantined repeat has
# something to be 10x faster than.
root="$work/root"; mkdir "$root"
cat ./*.go internal/*/*.go > "$work/corpus.txt"
"$bin" compress -index -block 64 "$work/corpus.txt" "$root/healthy.gpz" 2>/dev/null
gzip -c "$work/corpus.txt" > "$root/flaky.gz"
gzip -c "$work/corpus.txt" > "$root/slow.gz"
gzip -c "$work/corpus.txt" > "$root/slow2.gz"
for _ in $(seq 1 60); do cat "$work/corpus.txt"; done > "$work/big.txt"
gzip -c "$work/big.txt" > "$work/big.gz"
gsize=$(wc -c < "$work/big.gz" | tr -d ' ')
head -c $((gsize * 9 / 10)) "$work/big.gz" > "$root/corrupt.gz"

addr=127.0.0.1:18527
"$bin" serve -addr "$addr" -root "$root" -cache 16 -max-inflight 1 \
  -queue-wait 200ms -request-timeout 30s -quarantine-ttl 60s \
  -drain-wait 1s -quiet \
  -fault 'flaky.gz:eio@4096 ; slow.gz:latency=50ms ; slow2.gz:latency=250ms' 2>"$work/serve.log" &
srv_pid=$!
for _ in $(seq 1 100); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
[ "$(curl -sf "http://$addr/healthz")" = "ok" ]
[ "$(curl -sf "http://$addr/readyz")" = "ready" ]

alive() { kill -0 "$srv_pid" 2>/dev/null || { echo "FAIL: daemon died ($1)"; cat "$work/serve.log"; exit 1; }; }
status_of() { curl -s -o /dev/null -w '%{http_code}' --max-time 60 "http://$addr/$1"; }
metric() { curl -sf "http://$addr/metrics?format=json" | grep -o "\"$1\": [0-9.]*" | cut -d' ' -f2; }

# The healthy control must serve byte-identical to `gompresso cat`,
# checked between every failure probe below.
check_healthy() {
  curl -sf --max-time 60 "http://$addr/healthy.gpz" > "$work/got"
  cmp "$work/got" "$work/want_healthy" || { echo "FAIL: healthy object corrupted ($1)"; exit 1; }
}
"$bin" cat "$root/healthy.gpz" > "$work/want_healthy"
check_healthy baseline

# 1. EIO object: every request must come back a clean 502 — bounded
# time (the in-request retries back off and give up), process alive.
for i in 1 2 3; do
  code=$(status_of flaky.gz)
  [ "$code" = "502" ] || { echo "FAIL: flaky.gz want 502, got $code"; exit 1; }
  alive "flaky.gz probe $i"
  check_healthy "after flaky.gz probe $i"
done

# 2. Latency object: degraded but correct — 200 and byte-identical.
curl -sf --max-time 120 "http://$addr/slow.gz" > "$work/got"
cmp "$work/got" "$work/corpus.txt" || { echo "FAIL: slow.gz served wrong bytes"; exit 1; }
alive "slow.gz"

# 2b. Attribution: the slow request must be in the /debug/requests ring,
# and its stage breakdown must blame source_read — the injected 50ms/read
# latency — as the dominant stage, so a tail spike points at the disk,
# not at decode or the cache.
curl -sf "http://$addr/debug/requests?n=64" > "$work/debug.json"
python3 - "$work/debug.json" <<'PY'
import json, sys
dump = json.load(open(sys.argv[1]))
slow = [r for r in dump.get("requests", []) if r["path"] == "/slow.gz"]
if not slow:
    sys.exit("slow.gz not present in /debug/requests")
r = max(slow, key=lambda r: r["dur_ms"])
stages = r.get("stages", {})
src = stages.get("source_read_us", 0)
if src < 40000:
    sys.exit("slow.gz source_read_us = %d, want >= 40000 (stages: %s)" % (src, stages))
worst = max(stages, key=stages.get)
if worst != "source_read_us":
    sys.exit("slow.gz dominant stage is %s, want source_read_us (stages: %s)" % (worst, stages))
PY
alive "attribution"

# 3. Load shedding: hold the single decode slot with a slow request,
# then a queued request must be shed with 503 + Retry-After within
# -queue-wait, not stall behind it. The holder must be an object no
# earlier step has touched: since the seek-index work, a full GET
# promotes a foreign object to the block cache, and a warmed object
# answers from cache without ever reading the faulted file — too fast
# to keep the slot occupied. slow2.gz is cold and sleeps 250ms per
# read, comfortably past -queue-wait.
curl -sf --max-time 120 "http://$addr/slow2.gz" > /dev/null &
slow_pid=$!
for _ in $(seq 1 200); do
  [ "$(metric inflight_requests)" -ge 1 ] 2>/dev/null && break
  sleep 0.02
done
shed_code=$(curl -s -o /dev/null -w '%{http_code}' -D "$work/shed.hdr" --max-time 10 "http://$addr/healthy.gpz")
wait "$slow_pid"
[ "$shed_code" = "503" ] || { echo "FAIL: queued request want 503, got $shed_code"; exit 1; }
grep -qi '^Retry-After:' "$work/shed.hdr" || { echo "FAIL: shed response missing Retry-After"; exit 1; }
[ "$(metric shed_total)" -ge 1 ] || { echo "FAIL: shed_total not incremented"; exit 1; }
alive "shedding"
check_healthy "after shedding (slot free again)"

# 4. Quarantine: the corrupt object's first request pays a real decode
# before its 502; repeats must fail fast — >= 10x faster, with the
# sequential-decode counter standing still.
t_first=$(curl -s -o /dev/null -w '%{time_total}' --max-time 120 "http://$addr/corrupt.gz")
code=$(status_of corrupt.gz) # repeat 1 (also timing warm-up)
[ "$code" = "502" ] || { echo "FAIL: corrupt.gz want 502, got $code"; exit 1; }
decodes_before=$(metric sequential_decodes_total)
t_repeat=$(curl -s -o /dev/null -w '%{time_total}' --max-time 10 "http://$addr/corrupt.gz")
decodes_after=$(metric sequential_decodes_total)
[ "$decodes_before" = "$decodes_after" ] || { echo "FAIL: quarantined repeat re-decoded ($decodes_before -> $decodes_after)"; exit 1; }
awk -v f="$t_first" -v r="$t_repeat" 'BEGIN { exit !(r * 10 <= f) }' || {
  echo "FAIL: quarantined repeat not 10x faster (first=${t_first}s repeat=${t_repeat}s)"; exit 1; }
[ "$(metric quarantined_total)" -ge 1 ] || { echo "FAIL: quarantined_total not incremented"; exit 1; }
alive "quarantine"
check_healthy "after quarantine"

# 5. Nothing panicked anywhere above.
[ "$(metric panics_total)" = "0" ] || { echo "FAIL: panics_total = $(metric panics_total)"; exit 1; }

# 6. Graceful drain: SIGTERM flips /readyz to 503 while /healthz stays
# 200 and the listener keeps answering through -drain-wait; then the
# daemon exits cleanly.
kill -TERM "$srv_pid"
ready_flipped=""
for _ in $(seq 1 50); do
  rc=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 "http://$addr/readyz" || true)
  if [ "$rc" = "503" ]; then ready_flipped=1; break; fi
  sleep 0.02
done
[ -n "$ready_flipped" ] || { echo "FAIL: /readyz never flipped to 503 during drain"; exit 1; }
hc=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 "http://$addr/healthz" || true)
[ "$hc" = "200" ] || { echo "FAIL: /healthz = $hc during drain, want 200"; exit 1; }
wait "$srv_pid" || { echo "FAIL: daemon exited non-zero after SIGTERM"; exit 1; }
srv_pid=""

echo "chaos smoke: OK (first=${t_first}s repeat=${t_repeat}s shed=$shed_code)"
