#!/usr/bin/env bash
# lint.sh — the repository's whole lint gate, runnable locally and in CI.
#
#   ./scripts/lint.sh            # go vet + gompressovet (hard failures)
#   LINT_EXTRA=1 ./scripts/lint.sh  # also staticcheck/govulncheck if installed
#
# gompressovet is the in-tree multichecker (cmd/gompressovet): five
# custom analyzers enforcing the codebase's concurrency and resource
# invariants. See DESIGN.md "Static analysis" for the analyzer table and
# the //lint:allow suppression policy.
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== go vet ./..."
go vet ./... || fail=1

echo "== gompressovet ./..."
go run ./cmd/gompressovet ./... || fail=1

# Optional passes: valuable when the tools are present, but the gate
# must not depend on network access to install them.
if [ "${LINT_EXTRA:-0}" != "0" ]; then
    if command -v staticcheck >/dev/null 2>&1; then
        echo "== staticcheck ./..."
        staticcheck ./... || fail=1
    else
        echo "== staticcheck not installed; skipping"
    fi
    if command -v govulncheck >/dev/null 2>&1; then
        echo "== govulncheck ./... (advisory)"
        govulncheck ./... || echo "govulncheck reported issues (advisory, not failing the gate)"
    else
        echo "== govulncheck not installed; skipping"
    fi
fi

if [ "$fail" != "0" ]; then
    echo "lint: FAILED"
    exit 1
fi
echo "lint: OK"
