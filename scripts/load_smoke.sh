#!/usr/bin/env bash
# Smoke test for the open-loop load harness (CI: the load-smoke job;
# also runs locally from the repo root). Two passes of
# `gompresso loadtest` in self-hosted mode:
#
#   pass 1 — fault-free daemon: the run must complete with zero errors,
#     zero sheds, every request OK, and a sane p99 (positive, below an
#     intentionally generous ceiling — this is a correctness gate, not a
#     performance SLO; CI runners are slow and shared).
#   pass 2 — fault injection (latency on the hot objects) plus a
#     MaxInFlight=1 / tight queue-wait server: shedding must engage
#     (bounded 503s with Retry-After), the non-shed requests must still
#     succeed, and the error rate must stay zero — 503s are load
#     shedding working as designed, not failures.
set -euo pipefail

work=$(mktemp -d)
cleanup() { rm -rf "$work"; }
trap cleanup EXIT

bin="$work/gompresso"
go build -o "$bin" ./cmd/gompresso

jqget() { # <file> <python-expr over r>
  python3 -c "import json,sys; r=json.load(open('$1')); print($2)"
}

# Pass 1: fault-free. ~10s of zipfian load against a self-hosted server.
"$bin" loadtest -rps 25 -duration 9s -objects 8 -min-size 64k -max-size 512k \
  -zipf-s 1.1 -seed 11 -deadline 10s -json > "$work/ok.json" 2>"$work/ok.log"

requests=$(jqget "$work/ok.json" "r['overall']['requests']")
ok=$(jqget "$work/ok.json" "r['overall']['ok']")
errors=$(jqget "$work/ok.json" "r['overall']['errors']")
timeouts=$(jqget "$work/ok.json" "r['overall']['timeout']")
sheds=$(jqget "$work/ok.json" "r['overall']['shed']")
p99=$(jqget "$work/ok.json" "r['overall']['p99_ms']")
phases=$(jqget "$work/ok.json" "len(r['phases'])")

[ "$requests" -ge 150 ] || { echo "FAIL: only $requests requests in 9s at 25 rps"; exit 1; }
[ "$ok" = "$requests" ] || { echo "FAIL: $ok/$requests OK on a fault-free run"; cat "$work/ok.json"; exit 1; }
[ "$errors" = 0 ] && [ "$timeouts" = 0 ] && [ "$sheds" = 0 ] || {
  echo "FAIL: fault-free run had errors=$errors timeouts=$timeouts sheds=$sheds"; exit 1; }
[ "$phases" = 3 ] || { echo "FAIL: $phases phases, want 3"; exit 1; }
# Sane p99: positive and under 2s. A 64k-512k range decode takes
# single-digit ms on any machine; 2000ms only catches a harness that is
# measuring garbage (zeros, absurd clock math), not a slow runner.
python3 -c "import sys; p=$p99; sys.exit(0 if 0 < p < 2000 else 1)" || {
  echo "FAIL: fault-free p99 ${p99}ms not in (0, 2000)"; exit 1; }

# The server's own histogram must roughly corroborate the harness.
# Compare the harness's *service* p99 (clocked from the actual send —
# the same quantity the handler measures, plus transport overhead), not
# the open-loop headline number, which also charges dispatch lag the
# server cannot see. Within 4x: the refined buckets are 1.25x wide, so
# 4x catches only a broken clock or bucket math while staying robust to
# scheduler noise between the two clocks on a 1-vCPU runner.
sp99=$(jqget "$work/ok.json" "r['overall']['service_p99_ms']")
mp99=$(jqget "$work/ok.json" "r.get('metrics_p99_ms', 0)")
python3 -c "
import sys
h, m = $sp99, $mp99
sys.exit(0 if m > 0 and max(h, m) / min(h, m) < 4 else 1)
" || { echo "FAIL: harness service p99 ${sp99}ms vs /metrics p99 ${mp99}ms"; exit 1; }

echo "load smoke pass 1: OK ($requests requests, p99=${p99}ms, service p99=${sp99}ms, metrics p99=${mp99}ms)"

# Pass 2: fault injection + forced shedding. Latency faults on the two
# hottest-named objects, one decode slot, 30ms queue bound: the zipfian
# schedule hammers the slowed objects, the queue fills, sheds must
# happen — and everything that is not shed must still succeed.
"$bin" loadtest -rps 40 -duration 8s -objects 6 -min-size 64k -max-size 256k \
  -zipf-s 1.2 -seed 13 -deadline 10s -max-inflight 1 -queue-wait 30ms \
  -fault 'lt-000*.gpz:latency=60ms' -json > "$work/fault.json" 2>"$work/fault.log"

f_requests=$(jqget "$work/fault.json" "r['overall']['requests']")
f_ok=$(jqget "$work/fault.json" "r['overall']['ok']")
f_errors=$(jqget "$work/fault.json" "r['overall']['errors']")
f_timeouts=$(jqget "$work/fault.json" "r['overall']['timeout']")
f_sheds=$(jqget "$work/fault.json" "r['overall']['shed']")
f_shed_rate=$(jqget "$work/fault.json" "r['overall']['shed_rate']")
f_p99=$(jqget "$work/fault.json" "r['overall']['p99_ms']")

[ "$f_sheds" -gt 0 ] || { echo "FAIL: no sheds under fault + MaxInFlight=1"; cat "$work/fault.json"; exit 1; }
[ "$f_errors" = 0 ] && [ "$f_timeouts" = 0 ] || {
  echo "FAIL: fault run had errors=$f_errors timeouts=$f_timeouts (sheds are the only acceptable failure)"; exit 1; }
[ "$((f_ok + f_sheds))" = "$f_requests" ] || {
  echo "FAIL: ok($f_ok) + shed($f_sheds) != requests($f_requests)"; exit 1; }
# Bounded shedding: the server must degrade, not collapse — most
# requests still succeed.
python3 -c "import sys; sys.exit(0 if $f_shed_rate < 0.5 else 1)" || {
  echo "FAIL: shed rate $f_shed_rate >= 0.5 — shedding ate the majority of traffic"; exit 1; }
# Success latency stays sane even while shedding.
python3 -c "import sys; p=$f_p99; sys.exit(0 if 0 < p < 2000 else 1)" || {
  echo "FAIL: fault-pass p99 ${f_p99}ms not in (0, 2000)"; exit 1; }

echo "load smoke pass 2: OK ($f_requests requests, sheds=$f_sheds, shed_rate=$f_shed_rate, p99=${f_p99}ms)"
echo "load smoke: OK"
