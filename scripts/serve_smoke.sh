#!/usr/bin/env bash
# Smoke test for `gompresso serve` (CI: the serve-smoke job; also runs
# locally from the repo root). Starts the daemon on a fixture directory
# and checks the acceptance criteria end to end:
#
#   - every ranged response is byte-identical to `gompresso cat -offset
#     -length` (indexed containers) or to a slice of the original bytes
#     (sequential fallbacks: unindexed containers, .gz),
#   - /healthz and the stats endpoint respond,
#   - a repeated hot range shows cache hits > 0 in the stats,
#   - every request produces a structured JSON access-log line with the
#     required keys, and a response's X-Request-Id joins against the
#     /debug/requests slow-request ring.
set -euo pipefail

work=$(mktemp -d)
srv_pid=""
srv2_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
  [ -n "$srv2_pid" ] && kill "$srv2_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

bin="$work/gompresso"
go build -o "$bin" ./cmd/gompresso

# Fixture: a text corpus (the repo's own sources), served three ways.
root="$work/root"; mkdir "$root"
cat ./*.go internal/format/*.go internal/deflate/*.go > "$work/corpus.txt"
size=$(wc -c < "$work/corpus.txt" | tr -d ' ')
"$bin" compress -index -block 64 "$work/corpus.txt" "$root/corpus.gpz" 2>/dev/null
"$bin" compress        -block 64 "$work/corpus.txt" "$root/noindex.gpz" 2>/dev/null
gzip -c "$work/corpus.txt" > "$root/corpus.txt.gz"

# stat must agree with the fixture's shape. (Outputs go through files:
# grep -q on a pipe SIGPIPEs the producer under pipefail.)
"$bin" stat -json "$root/corpus.gpz" > "$work/stat.json"
grep -q '"index": true' "$work/stat.json"
[ "$(grep raw_size "$work/stat.json" | tr -dc 0-9)" = "$size" ]
"$bin" stat -json "$root/noindex.gpz" > "$work/stat2.json"
grep -q '"index": false' "$work/stat2.json"

addr=127.0.0.1:18427
"$bin" serve -addr "$addr" -root "$root" -cache 16 -index-dir "$root" -index-spacing 65536 -quiet -access-log "$work/access.jsonl" 2>"$work/serve.log" &
srv_pid=$!
for _ in $(seq 1 100); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
[ "$(curl -sf "http://$addr/healthz")" = "ok" ]

# check_range <object> <curl-range-spec> <offset> <length>: the ranged
# response must equal `gompresso cat -offset -length` on the same object.
check_range() {
  curl -sf -H "Range: bytes=$2" "http://$addr/$1" > "$work/got"
  "$bin" cat -offset "$3" -length "$4" "$root/$1" > "$work/want"
  cmp "$work/got" "$work/want" || { echo "FAIL: $1 range $2 differs from cat -offset $3 -length $4"; exit 1; }
}

# Indexed container: interior, multi-block (block size is 64 KiB),
# open-ended, and suffix ranges. The multi-block bound derives from the
# corpus size so it stays interior as the fixture grows or shrinks.
mid=$((size * 3 / 4))
check_range corpus.gpz "0-999"            0              1000
check_range corpus.gpz "65530-65600"      65530          71
check_range corpus.gpz "10000-$mid"       10000          $((mid - 10000 + 1))
check_range corpus.gpz "$((size-500))-"   "$((size-500))" 500
check_range corpus.gpz "-1234"            "$((size-1234))" 1234

# Sequential fallbacks: ranges against slices of the original bytes.
check_seq() {
  curl -sf -H "Range: bytes=$2-$(($2+$3-1))" "http://$addr/$1" > "$work/got"
  tail -c "+$(($2+1))" "$work/corpus.txt" > "$work/tail"
  head -c "$3" "$work/tail" > "$work/want"
  cmp "$work/got" "$work/want" || { echo "FAIL: $1 fallback range at $2+$3"; exit 1; }
}
check_seq noindex.gpz   12345 70000
check_seq corpus.txt.gz 12345 70000

# Full bodies, all three objects, against `cat`.
for obj in corpus.gpz noindex.gpz corpus.txt.gz; do
  curl -sf "http://$addr/$obj" > "$work/got"
  "$bin" cat "$root/$obj" > "$work/want"
  cmp "$work/got" "$work/want" || { echo "FAIL: $obj full body differs from cat"; exit 1; }
done

# HEAD: decompressed Content-Length, no body.
[ "$(curl -sfI "http://$addr/corpus.gpz" | tr -d '\r' | awk '/^Content-Length:/{print $2}')" = "$size" ]

# 416 for an unsatisfiable range.
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Range: bytes=$size-" "http://$addr/corpus.gpz")
[ "$code" = "416" ] || { echo "FAIL: want 416, got $code"; exit 1; }

# Hot range: repeat, then the stats endpoint must show cache hits > 0.
for _ in 1 2 3; do
  curl -sf -H "Range: bytes=1000-2000" "http://$addr/corpus.gpz" > /dev/null
done
curl -sf "http://$addr/metrics?format=json" > "$work/metrics.json"
hits=$(grep -o '"cache_hits_total": [0-9]*' "$work/metrics.json" | tr -dc 0-9)
[ "${hits:-0}" -gt 0 ] || { echo "FAIL: cache_hits_total = ${hits:-0} after hot range"; cat "$work/metrics.json"; exit 1; }
grep -q '"requests_total"' "$work/metrics.json"
curl -sf "http://$addr/metrics" > "$work/metrics.txt"
grep -q '^cache_hit_rate ' "$work/metrics.txt"
grep -q '^build_info{' "$work/metrics.txt"
grep -q '^go_goroutines ' "$work/metrics.txt"
grep -q '^stage_block_decode_ns_count ' "$work/metrics.txt"

# Observability: a response's X-Request-Id must join against the
# /debug/requests ring, and every access-log line must be valid JSON
# with the required keys.
rid=$(curl -sf -D - -o /dev/null -H "Range: bytes=0-99" "http://$addr/corpus.gpz" | tr -d '\r' | awk 'tolower($1)=="x-request-id:"{print $2}')
[ -n "$rid" ] || { echo "FAIL: response missing X-Request-Id"; exit 1; }
curl -sf "http://$addr/debug/requests?n=64" > "$work/debug.json"
grep -q "\"$rid\"" "$work/debug.json" || { echo "FAIL: request $rid not in /debug/requests"; exit 1; }
python3 - "$work/access.jsonl" <<'PY'
import json, sys
required = {"id", "method", "path", "status", "bytes", "dur_ms",
            "cache_hits", "cache_misses", "stages"}
n = 0
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    missing = required - rec.keys()
    if missing:
        sys.exit("access-log line missing keys %s: %s" % (sorted(missing), line[:200]))
    n += 1
if n == 0:
    sys.exit("access log is empty")
PY
loglines=$(wc -l < "$work/access.jsonl" | tr -d ' ')

# Foreign random access (PR 7): the first .gz request above ran the one
# counting decode, captured the seek index, and persisted a sidecar.
[ -f "$root/corpus.txt.gz.gzx" ] || { echo "FAIL: sidecar not persisted beside corpus.txt.gz"; exit 1; }
"$bin" stat -json "$root/corpus.txt.gz" > "$work/stat3.json"
grep -q '"sidecar": "valid"' "$work/stat3.json"
[ "$(grep raw_size "$work/stat3.json" | tr -dc 0-9)" = "$size" ]

# Hot .gz ranges: byte-identical to gzip -dc slices, and the sequential
# decode counter must stay flat — every range decodes covering chunks only.
gzip -dc "$root/corpus.txt.gz" > "$work/plain"
cmp "$work/plain" "$work/corpus.txt"
seq_before=$(grep -o '"sequential_decodes_total": [0-9]*' "$work/metrics.json" | tr -dc 0-9)
check_gz() { # <addr> <offset> <length>
  curl -sf -H "Range: bytes=$2-$(($2+$3-1))" "http://$1/corpus.txt.gz" > "$work/got"
  tail -c "+$(($2+1))" "$work/plain" > "$work/tail"
  head -c "$3" "$work/tail" > "$work/want"
  cmp "$work/got" "$work/want" || { echo "FAIL: .gz range at $2+$3 differs from gzip -dc"; exit 1; }
}
check_gz "$addr" 0 4096
check_gz "$addr" 100000 65536
check_gz "$addr" $((size - 2000)) 2000
curl -sf "http://$addr/metrics?format=json" > "$work/metrics2.json"
seq_after=$(grep -o '"sequential_decodes_total": [0-9]*' "$work/metrics2.json" | tr -dc 0-9)
[ "${seq_after:-0}" = "${seq_before:-0}" ] || {
  echo "FAIL: hot .gz ranges reran the sequential decode ($seq_before -> $seq_after)"; exit 1; }

# A fresh server over the same root loads the sidecar at resolve: ranged
# .gz requests without a single sequential decode.
addr2=127.0.0.1:18428
"$bin" serve -addr "$addr2" -root "$root" -cache 16 -index-dir "$root" -quiet 2>>"$work/serve.log" &
srv2_pid=$!
for _ in $(seq 1 100); do
  curl -sf "http://$addr2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
check_gz "$addr2" 54321 32768
curl -sf "http://$addr2/metrics?format=json" > "$work/metrics3.json"
seq2=$(grep -o '"sequential_decodes_total": [0-9]*' "$work/metrics3.json" | tr -dc 0-9)
loads2=$(grep -o '"sidecar_loads_total": [0-9]*' "$work/metrics3.json" | tr -dc 0-9)
[ "${seq2:-1}" = "0" ] || { echo "FAIL: warm-sidecar server ran $seq2 sequential decodes"; exit 1; }
[ "${loads2:-0}" -ge 1 ] || { echo "FAIL: warm-sidecar server never loaded the sidecar"; exit 1; }

echo "serve smoke: OK (size=$size, cache_hits=$hits, sidecar_loads=$loads2, access_log_lines=$loglines)"
