// Columnscan models the paper's motivating Big Data workload (§I):
// analytics queries that repeatedly read compressed data. A synthetic
// Matrix Market "column" is compressed once at load time, then scanned
// repeatedly — each scan decompresses on the simulated GPU and counts the
// records matching a predicate. The output compares the three
// back-reference strategies on the same query, showing why decompression
// speed, not compression speed, dominates this workload.
package main

import (
	"bytes"
	"fmt"
	"log"

	"gompresso"
	"gompresso/internal/datagen"
)

func main() {
	// "Load time": ingest a 16 MiB coordinate-format dataset, compressed
	// once per variant.
	data := datagen.MatrixMarket(16<<20, 42)
	fmt.Printf("loaded %d bytes of Matrix Market data\n", len(data))

	normal, _, err := gompresso.Compress(data, gompresso.Options{
		Variant: gompresso.VariantByte, DE: gompresso.DEOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	deStream, deStats, err := gompresso.Compress(data, gompresso.Options{
		Variant: gompresso.VariantByte, DE: gompresso.DEStrict,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored DE-compressed: ratio %.2f\n\n", deStats.Ratio)

	// "Query time": run the same scan under each strategy.
	queries := []struct {
		name   string
		stream []byte
		strat  gompresso.Strategy
	}{
		{"sequential copying (SC)", normal, gompresso.SC},
		{"multi-round resolution (MRR)", normal, gompresso.MRR},
		{"dependency elimination (DE)", deStream, gompresso.DE},
	}
	fmt.Println("query: count edges incident to vertices < 100000")
	for _, q := range queries {
		out, ds, err := gompresso.Decompress(q.stream, gompresso.DecompressOptions{
			Engine: gompresso.EngineDevice, Strategy: q.strat, PCIe: gompresso.PCIeIn,
		})
		if err != nil {
			log.Fatal(q.name, ": ", err)
		}
		matches := countSmallRows(out)
		fmt.Printf("  %-30s %8.3f ms simulated  (%.2f GB/s)  matches=%d\n",
			q.name, ds.SimSeconds*1e3, float64(ds.RawSize)/ds.SimSeconds/1e9, matches)
	}
	fmt.Println("\nper the paper: the scan is decompression-bound, and DE turns the")
	fmt.Println("back-reference phase into a single warp round per 32 sequences.")
}

// countSmallRows scans coordinate lines "row col\n" and counts rows below
// 100000 — a stand-in for a selective analytics predicate.
func countSmallRows(data []byte) int {
	count := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		sp := bytes.IndexByte(line, ' ')
		if sp <= 0 || sp > 5 { // rows below 100000 have ≤ 5 digits
			continue
		}
		count++
	}
	return count
}
