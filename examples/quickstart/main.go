// Quickstart: compress a document with Gompresso/Bit and decompress it on
// the simulated GPU, printing the modeled device throughput and the MRR
// round statistics that motivate Dependency Elimination.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"gompresso"
)

func main() {
	// Some compressible input.
	src := []byte(strings.Repeat(
		"Gompresso decompresses independently-compressed blocks on warps of "+
			"32 lanes; sub-blocks make Huffman decoding parallel too. ", 20000))

	// Compress with the paper's defaults (Gompresso/Bit, 256 KB blocks)
	// plus the Dependency-Elimination parse.
	comp, cs, err := gompresso.Compress(src, gompresso.Options{DE: gompresso.DEStrict})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d -> %d bytes (ratio %.2f) in %.1f ms\n",
		cs.RawSize, cs.CompSize, cs.Ratio, cs.Seconds*1e3)

	// Decompress on the simulated Tesla K40. DE streams resolve every
	// back-reference in a single round.
	out, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
		Engine:   gompresso.EngineDevice,
		Strategy: gompresso.DE,
		PCIe:     gompresso.PCIeInOut,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		log.Fatal("roundtrip mismatch")
	}
	fmt.Printf("device decompression: %.3f ms simulated (%.2f GB/s incl. PCIe)\n",
		ds.SimSeconds*1e3, float64(ds.RawSize)/ds.SimSeconds/1e9)
	fmt.Printf("back-reference rounds: avg %.2f, max %d (DE guarantees 1)\n",
		ds.Rounds.AvgRounds(), ds.Rounds.MaxRounds)

	// The host engine is the bit-exact reference.
	ref, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
		Engine: gompresso.EngineHost,
	})
	if err != nil || !bytes.Equal(ref, out) {
		log.Fatal("host and device disagree")
	}
	fmt.Println("host reference agrees: ok")
}
