// Quickstart: build one Codec, stream-compress a document through the
// parallel Writer, decompress it on the simulated GPU, and print the
// modeled device throughput and the MRR round statistics that motivate
// Dependency Elimination.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"strings"

	"gompresso"
)

func main() {
	// Some compressible input.
	src := []byte(strings.Repeat(
		"Gompresso decompresses independently-compressed blocks on warps of "+
			"32 lanes; sub-blocks make Huffman decoding parallel too. ", 20000))

	// One codec holds the whole configuration: the paper's defaults
	// (Gompresso/Bit, 256 KB blocks) plus the Dependency-Elimination
	// parse and an index trailer for seeking.
	codec, err := gompresso.New(
		gompresso.WithDE(gompresso.DEStrict),
		gompresso.WithIndex(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Stream-compress through the parallel Writer: blocks are cut and
	// compressed concurrently, and the container comes out byte-identical
	// to codec.Compress(src).
	var comp bytes.Buffer
	w := codec.NewWriter(&comp)
	if _, err := io.Copy(w, bytes.NewReader(src)); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	cs := w.Stats()
	fmt.Printf("compressed %d -> %d bytes (ratio %.2f) in %.1f ms across %d blocks\n",
		cs.RawSize, cs.CompSize, cs.Ratio, cs.Seconds*1e3, cs.Blocks)

	// Decompress on the simulated Tesla K40. The codec picks the DE
	// strategy automatically for DE streams, which resolve every
	// back-reference in a single round.
	device, err := gompresso.New(
		gompresso.WithEngine(gompresso.EngineDevice),
		gompresso.WithPCIe(gompresso.PCIeInOut),
	)
	if err != nil {
		log.Fatal(err)
	}
	out, ds, err := device.Decompress(comp.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		log.Fatal("roundtrip mismatch")
	}
	fmt.Printf("device decompression: %.3f ms simulated (%.2f GB/s incl. PCIe)\n",
		ds.SimSeconds*1e3, float64(ds.RawSize)/ds.SimSeconds/1e9)
	fmt.Printf("back-reference rounds: avg %.2f, max %d (DE guarantees 1)\n",
		ds.Rounds.AvgRounds(), ds.Rounds.MaxRounds)

	// The host engine (the codec default) is the bit-exact reference, and
	// the streaming Reader serves the same bytes with seeking.
	r, err := codec.NewReader(bytes.NewReader(comp.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Seek(int64(len(src))/2, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(rest, src[len(src)/2:]) {
		log.Fatal("seek+read mismatch")
	}
	fmt.Println("host streaming reader agrees after Seek: ok")
}
