// Codeccompare runs the paper's Fig. 13 head-to-head on this machine:
// the four block-parallel CPU baselines (stdlib DEFLATE standing in for
// zlib, plus from-scratch LZ4, Snappy and the Zstd-like LZ+tANS codec)
// measured with real goroutine parallelism, against Gompresso on the
// simulated Tesla K40.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gompresso"
	"gompresso/internal/baseline"
	"gompresso/internal/datagen"
)

func main() {
	const size = 16 << 20
	data := datagen.WikiXML(size, 3)
	fmt.Printf("corpus: %d bytes of synthetic Wikipedia XML\n\n", len(data))
	fmt.Printf("%-22s %-10s %-12s %s\n", "system", "ratio", "decomp GB/s", "notes")

	// CPU baselines: 2 MB blocks, common work queue (paper §V-D).
	for _, c := range baseline.All() {
		comp, err := baseline.CompressParallel(c, data, baseline.DefaultParallelBlockSize, 0)
		if err != nil {
			log.Fatal(c.Name(), ": ", err)
		}
		best := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			out, err := baseline.DecompressParallel(c, comp, 0)
			if err != nil {
				log.Fatal(c.Name(), ": ", err)
			}
			if !bytes.Equal(out, data) {
				log.Fatal(c.Name(), ": roundtrip mismatch")
			}
			if dt := time.Since(start).Seconds(); best == 0 || dt < best {
				best = dt
			}
		}
		fmt.Printf("%-22s %-10.2f %-12.2f measured on this host\n",
			c.Name()+" (CPU)", float64(len(data))/float64(len(comp)),
			float64(len(data))/best/1e9)
	}

	// Gompresso on the simulated device.
	for _, g := range []struct {
		name    string
		variant gompresso.Variant
		pcie    gompresso.PCIeMode
	}{
		{"Gomp/Bit (In/Out)", gompresso.VariantBit, gompresso.PCIeInOut},
		{"Gomp/Byte (In/Out)", gompresso.VariantByte, gompresso.PCIeInOut},
		{"Gomp/Byte (No PCIe)", gompresso.VariantByte, gompresso.PCIeNone},
	} {
		comp, cs, err := gompresso.Compress(data, gompresso.Options{
			Variant: g.variant, DE: gompresso.DEStrict,
		})
		if err != nil {
			log.Fatal(err)
		}
		out, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineDevice, Strategy: gompresso.DE,
			PCIe: g.pcie, TileTo: 1 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			log.Fatal("gompresso roundtrip mismatch")
		}
		fmt.Printf("%-22s %-10.2f %-12.2f simulated Tesla K40\n",
			g.name, cs.Ratio, float64(ds.RawSize)/ds.SimSeconds/1e9)
	}
	fmt.Println("\nCPU numbers depend on this machine; the GPU numbers come from the")
	fmt.Println("calibrated device model (see DESIGN.md). Paper shape: Gompresso/Bit")
	fmt.Println("≈2× parallel zlib; Gompresso/Byte fastest without transfers.")
}
