// Nestingdepth reproduces the paper's Fig. 9c experiment interactively:
// it generates the artificial datasets of Fig. 10 (repeated 16-byte strings
// with alternating one-byte mutations), sweeps the designed nesting depth,
// and prints how the Multi-Round Resolution time grows with the depth of
// back-reference chains — the behaviour Dependency Elimination removes.
package main

import (
	"fmt"
	"log"
	"strings"

	"gompresso"
	"gompresso/internal/datagen"
)

func main() {
	const size = 8 << 20
	fmt.Println("designed depth vs measured MRR rounds and simulated time (8 MiB per point)")
	fmt.Println()
	fmt.Printf("%-10s %-15s %-12s %-14s %s\n", "families", "designed depth", "avg rounds", "MRR time (ms)", "bar")
	for _, families := range []int{32, 16, 8, 4, 2, 1} {
		data := datagen.Nesting(size, families, 7)
		comp, _, err := gompresso.Compress(data, gompresso.Options{
			Variant: gompresso.VariantByte,
			DE:      gompresso.DEOff,
			Window:  datagen.NestingWindow,
		})
		if err != nil {
			log.Fatal(err)
		}
		out, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineDevice, Strategy: gompresso.MRR,
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(out) != size {
			log.Fatal("roundtrip size mismatch")
		}
		ms := ds.SimSeconds * 1e3
		bar := strings.Repeat("#", int(ms/2)+1)
		fmt.Printf("%-10d %-15d %-12.1f %-14.2f %s\n",
			families, datagen.NestingDepthFor(families), ds.Rounds.AvgRounds(), ms, bar)
	}
	fmt.Println()
	fmt.Println("the same data decompressed after a Dependency-Elimination parse:")
	data := datagen.Nesting(size, 1, 7)
	comp, cs, err := gompresso.Compress(data, gompresso.Options{
		Variant: gompresso.VariantByte,
		DE:      gompresso.DEStrict,
		Window:  datagen.NestingWindow,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
		Engine: gompresso.EngineDevice, Strategy: gompresso.DE,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DE: %.2f ms, 1 round by construction (ratio cost: %.2f vs unrestricted)\n",
		ds.SimSeconds*1e3, cs.Ratio)
}
