package gompresso

import (
	"context"
	"errors"
	"fmt"
	"io"

	"gompresso/internal/blockcache"
	"gompresso/internal/core"
)

// errForeignReaderAt rejects random access over foreign formats: DEFLATE
// streams have no block index, so ReaderAt's concurrent range serving is
// native-container-only.
var errForeignReaderAt = errors.New("gompresso: random access requires the native container format")

// ErrInvalidOption reports a configuration value outside its domain (a
// negative worker count, a block size out of range, an unknown variant).
// New, NewReaderWith, and every Codec constructor wrap it, so callers can
// separate configuration mistakes from data errors with errors.Is.
var ErrInvalidOption = core.ErrInvalidOption

// Codec is a reusable, validated Gompresso configuration — the single
// constructor for every operation the package offers. Build one with New
// and functional options, then use it for whole buffers (Compress /
// Decompress), streams (NewWriter / NewReader), or random access
// (NewReaderAt). The paper's block-parallel design is symmetric — blocks
// are independent on both sides — and so is the Codec: compression and
// decompression share one worker budget, one readahead bound, and one
// context.
//
// A Codec is immutable after New and safe for concurrent use; Readers and
// Writers created from it each carry their own streaming state but draw on
// the same shared worker pool.
type Codec struct {
	copt     core.Options
	dopt     core.DecompressOptions
	pipe     core.Pipeline
	ctx      context.Context
	form     Format
	stratSet bool

	cacheBytes int64
	cache      *blockcache.Cache // nil unless WithCache(n>0)
}

// Option configures a Codec being built by New.
type Option func(*Codec)

// WithVariant selects the entropy-coding variant. New's default is
// VariantBit (the paper's headline configuration).
func WithVariant(v Variant) Option { return func(c *Codec) { c.copt.Variant = v } }

// WithBlockSize sets the data block size in bytes (default 256 KiB). Block
// size is the parallelism granule on both sides of the codec.
func WithBlockSize(n int) Option { return func(c *Codec) { c.copt.BlockSize = n } }

// WithWindow sets the LZ77 sliding window in bytes (default 8 KiB).
func WithWindow(n int) Option { return func(c *Codec) { c.copt.Window = n } }

// WithDE selects the Dependency-Elimination parse mode (default DEOff:
// unrestricted parse, decompress with MRR).
func WithDE(m DEMode) Option { return func(c *Codec) { c.copt.DE = m } }

// WithCWL sets the Bit variant's codeword length limit (default 10).
func WithCWL(n int) Option { return func(c *Codec) { c.copt.CWL = n } }

// WithSeqsPerSub sets the Bit variant's sequences per sub-block
// (default 16).
func WithSeqsPerSub(n int) Option { return func(c *Codec) { c.copt.SeqsPerSub = n } }

// WithIndex makes compression append the GPIX index trailer (block
// offsets), letting readers with random access seek without scanning the
// block section first.
func WithIndex(on bool) Option { return func(c *Codec) { c.copt.Index = on } }

// WithWorkers sets the codec's worker budget — the number of blocks
// compressed or decompressed concurrently by Compress, Decompress, and the
// streaming Writer/Reader pipelines. 0 selects GOMAXPROCS; 1 selects the
// synchronous single-goroutine paths.
func WithWorkers(n int) Option {
	return func(c *Codec) {
		c.copt.Workers = n
		c.dopt.Workers = n
		c.pipe.Workers = n
	}
}

// WithReadahead bounds how many finished blocks the streaming pipelines
// may buffer ahead of their consumer (default 2×Workers) — the
// back-pressure bound that keeps pipeline memory at
// O((Workers+Readahead) × BlockSize).
func WithReadahead(n int) Option { return func(c *Codec) { c.pipe.Readahead = n } }

// WithEngine selects the decompression engine for Codec.Decompress. New's
// default is EngineHost — the production fast path — unlike the top-level
// Decompress, whose zero options select the paper's simulated device.
func WithEngine(e Engine) Option { return func(c *Codec) { c.dopt.Engine = e } }

// WithStrategy pins the device engine's back-reference resolution
// strategy. Without it, Codec.Decompress picks DE for DE-parsed streams
// and MRR otherwise.
func WithStrategy(s Strategy) Option {
	return func(c *Codec) {
		c.dopt.Strategy = s
		c.stratSet = true
	}
}

// WithPCIe selects the device engine's transfer accounting.
func WithPCIe(m PCIeMode) Option { return func(c *Codec) { c.dopt.PCIe = m } }

// WithDevice supplies the simulated device the device engine runs on
// (default: a Tesla K40).
func WithDevice(d *Device) Option { return func(c *Codec) { c.dopt.Device = d } }

// WithHostReference forces the host engine through the materializing
// reference pipeline instead of the fused fast path (validation and
// benchmarking; output is byte-identical either way).
func WithHostReference(on bool) Option { return func(c *Codec) { c.dopt.HostReference = on } }

// WithFormat pins the input format Decompress and NewReader expect. The
// default, FormatAuto, sniffs the magic bytes and accepts the Gompresso
// container, gzip, and zlib; raw DEFLATE (FormatDeflate) has no magic and
// requires this option. Unrecognized input fails with an error wrapping
// ErrUnknownFormat. Compression is unaffected: the codec always produces
// Gompresso containers.
func WithFormat(f Format) Option { return func(c *Codec) { c.form = f } }

// WithCache attaches a shared decoded-block cache of the given size in
// bytes to the codec. Every ReaderAt the codec creates serves hits from
// it: a block decoded for one request is handed to concurrent and later
// requests without re-decoding (concurrent decodes of the same block
// coalesce into one), with eviction by LRU when resident decoded bytes
// exceed the budget. The cache is sharded for concurrency (up to 16
// ways, fewer for small budgets so a shard always fits at least one
// block); a block larger than its shard's budget is served but not
// retained, so size the cache at a multiple of the block size. 0 (the
// default) disables caching — reads then take exactly the uncached
// decode path — and negative sizes are rejected with ErrInvalidOption. Sequential Readers and one-shot Decompress are
// unaffected: the cache exists for the random-access serving path,
// where ranges revisit blocks.
func WithCache(bytes int64) Option { return func(c *Codec) { c.cacheBytes = bytes } }

// WithContext attaches a context to every operation the codec performs.
// Cancelling it makes in-flight calls fail with ctx.Err() and drains the
// streaming pipelines' workers without leaking goroutines.
func WithContext(ctx context.Context) Option { return func(c *Codec) { c.ctx = ctx } }

// WithCompressOptions seeds the whole compression-option struct at once —
// the escape hatch for knobs without a dedicated functional option
// (MinMatch, MaxChain, Staleness, ...). Later options still override
// individual fields.
func WithCompressOptions(o Options) Option { return func(c *Codec) { c.copt = o } }

// New builds a Codec. With no options it selects the paper's defaults:
// Gompresso/Bit, 256 KiB blocks, 8 KiB window, unrestricted parse, host
// decompression, GOMAXPROCS workers. Invalid values are rejected with an
// error wrapping ErrInvalidOption.
func New(opts ...Option) (*Codec, error) {
	//lint:allow ctxguard construction-time default, overridden by WithContext
	c := &Codec{ctx: context.Background()}
	c.copt.Variant = VariantBit
	c.dopt.Engine = EngineHost
	for _, opt := range opts {
		opt(c)
	}
	if c.ctx == nil {
		c.ctx = context.Background() //lint:allow ctxguard WithContext(nil) falls back to the root
	}
	if c.form < FormatAuto || c.form > FormatDeflate {
		return nil, fmt.Errorf("gompresso: %w: unknown format %d", ErrInvalidOption, int(c.form))
	}
	var err error
	if c.copt, err = c.copt.Normalize(); err != nil {
		return nil, err
	}
	if c.dopt, err = c.dopt.Normalize(); err != nil {
		return nil, err
	}
	if c.pipe, err = c.pipe.Normalize(); err != nil {
		return nil, err
	}
	if c.cacheBytes < 0 {
		return nil, fmt.Errorf("gompresso: %w: negative cache size %d", ErrInvalidOption, c.cacheBytes)
	}
	if c.cacheBytes > 0 {
		c.cache = blockcache.New(c.cacheBytes)
	}
	return c, nil
}

// CacheStats reports the decoded-block cache's effectiveness counters —
// the raw material for a server's metrics endpoint. It mirrors the
// cache's snapshot; Enabled is false (and everything else zero) for a
// codec built without WithCache.
type CacheStats struct {
	Enabled   bool
	Hits      int64 // requests served from a resident block
	Misses    int64 // requests that ran or joined a decode
	Coalesced int64 // misses that joined another request's in-flight decode
	Evictions int64 // blocks dropped to fit the byte budget
	Entries   int64 // resident blocks now
	Bytes     int64 // resident decoded bytes now
	MaxBytes  int64 // configured budget
	InFlight  int64 // block decodes running now
}

// HitRate returns Hits/(Hits+Misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// CacheStats snapshots the codec's decoded-block cache counters.
func (c *Codec) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	s := c.cache.Stats()
	return CacheStats{
		Enabled:   true,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Coalesced: s.Coalesced,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
		MaxBytes:  s.MaxBytes,
		InFlight:  s.InFlight,
	}
}

// Options returns the codec's resolved compression options — defaults
// filled, as Compress and NewWriter run them.
func (c *Codec) Options() Options { return c.copt }

// Workers returns the codec's resolved worker budget.
func (c *Codec) Workers() int { return c.pipe.Workers }

// Compress compresses src into a Gompresso container using the codec's
// configuration and worker budget.
func (c *Codec) Compress(src []byte) ([]byte, *CompressStats, error) {
	return core.CompressContext(c.ctx, src, c.copt)
}

// Decompress expands a compressed input. The format follows WithFormat:
// with the default FormatAuto the magic bytes select the Gompresso
// container, gzip, or zlib (unrecognized input fails with an error
// wrapping ErrUnknownFormat). Foreign formats decode on the host through
// internal/deflate's parallel two-pass pipeline at the codec's worker
// budget; containers use the configured engine, and with the device engine
// and no pinned strategy the codec picks DE for DE-parsed streams and MRR
// otherwise.
func (c *Codec) Decompress(data []byte) ([]byte, *DecompressStats, error) {
	form := c.form
	if form == FormatAuto {
		if form = sniffFormat(data); form == FormatAuto {
			return nil, nil, unknownFormat(data)
		}
	}
	if form != FormatGompresso {
		return decompressForeign(data, form, c)
	}
	o := c.dopt
	if o.Engine == EngineDevice && !c.stratSet {
		o.Strategy = MRR
		if h, err := core.Info(data); err == nil && h.DEMode != DEOff {
			o.Strategy = DE
		}
	}
	return core.DecompressContext(c.ctx, data, o)
}

// Info parses and returns a container's header without decompressing.
func (c *Codec) Info(data []byte) (FileHeader, error) { return core.Info(data) }

// NewWriter returns a parallel streaming compressor writing a Gompresso
// container to w with the codec's configuration; see Writer for the
// pipeline and output-mode details. The container's bytes are identical to
// what Codec.Compress would produce for the concatenated input.
func (c *Codec) NewWriter(w io.Writer) *Writer {
	return newWriter(c.ctx, w, c.copt, c.pipe)
}

// NewReader returns a streaming decompressor for r running on the codec's
// worker budget and context. The input format follows WithFormat (see
// Decompress); foreign formats stream through the parallel two-pass
// deflate pipeline, with the whole compressed input buffered in memory (it
// needs random access for boundary scanning) and Seek unsupported.
func (c *Codec) NewReader(r io.Reader) (*Reader, error) {
	return c.NewReaderContext(c.ctx, r)
}

// NewReaderContext is NewReader under an explicit context, overriding
// the codec's own for this one stream — the shape a server needs, where
// cancellation is per request while the codec (worker budget, cache) is
// shared by all of them. A nil ctx selects the codec's context.
func (c *Codec) NewReaderContext(ctx context.Context, r io.Reader) (*Reader, error) {
	if ctx == nil {
		ctx = c.ctx
	}
	return newReader(ctx, r, ReaderOptions{Workers: c.pipe.Workers, Readahead: c.pipe.Readahead}, c.form)
}

// NewReaderAt opens a container stored in the first size bytes of ra for
// concurrent positioned reads on the codec's worker budget and context.
// Random access needs the native container's block index, so foreign
// formats are rejected up front (pinned via WithFormat or sniffed from
// the magic bytes) and unrecognized input fails with an error wrapping
// ErrUnknownFormat — the same classification Decompress and NewReader
// give.
// With WithCache, every ReaderAt from this codec shares the codec's
// decoded-block cache (each under its own object identity).
func (c *Codec) NewReaderAt(ra io.ReaderAt, size int64) (*ReaderAt, error) {
	return newReaderAt(c.ctx, ra, size, c.pipe.Workers, c.form, c.cache)
}

// NewReaderAtWithIndex opens a foreign compressed stream (gzip/zlib —
// the first size bytes of ra) for the same concurrent positioned reads,
// random access coming from a seek index built over exactly those bytes
// (Reader.CollectIndex during a full decode, or a persisted sidecar via
// internal gzidx tooling / `gompresso index`). Checkpointed chunks play
// the role native blocks do: they key into the shared decoded-block
// cache and feed WriteRangeTo's window-parallel send path unchanged.
// The index is validated against size; keeping it fresh against a
// mutable source is the caller's job, as with any cached resolution.
func (c *Codec) NewReaderAtWithIndex(ra io.ReaderAt, size int64, idx *SeekIndex) (*ReaderAt, error) {
	return newForeignReaderAt(c.ctx, ra, size, idx, c.pipe.Workers, c.cache)
}
