// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md's per-experiment index). Wall-clock numbers measure the
// simulator on the host; each bench also reports the modeled device
// throughput as "sim-GB/s", which is the figure quantity.
package gompresso_test

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"

	"gompresso"
	"gompresso/internal/baseline"
	"gompresso/internal/datagen"
	"gompresso/internal/figures"
	"gompresso/internal/lz77"
)

const benchSize = 8 << 20

var (
	corpusOnce sync.Once
	wikiData   []byte
	matrixData []byte
)

func corpora() ([]byte, []byte) {
	corpusOnce.Do(func() {
		wikiData = datagen.WikiXML(benchSize, 1)
		matrixData = datagen.MatrixMarket(benchSize, 1)
	})
	return wikiData, matrixData
}

// corpusName keys the compression cache. Keying on the corpus name rather
// than &data[0] means cached entries cannot alias if a corpus is ever
// regenerated at a recycled allocation address.
func corpusName(data []byte) string {
	w, m := corpora()
	switch {
	case len(data) == len(w) && &data[0] == &w[0]:
		return "wiki"
	case len(data) == len(m) && &data[0] == &m[0]:
		return "matrix"
	default:
		return "unknown"
	}
}

// compressFor caches compressed streams per (variant, DE, corpus) so benches
// time decompression only.
var compCache sync.Map

func compressFor(b *testing.B, data []byte, variant gompresso.Variant, de gompresso.DEMode) []byte {
	b.Helper()
	type key struct {
		v      gompresso.Variant
		de     gompresso.DEMode
		corpus string
	}
	k := key{variant, de, corpusName(data)}
	if k.corpus == "unknown" {
		b.Fatalf("compressFor: data is not a named corpus")
	}
	if v, ok := compCache.Load(k); ok {
		return v.([]byte)
	}
	comp, _, err := gompresso.Compress(data, gompresso.Options{Variant: variant, DE: de})
	if err != nil {
		b.Fatal(err)
	}
	compCache.Store(k, comp)
	return comp
}

// benchDevice times simulated-device decompression and reports the modeled
// throughput.
func benchDevice(b *testing.B, comp []byte, raw []byte, strat gompresso.Strategy, pcie gompresso.PCIeMode) {
	b.Helper()
	b.SetBytes(int64(len(raw)))
	var sim float64
	for i := 0; i < b.N; i++ {
		out, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineDevice, Strategy: strat, PCIe: pcie, TileTo: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !bytes.Equal(out, raw) {
			b.Fatal("roundtrip mismatch")
		}
		sim = float64(ds.RawSize) / ds.SimSeconds / 1e9
	}
	b.ReportMetric(sim, "sim-GB/s")
}

// Fig. 9a — strategy comparison, Gompresso/Byte, no transfers.
func BenchmarkFig09a_Wikipedia_SC(b *testing.B) {
	w, _ := corpora()
	benchDevice(b, compressFor(b, w, gompresso.VariantByte, gompresso.DEOff), w, gompresso.SC, gompresso.PCIeNone)
}
func BenchmarkFig09a_Wikipedia_MRR(b *testing.B) {
	w, _ := corpora()
	benchDevice(b, compressFor(b, w, gompresso.VariantByte, gompresso.DEOff), w, gompresso.MRR, gompresso.PCIeNone)
}
func BenchmarkFig09a_Wikipedia_DE(b *testing.B) {
	w, _ := corpora()
	benchDevice(b, compressFor(b, w, gompresso.VariantByte, gompresso.DEStrict), w, gompresso.DE, gompresso.PCIeNone)
}
func BenchmarkFig09a_Matrix_SC(b *testing.B) {
	_, m := corpora()
	benchDevice(b, compressFor(b, m, gompresso.VariantByte, gompresso.DEOff), m, gompresso.SC, gompresso.PCIeNone)
}
func BenchmarkFig09a_Matrix_MRR(b *testing.B) {
	_, m := corpora()
	benchDevice(b, compressFor(b, m, gompresso.VariantByte, gompresso.DEOff), m, gompresso.MRR, gompresso.PCIeNone)
}
func BenchmarkFig09a_Matrix_DE(b *testing.B) {
	_, m := corpora()
	benchDevice(b, compressFor(b, m, gompresso.VariantByte, gompresso.DEStrict), m, gompresso.DE, gompresso.PCIeNone)
}

// Fig. 9b — MRR round statistics (the bench reports avg rounds).
func BenchmarkFig09b_Rounds(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantByte, gompresso.DEOff)
	b.SetBytes(int64(len(w)))
	var rounds float64
	for i := 0; i < b.N; i++ {
		_, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineDevice, Strategy: gompresso.MRR,
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = ds.Rounds.AvgRounds()
	}
	b.ReportMetric(rounds, "avg-rounds")
}

// Fig. 9c — nesting-depth sweep endpoints.
func BenchmarkFig09c_Depth1(b *testing.B)  { benchNesting(b, 32) }
func BenchmarkFig09c_Depth32(b *testing.B) { benchNesting(b, 1) }

func benchNesting(b *testing.B, families int) {
	data := datagen.Nesting(benchSize, families, 7)
	comp, _, err := gompresso.Compress(data, gompresso.Options{
		Variant: gompresso.VariantByte, DE: gompresso.DEOff, Window: datagen.NestingWindow,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchDevice(b, comp, data, gompresso.MRR, gompresso.PCIeNone)
}

// Fig. 11 — Dependency Elimination compression cost.
func BenchmarkFig11_Compress_NoDE(b *testing.B) { benchFig11(b, lz77.DEOff) }
func BenchmarkFig11_Compress_DE(b *testing.B)   { benchFig11(b, lz77.DEStrict) }

func benchFig11(b *testing.B, de lz77.DEMode) {
	w, _ := corpora()
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		ts, err := lz77.Parse(w, lz77.Options{DE: de, Staleness: lz77.DefaultStaleness, Window: 1<<16 - 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(w))/float64(ts.CompressedSizeByte()), "ratio")
		}
	}
}

// Fig. 12 — block-size sweep endpoints, Gompresso/Bit with transfers.
func BenchmarkFig12_Block32KB(b *testing.B)  { benchFig12(b, 32<<10) }
func BenchmarkFig12_Block256KB(b *testing.B) { benchFig12(b, 256<<10) }

func benchFig12(b *testing.B, blockSize int) {
	w, _ := corpora()
	comp, _, err := gompresso.Compress(w, gompresso.Options{
		Variant: gompresso.VariantBit, DE: gompresso.DEStrict, BlockSize: blockSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchDevice(b, comp, w, gompresso.DE, gompresso.PCIeInOut)
}

// Fig. 13 — Gompresso/Bit vs the measured CPU baselines on this host.
func BenchmarkFig13_GompBit(b *testing.B) {
	w, _ := corpora()
	benchDevice(b, compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict), w, gompresso.DE, gompresso.PCIeInOut)
}

func BenchmarkFig13_CPU(b *testing.B) {
	w, _ := corpora()
	for _, c := range baseline.All() {
		comp, err := baseline.CompressParallel(c, w, baseline.DefaultParallelBlockSize, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(w)))
			for i := 0; i < b.N; i++ {
				if _, err := baseline.DecompressParallel(c, comp, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fig. 14 — energy model over the Fig. 13 Wikipedia points (reported as
// J/GB for the Gompresso/Bit run).
func BenchmarkFig14_Energy(b *testing.B) {
	cfg := figures.Config{DataSize: 4 << 20}
	var joules float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "Gomp/Bit (In/Out)" {
				joules = r.JoulesGB
			}
		}
	}
	b.ReportMetric(joules, "J/GB")
}

// Host-engine decompression through the fused fast path, for comparison
// with the baselines.
func BenchmarkHostEngine_Bit(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict)
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		if _, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineHost,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// The materializing reference pipeline, kept benchmarked so the fast path's
// advantage stays visible over time.
func BenchmarkHostEngine_Bit_Reference(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict)
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		if _, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineHost, HostReference: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Host-engine decompression of the Byte variant (fused, no token stream).
func BenchmarkHostEngine_Byte(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantByte, gompresso.DEStrict)
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		if _, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineHost,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Streaming decompression through gompresso.NewReader.
func BenchmarkStreamReader_Bit(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict)
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, r)
		if err != nil || n != int64(len(w)) {
			b.Fatalf("streamed %d bytes, err %v", n, err)
		}
		r.Close()
	}
}

// Streaming decompression through the parallel pipeline at fixed worker
// counts; W1 is the synchronous path, higher counts should scale with
// GOMAXPROCS (see EXPERIMENTS.md "Pipeline scaling").
func benchStreamWorkers(b *testing.B, workers int) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict)
	b.SetBytes(int64(len(w)))
	for i := 0; i < b.N; i++ {
		r, err := gompresso.NewReaderWith(bytes.NewReader(comp), gompresso.ReaderOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, r)
		if err != nil || n != int64(len(w)) {
			b.Fatalf("streamed %d bytes, err %v", n, err)
		}
		r.Close()
	}
}

func BenchmarkStreamReader_Bit_W1(b *testing.B) { benchStreamWorkers(b, 1) }
func BenchmarkStreamReader_Bit_W2(b *testing.B) { benchStreamWorkers(b, 2) }
func BenchmarkStreamReader_Bit_WMax(b *testing.B) {
	benchStreamWorkers(b, runtime.GOMAXPROCS(0))
}

// Random range reads through ReaderAt — the object-store serving shape.
func BenchmarkReaderAt_Bit(b *testing.B) {
	w, _ := corpora()
	comp := compressFor(b, w, gompresso.VariantBit, gompresso.DEStrict)
	ra, err := gompresso.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		b.Fatal(err)
	}
	const span = 64 << 10
	buf := make([]byte, span)
	b.SetBytes(span)
	for i := 0; i < b.N; i++ {
		off := int64(i*31337) % (int64(len(w)) - span)
		if _, err := ra.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
