package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the program under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory holding the sources
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go command or
// export data: local packages (the module under analysis, or a test
// fixture tree) load from source directories supplied by Local, and
// everything else — in practice the standard library — falls back to
// the stdlib "source" importer, which type-checks GOROOT sources
// directly. Fully offline, at the cost of type-checking the stdlib
// closure once per process (cached in the importer afterwards).
type Loader struct {
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet
	// Local resolves an import path to a source directory for packages
	// that should be loaded (and analyzed) from local source. Returning
	// ok=false delegates the path to the stdlib source importer.
	Local func(path string) (dir string, ok bool)
	// IncludeTests adds in-package *_test.go files. External test
	// packages (package foo_test) are out of scope: their sources
	// belong to a different package and go vet already covers them.
	IncludeTests bool

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader builds a loader. local maps import paths to local source
// directories (see Loader.Local).
func NewLoader(local func(path string) (dir string, ok bool)) *Loader {
	// The source importer type-checks dependencies from GOROOT source
	// via build.Default. Cgo-flavored packages (net, os/user) would
	// make it shell out to the cgo tool; forcing the pure-Go fallback
	// keeps loading hermetic. srcimporter holds a pointer to
	// build.Default, so flipping the global here is effective.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Local:   local,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// ModuleLocal returns a Local resolver for the module rooted at dir
// with the given module path (from its go.mod).
func ModuleLocal(modPath, dir string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modPath {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
}

// TreeLocal returns a Local resolver that maps every import path to a
// subdirectory of root if one exists — the fixture layout used by
// analysistest (testdata/src/<path>).
func TreeLocal(root string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// ModulePath reads the module path from the go.mod in dir.
func ModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// Load returns the type-checked package at the given import path,
// loading it (and, recursively, its local dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.Local(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not a local package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	names := append([]string{}, bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFor(l, dir),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts a Loader to types.ImporterFrom: local paths
// load from source through the loader, the rest through the stdlib
// source importer.
type loaderImporter struct {
	l   *Loader
	dir string // importing package's directory, for ImportFrom
}

func importerFor(l *Loader, dir string) types.ImporterFrom {
	return &loaderImporter{l: l, dir: dir}
}

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.dir, 0)
}

func (im *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := im.l.Local(path); ok {
		p, err := im.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return im.l.std.ImportFrom(path, srcDir, 0)
}

// LoadModule loads every package of the module rooted at dir whose
// import path matches patterns. Supported patterns are "./..." (every
// package), "./dir/..." (a subtree), and "./dir" or a full import path
// (one package). Directories named testdata, hidden directories, and
// directories without Go files are skipped, mirroring the go command.
func LoadModule(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	modPath, err := ModulePath(dir)
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader(ModuleLocal(modPath, dir))
	paths, err := Match(dir, modPath, patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, l.Fset, nil
}

// Match expands patterns to the module's matching import paths, in
// lexical order.
func Match(dir, modPath string, patterns []string) ([]string, error) {
	all, err := modulePackages(dir, modPath)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := importPathFor(modPath, strings.TrimSuffix(pat, "/..."))
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		default:
			add(importPathFor(modPath, pat))
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor turns a "./x/y" pattern into a module import path;
// full import paths pass through.
func importPathFor(modPath, pat string) string {
	if pat == "." || pat == "./" {
		return modPath
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		return modPath + "/" + strings.Trim(rest, "/")
	}
	return pat
}

// modulePackages walks the module tree for directories containing Go
// files.
func modulePackages(dir, modPath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modPath)
		} else {
			out = append(out, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
