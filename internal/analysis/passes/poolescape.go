package passes

import (
	"go/ast"
	"go/types"

	"gompresso/internal/analysis"
)

// Poolescape flags sync.Pool values that outlive the function which
// obtained them through an unmanaged channel: returned to an arbitrary
// caller, sent on a channel, or stored into a struct field, global, or
// composite literal. Once a pooled buffer escapes this way, nothing
// ties its lifetime to the eventual Put — a later Get can hand the same
// backing array to a second goroutine while the first still reads it,
// which in this codebase means decoded block bytes silently swapping
// under an HTTP response.
//
// Passing the value to a callee (including pool.Put itself, possibly
// deferred) is allowed: call arguments are the normal way to lend a
// scratch buffer downward. The handful of sanctioned lifecycle helpers
// that deliberately hand pooled memory upward behind a matching release
// (format.GetScratch/PutScratch, blockcache's refcounted Buf, the
// pooledBuf helpers) carry //lint:allow poolescape annotations at the
// escape site, which keeps every such contract enumerable by `grep`.
var Poolescape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "sync.Pool values must not escape the acquiring function unmanaged\n\n" +
		"Returning, sending, or storing a pooled value divorces its lifetime from the\n" +
		"Put that recycles it; reuse then aliases memory across goroutines.",
	Run: runPoolescape,
}

func runPoolescape(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			checkPoolEscapes(pass, d.Body)
		}
	}
	return nil
}

func checkPoolEscapes(pass *analysis.Pass, body *ast.BlockStmt) {
	// Tracked local variables holding a (possibly type-asserted) result
	// of (*sync.Pool).Get.
	tracked := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		track := func(lhs ast.Expr) {
			if id, ok := lhs.(*ast.Ident); ok {
				if v, ok := objectOfIdent(pass, id).(*types.Var); ok {
					tracked[v] = true
				}
			}
		}
		switch {
		case len(a.Lhs) == len(a.Rhs):
			for i, rhs := range a.Rhs {
				if isPoolGet(pass, rhs) {
					track(a.Lhs[i])
				}
			}
		case len(a.Rhs) == 1 && len(a.Lhs) == 2 && isPoolGet(pass, a.Rhs[0]):
			track(a.Lhs[0]) // comma-ok assertion: p, ok := pool.Get().(*T)
		}
		return true
	})

	// carrier resolves e to the tracked variable whose pooled memory it
	// carries: pool.Get() itself, a tracked ident, or a slice/deref of
	// one — (*bp)[:n], *bp, v[i:j] all alias the pooled backing array.
	carrier := func(e ast.Expr) (*types.Var, bool) {
		e = ast.Unparen(e)
		if isPoolGet(pass, e) {
			return nil, true
		}
		for {
			switch x := e.(type) {
			case *ast.StarExpr:
				e = ast.Unparen(x.X)
			case *ast.SliceExpr:
				e = ast.Unparen(x.X)
			default:
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && tracked[v] {
						return v, true
					}
				}
				return nil, false
			}
		}
	}
	carries := func(e ast.Expr) bool {
		_, ok := carrier(e)
		return ok
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if carries(res) {
					pass.Reportf(res.Pos(),
						"sync.Pool value returned from the acquiring function; its lifetime detaches from Put")
				}
			}
		case *ast.SendStmt:
			if carries(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"sync.Pool value sent on a channel; its lifetime detaches from Put")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					continue
				}
				src, ok := carrier(n.Rhs[i])
				if !ok {
					continue
				}
				// In-place resize through the pooled pointer itself
				// (*bp = (*bp)[:n]) keeps the value local.
				if dst, ok := carrier(lhs); ok && dst != nil && dst == src {
					continue
				}
				if escapingLHS(pass, lhs) {
					pass.Reportf(n.Rhs[i].Pos(),
						"sync.Pool value stored to %s; it escapes the acquiring function", lhsKind(pass, lhs))
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if carries(elt) {
					pass.Reportf(elt.Pos(),
						"sync.Pool value placed in a composite literal; it escapes the acquiring function")
				}
			}
		}
		return true
	})
}

// isPoolGet reports whether e is a call of (*sync.Pool).Get, looking
// through parens and a type assertion (the idiomatic
// pool.Get().(*[]byte) shape).
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// escapingLHS reports whether assigning to lhs moves the value beyond
// the function: a struct field, a dereference, an index of a non-local
// container, or a package-level variable. Plain stores to local
// variables (including local slices) keep the value in-function.
func escapingLHS(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := objectOfIdent(pass, lhs).(*types.Var)
		return ok && isGlobal(v)
	case *ast.SelectorExpr, *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if v, ok := objectOfIdent(pass, id).(*types.Var); ok && !isGlobal(v) {
				return false // local container; stays in-function unless that escapes
			}
		}
		return true
	}
	return false
}

// lhsKind names the escaping destination for the diagnostic.
func lhsKind(pass *analysis.Pass, lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	case *ast.IndexExpr:
		return "a non-local container"
	default:
		return "a package-level variable"
	}
}

// objectOfIdent resolves an identifier whether it defines or uses the
// object (:= defines; = uses).
func objectOfIdent(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
