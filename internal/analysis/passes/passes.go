// Package passes holds gompresso's custom analyzers: mechanical
// enforcement of the concurrency and resource invariants the serving
// stack depends on. Each analyzer encodes one reviewer rule that was
// previously maintained by hand (see DESIGN.md, "Static analysis"):
//
//	refbalance   — pinned blockcache buffers are released on every path
//	spanbalance  — spans from obs.Start are ended on every path
//	ctxguard     — request paths thread ctx; no context.Background there
//	errwrapclass — error chains that drive classification survive wrapping
//	poolescape   — pooled buffers never escape their owner
//	atomicfield  — fields accessed atomically are accessed atomically everywhere
package passes

import "gompresso/internal/analysis"

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Refbalance,
		Spanbalance,
		Ctxguard,
		Errwrapclass,
		Poolescape,
		Atomicfield,
	}
}
