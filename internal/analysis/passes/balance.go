package passes

// The acquire/release abstract interpreter shared by refbalance
// (pinned blockcache.Buf ↔ Release) and spanbalance (obs.Start span ↔
// End). Both analyzers enforce the same shape of invariant — a value
// acquired from a call owes exactly one settling method call on every
// control-flow path — so the machinery lives here once, parameterized
// by a balanceSpec, and each analyzer is a thin spec.
//
// The interpreter walks each function body with a small state lattice
// per tracked variable. A variable acquires the owing state when
// assigned from a call returning the target type (at any result-tuple
// position); `defer x.<Release>()` settles the obligation; branch
// merges union the possible states; and the `x, err := ...; if err !=
// nil` idiom is understood (nothing is owed on the failure path).
// Obligations that move out of scope — returning the value, passing it
// to a callee, storing it anywhere — end local tracking rather than
// report, so helpers that intentionally hand an obligation upward stay
// clean. Functions using goto or labeled branches are skipped.

import (
	"go/ast"
	"go/token"
	"go/types"

	"gompresso/internal/analysis"
)

// balanceSpec parameterizes the interpreter for one acquire/release
// discipline.
type balanceSpec struct {
	// exemptPkgs are package-path suffixes whose internals manage the
	// discipline directly (the implementing package itself).
	exemptPkgs []string
	// releaseName is the settling method ("Release", "End").
	releaseName string
	// isTarget recognizes the tracked type among a call's results.
	isTarget func(types.Type) bool
	// Diagnostics. msgLeak, msgReassign, and msgDouble take the
	// variable name; msgDiscard takes no arguments.
	msgLeak     string
	msgDiscard  string
	msgReassign string
	msgDouble   string
}

// refMask is a set of possible states for one tracked variable.
type refMask uint8

const (
	stPinned   refMask = 1 << iota // acquired, settling call owed on this path
	stDeferred                     // acquired, settling call deferred
	stReleased                     // settled
	stUnknown                      // escaped, failure path, or lost track
)

type refEnv map[*types.Var]refMask

func (e refEnv) clone() refEnv {
	c := make(refEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func mergeEnv(a, b refEnv) refEnv {
	m := a.clone()
	for k, v := range b {
		m[k] |= v
	}
	return m
}

func runBalance(pass *analysis.Pass, spec *balanceSpec) error {
	if pkgMatches(pass.Pkg.Path(), spec.exemptPkgs) {
		return nil
	}
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		newBalFunc(pass, spec).analyze(body)
	})
	return nil
}

type balFunc struct {
	pass       *analysis.Pass
	spec       *balanceSpec
	acquirePos map[*types.Var]token.Pos
	errFor     map[*types.Var]*types.Var // tracked var -> paired err var
	reported   map[token.Pos]bool
}

func newBalFunc(pass *analysis.Pass, spec *balanceSpec) *balFunc {
	return &balFunc{
		pass:       pass,
		spec:       spec,
		acquirePos: make(map[*types.Var]token.Pos),
		errFor:     make(map[*types.Var]*types.Var),
		reported:   make(map[token.Pos]bool),
	}
}

func (r *balFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if !r.reported[pos] {
		r.reported[pos] = true
		r.pass.Reportf(pos, format, args...)
	}
}

func (r *balFunc) analyze(body *ast.BlockStmt) {
	if usesGoto(body) {
		return // irreducible flow: out of scope, and absent from this repo
	}
	env, terminated := r.stmt(make(refEnv), body)
	if !terminated {
		r.checkLeaks(env)
	}
}

// checkLeaks reports every variable that may still owe a settling call.
func (r *balFunc) checkLeaks(env refEnv) {
	for v, mask := range env {
		if mask&stPinned != 0 {
			r.reportOnce(r.acquirePos[v], r.spec.msgLeak, v.Name())
		}
	}
}

// stmt interprets s in env, returning the resulting env and whether
// every path through s terminates the function.
func (r *balFunc) stmt(env refEnv, s ast.Stmt) (refEnv, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.BranchStmt, *ast.IncDecStmt:
		return env, false

	case *ast.BlockStmt:
		terminated := false
		for _, st := range s.List {
			env, terminated = r.stmt(env, st)
			if terminated {
				return env, true
			}
		}
		return env, false

	case *ast.ExprStmt:
		return r.exprStmt(env, s.X), false

	case *ast.AssignStmt:
		return r.assign(env, s), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					env = r.valueSpec(env, vs)
				}
			}
		}
		return env, false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if v := r.trackedIdent(env, res); v != nil {
				env[v] = stUnknown // obligation transfers to the caller
			} else {
				env = r.escapes(env, res)
			}
		}
		r.checkLeaks(env)
		return env, true

	case *ast.DeferStmt:
		return r.deferStmt(env, s), false

	case *ast.GoStmt:
		return r.escapes(env, s.Call), false

	case *ast.SendStmt:
		env = r.escapes(env, s.Chan)
		return r.escapes(env, s.Value), false

	case *ast.IfStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Cond)
		thenEnv := r.refine(env.clone(), s.Cond, true)
		elseEnv := r.refine(env.clone(), s.Cond, false)
		thenEnv, thenTerm := r.stmt(thenEnv, s.Body)
		elseEnv, elseTerm := r.stmt(elseEnv, s.Else)
		switch {
		case thenTerm && elseTerm:
			return env, true
		case thenTerm:
			return elseEnv, false
		case elseTerm:
			return thenEnv, false
		default:
			return mergeEnv(thenEnv, elseEnv), false
		}

	case *ast.ForStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Cond)
		return r.loop(env, func(e refEnv) refEnv {
			e, term := r.stmt(e, s.Body)
			if !term {
				e, _ = r.stmt(e, s.Post)
			}
			return e
		}), false

	case *ast.RangeStmt:
		env = r.escapes(env, s.X)
		return r.loop(env, func(e refEnv) refEnv {
			e, _ = r.stmt(e, s.Body)
			return e
		}), false

	case *ast.SwitchStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Tag)
		return r.branches(env, caseBodies(s.Body), hasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		env, _ = r.stmt(env, s.Init)
		env, _ = r.stmt(env, s.Assign)
		return r.branches(env, caseBodies(s.Body), hasDefault(s.Body))

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				env, _ = r.stmt(env, cc.Comm)
			}
			bodies = append(bodies, cc.Body)
		}
		// A select always takes one of its clauses (a blocking select
		// waits; a default clause is itself in bodies), so unlike a
		// switch there is no fall-past path keeping the entry env —
		// `sp := Start(...); select { case ...: sp.End() }` is balanced.
		return r.branches(env, bodies, true)

	case *ast.LabeledStmt:
		return r.stmt(env, s.Stmt)

	default:
		return r.escapesInStmt(env, s), false
	}
}

// loop runs body twice from progressively merged states — enough to
// reach fixpoint for this lattice — and merges with the zero-iteration
// path.
func (r *balFunc) loop(entry refEnv, body func(refEnv) refEnv) refEnv {
	once := body(entry.clone())
	twice := body(mergeEnv(entry, once))
	return mergeEnv(entry, twice)
}

// branches merges the case bodies of a switch/select; without a default
// the fall-past path keeps the entry env.
func (r *balFunc) branches(env refEnv, bodies [][]ast.Stmt, hasDefault bool) (refEnv, bool) {
	merged := refEnv(nil)
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		be, term := r.stmt(env.clone(), &ast.BlockStmt{List: b})
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = be
		} else {
			merged = mergeEnv(merged, be)
		}
	}
	if !hasDefault {
		allTerm = false
		if merged == nil {
			merged = env
		} else {
			merged = mergeEnv(merged, env)
		}
	}
	if allTerm {
		return env, true
	}
	if merged == nil {
		merged = env
	}
	return merged, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprStmt handles a bare expression statement: a settling call, a
// discarded acquisition, or an ordinary call whose arguments may
// capture tracked values.
func (r *balFunc) exprStmt(env refEnv, e ast.Expr) refEnv {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return r.escapes(env, e)
	}
	if v := r.releaseCall(env, call); v != nil {
		return r.doRelease(env, v, call.Pos())
	}
	if r.acquireIndex(call) >= 0 {
		r.reportOnce(call.Pos(), "%s", r.spec.msgDiscard)
		return env
	}
	return r.escapes(env, call)
}

func (r *balFunc) assign(env refEnv, s *ast.AssignStmt) refEnv {
	// Acquisition: x, err := acquire(...), x := acquire(...), or — with
	// the target at a later tuple position — ctx, sp := acquire(...).
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if ri := r.acquireIndex(call); ri >= 0 && ri < len(s.Lhs) {
				env = r.escapes(env, call) // args first (e.g. a tracked value passed in)
				switch lhs := s.Lhs[ri].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						r.reportOnce(call.Pos(), "%s", r.spec.msgDiscard)
						return env
					}
					v, ok := objectOfIdent(r.pass, lhs).(*types.Var)
					if !ok {
						return env
					}
					if env[v]&stPinned != 0 {
						r.reportOnce(r.acquirePos[v], r.spec.msgReassign, v.Name())
					}
					env[v] = stPinned
					r.acquirePos[v] = call.Pos()
					for j, other := range s.Lhs {
						if j == ri {
							continue
						}
						if errID, ok := other.(*ast.Ident); ok && errID.Name != "_" {
							if ev, ok := objectOfIdent(r.pass, errID).(*types.Var); ok && implementsError(ev.Type()) {
								r.errFor[v] = ev
							}
						}
					}
					return env
				default:
					// Acquired straight into a field/element: escapes immediately.
					return env
				}
			}
		}
	}
	// General assignment: escaping stores, aliasing, overwrites.
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil {
			if v := r.trackedIdent(env, rhs); v != nil {
				env[v] = stUnknown // aliased or stored: stop tracking
			} else {
				env = r.escapes(env, rhs)
			}
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := objectOfIdent(r.pass, id).(*types.Var); ok {
				if env[v]&stPinned != 0 {
					r.reportOnce(r.acquirePos[v], r.spec.msgReassign, v.Name())
				}
				if _, tracked := env[v]; tracked {
					env[v] = stUnknown
				}
			}
		} else {
			env = r.escapes(env, lhs)
		}
	}
	return env
}

func (r *balFunc) valueSpec(env refEnv, vs *ast.ValueSpec) refEnv {
	if len(vs.Values) == 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			if ri := r.acquireIndex(call); ri >= 0 && ri < len(vs.Names) {
				if v, ok := r.pass.TypesInfo.Defs[vs.Names[ri]].(*types.Var); ok {
					env[v] = stPinned
					r.acquirePos[v] = call.Pos()
				}
				return env
			}
		}
	}
	for _, val := range vs.Values {
		env = r.escapes(env, val)
	}
	return env
}

func (r *balFunc) deferStmt(env refEnv, s *ast.DeferStmt) refEnv {
	if v := r.releaseCall(env, s.Call); v != nil {
		if env[v]&(stDeferred|stReleased) != 0 {
			r.reportOnce(s.Call.Pos(), r.spec.msgDouble, v.Name())
		}
		env[v] = env[v]&^stPinned | stDeferred
		return env
	}
	// defer func() { ... x.<Release>() ... }(): settling calls inside
	// the deferred literal settle obligations; other captured values
	// escape.
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok && len(s.Call.Args) == 0 {
		released := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := r.releaseCall(env, call); v != nil {
					released[v] = true
					return false
				}
			}
			return true
		})
		for v := range released {
			env[v] = env[v]&^stPinned | stDeferred
		}
		// Escape scan of the rest of the literal, skipping the releases.
		env = r.escapesSkippingReleases(env, lit.Body, released)
		return env
	}
	return r.escapes(env, s.Call)
}

// doRelease transitions v through an immediate settling call.
func (r *balFunc) doRelease(env refEnv, v *types.Var, pos token.Pos) refEnv {
	mask := env[v]
	if mask&(stReleased|stDeferred) != 0 {
		r.reportOnce(pos, r.spec.msgDouble, v.Name())
	}
	if mask&stPinned != 0 || mask&(stReleased|stDeferred) != 0 {
		env[v] = stReleased
	}
	return env
}

// releaseCall returns the tracked variable x when call is
// x.<releaseName>().
func (r *balFunc) releaseCall(env refEnv, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != r.spec.releaseName {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := r.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := env[v]; !tracked {
		return nil
	}
	return v
}

// acquireIndex returns the position of the tracked type in call's
// result tuple (0 for a single-value result), or -1 when the call does
// not acquire.
func (r *balFunc) acquireIndex(call *ast.CallExpr) int {
	t := r.pass.TypeOf(call)
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if r.spec.isTarget(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if r.spec.isTarget(t) {
		return 0
	}
	return -1
}

// trackedIdent returns the tracked variable e denotes, or nil.
func (r *balFunc) trackedIdent(env refEnv, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := r.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := env[v]; !tracked {
		return nil
	}
	return v
}

// escapes scans an expression tree: a tracked variable used anywhere
// except as a method receiver or in a pointer comparison loses
// tracking (its obligation moved somewhere this checker cannot see).
// Function literals are analyzed as functions of their own.
func (r *balFunc) escapes(env refEnv, n ast.Node) refEnv {
	return r.escapesSkippingReleases(env, n, nil)
}

func (r *balFunc) escapesSkippingReleases(env refEnv, n ast.Node, skipRelease map[*types.Var]bool) refEnv {
	if n == nil || len(env) == 0 {
		return env
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			for v := range env {
				if capturedIn(r.pass, node, v) && !skipRelease[v] {
					env[v] = stUnknown
				}
			}
			newBalFunc(r.pass, r.spec).analyze(node.Body)
			return false
		case *ast.SelectorExpr:
			// x.Method() / x.field: reading through the variable does not
			// move the obligation.
			if id, ok := ast.Unparen(node.X).(*ast.Ident); ok {
				if _, tracked := env[identVar(r.pass, id)]; tracked {
					return false
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.EQL || node.Op == token.NEQ {
				return false // pointer comparison, typically against nil
			}
		case *ast.Ident:
			if v := identVar(r.pass, node); v != nil && !skipRelease[v] {
				if _, tracked := env[v]; tracked {
					env[v] = stUnknown
				}
			}
		}
		return true
	})
	return env
}

// escapesInStmt applies the escape scan to every expression hanging off
// an unhandled statement kind.
func (r *balFunc) escapesInStmt(env refEnv, s ast.Stmt) refEnv {
	return r.escapes(env, s)
}

// refine narrows env under the branch condition: after
// `x, err := acquire(...)`, x is nil (nothing owed) wherever err != nil.
func (r *balFunc) refine(env refEnv, cond ast.Expr, branch bool) refEnv {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return env
	}
	var errExpr ast.Expr
	switch {
	case isNilIdent(be.Y):
		errExpr = be.X
	case isNilIdent(be.X):
		errExpr = be.Y
	default:
		return env
	}
	id, ok := ast.Unparen(errExpr).(*ast.Ident)
	if !ok {
		return env
	}
	ev := identVar(r.pass, id)
	if ev == nil {
		return env
	}
	// errIsNonNil in the branch we are entering?
	errNonNil := (be.Op == token.NEQ) == branch
	if !errNonNil {
		return env
	}
	for trackedVar, pairedErr := range r.errFor {
		if pairedErr == ev {
			if _, tracked := env[trackedVar]; tracked {
				env[trackedVar] = stUnknown
			}
		}
	}
	return env
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func identVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// capturedIn reports whether the function literal references v.
func capturedIn(pass *analysis.Pass, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// usesGoto reports whether the body contains goto or a labeled
// break/continue — control flow this interpreter does not model.
func usesGoto(body *ast.BlockStmt) bool {
	uses := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && (b.Tok == token.GOTO || b.Label != nil) {
			uses = true
		}
		return !uses
	})
	return uses
}
