package passes_test

import (
	"path/filepath"
	"testing"

	"gompresso/internal/analysis"
	"gompresso/internal/analysis/passes"
)

// TestRepoIsClean is the CI gate in miniature: the whole module must
// analyze with zero unsuppressed findings, so a regression against any
// enforced invariant fails `go test` as well as the lint job.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, err := analysis.LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := analysis.Run(pkgs, passes.All(), fset)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range analysis.Unsuppressed(findings) {
		t.Errorf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
}
