package passes_test

import (
	"testing"

	"gompresso/internal/analysis/analysistest"
	"gompresso/internal/analysis/passes"
)

func TestCtxguard(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Ctxguard,
		"gompresso", "ctxguard/other", "ctxguard/gompresso")
}

func TestErrwrapclass(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Errwrapclass, "errwrap/a")
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Atomicfield, "atomicfield/a")
}

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Poolescape, "poolescape/a")
}

func TestRefbalance(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Refbalance, "refbalance/a")
}

func TestSpanbalance(t *testing.T) {
	analysistest.Run(t, "testdata", passes.Spanbalance, "spanbalance/a")
}

func TestAllRegistered(t *testing.T) {
	all := passes.All()
	if len(all) != 6 {
		t.Fatalf("All() returned %d analyzers, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
