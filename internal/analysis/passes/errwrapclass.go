package passes

import (
	"go/ast"
	"go/constant"

	"gompresso/internal/analysis"
)

// Errwrapclass enforces that error chains survive wrapping. The serving
// stack classifies failures by unwrapping: quarantine triggers on
// errors.Is/As against deflate.Error, format.ErrFormat, lz77.ErrCorrupt
// and friends; retry logic keys on fault.ErrInjected and context
// errors; sidecar handling on gzidx.ErrSidecar. A fmt.Errorf that
// formats an underlying error with %v or %s (instead of wrapping with
// %w) silently severs that chain — the error still reads fine in a log
// line, and the misclassification only shows up as a quarantined object
// that should have been retried, or vice versa.
//
// Flagged:
//
//	fmt.Errorf("...: %v", err)        — chain severed; use %w
//	fmt.Errorf("%w: ...: %s", e, err) — outer sentinel survives, inner cause severed
//	errors.New(fmt.Sprintf(...))      — use fmt.Errorf (and %w for causes)
//
// Since Go 1.20 fmt.Errorf accepts multiple %w verbs, so "%w: %w" is
// the fix for the sentinel-plus-cause shape. The rare call site that
// must flatten an error into text (e.g. a value persisted to disk)
// carries a //lint:allow errwrapclass annotation.
var Errwrapclass = &analysis.Analyzer{
	Name: "errwrapclass",
	Doc: "error values formatted with %v/%s/%q instead of %w sever the errors.Is/As chain\n\n" +
		"Quarantine, retry, and sidecar classification depend on typed errors surviving\n" +
		"every wrap between the decoder and the server.",
	Run: runErrwrapclass,
}

func runErrwrapclass(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLI leaves render errors terminally; chains end there
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			switch {
			case isPkgFunc(fn, "fmt", "Errorf"):
				checkErrorf(pass, call)
			case isPkgFunc(fn, "errors", "New") && len(call.Args) == 1:
				if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
					if isPkgFunc(calleeFunc(pass, inner), "fmt", "Sprintf") {
						pass.Reportf(call.Pos(),
							"errors.New(fmt.Sprintf(...)): use fmt.Errorf, with %%w for any wrapped cause")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags error-typed arguments of fmt.Errorf matched to a
// chain-severing verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	if !ok {
		return // dynamic format string: nothing to prove
	}
	for _, v := range parseVerbs(format) {
		if v.verb == 'w' || v.verb == 'T' {
			continue
		}
		argIdx := 1 + v.arg // fmt.Errorf's operands start after the format
		if argIdx >= len(call.Args) {
			continue // vet's printf pass owns arity complaints
		}
		arg := call.Args[argIdx]
		if implementsError(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"error formatted with %%%c severs its errors.Is/As chain; wrap with %%w", v.verb)
		}
	}
}

// stringConstant evaluates e as a constant string.
func stringConstant(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// fmtVerb is one conversion in a format string: the verb rune and the
// zero-based operand index it consumes.
type fmtVerb struct {
	verb byte
	arg  int
}

// parseVerbs scans a printf format string, tracking operand indexes the
// way package fmt does — including '*' width/precision operands and
// explicit [n] argument indexes. Close enough to fmt's own scanner for
// classification; arity errors are vet's printf pass's problem.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && strings_ContainsByte("+-# 0", format[i]) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index [n]
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		out = append(out, fmtVerb{verb: format[i], arg: arg})
		arg++
	}
	return out
}

func strings_ContainsByte(s string, b byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return true
		}
	}
	return false
}
