package passes

import (
	"go/types"

	"gompresso/internal/analysis"
)

// Spanbalance checks that every span from obs.Start is ended on every
// control-flow path. An un-Ended span never reports its duration to the
// per-stage histograms — the stage silently under-counts — and it holds
// a slot in the request's fixed span table until the trace is recycled,
// so a leak on a hot path starves later spans into the dropped counter.
// Ending twice double-observes the duration into the histogram, skewing
// the percentiles the SLO checks read.
//
// The analysis is the shared acquire/release interpreter in balance.go
// instantiated for the Span↔End discipline. obs.Start returns
// (context.Context, *Span) — the interpreter tracks the *Span result at
// whatever tuple position it appears. The obs package itself is exempt:
// it manipulates span lifecycles directly and is covered by its own
// tests.
var Spanbalance = &analysis.Analyzer{
	Name: "spanbalance",
	Doc: "spans from obs.Start must be ended on every control-flow path\n\n" +
		"A leaked span under-counts its stage and starves the request's span table;\n" +
		"a double End double-observes the duration.",
	Run: func(pass *analysis.Pass) error { return runBalance(pass, spanbalanceSpec) },
}

var spanbalanceSpec = &balanceSpec{
	exemptPkgs:  []string{"obs"},
	releaseName: "End",
	isTarget:    isSpanPtr,
	msgLeak:     "span %s from obs.Start is not ended on every path (missing End or defer)",
	msgDiscard:  "span from obs.Start discarded; it can never be ended",
	msgReassign: "span %s reassigned while still owing an End",
	msgDouble:   "span %s may already be ended here (double End)",
}

// isSpanPtr reports whether t is *obs.Span (matched by package path
// suffix so the analysistest fixture package qualifies too).
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && pkgMatches(obj.Pkg().Path(), []string{"obs"})
}
