// Fixture for atomicfield.
package a

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64 // only ever plain: not flagged
	typed  atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1) // establishes: hits is an atomic field
	c.misses++                  // ok: misses is never accessed atomically
}

func (c *counter) read() int64 {
	return c.hits // want `plain access to hits, which is accessed atomically at`
}

func (c *counter) write() {
	c.hits = 0 // want `plain access to hits`
}

func (c *counter) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits) // ok
}

func (c *counter) typedOnly() int64 {
	c.typed.Add(1)        // typed atomics force consistency by construction
	return c.typed.Load() // ok
}

var global int32

func bumpGlobal() {
	atomic.AddInt32(&global, 1)
}

func readGlobal() int32 {
	return global // want `plain access to global`
}

func (c *counter) allowed() int64 {
	//lint:allow atomicfield fixture: guarded by a mutex in real code
	return c.hits
}
