// Fixture for errwrapclass.
package a

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

type codedError struct{ code int }

func (e *codedError) Error() string { return "coded" }

func severed(err error) error {
	return fmt.Errorf("decode: %v", err) // want `error formatted with %v severs its errors.Is/As chain`
}

func severedString(err error) error {
	return fmt.Errorf("decode: %s", err) // want `error formatted with %s severs`
}

func severedQuoted(err error) error {
	return fmt.Errorf("decode: %q", err) // want `error formatted with %q severs`
}

func severedInner(err error) error {
	return fmt.Errorf("%w: block 3: %v", errBase, err) // want `error formatted with %v severs`
}

func severedConcrete(e *codedError) error {
	return fmt.Errorf("decode: %v", e) // want `error formatted with %v severs`
}

func wrapped(err error) error {
	return fmt.Errorf("decode: %w", err) // ok
}

func doubleWrapped(err error) error {
	return fmt.Errorf("%w: %w", errBase, err) // ok: Go 1.20 multi-%w
}

func typeOnly(err error) error {
	return fmt.Errorf("decode failed (%T)", err) // ok: %T formats the type, not the chain
}

func nonError(n int) error {
	return fmt.Errorf("decode: block %d: %v", n, n) // ok: no error operand
}

func widthOperand(err error) error {
	return fmt.Errorf("%*d: %w", 8, 42, err) // ok: '*' consumes an operand before the verb
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // ok: nothing to prove about a dynamic format
}

func sprintfNew(err error) error {
	return errors.New(fmt.Sprintf("decode: %v", err)) // want `errors\.New\(fmt\.Sprintf\(\.\.\.\)\)`
}

func plainNew() error {
	return errors.New("decode failed") // ok
}

func allowedFlatten(err error) string {
	//lint:allow errwrapclass fixture: value is persisted as text, chain ends here
	e := fmt.Errorf("decode: %v", err)
	return e.Error()
}
