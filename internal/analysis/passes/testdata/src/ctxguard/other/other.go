// Fixture for ctxguard: an unguarded package may build root contexts,
// but the ctx-first convention still applies everywhere.
package other

import "context"

func fresh() context.Context {
	return context.Background() // ok: not a guarded package
}

func ctxLast(n int, ctx context.Context) { // want `found at position 2`
	_, _ = n, ctx
}
