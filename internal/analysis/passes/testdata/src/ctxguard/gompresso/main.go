// Fixture for ctxguard: entry points own the process lifetime, so a
// main package is exempt from the root-context ban even when its import
// path collides with a guarded suffix.
package main

import "context"

func main() {
	ctx := context.Background() // ok: package main owns the root context
	_ = ctx
}
