// Fixture for ctxguard: the import path "gompresso" matches the
// guarded-package list, so root contexts are forbidden and ctx-first is
// enforced.
package gompresso

import "context"

func fresh() context.Context {
	return context.Background() // want `context.Background\(\) on a request path`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) on a request path`
}

func ctxLast(n int, ctx context.Context) int { // want `context.Context should be the first parameter \(found at position 2\)`
	_ = ctx
	return n
}

func ctxMiddle(a string, ctx context.Context, b string) string { // want `found at position 2`
	_ = ctx
	return a + b
}

func ctxFirst(ctx context.Context, n int) int { // ok
	_ = ctx
	return n
}

func noCtx(n int) int { return n } // ok

func allowed() context.Context {
	//lint:allow ctxguard fixture: sanctioned construction-time default
	return context.Background()
}
