// Fixture for poolescape.
package a

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

type holder struct {
	buf *[]byte
}

var sink *[]byte

func returned() *[]byte {
	return pool.Get().(*[]byte) // want `sync.Pool value returned from the acquiring function`
}

func returnedViaVar() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp // want `sync.Pool value returned`
}

func returnedSlice() []byte {
	bp := pool.Get().(*[]byte)
	return (*bp)[:4] // want `sync.Pool value returned`
}

func storedField(h *holder) {
	h.buf = pool.Get().(*[]byte) // want `sync.Pool value stored to a struct field`
}

func storedGlobal() {
	bp := pool.Get().(*[]byte)
	sink = bp // want `sync.Pool value stored to a package-level variable`
}

func sent(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp // want `sync.Pool value sent on a channel`
}

func inComposite() {
	bp := pool.Get().(*[]byte)
	_ = holder{buf: bp} // want `sync.Pool value placed in a composite literal`
}

func commaOK(h *holder) {
	if bp, ok := pool.Get().(*[]byte); ok {
		h.buf = bp // want `sync.Pool value stored to a struct field`
	}
}

func balanced() int {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp) // ok: call arguments lend the value downward
	return len(*bp)
}

func resizedInPlace() {
	bp := pool.Get().(*[]byte)
	*bp = (*bp)[:0] // ok: rewriting the pooled value's own pointee stays local
	pool.Put(bp)
}

func localSlice() {
	locals := make([]*[]byte, 1)
	bp := pool.Get().(*[]byte)
	locals[0] = bp // ok: local container
	pool.Put(locals[0])
}

func allowed() *[]byte {
	bp := pool.Get().(*[]byte)
	//lint:allow poolescape fixture: lifecycle helper paired with a Put elsewhere
	return bp
}
