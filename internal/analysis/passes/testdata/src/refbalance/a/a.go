// Fixture for refbalance.
package a

import (
	"context"

	"refbalance/blockcache"
)

var key = blockcache.Key{Object: 1}

func decode([]byte) error { return nil }

func leakOnBranch(ctx context.Context, c *blockcache.Cache, cond bool) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode) // want `not released on every path`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks b
	}
	b.Release()
	return nil
}

func leakNoRelease(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode) // want `not released on every path`
	if err != nil {
		return err
	}
	_ = b.Bytes()
	return nil
}

func balancedDefer(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err // ok: no buffer is pinned on the failure path
	}
	defer b.Release()
	return nil
}

func balancedDeferredClosure(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	defer func() { b.Release() }()
	return nil
}

func balancedBranches(ctx context.Context, c *blockcache.Cache, cond bool) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	if cond {
		b.Release()
		return nil
	}
	b.Release()
	return nil
}

func doubleRelease(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	b.Release()
	b.Release() // want `may already be released here`
	return nil
}

func deferredThenReleased(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	defer b.Release()
	b.Release() // want `may already be released here`
	return nil
}

func branchDoubleRelease(ctx context.Context, c *blockcache.Cache, cond bool) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	if cond {
		b.Release()
	}
	b.Release() // want `may already be released here`
	return nil
}

func discarded(ctx context.Context, c *blockcache.Cache) {
	c.GetOrDecode(ctx, key, 64, decode) // want `pinned Buf result discarded`
}

func discardedBlank(ctx context.Context, c *blockcache.Cache) error {
	_, err := c.GetOrDecode(ctx, key, 64, decode) // want `pinned Buf result discarded`
	return err
}

func reassigned(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode) // want `reassigned while still owing a Release`
	if err != nil {
		return err
	}
	b, err = c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	b.Release()
	return nil
}

// transfer hands the pinned buffer to the caller: the obligation moves
// with it, so nothing is reported here.
func transfer(ctx context.Context, c *blockcache.Cache) (*blockcache.Buf, error) {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return nil, err
	}
	return b, nil // ok: caller now owes the Release
}

func lend(b *blockcache.Buf) {}

func passedDown(ctx context.Context, c *blockcache.Cache) error {
	b, err := c.GetOrDecode(ctx, key, 64, decode)
	if err != nil {
		return err
	}
	lend(b) // ok: callee takes responsibility; tracking stops
	return nil
}

func loopBalanced(ctx context.Context, c *blockcache.Cache) error {
	for i := 0; i < 4; i++ {
		b, err := c.GetOrDecode(ctx, key, 64, decode)
		if err != nil {
			return err
		}
		b.Release()
	}
	return nil
}

func allowedLeak(ctx context.Context, c *blockcache.Cache) {
	//lint:allow refbalance fixture: intentionally pinned for process lifetime
	b, _ := c.GetOrDecode(ctx, key, 64, decode)
	_ = b.Bytes()
}
