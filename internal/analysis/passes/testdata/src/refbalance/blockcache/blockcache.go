// Fixture stand-in for the real blockcache package: the refbalance
// analyzer recognizes the Buf type by name and package suffix, so this
// minimal shape exercises it without importing the real module.
package blockcache

import "context"

type Key struct{ Object, Block uint64 }

type Buf struct{ refs int32 }

func (b *Buf) Bytes() []byte { return nil }

func (b *Buf) Release() { b.refs-- }

type Cache struct{}

func (c *Cache) GetOrDecode(ctx context.Context, key Key, size int, decode func([]byte) error) (*Buf, error) {
	return &Buf{refs: 1}, nil
}
