// Package obs is a fixture stand-in for gompresso/internal/obs: just
// enough surface for spanbalance to resolve Start and Span.End.
package obs

import "context"

type Stage int

const (
	StageResolve Stage = iota
	StageQueueWait
)

type Span struct{ ended bool }

func (s *Span) End()       { s.ended = true }
func (s *Span) SetN(int64) {}

func Start(ctx context.Context, st Stage) (context.Context, *Span) {
	return ctx, &Span{}
}
