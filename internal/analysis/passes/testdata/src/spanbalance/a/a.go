// Fixture for spanbalance.
package a

import (
	"context"

	"spanbalance/obs"
)

func work() {}

func leakOnBranch(ctx context.Context, cond bool) error {
	_, sp := obs.Start(ctx, obs.StageResolve) // want `not ended on every path`
	if cond {
		return nil // leaks sp
	}
	sp.End()
	return nil
}

func leakNoEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve) // want `not ended on every path`
	sp.SetN(3)
	work()
}

func balancedDefer(ctx context.Context) {
	ctx, sp := obs.Start(ctx, obs.StageResolve)
	defer sp.End()
	_ = ctx
	work()
}

func balancedDeferredClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve)
	defer func() { sp.End() }()
	work()
}

func balancedBranches(ctx context.Context, cond bool) {
	_, sp := obs.Start(ctx, obs.StageResolve)
	if cond {
		sp.End()
		return
	}
	sp.End()
}

// balancedSelect is the serving path's queue_wait shape: a blocking
// select always takes one of its clauses, and each clause ends the
// span, so nothing leaks past the select.
func balancedSelect(ctx context.Context, acquired, done chan struct{}) error {
	_, sp := obs.Start(ctx, obs.StageQueueWait)
	select {
	case <-acquired:
		sp.End()
	case <-done:
		sp.End()
		return ctx.Err()
	}
	work()
	return nil
}

func doubleEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve)
	sp.End()
	sp.End() // want `may already be ended here`
}

func deferredThenEnded(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve)
	defer sp.End()
	sp.End() // want `may already be ended here`
}

func discardedBare(ctx context.Context) {
	obs.Start(ctx, obs.StageResolve) // want `discarded; it can never be ended`
}

func discardedBlank(ctx context.Context) context.Context {
	ctx, _ = obs.Start(ctx, obs.StageResolve) // want `discarded; it can never be ended`
	return ctx
}

func reassigned(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve) // want `reassigned while still owing an End`
	_, sp = obs.Start(ctx, obs.StageQueueWait)
	sp.End()
}

// transfer hands the open span to the caller: the obligation moves with
// it, so nothing is reported here.
func transfer(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.Start(ctx, obs.StageResolve)
	return ctx, sp // ok: caller now owes the End
}

func lend(sp *obs.Span) {}

func passedDown(ctx context.Context) {
	_, sp := obs.Start(ctx, obs.StageResolve)
	lend(sp) // ok: callee takes responsibility; tracking stops
}

func loopBalanced(ctx context.Context) {
	for i := 0; i < 4; i++ {
		_, sp := obs.Start(ctx, obs.StageResolve)
		sp.End()
	}
}

func allowedLeak(ctx context.Context) {
	//lint:allow spanbalance fixture: span deliberately left to the trace recycler
	_, sp := obs.Start(ctx, obs.StageResolve)
	sp.SetN(1)
}
