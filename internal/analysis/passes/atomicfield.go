package passes

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gompresso/internal/analysis"
)

// Atomicfield enforces all-or-nothing atomicity per variable: once any
// code in a package reads or writes a struct field (or package-level
// variable) through sync/atomic's function API, every other access to
// that variable must be atomic too. A single plain load next to
// atomic.AddInt64 is a data race the race detector only catches when a
// test happens to interleave the two — this pass catches it by
// construction.
//
// The repo migrated its hot counters to typed atomics (atomic.Int64 et
// al., which make mixed access unrepresentable); this analyzer guards
// the remaining and future func-style uses, where the type system
// offers no such protection.
var Atomicfield = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a variable accessed via sync/atomic must be accessed atomically everywhere\n\n" +
		"Mixing atomic.LoadX/AddX with plain reads or writes of the same field is a\n" +
		"data race regardless of how the plain access is ordered.",
	Run: runAtomicfield,
}

func runAtomicfield(pass *analysis.Pass) error {
	// Pass A: collect every variable whose address is taken as the first
	// argument of a sync/atomic function, remembering the operand nodes
	// so pass B can tell sanctioned accesses from plain ones.
	atomicVars := make(map[*types.Var]token.Pos) // var -> first atomic access
	sanctioned := make(map[ast.Expr]bool)        // operand exprs inside atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicFunc(calleeFunc(pass, call)) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			v := addressedVar(pass, operand)
			if v == nil {
				return true
			}
			sanctioned[operand] = true
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = call.Pos()
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass B: any other access to one of those variables is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || sanctioned[e] {
				return true
			}
			v := addressedVar(pass, e)
			if v == nil {
				return true
			}
			if first, ok := atomicVars[v]; ok {
				pass.Reportf(e.Pos(),
					"plain access to %s, which is accessed atomically at %s; use sync/atomic consistently",
					v.Name(), pass.Fset.Position(first))
				return false // don't re-flag the selector's components
			}
			return true
		})
	}
	return nil
}

// isAtomicFunc reports whether fn is a package-level sync/atomic
// read-modify-write or load/store function (not a typed-atomic method,
// whose receivers already force atomic access).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressedVar resolves an expression to the struct field or
// package-level variable it denotes, or nil. Local variables are
// excluded: taking &local for one atomic op while other goroutines
// cannot even name the variable is not the bug this pass hunts.
func addressedVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		// Qualified identifier (pkg.Var) or embedded selection.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && isGlobal(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && isGlobal(v) {
			return v
		}
	}
	return nil
}

// isGlobal reports whether v is a package-level variable.
func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
