package passes

import (
	"go/ast"
	"go/types"
	"strings"

	"gompresso/internal/analysis"
)

// pkgMatches reports whether path equals one of the entries or ends in
// "/"+entry — so configs can name real module packages
// ("gompresso/internal/blockcache"), bare suffixes ("blockcache"), or
// fixture paths, and both the repo scan and analysistest resolve them.
func pkgMatches(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for dynamic and built-in calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named
// package (exact path match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// funcBodies yields every function body in the package — declarations
// and literals — with the enclosing declaration's name for diagnostics.
func funcBodies(files []*ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fn(d.Name.Name, d.Body)
		}
	}
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) implements error.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
