package passes

import (
	"go/ast"
	"go/types"

	"gompresso/internal/analysis"
)

// CtxguardPackages lists the request/decode-path packages where calling
// context.Background or context.TODO is forbidden: every operation
// there runs on behalf of a request whose cancellation must propagate
// (PR 3 threaded ctx through both pipelines; PR 5/6 made per-request
// cancellation a load-shedding and deadline mechanism). Construction-
// time defaults (a codec's base context) are the only sanctioned
// exceptions, annotated with //lint:allow ctxguard.
var CtxguardPackages = []string{
	"gompresso",
	"gompresso/internal/server",
	"gompresso/internal/blockcache",
}

// Ctxguard reports context misuse on request paths:
//
//  1. context.Background()/context.TODO() inside the packages listed in
//     CtxguardPackages — a fresh root context detaches the work from
//     the request that pays for it, defeating deadlines, shedding, and
//     disconnect cancellation.
//  2. In every analyzed package, a declared function or method whose
//     parameter list takes a context.Context anywhere but first — the
//     convention the whole pipeline relies on to keep ctx visibly
//     threaded rather than smuggled through trailing parameters.
var Ctxguard = &analysis.Analyzer{
	Name: "ctxguard",
	Doc: "forbid context.Background/TODO on request paths and enforce ctx-first signatures\n\n" +
		"Request and decode paths must run under the caller's context so deadlines,\n" +
		"load shedding, and client disconnects propagate into the decode pipelines.",
	Run: runCtxguard,
}

func runCtxguard(pass *analysis.Pass) error {
	// Entry points own the process lifetime; creating the root context
	// there is the point of context.Background.
	guarded := pass.Pkg.Name() != "main" && pkgMatches(pass.Pkg.Path(), CtxguardPackages)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !guarded {
					return true
				}
				fn := calleeFunc(pass, n)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s() on a request path: thread the caller's ctx instead", fn.Name())
				}
			case *ast.FuncDecl:
				checkCtxFirst(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkCtxFirst flags a context.Context parameter that is not the first
// parameter.
func checkCtxFirst(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(pass.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Type.Pos(),
				"context.Context should be the first parameter (found at position %d)", idx+1)
			return
		}
		idx += n
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
