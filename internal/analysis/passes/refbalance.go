package passes

import (
	"go/ast"
	"go/token"
	"go/types"

	"gompresso/internal/analysis"
)

// Refbalance checks that pinned *blockcache.Buf values are balanced by
// exactly one Release on every control-flow path. GetOrDecode (and any
// helper that forwards its result) returns a buffer pinned on the
// caller's behalf; a path that exits without releasing strands the pin
// forever — the cache can never recycle the entry, which under load
// turns into a slow memory leak that eviction cannot fix. Releasing
// twice is the opposite bug: Release panics on refcount underflow (by
// design, to surface the error at the offending site), so a
// double-release is a latent crash.
//
// The checker runs a small abstract interpreter over each function
// body. A variable acquires the pinned state when assigned from a call
// whose (first) result is *blockcache.Buf; `defer x.Release()` settles
// the obligation; branch merges union the possible states, and the
// `x, err := ...; if err != nil` idiom is understood (no buffer is
// pinned on the failure path). Obligations transfer out of scope —
// returning the buffer, passing it to a callee, storing it anywhere —
// end local tracking rather than report, so helpers like cacheBlock
// that intentionally hand a pinned buffer upward stay clean. Functions
// using goto or labeled branches are skipped (none in this repo).
//
// The blockcache package itself is exempt: it manipulates refcounts
// directly and is covered by its own tests.
var Refbalance = &analysis.Analyzer{
	Name: "refbalance",
	Doc: "pinned blockcache.Buf values must be released on every control-flow path\n\n" +
		"A leaked pin permanently wedges a cache entry; a double Release panics.",
	Run: runRefbalance,
}

// refMask is a set of possible states for one tracked variable.
type refMask uint8

const (
	stPinned   refMask = 1 << iota // pinned, release owed on this path
	stDeferred                     // pinned, release deferred
	stReleased                     // released
	stUnknown                      // escaped, failure path, or lost track
)

type refEnv map[*types.Var]refMask

func (e refEnv) clone() refEnv {
	c := make(refEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func mergeEnv(a, b refEnv) refEnv {
	m := a.clone()
	for k, v := range b {
		m[k] |= v
	}
	return m
}

func runRefbalance(pass *analysis.Pass) error {
	if pkgMatches(pass.Pkg.Path(), []string{"blockcache"}) {
		return nil
	}
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		newRefFunc(pass).analyze(body)
	})
	return nil
}

type refFunc struct {
	pass       *analysis.Pass
	acquirePos map[*types.Var]token.Pos
	errFor     map[*types.Var]*types.Var // buf var -> paired err var
	reported   map[token.Pos]bool
}

func newRefFunc(pass *analysis.Pass) *refFunc {
	return &refFunc{
		pass:       pass,
		acquirePos: make(map[*types.Var]token.Pos),
		errFor:     make(map[*types.Var]*types.Var),
		reported:   make(map[token.Pos]bool),
	}
}

func (r *refFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if !r.reported[pos] {
		r.reported[pos] = true
		r.pass.Reportf(pos, format, args...)
	}
}

func (r *refFunc) analyze(body *ast.BlockStmt) {
	if usesGoto(body) {
		return // irreducible flow: out of scope, and absent from this repo
	}
	env, terminated := r.stmt(make(refEnv), body)
	if !terminated {
		r.checkLeaks(env)
	}
}

// checkLeaks reports every variable that may still owe a release.
func (r *refFunc) checkLeaks(env refEnv) {
	for v, mask := range env {
		if mask&stPinned != 0 {
			r.reportOnce(r.acquirePos[v],
				"pinned Buf %s is not released on every path (missing Release or defer)", v.Name())
		}
	}
}

// stmt interprets s in env, returning the resulting env and whether
// every path through s terminates the function.
func (r *refFunc) stmt(env refEnv, s ast.Stmt) (refEnv, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.BranchStmt, *ast.IncDecStmt:
		return env, false

	case *ast.BlockStmt:
		terminated := false
		for _, st := range s.List {
			env, terminated = r.stmt(env, st)
			if terminated {
				return env, true
			}
		}
		return env, false

	case *ast.ExprStmt:
		return r.exprStmt(env, s.X), false

	case *ast.AssignStmt:
		return r.assign(env, s), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					env = r.valueSpec(env, vs)
				}
			}
		}
		return env, false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if v := r.trackedIdent(env, res); v != nil {
				env[v] = stUnknown // obligation transfers to the caller
			} else {
				env = r.escapes(env, res)
			}
		}
		r.checkLeaks(env)
		return env, true

	case *ast.DeferStmt:
		return r.deferStmt(env, s), false

	case *ast.GoStmt:
		return r.escapes(env, s.Call), false

	case *ast.SendStmt:
		env = r.escapes(env, s.Chan)
		return r.escapes(env, s.Value), false

	case *ast.IfStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Cond)
		thenEnv := r.refine(env.clone(), s.Cond, true)
		elseEnv := r.refine(env.clone(), s.Cond, false)
		thenEnv, thenTerm := r.stmt(thenEnv, s.Body)
		elseEnv, elseTerm := r.stmt(elseEnv, s.Else)
		switch {
		case thenTerm && elseTerm:
			return env, true
		case thenTerm:
			return elseEnv, false
		case elseTerm:
			return thenEnv, false
		default:
			return mergeEnv(thenEnv, elseEnv), false
		}

	case *ast.ForStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Cond)
		return r.loop(env, func(e refEnv) refEnv {
			e, term := r.stmt(e, s.Body)
			if !term {
				e, _ = r.stmt(e, s.Post)
			}
			return e
		}), false

	case *ast.RangeStmt:
		env = r.escapes(env, s.X)
		return r.loop(env, func(e refEnv) refEnv {
			e, _ = r.stmt(e, s.Body)
			return e
		}), false

	case *ast.SwitchStmt:
		env, _ = r.stmt(env, s.Init)
		env = r.escapes(env, s.Tag)
		return r.branches(env, caseBodies(s.Body), hasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		env, _ = r.stmt(env, s.Init)
		env, _ = r.stmt(env, s.Assign)
		return r.branches(env, caseBodies(s.Body), hasDefault(s.Body))

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		hasDef := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDef = true
			} else {
				env, _ = r.stmt(env, cc.Comm)
			}
			bodies = append(bodies, cc.Body)
		}
		return r.branches(env, bodies, hasDef)

	case *ast.LabeledStmt:
		return r.stmt(env, s.Stmt)

	default:
		return r.escapesInStmt(env, s), false
	}
}

// loop runs body twice from progressively merged states — enough to
// reach fixpoint for this lattice — and merges with the zero-iteration
// path.
func (r *refFunc) loop(entry refEnv, body func(refEnv) refEnv) refEnv {
	once := body(entry.clone())
	twice := body(mergeEnv(entry, once))
	return mergeEnv(entry, twice)
}

// branches merges the case bodies of a switch/select; without a default
// the fall-past path keeps the entry env.
func (r *refFunc) branches(env refEnv, bodies [][]ast.Stmt, hasDefault bool) (refEnv, bool) {
	merged := refEnv(nil)
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		be, term := r.stmt(env.clone(), &ast.BlockStmt{List: b})
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = be
		} else {
			merged = mergeEnv(merged, be)
		}
	}
	if !hasDefault {
		allTerm = false
		if merged == nil {
			merged = env
		} else {
			merged = mergeEnv(merged, env)
		}
	}
	if allTerm {
		return env, true
	}
	if merged == nil {
		merged = env
	}
	return merged, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprStmt handles a bare expression statement: a Release call, a
// discarded acquisition, or an ordinary call whose arguments may
// capture tracked values.
func (r *refFunc) exprStmt(env refEnv, e ast.Expr) refEnv {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return r.escapes(env, e)
	}
	if v := r.releaseCall(env, call); v != nil {
		return r.doRelease(env, v, call.Pos())
	}
	if r.isAcquire(call) {
		r.reportOnce(call.Pos(), "pinned Buf result discarded; the pin can never be released")
		return env
	}
	return r.escapes(env, call)
}

func (r *refFunc) assign(env refEnv, s *ast.AssignStmt) refEnv {
	// Acquisition: x, err := acquire(...) or x := acquire(...).
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && r.isAcquire(call) {
			env = r.escapes(env, call) // args first (e.g. a tracked buf passed in)
			switch lhs := s.Lhs[0].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					r.reportOnce(call.Pos(), "pinned Buf result discarded; the pin can never be released")
					return env
				}
				v, ok := objectOfIdent(r.pass, lhs).(*types.Var)
				if !ok {
					return env
				}
				if env[v]&stPinned != 0 {
					r.reportOnce(r.acquirePos[v],
						"pinned Buf %s reassigned while still owing a Release", v.Name())
				}
				env[v] = stPinned
				r.acquirePos[v] = call.Pos()
				if len(s.Lhs) > 1 {
					if errID, ok := s.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
						if ev, ok := objectOfIdent(r.pass, errID).(*types.Var); ok && implementsError(ev.Type()) {
							r.errFor[v] = ev
						}
					}
				}
				return env
			default:
				// Acquired straight into a field/element: escapes immediately.
				return env
			}
		}
	}
	// General assignment: escaping stores, aliasing, overwrites.
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil {
			if v := r.trackedIdent(env, rhs); v != nil {
				env[v] = stUnknown // aliased or stored: stop tracking
			} else {
				env = r.escapes(env, rhs)
			}
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := objectOfIdent(r.pass, id).(*types.Var); ok {
				if env[v]&stPinned != 0 {
					r.reportOnce(r.acquirePos[v],
						"pinned Buf %s reassigned while still owing a Release", v.Name())
				}
				if _, tracked := env[v]; tracked {
					env[v] = stUnknown
				}
			}
		} else {
			env = r.escapes(env, lhs)
		}
	}
	return env
}

func (r *refFunc) valueSpec(env refEnv, vs *ast.ValueSpec) refEnv {
	if len(vs.Values) == 1 && len(vs.Names) >= 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && r.isAcquire(call) {
			if v, ok := r.pass.TypesInfo.Defs[vs.Names[0]].(*types.Var); ok {
				env[v] = stPinned
				r.acquirePos[v] = call.Pos()
			}
			return env
		}
	}
	for _, val := range vs.Values {
		env = r.escapes(env, val)
	}
	return env
}

func (r *refFunc) deferStmt(env refEnv, s *ast.DeferStmt) refEnv {
	if v := r.releaseCall(env, s.Call); v != nil {
		if env[v]&(stDeferred|stReleased) != 0 {
			r.reportOnce(s.Call.Pos(), "Buf %s may already be released here (double Release)", v.Name())
		}
		env[v] = env[v]&^stPinned | stDeferred
		return env
	}
	// defer func() { ... x.Release() ... }(): releases inside the
	// deferred literal settle obligations; other captured values escape.
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok && len(s.Call.Args) == 0 {
		released := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := r.releaseCall(env, call); v != nil {
					released[v] = true
					return false
				}
			}
			return true
		})
		for v := range released {
			env[v] = env[v]&^stPinned | stDeferred
		}
		// Escape scan of the rest of the literal, skipping the releases.
		env = r.escapesSkippingReleases(env, lit.Body, released)
		return env
	}
	return r.escapes(env, s.Call)
}

// doRelease transitions v through an immediate Release call.
func (r *refFunc) doRelease(env refEnv, v *types.Var, pos token.Pos) refEnv {
	mask := env[v]
	if mask&(stReleased|stDeferred) != 0 {
		r.reportOnce(pos, "Buf %s may already be released here (double Release)", v.Name())
	}
	if mask&stPinned != 0 || mask&(stReleased|stDeferred) != 0 {
		env[v] = stReleased
	}
	return env
}

// releaseCall returns the tracked variable x when call is x.Release().
func (r *refFunc) releaseCall(env refEnv, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := r.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := env[v]; !tracked {
		return nil
	}
	return v
}

// isAcquire reports whether call's (first) result is *blockcache.Buf.
func (r *refFunc) isAcquire(call *ast.CallExpr) bool {
	t := r.pass.TypeOf(call)
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	return isBufPtr(t)
}

// trackedIdent returns the tracked variable e denotes, or nil.
func (r *refFunc) trackedIdent(env refEnv, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := r.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := env[v]; !tracked {
		return nil
	}
	return v
}

// escapes scans an expression tree: a tracked variable used anywhere
// except as a method receiver or in a pointer comparison loses
// tracking (its obligation moved somewhere this checker cannot see).
// Function literals are analyzed as functions of their own.
func (r *refFunc) escapes(env refEnv, n ast.Node) refEnv {
	return r.escapesSkippingReleases(env, n, nil)
}

func (r *refFunc) escapesSkippingReleases(env refEnv, n ast.Node, skipRelease map[*types.Var]bool) refEnv {
	if n == nil || len(env) == 0 {
		return env
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			for v := range env {
				if capturedIn(r.pass, node, v) && !skipRelease[v] {
					env[v] = stUnknown
				}
			}
			newRefFunc(r.pass).analyze(node.Body)
			return false
		case *ast.SelectorExpr:
			// x.Method() / x.field: reading through the variable does not
			// move the obligation.
			if id, ok := ast.Unparen(node.X).(*ast.Ident); ok {
				if _, tracked := env[identVar(r.pass, id)]; tracked {
					return false
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.EQL || node.Op == token.NEQ {
				return false // pointer comparison, typically against nil
			}
		case *ast.Ident:
			if v := identVar(r.pass, node); v != nil && !skipRelease[v] {
				if _, tracked := env[v]; tracked {
					env[v] = stUnknown
				}
			}
		}
		return true
	})
	return env
}

// escapesInStmt applies the escape scan to every expression hanging off
// an unhandled statement kind.
func (r *refFunc) escapesInStmt(env refEnv, s ast.Stmt) refEnv {
	return r.escapes(env, s)
}

// refine narrows env under the branch condition: after
// `x, err := acquire(...)`, x is nil (unpinned) wherever err != nil.
func (r *refFunc) refine(env refEnv, cond ast.Expr, branch bool) refEnv {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return env
	}
	var errExpr ast.Expr
	switch {
	case isNilIdent(be.Y):
		errExpr = be.X
	case isNilIdent(be.X):
		errExpr = be.Y
	default:
		return env
	}
	id, ok := ast.Unparen(errExpr).(*ast.Ident)
	if !ok {
		return env
	}
	ev := identVar(r.pass, id)
	if ev == nil {
		return env
	}
	// errIsNonNil in the branch we are entering?
	errNonNil := (be.Op == token.NEQ) == branch
	if !errNonNil {
		return env
	}
	for bufVar, pairedErr := range r.errFor {
		if pairedErr == ev {
			if _, tracked := env[bufVar]; tracked {
				env[bufVar] = stUnknown
			}
		}
	}
	return env
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func identVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// capturedIn reports whether the function literal references v.
func capturedIn(pass *analysis.Pass, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// usesGoto reports whether the body contains goto or a labeled
// break/continue — control flow this interpreter does not model.
func usesGoto(body *ast.BlockStmt) bool {
	uses := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && (b.Tok == token.GOTO || b.Label != nil) {
			uses = true
		}
		return !uses
	})
	return uses
}

// isBufPtr reports whether t is *Buf for the blockcache Buf type (the
// real package or a fixture package named blockcache).
func isBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buf" && obj.Pkg() != nil && pkgMatches(obj.Pkg().Path(), []string{"blockcache"})
}
