package passes

import (
	"go/types"

	"gompresso/internal/analysis"
)

// Refbalance checks that pinned *blockcache.Buf values are balanced by
// exactly one Release on every control-flow path. GetOrDecode (and any
// helper that forwards its result) returns a buffer pinned on the
// caller's behalf; a path that exits without releasing strands the pin
// forever — the cache can never recycle the entry, which under load
// turns into a slow memory leak that eviction cannot fix. Releasing
// twice is the opposite bug: Release panics on refcount underflow (by
// design, to surface the error at the offending site), so a
// double-release is a latent crash.
//
// The analysis itself is the shared acquire/release interpreter in
// balance.go, instantiated for the Buf↔Release discipline; spanbalance
// is the same interpreter pointed at obs.Start↔End.
//
// The blockcache package itself is exempt: it manipulates refcounts
// directly and is covered by its own tests.
var Refbalance = &analysis.Analyzer{
	Name: "refbalance",
	Doc: "pinned blockcache.Buf values must be released on every control-flow path\n\n" +
		"A leaked pin permanently wedges a cache entry; a double Release panics.",
	Run: func(pass *analysis.Pass) error { return runBalance(pass, refbalanceSpec) },
}

var refbalanceSpec = &balanceSpec{
	exemptPkgs:  []string{"blockcache"},
	releaseName: "Release",
	isTarget:    isBufPtr,
	msgLeak:     "pinned Buf %s is not released on every path (missing Release or defer)",
	msgDiscard:  "pinned Buf result discarded; the pin can never be released",
	msgReassign: "pinned Buf %s reassigned while still owing a Release",
	msgDouble:   "Buf %s may already be released here (double Release)",
}

// isBufPtr reports whether t is *blockcache.Buf (matched by package
// path suffix so the analysistest fixture package qualifies too).
func isBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buf" && obj.Pkg() != nil && pkgMatches(obj.Pkg().Path(), []string{"blockcache"})
}
