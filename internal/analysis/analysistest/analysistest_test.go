package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gompresso/internal/analysis"
)

// toytest flags every function whose name starts with Bad, quoting the
// name so fixtures exercise escaped-quote want patterns.
var toytest = &analysis.Analyzer{
	Name: "toytest",
	Doc:  "flags functions named Bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Pos(), "bad func %q", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestHarness runs the harness against a fixture written on the fly:
// double-quoted wants (with escapes), backquoted wants, and a
// //lint:allow'd finding that must count as absent.
func TestHarness(t *testing.T) {
	testdata := t.TempDir()
	dir := filepath.Join(testdata, "src", "toy")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package toy

func BadA() {} // want "bad func \"BadA\""

func BadB() {} // want ` + "`bad func \"BadB\"`" + `

//lint:allow toytest proves suppressed findings are treated as absent
func BadC() {}

func Fine() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, testdata, toytest, "toy")
}

func TestParsePatterns(t *testing.T) {
	rxs, err := parsePatterns("\"one\" `two.*` \"esc\\\"aped\"")
	if err != nil {
		t.Fatal(err)
	}
	if len(rxs) != 3 {
		t.Fatalf("parsed %d patterns, want 3", len(rxs))
	}
	if !rxs[1].MatchString("twofold") {
		t.Error("backquoted pattern did not compile to a usable regexp")
	}
	if !rxs[2].MatchString(`esc"aped`) {
		t.Error("escaped quote not honored")
	}

	for _, bad := range []string{"\"unterminated", "`unterminated", "bare", "\"bad[rx\""} {
		if _, err := parsePatterns(bad); err == nil {
			t.Errorf("parsePatterns(%q) succeeded, want error", bad)
		}
	}
}

func TestClaim(t *testing.T) {
	rx := regexp.MustCompile("^msg$")
	wants := []*expectation{{file: "f.go", line: 3, rx: rx}}
	f := analysis.Finding{Message: "msg"}
	f.Pos.Filename, f.Pos.Line = "f.go", 3
	if !claim(wants, f) {
		t.Error("matching finding not claimed")
	}
	if claim(wants, f) {
		t.Error("expectation claimed twice")
	}
	f.Pos.Line = 4
	if claim(wants, f) {
		t.Error("finding on the wrong line claimed an expectation")
	}
}
