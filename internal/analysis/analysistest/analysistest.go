// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools' package of the same name:
//
//	bad()  // want `regexp matching the message`
//
// A want comment holds one or more Go-quoted strings (double quotes or
// backquotes), each a regular expression that must match exactly one
// diagnostic reported on that line. Unmatched diagnostics and unmatched
// expectations both fail the test. Suppressed findings (//lint:allow)
// are treated as absent, which lets fixtures also prove the escape
// hatch works.
//
// Fixtures live under testdata/src/<importpath>/, the tree layout that
// analysis.TreeLocal resolves.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gompresso/internal/analysis"
)

// expectation is one want regexp, positioned, with a matched flag.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// Run loads each fixture package from testdata/src, applies the
// analyzer, and compares unsuppressed findings against the fixtures'
// want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := analysis.NewLoader(analysis.TreeLocal(filepath.Join(testdata, "src")))
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, l.Fset)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		w, err := parseWants(l.Fset, pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
	}

	for _, f := range analysis.Unsuppressed(findings) {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// claim marks the first unused expectation on the finding's line whose
// regexp matches the message.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.used && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// parseWants extracts the expectations from a package's comments.
func parseWants(fset *token.FileSet, pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rxs, err := parsePatterns(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %w", pos, err)
				}
				for _, rx := range rxs {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns reads the sequence of Go-quoted strings after "want".
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		var lit string
		switch s[0] {
		case '"':
			end := quotedEnd(s)
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end])
			if err != nil {
				return nil, err
			}
			s = s[end:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern, found %q", s)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, rx)
	}
	return out, nil
}

// quotedEnd returns the index just past the closing double quote of the
// Go string literal opening at s[0], honoring backslash escapes.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}
