package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func parseForTest(t *testing.T, src string) (*token.FileSet, allowsFor) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, collectAllows(fset, []*ast.File{f})
}

func TestSuppression(t *testing.T) {
	src := `package p

func a() {
	bad() //lint:allow foo the reason
}

//lint:allow bar,baz shared reason
func b() {}

//lint:allow nakedname
func c() {}
`
	fset, allows := parseForTest(t, src)
	_ = fset

	if reason, ok := allows.suppression("foo", "x.go", 4); !ok || reason != "the reason" {
		t.Errorf("same-line directive: got (%q, %v), want (\"the reason\", true)", reason, ok)
	}
	if _, ok := allows.suppression("foo", "x.go", 6); ok {
		t.Error("directive two lines up must not apply")
	}
	// Line-above form: the directive on line 7 covers findings on line 8.
	for _, name := range []string{"bar", "baz"} {
		if reason, ok := allows.suppression(name, "x.go", 8); !ok || reason != "shared reason" {
			t.Errorf("comma list %s: got (%q, %v)", name, reason, ok)
		}
	}
	if _, ok := allows.suppression("other", "x.go", 8); ok {
		t.Error("unlisted analyzer must not be suppressed")
	}
	if reason, ok := allows.suppression("nakedname", "x.go", 11); !ok || reason != "" {
		t.Errorf("reasonless directive: got (%q, %v), want (\"\", true)", reason, ok)
	}
}

func TestMatch(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "gompresso" {
		t.Fatalf("ModulePath = %q, want gompresso", modPath)
	}

	all, err := Match(root, modPath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"gompresso":                   false,
		"gompresso/internal/server":   false,
		"gompresso/internal/analysis": false,
		"gompresso/cmd/gompressovet":  false,
	}
	for _, p := range all {
		if strings.Contains(p, "testdata") {
			t.Errorf("Match leaked a testdata package: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Match(./...) missing %s", p)
		}
	}

	sub, err := Match(root, modPath, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sub {
		if !strings.HasPrefix(p, "gompresso/internal/analysis") {
			t.Errorf("subtree pattern matched %s", p)
		}
	}
	if len(sub) < 2 {
		t.Errorf("subtree pattern found %d packages, want >= 2 (analysis, passes)", len(sub))
	}

	one, err := Match(root, modPath, []string{"./internal/server"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "gompresso/internal/server" {
		t.Errorf("single pattern = %v", one)
	}
}
