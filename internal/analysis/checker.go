package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic from one analyzer, resolved to a position
// and checked against the file's //lint:allow directives.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool   // an applicable //lint:allow directive matched
	Reason     string // the directive's stated reason, when suppressed
}

// allowDirective matches "lint:allow name1[,name2] reason..." after the
// comment markers have been stripped.
var allowDirective = regexp.MustCompile(`^lint:allow\s+([A-Za-z0-9_,-]+)(?:\s+(.*))?$`)

// allowsFor indexes a package's //lint:allow directives:
// filename → line → analyzer name → reason.
type allowsFor map[string]map[int]map[string]string

func collectAllows(fset *token.FileSet, files []*ast.File) allowsFor {
	out := make(allowsFor)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := allowDirective.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]string)
					out[pos.Filename] = lines
				}
				byName := lines[pos.Line]
				if byName == nil {
					byName = make(map[string]string)
					lines[pos.Line] = byName
				}
				for _, name := range strings.Split(m[1], ",") {
					byName[strings.TrimSpace(name)] = strings.TrimSpace(m[2])
				}
			}
		}
	}
	return out
}

// suppression returns whether a directive for analyzer covers
// (filename, line): on the flagged line itself or the line directly
// above it.
func (a allowsFor) suppression(analyzer, filename string, line int) (string, bool) {
	lines, ok := a[filename]
	if !ok {
		return "", false
	}
	for _, l := range []int{line, line - 1} {
		if byName, ok := lines[l]; ok {
			if reason, ok := byName[analyzer]; ok {
				return reason, true
			}
		}
	}
	return "", false
}

// Run applies every analyzer to every package and returns the findings,
// sorted by position. Suppressed findings are included with Suppressed
// set; callers gate on the unsuppressed ones.
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				f.Reason, f.Suppressed = allows.suppression(a.Name, pos.Filename, pos.Line)
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Unsuppressed filters findings down to the ones not covered by a
// //lint:allow directive.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Write renders findings one per line, vet style. With verbose set,
// suppressed findings print too, marked with their directive's reason.
func Write(w io.Writer, findings []Finding, verbose bool) {
	for _, f := range findings {
		if f.Suppressed {
			if verbose {
				fmt.Fprintf(w, "%s: [%s] suppressed: %s (reason: %s)\n", f.Pos, f.Analyzer, f.Message, f.Reason)
			}
			continue
		}
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
}
