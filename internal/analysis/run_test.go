package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays a tiny two-package module down in a temp dir:
// the root package has two flagged functions (one suppressed) and
// imports a local subpackage, which in turn imports stdlib, so loading
// exercises the local resolver, the recursive loader importer, and the
// source-importer fallback.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmod\n\ngo 1.24\n",
		"a.go": `package tmod

import "tmod/sub"

func BadOne() int { return sub.V }

//lint:allow toy fixture exception
func BadTwo() {}

func Good() {}
`,
		"sub/b.go": `package sub

import "errors"

var V = 1

var ErrX = errors.New("x")
`,
	}
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// toyAnalyzer flags every function whose name starts with Bad, using
// both report entry points and the type-info accessors.
func toyAnalyzer(t *testing.T) *Analyzer {
	return &Analyzer{
		Name: "toy",
		Doc:  "flags functions named Bad*",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || !strings.HasPrefix(fd.Name.Name, "Bad") {
						continue
					}
					if pass.ObjectOf(fd.Name) == nil {
						t.Errorf("ObjectOf(%s) = nil", fd.Name.Name)
					}
					if fd.Name.Name == "BadOne" {
						if pass.TypeOf(fd.Name) == nil {
							t.Error("TypeOf(BadOne) = nil")
						}
						pass.Report(Diagnostic{Pos: fd.Pos(), Message: "bad function BadOne"})
					} else {
						pass.Reportf(fd.Pos(), "bad function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func TestLoadModuleAndRun(t *testing.T) {
	dir := writeModule(t)
	pkgs, fset, err := LoadModule(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadModule found %d packages, want 2", len(pkgs))
	}

	findings, err := Run(pkgs, []*Analyzer{toyAnalyzer(t)}, fset)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %+v, want 2", findings)
	}
	// Sorted by position: BadOne (line 5) before BadTwo (line 8).
	if findings[0].Suppressed || findings[0].Message != "bad function BadOne" {
		t.Errorf("findings[0] = %+v", findings[0])
	}
	if !findings[1].Suppressed || findings[1].Reason != "fixture exception" {
		t.Errorf("findings[1] = %+v, want suppressed with reason", findings[1])
	}

	open := Unsuppressed(findings)
	if len(open) != 1 || open[0].Message != "bad function BadOne" {
		t.Errorf("Unsuppressed = %+v", open)
	}

	var quiet, verbose strings.Builder
	Write(&quiet, findings, false)
	if !strings.Contains(quiet.String(), "[toy] bad function BadOne") {
		t.Errorf("quiet output missing finding:\n%s", quiet.String())
	}
	if strings.Contains(quiet.String(), "BadTwo") {
		t.Errorf("quiet output leaked suppressed finding:\n%s", quiet.String())
	}
	Write(&verbose, findings, true)
	if !strings.Contains(verbose.String(), "suppressed: bad function BadTwo (reason: fixture exception)") {
		t.Errorf("verbose output missing suppressed finding:\n%s", verbose.String())
	}
}

func TestLoaderErrors(t *testing.T) {
	dir := writeModule(t)
	l := NewLoader(ModuleLocal("tmod", dir))
	if _, err := l.Load("golang.org/x/other"); err == nil {
		t.Error("loading a non-local package must fail")
	}
	if _, err := l.Load("tmod/nosuchdir"); err == nil {
		t.Error("loading a missing directory must fail")
	}

	// A type error in the fixture must fail loudly, not analyze garbage.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "go.mod"), []byte("module bad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "a.go"), []byte("package bad\n\nvar X int = \"nope\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModule(bad, []string{"./..."}); err == nil {
		t.Error("type error in fixture must fail LoadModule")
	}
}
