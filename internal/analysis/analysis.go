// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis driver model on the standard library
// alone: an Analyzer is a named check over one type-checked package, a
// Pass hands it the syntax trees and type information, and the checker
// (checker.go) runs a suite of analyzers over the module with
// //lint:allow suppression handling.
//
// The shape deliberately mirrors x/tools so the five custom analyzers
// under passes/ read like any other vet pass; the driver differs only
// in how packages are loaded (load.go: go/parser + go/types with the
// "source" importer, so the toolchain needs no network and no export
// data) and in the built-in suppression directive:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line, or the line directly above it, records an
// intentional exception. The checker still surfaces suppressed findings
// in verbose mode so the escape hatch cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// enforces and why the codebase cares.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass is the interface between one analyzer and one package of the
// program being checked.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}
