package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/fstest"
	"time"
)

func parse(t *testing.T, spec string) *Script {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return s
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"noglob",              // no colon
		"*.gz:",               // empty kind
		"*.gz:explode",        // unknown kind
		"*.gz:latency",        // latency needs a duration
		"*.gz:latency=xyz",    // bad duration
		"*.gz:eio=5",          // eio takes no value
		"*.gz:eio@-3",         // negative offset
		"*.gz:truncate",       // truncate needs @offset
		"*.gz:shortread=0",    // zero clamp
		"*.gz:eio#0",          // zero count
		"[bad:eio",            // malformed glob
		"*.gz:truncate=9@100", // truncate takes no value
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	// Empty specs and stray separators are fine.
	if s := parse(t, " ; ;"); len(s.rules) != 0 {
		t.Fatalf("blank spec produced %d rules", len(s.rules))
	}
}

func TestGlobMatching(t *testing.T) {
	s := parse(t, "*.gz:eio@0")
	for name, want := range map[string]bool{
		"a.gz":       true,
		"sub/b.gz":   true, // basename match for patterns without '/'
		"a.gpz":      false,
		"/lead.gz":   true, // leading slash stripped
		"sub/aa.gpz": false,
	} {
		if got := s.Active(name); got != want {
			t.Errorf("Active(%q) = %v, want %v", name, got, want)
		}
	}
	// A pattern with '/' matches the full path only.
	s2 := parse(t, "sub/*.gz:eio@0")
	if !s2.Active("sub/a.gz") || s2.Active("a.gz") || s2.Active("deep/sub/a.gz") {
		t.Fatal("path-qualified glob matched wrong names")
	}
}

func TestReaderAtEIO(t *testing.T) {
	data := []byte("0123456789abcdef")
	s := parse(t, "obj:eio@8")
	ra := s.ReaderAt("obj", bytes.NewReader(data))

	// Reads entirely before the bad region succeed.
	p := make([]byte, 4)
	if n, err := ra.ReadAt(p, 0); n != 4 || err != nil {
		t.Fatalf("pre-fault read: n=%d err=%v", n, err)
	}
	// A read spanning the boundary returns the good prefix and the error.
	p = make([]byte, 8)
	n, err := ra.ReadAt(p, 4)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("spanning read err = %v, want ErrInjected", err)
	}
	if n != 4 || !bytes.Equal(p[:n], data[4:8]) {
		t.Fatalf("spanning read returned %d bytes %q", n, p[:n])
	}
	// A read entirely inside the bad region returns nothing.
	if n, err := ra.ReadAt(p, 10); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("bad-region read: n=%d err=%v", n, err)
	}
	// Unmatched names pass through untouched.
	other := s.ReaderAt("other", bytes.NewReader(data))
	if _, ok := other.(*faultReaderAt); ok {
		t.Fatal("unmatched name was wrapped")
	}
}

func TestFlakyThenRecover(t *testing.T) {
	data := []byte("0123456789")
	s := parse(t, "obj:eio#3")
	ra := s.ReaderAt("obj", bytes.NewReader(data))
	p := make([]byte, 10)
	for i := 0; i < 3; i++ {
		if _, err := ra.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	n, err := ra.ReadAt(p, 0)
	if n != 10 || err != nil {
		t.Fatalf("post-recovery read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(p, data) {
		t.Fatal("post-recovery bytes differ")
	}
}

func TestTruncateReaderAt(t *testing.T) {
	data := []byte("0123456789abcdef")
	s := parse(t, "obj:truncate@8")
	ra := s.ReaderAt("obj", bytes.NewReader(data))

	p := make([]byte, 16)
	n, err := ra.ReadAt(p, 0)
	if n != 8 || err != io.EOF {
		t.Fatalf("truncated read: n=%d err=%v, want 8, EOF", n, err)
	}
	if !bytes.Equal(p[:8], data[:8]) {
		t.Fatal("truncated read bytes differ")
	}
	if n, err := ra.ReadAt(p, 12); n != 0 || err != io.EOF {
		t.Fatalf("past-end read: n=%d err=%v", n, err)
	}
	// A read that fits entirely under the boundary sees no fault.
	if n, err := ra.ReadAt(p[:8], 0); n != 8 || err != nil {
		t.Fatalf("in-bounds read: n=%d err=%v", n, err)
	}
}

func TestShortRead(t *testing.T) {
	data := []byte("0123456789")
	s := parse(t, "obj:shortread=3")

	// Reader: short counts with no error, stream still completes.
	r := s.Reader("obj", bytes.NewReader(data))
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadAll over shortread: %q, %v", got, err)
	}

	// ReaderAt: contract demands an error alongside the short count.
	ra := s.ReaderAt("obj", bytes.NewReader(data))
	p := make([]byte, 10)
	n, err := ra.ReadAt(p, 0)
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(p[:3], data[:3]) {
		t.Fatal("short ReadAt bytes differ")
	}
}

func TestLatency(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 64)
	s := parse(t, "obj:latency=20ms#2")
	ra := s.ReaderAt("obj", bytes.NewReader(data))
	p := make([]byte, 64)
	start := time.Now()
	if _, err := ra.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("first read took %v, want >= 20ms", d)
	}
	// Count-limited latency burns out.
	ra.ReadAt(p, 0)
	start = time.Now()
	ra.ReadAt(p, 0)
	if d := time.Since(start); d > 15*time.Millisecond {
		t.Fatalf("post-recovery read took %v", d)
	}
}

func TestReaderEIOAndTruncate(t *testing.T) {
	data := []byte("0123456789abcdef")
	s := parse(t, "obj:eio@8")
	r := s.Reader("obj", bytes.NewReader(data))
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("sequential eio err = %v", err)
	}
	if !bytes.Equal(got, data[:8]) {
		t.Fatalf("sequential eio prefix = %q", got)
	}

	s2 := parse(t, "obj:truncate@5")
	r2 := s2.Reader("obj", bytes.NewReader(data))
	got, err = io.ReadAll(r2)
	if err != nil || !bytes.Equal(got, data[:5]) {
		t.Fatalf("sequential truncate: %q, %v", got, err)
	}
}

func TestSetEnabled(t *testing.T) {
	data := []byte("0123456789")
	s := parse(t, "obj:eio@0")
	ra := s.ReaderAt("obj", bytes.NewReader(data))
	p := make([]byte, 10)
	if _, err := ra.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("enabled script err = %v", err)
	}
	s.SetEnabled(false)
	if n, err := ra.ReadAt(p, 0); n != 10 || err != nil {
		t.Fatalf("disabled script: n=%d err=%v", n, err)
	}
	s.SetEnabled(true)
	if _, err := ra.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled script err = %v", err)
	}
}

func TestMultipleRules(t *testing.T) {
	// Latency and EIO stack on one file; the second rule targets another.
	data := []byte(strings.Repeat("y", 32))
	s := parse(t, "a*:latency=15ms ; a*:eio@16 ; b*:truncate@4")
	ra := s.ReaderAt("aaa", bytes.NewReader(data))
	p := make([]byte, 32)
	start := time.Now()
	n, err := ra.ReadAt(p, 0)
	if !errors.Is(err, ErrInjected) || n != 16 {
		t.Fatalf("stacked rules: n=%d err=%v", n, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("latency rule did not fire alongside eio")
	}
	rb := s.ReaderAt("bbb", bytes.NewReader(data))
	if n, err := rb.ReadAt(p, 0); n != 4 || err != io.EOF {
		t.Fatalf("other file: n=%d err=%v", n, err)
	}
}

func TestFS(t *testing.T) {
	base := fstest.MapFS{
		"ok.txt":  {Data: []byte("hello world")},
		"bad.txt": {Data: []byte("hello world")},
	}
	s := parse(t, "bad*:eio@3")
	fsys := s.FS(base)

	okf, err := fsys.Open("ok.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(okf)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ok file: %q, %v", got, err)
	}
	okf.Close()

	badf, err := fsys.Open("bad.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer badf.Close()
	got, err = io.ReadAll(badf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("bad file err = %v", err)
	}
	if string(got) != "hel" {
		t.Fatalf("bad file prefix = %q", got)
	}
}
