// Package fault injects programmable I/O failures into the read path —
// the test harness behind the serving stack's failure-domain hardening.
// A Script is a list of rules parsed from a compact spec string; each
// rule selects files by path glob and applies one fault kind, optionally
// limited to a trigger count so a fault can be flaky (fail N times, then
// recover). Wrappers exist for the three read shapes the repository
// uses: io.ReaderAt (the server's object files), io.Reader (sequential
// streams), and fs.FS (whole trees).
//
// Spec grammar — rules separated by ';':
//
//	rule   := glob ':' kind [ '=' value ] [ '@' offset ] [ '#' count ]
//	kind   := eio | latency | shortread | truncate
//
// Examples:
//
//	*.gz:eio@4096        reads touching byte 4096 or beyond fail with ErrInjected
//	corpus*:latency=50ms every read sleeps 50ms first
//	*:shortread=7        reads return at most 7 bytes (ReaderAt: with an error,
//	                     preserving the io.ReaderAt contract)
//	big*:truncate@1000   the file appears to end at byte 1000
//	*.gpz:eio#3          the first 3 reads fail, then the file recovers
//
// A glob matches against the full slash-separated name and, when the
// pattern has no '/', against the base name too — "*.gz" matches
// "sub/a.gz". Faults injected by a Script fail with errors wrapping
// ErrInjected, so harnesses can tell injected failures from real ones.
// SetEnabled(false) turns the whole script into a no-op at runtime,
// letting one server see faults appear and clear without restarting.
package fault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error a Script injects. Injected
// faults model transient I/O failures (EIO, short reads), not data
// corruption: the bytes that are returned are always genuine.
var ErrInjected = errors.New("fault: injected I/O error")

// Kind is a fault flavor.
type Kind int

const (
	// KindEIO fails reads that touch byte Off or beyond. Bytes before
	// Off are served (a read spanning the boundary returns the prefix
	// plus the error), modeling a bad disk region.
	KindEIO Kind = iota
	// KindLatency sleeps Delay before every read — a slow device or a
	// saturated filesystem.
	KindLatency
	// KindShortRead clamps each read to N bytes. io.Reader wrappers
	// return the short count without error (legal for Read); ReaderAt
	// wrappers return it with an error wrapping ErrInjected, as the
	// io.ReaderAt contract requires for partial reads.
	KindShortRead
	// KindTruncate makes the file appear to end at byte Off: reads
	// beyond it return io.EOF exactly as a really-truncated file would,
	// so decoders see genuine-looking truncation.
	KindTruncate
)

func (k Kind) String() string {
	switch k {
	case KindEIO:
		return "eio"
	case KindLatency:
		return "latency"
	case KindShortRead:
		return "shortread"
	case KindTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// rule is one parsed spec clause. remaining is the fire budget: negative
// means unlimited, zero means burnt out (the fault has "recovered").
type rule struct {
	pattern   string
	kind      Kind
	off       int64
	delay     time.Duration
	n         int64
	remaining atomic.Int64
}

// fire consumes one trigger. It reports whether the rule still applies.
func (r *rule) fire() bool {
	for {
		c := r.remaining.Load()
		if c < 0 {
			return true
		}
		if c == 0 {
			return false
		}
		if r.remaining.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

func (r *rule) matches(name string) bool {
	name = strings.TrimPrefix(name, "/")
	if ok, _ := path.Match(r.pattern, name); ok {
		return true
	}
	if !strings.Contains(r.pattern, "/") {
		if ok, _ := path.Match(r.pattern, path.Base(name)); ok {
			return true
		}
	}
	return false
}

// Script is a parsed fault specification. It is safe for concurrent use;
// trigger counts are shared across every file a rule matches.
type Script struct {
	rules    []*rule
	spec     string
	disabled atomic.Bool
}

// Parse compiles a spec string (see the package comment for the
// grammar). An empty spec yields a script that injects nothing.
func Parse(spec string) (*Script, error) {
	s := &Script{spec: spec}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		s.rules = append(s.rules, r)
	}
	return s, nil
}

func parseRule(clause string) (*rule, error) {
	colon := strings.LastIndex(clause, ":")
	if colon <= 0 || colon == len(clause)-1 {
		return nil, fmt.Errorf("fault: rule %q: want glob:kind[...]", clause)
	}
	glob, body := clause[:colon], clause[colon+1:]
	if _, err := path.Match(glob, "probe"); err != nil {
		return nil, fmt.Errorf("fault: rule %q: bad glob: %w", clause, err)
	}
	r := &rule{pattern: glob}
	r.remaining.Store(-1)

	// Peel the optional suffixes right to left: #count, then @offset.
	if i := strings.IndexByte(body, '#'); i >= 0 {
		c, err := strconv.ParseInt(body[i+1:], 10, 64)
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("fault: rule %q: bad count %q", clause, body[i+1:])
		}
		r.remaining.Store(c)
		body = body[:i]
	}
	hasOff := false
	if i := strings.IndexByte(body, '@'); i >= 0 {
		o, err := strconv.ParseInt(body[i+1:], 10, 64)
		if err != nil || o < 0 {
			return nil, fmt.Errorf("fault: rule %q: bad offset %q", clause, body[i+1:])
		}
		r.off, hasOff = o, true
		body = body[:i]
	}
	kind, value, hasValue := body, "", false
	if i := strings.IndexByte(body, '='); i >= 0 {
		kind, value, hasValue = body[:i], body[i+1:], true
	}
	switch kind {
	case "eio":
		r.kind = KindEIO
		if hasValue {
			return nil, fmt.Errorf("fault: rule %q: eio takes no value", clause)
		}
	case "latency":
		r.kind = KindLatency
		if !hasValue {
			return nil, fmt.Errorf("fault: rule %q: latency needs =duration", clause)
		}
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("fault: rule %q: bad duration %q", clause, value)
		}
		r.delay = d
	case "shortread":
		r.kind = KindShortRead
		r.n = 1
		if hasValue {
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault: rule %q: bad shortread size %q", clause, value)
			}
			r.n = n
		}
	case "truncate":
		r.kind = KindTruncate
		if !hasOff {
			return nil, fmt.Errorf("fault: rule %q: truncate needs @offset", clause)
		}
		if hasValue {
			return nil, fmt.Errorf("fault: rule %q: truncate takes no value", clause)
		}
	default:
		return nil, fmt.Errorf("fault: rule %q: unknown kind %q", clause, kind)
	}
	return r, nil
}

// String returns the spec the script was parsed from.
func (s *Script) String() string { return s.spec }

// SetEnabled turns injection on or off at runtime. A disabled script's
// wrappers pass reads through untouched (state such as remaining trigger
// counts is preserved).
func (s *Script) SetEnabled(on bool) { s.disabled.Store(!on) }

// Enabled reports whether the script is injecting.
func (s *Script) Enabled() bool { return !s.disabled.Load() }

// match returns the rules selecting name, in spec order.
func (s *Script) match(name string) []*rule {
	var rs []*rule
	for _, r := range s.rules {
		if r.matches(name) {
			rs = append(rs, r)
		}
	}
	return rs
}

// Active reports whether any rule selects name (regardless of remaining
// trigger counts).
func (s *Script) Active(name string) bool { return len(s.match(name)) > 0 }

// ReaderAt wraps ra with the rules selecting name. When none do, ra is
// returned unchanged.
func (s *Script) ReaderAt(name string, ra io.ReaderAt) io.ReaderAt {
	rs := s.match(name)
	if len(rs) == 0 {
		return ra
	}
	return &faultReaderAt{script: s, rules: rs, ra: ra}
}

// Reader wraps r with the rules selecting name. When none do, r is
// returned unchanged.
func (s *Script) Reader(name string, r io.Reader) io.Reader {
	rs := s.match(name)
	if len(rs) == 0 {
		return r
	}
	return &faultReader{script: s, rules: rs, r: r}
}

// FS wraps base so every opened file reads through the script.
func (s *Script) FS(base fs.FS) fs.FS { return &faultFS{script: s, base: base} }

// apply runs the non-EIO shaping rules for a read of want bytes at off:
// latency sleeps, truncate clamps, shortread clamps. It returns the
// allowed read size, whether EOF applies at the clamp (truncation), and
// whether a short-read fault fired (ReaderAt wrappers convert that into
// an error to honor their contract).
func (s *Script) apply(rules []*rule, off int64, want int) (n int, truncated, short bool, err error) {
	n = want
	for _, r := range rules {
		switch r.kind {
		case KindLatency:
			if r.fire() {
				time.Sleep(r.delay)
			}
		case KindTruncate:
			if off >= r.off {
				return 0, true, false, nil
			}
			if max := int(r.off - off); n > max {
				n, truncated = max, true
			}
		case KindShortRead:
			if int64(n) > r.n && r.fire() {
				n, short = int(r.n), true
			}
		case KindEIO:
			if off+int64(n) > r.off && r.fire() {
				if max := int(r.off - off); max < n {
					if max < 0 {
						max = 0
					}
					n = max
				}
				return n, false, false, fmt.Errorf("%w: read at %d (eio@%d)", ErrInjected, off, r.off)
			}
		}
	}
	return n, truncated, short, nil
}

// faultReaderAt injects into positioned reads.
type faultReaderAt struct {
	script *Script
	rules  []*rule
	ra     io.ReaderAt
}

func (f *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if !f.script.Enabled() {
		return f.ra.ReadAt(p, off)
	}
	n, truncated, short, ferr := f.script.apply(f.rules, off, len(p))
	if ferr != nil {
		m := 0
		if n > 0 {
			m, _ = f.ra.ReadAt(p[:n], off)
		}
		return m, ferr
	}
	if n == 0 && truncated {
		return 0, io.EOF
	}
	m, err := f.ra.ReadAt(p[:n], off)
	if err == nil {
		switch {
		case truncated && m == n:
			// The virtual file ends here; a full read up to the clamp is
			// EOF only when the caller wanted more.
			if n < len(p) {
				err = io.EOF
			}
		case short:
			// io.ReaderAt requires an error when m < len(p).
			err = fmt.Errorf("%w: short read at %d (%d of %d bytes)", ErrInjected, off, m, len(p))
		}
	}
	return m, err
}

// faultReader injects into sequential reads, tracking the stream offset.
type faultReader struct {
	script *Script
	rules  []*rule
	r      io.Reader
	pos    int64
}

func (f *faultReader) Read(p []byte) (int, error) {
	if !f.script.Enabled() {
		n, err := f.r.Read(p)
		f.pos += int64(n)
		return n, err
	}
	if len(p) == 0 {
		return f.r.Read(p)
	}
	n, truncated, _, ferr := f.script.apply(f.rules, f.pos, len(p))
	if ferr != nil {
		m := 0
		if n > 0 {
			m, _ = io.ReadFull(f.r, p[:n])
			f.pos += int64(m)
		}
		return m, ferr
	}
	if n == 0 && truncated {
		return 0, io.EOF
	}
	m, err := f.r.Read(p[:n])
	f.pos += int64(m)
	if err == nil && truncated && f.pos >= f.truncateAt() {
		err = io.EOF
	}
	return m, err
}

// truncateAt returns the tightest truncation boundary among the rules.
func (f *faultReader) truncateAt() int64 {
	at := int64(1<<63 - 1)
	for _, r := range f.rules {
		if r.kind == KindTruncate && r.off < at {
			at = r.off
		}
	}
	return at
}

// faultFS opens files through the script.
type faultFS struct {
	script *Script
	base   fs.FS
}

func (f *faultFS) Open(name string) (fs.File, error) {
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	rules := f.script.match(name)
	if len(rules) == 0 {
		return file, nil
	}
	ff := &faultFile{File: file, r: &faultReader{script: f.script, rules: rules, r: file}}
	if ra, ok := file.(io.ReaderAt); ok {
		ff.ra = &faultReaderAt{script: f.script, rules: rules, ra: ra}
	}
	return ff, nil
}

// faultFile is an opened faulted file: sequential reads go through the
// Reader wrapper, and ReadAt is preserved when the base file offers it.
type faultFile struct {
	fs.File
	r  *faultReader
	ra *faultReaderAt
}

func (f *faultFile) Read(p []byte) (int, error) { return f.r.Read(p) }

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if f.ra == nil {
		return 0, fmt.Errorf("fault: %s: underlying file does not support ReadAt", "ReadAt")
	}
	return f.ra.ReadAt(p, off)
}
