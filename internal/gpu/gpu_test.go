package gpu

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	if err := TeslaK40().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TeslaK40()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero SMs accepted")
	}
	bad = TeslaK40()
	bad.GlobalMemBW = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestOccupancySharedMemLimit(t *testing.T) {
	s := TeslaK40() // 48 KB shared per SM
	// Two CWL=10 Huffman LUTs at 4 B/entry = 8 KB per block → 6 blocks/SM.
	if got := s.OccupantWarpsPerSM(8<<10, 1); got != 6 {
		t.Fatalf("8KB/block occupancy = %d, want 6", got)
	}
	// No shared memory → limited by MaxBlocksPerSM.
	if got := s.OccupantWarpsPerSM(0, 1); got != s.MaxBlocksPerSM {
		t.Fatalf("0KB/block occupancy = %d, want %d", got, s.MaxBlocksPerSM)
	}
	// Huge footprint → one block.
	if got := s.OccupantWarpsPerSM(40<<10, 1); got != 1 {
		t.Fatalf("40KB/block occupancy = %d, want 1", got)
	}
}

func TestBallot(t *testing.T) {
	w := &Warp{}
	var pred [WarpSize]bool
	pred[0], pred[3], pred[31] = true, true, true
	got := w.BallotFrom(&pred)
	want := uint32(1 | 1<<3 | 1<<31)
	if got != want {
		t.Fatalf("ballot = %#x, want %#x", got, want)
	}
	if w.Ballots != 1 {
		t.Fatalf("ballots counted = %d", w.Ballots)
	}
}

func TestShfl(t *testing.T) {
	w := &Warp{}
	var vals [WarpSize]int
	for i := range vals {
		vals[i] = i * 10
	}
	if got := Shfl(w, &vals, 7); got != 70 {
		t.Fatalf("shfl = %d", got)
	}
	// Source lane wraps modulo warp size like CUDA.
	if got := Shfl(w, &vals, 33); got != 10 {
		t.Fatalf("shfl wrap = %d", got)
	}
	if w.Shuffles != 2 {
		t.Fatalf("shuffles counted = %d", w.Shuffles)
	}
}

func TestExclScan(t *testing.T) {
	w := &Warp{}
	var vals [WarpSize]int32
	for i := range vals {
		vals[i] = int32(i + 1)
	}
	got := w.ExclScan32(&vals)
	sum := int32(0)
	for i := 0; i < WarpSize; i++ {
		if got[i] != sum {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], sum)
		}
		sum += vals[i]
	}
}

func TestExclScanQuick(t *testing.T) {
	w := &Warp{}
	f := func(raw [WarpSize]uint16) bool {
		var vals [WarpSize]int32
		for i, v := range raw {
			vals[i] = int32(v)
		}
		got := w.ExclScan32(&vals)
		sum := int32(0)
		for i := 0; i < WarpSize; i++ {
			if got[i] != sum {
				return false
			}
			sum += vals[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClzCtz(t *testing.T) {
	if Clz(1<<31) != 0 || Clz(1) != 31 || Ctz(1) != 0 || Ctz(1<<31) != 31 {
		t.Fatal("clz/ctz wrong")
	}
}

func TestLaunchRunsAllBlocks(t *testing.T) {
	d := MustDevice(TeslaK40())
	var count int64
	seen := make([]int32, 100)
	stats, err := d.Launch(LaunchConfig{Label: "test", Blocks: 100}, func(w *Warp, block int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[block], 1)
		w.ChargeALU(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d blocks", count)
	}
	for b, c := range seen {
		if c != 1 {
			t.Fatalf("block %d ran %d times", b, c)
		}
	}
	if stats.Instr != 1000 {
		t.Fatalf("instr = %d, want 1000", stats.Instr)
	}
	if stats.Time <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestLaunchDeterministicStats(t *testing.T) {
	d := MustDevice(TeslaK40())
	run := func() *LaunchStats {
		s, err := d.Launch(LaunchConfig{Blocks: 64, SharedMemPerBlock: 8 << 10}, func(w *Warp, block int) {
			w.ChargeALU(int64(block + 1))
			w.GmemRead(int64(block)*128, true)
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Counters != b.Counters || a.Time != b.Time || a.MaxWarpCycles != b.MaxWarpCycles {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a, b)
	}
}

func TestModelMonotonicity(t *testing.T) {
	d := MustDevice(TeslaK40())
	timeFor := func(blocks int, perWarpInstr int64, smem int) float64 {
		s, err := d.Launch(LaunchConfig{Blocks: blocks, SharedMemPerBlock: smem}, func(w *Warp, block int) {
			w.ChargeALU(perWarpInstr)
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Time
	}
	// More work → more time.
	if timeFor(1000, 1000, 0) >= timeFor(1000, 10000, 0) {
		t.Fatal("time not monotone in work")
	}
	// Lower occupancy (bigger smem footprint) must not be faster.
	if timeFor(1000, 10000, 2<<10) > timeFor(1000, 10000, 24<<10)+1e-12 {
		// allow equality when compute-bound at full hide
	} else if timeFor(1000, 10000, 24<<10) < timeFor(1000, 10000, 2<<10) {
		t.Fatal("time decreased with lower occupancy")
	}
	// Memory-bound launch: time ≥ bytes / bandwidth.
	s, err := d.Launch(LaunchConfig{Blocks: 100}, func(w *Warp, block int) {
		w.GmemRead(1<<20, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if minTime := float64(100<<20) / d.Spec.GlobalMemBW; s.Time < minTime {
		t.Fatalf("memory-bound time %g < roofline %g", s.Time, minTime)
	}
}

func TestLaunchErrors(t *testing.T) {
	d := MustDevice(TeslaK40())
	if _, err := d.Launch(LaunchConfig{Blocks: -1}, func(w *Warp, block int) {}); err == nil {
		t.Fatal("negative blocks accepted")
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, SharedMemPerBlock: 1 << 20}, func(w *Warp, block int) {}); err == nil {
		t.Fatal("oversized shared memory accepted")
	}
}

func TestCountersCycles(t *testing.T) {
	w := &Warp{}
	w.ChargeALU(5)
	w.GmemRead(256, true) // 2 transactions
	base := w.Counters.Cycles()
	if base != 5+2*costGmemIns {
		t.Fatalf("cycles = %d", base)
	}
	w.SmemRead(3)
	if w.Counters.Cycles() != base+3*costSmem {
		t.Fatalf("smem cycles = %d", w.Counters.Cycles())
	}
}

func TestGmemCoalescing(t *testing.T) {
	coal, scat := &Warp{}, &Warp{}
	coal.GmemRead(128, true)
	scat.GmemRead(128, false)
	if coal.GmemTxns >= scat.GmemTxns {
		t.Fatalf("coalesced %d txns, scattered %d — scattered should cost more",
			coal.GmemTxns, scat.GmemTxns)
	}
}

func TestPCIeTime(t *testing.T) {
	s := TeslaK40()
	if s.PCIeTime(0) != 0 {
		t.Fatal("zero transfer should cost nothing")
	}
	oneGB := s.PCIeTime(1 << 30)
	if oneGB < float64(1<<30)/s.PCIeBW {
		t.Fatal("transfer faster than bandwidth")
	}
	if s.PCIeTime(2<<30) <= oneGB {
		t.Fatal("PCIe time not monotone")
	}
}

func BenchmarkLaunchOverheadSim(b *testing.B) {
	d := MustDevice(TeslaK40())
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(LaunchConfig{Blocks: 64}, func(w *Warp, block int) {
			w.ChargeALU(100)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExclScan(b *testing.B) {
	w := &Warp{}
	var vals [WarpSize]int32
	for i := range vals {
		vals[i] = int32(i)
	}
	for i := 0; i < b.N; i++ {
		w.ExclScan32(&vals)
	}
}
