// Package gpu is a deterministic warp-level SIMD simulator standing in for
// the CUDA device of the paper. Go has no GPU ecosystem, and a plain
// goroutine port would miss the contribution: Gompresso's decompression
// algorithms are *warp-synchronous* — they are expressed in terms of 32
// lanes executing in lock-step and coordinating through warp voting
// (ballot) and register shuffling (shfl), not through shared memory and
// locks (paper §II-B, §III-B2).
//
// The simulator provides:
//
//   - Warp: 32-lane lock-step execution context with ballot/shfl/scan
//     primitives and cost accounting (instruction slots, global-memory
//     traffic, shared-memory traffic, divergence).
//   - Device.Launch: schedules one-warp thread-groups over streaming
//     multiprocessors with occupancy limited by per-group shared memory —
//     the mechanism by which Huffman LUT footprints throttle parallelism in
//     paper Fig. 12.
//   - A roofline timing model calibrated to the paper's Tesla K40 that turns
//     the aggregated counters into simulated kernel time.
//
// Kernels run as real Go code (bit-exact outputs, real goroutine
// parallelism across warps); only *time* is modeled.
package gpu

import "fmt"

// WarpSize is the number of lanes per warp. CUDA fixes this at 32 and the
// paper's algorithms (32-bit ballot masks, groups of 32 sequences) assume it.
const WarpSize = 32

// Spec describes a simulated device.
type Spec struct {
	Name string

	SMs            int // streaming multiprocessors
	MaxWarpsPerSM  int // resident warp limit per SM
	MaxBlocksPerSM int // resident thread-group limit per SM
	SharedMemPerSM int // bytes of on-chip shared memory per SM

	ClockHz          float64 // SM clock
	IssuePerSMCycle  int     // warp instructions issued per SM per cycle
	LatencyHideWarps int     // resident warps needed to hide memory latency

	GlobalMemBW float64 // device memory bandwidth, bytes/s (ECC on)
	PCIeBW      float64 // host↔device bandwidth, bytes/s (measured, §V-D)
	PCIeLatency float64 // per-transfer latency, seconds

	LaunchOverhead float64 // per-kernel-launch overhead, seconds
}

// TeslaK40 returns the paper's evaluation device (§V): 2880 CUDA cores in 15
// SMs (GK110B), 48 KB shared memory per SM, ECC enabled, PCIe 3.0 x16 with a
// measured 13 GB/s (paper §V-D: "we were able to achieve a PCIe peak
// bandwidth of 13 GB/sec").
func TeslaK40() Spec {
	return Spec{
		Name:             "Tesla K40 (simulated)",
		SMs:              15,
		MaxWarpsPerSM:    64,
		MaxBlocksPerSM:   16,
		SharedMemPerSM:   48 << 10,
		ClockHz:          745e6,
		IssuePerSMCycle:  4, // 4 warp schedulers per SMX
		LatencyHideWarps: 48,
		GlobalMemBW:      220e9, // 288 GB/s nominal, derated for ECC
		PCIeBW:           13e9,
		PCIeLatency:      10e-6,
		LaunchOverhead:   8e-6,
	}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.SMs <= 0:
		return fmt.Errorf("gpu: spec %q: SMs = %d", s.Name, s.SMs)
	case s.MaxWarpsPerSM <= 0 || s.MaxBlocksPerSM <= 0:
		return fmt.Errorf("gpu: spec %q: resident limits not positive", s.Name)
	case s.SharedMemPerSM < 0:
		return fmt.Errorf("gpu: spec %q: negative shared memory", s.Name)
	case s.ClockHz <= 0 || s.IssuePerSMCycle <= 0:
		return fmt.Errorf("gpu: spec %q: clock/issue not positive", s.Name)
	case s.GlobalMemBW <= 0 || s.PCIeBW <= 0:
		return fmt.Errorf("gpu: spec %q: bandwidths not positive", s.Name)
	case s.LatencyHideWarps <= 0:
		return fmt.Errorf("gpu: spec %q: LatencyHideWarps not positive", s.Name)
	}
	return nil
}

// OccupantWarpsPerSM computes how many warps can be resident on one SM for
// thread-groups of warpsPerGroup warps that each occupy sharedMemPerGroup
// bytes of on-chip memory. This is the paper's Fig. 12 constraint: "the
// space required by the Huffman decoding tables in the processors' on-chip
// memory limits the number of data blocks that can be decoded concurrently
// on a single GPU processor."
func (s Spec) OccupantWarpsPerSM(sharedMemPerGroup, warpsPerGroup int) int {
	if warpsPerGroup < 1 {
		warpsPerGroup = 1
	}
	groups := s.MaxBlocksPerSM
	if sharedMemPerGroup > 0 {
		if bySmem := s.SharedMemPerSM / sharedMemPerGroup; bySmem < groups {
			groups = bySmem
		}
	}
	if byWarps := s.MaxWarpsPerSM / warpsPerGroup; byWarps < groups {
		groups = byWarps
	}
	if groups < 0 {
		groups = 0
	}
	warps := groups * warpsPerGroup
	if warps > s.MaxWarpsPerSM {
		warps = s.MaxWarpsPerSM
	}
	return warps
}

// PCIeTime models a host↔device transfer of n bytes.
func (s Spec) PCIeTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return s.PCIeLatency + float64(n)/s.PCIeBW
}
