package gpu

import "math/bits"

// Cost constants, in warp-instruction issue slots. These are deliberately
// coarse — the model targets figure *shapes* (relative costs of strategies,
// rounds, occupancy), not cycle accuracy.
const (
	costALU     = 1 // simple arithmetic / logic / predicate
	costBallot  = 1 // warp vote
	costShfl    = 1 // warp shuffle
	costSmem    = 2 // shared-memory load/store (bank-conflict free)
	costGmemIns = 2 // issue + address math per global transaction

	// scatterAmplify models the sector overfetch of non-coalesced accesses:
	// an 8-byte lane access still moves a wider memory sector.
	scatterAmplify = 2
)

// gmemSegment is the global-memory transaction size; a fully coalesced warp
// access moves data in 128-byte segments.
const gmemSegment = 128

// Counters accumulates the cost model state of one warp (or aggregated over
// many warps).
type Counters struct {
	Instr  int64 // warp-instruction issue slots
	Stalls int64 // dependent-latency cycles (memory round trips the
	// warp must wait out; hidden only by other resident warps)
	Ballots     int64
	Shuffles    int64
	SmemOps     int64
	GmemTxns    int64 // global-memory transactions
	GmemBytes   int64 // global-memory bytes moved (incl. sector overfetch)
	Divergences int64 // serialized divergent paths taken
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instr += other.Instr
	c.Stalls += other.Stalls
	c.Ballots += other.Ballots
	c.Shuffles += other.Shuffles
	c.SmemOps += other.SmemOps
	c.GmemTxns += other.GmemTxns
	c.GmemBytes += other.GmemBytes
	c.Divergences += other.Divergences
}

// Cycles converts the counters into issue-slot cycles for one warp
// (excluding stalls, which overlap across warps and are modeled separately).
func (c *Counters) Cycles() int64 {
	return c.Instr + c.GmemTxns*costGmemIns
}

// CriticalCycles is the warp's serial critical path: issue slots plus the
// latency it must personally wait out.
func (c *Counters) CriticalCycles() int64 {
	return c.Cycles() + c.Stalls
}

// Warp is a 32-lane lock-step execution context. Kernels keep per-lane state
// in [WarpSize]T arrays and use the warp primitives for cross-lane
// communication, mirroring warp-synchronous CUDA code.
type Warp struct {
	Counters
	Block int // thread-group index this warp executes
}

// ChargeALU accounts n warp-wide ALU instructions.
func (w *Warp) ChargeALU(n int64) { w.Instr += n * costALU }

// ChargeLaneWork accounts work where each active lane performs up to n
// serial steps but lanes run concurrently: in lock-step the warp pays for
// the maximum lane, which callers pass as n.
func (w *Warp) ChargeLaneWork(n int64, perStep int64) { w.Instr += n * perStep }

// Stall charges n cycles of dependent latency: a memory round trip (or a
// chain of them) that this warp must wait for before its next instruction.
// Unlike issue slots, stalls of different resident warps overlap, so the
// device model divides the stall pool by warp residency. This is what makes
// Sequential Copying slow (one dependent copy chain per lane, serialized)
// and Dependency Elimination fast (one chain for the whole warp).
func (w *Warp) Stall(n int64) { w.Stalls += n }

// ChargeDivergence accounts a branch where the warp splits into paths
// serialized execution paths (paths-1 extra passes).
func (w *Warp) ChargeDivergence(paths int) {
	if paths > 1 {
		w.Divergences += int64(paths - 1)
		w.Instr += int64(paths-1) * costALU
	}
}

// Ballot implements the CUDA ballot(b) warp vote (paper §II-B): bit i of the
// result is lane i's predicate. The caller passes the assembled vote mask;
// Ballot charges the vote and returns it to every lane (by value).
func (w *Warp) Ballot(votes uint32) uint32 {
	w.Ballots++
	w.Instr += costBallot
	return votes
}

// BallotFrom assembles and charges a ballot from a per-lane predicate array.
func (w *Warp) BallotFrom(pred *[WarpSize]bool) uint32 {
	var m uint32
	for i, p := range pred {
		if p {
			m |= 1 << uint(i)
		}
	}
	return w.Ballot(m)
}

// Shfl implements the CUDA shfl(v, i) broadcast (paper §II-B): every lane
// receives lane src's value.
func Shfl[T any](w *Warp, vals *[WarpSize]T, src int) T {
	w.Shuffles++
	w.Instr += costShfl
	return vals[src&(WarpSize-1)]
}

// ExclScan32 computes a warp-wide exclusive prefix sum over per-lane values
// using the standard shfl-up construction ("a common GPU technique", paper
// §III-B2a): log2(32) = 5 shuffle+add steps, no memory traffic.
func (w *Warp) ExclScan32(vals *[WarpSize]int32) [WarpSize]int32 {
	incl := *vals
	for d := 1; d < WarpSize; d <<= 1 {
		w.Shuffles++
		w.Instr += costShfl + costALU
		var next [WarpSize]int32
		for i := 0; i < WarpSize; i++ {
			next[i] = incl[i]
			if i-d >= 0 {
				next[i] += incl[i-d]
			}
		}
		incl = next
	}
	var excl [WarpSize]int32
	for i := 1; i < WarpSize; i++ {
		excl[i] = incl[i-1]
	}
	return excl
}

// GmemRead charges a warp-wide global-memory read of n bytes. A coalesced
// access moves ceil(n/128) transactions; a scattered per-lane access pays up
// to one transaction per lane regardless of size.
func (w *Warp) GmemRead(n int64, coalesced bool) {
	w.chargeGmem(n, coalesced)
}

// GmemWrite charges a warp-wide global-memory write of n bytes.
func (w *Warp) GmemWrite(n int64, coalesced bool) {
	w.chargeGmem(n, coalesced)
}

func (w *Warp) chargeGmem(n int64, coalesced bool) {
	if n <= 0 {
		return
	}
	var txns int64
	if coalesced {
		txns = (n + gmemSegment - 1) / gmemSegment
	} else {
		// Scattered: lanes issue independent vectorized accesses. The paper
		// notes threads copy "multiple back-reference characters at a time,
		// avoiding the high per character cost" — modeled as 8-byte chunks,
		// one transaction each, with sector overfetch on the bus.
		txns = (n + 7) / 8
		n *= scatterAmplify
	}
	w.GmemTxns += txns
	w.GmemBytes += n
}

// SmemRead charges n shared-memory accesses (e.g. LUT lookups).
func (w *Warp) SmemRead(n int64) {
	w.SmemOps += n
	w.Instr += n * costSmem
}

// SmemWrite charges n shared-memory stores (e.g. building decode tables).
func (w *Warp) SmemWrite(n int64) {
	w.SmemOps += n
	w.Instr += n * costSmem
}

// Clz returns the number of leading zero bits of v, as used by MRR to find
// the last writer from a ballot mask (paper Fig. 5, line 9).
func Clz(v uint32) int { return bits.LeadingZeros32(v) }

// Ctz returns trailing zeros; used to find the first pending lane.
func Ctz(v uint32) int { return bits.TrailingZeros32(v) }
