package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"gompresso/internal/parallel"
)

// Kernel is the body of a one-warp thread-group. The simulator calls it once
// per block with a fresh Warp for cost accounting. Kernels must not share
// mutable state across blocks except through pre-partitioned output slices
// (the GPU programming model's independence assumption).
type Kernel func(w *Warp, block int)

// LaunchConfig describes a kernel launch.
type LaunchConfig struct {
	Label  string
	Blocks int // total warps to execute (the kernel is called once per warp)
	// WarpsPerGroup is the thread-group width in warps for occupancy
	// accounting (shared memory is allocated per group). Zero means 1.
	WarpsPerGroup     int
	SharedMemPerBlock int // bytes of on-chip memory each group occupies
	// TileFactor models a launch over TileFactor repetitions of this input
	// (the paper evaluates 1 GB datasets; small reproductions would
	// otherwise under-fill the device). It only affects warp residency in
	// the time model — counters and outputs describe the actual launch.
	TileFactor int
}

// LaunchStats aggregates the cost-model output of one kernel launch.
type LaunchStats struct {
	Label  string
	Blocks int

	Counters            // summed over all warps
	MaxWarpCycles int64 // critical path

	OccupantWarpsPerSM int     // resident warps per SM under the smem limit
	Time               float64 // simulated kernel time, seconds
	ComputeTime        float64 // compute-roofline component
	MemTime            float64 // memory-roofline component
	LatencyTime        float64 // stall-pool component
}

// Device executes kernels and accumulates per-launch statistics.
type Device struct {
	Spec    Spec
	workers int
}

// NewDevice validates the spec and returns a Device. workers ≤ 0 selects
// GOMAXPROCS host goroutines for executing warps.
func NewDevice(spec Spec, workers int) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{Spec: spec, workers: workers}, nil
}

// MustDevice is NewDevice for known-good specs.
func MustDevice(spec Spec) *Device {
	d, err := NewDevice(spec, 0)
	if err != nil {
		panic(err)
	}
	return d
}

// Launch runs the kernel over cfg.Blocks thread-groups (host-parallel,
// deterministic aggregate) and returns modeled statistics.
func (d *Device) Launch(cfg LaunchConfig, k Kernel) (*LaunchStats, error) {
	if cfg.Blocks < 0 {
		return nil, fmt.Errorf("gpu: launch %q: negative block count", cfg.Label)
	}
	if cfg.SharedMemPerBlock > d.Spec.SharedMemPerSM {
		return nil, fmt.Errorf("gpu: launch %q: shared memory per block %d exceeds SM capacity %d",
			cfg.Label, cfg.SharedMemPerBlock, d.Spec.SharedMemPerSM)
	}
	stats := &LaunchStats{Label: cfg.Label, Blocks: cfg.Blocks}
	stats.OccupantWarpsPerSM = d.Spec.OccupantWarpsPerSM(cfg.SharedMemPerBlock, cfg.WarpsPerGroup)
	if cfg.Blocks == 0 {
		stats.Time = d.Spec.LaunchOverhead
		return stats, nil
	}
	if stats.OccupantWarpsPerSM == 0 {
		return nil, fmt.Errorf("gpu: launch %q: zero occupancy (smem/block %d)", cfg.Label, cfg.SharedMemPerBlock)
	}

	// Execute warps on the persistent worker pool with a pooled counter
	// arena. Each warp writes only its own counter slot, so aggregation is
	// deterministic; strided shares replace the old per-launch goroutine and
	// channel churn.
	arena := counterPool.Get().(*[]Counters)
	if cap(*arena) < cfg.Blocks {
		*arena = make([]Counters, cfg.Blocks)
	}
	perWarp := (*arena)[:cfg.Blocks]
	parallel.For(cfg.Blocks, d.workers, func(b int) {
		w := Warp{Block: b}
		k(&w, b)
		perWarp[b] = w.Counters
	})

	for _, c := range perWarp {
		stats.Counters.Add(c)
		if cyc := c.CriticalCycles(); cyc > stats.MaxWarpCycles {
			stats.MaxWarpCycles = cyc
		}
	}
	counterPool.Put(arena)
	d.model(cfg, stats)
	return stats, nil
}

// counterPool recycles per-launch warp-counter arenas.
var counterPool = sync.Pool{New: func() any { return new([]Counters) }}

// model converts aggregate counters into simulated time with a roofline over
// three resources:
//
//	compute: total issue slots spread over SMs × issue rate, derated when too
//	         few warps are resident to keep the schedulers fed;
//	latency: the pooled dependent-stall cycles, which overlap across resident
//	         warps (Little's law: stall throughput = resident warps / latency);
//	memory:  global traffic at device bandwidth.
//
// The launch time is their maximum, floored by the slowest single warp's
// critical path, plus the launch overhead.
func (d *Device) model(cfg LaunchConfig, s *LaunchStats) {
	spec := d.Spec
	totalCycles := s.Counters.Cycles()

	// Resident warps across the device while work remains.
	resident := s.OccupantWarpsPerSM * spec.SMs
	tile := cfg.TileFactor
	if tile < 1 {
		tile = 1
	}
	if cfg.Blocks*tile < resident {
		resident = cfg.Blocks * tile
	}
	hide := float64(resident) / float64(spec.LatencyHideWarps*spec.SMs)
	if hide > 1 {
		hide = 1
	}
	issueRate := float64(spec.SMs*spec.IssuePerSMCycle) * hide // warp-instr per cycle
	if issueRate <= 0 {
		issueRate = 1
	}
	s.ComputeTime = float64(totalCycles) / issueRate / spec.ClockHz
	s.LatencyTime = float64(s.Counters.Stalls) / float64(resident) / spec.ClockHz
	s.MemTime = float64(s.GmemBytes) / spec.GlobalMemBW
	t := maxf(s.ComputeTime, maxf(s.MemTime, s.LatencyTime))
	// Critical-path floor: no launch finishes before its slowest warp. Under
	// tiling the floor amortizes across waves (the replicated launch's
	// critical path stays one warp long while every throughput term scales),
	// so the per-actual-launch floor shrinks by the tile factor.
	if critical := float64(s.MaxWarpCycles) / spec.ClockHz / float64(tile); critical > t {
		t = critical
	}
	s.Time = spec.LaunchOverhead + t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Throughput reports bytes/s for a launch that produced n output bytes.
func (s *LaunchStats) Throughput(n int64) float64 {
	if s.Time <= 0 {
		return 0
	}
	return float64(n) / s.Time
}
