// Package server is the network-facing serving layer: an HTTP daemon
// that exposes the *decompressed* contents of compressed objects under a
// root directory, built on the repository's block-parallel machinery.
//
// Request lifecycle: a GET/HEAD for /<path> resolves to root/<path>,
// whose format is sniffed (Gompresso container, gzip, or zlib). Range
// and If-Range headers are interpreted over the decompressed stream —
// clients address raw bytes and never see the compression. Indexed
// containers serve ranges through gompresso.ReaderAt, which decodes
// only the blocks the range overlaps; with a decoded-block cache
// attached (Options.CacheBytes), hot blocks are decoded once and
// streamed to every requester from shared refcounted buffers, and
// concurrent requests for the same block coalesce into a single decode.
// Unindexed containers and foreign .gz/.zz objects fall back to a
// sequential decode per request.
//
// All requests share one codec — one worker pool, one cache, one
// budget — and a concurrency limiter bounds how many are actively
// decoding, so a burst of N requests cannot oversubscribe the pool.
// Each request's context cancels its decode pipeline when the client
// disconnects.
//
// Failure domains (PR 6): objects are read through a Source seam
// (fault-injectable in tests and dev runs); requests carry an optional
// decode deadline and rolling write deadlines; the limiter sheds
// queued requests with 503 + Retry-After after a bounded wait; a
// panicking handler answers 500 and the process survives; and an
// object whose bytes prove corrupt is quarantined — repeat requests
// fail fast with 502 until a TTL passes or the file changes. /healthz
// answers liveness, /readyz readiness (503 once draining); /metrics
// exposes request, byte, failure, and cache-effectiveness counters
// (Prometheus-style text, or JSON with ?format=json).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"mime"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gompresso"
	"gompresso/internal/buildinfo"
	"gompresso/internal/deflate"
	"gompresso/internal/format"
	"gompresso/internal/gzidx"
	"gompresso/internal/lz77"
	"gompresso/internal/obs"
	"gompresso/internal/perf"
)

// Options configures a Server.
type Options struct {
	// Root is the directory whose files are served (required). The
	// request path maps directly under it; traversal is rejected.
	Root string
	// CacheBytes bounds the shared decoded-block cache. 0 disables
	// caching (every range request decodes its blocks).
	CacheBytes int64
	// Workers is the decode worker budget shared by all requests
	// (0 = GOMAXPROCS).
	Workers int
	// Readahead is the streaming pipelines' readahead bound (0 = 2×Workers).
	Readahead int
	// MaxInFlight bounds the requests concurrently inside the decode
	// section; excess requests queue until a slot frees, the client
	// gives up, or QueueWait elapses (shed with 503). 0 selects
	// 4×GOMAXPROCS.
	MaxInFlight int
	// QueueWait bounds how long an admitted-but-queued request waits on
	// the concurrency limiter before the server sheds it with
	// 503 + Retry-After. 0 selects 5s; negative waits forever (the
	// pre-hardening behavior).
	QueueWait time.Duration
	// RequestTimeout bounds one request's decode work: the request
	// context gets this deadline on entry to the decode section, so a
	// pathological object cannot pin a limiter slot indefinitely.
	// 0 disables.
	RequestTimeout time.Duration
	// WriteTimeout is a rolling per-write deadline on the response body
	// (via http.ResponseController), so a stalled client cannot pin
	// worker buffers: each body write must complete within this window.
	// 0 disables.
	WriteTimeout time.Duration
	// QuarantineTTL is how long a decode-corrupt object stays
	// quarantined — requests fail fast with 502 instead of re-burning a
	// decode — before the server re-probes it. A changed file (size or
	// mtime) clears the entry immediately. 0 selects 30s; negative
	// disables quarantining.
	QuarantineTTL time.Duration
	// Source overrides where objects are read from. nil selects the
	// directory tree at Root; tests and the dev -fault flag inject a
	// fault-wrapped source here.
	Source Source
	// IndexDir, when set, persists foreign seek-index sidecars there
	// (mirroring the object tree, atomic temp+rename) after the first
	// full decode of a `.gz`/`.zz` object, and loads them back on
	// resolve. Set it to Root to keep sidecars alongside their objects.
	// Empty (the default, safe for read-only roots) keeps indexes
	// in-memory only, living and dying with the object resolution.
	IndexDir string
	// IndexSpacing is the decompressed-byte gap between seek-index
	// checkpoints (0 selects the ~1 MiB default). Smaller spacing means
	// finer random access at more index overhead.
	IndexSpacing int64
	// Logf, when set, receives one line per completed request.
	Logf func(format string, args ...any)
	// AccessLog, when set, receives one JSON line (log/slog) per
	// completed object request: request id, object, range, status,
	// bytes, cache hits/misses, per-stage timings, shed/quarantine
	// verdicts. 5xx responses log at WARN with the typed-error class.
	AccessLog io.Writer
	// NoTrace disables request tracing entirely: no request ids, no
	// stage histograms, no /debug/requests ring — the pre-PR-10 request
	// path. For overhead measurement; production keeps tracing on.
	NoTrace bool
	// SlowRing bounds the /debug/requests slow-request ring
	// (0 = obs.DefaultRingSize).
	SlowRing int
}

// Server serves decompressed objects over HTTP. Create with New; it is
// an http.Handler factory (Handler), not a listener — the caller owns
// the http.Server and its lifecycle.
type Server struct {
	src    Source
	codec  *gompresso.Codec
	sem    chan struct{}
	logf   func(string, ...any)
	tracer *obs.Tracer // nil when Options.NoTrace

	queueWait      time.Duration
	requestTimeout time.Duration
	writeTimeout   time.Duration
	quarTTL        time.Duration // <= 0 means quarantine disabled
	indexDir       string
	indexSpacing   int64

	// ready is true from construction until BeginDrain; /readyz keys
	// off it so load balancers stop routing before Shutdown closes
	// connections.
	ready atomic.Bool

	// shedSeq numbers shed responses so consecutive Retry-After values
	// stagger deterministically (two sheds never advise the same
	// second). busyEWMANs tracks the recent decode-section occupancy
	// per request (EWMA, α=1/8) — the drain-rate input to the
	// Retry-After estimate.
	shedSeq    atomic.Int64
	busyEWMANs atomic.Int64

	mu      sync.Mutex
	objects map[string]*object

	quarMu sync.Mutex
	quar   map[string]*quarEntry

	reg       *perf.Registry
	mRequests *perf.Counter
	mRanges   *perf.Counter
	mErrors   *perf.Counter
	mBytes    *perf.Counter
	mShed     *perf.Counter
	mPanics   *perf.Counter
	mQuar     *perf.Counter
	mQuarHits *perf.Counter
	mSeqDec   *perf.Counter
	mRetries  *perf.Counter
	mIdxLoad  *perf.Counter
	mIdxBuild *perf.Counter
	mIdxErr   *perf.Counter
	gInFlight *perf.Gauge
	gWaiting  *perf.Gauge
	gDecoding *perf.Gauge
	hLatency  *perf.Histogram
}

// quarEntry is one quarantined object: requests for name with matching
// validators fail fast with 502 until the TTL expires or the file
// changes.
type quarEntry struct {
	until  time.Time
	fsize  int64
	mtime  time.Time
	reason string
}

// object is one resolved file under the root, cached across requests so
// its header parse / index load / decompressed-size discovery happen
// once. Validators (size+mtime) staleness-check it on every request.
type object struct {
	name  string
	file  File
	fsize int64
	mtime time.Time
	etag  string
	form  gompresso.Format

	// ra serves random access; nil selects the sequential fallback
	// (unindexed native containers, or foreign gzip/zlib before
	// promotion). Native indexed containers get it at resolve; foreign
	// objects get it when a seek index becomes available — loaded from a
	// sidecar at resolve, or captured during the first counting decode
	// and promoted mid-lifetime, hence the atomic.
	ra atomic.Pointer[gompresso.ReaderAt]

	// rawSize is the decompressed size; -1 until discovered (foreign
	// formats pay one counting decode on first use). szTok is the
	// capacity-1 token serializing that discovery; waiters block on it
	// with their request context, not a bare mutex.
	rawSize atomic.Int64
	szTok   chan struct{}

	// refs counts requests currently serving from this object and stale
	// marks a resolution dropped from the registry (replaced, or evicted
	// by the registry cap); both are guarded by Server.mu. The last
	// releaser of a stale object closes its file, so rotated or evicted
	// files do not leak descriptors until a GC finalizer. lastUse
	// (also under mu) orders cap eviction.
	refs    int
	stale   bool
	lastUse time.Time
}

// maxOpenObjects caps the registry: each resolved object pins one open
// file descriptor, so a root with more distinct files than ulimit -n
// must recycle resolutions instead of exhausting descriptors. Eviction
// is least-recently-used; an evicted object only loses its cached
// resolution (header parse, index, discovered size) — the next request
// re-resolves it.
const maxOpenObjects = 512

// New builds a Server over root. The codec — worker pool, readahead,
// decoded-block cache — is constructed here and shared by every request.
func New(o Options) (*Server, error) {
	if o.Source == nil {
		st, err := os.Stat(o.Root)
		if err != nil {
			return nil, fmt.Errorf("server: root: %w", err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("server: root %q is not a directory", o.Root)
		}
		o.Source = NewDirSource(o.Root)
	}
	if o.MaxInFlight < 0 {
		return nil, fmt.Errorf("server: negative MaxInFlight %d", o.MaxInFlight)
	}
	if o.CacheBytes < 0 {
		// Mirror WithCache's contract rather than silently serving
		// uncached forever on an operator typo.
		return nil, fmt.Errorf("server: negative CacheBytes %d", o.CacheBytes)
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.QueueWait == 0 {
		o.QueueWait = 5 * time.Second
	}
	if o.QuarantineTTL == 0 {
		o.QuarantineTTL = 30 * time.Second
	}
	copts := []gompresso.Option{
		gompresso.WithWorkers(o.Workers),
		gompresso.WithReadahead(o.Readahead),
	}
	if o.CacheBytes > 0 {
		copts = append(copts, gompresso.WithCache(o.CacheBytes))
	}
	codec, err := gompresso.New(copts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		src:            o.Source,
		codec:          codec,
		sem:            make(chan struct{}, o.MaxInFlight),
		logf:           o.Logf,
		queueWait:      o.QueueWait,
		requestTimeout: o.RequestTimeout,
		writeTimeout:   o.WriteTimeout,
		quarTTL:        o.QuarantineTTL,
		indexDir:       o.IndexDir,
		indexSpacing:   o.IndexSpacing,
		objects:        make(map[string]*object),
		quar:           make(map[string]*quarEntry),
		reg:            perf.NewRegistry(),
	}
	s.ready.Store(true)
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if !o.NoTrace {
		s.tracer = obs.NewTracer(s.reg, o.AccessLog, o.SlowRing)
	}
	bi := buildinfo.Get()
	s.reg.Info("build_info", "binary identity (constant 1; information is in the labels)",
		[2]string{"version", bi.Version},
		[2]string{"go_version", bi.GoVersion},
		[2]string{"revision", bi.Revision})
	perf.RegisterRuntime(s.reg)
	s.mRequests = s.reg.Counter("requests_total", "object requests received")
	s.mRanges = s.reg.Counter("range_requests_total", "requests served as 206 partial content")
	s.mErrors = s.reg.Counter("errors_total", "requests answered with a 4xx/5xx status or aborted mid-body")
	s.mBytes = s.reg.Counter("bytes_served_total", "decompressed body bytes written to clients")
	s.gInFlight = s.reg.Gauge("inflight_requests", "object requests inside the decode section now")
	s.gWaiting = s.reg.Gauge("waiting_requests", "object requests queued on the concurrency limiter now")
	s.gDecoding = s.reg.Gauge("inflight_sequential_decodes", "sequential fallback decodes running now")
	s.mShed = s.reg.Counter("shed_total", "requests shed with 503 after waiting QueueWait on the limiter")
	s.mPanics = s.reg.Counter("panics_total", "request handlers that panicked (answered 500, process survived)")
	s.mQuar = s.reg.Counter("quarantined_total", "objects quarantined after a corrupt decode")
	s.mQuarHits = s.reg.Counter("quarantine_hits_total", "requests failed fast with 502 by a quarantine entry")
	s.mSeqDec = s.reg.Counter("sequential_decodes_total", "sequential fallback decodes started (counting or serving)")
	s.mRetries = s.reg.Counter("source_retries_total", "transient source-read errors retried on the sequential path")
	s.mIdxLoad = s.reg.Counter("sidecar_loads_total", "foreign objects promoted to random access from a persisted sidecar")
	s.mIdxBuild = s.reg.Counter("sidecar_builds_total", "seek indexes captured during a first decode and promoted")
	s.mIdxErr = s.reg.Counter("sidecar_errors_total", "sidecars that failed to load (corrupt/stale) or persist")
	s.hLatency = s.reg.Histogram("request_latency_ns", "object request wall time in nanoseconds")
	s.reg.Func("quarantined_objects", "quarantine entries currently active", func() float64 {
		s.quarMu.Lock()
		defer s.quarMu.Unlock()
		return float64(len(s.quar))
	})
	s.reg.Func("objects_open", "distinct objects resolved and cached", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.objects))
	})
	s.reg.Func("cache_hits_total", "block requests served from the decoded-block cache", func() float64 {
		return float64(codec.CacheStats().Hits)
	})
	s.reg.Func("cache_misses_total", "block requests that ran or joined a decode", func() float64 {
		return float64(codec.CacheStats().Misses)
	})
	s.reg.Func("cache_coalesced_total", "block decodes avoided by joining an in-flight one", func() float64 {
		return float64(codec.CacheStats().Coalesced)
	})
	s.reg.Func("cache_evictions_total", "blocks evicted to fit the cache budget", func() float64 {
		return float64(codec.CacheStats().Evictions)
	})
	s.reg.Func("cache_bytes", "resident decoded bytes", func() float64 {
		return float64(codec.CacheStats().Bytes)
	})
	s.reg.Func("cache_hit_rate", "hits / (hits+misses)", func() float64 {
		return codec.CacheStats().HitRate()
	})
	s.reg.Func("inflight_block_decodes", "cache block decodes running now", func() float64 {
		return float64(codec.CacheStats().InFlight)
	})
	return s, nil
}

// Codec exposes the server's shared codec (for benchmarks and tests
// inspecting cache behavior).
func (s *Server) Codec() *gompresso.Codec { return s.codec }

// BeginDrain flips /readyz to 503 so load balancers stop routing here.
// Call it before http.Server.Shutdown; in-flight and already-routed
// requests still complete (/healthz stays 200 — the process is alive,
// just leaving the pool).
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Ready reports whether the server is accepting routed traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

// Handler returns the server's HTTP handler: /healthz, /metrics, and
// every other path an object request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			s.reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteText(w)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		s.tracer.ServeDebugRequests(w, r)
	})
	mux.HandleFunc("/", s.serveObject)
	return mux
}

// statusWriter records the response status and body byte count, and —
// when a write timeout is configured — pushes a rolling write deadline
// ahead of every body write so a stalled client errors out of the send
// loop instead of pinning worker buffers for the connection's lifetime.
type statusWriter struct {
	http.ResponseWriter
	rc           *http.ResponseController
	writeTimeout time.Duration
	trace        *obs.Trace // nil when tracing is off
	status       int
	bytes        int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.writeTimeout > 0 {
		// Unsupported writers (test recorders, exotic middleware) are
		// fine: the deadline is a bound, not a guarantee.
		w.rc.SetWriteDeadline(time.Now().Add(w.writeTimeout))
	}
	if w.trace != nil {
		t0 := time.Now()
		n, err := w.ResponseWriter.Write(p)
		w.trace.Cum(obs.StageBodyWrite, time.Since(t0), 1)
		w.bytes += int64(n)
		return n, err
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// serveObject handles one GET/HEAD object request end to end: panic
// isolation, accounting, the request trace's begin/finish, and the
// rolling write deadline's reset.
func (s *Server) serveObject(rw http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	ctx, trace := s.tracer.Begin(r.Context(), r.Method, r.URL.Path, r.Header.Get("Range"))
	if trace != nil {
		rw.Header().Set("X-Request-Id", trace.ID())
		r = r.WithContext(ctx)
	}
	w := &statusWriter{
		ResponseWriter: rw,
		rc:             http.NewResponseController(rw),
		writeTimeout:   s.writeTimeout,
		trace:          trace,
	}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			// A decode or handler bug takes down this request, not the
			// process. If the status line is unsent we can still answer
			// 500; otherwise the truncated body tells the client.
			s.mPanics.Inc()
			s.mErrors.Inc()
			if w.status == 0 {
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
			trace.SetError("panic")
			s.logf("%s %s PANIC %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
		}
		if w.writeTimeout > 0 {
			// Clear the rolling deadline so it cannot shoot down the
			// next request on a keep-alive connection.
			w.rc.SetWriteDeadline(time.Time{})
		}
		s.mBytes.Add(w.bytes)
		s.hLatency.Observe(time.Since(start).Nanoseconds())
		// Finish runs after panic recovery so crashed requests still get
		// their access-log line (at WARN: the status is 500).
		trace.Finish(w.status, w.bytes)
	}()
	err := s.serve(w, r)
	if err != nil || w.status >= 400 {
		s.mErrors.Inc()
	}
	if err != nil && trace != nil && !errors.As(err, new(*httpError)) {
		trace.SetError(errClass(err))
	}
	s.logf("%s %s %d %dB %v err=%v", r.Method, r.URL.Path, w.status, w.bytes, time.Since(start).Round(time.Microsecond), err)
}

// errClass buckets a request error for the access log and span dumps:
// "corrupt" (the object's bytes are bad), "canceled" (client gone),
// "deadline" (request timeout), "backend" (read-path failure).
func errClass(err error) string {
	switch {
	case isCorrupt(err):
		return "corrupt"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "backend"
	}
}

// httpError is an error with a response status. serve's callees return
// it while the response is still unwritten. class, when set, is the
// serving-policy verdict ("quarantined") carried to the access log.
type httpError struct {
	code  int
	msg   string
	class string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) serve(w *statusWriter, r *http.Request) error {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return nil
	}
	_, rsp := obs.Start(r.Context(), obs.StageResolve)
	obj, err := s.open(r.URL.Path)
	rsp.End()
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			if he.class != "" {
				w.trace.SetVerdict(he.class)
			}
			http.Error(w, he.msg, he.code)
			return nil
		}
		http.Error(w, "internal error", http.StatusInternalServerError)
		return err
	}
	defer s.release(obj)

	// Conditional GET resolves on the validators alone — before the
	// limiter and before any size discovery, so revalidations are free.
	if notModified(r.Header.Get("If-None-Match"), r.Header.Get("If-Modified-Since"), obj.etag, obj.mtime) {
		h := w.Header()
		h.Set("ETag", obj.etag)
		h.Set("Last-Modified", obj.mtime.UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusNotModified)
		return nil
	}

	// The decode section: everything below may decode blocks, so it
	// runs inside the concurrency limiter. Waiters give up when the
	// client does, and are shed with 503 once they have queued for
	// queueWait — bounded waits, not silent backlog.
	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	var shedC <-chan time.Time
	if s.queueWait > 0 {
		t := time.NewTimer(s.queueWait)
		defer t.Stop()
		shedC = t.C
	}
	s.gWaiting.Inc()
	_, qsp := obs.Start(ctx, obs.StageQueueWait)
	select {
	case s.sem <- struct{}{}:
		qsp.End()
		s.gWaiting.Dec()
	case <-shedC:
		qsp.End()
		s.gWaiting.Dec()
		s.mShed.Inc()
		w.trace.SetVerdict("shed")
		w.Header().Set("Retry-After", s.retryAfterAdvice())
		http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
		return nil
	case <-ctx.Done():
		qsp.End()
		s.gWaiting.Dec()
		return s.answerCtxErr(w, ctx.Err())
	}
	defer func() { <-s.sem }()
	s.gInFlight.Inc()
	busyStart := time.Now()
	defer func() {
		s.gInFlight.Dec()
		s.observeBusy(time.Since(busyStart))
	}()

	size, err := s.objSize(ctx, obj)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			return s.answerCtxErr(w, err)
		case s.maybeQuarantine(obj, err):
			w.trace.SetVerdict("quarantined")
			http.Error(w, "object corrupt", http.StatusBadGateway)
		case isCorrupt(err):
			http.Error(w, "object corrupt", http.StatusBadGateway)
		default:
			// A read-path failure (EIO, truncated file): the backend is
			// unhealthy for this object, not the server.
			http.Error(w, "cannot read object", http.StatusBadGateway)
		}
		return err
	}

	h := w.Header()
	h.Set("Accept-Ranges", "bytes")
	h.Set("ETag", obj.etag)
	h.Set("Last-Modified", obj.mtime.UTC().Format(http.TimeFormat))
	h.Set("Content-Type", contentTypeFor(obj.name))

	rng := byteRange{off: 0, length: size}
	status := http.StatusOK
	// Range applies to GET only (RFC 9110 §14.2); HEAD reports the
	// full representation.
	if spec := r.Header.Get("Range"); spec != "" && r.Method == http.MethodGet &&
		ifRangeApplies(r.Header.Get("If-Range"), obj.etag, obj.mtime) {
		pr, ok, rerr := parseRange(spec, size)
		if rerr != nil {
			h.Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return nil
		}
		if ok {
			rng, status = pr, http.StatusPartialContent
			h.Set("Content-Range", rng.contentRange(size))
			s.mRanges.Inc()
		}
	}
	h.Set("Content-Length", strconv.FormatInt(rng.length, 10))
	w.WriteHeader(status)
	if r.Method == http.MethodHead {
		return nil
	}
	// Load ra after objSize: a foreign object's first request counts,
	// captures its index, and promotes — so even the cold request's body
	// is served through the block machinery.
	if ra := obj.ra.Load(); ra != nil {
		_, err = ra.WriteRangeTo(ctx, w, rng.off, rng.length)
	} else {
		err = s.serveSequential(ctx, obj, w, rng.off, rng.length)
	}
	// The status line is gone; a decode or write failure here can only
	// abort the connection (the byte count mismatch tells the client).
	// Corruption discovered mid-send still quarantines the object, so
	// the next request fails fast with a clean 502.
	if err != nil && s.maybeQuarantine(obj, err) {
		w.trace.SetVerdict("quarantined")
	}
	return err
}

// answerCtxErr maps a context error to a response, when one can still
// be sent. Deadline expiry is the server's own request timeout — answer
// 503 so the client knows to retry; cancellation means the client is
// gone and nothing we write matters.
func (s *Server) answerCtxErr(w *statusWriter, err error) error {
	if errors.Is(err, context.DeadlineExceeded) && w.status == 0 {
		w.Header().Set("Retry-After", s.retryAfterAdvice())
		http.Error(w, "request timed out", http.StatusServiceUnavailable)
	}
	return err
}

// observeBusy folds one decode-section occupancy sample into the EWMA
// that feeds Retry-After advice. The load/store pair is racy between
// concurrent requests, but every access is atomic and the value is a
// smoothed estimate — losing a sample under contention is harmless.
func (s *Server) observeBusy(d time.Duration) {
	sample := int64(d)
	old := s.busyEWMANs.Load()
	if old == 0 {
		s.busyEWMANs.Store(sample)
		return
	}
	s.busyEWMANs.Store(old + (sample-old)/8)
}

// retryAfterAdvice computes the Retry-After value for a shed or
// timed-out request. A hardcoded constant re-stampedes the queue: every
// shed client retries on the same second boundary, arrives together,
// and is shed together again. Instead the advice derives from the
// observed queue drain — queued requests each hold a limiter slot for
// about the recent per-request occupancy, served MaxInFlight at a time
// — and consecutive sheds rotate through the drain window so no two
// clients are told the same second (the shed sequence is the jitter
// source: deterministic splay, collision-free where a random draw could
// still pile two clients onto one boundary).
func (s *Server) retryAfterAdvice() string {
	avg := s.busyEWMANs.Load()
	if avg <= 0 {
		avg = int64(50 * time.Millisecond)
	}
	waiting := s.gWaiting.Load()
	if waiting < 0 {
		waiting = 0
	}
	drain := time.Duration((waiting + 1) * avg / int64(cap(s.sem)))
	// Spread the retries across the estimated drain window, at least 2
	// distinct seconds (so consecutive sheds always differ) and at most
	// 30 (advice beyond that just loses clients).
	spread := int64(drain/time.Second) + 2
	if spread > 30 {
		spread = 30
	}
	return strconv.FormatInt(1+s.shedSeq.Add(1)%spread, 10)
}

// open resolves a request path to a served object, reusing the cached
// resolution while the file's size and mtime are unchanged. The
// returned object is pinned for the caller (refs incremented); it must
// be handed to release exactly once.
func (s *Server) open(urlPath string) (*object, error) {
	name := path.Clean("/" + urlPath)[1:]
	if name == "" || name == "." {
		return nil, errf(http.StatusNotFound, "not found")
	}
	st, err := s.src.Stat(name)
	if err != nil || st.IsDir() {
		return nil, errf(http.StatusNotFound, "not found")
	}

	// Quarantine fast path: a known-corrupt generation answers 502
	// immediately — no open, no limiter slot, no decode.
	if reason, bad := s.quarantined(name, st); bad {
		s.mQuarHits.Inc()
		return nil, &httpError{
			code:  http.StatusBadGateway,
			msg:   fmt.Sprintf("object quarantined: %s", reason),
			class: "quarantined",
		}
	}

	now := time.Now()
	s.mu.Lock()
	if cached, ok := s.objects[name]; ok && cached.fsize == st.Size() && cached.mtime.Equal(st.ModTime()) {
		cached.refs++
		cached.lastUse = now
		s.mu.Unlock()
		return cached, nil
	}
	s.mu.Unlock()

	f, err := s.src.Open(name)
	if err != nil {
		if os.IsNotExist(err) || os.IsPermission(err) {
			return nil, errf(http.StatusNotFound, "not found")
		}
		return nil, err // e.g. EMFILE: a server problem, not a 404
	}
	obj, err := s.resolve(name, f, st)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.mu.Lock()
	// A concurrent request may have resolved the same file; keep the
	// registry's copy and discard ours so every request for one
	// generation shares one object (and one set of cache keys).
	if cur, ok := s.objects[name]; ok && cur.fsize == st.Size() && cur.mtime.Equal(st.ModTime()) {
		cur.refs++
		cur.lastUse = now
		s.mu.Unlock()
		f.Close()
		return cur, nil
	}
	old := s.objects[name]
	obj.refs = 1
	obj.lastUse = now
	s.objects[name] = obj
	// A replaced predecessor stays open while in-flight requests read
	// it; the last release closes it. Its cache entries (keyed under
	// the old ReaderAt's object id) age out of the LRU.
	if old != nil {
		s.retire(old)
	}
	for len(s.objects) > maxOpenObjects {
		s.evictOldest()
	}
	s.mu.Unlock()
	return obj, nil
}

// retire marks a resolution dropped from the registry, closing its file
// now if no request holds it. Caller holds s.mu.
func (s *Server) retire(obj *object) {
	obj.stale = true
	if obj.refs == 0 {
		obj.file.Close()
	}
}

// evictOldest drops the least-recently-used registry entry to keep the
// open-descriptor count bounded. Caller holds s.mu.
func (s *Server) evictOldest() {
	var lru *object
	for _, o := range s.objects {
		if lru == nil || o.lastUse.Before(lru.lastUse) {
			lru = o
		}
	}
	if lru == nil {
		return
	}
	delete(s.objects, lru.name)
	s.retire(lru)
}

// release unpins an object returned by open, closing a stale object's
// file once its last request finishes.
func (s *Server) release(obj *object) {
	s.mu.Lock()
	obj.refs--
	if obj.stale && obj.refs == 0 {
		obj.file.Close()
	}
	s.mu.Unlock()
}

// resolve sniffs the file's format and builds the serving state: a
// ReaderAt for indexed native containers, sequential metadata otherwise.
func (s *Server) resolve(name string, f File, st os.FileInfo) (*object, error) {
	head := make([]byte, 4)
	n, err := f.ReadAt(head, 0)
	if n == 0 && err != nil && err != io.EOF {
		// Could not read a single byte: a backend fault, not a format
		// problem — the client should see 502, not 415.
		return nil, errf(http.StatusBadGateway, "cannot read object: %v", err)
	}
	form := gompresso.DetectFormat(head[:n])
	if form == gompresso.FormatAuto {
		return nil, errf(http.StatusUnsupportedMediaType,
			"unsupported object format (want Gompresso container, gzip, or zlib)")
	}
	obj := &object{
		name:  name,
		file:  f,
		fsize: st.Size(),
		mtime: st.ModTime(),
		etag:  fmt.Sprintf(`"g-%x-%x"`, st.Size(), st.ModTime().UnixNano()),
		form:  form,
		szTok: make(chan struct{}, 1),
	}
	obj.rawSize.Store(-1)
	if form == gompresso.FormatGompresso {
		hdr, err := readHeader(f)
		if err != nil {
			if !isCorrupt(err) {
				return nil, errf(http.StatusBadGateway, "cannot read object: %v", err)
			}
			return nil, errf(http.StatusUnsupportedMediaType, "malformed container: %v", err)
		}
		obj.rawSize.Store(int64(hdr.RawSize))
		// Fallback rule: random access only through a real index
		// trailer. An unindexed container would need a full scan to
		// build one, so it streams sequentially like a foreign object.
		if _, err := format.ReadIndexAt(f, st.Size(), hdr); err == nil {
			ra, err := s.codec.NewReaderAt(f, st.Size())
			if err != nil {
				return nil, errf(http.StatusUnsupportedMediaType, "malformed container: %v", err)
			}
			obj.ra.Store(ra)
		}
	} else if idx := s.loadSidecar(name, st); idx != nil {
		// A persisted sidecar promotes the foreign object immediately:
		// no counting decode, random access from the first request.
		if ra, err := s.codec.NewReaderAtWithIndex(f, st.Size(), idx); err == nil {
			obj.ra.Store(ra)
			obj.rawSize.Store(idx.RawSize)
			s.mIdxLoad.Inc()
		} else {
			s.mIdxErr.Inc()
			s.logf("sidecar for %s rejected: %v", name, err)
		}
	}
	return obj, nil
}

// readHeader parses the container file header from the start of f.
func readHeader(f io.ReaderAt) (format.FileHeader, error) {
	head := make([]byte, format.HeaderSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return format.FileHeader{}, err
	}
	return format.ParseHeader(head)
}

// isCorrupt classifies a decode error as data corruption — the object
// itself is bad, and will stay bad on retry — as opposed to a
// transient read failure or cancellation. The typed errors come from
// the decode stack: deflate.Error (foreign streams), format.ErrFormat
// (container structure), lz77.ErrCorrupt (block payloads), and the
// format sniffer's ErrUnknownFormat.
func isCorrupt(err error) bool {
	var de *deflate.Error
	return errors.As(err, &de) ||
		errors.Is(err, format.ErrFormat) ||
		errors.Is(err, lz77.ErrCorrupt) ||
		errors.Is(err, gompresso.ErrUnknownFormat)
}

// isTransient reports whether a sequential-path error is worth an
// in-request retry: read-path failures that are neither corruption
// (retry cannot help) nor cancellation (nobody is waiting).
func isTransient(err error) bool {
	return err != nil && !isCorrupt(err) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// maybeQuarantine records a TTL'd negative entry for obj when err says
// its bytes are corrupt, so repeat requests fail fast with 502 instead
// of re-burning a decode. Returns whether it quarantined. The entry is
// keyed to the object's validators: a rewritten file clears it on the
// next request, and the resolution (plus any cached blocks) is dropped
// so nothing suspect survives in memory.
func (s *Server) maybeQuarantine(obj *object, err error) bool {
	if s.quarTTL <= 0 || !isCorrupt(err) {
		return false
	}
	s.quarMu.Lock()
	_, already := s.quar[obj.name]
	s.quar[obj.name] = &quarEntry{
		until:  time.Now().Add(s.quarTTL),
		fsize:  obj.fsize,
		mtime:  obj.mtime,
		reason: err.Error(),
	}
	s.quarMu.Unlock()
	if !already {
		s.mQuar.Inc()
	}
	if ra := obj.ra.Load(); ra != nil {
		ra.Forget()
	}
	s.mu.Lock()
	if s.objects[obj.name] == obj {
		delete(s.objects, obj.name)
		s.retire(obj)
	}
	s.mu.Unlock()
	s.logf("quarantined %s for %v: %v", obj.name, s.quarTTL, err)
	return true
}

// quarantined checks name against the quarantine, dropping entries
// whose TTL has passed or whose file has changed since the bad decode.
func (s *Server) quarantined(name string, st os.FileInfo) (string, bool) {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	q, ok := s.quar[name]
	if !ok {
		return "", false
	}
	if time.Now().After(q.until) || q.fsize != st.Size() || !q.mtime.Equal(st.ModTime()) {
		delete(s.quar, name)
		return "", false
	}
	return q.reason, true
}

// objSize returns the object's decompressed size, discovering it with
// one counting decode for formats that don't carry it (kept for the
// object's lifetime). Native containers know it from the header.
// Discovery is a context-aware singleflight: one request counts while
// the rest wait on the token with their own contexts, so a disconnected
// waiter frees its concurrency-limiter slot instead of queueing blindly
// behind a slow decode; if the counting request is itself cancelled, the
// next waiter takes over.
func (s *Server) objSize(ctx context.Context, obj *object) (int64, error) {
	if v := obj.rawSize.Load(); v >= 0 {
		return v, nil
	}
	select {
	case obj.szTok <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	defer func() { <-obj.szTok }()
	if v := obj.rawSize.Load(); v >= 0 {
		return v, nil
	}
	n, err := s.countSize(ctx, obj)
	if err != nil {
		return 0, err
	}
	obj.rawSize.Store(n)
	return n, nil
}

// seqRetries bounds the sequential path's in-request retries of
// transient source-read errors; backoffBase is the first sleep, doubled
// per attempt with up to 50% jitter so synchronized retries splay.
const (
	seqRetries  = 2
	backoffBase = 25 * time.Millisecond
)

// retrySequential runs fn up to 1+seqRetries times, backing off between
// attempts, as long as the failure is transient (a flaky disk read —
// not corruption, not cancellation) and fn reports it is still safe to
// retry (no response bytes sent).
func (s *Server) retrySequential(ctx context.Context, fn func() (retryable bool, err error)) error {
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		retryable, err = fn()
		if err == nil || !retryable || attempt == seqRetries || !isTransient(err) {
			return err
		}
		s.mRetries.Inc()
		// math/rand/v2: lock-free per-goroutine state, no global mutex
		// on the request path. Guard the jitter draw — Int64N panics on
		// a non-positive argument, and backoffBase could plausibly be
		// configured to 0 someday.
		delay := backoffBase << attempt
		if delay > 0 {
			delay += time.Duration(rand.Int64N(int64(delay)))
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// countSize runs the counting decode behind objSize's token. For foreign
// objects the pass does double duty: seek checkpoints are captured along
// the way (CollectForeignIndex — no extra decode), and on success the
// object is promoted to the random-access path and the sidecar persisted
// if an index directory is configured. The singleflight token means
// concurrent cold requests build the index exactly once.
func (s *Server) countSize(ctx context.Context, obj *object) (int64, error) {
	s.gDecoding.Inc()
	defer s.gDecoding.Dec()
	src := obs.SourceReaderAt(ctx, obj.file)
	var n int64
	err := s.retrySequential(ctx, func() (bool, error) {
		s.mSeqDec.Inc()
		_, sp := obs.Start(ctx, obs.StageSeqDecode)
		defer sp.End()
		r, err := s.codec.NewReaderContext(ctx, io.NewSectionReader(src, 0, obj.fsize))
		if err != nil {
			return true, err
		}
		defer r.Close()
		collecting := r.CollectForeignIndex(s.indexSpacing)
		n, err = io.Copy(io.Discard, r)
		if err == nil && collecting {
			s.promote(obj, r.ForeignIndex())
		}
		return true, err
	})
	return n, err
}

// promote installs a freshly captured seek index on a foreign object:
// the sequential fallback becomes block random access for every later
// request (and the remainder of this one). Promotion failures are not
// request failures — the object just keeps streaming sequentially.
func (s *Server) promote(obj *object, idx *gompresso.SeekIndex) {
	if idx == nil || obj.ra.Load() != nil {
		return
	}
	ra, err := s.codec.NewReaderAtWithIndex(obj.file, obj.fsize, idx)
	if err != nil {
		s.mIdxErr.Inc()
		s.logf("promoting %s: %v", obj.name, err)
		return
	}
	if !obj.ra.CompareAndSwap(nil, ra) {
		return
	}
	s.mIdxBuild.Inc()
	s.persistSidecar(obj, idx)
}

// sidecarPath maps an object name into the index directory.
func (s *Server) sidecarPath(name string) string {
	return filepath.Join(s.indexDir, filepath.FromSlash(name)+gzidx.Ext)
}

// loadSidecar finds a fresh, valid sidecar for the foreign object name:
// first in the configured index directory, then alongside the object
// through the Source seam (sidecars shipped with the data, or built
// offline by `gompresso index`). Corrupt or stale sidecars are ignored —
// the first decode rebuilds and, when an index directory is configured,
// replaces them.
func (s *Server) loadSidecar(name string, st os.FileInfo) *gompresso.SeekIndex {
	if s.indexDir != "" {
		idx, err := gzidx.LoadFile(s.sidecarPath(name), st.Size(), st.ModTime())
		if err == nil {
			return idx
		}
		if !os.IsNotExist(err) {
			s.mIdxErr.Inc()
			s.logf("sidecar %s: %v", s.sidecarPath(name), err)
		}
	}
	idx, err := s.loadSourceSidecar(name, st)
	if err == nil {
		return idx
	}
	if !os.IsNotExist(err) {
		s.mIdxErr.Inc()
		s.logf("sidecar %s%s: %v", name, gzidx.Ext, err)
	}
	return nil
}

// loadSourceSidecar reads name's sidecar through the Source seam.
func (s *Server) loadSourceSidecar(name string, st os.FileInfo) (*gompresso.SeekIndex, error) {
	scName := name + gzidx.Ext
	sst, err := s.src.Stat(scName)
	if err != nil {
		return nil, err
	}
	if sst.Size() > gzidx.MaxSidecar {
		return nil, fmt.Errorf("sidecar is %d bytes", sst.Size())
	}
	f, err := s.src.Open(scName)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, sst.Size())
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, sst.Size()), data); err != nil {
		return nil, err
	}
	idx, meta, err := gzidx.Decode(data)
	if err != nil {
		return nil, err
	}
	if meta.Stale(st.Size(), st.ModTime()) {
		return nil, errors.New("stale sidecar")
	}
	return idx, nil
}

// persistSidecar writes the object's freshly built index durably when an
// index directory is configured; in-memory deployments skip it. Persist
// failures never fail the request — the promotion already happened.
func (s *Server) persistSidecar(obj *object, idx *gompresso.SeekIndex) {
	if s.indexDir == "" {
		return
	}
	enc, err := gzidx.Encode(idx, obj.mtime)
	if err == nil {
		err = gzidx.WriteFileAtomic(s.sidecarPath(obj.name), enc)
	}
	if err != nil {
		s.mIdxErr.Inc()
		s.logf("persisting sidecar for %s: %v", obj.name, err)
		return
	}
	s.logf("sidecar persisted for %s (%d checkpoints)", obj.name, idx.NumChunks())
}

// serveSequential is the fallback send path: decode the stream under
// the request's context, position at off (Seek for native containers,
// decode-and-discard for foreign), and copy length bytes. Transient
// read errors retry with backoff while no body byte has been sent;
// after first byte the response is committed and can only abort.
func (s *Server) serveSequential(ctx context.Context, obj *object, w io.Writer, off, length int64) error {
	s.gDecoding.Inc()
	defer s.gDecoding.Dec()
	src := obs.SourceReaderAt(ctx, obj.file)
	return s.retrySequential(ctx, func() (bool, error) {
		s.mSeqDec.Inc()
		_, sp := obs.Start(ctx, obs.StageSeqDecode)
		defer sp.End()
		var sent int64
		err := func() error {
			r, err := s.codec.NewReaderContext(ctx, io.NewSectionReader(src, 0, obj.fsize))
			if err != nil {
				return err
			}
			defer r.Close()
			if off > 0 {
				if obj.form == gompresso.FormatGompresso {
					_, err = r.Seek(off, io.SeekStart)
				} else {
					_, err = io.CopyN(io.Discard, r, off)
				}
				if err != nil {
					return err
				}
			}
			if length > 0 {
				var n int64
				n, err = io.CopyN(w, r, length)
				sent += n
				if err != nil {
					return err
				}
			}
			return nil
		}()
		return sent == 0, err
	})
}

// contentTypeFor guesses a Content-Type from the object name with the
// compression suffix stripped: corpus.txt.gz serves as text/plain.
func contentTypeFor(name string) string {
	base := name
	switch ext := path.Ext(base); ext {
	case ".gz", ".zz", ".gpz":
		base = base[:len(base)-len(ext)]
	}
	if t := mime.TypeByExtension(path.Ext(base)); t != "" {
		return t
	}
	return "application/octet-stream"
}
