package server

import (
	"bytes"
	"compress/gzip"
	"compress/zlib"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gompresso"
	"gompresso/internal/datagen"
)

// fixture builds a served root: the same corpus as an indexed container,
// an unindexed container, a .gz, and a .zz, plus junk that must 415.
type fixture struct {
	root string
	src  []byte
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	root := t.TempDir()
	src := datagen.WikiXML(300<<10, 7)

	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10, Index: true})
	if err != nil {
		t.Fatal(err)
	}
	write("corpus.txt.gpz", comp)
	plain, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	write("noindex.gpz", plain)

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(src)
	zw.Close()
	write("corpus.txt.gz", gz.Bytes())

	var zz bytes.Buffer
	zzw := zlib.NewWriter(&zz)
	zzw.Write(src)
	zzw.Close()
	write("corpus.zz", zz.Bytes())

	write("junk.bin", []byte{0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3})
	if err := os.Mkdir(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	write(filepath.Join("sub", "nested.gpz"), comp)
	return &fixture{root: root, src: src}
}

func startServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeFullAndRanges(t *testing.T) {
	fx := newFixture(t)
	for _, cache := range []int64{0, 8 << 20} {
		_, ts := startServer(t, Options{Root: fx.root, CacheBytes: cache})
		for _, name := range []string{"corpus.txt.gpz", "noindex.gpz", "corpus.txt.gz", "corpus.zz", "sub/nested.gpz"} {
			url := ts.URL + "/" + name
			resp := get(t, url, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cache=%d %s: status %d", cache, name, resp.StatusCode)
			}
			if got := resp.Header.Get("Accept-Ranges"); got != "bytes" {
				t.Fatalf("%s: Accept-Ranges = %q", name, got)
			}
			if got := resp.ContentLength; got != int64(len(fx.src)) {
				t.Fatalf("%s: Content-Length = %d, want %d", name, got, len(fx.src))
			}
			if b := body(t, resp); !bytes.Equal(b, fx.src) {
				t.Fatalf("cache=%d %s: full body mismatch (%d bytes)", cache, name, len(b))
			}

			// Ranges over the decompressed stream: interior, block-crossing,
			// suffix, open-ended, single byte, clamped end.
			size := len(fx.src)
			ranges := []struct {
				spec     string
				off, end int // inclusive end
			}{
				{"bytes=0-99", 0, 99},
				{"bytes=65535-65536", 65535, 65536}, // block boundary
				{"bytes=5000-200000", 5000, 200000}, // multi-block
				{fmt.Sprintf("bytes=%d-", size-777), size - 777, size - 1},
				{"bytes=-512", size - 512, size - 1},
				{fmt.Sprintf("bytes=100-%d", size+5000), 100, size - 1}, // clamp
				{fmt.Sprintf("bytes=%d-%d", size-1, size-1), size - 1, size - 1},
			}
			for _, rg := range ranges {
				resp := get(t, url, map[string]string{"Range": rg.spec})
				if resp.StatusCode != http.StatusPartialContent {
					t.Fatalf("%s %s: status %d", name, rg.spec, resp.StatusCode)
				}
				wantCR := fmt.Sprintf("bytes %d-%d/%d", rg.off, rg.end, size)
				if got := resp.Header.Get("Content-Range"); got != wantCR {
					t.Fatalf("%s %s: Content-Range %q, want %q", name, rg.spec, got, wantCR)
				}
				if b := body(t, resp); !bytes.Equal(b, fx.src[rg.off:rg.end+1]) {
					t.Fatalf("cache=%d %s %s: range body mismatch", cache, name, rg.spec)
				}
			}
		}
	}
}

func TestHead(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root})
	for _, name := range []string{"corpus.txt.gpz", "corpus.txt.gz"} {
		resp, err := http.Head(ts.URL + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if resp.ContentLength != int64(len(fx.src)) {
			t.Fatalf("%s: HEAD Content-Length = %d, want %d", name, resp.ContentLength, len(fx.src))
		}
		if b := body(t, resp); len(b) != 0 {
			t.Fatalf("%s: HEAD returned a body", name)
		}
		if resp.Header.Get("ETag") == "" || resp.Header.Get("Last-Modified") == "" {
			t.Fatalf("%s: missing validators", name)
		}
	}
	// Content-Type from the name under the compression suffix.
	resp, err := http.Head(ts.URL + "/corpus.txt.gz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// Conditional requests: matching validators revalidate with 304 (no
// body, no decode); Range is ignored on HEAD per RFC 9110.
func TestConditionalAndHeadRange(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root})
	url := ts.URL + "/corpus.txt.gpz"
	probe := get(t, url, nil)
	body(t, probe)
	etag := probe.Header.Get("ETag")
	lastMod := probe.Header.Get("Last-Modified")

	for _, hdr := range []map[string]string{
		{"If-None-Match": etag},
		{"If-None-Match": `"other", ` + etag},
		{"If-None-Match": "*"},
		{"If-Modified-Since": lastMod},
	} {
		resp := get(t, url, hdr)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%v: status %d, want 304", hdr, resp.StatusCode)
		}
		if b := body(t, resp); len(b) != 0 {
			t.Fatalf("%v: 304 carried a body", hdr)
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("%v: 304 lost the validator", hdr)
		}
	}
	for _, hdr := range []map[string]string{
		{"If-None-Match": `"stale-etag"`},
		{"If-Modified-Since": time.Now().Add(-24 * time.Hour).UTC().Format(http.TimeFormat)},
	} {
		resp := get(t, url, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d, want 200", hdr, resp.StatusCode)
		}
		if b := body(t, resp); !bytes.Equal(b, fx.src) {
			t.Fatalf("%v: body mismatch", hdr)
		}
	}

	// HEAD with Range: 200 and the full length, never 206.
	req, _ := http.NewRequest(http.MethodHead, url, nil)
	req.Header.Set("Range", "bytes=0-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.ContentLength != int64(len(fx.src)) {
		t.Fatalf("HEAD+Range: status %d len %d, want 200 %d", resp.StatusCode, resp.ContentLength, len(fx.src))
	}
	if resp.Header.Get("Content-Range") != "" {
		t.Fatal("HEAD+Range: Content-Range set")
	}
}

func TestRangeEdgeCases(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root})
	url := ts.URL + "/corpus.txt.gpz"
	size := len(fx.src)

	// Unsatisfiable: 416 with the size in Content-Range.
	for _, spec := range []string{fmt.Sprintf("bytes=%d-", size), "bytes=-0", fmt.Sprintf("bytes=%d-%d", size+10, size+20)} {
		resp := get(t, url, map[string]string{"Range": spec})
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("%s: status %d, want 416", spec, resp.StatusCode)
		}
		if got, want := resp.Header.Get("Content-Range"), fmt.Sprintf("bytes */%d", size); got != want {
			t.Fatalf("%s: Content-Range %q, want %q", spec, got, want)
		}
		resp.Body.Close()
	}
	// Ignorable: syntactically invalid or multi-range → 200 full body.
	for _, spec := range []string{"bytes=abc-def", "frobs=0-5", "bytes=5-2", "bytes=0-5,10-20"} {
		resp := get(t, url, map[string]string{"Range": spec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", spec, resp.StatusCode)
		}
		if b := body(t, resp); !bytes.Equal(b, fx.src) {
			t.Fatalf("%s: body mismatch", spec)
		}
	}
}

func TestIfRange(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root})
	url := ts.URL + "/corpus.txt.gpz"

	probe := get(t, url, nil)
	body(t, probe)
	etag := probe.Header.Get("ETag")
	lastMod := probe.Header.Get("Last-Modified")

	// Matching validators: range honored.
	for _, v := range []string{etag, lastMod} {
		resp := get(t, url, map[string]string{"Range": "bytes=0-9", "If-Range": v})
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("If-Range %q: status %d, want 206", v, resp.StatusCode)
		}
		if b := body(t, resp); !bytes.Equal(b, fx.src[:10]) {
			t.Fatalf("If-Range %q: body mismatch", v)
		}
	}
	// Mismatched validators: range ignored, full 200.
	old := time.Now().Add(-24 * time.Hour).UTC().Format(http.TimeFormat)
	for _, v := range []string{`"different-etag"`, old, "W/" + etag} {
		resp := get(t, url, map[string]string{"Range": "bytes=0-9", "If-Range": v})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("If-Range %q: status %d, want 200", v, resp.StatusCode)
		}
		if b := body(t, resp); !bytes.Equal(b, fx.src) {
			t.Fatalf("If-Range %q: body mismatch", v)
		}
	}
}

func TestErrors(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root})
	cases := []struct {
		path string
		want int
	}{
		{"/missing.gpz", http.StatusNotFound},
		{"/", http.StatusNotFound},
		{"/sub", http.StatusNotFound},               // directory
		{"/../server_test.go", http.StatusNotFound}, // traversal collapses into the root
		{"/junk.bin", http.StatusUnsupportedMediaType},
	}
	for _, tc := range cases {
		resp := get(t, ts.URL+tc.path, nil)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/corpus.txt.gpz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 8 << 20})

	resp := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || string(body(t, resp)) != "ok\n" {
		t.Fatal("healthz failed")
	}

	// A repeated hot range must show cache hits.
	for i := 0; i < 3; i++ {
		r := get(t, ts.URL+"/corpus.txt.gpz", map[string]string{"Range": "bytes=1000-2000"})
		body(t, r)
	}
	resp = get(t, ts.URL+"/metrics?format=json", nil)
	var m map[string]float64
	if err := json.Unmarshal(body(t, resp), &m); err != nil {
		t.Fatal(err)
	}
	if m["requests_total"] < 3 {
		t.Fatalf("requests_total = %v", m["requests_total"])
	}
	if m["range_requests_total"] < 3 {
		t.Fatalf("range_requests_total = %v", m["range_requests_total"])
	}
	if m["cache_hits_total"] < 2 {
		t.Fatalf("cache_hits_total = %v, want >= 2", m["cache_hits_total"])
	}
	if m["bytes_served_total"] < 3*1001 {
		t.Fatalf("bytes_served_total = %v", m["bytes_served_total"])
	}

	// Text exposition carries the same metrics.
	resp = get(t, ts.URL+"/metrics", nil)
	text := string(body(t, resp))
	for _, want := range []string{"requests_total ", "cache_hit_rate ", "inflight_requests "} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("text metrics missing %q:\n%s", want, text)
		}
	}
}

// Concurrent mixed traffic across objects and formats, under the
// concurrency limiter, with the cache churning. Run with -race.
func TestConcurrentRequests(t *testing.T) {
	fx := newFixture(t)
	s, ts := startServer(t, Options{Root: fx.root, CacheBytes: 1 << 20, MaxInFlight: 3})
	names := []string{"corpus.txt.gpz", "noindex.gpz", "corpus.txt.gz", "corpus.zz"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint32(seed*2654435761 + 17)
			for i := 0; i < 5; i++ {
				r = r*1664525 + 1013904223
				name := names[r%uint32(len(names))]
				off := int(r>>8) % (len(fx.src) - 1)
				n := 1 + int(r>>20)%4096
				if off+n > len(fx.src) {
					n = len(fx.src) - off
				}
				spec := fmt.Sprintf("bytes=%d-%d", off, off+n-1)
				resp := get(t, ts.URL+"/"+name, map[string]string{"Range": spec})
				if resp.StatusCode != http.StatusPartialContent {
					t.Errorf("%s %s: status %d", name, spec, resp.StatusCode)
					resp.Body.Close()
					return
				}
				b := body(t, resp)
				if !bytes.Equal(b, fx.src[off:off+n]) {
					t.Errorf("%s %s: body mismatch", name, spec)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Codec().CacheStats(); !st.Enabled || st.Hits+st.Misses == 0 {
		t.Fatalf("cache saw no traffic: %+v", st)
	}
}

// A client that disconnects mid-body must cancel the request's decode
// and not wedge the limiter.
func TestClientDisconnect(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, MaxInFlight: 1})
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/corpus.txt.gpz", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.ReadFull(resp.Body, make([]byte, 10))
		resp.Body.Close() // abandon mid-stream
	}
	// The limiter (capacity 1) must still admit a full request.
	done := make(chan []byte, 1)
	go func() {
		resp := get(t, ts.URL+"/corpus.txt.gpz", nil)
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- b
	}()
	select {
	case b := <-done:
		if !bytes.Equal(b, fx.src) {
			t.Fatal("post-disconnect body mismatch")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("limiter wedged after client disconnects")
	}
}

func TestNewValidation(t *testing.T) {
	fx := newFixture(t)
	for _, o := range []Options{
		{Root: filepath.Join(fx.root, "no-such-dir")},
		{Root: filepath.Join(fx.root, "junk.bin")}, // not a directory
		{Root: fx.root, CacheBytes: -1},
		{Root: fx.root, MaxInFlight: -1},
	} {
		if _, err := New(o); err == nil {
			t.Fatalf("Options %+v accepted", o)
		}
	}
}

// A stale object (file replaced in place) must be re-resolved, not
// served from the old resolution — and the old resolution's file must
// close once its last request finishes.
func TestObjectInvalidation(t *testing.T) {
	fx := newFixture(t)
	s, ts := startServer(t, Options{Root: fx.root})
	url := ts.URL + "/corpus.txt.gpz"
	if b := body(t, get(t, url, nil)); !bytes.Equal(b, fx.src) {
		t.Fatal("initial body mismatch")
	}
	s.mu.Lock()
	oldObj := s.objects["corpus.txt.gpz"]
	s.mu.Unlock()
	src2 := datagen.WikiXML(100<<10, 99)
	comp2, _, err := gompresso.Compress(src2, gompresso.Options{BlockSize: 64 << 10, Index: true})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(fx.root, "corpus.txt.gpz")
	if err := os.WriteFile(p, comp2, 0o644); err != nil {
		t.Fatal(err)
	}
	// Ensure the mtime moves even on coarse filesystems.
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(p, future, future)
	if b := body(t, get(t, url, nil)); !bytes.Equal(b, src2) {
		t.Fatal("stale object served after replacement")
	}
	// The replaced resolution had no in-flight requests, so its file
	// descriptor must be closed (reads on it now fail).
	s.mu.Lock()
	stale, refs := oldObj.stale, oldObj.refs
	s.mu.Unlock()
	if !stale || refs != 0 {
		t.Fatalf("old object stale=%v refs=%d", stale, refs)
	}
	if _, err := oldObj.file.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("stale object's file still open after last release")
	}
}
