package server

import (
	"io"
	"os"
	"path/filepath"

	"gompresso/internal/fault"
)

// File is one served object's backing store: positioned reads for the
// block machinery, a Stat for validator checks, and a Close when the
// registry lets the resolution go.
type File interface {
	io.ReaderAt
	io.Closer
	Stat() (os.FileInfo, error)
}

// Source abstracts where objects come from. The server resolves request
// paths against a Source rather than opening os.Files directly, so a
// fault-injection layer (tests, chaos runs) or a future content-addressed
// store can slot in without touching the request path. Names are
// slash-separated paths relative to the source root, already cleaned.
type Source interface {
	Open(name string) (File, error)
	Stat(name string) (os.FileInfo, error)
}

// DirSource serves a directory tree — the production Source.
type DirSource struct{ root string }

// NewDirSource returns a Source over the directory root.
func NewDirSource(root string) *DirSource { return &DirSource{root: root} }

func (d *DirSource) path(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}

// Open opens root/name.
func (d *DirSource) Open(name string) (File, error) { return os.Open(d.path(name)) }

// Stat stats root/name.
func (d *DirSource) Stat(name string) (os.FileInfo, error) { return os.Stat(d.path(name)) }

// FaultSource wraps a Source with a fault script: reads through files
// whose names match the script's globs fail per the script. Stat and
// Open themselves stay honest — the injected failures are read-path
// failures, the kind a daemon meets mid-request.
type FaultSource struct {
	base   Source
	script *fault.Script
}

// NewFaultSource wraps base with script.
func NewFaultSource(base Source, script *fault.Script) *FaultSource {
	return &FaultSource{base: base, script: script}
}

// Script returns the wrapped script (tests toggle it mid-run).
func (fs *FaultSource) Script() *fault.Script { return fs.script }

// Open opens the file through the fault layer.
func (fs *FaultSource) Open(name string) (File, error) {
	f, err := fs.base.Open(name)
	if err != nil {
		return nil, err
	}
	if !fs.script.Active(name) {
		return f, nil
	}
	return &faultFile{File: f, ra: fs.script.ReaderAt(name, f)}, nil
}

// Stat passes through to the base source.
func (fs *FaultSource) Stat(name string) (os.FileInfo, error) { return fs.base.Stat(name) }

// faultFile routes ReadAt through the script while keeping the base
// file's Stat and Close.
type faultFile struct {
	File
	ra io.ReaderAt
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.ra.ReadAt(p, off) }
