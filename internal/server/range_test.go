package server

import (
	"net/http"
	"testing"
	"time"
)

// RFC 7233 edge cases for parseRange: every row resolves a raw Range
// header against an object size and checks the exact disposition —
// 200-full (ok=false, err=nil), 206 with a specific slice, or 416.
func TestParseRangeTable(t *testing.T) {
	tests := []struct {
		name string
		spec string
		size int64

		wantOK  bool
		wantOff int64
		wantLen int64
		want416 bool
	}{
		// Plain ranges.
		{name: "first byte", spec: "bytes=0-0", size: 100, wantOK: true, wantOff: 0, wantLen: 1},
		{name: "interior", spec: "bytes=10-19", size: 100, wantOK: true, wantOff: 10, wantLen: 10},
		{name: "open ended", spec: "bytes=90-", size: 100, wantOK: true, wantOff: 90, wantLen: 10},
		{name: "exact last byte", spec: "bytes=99-99", size: 100, wantOK: true, wantOff: 99, wantLen: 1},

		// End clamping: last-byte-pos past the end is clamped, not
		// rejected (RFC 7233 §2.1).
		{name: "end clamped to size-1", spec: "bytes=90-1000", size: 100, wantOK: true, wantOff: 90, wantLen: 10},
		{name: "end exactly size", spec: "bytes=0-100", size: 100, wantOK: true, wantOff: 0, wantLen: 100},
		{name: "end exactly size-1", spec: "bytes=0-99", size: 100, wantOK: true, wantOff: 0, wantLen: 100},

		// First-byte-pos at or past the end selects nothing: 416.
		{name: "start at size", spec: "bytes=100-", size: 100, want416: true},
		{name: "start past size", spec: "bytes=500-600", size: 100, want416: true},
		{name: "start at size on size 1", spec: "bytes=1-1", size: 1, want416: true},

		// Suffix ranges ("-n": final n bytes).
		{name: "suffix interior", spec: "bytes=-10", size: 100, wantOK: true, wantOff: 90, wantLen: 10},
		{name: "suffix longer than object", spec: "bytes=-500", size: 100, wantOK: true, wantOff: 0, wantLen: 100},
		{name: "suffix whole of size 1", spec: "bytes=-1", size: 1, wantOK: true, wantOff: 0, wantLen: 1},
		{name: "suffix overlong on size 1", spec: "bytes=-2", size: 1, wantOK: true, wantOff: 0, wantLen: 1},
		// A zero-length suffix or any suffix of an empty object selects
		// no bytes: 416, not an ignored header.
		{name: "suffix zero", spec: "bytes=-0", size: 100, want416: true},
		{name: "suffix on size 0", spec: "bytes=-1", size: 0, want416: true},
		{name: "suffix zero on size 0", spec: "bytes=-0", size: 0, want416: true},
		// Any first-byte-pos against an empty object is past the end.
		{name: "open range on size 0", spec: "bytes=0-", size: 0, want416: true},

		// Ignored forms: full 200 response.
		{name: "no header", spec: "", size: 100},
		{name: "unknown unit", spec: "lines=0-10", size: 100},
		{name: "multipart", spec: "bytes=0-1,5-6", size: 100},
		{name: "bare dash", spec: "bytes=-", size: 100},
		{name: "no dash", spec: "bytes=5", size: 100},
		{name: "garbage first", spec: "bytes=x-10", size: 100},
		{name: "garbage last", spec: "bytes=0-x", size: 100},
		{name: "negative first", spec: "bytes=--5", size: 100},
		{name: "end before start", spec: "bytes=10-5", size: 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng, ok, err := parseRange(tt.spec, tt.size)
			if tt.want416 {
				if err != errUnsatisfiable {
					t.Fatalf("parseRange(%q, %d) err = %v, want errUnsatisfiable", tt.spec, tt.size, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseRange(%q, %d) err = %v", tt.spec, tt.size, err)
			}
			if ok != tt.wantOK {
				t.Fatalf("parseRange(%q, %d) ok = %v, want %v", tt.spec, tt.size, ok, tt.wantOK)
			}
			if ok && (rng.off != tt.wantOff || rng.length != tt.wantLen) {
				t.Fatalf("parseRange(%q, %d) = [%d,+%d], want [%d,+%d]",
					tt.spec, tt.size, rng.off, rng.length, tt.wantOff, tt.wantLen)
			}
		})
	}
}

// RFC 7232 conditional-GET evaluation: If-None-Match lists (weak
// comparison) take precedence over If-Modified-Since.
func TestNotModifiedTable(t *testing.T) {
	mtime := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	httpDate := func(t time.Time) string { return t.UTC().Format(http.TimeFormat) }
	const etag = `"abc123"`
	tests := []struct {
		name string
		inm  string
		ims  string
		want bool
	}{
		{name: "no validators", want: false},
		{name: "etag match", inm: `"abc123"`, want: true},
		{name: "etag mismatch", inm: `"zzz"`, want: false},
		{name: "star matches anything", inm: "*", want: true},
		// If-None-Match uses the weak comparison: W/ prefixes are
		// stripped on both sides.
		{name: "weak candidate vs strong etag", inm: `W/"abc123"`, want: true},
		{name: "list with match last", inm: `"first", "second", "abc123"`, want: true},
		{name: "list without match", inm: `"first", "second"`, want: false},
		{name: "list with star", inm: `"first", *`, want: true},
		// If-Modified-Since only consulted without If-None-Match.
		{name: "ims not modified since", ims: httpDate(mtime), want: true},
		{name: "ims later than mtime", ims: httpDate(mtime.Add(time.Hour)), want: true},
		{name: "ims before mtime", ims: httpDate(mtime.Add(-time.Hour)), want: false},
		{name: "ims unparseable", ims: "not a date", want: false},
		// A failing If-None-Match suppresses the If-Modified-Since
		// check entirely (RFC 7232 §6 precedence).
		{name: "inm miss overrides ims hit", inm: `"zzz"`, ims: httpDate(mtime), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := notModified(tt.inm, tt.ims, etag, mtime); got != tt.want {
				t.Fatalf("notModified(%q, %q) = %v, want %v", tt.inm, tt.ims, got, tt.want)
			}
		})
	}
}

// RFC 7233 §3.2 If-Range: entity tags must match strongly (weak
// validators never apply), dates must equal Last-Modified exactly at
// one-second resolution.
func TestIfRangeAppliesTable(t *testing.T) {
	mtime := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC).Add(500 * time.Millisecond)
	const etag = `"abc123"`
	tests := []struct {
		name    string
		ifRange string
		want    bool
	}{
		{name: "absent applies", ifRange: "", want: true},
		{name: "strong match", ifRange: `"abc123"`, want: true},
		{name: "strong mismatch", ifRange: `"zzz"`, want: false},
		// Weak-vs-strong: a weak validator can never prove the selected
		// representation is byte-identical, so it never honors a range —
		// even when the opaque tag matches.
		{name: "weak candidate same tag", ifRange: `W/"abc123"`, want: false},
		{name: "weak candidate other tag", ifRange: `W/"zzz"`, want: false},
		// Dates compare at header resolution: sub-second mtime detail
		// must not defeat an otherwise exact match.
		{name: "date equal to the second", ifRange: mtime.UTC().Format(http.TimeFormat), want: true},
		{name: "date one second earlier", ifRange: mtime.Add(-time.Second).UTC().Format(http.TimeFormat), want: false},
		{name: "date one second later", ifRange: mtime.Add(time.Second).UTC().Format(http.TimeFormat), want: false},
		{name: "unparseable", ifRange: "not a validator", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ifRangeApplies(tt.ifRange, etag, mtime); got != tt.want {
				t.Fatalf("ifRangeApplies(%q) = %v, want %v", tt.ifRange, got, tt.want)
			}
		})
	}
}
