package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP range-request plumbing (RFC 7233): parsing a Range header against
// the *decompressed* object size, and the If-Range validator check that
// decides whether the range still applies.

// byteRange is one resolved, satisfiable request range over the
// decompressed stream.
type byteRange struct {
	off, length int64
}

// contentRange renders the Content-Range response header value.
func (r byteRange) contentRange(size int64) string {
	return fmt.Sprintf("bytes %d-%d/%d", r.off, r.off+r.length-1, size)
}

// errUnsatisfiable reports a syntactically valid Range that selects no
// bytes of the object (→ 416 with Content-Range: bytes */size).
var errUnsatisfiable = fmt.Errorf("range not satisfiable")

// parseRange resolves a Range header against the object size. The
// returns are:
//
//	ok=false, err=nil — serve the full object with 200: no header,
//	  a syntactically invalid one (which RFC 7233 says to ignore), or a
//	  multi-range request (a server MAY ignore Range; we serve single
//	  ranges only and fall back to the whole object for multipart).
//	ok=true — serve rng with 206.
//	err=errUnsatisfiable — respond 416.
func parseRange(spec string, size int64) (rng byteRange, ok bool, err error) {
	if spec == "" {
		return rng, false, nil
	}
	const prefix = "bytes="
	if !strings.HasPrefix(spec, prefix) {
		return rng, false, nil // unknown unit: ignore
	}
	body := strings.TrimSpace(spec[len(prefix):])
	if body == "" || strings.Contains(body, ",") {
		return rng, false, nil
	}
	dash := strings.IndexByte(body, '-')
	if dash < 0 {
		return rng, false, nil
	}
	first, last := strings.TrimSpace(body[:dash]), strings.TrimSpace(body[dash+1:])
	switch {
	case first == "" && last == "":
		return rng, false, nil
	case first == "":
		// Suffix range "-n": the final n bytes.
		n, perr := strconv.ParseInt(last, 10, 64)
		if perr != nil || n < 0 {
			return rng, false, nil
		}
		if n == 0 || size == 0 {
			return rng, false, errUnsatisfiable
		}
		if n > size {
			n = size
		}
		return byteRange{off: size - n, length: n}, true, nil
	default:
		off, perr := strconv.ParseInt(first, 10, 64)
		if perr != nil || off < 0 {
			return rng, false, nil
		}
		if off >= size {
			return rng, false, errUnsatisfiable
		}
		if last == "" {
			// "a-": from a to the end.
			return byteRange{off: off, length: size - off}, true, nil
		}
		end, perr := strconv.ParseInt(last, 10, 64)
		if perr != nil || end < off {
			return rng, false, nil
		}
		if end >= size {
			end = size - 1
		}
		return byteRange{off: off, length: end - off + 1}, true, nil
	}
}

// notModified evaluates the conditional-GET validators (RFC 7232):
// If-None-Match against the current ETag (weak comparison, as the RFC
// prescribes for If-None-Match), else If-Modified-Since against
// Last-Modified. True means respond 304.
func notModified(inm, ims, etag string, mtime time.Time) bool {
	if inm != "" {
		for _, cand := range strings.Split(inm, ",") {
			cand = strings.TrimSpace(cand)
			if cand == "*" || strings.TrimPrefix(cand, "W/") == strings.TrimPrefix(etag, "W/") {
				return true
			}
		}
		return false
	}
	if ims != "" {
		if t, err := http.ParseTime(ims); err == nil {
			return !mtime.Truncate(time.Second).After(t.Truncate(time.Second))
		}
	}
	return false
}

// ifRangeApplies reports whether a Range header should be honored given
// the request's If-Range validator: absent → yes; an entity tag → only
// on a strong match with the current ETag; an HTTP date → only when it
// equals the current Last-Modified (to one-second granularity, the
// header's resolution).
func ifRangeApplies(ifRange, etag string, mtime time.Time) bool {
	if ifRange == "" {
		return true
	}
	if strings.HasPrefix(ifRange, `"`) || strings.HasPrefix(ifRange, "W/") {
		// Weak validators never match for ranges.
		return !strings.HasPrefix(ifRange, "W/") && ifRange == etag
	}
	t, err := http.ParseTime(ifRange)
	if err != nil {
		return false
	}
	return mtime.Truncate(time.Second).Equal(t.Truncate(time.Second))
}
