package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gompresso/internal/fault"
)

// noLeaks asserts the goroutine count returns to its baseline after fn:
// every decode pipeline, limiter waiter, and fetch goroutine a failed or
// abandoned request started must wind down.
func noLeaks(t *testing.T, fn func()) {
	t.Helper()
	// Idle keep-alive connections each pin a server goroutine; drop them
	// so the baseline and the final count measure decode machinery, not
	// the connection pool.
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustScript(t *testing.T, spec string) *fault.Script {
	t.Helper()
	sc, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func metricsJSON(t *testing.T, ts string) map[string]float64 {
	t.Helper()
	resp := get(t, ts+"/metrics?format=json", nil)
	var m map[string]float64
	if err := json.Unmarshal(body(t, resp), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// The fault matrix: every fault kind × every serving path (indexed
// container, unindexed container, foreign gzip) × cold and warm cache.
// Faulted requests must come back with a clean error status or an
// aborted body — never a hang, never a process death — and after the
// script is disabled and the quarantine cleared, the same object must
// serve byte-identical content: no fault residue in the block cache or
// the registry.
func TestFaultMatrix(t *testing.T) {
	objects := []string{"corpus.txt.gpz", "noindex.gpz", "corpus.txt.gz"}
	scripts := []string{
		"%s:eio@0",          // unreadable from byte zero
		"%s:eio@2000",       // readable prefix, then EIO
		"%s:eio#2",          // flaky: two failures, then healthy
		"%s:latency=30ms#4", // slow reads, then healthy
		"%s:shortread=512",  // dribbling reads
		"%s:truncate@1500",  // file cut short
	}
	for _, warm := range []bool{false, true} {
		for _, spec := range scripts {
			for _, name := range objects {
				name, spec := name, spec
				t.Run(fmt.Sprintf("%s/%s/warm=%v", spec[3:], name, warm), func(t *testing.T) {
					fx := newFixture(t)
					script := mustScript(t, fmt.Sprintf(spec, name))
					src := NewFaultSource(NewDirSource(fx.root), script)
					_, ts := startServer(t, Options{
						Root:          fx.root,
						CacheBytes:    8 << 20,
						Source:        src,
						QuarantineTTL: 50 * time.Millisecond,
						QueueWait:     10 * time.Second,
					})
					noLeaks(t, func() {
						if warm {
							// Warm the cache through the healthy control
							// object so poisoning would be observable.
							script.SetEnabled(false)
							resp := get(t, ts.URL+"/"+name, nil)
							if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
								t.Fatalf("warmup: status %d, %d bytes", resp.StatusCode, len(b))
							}
							script.SetEnabled(true)
						}
						healthy := "sub/nested.gpz"
						for i := 0; i < 3; i++ {
							// Faulted object: whatever happens must finish —
							// either a complete correct body or a clean
							// failure (error status, or an aborted body).
							resp := get(t, ts.URL+"/"+name, nil)
							b, rerr := io.ReadAll(resp.Body)
							resp.Body.Close()
							complete := rerr == nil && resp.StatusCode == http.StatusOK && bytes.Equal(b, fx.src)
							failed := resp.StatusCode >= 400 || rerr != nil ||
								(resp.StatusCode == http.StatusOK && !bytes.Equal(b, fx.src))
							if !complete && !failed {
								t.Fatalf("request %d: status %d, %d bytes, readErr=%v", i, resp.StatusCode, len(b), rerr)
							}
							// The healthy object keeps serving bit-exact
							// alongside every failure mode.
							hresp := get(t, ts.URL+"/"+healthy, nil)
							if hb := body(t, hresp); hresp.StatusCode != http.StatusOK || !bytes.Equal(hb, fx.src) {
								t.Fatalf("healthy object degraded: status %d, %d bytes", hresp.StatusCode, len(hb))
							}
						}
						// Recovery: faults off, quarantine TTL elapsed — the
						// object must serve byte-identical. A poisoned cache
						// or sticky negative entry fails here.
						script.SetEnabled(false)
						time.Sleep(80 * time.Millisecond)
						resp := get(t, ts.URL+"/"+name, nil)
						if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
							t.Fatalf("post-fault recovery: status %d, %d bytes", resp.StatusCode, len(b))
						}
					})
				})
			}
		}
	}
}

// A genuinely corrupt object is quarantined after its first failed
// decode: repeats answer 502 without re-decoding (the sequential-decode
// counter stands still), the TTL expires the entry, and rewriting the
// file clears it immediately.
func TestQuarantine(t *testing.T) {
	fx := newFixture(t)
	// Corrupt the .gz mid-stream: resolves and sniffs fine, dies in decode.
	p := filepath.Join(fx.root, "corpus.txt.gz")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := startServer(t, Options{Root: fx.root, QuarantineTTL: 300 * time.Millisecond})
	url := ts.URL + "/corpus.txt.gz"

	resp := get(t, url, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("first request: status %d, want 502", resp.StatusCode)
	}
	first := metricsJSON(t, ts.URL)
	if first["quarantined_total"] != 1 {
		t.Fatalf("quarantined_total = %v", first["quarantined_total"])
	}
	// Repeats fail fast: same 502, zero additional decodes.
	for i := 0; i < 5; i++ {
		resp := get(t, url, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("quarantined repeat %d: status %d", i, resp.StatusCode)
		}
	}
	after := metricsJSON(t, ts.URL)
	if after["sequential_decodes_total"] != first["sequential_decodes_total"] {
		t.Fatalf("quarantined repeats re-decoded: %v -> %v",
			first["sequential_decodes_total"], after["sequential_decodes_total"])
	}
	if after["quarantine_hits_total"] < 5 {
		t.Fatalf("quarantine_hits_total = %v", after["quarantine_hits_total"])
	}

	// TTL expiry re-probes (and re-quarantines — the file is still bad).
	time.Sleep(350 * time.Millisecond)
	resp = get(t, url, nil)
	resp.Body.Close()
	expired := metricsJSON(t, ts.URL)
	if expired["sequential_decodes_total"] == after["sequential_decodes_total"] {
		t.Fatal("TTL expiry did not re-probe the object")
	}

	// Rewriting the file clears the entry without waiting out the TTL.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(fx.src)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(p, future, future)
	resp = get(t, url, nil)
	if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
		t.Fatalf("rewritten object: status %d, %d bytes", resp.StatusCode, len(b))
	}
	s.quarMu.Lock()
	n := len(s.quar)
	s.quarMu.Unlock()
	if n != 0 {
		t.Fatalf("%d quarantine entries survive the rewrite", n)
	}
}

// Queued past QueueWait, a request is shed with 503 + Retry-After
// rather than waiting forever.
func TestLoadShedding(t *testing.T) {
	fx := newFixture(t)
	script := mustScript(t, "corpus.txt.gz:latency=200ms#100")
	src := NewFaultSource(NewDirSource(fx.root), script)
	_, ts := startServer(t, Options{
		Root:        fx.root,
		Source:      src,
		MaxInFlight: 1,
		QueueWait:   50 * time.Millisecond,
	})
	// Occupy the only slot with a slow sequential decode.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := get(t, ts.URL+"/corpus.txt.gz", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	// Wait until the slow request actually holds the limiter slot — it
	// spends time in faulted reads before reaching the decode section.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if m := metricsJSON(t, ts.URL); m["inflight_requests"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never entered the decode section")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shed := false
	for i := 0; i < 5 && !shed; i++ {
		resp := get(t, ts.URL+"/sub/nested.gpz", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed response missing Retry-After")
			}
			shed = true
		}
		resp.Body.Close()
	}
	wg.Wait()
	if !shed {
		t.Fatal("no request was shed with 503")
	}
	if m := metricsJSON(t, ts.URL); m["shed_total"] < 1 {
		t.Fatalf("shed_total = %v", m["shed_total"])
	}
	// With the slot free again, requests are admitted normally.
	resp := get(t, ts.URL+"/sub/nested.gpz", nil)
	if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
		t.Fatalf("post-shed request: status %d", resp.StatusCode)
	}
}

// Two sheds must never return identical Retry-After advice: a constant
// tells every shed client to retry on the same second boundary, and
// under open-loop load the whole shed cohort re-stampedes the queue
// together. The advice staggers across the estimated drain window.
func TestShedRetryAfterStaggered(t *testing.T) {
	fx := newFixture(t)
	script := mustScript(t, "corpus.txt.gz:latency=200ms#200")
	src := NewFaultSource(NewDirSource(fx.root), script)
	srv, ts := startServer(t, Options{
		Root:        fx.root,
		Source:      src,
		MaxInFlight: 1,
		QueueWait:   30 * time.Millisecond,
	})
	// The advice function itself: always in [1, 30] seconds, and no two
	// consecutive calls agree.
	prev := ""
	for i := 0; i < 8; i++ {
		adv := srv.retryAfterAdvice()
		sec, err := strconv.Atoi(adv)
		if err != nil || sec < 1 || sec > 30 {
			t.Fatalf("advice %q not an integer in [1,30]", adv)
		}
		if adv == prev {
			t.Fatalf("consecutive sheds advised the same Retry-After %q", adv)
		}
		prev = adv
	}
	// End to end: hold the single slot, collect two real shed responses,
	// and compare their headers.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := get(t, ts.URL+"/corpus.txt.gz", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if m := metricsJSON(t, ts.URL); m["inflight_requests"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never entered the decode section")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var advice []string
	for i := 0; i < 20 && len(advice) < 2; i++ {
		resp := get(t, ts.URL+"/sub/nested.gpz", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusServiceUnavailable {
			advice = append(advice, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	}
	wg.Wait()
	if len(advice) < 2 {
		t.Fatalf("collected %d shed responses, want 2", len(advice))
	}
	if advice[0] == advice[1] {
		t.Fatalf("two sheds returned identical Retry-After %q", advice[0])
	}
}

// panicSource panics when a specific object is opened — standing in for
// a handler bug. The middleware must answer 500 and keep the process
// (and subsequent requests) alive.
type panicSource struct {
	Source
	name string
}

func (p *panicSource) Open(name string) (File, error) {
	if name == p.name {
		panic("panicSource: injected handler panic")
	}
	return p.Source.Open(name)
}

func TestPanicRecovery(t *testing.T) {
	fx := newFixture(t)
	src := &panicSource{Source: NewDirSource(fx.root), name: "noindex.gpz"}
	_, ts := startServer(t, Options{Root: fx.root, Source: src})
	for i := 0; i < 2; i++ {
		resp := get(t, ts.URL+"/noindex.gpz", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking request %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// The process survives and other objects still serve.
	resp := get(t, ts.URL+"/corpus.txt.gpz", nil)
	if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
		t.Fatalf("post-panic request: status %d", resp.StatusCode)
	}
	if m := metricsJSON(t, ts.URL); m["panics_total"] != 2 {
		t.Fatalf("panics_total = %v", m["panics_total"])
	}
}

// The per-request decode deadline fires during slow size discovery,
// before headers: the client sees 503, the limiter slot frees, and no
// pipeline goroutine survives.
func TestRequestTimeout(t *testing.T) {
	fx := newFixture(t)
	script := mustScript(t, "corpus.txt.gz:latency=150ms#1000")
	src := NewFaultSource(NewDirSource(fx.root), script)
	_, ts := startServer(t, Options{
		Root:           fx.root,
		Source:         src,
		MaxInFlight:    1,
		RequestTimeout: 100 * time.Millisecond,
	})
	noLeaks(t, func() {
		resp := get(t, ts.URL+"/corpus.txt.gz", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("timed-out request: status %d, want 503", resp.StatusCode)
		}
		// The slot freed: a healthy request completes within its own
		// deadline (nested.gpz decodes indexed, far under 100ms).
		script.SetEnabled(false)
		resp = get(t, ts.URL+"/sub/nested.gpz", nil)
		if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
			t.Fatalf("post-timeout request: status %d", resp.StatusCode)
		}
	})
}

// A request whose deadline expires mid-WriteRangeTo aborts the body,
// releases its pinned cache buffers, and leaks nothing.
func TestRequestTimeoutMidResponse(t *testing.T) {
	fx := newFixture(t)
	script := mustScript(t, "corpus.txt.gpz:latency=40ms#1000")
	src := NewFaultSource(NewDirSource(fx.root), script)
	s, ts := startServer(t, Options{
		Root:           fx.root,
		Source:         src,
		CacheBytes:     8 << 20,
		RequestTimeout: 120 * time.Millisecond,
	})
	noLeaks(t, func() {
		resp := get(t, ts.URL+"/corpus.txt.gpz", nil)
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		// Headers may have gone out as 200 before the deadline hit; the
		// body must then be truncated or errored — never a silent stall.
		if resp.StatusCode == http.StatusOK && rerr == nil && bytes.Equal(b, fx.src) {
			// Decode beat the deadline — acceptable on a fast machine,
			// but the latency script should normally prevent it.
			t.Log("decode completed inside the deadline")
		}
		script.SetEnabled(false)
		resp = get(t, ts.URL+"/corpus.txt.gpz", nil)
		if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
			t.Fatalf("recovery request: status %d, %d bytes", resp.StatusCode, len(b))
		}
	})
	// Every cache buffer pinned by the aborted request was released:
	// resident bytes within budget and no refcount wedge — a second
	// full read must still be able to evict/insert freely.
	if st := s.Codec().CacheStats(); st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget after aborted request: %+v", st)
	}
}

// Mid-body client disconnects across every serving path, asserting no
// goroutine leaks (extends TestClientDisconnect with leak checking and
// the sequential paths).
func TestDisconnectLeaks(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 4 << 20, MaxInFlight: 2})
	noLeaks(t, func() {
		for _, name := range []string{"corpus.txt.gpz", "noindex.gpz", "corpus.txt.gz"} {
			for i := 0; i < 3; i++ {
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/"+name, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				io.ReadFull(resp.Body, make([]byte, 100))
				resp.Body.Close() // abandon mid-stream
			}
		}
		// All slots must be free for a clean full read.
		resp := get(t, ts.URL+"/corpus.txt.gpz", nil)
		if b := body(t, resp); !bytes.Equal(b, fx.src) {
			t.Fatal("post-disconnect body mismatch")
		}
	})
}

// Flaky source reads on the sequential path are retried with backoff
// inside the request: the client sees one clean 200.
func TestSequentialRetry(t *testing.T) {
	fx := newFixture(t)
	// The offset keeps the format-sniff read below the fault, so the
	// failures land inside the sequential decode where the retry lives.
	script := mustScript(t, "corpus.txt.gz:eio@4096#2")
	src := NewFaultSource(NewDirSource(fx.root), script)
	_, ts := startServer(t, Options{Root: fx.root, Source: src})
	resp := get(t, ts.URL+"/corpus.txt.gz", nil)
	if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
		t.Fatalf("flaky object: status %d, %d bytes", resp.StatusCode, len(b))
	}
	if m := metricsJSON(t, ts.URL); m["source_retries_total"] < 1 {
		t.Fatalf("source_retries_total = %v", m["source_retries_total"])
	}
}

// /readyz flips to 503 at drain start while /healthz stays 200 and
// in-flight objects keep serving.
func TestReadyz(t *testing.T) {
	fx := newFixture(t)
	s, ts := startServer(t, Options{Root: fx.root})
	resp := get(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body(t, resp)), "ready") {
		t.Fatal("readyz not ready at start")
	}
	s.BeginDrain()
	resp = get(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d, want 503", resp.StatusCode)
	}
	body(t, resp)
	resp = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: status %d", resp.StatusCode)
	}
	body(t, resp)
	// Routed-anyway requests still serve during the drain window.
	resp = get(t, ts.URL+"/corpus.txt.gpz", nil)
	if b := body(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(b, fx.src) {
		t.Fatal("object request failed during drain")
	}
	if s.Ready() {
		t.Fatal("Ready() true after BeginDrain")
	}
}
