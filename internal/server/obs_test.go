package server

// Observability tests: request tracing end to end (PR 10), the JSON
// access log, /debug/requests, and the /metrics text exposition's
// parser-roundtrip + pinned family names.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gompresso/internal/obs"
)

// syncBuffer is a goroutine-safe access-log sink: the handler writes
// from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRequestTracing(t *testing.T) {
	fx := newFixture(t)
	var accessLog syncBuffer
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 8 << 20, AccessLog: &accessLog})

	// A ranged request on the indexed container: served via WriteRangeTo,
	// so the trace must show resolve, queue_wait, cache_lookup,
	// block_decode, and body_write activity.
	resp := get(t, ts.URL+"/corpus.txt.gpz", map[string]string{"Range": "bytes=100000-200000"})
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}
	if got := body(t, resp); !bytes.Equal(got, fx.src[100000:200001]) {
		t.Fatalf("range body mismatch (%d bytes)", len(got))
	}

	// The dump must contain the request, attributed to its stages.
	resp = get(t, ts.URL+"/debug/requests?n=5", nil)
	var dump struct {
		Requests []obs.DumpEntry `json:"requests"`
	}
	if err := json.Unmarshal(body(t, resp), &dump); err != nil {
		t.Fatal(err)
	}
	var entry *obs.DumpEntry
	for i := range dump.Requests {
		if dump.Requests[i].ID == id {
			entry = &dump.Requests[i]
		}
	}
	if entry == nil {
		t.Fatalf("request %s not in /debug/requests dump", id)
	}
	if entry.Status != http.StatusPartialContent || entry.Bytes != 100001 {
		t.Fatalf("dump entry: status %d bytes %d", entry.Status, entry.Bytes)
	}
	if entry.Range != "bytes=100000-200000" {
		t.Fatalf("dump range = %q", entry.Range)
	}
	for _, stage := range []string{"resolve_us", "queue_wait_us", "cache_lookup_us", "body_write_us"} {
		if _, ok := entry.Stages[stage]; !ok {
			t.Errorf("dump missing stage %s: %v", stage, entry.Stages)
		}
	}
	// All blocks were cold: every cache_lookup is a miss with a
	// block_decode child span.
	if entry.CacheMisses == 0 {
		t.Errorf("cold request shows no cache misses: %+v", entry)
	}
	var lookups, decodes int
	for _, sp := range entry.Spans {
		switch sp.Stage {
		case "cache_lookup":
			lookups++
			if sp.Parent != -1 {
				t.Errorf("cache_lookup span should be request-level, parent=%d", sp.Parent)
			}
		case "block_decode":
			decodes++
			if sp.Parent < 0 || entry.Spans[sp.Parent].Stage != "cache_lookup" {
				t.Errorf("block_decode span not nested under cache_lookup")
			}
		}
	}
	if lookups == 0 || decodes == 0 {
		t.Fatalf("spans missing: %d cache_lookup, %d block_decode", lookups, decodes)
	}

	// A repeat of the same range must be all hits.
	resp = get(t, ts.URL+"/corpus.txt.gpz", map[string]string{"Range": "bytes=100000-200000"})
	id2 := resp.Header.Get("X-Request-Id")
	body(t, resp)
	resp = get(t, ts.URL+"/debug/requests?n=10", nil)
	if err := json.Unmarshal(body(t, resp), &dump); err != nil {
		t.Fatal(err)
	}
	for i := range dump.Requests {
		if dump.Requests[i].ID == id2 {
			if dump.Requests[i].CacheMisses != 0 || dump.Requests[i].CacheHits == 0 {
				t.Errorf("warm request: hits %d misses %d",
					dump.Requests[i].CacheHits, dump.Requests[i].CacheMisses)
			}
		}
	}

	// Access log: every line valid JSON with the required keys; the two
	// object requests present by id.
	found := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(accessLog.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line not JSON: %v\n%s", err, sc.Text())
		}
		for _, k := range []string{"id", "method", "path", "status", "bytes", "dur_ms", "cache_hits", "cache_misses", "stages"} {
			if _, ok := rec[k]; !ok {
				t.Errorf("access log line missing %q: %s", k, sc.Text())
			}
		}
		found[rec["id"].(string)] = true
	}
	if !found[id] || !found[id2] {
		t.Errorf("access log missing request ids %s/%s: %v", id, id2, found)
	}
}

func TestAccessLogWarnsOn5xx(t *testing.T) {
	fx := newFixture(t)
	var accessLog syncBuffer
	_, ts := startServer(t, Options{Root: fx.root, AccessLog: &accessLog})

	// Corrupt the indexed container mid-payload: the decode fails, the
	// object quarantines, and both the failing request and the
	// quarantine fast-path 502 must produce WARN access lines.
	corruptFixtureObject(t, fx, "corpus.txt.gpz")
	// The first request fails mid-body (the status line may already be
	// gone), so the connection aborts — read leniently.
	first := get(t, ts.URL+"/corpus.txt.gpz", nil)
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	resp := get(t, ts.URL+"/corpus.txt.gpz", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("expected quarantine 502, got %d", resp.StatusCode)
	}
	body(t, resp)

	var warns, quarantined, corrupt int
	sc := bufio.NewScanner(strings.NewReader(accessLog.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line not JSON: %v", err)
		}
		if st, _ := rec["status"].(float64); st >= 500 && rec["level"] != "WARN" {
			t.Errorf("5xx logged at %v, want WARN: %s", rec["level"], sc.Text())
		}
		if rec["level"] == "WARN" {
			warns++
			if _, ok := rec["id"]; !ok {
				t.Errorf("warn line missing request id: %s", sc.Text())
			}
		}
		if rec["verdict"] == "quarantined" {
			quarantined++
		}
		if rec["err"] == "corrupt" {
			corrupt++
		}
	}
	if warns < 2 {
		t.Errorf("expected >=2 WARN lines (corrupt decode + quarantine hit), got %d", warns)
	}
	if quarantined < 2 {
		t.Errorf("expected the quarantining request and the fast-path 502 both marked quarantined, got %d", quarantined)
	}
	if corrupt == 0 {
		t.Error("no access line carries the corrupt error class")
	}
}

func TestNoTraceDisablesObservability(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, NoTrace: true})
	resp := get(t, ts.URL+"/corpus.txt.gz", map[string]string{"Range": "bytes=0-99"})
	if resp.Header.Get("X-Request-Id") != "" {
		t.Error("NoTrace server must not assign request ids")
	}
	body(t, resp)
	resp = get(t, ts.URL+"/debug/requests", nil)
	var dump struct {
		Requests []obs.DumpEntry `json:"requests"`
	}
	if err := json.Unmarshal(body(t, resp), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Requests) != 0 {
		t.Errorf("NoTrace server dumped %d requests", len(dump.Requests))
	}
}

// metricFamilies is the pinned /metrics name list: removing or renaming
// any of these is a breaking change for scrapers and dashboards, so the
// test fails until the list is updated deliberately.
var metricFamilies = []string{
	"requests_total", "range_requests_total", "errors_total", "bytes_served_total",
	"inflight_requests", "waiting_requests", "inflight_sequential_decodes",
	"shed_total", "panics_total", "quarantined_total", "quarantine_hits_total",
	"sequential_decodes_total", "source_retries_total",
	"sidecar_loads_total", "sidecar_builds_total", "sidecar_errors_total",
	"quarantined_objects", "objects_open",
	"cache_hits_total", "cache_misses_total", "cache_coalesced_total",
	"cache_evictions_total", "cache_bytes", "cache_hit_rate", "inflight_block_decodes",
	"build_info",
	"go_goroutines", "go_heap_alloc_bytes", "go_heap_sys_bytes",
	"go_gc_cycles_total", "go_gc_pause_ns_total", "go_gc_last_pause_ns",
	"process_start_time_seconds", "process_uptime_seconds",
}

// histogramFamilies get _count/_sum/_p50/_p95/_p99/_p999 suffixes.
var histogramFamilies = []string{
	"request_latency_ns",
	"stage_queue_wait_ns", "stage_resolve_ns", "stage_source_read_ns",
	"stage_cache_lookup_ns", "stage_block_decode_ns", "stage_seq_decode_ns",
	"stage_body_write_ns",
}

func TestMetricsTextExpositionRoundtrip(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 4 << 20})
	body(t, get(t, ts.URL+"/corpus.txt.gpz", map[string]string{"Range": "bytes=0-999"}))

	text := string(body(t, get(t, ts.URL+"/metrics", nil)))
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		// Sample line: name[{labels}] value — parse per the Prometheus
		// text format and verify each piece.
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line has no value: %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i:]
			name = name[:i]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			for _, kv := range strings.Split(labels[1:len(labels)-1], ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || !isMetricName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("bad label %q in %q", kv, line)
				}
			}
		}
		if !isMetricName(name) {
			t.Fatalf("invalid metric name %q", name)
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if seen[name] {
			t.Fatalf("duplicate sample for %s", name)
		}
		seen[name] = true
	}

	want := append([]string{}, metricFamilies...)
	for _, h := range histogramFamilies {
		for _, suf := range []string{"_count", "_sum", "_p50", "_p95", "_p99", "_p999"} {
			want = append(want, h+suf)
		}
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("pinned metric %s missing from /metrics", name)
		}
		delete(seen, name)
	}
	for name := range seen {
		t.Errorf("unpinned metric %s on /metrics — add it to the pinned list", name)
	}

	// The JSON rendering must agree on names (bare, no labels).
	var m map[string]float64
	if err := json.Unmarshal(body(t, get(t, ts.URL+"/metrics?format=json", nil)), &m); err != nil {
		t.Fatal(err)
	}
	for _, name := range want {
		if _, ok := m[name]; !ok {
			t.Errorf("pinned metric %s missing from JSON rendering", name)
		}
	}
}

// isMetricName checks the Prometheus metric/label name charset.
func isMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// corruptFixtureObject flips bytes in the middle of an object's payload
// so decode fails while the header still parses.
func corruptFixtureObject(t *testing.T, fx *fixture, name string) {
	t.Helper()
	p := filepath.Join(fx.root, name)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+64 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
