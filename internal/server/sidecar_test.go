package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gompresso/internal/deflate"
	"gompresso/internal/gzidx"
)

// rangeBody fetches one byte range and returns the body after checking
// the status code.
func rangeBody(t *testing.T, url string, off, length int64, wantStatus int) []byte {
	t.Helper()
	resp := get(t, url, map[string]string{
		"Range": fmt.Sprintf("bytes=%d-%d", off, off+length-1),
	})
	if resp.StatusCode != wantStatus {
		t.Fatalf("range [%d,%d): status %d, want %d", off, off+length, resp.StatusCode, wantStatus)
	}
	return body(t, resp)
}

// TestForeignPromotion: the first request for a .gz object pays exactly
// one counting decode, captures the seek index along the way, and
// promotes the object — later ranged requests decode only covering
// chunks, with sequential_decodes_total flat.
func TestForeignPromotion(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 8 << 20, IndexSpacing: 32 << 10})

	cold := rangeBody(t, ts.URL+"/corpus.txt.gz", 1000, 5000, http.StatusPartialContent)
	if !bytes.Equal(cold, fx.src[1000:6000]) {
		t.Fatal("cold ranged body differs")
	}
	m := metricsJSON(t, ts.URL)
	if m["sequential_decodes_total"] != 1 {
		t.Fatalf("cold request: %v sequential decodes, want 1", m["sequential_decodes_total"])
	}
	if m["sidecar_builds_total"] != 1 {
		t.Fatalf("cold request: %v sidecar builds, want 1", m["sidecar_builds_total"])
	}

	// Warm: random-access path only — the sequential counter must not move.
	for _, off := range []int64{0, 100 << 10, 250 << 10} {
		warm := rangeBody(t, ts.URL+"/corpus.txt.gz", off, 4096, http.StatusPartialContent)
		if !bytes.Equal(warm, fx.src[off:off+4096]) {
			t.Fatalf("warm range at %d differs", off)
		}
	}
	after := metricsJSON(t, ts.URL)
	if after["sequential_decodes_total"] != 1 {
		t.Fatalf("warm ranges re-ran the sequential decode: %v", after["sequential_decodes_total"])
	}
}

// TestForeignConcurrentCold: many concurrent first requests race the
// counting decode; the singleflight token must keep it to one pass, every
// body must be correct, and nothing may leak.
func TestForeignConcurrentCold(t *testing.T) {
	fx := newFixture(t)
	_, ts := startServer(t, Options{Root: fx.root, CacheBytes: 8 << 20, IndexSpacing: 32 << 10})

	noLeaks(t, func() {
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for i := 0; i < 16; i++ {
			off := int64(i * 16 << 10)
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := get(t, ts.URL+"/corpus.txt.gz", map[string]string{
					"Range": fmt.Sprintf("bytes=%d-%d", off, off+1023),
				})
				b := body(t, resp)
				if resp.StatusCode != http.StatusPartialContent {
					errs <- fmt.Errorf("status %d at %d", resp.StatusCode, off)
					return
				}
				if !bytes.Equal(b, fx.src[off:off+1024]) {
					errs <- fmt.Errorf("body differs at %d", off)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
	if m := metricsJSON(t, ts.URL); m["sequential_decodes_total"] != 1 {
		t.Fatalf("%v sequential decodes across 16 concurrent cold requests, want 1",
			m["sequential_decodes_total"])
	}
}

// TestSidecarPersistence: with an index directory configured the first
// decode persists a sidecar, and a fresh server over the same root loads
// it — serving ranges without ever running a sequential decode.
func TestSidecarPersistence(t *testing.T) {
	fx := newFixture(t)
	idxDir := t.TempDir()
	_, ts := startServer(t, Options{Root: fx.root, IndexDir: idxDir, IndexSpacing: 32 << 10})

	rangeBody(t, ts.URL+"/corpus.txt.gz", 0, 1024, http.StatusPartialContent)
	sc := filepath.Join(idxDir, "corpus.txt.gz"+gzidx.Ext)
	if _, err := os.Stat(sc); err != nil {
		t.Fatalf("sidecar not persisted: %v", err)
	}

	// Fresh server, same index dir: promotion happens at resolve, before
	// any decode.
	_, ts2 := startServer(t, Options{Root: fx.root, IndexDir: idxDir})
	got := rangeBody(t, ts2.URL+"/corpus.txt.gz", 200<<10, 8192, http.StatusPartialContent)
	if !bytes.Equal(got, fx.src[200<<10:200<<10+8192]) {
		t.Fatal("range served from persisted sidecar differs")
	}
	m := metricsJSON(t, ts2.URL)
	if m["sequential_decodes_total"] != 0 {
		t.Fatalf("warm-sidecar server ran %v sequential decodes, want 0", m["sequential_decodes_total"])
	}
	if m["sidecar_loads_total"] != 1 {
		t.Fatalf("%v sidecar loads, want 1", m["sidecar_loads_total"])
	}
}

// TestSidecarAlongsideSource: a sidecar shipped next to the object (built
// offline, IndexDir unset) is found through the Source seam.
func TestSidecarAlongsideSource(t *testing.T) {
	fx := newFixture(t)
	name := filepath.Join(fx.root, "corpus.txt.gz")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := gzidx.Build(data, deflate.FormatGzip, 32<<10, deflate.Options{Workers: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := gzidx.Encode(idx, st.ModTime())
	if err != nil {
		t.Fatal(err)
	}
	if err := gzidx.WriteFileAtomic(name+gzidx.Ext, enc); err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, Options{Root: fx.root})
	got := rangeBody(t, ts.URL+"/corpus.txt.gz", 123, 4567, http.StatusPartialContent)
	if !bytes.Equal(got, fx.src[123:123+4567]) {
		t.Fatal("range served from source sidecar differs")
	}
	m := metricsJSON(t, ts.URL)
	if m["sequential_decodes_total"] != 0 || m["sidecar_loads_total"] != 1 {
		t.Fatalf("seq=%v loads=%v, want 0/1", m["sequential_decodes_total"], m["sidecar_loads_total"])
	}
}

// TestSidecarCorruptRebuilt: a damaged sidecar must be ignored (fall back
// to the counting decode) and then replaced with a valid one.
func TestSidecarCorruptRebuilt(t *testing.T) {
	fx := newFixture(t)
	idxDir := t.TempDir()
	sc := filepath.Join(idxDir, "corpus.txt.gz"+gzidx.Ext)
	if err := os.WriteFile(sc, []byte("GZX1 this is not a sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, Options{Root: fx.root, IndexDir: idxDir, IndexSpacing: 32 << 10})
	got := rangeBody(t, ts.URL+"/corpus.txt.gz", 50<<10, 2048, http.StatusPartialContent)
	if !bytes.Equal(got, fx.src[50<<10:50<<10+2048]) {
		t.Fatal("body differs with corrupt sidecar present")
	}
	m := metricsJSON(t, ts.URL)
	if m["sequential_decodes_total"] != 1 {
		t.Fatalf("%v sequential decodes, want 1 (corrupt sidecar must not be trusted)",
			m["sequential_decodes_total"])
	}
	if m["sidecar_errors_total"] < 1 {
		t.Fatalf("corrupt sidecar not counted: %v", m["sidecar_errors_total"])
	}
	// The bad file was atomically replaced by the rebuild.
	st, err := os.Stat(filepath.Join(fx.root, "corpus.txt.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gzidx.LoadFile(sc, st.Size(), st.ModTime()); err != nil {
		t.Fatalf("rebuilt sidecar still invalid: %v", err)
	}
}

// TestSidecarStaleReplaced: a sidecar describing an older generation of
// the source (different mtime) must be ignored and replaced.
func TestSidecarStaleReplaced(t *testing.T) {
	fx := newFixture(t)
	idxDir := t.TempDir()
	name := filepath.Join(fx.root, "corpus.txt.gz")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := gzidx.Build(data, deflate.FormatGzip, 32<<10, deflate.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Encode against a past mtime, then age the source past it: the
	// sidecar is structurally valid but stale.
	old := time.Now().Add(-time.Hour)
	enc, err := gzidx.Encode(idx, old)
	if err != nil {
		t.Fatal(err)
	}
	sc := filepath.Join(idxDir, "corpus.txt.gz"+gzidx.Ext)
	if err := gzidx.WriteFileAtomic(sc, enc); err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, Options{Root: fx.root, IndexDir: idxDir, IndexSpacing: 32 << 10})
	got := rangeBody(t, ts.URL+"/corpus.txt.gz", 0, 4096, http.StatusPartialContent)
	if !bytes.Equal(got, fx.src[:4096]) {
		t.Fatal("body differs with stale sidecar present")
	}
	m := metricsJSON(t, ts.URL)
	if m["sequential_decodes_total"] != 1 {
		t.Fatalf("stale sidecar was trusted: %v sequential decodes", m["sequential_decodes_total"])
	}
	st, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gzidx.LoadFile(sc, st.Size(), st.ModTime()); err != nil {
		t.Fatalf("stale sidecar not replaced: %v", err)
	}
}
