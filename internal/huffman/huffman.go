// Package huffman implements canonical, length-limited Huffman coding as used
// by Gompresso/Bit (paper §III-B1, §V-C).
//
// Code lengths are produced by the package-merge algorithm, which yields an
// optimal prefix code under a maximum codeword length constraint. Gompresso
// limits the codeword length (CWL) to 10 bits so that a full 2^CWL-entry
// decode table fits in the GPU's on-chip memory; the same limit is the
// default here. Codes are assigned canonically (by length, then symbol), so a
// tree is fully described by its code-length array — the representation
// stored in block headers.
//
// The bitstream convention matches DEFLATE: codes are emitted starting with
// their most-significant bit, into an LSB-first bit writer, which is achieved
// by bit-reversing each code once at table-build time.
package huffman

import (
	"errors"
	"fmt"
	"sort"
)

// MaxCodeLen is the largest supported codeword length. Serialization packs
// one length per nibble, so 15 is the ceiling; Gompresso uses 10.
const MaxCodeLen = 15

// DefaultCWL is the paper's limited codeword length (§V-C: CWL = 10 bits,
// chosen so the 2^CWL-entry LUTs fit in on-chip memory).
const DefaultCWL = 10

var (
	// ErrEmptyAlphabet is returned when no symbol has a nonzero frequency.
	ErrEmptyAlphabet = errors.New("huffman: no symbols with nonzero frequency")
	// ErrBadLengths is returned when a code-length array violates the Kraft
	// inequality or exceeds the length limit.
	ErrBadLengths = errors.New("huffman: invalid code length array")
)

// BuildLengths computes optimal length-limited code lengths for the given
// symbol frequencies using package-merge. Symbols with zero frequency get
// length 0 (no code). maxLen must be in [1, MaxCodeLen] and large enough for
// the number of used symbols (2^maxLen ≥ used).
func BuildLengths(freqs []int64, maxLen int) ([]uint8, error) {
	if maxLen < 1 || maxLen > MaxCodeLen {
		return nil, fmt.Errorf("huffman: maxLen %d out of range", maxLen)
	}
	type leaf struct {
		sym  int
		freq int64
	}
	var leaves []leaf
	for s, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", s)
		}
		if f > 0 {
			leaves = append(leaves, leaf{s, f})
		}
	}
	lengths := make([]uint8, len(freqs))
	switch len(leaves) {
	case 0:
		return nil, ErrEmptyAlphabet
	case 1:
		// A single symbol still needs one bit on the wire so the decoder can
		// count symbols.
		lengths[leaves[0].sym] = 1
		return lengths, nil
	}
	if len(leaves) > 1<<maxLen {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d-bit codes", len(leaves), maxLen)
	}
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].freq != leaves[j].freq {
			return leaves[i].freq < leaves[j].freq
		}
		return leaves[i].sym < leaves[j].sym
	})

	// Package-merge. Each item is a weight plus the multiset of leaves it
	// covers; a leaf's final code length is the number of times it appears in
	// the first 2n-2 items of the level-1 list.
	type item struct {
		weight int64
		leaves []int32 // indices into the sorted leaves slice
	}
	makeLeafItems := func() []item {
		out := make([]item, len(leaves))
		for i, lf := range leaves {
			out[i] = item{weight: lf.freq, leaves: []int32{int32(i)}}
		}
		return out
	}
	var prev []item
	for level := 0; level < maxLen; level++ {
		// Package pairs from the previous (deeper) level.
		var packages []item
		for i := 0; i+1 < len(prev); i += 2 {
			merged := item{
				weight: prev[i].weight + prev[i+1].weight,
				leaves: append(append([]int32{}, prev[i].leaves...), prev[i+1].leaves...),
			}
			packages = append(packages, merged)
		}
		// Merge leaves and packages, sorted by weight (stable: leaves first on
		// ties, which keeps shorter codes on earlier symbols).
		cur := makeLeafItems()
		cur = append(cur, packages...)
		sort.SliceStable(cur, func(i, j int) bool { return cur[i].weight < cur[j].weight })
		prev = cur
	}
	take := 2*len(leaves) - 2
	if take > len(prev) {
		return nil, fmt.Errorf("huffman: internal: package-merge produced %d items, need %d", len(prev), take)
	}
	counts := make([]int, len(leaves))
	for _, it := range prev[:take] {
		for _, li := range it.leaves {
			counts[li]++
		}
	}
	for i, lf := range leaves {
		if counts[i] < 1 || counts[i] > maxLen {
			return nil, fmt.Errorf("huffman: internal: symbol %d got length %d", lf.sym, counts[i])
		}
		lengths[lf.sym] = uint8(counts[i])
	}
	return lengths, nil
}

// ValidateLengths checks that a code-length array describes a complete or
// under-full prefix code with all lengths ≤ maxLen. A complete code has
// Kraft sum exactly 1; a single-symbol code (one length-1 entry) is also
// accepted, matching BuildLengths.
func ValidateLengths(lengths []uint8, maxLen int) error {
	var kraft uint64 // in units of 2^-maxLen
	used := 0
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxLen {
			return fmt.Errorf("%w: symbol %d has length %d > max %d", ErrBadLengths, s, l, maxLen)
		}
		used++
		kraft += 1 << (maxLen - int(l))
	}
	if used == 0 {
		return ErrEmptyAlphabet
	}
	full := uint64(1) << maxLen
	if used == 1 {
		return nil // degenerate single-symbol code
	}
	if kraft != full {
		return fmt.Errorf("%w: Kraft sum %d/%d", ErrBadLengths, kraft, full)
	}
	return nil
}

// Code is a canonical Huffman codeword prepared for an LSB-first bitstream:
// Bits holds the bit-reversed codeword so it can be written directly with
// bitio.Writer.WriteBits.
type Code struct {
	Bits uint16
	Len  uint8
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint16, n uint8) uint16 {
	var r uint16
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// CanonicalCodes assigns canonical codes (increasing by length, then symbol)
// for a code-length array and returns them pre-reversed for LSB-first output.
func CanonicalCodes(lengths []uint8, maxLen int) ([]Code, error) {
	if err := ValidateLengths(lengths, maxLen); err != nil {
		return nil, err
	}
	var lenCount [MaxCodeLen + 1]int
	for _, l := range lengths {
		lenCount[l]++
	}
	// RFC 1951 canonical construction: codes of each length start where the
	// previous length's codes ended, shifted left one bit.
	lenCount[0] = 0
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= maxLen; l++ {
		code = (code + uint32(lenCount[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]Code, len(lengths))
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		c := nextCode[l]
		nextCode[l]++
		if c >= 1<<l {
			return nil, fmt.Errorf("%w: canonical overflow at symbol %d", ErrBadLengths, s)
		}
		codes[s] = Code{Bits: reverseBits(uint16(c), l), Len: l}
	}
	return codes, nil
}

// Encoder holds the per-symbol codes of one canonical tree.
type Encoder struct {
	codes []Code
}

// NewEncoder builds an Encoder from frequencies, limiting codes to maxLen.
func NewEncoder(freqs []int64, maxLen int) (*Encoder, []uint8, error) {
	lengths, err := BuildLengths(freqs, maxLen)
	if err != nil {
		return nil, nil, err
	}
	enc, err := NewEncoderFromLengths(lengths, maxLen)
	return enc, lengths, err
}

// NewEncoderFromLengths builds an Encoder from an existing code-length array.
func NewEncoderFromLengths(lengths []uint8, maxLen int) (*Encoder, error) {
	codes, err := CanonicalCodes(lengths, maxLen)
	if err != nil {
		return nil, err
	}
	return &Encoder{codes: codes}, nil
}

// Code returns the prepared code for symbol s. A zero-length code means the
// symbol is not part of the tree.
func (e *Encoder) Code(s int) Code { return e.codes[s] }

// BitWriter is the subset of bitio.Writer the encoder needs; declared here to
// avoid an import cycle in tests that stub it.
type BitWriter interface {
	WriteBits(v uint64, n uint)
}

// Encode writes symbol s to w. It panics if s has no code, which indicates a
// histogram/encoder mismatch — a programming error, not an input error.
func (e *Encoder) Encode(w BitWriter, s int) {
	c := e.codes[s]
	if c.Len == 0 {
		panic(fmt.Sprintf("huffman: encoding symbol %d with no code", s))
	}
	w.WriteBits(uint64(c.Bits), uint(c.Len))
}
