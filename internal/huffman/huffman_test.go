package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gompresso/internal/bitio"
)

func kraftSum(lengths []uint8) float64 {
	s := 0.0
	for _, l := range lengths {
		if l > 0 {
			s += math.Pow(2, -float64(l))
		}
	}
	return s
}

func TestBuildLengthsBasic(t *testing.T) {
	freqs := []int64{45, 13, 12, 16, 9, 5} // classic CLRS example
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal expected total cost: 45*1+13*3+12*3+16*3+9*4+5*4 = 224.
	var cost int64
	for i, f := range freqs {
		cost += f * int64(lengths[i])
	}
	if cost != 224 {
		t.Fatalf("total cost %d, want optimal 224 (lengths %v)", cost, lengths)
	}
	if s := kraftSum(lengths); math.Abs(s-1) > 1e-12 {
		t.Fatalf("Kraft sum %v", s)
	}
}

func TestBuildLengthsLimited(t *testing.T) {
	// Fibonacci-ish frequencies force long codes without a limit.
	freqs := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377}
	for _, maxLen := range []int{4, 5, 6, 8, 10} {
		lengths, err := BuildLengths(freqs, maxLen)
		if err != nil {
			t.Fatalf("maxLen %d: %v", maxLen, err)
		}
		for s, l := range lengths {
			if l == 0 || int(l) > maxLen {
				t.Fatalf("maxLen %d: symbol %d has length %d", maxLen, s, l)
			}
		}
		if s := kraftSum(lengths); math.Abs(s-1) > 1e-12 {
			t.Fatalf("maxLen %d: Kraft sum %v", maxLen, s)
		}
	}
}

func TestBuildLengthsTooTight(t *testing.T) {
	freqs := make([]int64, 40)
	for i := range freqs {
		freqs[i] = 1
	}
	if _, err := BuildLengths(freqs, 5); err == nil {
		t.Fatal("40 symbols in 5-bit codes should fail")
	}
	if _, err := BuildLengths(freqs, 6); err != nil {
		t.Fatalf("40 symbols in 6-bit codes should fit: %v", err)
	}
}

func TestSingleSymbol(t *testing.T) {
	freqs := make([]int64, 10)
	freqs[7] = 100
	lengths, err := BuildLengths(freqs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[7] != 1 {
		t.Fatalf("single symbol should get length 1, got %d", lengths[7])
	}
	enc, err := NewEncoderFromLengths(lengths, 10)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, 10)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(8)
	for i := 0; i < 5; i++ {
		enc.Encode(w, 7)
	}
	r := bitio.NewReaderBits(w.Bytes(), w.BitLen())
	for i := 0; i < 5; i++ {
		s, err := dec.Decode(r)
		if err != nil || s != 7 {
			t.Fatalf("decode %d: sym %d err %v", i, s, err)
		}
	}
}

func TestEmptyAlphabet(t *testing.T) {
	if _, err := BuildLengths(make([]int64, 5), 10); err != ErrEmptyAlphabet {
		t.Fatalf("want ErrEmptyAlphabet, got %v", err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	freqs := make([]int64, 256)
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000))
	}
	freqs[0] = 100000 // a very frequent symbol
	enc, lengths, err := NewEncoder(freqs, DefaultCWL)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, DefaultCWL)
	if err != nil {
		t.Fatal(err)
	}
	var msg []int
	for i := 0; i < 4096; i++ {
		for {
			s := rng.Intn(256)
			if freqs[s] > 0 {
				msg = append(msg, s)
				break
			}
		}
	}
	w := bitio.NewWriter(4096)
	for _, s := range msg {
		enc.Encode(w, s)
	}
	r := bitio.NewReaderBits(w.Bytes(), w.BitLen())
	for i, want := range msg {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestSerializeLengths(t *testing.T) {
	lengths := []uint8{3, 3, 2, 4, 4, 0, 0, 2, 15}
	data := AppendLengths(nil, lengths)
	if len(data) != LengthsSize(len(lengths)) {
		t.Fatalf("size %d want %d", len(data), LengthsSize(len(lengths)))
	}
	data = append(data, 0xAA, 0xBB) // trailing bytes must be preserved
	got, rest, err := ParseLengths(data, len(lengths))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %v", rest)
	}
	for i := range lengths {
		if got[i] != lengths[i] {
			t.Fatalf("length %d: got %d want %d", i, got[i], lengths[i])
		}
	}
}

func TestParseLengthsTruncated(t *testing.T) {
	if _, _, err := ParseLengths([]byte{0x33}, 9); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestValidateLengthsRejectsOverfull(t *testing.T) {
	// Three length-1 codes: Kraft sum 1.5 — must be rejected.
	if err := ValidateLengths([]uint8{1, 1, 1}, 10); err == nil {
		t.Fatal("overfull code accepted")
	}
	// Underfull non-degenerate code must be rejected too (decoder would have
	// dead table entries that hide corruption).
	if err := ValidateLengths([]uint8{1, 2, 0}, 10); err == nil {
		t.Fatal("underfull code accepted")
	}
}

func TestDecoderRejectsBadLengths(t *testing.T) {
	if _, err := NewDecoder([]uint8{1, 1, 1}, 10); err == nil {
		t.Fatal("decoder accepted overfull code")
	}
}

// Property: for random histograms the package-merge code (a) respects the
// length limit, (b) satisfies Kraft equality, and (c) roundtrips a message.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		maxLen := 9 + rng.Intn(6) // 9..14
		for n > 1<<maxLen {
			n /= 2
		}
		freqs := make([]int64, n)
		used := 0
		for i := range freqs {
			if rng.Intn(3) > 0 {
				freqs[i] = int64(1 + rng.Intn(10000))
				used++
			}
		}
		if used < 2 {
			freqs[0], freqs[n-1] = 5, 9
		}
		enc, lengths, err := NewEncoder(freqs, maxLen)
		if err != nil {
			return false
		}
		for _, l := range lengths {
			if int(l) > maxLen {
				return false
			}
		}
		if ValidateLengths(lengths, maxLen) != nil {
			return false
		}
		dec, err := NewDecoder(lengths, maxLen)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(512)
		var msg []int
		for i := 0; i < 200; i++ {
			s := rng.Intn(n)
			if freqs[s] == 0 {
				continue
			}
			msg = append(msg, s)
			enc.Encode(w, s)
		}
		r := bitio.NewReaderBits(w.Bytes(), w.BitLen())
		for _, want := range msg {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: package-merge with a loose limit matches unlimited Huffman cost.
func TestQuickOptimalCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(1 + rng.Intn(100))
		}
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			return false
		}
		var got int64
		for i, f := range freqs {
			got += f * int64(lengths[i])
		}
		return got == huffmanCostRef(freqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// huffmanCostRef computes the optimal (unlimited) Huffman total cost with a
// simple O(n^2) pairing, as an independent oracle.
func huffmanCostRef(freqs []int64) int64 {
	var ws []int64
	for _, f := range freqs {
		if f > 0 {
			ws = append(ws, f)
		}
	}
	if len(ws) < 2 {
		return int64(len(ws))
	}
	var cost int64
	for len(ws) > 1 {
		// find two smallest
		a, b := 0, 1
		if ws[b] < ws[a] {
			a, b = b, a
		}
		for i := 2; i < len(ws); i++ {
			if ws[i] < ws[a] {
				b = a
				a = i
			} else if ws[i] < ws[b] {
				b = i
			}
		}
		merged := ws[a] + ws[b]
		cost += merged
		// remove b then a (indices, larger first)
		if a < b {
			a, b = b, a
		}
		ws = append(ws[:a], ws[a+1:]...)
		ws = append(ws[:b], ws[b+1:]...)
		ws = append(ws, merged)
	}
	return cost
}

func BenchmarkBuildLengths256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	freqs := make([]int64, 256)
	for i := range freqs {
		freqs[i] = int64(rng.Intn(100000))
	}
	for i := 0; i < b.N; i++ {
		if _, err := BuildLengths(freqs, DefaultCWL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	freqs := make([]int64, 256)
	for i := range freqs {
		freqs[i] = int64(1 + rng.Intn(1000))
	}
	enc, lengths, err := NewEncoder(freqs, DefaultCWL)
	if err != nil {
		b.Fatal(err)
	}
	dec, _ := NewDecoder(lengths, DefaultCWL)
	w := bitio.NewWriter(1 << 16)
	const nsym = 1 << 14
	for i := 0; i < nsym; i++ {
		enc.Encode(w, rng.Intn(256))
	}
	data := w.Bytes()
	b.SetBytes(nsym)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReaderBits(data, w.BitLen())
		for j := 0; j < nsym; j++ {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
