package huffman

import (
	"fmt"

	"gompresso/internal/bitio"
)

// Decoder is a single-lookup table decoder: the table has 2^tableBits
// entries, each mapping a window of upcoming stream bits directly to
// (symbol, codeLen). This mirrors the paper's on-chip decode tables
// (§III-B1): one lookup per symbol, no tree walking and thus no divergent
// branches on the GPU.
type Decoder struct {
	tableBits uint8
	syms      []uint16 // indexed by the next tableBits bits of the stream
	lens      []uint8
}

// TableEntries reports the LUT size, 2^tableBits. The paper's shared-memory
// budget arithmetic (two tables of 2^CWL entries per data block) uses this.
func (d *Decoder) TableEntries() int { return 1 << d.tableBits }

// TableBytes reports the LUT size in bytes assuming 4-byte entries, matching
// the shared-memory footprint used for occupancy modeling.
func (d *Decoder) TableBytes() int { return d.TableEntries() * 4 }

// NewDecoder builds the LUT from a code-length array. tableBits must be ≥ the
// longest code length (Gompresso guarantees this by limiting CWL).
func NewDecoder(lengths []uint8, tableBits int) (*Decoder, error) {
	if err := ValidateLengths(lengths, tableBits); err != nil {
		return nil, err
	}
	codes, err := CanonicalCodes(lengths, tableBits)
	if err != nil {
		return nil, err
	}
	d := &Decoder{
		tableBits: uint8(tableBits),
		syms:      make([]uint16, 1<<tableBits),
		lens:      make([]uint8, 1<<tableBits),
	}
	for s, c := range codes {
		if c.Len == 0 {
			continue
		}
		// c.Bits is already bit-reversed: it is the value of the code as it
		// appears in the low bits of an LSB-first peek. Every table index
		// whose low c.Len bits equal c.Bits decodes to s.
		step := 1 << c.Len
		for idx := int(c.Bits); idx < 1<<tableBits; idx += step {
			d.syms[idx] = uint16(s)
			d.lens[idx] = c.Len
		}
	}
	return d, nil
}

// Decode consumes one symbol from r.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	peek := r.Peek(uint(d.tableBits))
	l := d.lens[peek]
	if l == 0 {
		return 0, fmt.Errorf("huffman: invalid code at bit %d", r.BitsRead())
	}
	if err := r.Skip(uint(l)); err != nil {
		return 0, err
	}
	return int(d.syms[peek]), nil
}

// Lookup maps a peeked bit window to (symbol, codeLen) without touching a
// reader. codeLen 0 means the window does not start a valid code. Kernels use
// this form so they can charge simulated costs around it.
func (d *Decoder) Lookup(window uint64) (sym int, codeLen uint8) {
	idx := window & uint64(1<<d.tableBits-1)
	return int(d.syms[idx]), d.lens[idx]
}
