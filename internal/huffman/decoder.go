package huffman

import (
	"fmt"

	"gompresso/internal/bitio"
)

// Decoder is a single-lookup table decoder: the table has 2^tableBits
// entries, each mapping a window of upcoming stream bits directly to
// (symbol, codeLen). This mirrors the paper's on-chip decode tables
// (§III-B1): one lookup per symbol, no tree walking and thus no divergent
// branches on the GPU.
//
// Entries are packed as symbol<<8 | codeLen in a single uint32 slice, so the
// fast decode paths pay one load per symbol instead of two.
type Decoder struct {
	tableBits uint8
	table     []uint32 // indexed by the next tableBits bits of the stream
}

// EntryLen extracts the code length from a packed table entry; zero means the
// window does not start a valid code.
func EntryLen(e uint32) uint { return uint(e & 0xff) }

// EntrySym extracts the symbol from a packed table entry.
func EntrySym(e uint32) int { return int(e >> 8) }

// TableEntries reports the LUT size, 2^tableBits. The paper's shared-memory
// budget arithmetic (two tables of 2^CWL entries per data block) uses this.
func (d *Decoder) TableEntries() int { return 1 << d.tableBits }

// TableBytes reports the LUT size in bytes assuming 4-byte entries, matching
// the shared-memory footprint used for occupancy modeling.
func (d *Decoder) TableBytes() int { return d.TableEntries() * 4 }

// Table exposes the packed LUT together with its window mask for fused decode
// loops that index it directly (entries decode with EntrySym/EntryLen). The
// slice must not be modified.
func (d *Decoder) Table() (table []uint32, mask uint64) {
	return d.table, uint64(1)<<d.tableBits - 1
}

// NewDecoder builds the LUT from a code-length array. tableBits must be ≥ the
// longest code length (Gompresso guarantees this by limiting CWL).
func NewDecoder(lengths []uint8, tableBits int) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Init(lengths, tableBits); err != nil {
		return nil, err
	}
	return d, nil
}

// Init (re)builds the decoder in place, reusing the previously allocated
// table when it is large enough — the hook that lets decode paths keep
// per-block decoders in a sync.Pool with zero steady-state allocations.
func (d *Decoder) Init(lengths []uint8, tableBits int) error {
	table, err := FillTable(d.table, lengths, tableBits, 0, packDefault)
	if err != nil {
		return err
	}
	d.tableBits = uint8(tableBits)
	d.table = table
	return nil
}

func packDefault(sym int, codeLen uint8) uint32 {
	return uint32(sym)<<8 | uint32(codeLen)
}

// FillTable builds a 2^tableBits-entry LUT for a canonical code described by
// its code-length array, reusing table's storage when it is large enough
// (pass nil to allocate). Each used window is set to pack(symbol, codeLen);
// unused windows (possible only for the degenerate single-symbol code — a
// complete code covers every window) are set to invalid. pack must keep
// entries distinguishable from invalid; by convention the low bits carry
// codeLen, which is ≥ 1 for real codes. This is the shared kernel behind the
// generic Decoder and the fused fast-path tables, which pack extra per-symbol
// fields into the entry to save lookups in the hot loop.
func FillTable(table []uint32, lengths []uint8, tableBits int, invalid uint32, pack func(sym int, codeLen uint8) uint32) ([]uint32, error) {
	if err := ValidateLengths(lengths, tableBits); err != nil {
		return nil, err
	}
	n := 1 << tableBits
	if cap(table) < n {
		table = make([]uint32, n)
	} else {
		table = table[:n]
	}
	if invalid == 0 {
		clear(table)
	} else {
		for i := range table {
			table[i] = invalid
		}
	}
	// Canonical code assignment, inlined from CanonicalCodes so a rebuild
	// into pooled storage performs no allocations.
	var lenCount [MaxCodeLen + 1]int
	for _, l := range lengths {
		lenCount[l]++
	}
	lenCount[0] = 0
	var nextCode [MaxCodeLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= tableBits; l++ {
		code = (code + uint32(lenCount[l-1])) << 1
		nextCode[l] = code
	}
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		c := nextCode[l]
		nextCode[l]++
		if c >= 1<<l {
			return nil, fmt.Errorf("%w: canonical overflow at symbol %d", ErrBadLengths, s)
		}
		// The bit-reversed code is the value of the codeword as it appears in
		// the low bits of an LSB-first peek. Every table index whose low l
		// bits equal it decodes to s.
		rev := reverseBits(uint16(c), l)
		e := pack(s, l)
		step := 1 << l
		for idx := int(rev); idx < n; idx += step {
			table[idx] = e
		}
	}
	return table, nil
}

// Decode consumes one symbol from r.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	e := d.table[r.Peek(uint(d.tableBits))]
	l := EntryLen(e)
	if l == 0 {
		return 0, fmt.Errorf("huffman: invalid code at bit %d", r.BitsRead())
	}
	if err := r.Skip(l); err != nil {
		return 0, err
	}
	return EntrySym(e), nil
}

// Lookup maps a peeked bit window to (symbol, codeLen) without touching a
// reader. codeLen 0 means the window does not start a valid code. Kernels use
// this form so they can charge simulated costs around it.
func (d *Decoder) Lookup(window uint64) (sym int, codeLen uint8) {
	e := d.table[window&(uint64(1)<<d.tableBits-1)]
	return EntrySym(e), uint8(EntryLen(e))
}
