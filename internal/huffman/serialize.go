package huffman

import (
	"fmt"
)

// Canonical trees are stored as their code-length arrays, one nibble per
// symbol (lengths ≤ 15). The alphabet size is fixed by context (literal/length
// tree vs. offset tree), so no count prefix is needed. This is the
// "canonical representation" the paper stores per block (Fig. 3); at
// Gompresso block sizes the header overhead is negligible (§V-C).

// AppendLengths serializes a code-length array onto dst, two lengths per
// byte (low nibble first).
func AppendLengths(dst []byte, lengths []uint8) []byte {
	for i := 0; i < len(lengths); i += 2 {
		b := lengths[i] & 0x0f
		if i+1 < len(lengths) {
			b |= (lengths[i+1] & 0x0f) << 4
		}
		dst = append(dst, b)
	}
	return dst
}

// LengthsSize reports the serialized size in bytes of an n-symbol tree.
func LengthsSize(n int) int { return (n + 1) / 2 }

// ParseLengths reads an n-symbol code-length array from src, returning the
// lengths and the remaining bytes.
func ParseLengths(src []byte, n int) ([]uint8, []byte, error) {
	need := LengthsSize(n)
	if len(src) < need {
		return nil, nil, fmt.Errorf("huffman: tree truncated: need %d bytes, have %d", need, len(src))
	}
	lengths := make([]uint8, n)
	for i := 0; i < n; i++ {
		b := src[i/2]
		if i%2 == 0 {
			lengths[i] = b & 0x0f
		} else {
			lengths[i] = b >> 4
		}
	}
	return lengths, src[need:], nil
}
