package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

func corpus(n int) []byte {
	rng := rand.New(rand.NewSource(11))
	words := []string{"<page>", "<title>", "compression", "massively", "parallel",
		"the", "of", "and", "block", "warp", "</page>", "reference"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteByte(' ')
		if rng.Intn(30) == 0 {
			raw := make([]byte, rng.Intn(60))
			rng.Read(raw)
			b.Write(raw)
		}
	}
	return b.Bytes()[:n]
}

func TestRoundtripAllConfigurations(t *testing.T) {
	src := corpus(700_000)
	for _, variant := range []format.Variant{format.VariantByte, format.VariantBit} {
		for _, de := range []lz77.DEMode{lz77.DEOff, lz77.DEStrict, lz77.DELit} {
			comp, cs, err := Compress(src, Options{Variant: variant, DE: de, BlockSize: 128 << 10})
			if err != nil {
				t.Fatalf("%v/%v: %v", variant, de, err)
			}
			if cs.Ratio <= 1 {
				t.Fatalf("%v/%v: ratio %.2f — corpus should compress", variant, de, cs.Ratio)
			}
			// Host engine.
			out, _, err := Decompress(comp, DecompressOptions{Engine: EngineHost})
			if err != nil {
				t.Fatalf("%v/%v host: %v", variant, de, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("%v/%v host: mismatch", variant, de)
			}
			// Device engine, strategy per parse mode.
			strats := []kernels.Strategy{kernels.SC, kernels.MRR}
			if de != lz77.DEOff {
				strats = append(strats, kernels.DE)
			}
			for _, st := range strats {
				out, ds, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: st})
				if err != nil {
					t.Fatalf("%v/%v device/%v: %v", variant, de, st, err)
				}
				if !bytes.Equal(out, src) {
					t.Fatalf("%v/%v device/%v: mismatch", variant, de, st)
				}
				if ds.DeviceSeconds <= 0 {
					t.Fatalf("%v/%v device/%v: no simulated time", variant, de, st)
				}
			}
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 100} {
		src := corpus(n)
		for _, variant := range []format.Variant{format.VariantByte, format.VariantBit} {
			comp, _, err := Compress(src, Options{Variant: variant})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, variant, err)
			}
			for _, eng := range []Engine{EngineHost, EngineDevice} {
				out, _, err := Decompress(comp, DecompressOptions{Engine: eng, Strategy: kernels.MRR})
				if err != nil {
					t.Fatalf("n=%d %v eng=%d: %v", n, variant, eng, err)
				}
				if !bytes.Equal(out, src) {
					t.Fatalf("n=%d %v eng=%d: mismatch", n, variant, eng)
				}
			}
		}
	}
}

func TestPCIeModesIncreaseSimTime(t *testing.T) {
	src := corpus(2 << 20)
	comp, _, err := Compress(src, Options{Variant: format.VariantByte, DE: lz77.DEStrict})
	if err != nil {
		t.Fatal(err)
	}
	times := make(map[PCIeMode]float64)
	for _, m := range []PCIeMode{PCIeNone, PCIeIn, PCIeInOut} {
		_, ds, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: kernels.DE, PCIe: m})
		if err != nil {
			t.Fatal(err)
		}
		times[m] = ds.SimSeconds
	}
	// Output transfer overlaps compute, so In/Out may equal In when the
	// kernels dominate; it must never be cheaper.
	if !(times[PCIeNone] < times[PCIeIn] && times[PCIeIn] <= times[PCIeInOut]) {
		t.Fatalf("PCIe ordering violated: %v", times)
	}
}

func TestDEStreamDecompressesWithDEStrategy(t *testing.T) {
	src := corpus(512 << 10)
	comp, _, err := Compress(src, Options{DE: lz77.DEStrict, Variant: format.VariantBit})
	if err != nil {
		t.Fatal(err)
	}
	_, ds, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: kernels.DE})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rounds.MaxRounds > 1 {
		t.Fatalf("DE stream needed %d rounds", ds.Rounds.MaxRounds)
	}
}

func TestGreedyStreamNeedsMRR(t *testing.T) {
	src := []byte(strings.Repeat("abcdefghij", 60000))
	comp, cs, err := Compress(src, Options{DE: lz77.DEOff, Variant: format.VariantByte})
	if err != nil {
		t.Fatal(err)
	}
	if cs.GroupsDep == 0 {
		t.Skip("no dependent groups in corpus")
	}
	if _, _, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: kernels.DE}); err == nil {
		t.Fatal("DE strategy accepted dependent stream")
	}
	out, ds, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: kernels.MRR})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("MRR mismatch")
	}
	if ds.Rounds.MaxRounds < 2 {
		t.Fatalf("expected multi-round resolution, got max %d", ds.Rounds.MaxRounds)
	}
}

func TestCompressRejectsBadOptions(t *testing.T) {
	src := []byte("hello")
	bad := []Options{
		{BlockSize: 100},
		{Variant: 9},
		{Variant: format.VariantByte, Window: 1 << 20},
		{CWL: 1},
		{SeqsPerSub: -1},
	}
	for i, o := range bad {
		if _, _, err := Compress(src, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, _, err := Decompress([]byte("not a gompresso file"), DecompressOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
	src := corpus(100_000)
	comp, _, err := Compress(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip payload bits; decompression must error or produce different
	// output, never panic.
	for _, pos := range []int{len(comp) / 2, len(comp) - 1, 60} {
		bad := append([]byte{}, comp...)
		bad[pos] ^= 0x41
		out, _, err := Decompress(bad, DecompressOptions{Engine: EngineHost})
		if err == nil && bytes.Equal(out, src) {
			t.Fatalf("corruption at %d silently ignored", pos)
		}
	}
}

func TestHostAndDeviceAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + rng.Intn(200_000)
		src := corpus(n)
		variant := format.Variant(seed & 1)
		comp, _, err := Compress(src, Options{Variant: variant, BlockSize: 32 << 10, DE: lz77.DEStrict})
		if err != nil {
			return false
		}
		h, _, err := Decompress(comp, DecompressOptions{Engine: EngineHost})
		if err != nil {
			return false
		}
		d, _, err := Decompress(comp, DecompressOptions{Engine: EngineDevice, Strategy: kernels.DE})
		if err != nil {
			return false
		}
		return bytes.Equal(h, src) && bytes.Equal(d, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestInfo(t *testing.T) {
	src := corpus(100_000)
	comp, _, err := Compress(src, Options{Variant: format.VariantBit, DE: lz77.DELit})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Variant != format.VariantBit || h.DEMode != lz77.DELit || h.RawSize != uint64(len(src)) {
		t.Fatalf("header %+v", h)
	}
	if _, err := Info([]byte("xx")); err == nil {
		t.Fatal("Info accepted garbage")
	}
}

func TestBitBeatsByteRatio(t *testing.T) {
	src := corpus(1 << 20)
	_, byteStats, err := Compress(src, Options{Variant: format.VariantByte})
	if err != nil {
		t.Fatal(err)
	}
	_, bitStats, err := Compress(src, Options{Variant: format.VariantBit})
	if err != nil {
		t.Fatal(err)
	}
	if bitStats.Ratio <= byteStats.Ratio {
		t.Fatalf("Huffman coding should improve ratio: bit %.3f vs byte %.3f",
			bitStats.Ratio, byteStats.Ratio)
	}
}

func BenchmarkCompressBit(b *testing.B)  { benchCompress(b, format.VariantBit) }
func BenchmarkCompressByte(b *testing.B) { benchCompress(b, format.VariantByte) }

func benchCompress(b *testing.B, v format.Variant) {
	src := corpus(4 << 20)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(src, Options{Variant: v, DE: lz77.DEStrict}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressHostBit(b *testing.B) {
	src := corpus(4 << 20)
	comp, _, err := Compress(src, Options{Variant: format.VariantBit, DE: lz77.DEStrict})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(comp, DecompressOptions{Engine: EngineHost}); err != nil {
			b.Fatal(err)
		}
	}
}
