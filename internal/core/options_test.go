package core

import (
	"errors"
	"runtime"
	"testing"

	"gompresso/internal/format"
)

func TestOptionsNormalizeDefaults(t *testing.T) {
	o, err := Options{Variant: format.VariantBit}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.BlockSize != DefaultBlockSize || o.Window == 0 || o.MinMatch == 0 ||
		o.MaxMatch == 0 || o.CWL == 0 || o.SeqsPerSub == 0 || o.Workers < 1 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestOptionsNormalizeRejects(t *testing.T) {
	bad := []Options{
		{Variant: format.VariantBit, BlockSize: -1},
		{Variant: format.VariantBit, Workers: -1},
		{Variant: format.VariantBit, SeqsPerSub: -1},
		{Variant: format.VariantBit, CWL: -1},
		{Variant: format.VariantBit, Window: -1},
		{Variant: format.VariantBit, BlockSize: 100},
		{Variant: 7},
		{Variant: format.VariantBit, CWL: 1},
	}
	for i, o := range bad {
		if _, err := o.Normalize(); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("case %d (%+v): want ErrInvalidOption, got %v", i, o, err)
		}
	}
}

func TestDecompressOptionsNormalize(t *testing.T) {
	if _, err := (DecompressOptions{Workers: -1}).Normalize(); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("negative workers accepted: %v", err)
	}
	if _, err := (DecompressOptions{TileTo: -1}).Normalize(); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("negative TileTo accepted: %v", err)
	}
	if _, err := (DecompressOptions{Engine: 9}).Normalize(); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("unknown engine accepted: %v", err)
	}
	if _, err := (DecompressOptions{Engine: EngineHost}).Normalize(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestPipelineNormalize(t *testing.T) {
	for _, p := range []Pipeline{{Workers: -1}, {Readahead: -1}} {
		if _, err := p.Normalize(); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%+v: want ErrInvalidOption, got %v", p, err)
		}
	}
	p, err := Pipeline{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers != runtime.GOMAXPROCS(0) || p.Readahead != 2*p.Workers {
		t.Fatalf("defaults: %+v", p)
	}
	p, err = Pipeline{Workers: 8, Readahead: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Readahead != 8 {
		t.Fatalf("readahead below workers not raised: %+v", p)
	}
}
