package core

import (
	"errors"
	"fmt"
	"runtime"

	"gompresso/internal/format"
	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// This file is the single home of option normalization and validation.
// Every entry point — Compress/Decompress, the public Codec, the streaming
// Reader and Writer pipelines — routes its configuration through the
// Normalize/Validate methods below, so defaults are filled and domains are
// checked in exactly one place.

// ErrInvalidOption reports a configuration value outside its domain (a
// negative worker count, a block size out of range, an unknown variant).
// All option-validation failures wrap it, so callers can distinguish
// configuration mistakes from data errors with errors.Is.
var ErrInvalidOption = errors.New("invalid option")

func invalidf(msg string, args ...any) error {
	return fmt.Errorf("core: %w: %s", ErrInvalidOption, fmt.Sprintf(msg, args...))
}

// Normalize fills unset compression options with the paper's defaults and
// validates the result. The returned Options are what Compress actually
// runs with; callers that encode blocks themselves (the streaming Writer)
// must normalize once up front so every block sees identical parameters.
func (o Options) Normalize() (Options, error) {
	switch {
	case o.BlockSize < 0:
		return o, invalidf("negative block size %d", o.BlockSize)
	case o.Workers < 0:
		return o, invalidf("negative worker count %d", o.Workers)
	case o.SeqsPerSub < 0:
		return o, invalidf("negative sequences per sub-block %d", o.SeqsPerSub)
	case o.CWL < 0:
		return o, invalidf("negative codeword length limit %d", o.CWL)
	case o.Window < 0:
		return o, invalidf("negative window %d", o.Window)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.Window == 0 {
		o.Window = lz77.DefaultWindow
	}
	if o.MinMatch == 0 {
		o.MinMatch = lz77.DefaultMinMatch
	}
	if o.MaxMatch == 0 {
		o.MaxMatch = lz77.DefaultMaxMatch
	}
	if o.CWL == 0 {
		o.CWL = huffman.DefaultCWL
	}
	if o.SeqsPerSub == 0 {
		o.SeqsPerSub = format.DefaultSeqsPerSub
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.BlockSize < 1<<10 || o.BlockSize > 1<<26:
		return o, invalidf("block size %d out of range [1KiB, 64MiB]", o.BlockSize)
	case o.Variant != format.VariantByte && o.Variant != format.VariantBit:
		return o, invalidf("unknown variant %d", o.Variant)
	case o.Variant == format.VariantByte && o.Window > format.MaxByteOffset:
		return o, invalidf("window %d exceeds Byte-variant offset range %d", o.Window, format.MaxByteOffset)
	case o.Window > format.MaxOffValue:
		return o, invalidf("window %d exceeds Bit-variant offset range %d", o.Window, format.MaxOffValue)
	case o.CWL < 2 || o.CWL > huffman.MaxCodeLen:
		return o, invalidf("CWL %d out of range", o.CWL)
	case o.SeqsPerSub > 1<<12:
		return o, invalidf("%d sequences per sub-block out of range", o.SeqsPerSub)
	}
	return o, nil
}

// lzOptions projects the compression options onto the LZ77 parser's.
func (o Options) lzOptions() lz77.Options {
	return lz77.Options{
		Window:    o.Window,
		MinMatch:  o.MinMatch,
		MaxMatch:  o.MaxMatch,
		MaxChain:  o.MaxChain,
		DE:        o.DE,
		Staleness: o.Staleness,
	}
}

// Normalize validates decompression options and fills defaults.
func (o DecompressOptions) Normalize() (DecompressOptions, error) {
	if o.Workers < 0 {
		return o, invalidf("negative worker count %d", o.Workers)
	}
	if o.TileTo < 0 {
		return o, invalidf("negative TileTo %d", o.TileTo)
	}
	if o.Engine != EngineDevice && o.Engine != EngineHost {
		return o, invalidf("unknown engine %d", o.Engine)
	}
	return o, nil
}

// Pipeline holds the tuning knobs shared by the streaming pipelines — the
// decompressing Reader and the compressing Writer — which are symmetric:
// both fan blocks out to the shared worker pool through an ordered queue
// with bounded readahead back-pressure.
type Pipeline struct {
	// Workers is the number of blocks processed concurrently. 0 selects
	// GOMAXPROCS; 1 selects the synchronous single-goroutine path.
	Workers int
	// Readahead bounds how many finished blocks may be buffered ahead of
	// the consumer. 0 selects 2×Workers; values below Workers are raised
	// to Workers.
	Readahead int
}

// Validate rejects negative pipeline values with ErrInvalidOption.
func (p Pipeline) Validate() error {
	if p.Workers < 0 {
		return invalidf("negative Workers %d", p.Workers)
	}
	if p.Readahead < 0 {
		return invalidf("negative Readahead %d", p.Readahead)
	}
	return nil
}

// Normalize validates and fills pipeline defaults.
func (p Pipeline) Normalize() (Pipeline, error) {
	if err := p.Validate(); err != nil {
		return p, err
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Readahead == 0 {
		p.Readahead = 2 * p.Workers
	}
	if p.Readahead < p.Workers {
		p.Readahead = p.Workers
	}
	return p, nil
}
