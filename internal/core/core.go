// Package core orchestrates Gompresso compression and decompression end to
// end: block splitting, the LZ77 parse (with or without Dependency
// Elimination), entropy coding into the container format, and the two
// decompression engines — a host reference engine and the simulated-GPU
// engine built on internal/kernels.
package core

import (
	"context"
	"fmt"
	"time"

	"gompresso/internal/format"
	"gompresso/internal/gpu"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
	"gompresso/internal/parallel"
)

// Options configures compression. The zero value compresses with the paper's
// defaults: Gompresso/Bit, 256 KB blocks, 8 KB window, 64-byte max match,
// CWL 10, 16 sequences per sub-block — and an unrestricted LZ77 parse
// (DE off; decompress with MRR). Set DE to lz77.DEStrict for streams the
// single-round DE strategy can decompress.
type Options struct {
	Variant    format.Variant
	BlockSize  int
	Window     int
	MinMatch   int
	MaxMatch   int
	MaxChain   int
	DE         lz77.DEMode
	Staleness  int // > 0 selects the LZ4-style single-entry matcher
	CWL        int // Bit variant: codeword length limit
	SeqsPerSub int // Bit variant: sequences per sub-block
	Workers    int // host goroutines for block-parallel compression
	// Index appends an optional index trailer (block offsets) to the
	// container, letting readers with random access seek without scanning
	// the block section first. Containers stay readable by every decoder
	// either way.
	Index bool
}

// DefaultBlockSize is the paper's default data block size (§V).
const DefaultBlockSize = 256 << 10

// CompressStats reports what compression did.
type CompressStats struct {
	RawSize   int64
	CompSize  int64
	Blocks    int
	Seqs      int64
	MatchLen  int64 // total back-reference bytes
	LitLen    int64 // total literal bytes
	Seconds   float64
	Ratio     float64 // RawSize / CompSize
	Speed     float64 // raw bytes per second (host wall clock)
	GroupsDep int     // warp groups that would need >1 MRR round
}

// BlockStats are one block's compression counters, aggregated into
// CompressStats by whole-stream callers.
type BlockStats struct {
	Seqs      int
	LitLen    int
	MatchLen  int64
	GroupsDep int
}

// Accumulate folds one block's counters into the stream totals.
func (s *CompressStats) Accumulate(bs BlockStats) {
	s.Seqs += int64(bs.Seqs)
	s.LitLen += int64(bs.LitLen)
	s.MatchLen += bs.MatchLen
	s.GroupsDep += bs.GroupsDep
}

// EncodeBlockRecord compresses one raw block and appends its complete
// container record (fixed header, trees, size lists, payload) to dst.
// o must already be normalized (Options.Normalize) and src must be at most
// o.BlockSize bytes. It is the single per-block encoder shared by Compress
// and the public streaming Writer, which is what guarantees the two emit
// byte-identical containers.
func EncodeBlockRecord(dst, src []byte, o Options) ([]byte, BlockStats, error) {
	var bs BlockStats
	ts, err := lz77.Parse(src, o.lzOptions())
	if err != nil {
		return dst, bs, err
	}
	blk := format.Block{RawLen: len(src), NumSeqs: len(ts.Seqs)}
	if o.Variant == format.VariantByte {
		blk.Payload, err = format.EncodeByte(ts)
	} else {
		var bb *format.BitBlock
		bb, err = format.EncodeBit(ts, o.CWL, o.SeqsPerSub)
		if err == nil {
			blk.Payload = bb.Payload
			blk.LitLenLengths = bb.LitLenLengths
			blk.OffLengths = bb.OffLengths
			blk.SubBits = bb.SubBits
			blk.SubLits = bb.SubLits
		}
	}
	if err != nil {
		return dst, bs, err
	}
	bs.Seqs = len(ts.Seqs)
	bs.LitLen = len(ts.Literals)
	for _, s := range ts.Seqs {
		bs.MatchLen += int64(s.MatchLen)
	}
	if o.DE == lz77.DEOff {
		mrr := lz77.AnalyzeMRR(ts, lz77.DefaultGroupSize)
		for _, r := range mrr.Rounds {
			if r > 1 {
				bs.GroupsDep++
			}
		}
	}
	return format.AppendBlock(dst, o.Variant, &blk), bs, nil
}

// Header builds the container file header Compress writes for normalized
// options o and the given stream totals.
func (o Options) Header(rawSize uint64, numBlocks uint32) format.FileHeader {
	return format.FileHeader{
		Variant:    o.Variant,
		DEMode:     o.DE,
		CWL:        uint8(o.CWL),
		Window:     uint32(o.Window),
		MinMatch:   uint8(o.MinMatch),
		MaxMatch:   uint32(o.MaxMatch),
		BlockSize:  uint32(o.BlockSize),
		RawSize:    rawSize,
		SeqsPerSub: uint16(o.SeqsPerSub),
		NumBlocks:  numBlocks,
	}
}

// Compress compresses src into a Gompresso container.
func Compress(src []byte, o Options) ([]byte, *CompressStats, error) {
	return CompressContext(context.Background(), src, o)
}

// CompressContext is Compress with cancellation: a context cancelled
// mid-stream makes pending block encodes return early and the call fail
// with ctx.Err().
func CompressContext(ctx context.Context, src []byte, o Options) ([]byte, *CompressStats, error) {
	o, err := o.Normalize()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	nb := (len(src) + o.BlockSize - 1) / o.BlockSize

	type result struct {
		rec []byte
		bs  BlockStats
		err error
	}
	results := make([]result, nb)
	parallel.For(nb, o.Workers, func(i int) {
		if err := ctx.Err(); err != nil {
			results[i].err = err
			return
		}
		lo := i * o.BlockSize
		hi := lo + o.BlockSize
		if hi > len(src) {
			hi = len(src)
		}
		results[i].rec, results[i].bs, results[i].err = EncodeBlockRecord(nil, src[lo:hi], o)
	})

	stats := &CompressStats{RawSize: int64(len(src)), Blocks: nb}
	out := format.AppendHeader(nil, o.Header(uint64(len(src)), uint32(nb)))
	offsets := make([]int64, 0, nb+1)
	for i := range results {
		if results[i].err != nil {
			return nil, nil, fmt.Errorf("core: block %d: %w", i, results[i].err)
		}
		offsets = append(offsets, int64(len(out)))
		stats.Accumulate(results[i].bs)
		out = append(out, results[i].rec...)
	}
	if o.Index {
		offsets = append(offsets, int64(len(out)))
		out = format.AppendIndex(out, offsets)
	}
	stats.CompSize = int64(len(out))
	stats.Seconds = time.Since(start).Seconds()
	if stats.CompSize > 0 {
		stats.Ratio = float64(stats.RawSize) / float64(stats.CompSize)
	}
	if stats.Seconds > 0 {
		stats.Speed = float64(stats.RawSize) / stats.Seconds
	}
	return out, stats, nil
}

// Engine selects the decompression implementation.
type Engine int

const (
	// EngineDevice decompresses on the simulated GPU (the paper's system).
	EngineDevice Engine = iota
	// EngineHost decompresses block-parallel on host goroutines — the
	// reference implementation used for validation and CPU comparisons.
	EngineHost
)

// PCIeMode selects which host↔device transfers are included in the modeled
// time, matching the three series of paper Fig. 13.
type PCIeMode int

const (
	PCIeNone  PCIeMode = iota // data resides in device memory (No PCIe)
	PCIeIn                    // compressed input transferred to the device (In)
	PCIeInOut                 // input and decompressed output transferred (In/Out)
)

func (m PCIeMode) String() string {
	switch m {
	case PCIeNone:
		return "No PCIe"
	case PCIeIn:
		return "In"
	case PCIeInOut:
		return "In/Out"
	default:
		return fmt.Sprintf("PCIeMode(%d)", int(m))
	}
}

// DecompressOptions configures decompression.
type DecompressOptions struct {
	Engine   Engine
	Strategy kernels.Strategy // device engine back-reference strategy
	Device   *gpu.Device      // nil selects a simulated Tesla K40
	PCIe     PCIeMode
	Workers  int // host engine goroutines
	// HostReference forces the host engine through the reference pipeline
	// (DecodeBit/DecodeByte into a TokenStream, then TokenStream.Decompress)
	// instead of the fused fast path. Used for validation and as the
	// baseline in benchmarks; output is byte-identical either way.
	HostReference bool
	// TileTo, when > 0, makes the device time model behave as if the input
	// were replicated to TileTo raw bytes. The paper's evaluation uses 1 GB
	// datasets, which keep the device full; smaller reproductions would
	// otherwise understate throughput at large block sizes. Output and
	// correctness are unaffected.
	TileTo int64
}

// DecompressStats reports modeled device time (device engine) and measured
// host time (both engines).
type DecompressStats struct {
	RawSize  int64
	CompSize int64

	HostSeconds float64 // wall-clock of the whole call

	// Device engine only:
	DecodeLaunch  *gpu.LaunchStats // Bit variant Huffman decode kernel
	LZ77Launch    *gpu.LaunchStats // LZ77 (or fused Byte) kernel
	PCIeInSec     float64
	PCIeOutSec    float64
	DeviceSeconds float64 // simulated kernel time
	SimSeconds    float64 // simulated end-to-end time incl. selected PCIe
	Rounds        *kernels.RoundStats
}

// Throughput returns raw bytes per simulated second (device engine) or per
// host second (host engine).
func (s *DecompressStats) Throughput() float64 {
	t := s.SimSeconds
	if t == 0 {
		t = s.HostSeconds
	}
	if t <= 0 {
		return 0
	}
	return float64(s.RawSize) / t
}

// Decompress reverses Compress.
func Decompress(data []byte, o DecompressOptions) ([]byte, *DecompressStats, error) {
	return DecompressContext(context.Background(), data, o)
}

// DecompressContext is Decompress with cancellation: a context cancelled
// mid-stream makes pending block decodes return early and the call fail
// with ctx.Err().
func DecompressContext(ctx context.Context, data []byte, o DecompressOptions) ([]byte, *DecompressStats, error) {
	o, err := o.Normalize()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	f, err := format.ParseFile(data)
	if err != nil {
		return nil, nil, err
	}
	stats := &DecompressStats{
		RawSize:  int64(f.Header.RawSize),
		CompSize: int64(len(data)),
	}
	out := make([]byte, f.Header.RawSize)
	if len(f.Blocks) == 0 {
		stats.HostSeconds = time.Since(start).Seconds()
		return out, stats, nil
	}

	switch o.Engine {
	case EngineHost:
		err = decompressHost(ctx, f, out, o)
	case EngineDevice:
		if err = ctx.Err(); err == nil {
			err = decompressDevice(f, data, out, o, stats)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	stats.HostSeconds = time.Since(start).Seconds()
	return out, stats, nil
}

// decompressHost is the block-parallel host path. By default each block runs
// the fused fast path (bitstream→output in one pass, pooled decoder tables,
// chunked match copies, zero steady-state allocations); with o.HostReference
// it runs the materializing reference pipeline instead. Decode scratch is
// hoisted to one per worker share, so a many-block container pays the pool
// Get/Put once per worker instead of once per block.
func decompressHost(ctx context.Context, f *format.File, out []byte, o DecompressOptions) error {
	bs := int(f.Header.BlockSize)
	byteVariant := f.Header.Variant == format.VariantByte
	var scratch []*format.DecodeScratch
	if !byteVariant && !o.HostReference {
		scratch = make([]*format.DecodeScratch, parallel.Workers(len(f.Blocks), o.Workers))
		for i := range scratch {
			scratch[i] = format.GetScratch()
		}
		defer func() {
			for _, sc := range scratch {
				format.PutScratch(sc)
			}
		}()
	}
	errs := make([]error, len(f.Blocks))
	parallel.ForShare(len(f.Blocks), o.Workers, func(share, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		blk := &f.Blocks[i]
		dst := out[i*bs : i*bs+blk.RawLen : i*bs+blk.RawLen]
		switch {
		case o.HostReference:
			var ts *lz77.TokenStream
			var err error
			if byteVariant {
				ts, err = format.DecodeByte(blk.Payload, blk.NumSeqs, blk.RawLen)
			} else {
				ts, err = f.BitBlockOf(i).DecodeBit(blk.RawLen)
			}
			if err != nil {
				errs[i] = err
				return
			}
			// Decompress into the block's region of the output buffer:
			// length 0, capacity exactly RawLen, so the writes fill the
			// region without reallocating.
			if _, err := ts.Decompress(dst[:0]); err != nil {
				errs[i] = err
			}
		case byteVariant:
			errs[i] = format.DecodeByteInto(dst, blk.Payload, blk.NumSeqs)
		default:
			// Stack-allocated BitBlock view; the fused decode borrows pooled
			// decoder scratch internally.
			bb := format.BitBlock{
				LitLenLengths: blk.LitLenLengths,
				OffLengths:    blk.OffLengths,
				SubBits:       blk.SubBits,
				SubLits:       blk.SubLits,
				Payload:       blk.Payload,
				NumSeqs:       blk.NumSeqs,
				SeqsPerSub:    int(f.Header.SeqsPerSub),
			}
			errs[i] = bb.DecodeBitInto(dst, scratch[share])
		}
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: block %d: %w", i, err)
		}
	}
	return nil
}

// decompressDevice runs the simulated-GPU pipeline.
func decompressDevice(f *format.File, comp, out []byte, o DecompressOptions, stats *DecompressStats) error {
	dev := o.Device
	if dev == nil {
		dev = gpu.MustDevice(gpu.TeslaK40())
	}
	bs := int(f.Header.BlockSize)
	rawLens := make([]int, len(f.Blocks))
	for i := range f.Blocks {
		rawLens[i] = f.Blocks[i].RawLen
	}
	tile := 1
	if o.TileTo > 0 && int64(len(out)) > 0 {
		tile = int((o.TileTo + int64(len(out)) - 1) / int64(len(out)))
		if tile < 1 {
			tile = 1
		}
	}

	if f.Header.Variant == format.VariantByte {
		in := kernels.ByteInput{
			RawLens:   rawLens,
			BlockSize: bs,
			Out:       out,
			Tile:      tile,
		}
		for i := range f.Blocks {
			in.Payloads = append(in.Payloads, f.Blocks[i].Payload)
			in.NumSeqs = append(in.NumSeqs, f.Blocks[i].NumSeqs)
		}
		ls, rounds, err := kernels.ByteLaunch(dev, in, o.Strategy)
		if err != nil {
			return err
		}
		stats.LZ77Launch = ls
		stats.Rounds = rounds
		stats.DeviceSeconds = ls.Time
	} else {
		bitBlocks := make([]*format.BitBlock, len(f.Blocks))
		for i := range f.Blocks {
			bitBlocks[i] = f.BitBlockOf(i)
		}
		ds, soas, err := kernels.DecodeLaunch(dev, bitBlocks, tile)
		if err != nil {
			return err
		}
		in := kernels.LZ77Input{Tokens: soas, RawLens: rawLens, BlockSize: bs, Out: out, Tile: tile}
		ls, rounds, err := kernels.LZ77Launch(dev, in, o.Strategy)
		if err != nil {
			return err
		}
		stats.DecodeLaunch = ds
		stats.LZ77Launch = ls
		stats.Rounds = rounds
		stats.DeviceSeconds = ds.Time + ls.Time
	}

	// Transfer composition: the compressed input must land before kernels
	// consume it, but decompressed blocks stream back over PCIe while later
	// blocks are still being processed, so the output transfer overlaps
	// compute (Gompresso processes blocks independently, which is what makes
	// this pipelining possible). End-to-end time is therefore
	// in + max(compute, out) — consistent with the paper's Fig. 13, where
	// Gompresso/Bit including transfers still reaches ~10 GB/s even though
	// serial transfers alone would cap it lower.
	stats.SimSeconds = stats.DeviceSeconds
	if o.PCIe >= PCIeIn {
		stats.PCIeInSec = dev.Spec.PCIeTime(int64(len(comp)))
	}
	if o.PCIe >= PCIeInOut {
		stats.PCIeOutSec = dev.Spec.PCIeTime(int64(len(out)))
		if stats.PCIeOutSec > stats.SimSeconds {
			stats.SimSeconds = stats.PCIeOutSec
		}
	}
	stats.SimSeconds += stats.PCIeInSec
	return nil
}

// Info parses and returns the container header without decompressing.
func Info(data []byte) (format.FileHeader, error) {
	f, err := format.ParseFile(data)
	if err != nil {
		return format.FileHeader{}, err
	}
	return f.Header, nil
}
