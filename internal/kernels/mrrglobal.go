package kernels

import (
	"fmt"

	"gompresso/internal/gpu"
)

// MRRGlobalLaunch implements the paper's alternative MRR variant (§V-A):
// "We also implemented an alternative variant of MRR that wrote nested
// back-references to device memory during each round. Each round is
// performed in a separate kernel. Later passes read unresolved
// back-references and all threads in a warp can be doing useful work.
// Because of the overhead of writing to and reading from memory, together
// with the increased complexity of tracking when a dependency can be
// resolved, the alternative variant did not improve the performance of
// MRR."
//
// Round 0 runs the normal phases (record fetch, scans, literal copies) and
// appends every back-reference to a global worklist instead of resolving it
// in-warp. Each subsequent round is a separate launch over the remaining
// worklist: entries whose source data is complete copy and retire; the rest
// are written back. Availability is tracked per block with a gapless
// watermark advanced on the host between rounds — the "increased complexity
// of tracking when a dependency can be resolved".
//
// The function returns bit-exact output like LZ77Launch; its total time is
// expected to be no better than the in-warp MRR (tests assert the paper's
// conclusion).
func MRRGlobalLaunch(dev *gpu.Device, in LZ77Input) (total float64, rounds int, err error) {
	nb := len(in.Tokens)
	if nb != len(in.RawLens) {
		return 0, 0, fmt.Errorf("kernels: %d token blocks but %d raw lengths", nb, len(in.RawLens))
	}

	// Worklist entry: one unresolved back-reference.
	type workItem struct {
		block     int
		writePos  int
		readStart int
		length    int
	}
	perBlock := make([][]workItem, nb)
	blockErrs := make([]error, nb)

	// Round 0: literals and worklist construction (one warp per block).
	stats, err := dev.Launch(gpu.LaunchConfig{Label: "lz77/MRR-global/lit", Blocks: nb, TileFactor: in.Tile},
		func(w *gpu.Warp, b int) {
			soa := in.Tokens[b]
			outBase := b * in.BlockSize
			outPos := outBase
			litPos := 0
			for base := 0; base < len(soa.LitLen); base += gpu.WarpSize {
				n := len(soa.LitLen) - base
				if n > gpu.WarpSize {
					n = gpu.WarpSize
				}
				var g group
				g.n = n
				for i := 0; i < n; i++ {
					g.litLen[i] = soa.LitLen[base+i]
					g.matchLen[i] = soa.MatchLen[base+i]
					g.offset[i] = soa.Offset[base+i]
				}
				w.GmemRead(int64(n)*seqRecordBytes, true)
				litScan := w.ExclScan32(&g.litLen)
				var totals [gpu.WarpSize]int32
				for i := 0; i < n; i++ {
					totals[i] = g.litLen[i] + g.matchLen[i]
				}
				outScan := w.ExclScan32(&totals)
				litBase, outGroupBase := litPos, outPos
				var maxLit, totLit int64
				for i := 0; i < n; i++ {
					src := litBase + int(litScan[i])
					dst := outGroupBase + int(outScan[i])
					ll := int(g.litLen[i])
					if src+ll > len(soa.Literals) || dst+ll > len(in.Out) {
						blockErrs[b] = fmt.Errorf("block %d: literal bounds", b)
						return
					}
					copy(in.Out[dst:dst+ll], soa.Literals[src:src+ll])
					totLit += int64(ll)
					if int64(ll) > maxLit {
						maxLit = int64(ll)
					}
					if ml := int(g.matchLen[i]); ml > 0 {
						wp := dst + ll
						rs := wp - int(g.offset[i])
						if rs < outBase {
							blockErrs[b] = fmt.Errorf("block %d: offset before block", b)
							return
						}
						perBlock[b] = append(perBlock[b], workItem{b, wp, rs, ml})
					}
					litPos += ll
					outPos = dst + ll + int(g.matchLen[i])
				}
				w.ChargeLaneWork((maxLit+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
				w.Stall(stallLitPhase)
				w.GmemRead(totLit, true)
				w.GmemWrite(totLit, false)
				// Write the group's pending back-references to the worklist.
				w.GmemWrite(int64(n)*16, true)
			}
			if outPos-outBase != in.RawLens[b] {
				blockErrs[b] = fmt.Errorf("block %d produced %d bytes, want %d", b, outPos-outBase, in.RawLens[b])
			}
		})
	if err != nil {
		return 0, 0, err
	}
	for _, e := range blockErrs {
		if e != nil {
			return 0, 0, e
		}
	}
	total = stats.Time

	// Per-block gapless watermark: everything below the first pending
	// back-reference's write position is final (literals are all written).
	watermark := make([]int, nb)
	for b := range watermark {
		watermark[b] = b*in.BlockSize + in.RawLens[b]
		if len(perBlock[b]) > 0 {
			watermark[b] = perBlock[b][0].writePos
		}
	}
	pending := 0
	for _, l := range perBlock {
		pending += len(l)
	}

	// Resolution rounds: each is a separate launch over the worklist, 32
	// items per warp, lanes independent ("all threads can be doing useful
	// work").
	for pending > 0 {
		rounds++
		// The block-level watermark resolves at least one item per block per
		// round, so rounds are bounded by the longest dependency chain in a
		// block — which can run to thousands on repetitive data. That
		// pathology is one of the reasons the paper rejected this variant.
		if rounds > 1<<20 {
			return 0, 0, fmt.Errorf("kernels: MRR-global did not converge")
		}
		// Flatten the worklist (host-side bookkeeping stands in for the
		// device-side compaction the paper describes as added complexity).
		var items []workItem
		for _, l := range perBlock {
			items = append(items, l...)
		}
		warps := (len(items) + gpu.WarpSize - 1) / gpu.WarpSize
		resolved := make([]bool, len(items))
		stats, err := dev.Launch(gpu.LaunchConfig{Label: "lz77/MRR-global/round", Blocks: warps, TileFactor: in.Tile},
			func(w *gpu.Warp, warpID int) {
				lo := warpID * gpu.WarpSize
				hi := lo + gpu.WarpSize
				if hi > len(items) {
					hi = len(items)
				}
				w.GmemRead(int64(hi-lo)*16, true) // read worklist slice
				var roundBytes, maxCopy int64
				for i := lo; i < hi; i++ {
					it := items[i]
					// First-pending special case: its gapless prefix is
					// complete, overlap-aware copy handles self-overlap.
					first := it.writePos == watermark[it.block]
					if !first && it.readStart+it.length > watermark[it.block] {
						continue
					}
					copyBackref(in.Out, it.writePos, it.readStart, it.length)
					resolved[i] = true
					roundBytes += int64(it.length)
					if int64(it.length) > maxCopy {
						maxCopy = int64(it.length)
					}
				}
				w.ChargeLaneWork((maxCopy+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
				w.Stall(stallBackrefs)
				w.GmemRead(roundBytes, false)
				w.GmemWrite(roundBytes, false)
				w.GmemWrite(int64(hi-lo)*16, true) // compacted worklist write-back
			})
		if err != nil {
			return 0, 0, err
		}
		total += stats.Time

		// Host-side: retire resolved items, advance watermarks.
		idx := 0
		progress := false
		for b := range perBlock {
			var rest []workItem
			for _, it := range perBlock[b] {
				if resolved[idx] {
					progress = true
				} else {
					rest = append(rest, it)
				}
				idx++
			}
			perBlock[b] = rest
			if len(rest) > 0 {
				watermark[b] = rest[0].writePos
			} else {
				watermark[b] = b*in.BlockSize + in.RawLens[b]
			}
		}
		if !progress {
			return 0, 0, fmt.Errorf("kernels: MRR-global stalled with %d pending", pending)
		}
		pending = 0
		for _, l := range perBlock {
			pending += len(l)
		}
	}
	return total, rounds, nil
}
