package kernels

import (
	"fmt"

	"gompresso/internal/format"
	"gompresso/internal/gpu"
	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// Huffman decode kernel cost constants. slotsPerSymbol folds the issue cost
// of the peek/LUT-load/consume chain together with the marginal unhidden
// shared-memory and bit-buffer dependency latency — variable-length decoding
// is a serial chain per lane, which is why the paper needs sub-block
// parallelism at all (§II-C: codeword boundaries are unknown in advance).
const (
	slotsPerSymbol    = 48
	slotsPerExtraBit  = 2
	slotsPerSeqDecode = 8 // record assembly and store addressing
	lutEntrySlots     = 2 // shared-memory store per LUT entry during build
)

// maxWarpsPerGroup caps thread-group width at the CUDA limit of 1024
// threads.
const maxWarpsPerGroup = 32

// DecodeLaunch runs the parallel Huffman decoding kernel (paper §III-B1):
// one thread-group per data block, each lane decoding one sub-block using
// the block's two LUTs held in on-chip memory. Lanes stride when a block has
// more sub-blocks than the group has threads. The decoded tokens are
// materialized as one TokenSoA per block.
func DecodeLaunch(dev *gpu.Device, blocks []*format.BitBlock, tile int) (*gpu.LaunchStats, []*TokenSoA, error) {
	nb := len(blocks)
	type blockPlan struct {
		blk    *format.BitBlock
		litDec *decoderHandle
		offDec *decoderHandle
		bitOff []int64 // per sub-block absolute bit offset
		litOff []int32 // per sub-block literal write offset
		soa    *TokenSoA
		smem   int
	}
	plans := make([]blockPlan, nb)
	maxSubs, maxSmem := 0, 0
	for i, blk := range blocks {
		litDec, offDec, err := blk.Decoders()
		if err != nil {
			return nil, nil, fmt.Errorf("kernels: block %d: %w", i, err)
		}
		p := blockPlan{blk: blk}
		p.litDec = &decoderHandle{dec: litDec}
		p.smem = litDec.TableBytes()
		if offDec != nil {
			p.offDec = &decoderHandle{dec: offDec}
			p.smem += offDec.TableBytes()
		}
		// Sub-block offsets: "the starting offset of each sub-block in the
		// bitstream is computed from the sub-block sizes in the file header".
		var bo int64
		var lo int32
		for s := range blk.SubBits {
			p.bitOff = append(p.bitOff, bo)
			p.litOff = append(p.litOff, lo)
			bo += blk.SubBits[s]
			lo += blk.SubLits[s]
		}
		p.soa = &TokenSoA{
			LitLen:   make([]int32, blk.NumSeqs),
			MatchLen: make([]int32, blk.NumSeqs),
			Offset:   make([]int32, blk.NumSeqs),
			Literals: make([]byte, lo),
		}
		if len(blk.SubBits) > maxSubs {
			maxSubs = len(blk.SubBits)
		}
		if p.smem > maxSmem {
			maxSmem = p.smem
		}
		plans[i] = p
	}
	warpsPerGroup := (maxSubs + gpu.WarpSize - 1) / gpu.WarpSize
	if warpsPerGroup < 1 {
		warpsPerGroup = 1
	}
	if warpsPerGroup > maxWarpsPerGroup {
		warpsPerGroup = maxWarpsPerGroup
	}
	blockErrs := make([]error, nb)

	cfg := gpu.LaunchConfig{
		Label:             "huffman-decode",
		Blocks:            nb * warpsPerGroup,
		WarpsPerGroup:     warpsPerGroup,
		SharedMemPerBlock: maxSmem,
		TileFactor:        tile,
	}
	stats, err := dev.Launch(cfg, func(w *gpu.Warp, warpID int) {
		b := warpID / warpsPerGroup
		wi := warpID % warpsPerGroup
		p := &plans[b]
		if blockErrs[b] != nil {
			return
		}
		blk := p.blk

		// Cooperative LUT build: the group's warps stream the canonical
		// code-length arrays from device memory and expand them into the
		// shared-memory tables; each warp builds its share of the entries.
		entries := p.litDec.dec.TableEntries()
		if p.offDec != nil {
			entries += p.offDec.dec.TableEntries()
		}
		share := int64((entries + warpsPerGroup - 1) / warpsPerGroup)
		w.SmemWrite(share / gpu.WarpSize * lutEntrySlots)
		w.GmemRead(int64(format.LitLenSyms+format.OffSyms)/2, true)

		numSubs := len(blk.SubBits)
		seqsPerSub := blk.SeqsPerSub
		var scratchSeqs []lz77.Seq
		var scratchLits []byte
		for base := wi * gpu.WarpSize; base < numSubs; base += warpsPerGroup * gpu.WarpSize {
			var maxLaneSlots int64
			var payloadBytes, recordBytes, litBytes int64
			for lane := 0; lane < gpu.WarpSize; lane++ {
				sub := base + lane
				if sub >= numSubs {
					break
				}
				n := seqsPerSub
				if rem := blk.NumSeqs - sub*seqsPerSub; n > rem {
					n = rem
				}
				scratchSeqs = scratchSeqs[:0]
				scratchLits = scratchLits[:0]
				var st format.SubDecodeStats
				var err error
				scratchLits, scratchSeqs, st, err = format.DecodeSubBlock(
					blk.Payload, p.bitOff[sub], blk.SubBits[sub],
					p.litDec.dec, p.offDec.get(), n, scratchLits, scratchSeqs)
				if err != nil {
					blockErrs[b] = fmt.Errorf("block %d sub-block %d: %w", b, sub, err)
					return
				}
				if int32(len(scratchLits)) != blk.SubLits[sub] {
					blockErrs[b] = fmt.Errorf("block %d sub-block %d: decoded %d literal bytes, header says %d",
						b, sub, len(scratchLits), blk.SubLits[sub])
					return
				}
				// Write the decoded tokens to their device-memory slots.
				for j, s := range scratchSeqs {
					idx := sub*seqsPerSub + j
					p.soa.LitLen[idx] = int32(s.LitLen)
					p.soa.MatchLen[idx] = int32(s.MatchLen)
					p.soa.Offset[idx] = int32(s.Offset)
				}
				copy(p.soa.Literals[p.litOff[sub]:], scratchLits)

				laneSlots := int64(st.Symbols)*slotsPerSymbol +
					int64(st.ExtraBits)*slotsPerExtraBit +
					int64(n)*slotsPerSeqDecode
				if laneSlots > maxLaneSlots {
					maxLaneSlots = laneSlots
				}
				payloadBytes += (blk.SubBits[sub] + 7) / 8
				recordBytes += int64(n) * seqRecordBytes
				litBytes += int64(len(scratchLits))
			}
			// Lock-step: the warp pays for its slowest lane.
			w.ChargeLaneWork(maxLaneSlots, 1)
			w.GmemRead(payloadBytes, true)
			w.GmemWrite(recordBytes, true)
			w.GmemWrite(litBytes, true)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for _, e := range blockErrs {
		if e != nil {
			return nil, nil, e
		}
	}
	out := make([]*TokenSoA, nb)
	for i := range plans {
		out[i] = plans[i].soa
	}
	return stats, out, nil
}

// decoderHandle wraps a possibly-nil decoder so kernels can pass it through
// without nil checks at every call site.
type decoderHandle struct{ dec *huffman.Decoder }

func (h *decoderHandle) get() *huffman.Decoder {
	if h == nil {
		return nil
	}
	return h.dec
}
