package kernels

import (
	"fmt"

	"gompresso/internal/format"
	"gompresso/internal/gpu"
)

// ByteInput describes a Gompresso/Byte decompression launch: blocks are
// decoded and decompressed in a single pass because the byte-aligned coding
// needs no separate entropy-decoding stage (paper §III-B: "Gompresso/Byte
// can combine decoding and decompression in a single pass").
type ByteInput struct {
	Payloads  [][]byte
	NumSeqs   []int
	RawLens   []int
	BlockSize int
	Out       []byte
	Tile      int // model-only input replication (see gpu.LaunchConfig)
}

// ByteLaunch runs the fused Byte kernel: one warp per block. Per group of 32
// sequences the headers are parsed warp-serially from the byte stream (they
// are variable-length, so locating sequence boundaries is inherently
// sequential), then the literal-copy and back-reference phases run
// warp-parallel exactly as in the Bit path.
func ByteLaunch(dev *gpu.Device, in ByteInput, strat Strategy) (*gpu.LaunchStats, *RoundStats, error) {
	nb := len(in.Payloads)
	if nb != len(in.NumSeqs) || nb != len(in.RawLens) {
		return nil, nil, fmt.Errorf("kernels: byte launch: mismatched block metadata")
	}
	blockStats := make([]RoundStats, nb)
	blockErrs := make([]error, nb)

	stats, err := dev.Launch(gpu.LaunchConfig{Label: "byte/" + strat.String(), Blocks: nb, TileFactor: in.Tile}, func(w *gpu.Warp, b int) {
		payload := in.Payloads[b]
		outBase := b * in.BlockSize
		outPos := outBase
		var rs *RoundStats
		if strat != SC {
			rs = &blockStats[b]
		}
		off := 0
		remaining := in.NumSeqs[b]
		for remaining > 0 {
			n := remaining
			if n > gpu.WarpSize {
				n = gpu.WarpSize
			}
			var g group
			g.n = n
			var headerBytes int64
			for i := 0; i < n; i++ {
				p, next, err := format.ParseSeqByte(payload, off)
				if err != nil {
					blockErrs[b] = fmt.Errorf("block %d: %w", b, err)
					return
				}
				g.litLen[i] = int32(p.Seq.LitLen)
				g.matchLen[i] = int32(p.Seq.MatchLen)
				g.offset[i] = int32(p.Seq.Offset)
				g.litSrc[i] = int32(p.LitOff)
				headerBytes += int64(p.Cost)
				off = next
			}
			// Warp-serial header walk: each header's location depends on the
			// previous header's contents.
			w.ChargeALU(headerBytes * slotsParseByte)
			w.Stall(int64(n) * stallParseSeq)
			w.GmemRead(headerBytes, true)
			var err error
			outPos, err = processGroup(w, in.Out, outBase, outPos, &g, payload, strat, rs)
			if err != nil {
				blockErrs[b] = fmt.Errorf("block %d: %w", b, err)
				return
			}
			remaining -= n
		}
		if off != len(payload) {
			blockErrs[b] = fmt.Errorf("block %d: %d trailing payload bytes", b, len(payload)-off)
			return
		}
		if outPos-outBase != in.RawLens[b] {
			blockErrs[b] = fmt.Errorf("block %d produced %d bytes, want %d", b, outPos-outBase, in.RawLens[b])
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for _, e := range blockErrs {
		if e != nil {
			return nil, nil, e
		}
	}
	agg := &RoundStats{}
	for i := range blockStats {
		agg.merge(&blockStats[i])
	}
	return stats, agg, nil
}
