package kernels

import (
	"fmt"

	"gompresso/internal/gpu"
	"gompresso/internal/lz77"
)

// Kernel cost constants, in warp-instruction slots / stall cycles (see
// internal/gpu). copyPhaseStall is the dominant term: a scattered copy is a
// chain of dependent global-memory round trips that the issuing warp must
// wait out. It is paid once per concurrent copy phase (all lanes together),
// once per MRR round, and once per *lane* under Sequential Copying — which
// is exactly the paper's §IV cost structure.
const (
	slotsPerSeqSetup   = 2 // per-sequence register bookkeeping per phase
	slotsGroupSetup    = 4 // per-group loop control and addressing
	slotsRoundOverhead = 4 // MRR round: clz, compare, branch, mask update
	slotsParseByte     = 2 // serial Byte-variant header parsing, per byte
	stallParseSeq      = 8 // dependent header walk per sequence (cached)
	copyBytesPerSlot   = 4 // vectorized copy width (one slot per 4-byte word)

	// Stall calibration. The literal phase is one warp-wide streaming copy;
	// a back-reference round is a warp-wide *scattered* gather+scatter whose
	// tail (slowest of 32 dependent chains plus the ballot/shuffle sync)
	// runs several times longer; a Sequential-Copying turn is a single
	// lane's chain. These three constants set the relative costs that give
	// the paper its Fig. 9a geometry (DE ≥ 5× SC, DE 2–3× MRR at ≈3 rounds).
	stallLitPhase  = 700
	stallBackrefs  = 2600 // per MRR round and per DE single round
	stallSCBackref = 1000 // per back-reference, serialized
)

// TokenSoA is the decoded token stream of one data block laid out
// structure-of-arrays in device memory: the form the Huffman decode kernel
// writes and the LZ77 kernel reads (paper §III-B1: "the output of the
// decoder is the stream of literal and back-reference tokens, and is written
// back to the device memory").
type TokenSoA struct {
	LitLen   []int32
	MatchLen []int32
	Offset   []int32
	Literals []byte
}

// FromTokenStream converts a host token stream into the SoA layout.
func FromTokenStream(ts *lz77.TokenStream) *TokenSoA {
	soa := &TokenSoA{
		LitLen:   make([]int32, len(ts.Seqs)),
		MatchLen: make([]int32, len(ts.Seqs)),
		Offset:   make([]int32, len(ts.Seqs)),
		Literals: ts.Literals,
	}
	for i, s := range ts.Seqs {
		soa.LitLen[i] = int32(s.LitLen)
		soa.MatchLen[i] = int32(s.MatchLen)
		soa.Offset[i] = int32(s.Offset)
	}
	return soa
}

// seqRecordBytes is the device-memory footprint of one token record.
const seqRecordBytes = 12

// group holds the per-lane registers of one 32-sequence iteration.
type group struct {
	n        int
	litLen   [gpu.WarpSize]int32
	matchLen [gpu.WarpSize]int32
	offset   [gpu.WarpSize]int32
	litSrc   [gpu.WarpSize]int32 // absolute literal index into litBuf
}

// processGroup runs phases (b) and (c) of paper §III-B2 for one group:
// computes output positions with a warp scan, copies literal strings, then
// resolves back-references with the selected strategy. It returns the output
// position after the group.
func processGroup(w *gpu.Warp, out []byte, blockBase, outPos int,
	g *group, litBuf []byte, strat Strategy, rs *RoundStats) (int, error) {

	w.ChargeALU(slotsGroupSetup)

	// Phase (b) first half: output positions via exclusive prefix sum over
	// litLen+matchLen (paper: "a second exclusive prefix sum ... computed
	// from the total number of bytes that each thread will write").
	var totals [gpu.WarpSize]int32
	for i := 0; i < g.n; i++ {
		totals[i] = g.litLen[i] + g.matchLen[i]
	}
	outScan := w.ExclScan32(&totals)

	var dst, brPos, brEnd, readStart, readEnd [gpu.WarpSize]int
	for i := 0; i < g.n; i++ {
		dst[i] = outPos + int(outScan[i])
		brPos[i] = dst[i] + int(g.litLen[i])
		brEnd[i] = brPos[i] + int(g.matchLen[i])
		if g.matchLen[i] > 0 {
			readStart[i] = brPos[i] - int(g.offset[i])
			readEnd[i] = readStart[i] + int(g.matchLen[i])
			if readStart[i] < blockBase {
				return 0, fmt.Errorf("kernels: back-reference reaches %d bytes before its block", blockBase-readStart[i])
			}
		}
	}
	groupEnd := outPos
	if g.n > 0 {
		groupEnd = brEnd[g.n-1]
	}
	if groupEnd > len(out) {
		return 0, fmt.Errorf("kernels: group writes past output buffer (%d > %d)", groupEnd, len(out))
	}

	// Phase (b) second half: copy literal strings. Lanes copy concurrently;
	// in lock-step the warp pays for the longest literal.
	var maxLit, totLit int64
	for i := 0; i < g.n; i++ {
		n := int(g.litLen[i])
		if n == 0 {
			continue
		}
		src := int(g.litSrc[i])
		if src < 0 || src+n > len(litBuf) {
			return 0, fmt.Errorf("kernels: literal source [%d,%d) outside buffer of %d", src, src+n, len(litBuf))
		}
		copy(out[dst[i]:dst[i]+n], litBuf[src:src+n])
		totLit += int64(n)
		if int64(n) > maxLit {
			maxLit = int64(n)
		}
	}
	w.ChargeLaneWork((maxLit+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
	w.ChargeALU(int64(g.n) * slotsPerSeqSetup)
	if totLit > 0 {
		w.Stall(stallLitPhase)
	}
	w.GmemRead(totLit, true)   // literal stream is contiguous
	w.GmemWrite(totLit, false) // destinations are scattered across lanes

	// Phase (c): back-references.
	var pendingMask uint32
	var totMatch int64
	for i := 0; i < g.n; i++ {
		if g.matchLen[i] > 0 {
			pendingMask |= 1 << uint(i)
			totMatch += int64(g.matchLen[i])
		}
	}
	if pendingMask == 0 {
		return groupEnd, nil
	}

	switch strat {
	case SC:
		// Sequential Copying: lanes take strict turns; every copy is paid
		// serially (paper §V-A baseline, "without intra-block parallelism").
		for i := 0; i < g.n; i++ {
			ml := int64(g.matchLen[i])
			if ml == 0 {
				continue
			}
			copyBackref(out, brPos[i], readStart[i], int(ml))
			w.ChargeALU(slotsPerSeqSetup)
			w.ChargeLaneWork((ml+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
			w.Stall(stallSCBackref) // each lane's copy chain is paid serially
			w.GmemRead(ml, false)
			w.GmemWrite(ml, false)
		}

	case MRR:
		rounds := 0
		for {
			votes := w.Ballot(pendingMask)
			if votes == 0 {
				break
			}
			rounds++
			first := gpu.Ctz(votes)
			// Broadcast the gapless high-water mark: everything below the
			// first pending lane's back-reference position is written
			// (paper Fig. 5 lines 8-10: ballot, leading-zero count, shfl).
			hwm := gpu.Shfl(w, &brPos, first)
			w.ChargeALU(slotsRoundOverhead)

			var roundBytes, roundSeqs, maxCopy int64
			for i := 0; i < g.n; i++ {
				if votes&(1<<uint(i)) == 0 {
					continue
				}
				// The first pending lane may always resolve: its gapless
				// prefix is complete and an overlap-aware copy handles any
				// self-overlap (see DESIGN.md).
				if i != first && readEnd[i] > hwm {
					continue
				}
				ml := int64(g.matchLen[i])
				copyBackref(out, brPos[i], readStart[i], int(ml))
				pendingMask &^= 1 << uint(i)
				roundBytes += ml
				roundSeqs++
				if ml > maxCopy {
					maxCopy = ml
				}
			}
			w.ChargeLaneWork((maxCopy+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
			w.ChargeALU(int64(g.n) * 1) // per-lane predicate evaluation
			w.Stall(stallBackrefs)      // one scattered copy phase per round
			w.GmemRead(roundBytes, false)
			w.GmemWrite(roundBytes, false)
			if rs != nil {
				rs.recordRound(rounds, roundBytes, roundSeqs)
			}
		}
		if rs != nil {
			rs.recordGroup(rounds)
		}

	case DE:
		// One round: everything below the first match-bearing lane's
		// back-reference position — the group's gapless literal prefix plus
		// all previous groups — is available (paper §IV-B).
		votes := w.Ballot(pendingMask)
		first := gpu.Ctz(votes)
		avail := gpu.Shfl(w, &brPos, first)
		w.ChargeALU(slotsRoundOverhead)
		var maxCopy int64
		for i := 0; i < g.n; i++ {
			if votes&(1<<uint(i)) == 0 {
				continue
			}
			if readEnd[i] > avail {
				return 0, fmt.Errorf("kernels: DE strategy on stream with intra-group dependency (lane %d reads to %d, available %d)", i, readEnd[i], avail)
			}
			ml := int64(g.matchLen[i])
			copyBackref(out, brPos[i], readStart[i], int(ml))
			if ml > maxCopy {
				maxCopy = ml
			}
		}
		w.ChargeLaneWork((maxCopy+copyBytesPerSlot-1)/copyBytesPerSlot, 1)
		w.ChargeALU(int64(g.n) * 1)
		w.Stall(stallBackrefs) // single round: one scattered copy phase
		w.GmemRead(totMatch, false)
		w.GmemWrite(totMatch, false)
		if rs != nil {
			rs.recordRound(1, totMatch, int64(popcount(votes)))
			rs.recordGroup(1)
		}

	default:
		return 0, fmt.Errorf("kernels: unknown strategy %v", strat)
	}
	return groupEnd, nil
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// copyBackref copies length bytes from readStart to writePos within out,
// byte-serially when the intervals overlap (RLE-style references).
func copyBackref(out []byte, writePos, readStart, length int) {
	if readStart+length <= writePos {
		copy(out[writePos:writePos+length], out[readStart:readStart+length])
		return
	}
	for i := 0; i < length; i++ {
		out[writePos+i] = out[readStart+i]
	}
}

// LZ77Input describes one LZ77 decompression launch over decoded tokens.
type LZ77Input struct {
	Tokens    []*TokenSoA // one per data block
	RawLens   []int       // uncompressed size per block
	BlockSize int         // uniform block size (output stride)
	Out       []byte      // output buffer, len = total raw size
	Tile      int         // model-only input replication (see gpu.LaunchConfig)
}

// LZ77Launch runs the LZ77 decompression kernel: one warp per data block,
// 32 sequences per iteration (paper §III-B2). It returns launch statistics
// and, for MRR/DE, round statistics.
func LZ77Launch(dev *gpu.Device, in LZ77Input, strat Strategy) (*gpu.LaunchStats, *RoundStats, error) {
	nb := len(in.Tokens)
	if nb != len(in.RawLens) {
		return nil, nil, fmt.Errorf("kernels: %d token blocks but %d raw lengths", nb, len(in.RawLens))
	}
	blockStats := make([]RoundStats, nb)
	blockErrs := make([]error, nb)

	stats, err := dev.Launch(gpu.LaunchConfig{Label: "lz77/" + strat.String(), Blocks: nb, TileFactor: in.Tile}, func(w *gpu.Warp, b int) {
		soa := in.Tokens[b]
		outBase := b * in.BlockSize
		outPos := outBase
		litPos := 0
		var rs *RoundStats
		if strat != SC {
			rs = &blockStats[b]
		}
		for base := 0; base < len(soa.LitLen); base += gpu.WarpSize {
			n := len(soa.LitLen) - base
			if n > gpu.WarpSize {
				n = gpu.WarpSize
			}
			// Phase (a): fetch the 32 sequence records and locate literal
			// strings with an exclusive prefix sum over literal lengths
			// (paper §III-B2a).
			var g group
			g.n = n
			for i := 0; i < n; i++ {
				g.litLen[i] = soa.LitLen[base+i]
				g.matchLen[i] = soa.MatchLen[base+i]
				g.offset[i] = soa.Offset[base+i]
			}
			w.GmemRead(int64(n)*seqRecordBytes, true)
			litScan := w.ExclScan32(&g.litLen)
			var groupLits int32
			for i := 0; i < n; i++ {
				g.litSrc[i] = int32(litPos) + litScan[i]
				groupLits += g.litLen[i]
			}
			var err error
			outPos, err = processGroup(w, in.Out, outBase, outPos, &g, soa.Literals, strat, rs)
			if err != nil {
				blockErrs[b] = fmt.Errorf("block %d seqs [%d,%d): %w", b, base, base+n, err)
				return
			}
			litPos += int(groupLits)
		}
		if outPos-outBase != in.RawLens[b] {
			blockErrs[b] = fmt.Errorf("block %d produced %d bytes, want %d", b, outPos-outBase, in.RawLens[b])
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for _, e := range blockErrs {
		if e != nil {
			return nil, nil, e
		}
	}
	agg := &RoundStats{}
	for i := range blockStats {
		agg.merge(&blockStats[i])
	}
	return stats, agg, nil
}
