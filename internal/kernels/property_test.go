package kernels

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gompresso/internal/gpu"
	"gompresso/internal/lz77"
)

// Property: for random structured inputs, every strategy × parse-mode
// combination the format permits produces output identical to the
// sequential reference decoder, and MRR's round structure matches the
// analytical oracle.
func TestQuickStrategiesMatchReference(t *testing.T) {
	dev := testDevice()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1024 + rng.Intn(64<<10)
		src := make([]byte, n)
		for i := 0; i < n; {
			switch rng.Intn(3) {
			case 0: // repeated phrase
				phrase := []byte("seq-" + string(rune('a'+rng.Intn(26))) + "-block ")
				for j := 0; j < 4+rng.Intn(40) && i < n; j++ {
					src[i] = phrase[j%len(phrase)]
					i++
				}
			case 1: // run
				b := byte(rng.Intn(4))
				for j := 0; j < 1+rng.Intn(100) && i < n; j++ {
					src[i] = b
					i++
				}
			default:
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		blockSize := 8 << 10 << rng.Intn(3)
		de := lz77.DEMode(rng.Intn(3))
		streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{DE: de})

		want := make([]byte, 0, n)
		oracleRounds := 0
		for _, ts := range streams {
			part, err := ts.Decompress(nil)
			if err != nil {
				return false
			}
			want = append(want, part...)
			if s := lz77.AnalyzeMRR(ts, gpu.WarpSize); s.MaxRounds > oracleRounds {
				oracleRounds = s.MaxRounds
			}
		}
		if !bytes.Equal(want, src) {
			return false
		}

		strategies := []Strategy{SC, MRR}
		if de != lz77.DEOff {
			strategies = append(strategies, DE)
		}
		for _, strat := range strategies {
			in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
			for _, ts := range streams {
				in.Tokens = append(in.Tokens, FromTokenStream(ts))
			}
			_, rounds, err := LZ77Launch(dev, in, strat)
			if err != nil {
				return false
			}
			if !bytes.Equal(in.Out, src) {
				return false
			}
			if strat == MRR && rounds.MaxRounds != oracleRounds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
