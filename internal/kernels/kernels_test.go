package kernels

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gompresso/internal/format"
	"gompresso/internal/gpu"
	"gompresso/internal/lz77"
)

func testDevice() *gpu.Device { return gpu.MustDevice(gpu.TeslaK40()) }

// splitBlocks cuts src into blockSize pieces and parses each.
func splitBlocks(t testing.TB, src []byte, blockSize int, opts lz77.Options) ([]*lz77.TokenStream, []int) {
	t.Helper()
	var streams []*lz77.TokenStream
	var rawLens []int
	for off := 0; off < len(src); off += blockSize {
		end := off + blockSize
		if end > len(src) {
			end = len(src)
		}
		ts, err := lz77.Parse(src[off:end], opts)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, ts)
		rawLens = append(rawLens, end-off)
	}
	return streams, rawLens
}

func testCorpus() []byte {
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	words := []string{"warp", "ballot", "shuffle", "huffman", "lz77", "block", "gpu", "decompress"}
	for buf.Len() < 300000 {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
		if rng.Intn(20) == 0 {
			buf.WriteString(strings.Repeat("=", rng.Intn(40)))
		}
		if rng.Intn(50) == 0 {
			b := make([]byte, rng.Intn(100))
			rng.Read(b)
			buf.Write(b)
		}
	}
	return buf.Bytes()
}

func TestLZ77LaunchMatchesReference(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	for _, tc := range []struct {
		parse lz77.DEMode
		strat Strategy
	}{
		{lz77.DEOff, SC},
		{lz77.DEOff, MRR},
		{lz77.DEStrict, SC},
		{lz77.DEStrict, MRR},
		{lz77.DEStrict, DE},
		{lz77.DELit, DE},
		{lz77.DELit, MRR},
	} {
		streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{DE: tc.parse})
		in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
		for _, ts := range streams {
			in.Tokens = append(in.Tokens, FromTokenStream(ts))
		}
		stats, rounds, err := LZ77Launch(testDevice(), in, tc.strat)
		if err != nil {
			t.Fatalf("parse=%v strat=%v: %v", tc.parse, tc.strat, err)
		}
		if !bytes.Equal(in.Out, src) {
			t.Fatalf("parse=%v strat=%v: output mismatch", tc.parse, tc.strat)
		}
		if stats.Time <= 0 {
			t.Fatalf("parse=%v strat=%v: no simulated time", tc.parse, tc.strat)
		}
		if tc.strat == DE && rounds.MaxRounds > 1 {
			t.Fatalf("DE strategy took %d rounds", rounds.MaxRounds)
		}
	}
}

func TestMRRRoundsMatchOracle(t *testing.T) {
	src := testCorpus()
	const blockSize = 32 << 10
	streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{})
	in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
	oracle := &lz77.MRRStats{}
	for _, ts := range streams {
		in.Tokens = append(in.Tokens, FromTokenStream(ts))
		s := lz77.AnalyzeMRR(ts, gpu.WarpSize)
		oracle.Groups += s.Groups
		for i, b := range s.BytesPerRound {
			for len(oracle.BytesPerRound) <= i {
				oracle.BytesPerRound = append(oracle.BytesPerRound, 0)
			}
			oracle.BytesPerRound[i] += b
		}
		if s.MaxRounds > oracle.MaxRounds {
			oracle.MaxRounds = s.MaxRounds
		}
	}
	_, rounds, err := LZ77Launch(testDevice(), in, MRR)
	if err != nil {
		t.Fatal(err)
	}
	if rounds.Groups != oracle.Groups {
		t.Fatalf("kernel groups %d, oracle %d", rounds.Groups, oracle.Groups)
	}
	if rounds.MaxRounds != oracle.MaxRounds {
		t.Fatalf("kernel max rounds %d, oracle %d", rounds.MaxRounds, oracle.MaxRounds)
	}
	if len(rounds.BytesPerRound) != len(oracle.BytesPerRound) {
		t.Fatalf("rounds depth %d vs oracle %d", len(rounds.BytesPerRound), len(oracle.BytesPerRound))
	}
	for i := range rounds.BytesPerRound {
		if rounds.BytesPerRound[i] != oracle.BytesPerRound[i] {
			t.Fatalf("round %d: kernel %d bytes, oracle %d", i+1, rounds.BytesPerRound[i], oracle.BytesPerRound[i])
		}
	}
}

func TestDEStrategyRejectsDependentStream(t *testing.T) {
	src := []byte(strings.Repeat("abcdefghij", 20000))
	streams, rawLens := splitBlocks(t, src, 64<<10, lz77.Options{})
	// Greedy parse of repetitive data has intra-group dependencies.
	dep := false
	for _, ts := range streams {
		if lz77.CheckDE(ts, gpu.WarpSize) != nil {
			dep = true
		}
	}
	if !dep {
		t.Skip("corpus unexpectedly dependency-free")
	}
	in := LZ77Input{RawLens: rawLens, BlockSize: 64 << 10, Out: make([]byte, len(src))}
	for _, ts := range streams {
		in.Tokens = append(in.Tokens, FromTokenStream(ts))
	}
	if _, _, err := LZ77Launch(testDevice(), in, DE); err == nil {
		t.Fatal("DE strategy accepted a stream with intra-group dependencies")
	}
}

// Strategy cost ordering on self-similar data: SC must be slowest, DE
// fastest (paper Fig. 9a: DE ≥ 5× SC, MRR in between).
func TestStrategyTimeOrdering(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	timeFor := func(parse lz77.DEMode, strat Strategy) float64 {
		streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{DE: parse})
		in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
		for _, ts := range streams {
			in.Tokens = append(in.Tokens, FromTokenStream(ts))
		}
		stats, _, err := LZ77Launch(testDevice(), in, strat)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Time
	}
	sc := timeFor(lz77.DEOff, SC)
	mrr := timeFor(lz77.DEOff, MRR)
	de := timeFor(lz77.DEStrict, DE)
	if !(sc > mrr && mrr > de) {
		t.Fatalf("time ordering violated: SC %.3gs MRR %.3gs DE %.3gs", sc, mrr, de)
	}
	if sc < 3*de {
		t.Fatalf("SC (%.3gs) should be several times slower than DE (%.3gs)", sc, de)
	}
}

func TestDecodeLaunchMatchesHostDecode(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	streams, _ := splitBlocks(t, src, blockSize, lz77.Options{})
	var bitBlocks []*format.BitBlock
	for _, ts := range streams {
		blk, err := format.EncodeBit(ts, 10, 16)
		if err != nil {
			t.Fatal(err)
		}
		bitBlocks = append(bitBlocks, blk)
	}
	stats, soas, err := DecodeLaunch(testDevice(), bitBlocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OccupantWarpsPerSM <= 0 {
		t.Fatal("no occupancy reported")
	}
	for i, ts := range streams {
		want := FromTokenStream(ts)
		got := soas[i]
		if !bytes.Equal(got.Literals, want.Literals) {
			t.Fatalf("block %d: literal mismatch", i)
		}
		for j := range want.LitLen {
			if got.LitLen[j] != want.LitLen[j] || got.MatchLen[j] != want.MatchLen[j] || got.Offset[j] != want.Offset[j] {
				t.Fatalf("block %d seq %d: got (%d,%d,%d) want (%d,%d,%d)", i, j,
					got.LitLen[j], got.MatchLen[j], got.Offset[j],
					want.LitLen[j], want.MatchLen[j], want.Offset[j])
			}
		}
	}
	// Shared memory footprint: two CWL=10 LUTs.
	if smem := 2 * (1 << 10) * 4; stats.OccupantWarpsPerSM > testDevice().Spec.OccupantWarpsPerSM(smem, 1)*32 {
		t.Fatalf("occupancy %d implausible", stats.OccupantWarpsPerSM)
	}
}

func TestDecodePlusLZ77EndToEnd(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{DE: lz77.DEStrict})
	var bitBlocks []*format.BitBlock
	for _, ts := range streams {
		blk, err := format.EncodeBit(ts, 10, 16)
		if err != nil {
			t.Fatal(err)
		}
		bitBlocks = append(bitBlocks, blk)
	}
	dev := testDevice()
	_, soas, err := DecodeLaunch(dev, bitBlocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := LZ77Input{Tokens: soas, RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
	_, _, err = LZ77Launch(dev, in, DE)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in.Out, src) {
		t.Fatal("bit pipeline end-to-end mismatch")
	}
}

func TestByteLaunchMatchesReference(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	for _, tc := range []struct {
		parse lz77.DEMode
		strat Strategy
	}{
		{lz77.DEOff, SC},
		{lz77.DEOff, MRR},
		{lz77.DEStrict, DE},
	} {
		streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{DE: tc.parse})
		in := ByteInput{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
		for _, ts := range streams {
			payload, err := format.EncodeByte(ts)
			if err != nil {
				t.Fatal(err)
			}
			in.Payloads = append(in.Payloads, payload)
			in.NumSeqs = append(in.NumSeqs, len(ts.Seqs))
		}
		_, rounds, err := ByteLaunch(testDevice(), in, tc.strat)
		if err != nil {
			t.Fatalf("parse=%v strat=%v: %v", tc.parse, tc.strat, err)
		}
		if !bytes.Equal(in.Out, src) {
			t.Fatalf("parse=%v strat=%v: output mismatch", tc.parse, tc.strat)
		}
		if tc.strat == MRR && rounds.Groups == 0 {
			t.Fatal("MRR recorded no groups")
		}
	}
}

func TestByteLaunchCorruptPayload(t *testing.T) {
	src := []byte(strings.Repeat("corrupt payload test ", 2000))
	streams, rawLens := splitBlocks(t, src, 32<<10, lz77.Options{})
	in := ByteInput{RawLens: rawLens, BlockSize: 32 << 10, Out: make([]byte, len(src))}
	for _, ts := range streams {
		payload, err := format.EncodeByte(ts)
		if err != nil {
			t.Fatal(err)
		}
		in.Payloads = append(in.Payloads, payload)
		in.NumSeqs = append(in.NumSeqs, len(ts.Seqs))
	}
	// Truncate one payload: must error, not panic or write garbage silently.
	in.Payloads[0] = in.Payloads[0][:len(in.Payloads[0])/2]
	if _, _, err := ByteLaunch(testDevice(), in, MRR); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestRoundStatsMerge(t *testing.T) {
	a := &RoundStats{}
	a.recordRound(1, 100, 10)
	a.recordRound(2, 50, 5)
	a.recordGroup(2)
	b := &RoundStats{}
	b.recordRound(1, 10, 1)
	b.recordGroup(1)
	b.recordRound(1, 20, 2)
	b.recordRound(2, 8, 1)
	b.recordRound(3, 4, 1)
	b.recordGroup(3)
	a.merge(b)
	if a.Groups != 3 || a.MaxRounds != 3 {
		t.Fatalf("groups %d max %d", a.Groups, a.MaxRounds)
	}
	if a.BytesPerRound[0] != 130 || a.BytesPerRound[1] != 58 || a.BytesPerRound[2] != 4 {
		t.Fatalf("bytes per round %v", a.BytesPerRound)
	}
	if got := a.AvgRounds(); got != 2 {
		t.Fatalf("avg rounds %v", got)
	}
}

func BenchmarkLZ77LaunchMRR(b *testing.B) { benchLZ77(b, lz77.DEOff, MRR) }
func BenchmarkLZ77LaunchDE(b *testing.B)  { benchLZ77(b, lz77.DEStrict, DE) }
func BenchmarkLZ77LaunchSC(b *testing.B)  { benchLZ77(b, lz77.DEOff, SC) }

func benchLZ77(b *testing.B, parse lz77.DEMode, strat Strategy) {
	src := testCorpus()
	const blockSize = 64 << 10
	streams, rawLens := splitBlocks(b, src, blockSize, lz77.Options{DE: parse})
	in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
	for _, ts := range streams {
		in.Tokens = append(in.Tokens, FromTokenStream(ts))
	}
	dev := testDevice()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LZ77Launch(dev, in, strat); err != nil {
			b.Fatal(err)
		}
	}
}
