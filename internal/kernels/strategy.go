// Package kernels contains the warp-synchronous decompression kernels of
// Gompresso, written against the internal/gpu simulator:
//
//   - DecodeLaunch: parallel Huffman decoding, one sub-block per lane with
//     shared per-block LUTs (paper §III-B1),
//   - LZ77Launch: one warp per data block resolving 32 sequences at a time
//     with the SC / MRR / DE back-reference strategies (paper §III-B2, §IV),
//   - ByteLaunch: the fused single-pass kernel for Gompresso/Byte.
//
// Kernels produce bit-exact output; the gpu.Warp they run on accumulates the
// modeled cost.
package kernels

import "fmt"

// Strategy selects how a warp resolves back-references within a group of 32
// sequences (paper §IV).
type Strategy int

const (
	// SC is Sequential Copying: the baseline in which lanes copy their
	// back-references strictly one after another (paper §V-A).
	SC Strategy = iota
	// MRR is Multi-Round Resolution: iterative resolution driven by warp
	// ballot/shuffle and a high-water mark (paper Fig. 5).
	MRR
	// DE assumes the stream was produced by a Dependency-Elimination parse
	// and resolves every back-reference in a single round, verifying the
	// one-round property as it goes (paper §IV-B).
	DE
)

func (s Strategy) String() string {
	switch s {
	case SC:
		return "SC"
	case MRR:
		return "MRR"
	case DE:
		return "DE"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// RoundStats aggregates MRR round behaviour across warp groups, the data
// behind paper Figs. 9b/9c.
type RoundStats struct {
	Groups        int     // groups with at least one back-reference
	BytesPerRound []int64 // [r-1] = match bytes resolved in round r
	SeqsPerRound  []int64
	RoundsHist    []int64 // [r-1] = groups that finished after exactly r rounds
	MaxRounds     int
	TotalRounds   int64
}

// AvgRounds over groups with back-references.
func (r *RoundStats) AvgRounds() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.TotalRounds) / float64(r.Groups)
}

func (r *RoundStats) recordRound(round int, bytes, seqs int64) {
	for len(r.BytesPerRound) < round {
		r.BytesPerRound = append(r.BytesPerRound, 0)
		r.SeqsPerRound = append(r.SeqsPerRound, 0)
	}
	r.BytesPerRound[round-1] += bytes
	r.SeqsPerRound[round-1] += seqs
}

func (r *RoundStats) recordGroup(rounds int) {
	r.Groups++
	r.TotalRounds += int64(rounds)
	for len(r.RoundsHist) < rounds {
		r.RoundsHist = append(r.RoundsHist, 0)
	}
	r.RoundsHist[rounds-1]++
	if rounds > r.MaxRounds {
		r.MaxRounds = rounds
	}
}

// merge folds other into r (used to combine per-block stats after a launch).
func (r *RoundStats) merge(other *RoundStats) {
	r.Groups += other.Groups
	r.TotalRounds += other.TotalRounds
	if other.MaxRounds > r.MaxRounds {
		r.MaxRounds = other.MaxRounds
	}
	for i, v := range other.BytesPerRound {
		for len(r.BytesPerRound) <= i {
			r.BytesPerRound = append(r.BytesPerRound, 0)
			r.SeqsPerRound = append(r.SeqsPerRound, 0)
		}
		r.BytesPerRound[i] += v
		r.SeqsPerRound[i] += other.SeqsPerRound[i]
	}
	for i, v := range other.RoundsHist {
		for len(r.RoundsHist) <= i {
			r.RoundsHist = append(r.RoundsHist, 0)
		}
		r.RoundsHist[i] += v
	}
}
