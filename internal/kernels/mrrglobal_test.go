package kernels

import (
	"bytes"
	"testing"

	"gompresso/internal/lz77"
)

func TestMRRGlobalMatchesReference(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{})
	in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
	for _, ts := range streams {
		in.Tokens = append(in.Tokens, FromTokenStream(ts))
	}
	total, rounds, err := MRRGlobalLaunch(testDevice(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in.Out, src) {
		t.Fatal("MRR-global output mismatch")
	}
	if total <= 0 || rounds < 1 {
		t.Fatalf("total %v rounds %d", total, rounds)
	}
}

// The paper's conclusion (§V-A): the multi-kernel variant does not beat
// in-warp MRR, because of worklist traffic and per-round launch overhead.
func TestMRRGlobalNoFasterThanMRR(t *testing.T) {
	src := testCorpus()
	const blockSize = 64 << 10
	streams, rawLens := splitBlocks(t, src, blockSize, lz77.Options{})
	mk := func() LZ77Input {
		in := LZ77Input{RawLens: rawLens, BlockSize: blockSize, Out: make([]byte, len(src))}
		for _, ts := range streams {
			in.Tokens = append(in.Tokens, FromTokenStream(ts))
		}
		return in
	}
	inWarp := mk()
	warpStats, _, err := LZ77Launch(testDevice(), inWarp, MRR)
	if err != nil {
		t.Fatal(err)
	}
	inGlobal := mk()
	globalTotal, _, err := MRRGlobalLaunch(testDevice(), inGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if globalTotal < warpStats.Time*0.9 {
		t.Fatalf("MRR-global (%.3gs) substantially faster than in-warp MRR (%.3gs) — contradicts the paper",
			globalTotal, warpStats.Time)
	}
}

func TestMRRGlobalOnDEStream(t *testing.T) {
	// DE streams have no intra-group dependencies, but the global variant's
	// block-sequential watermark cannot see group boundaries, so it still
	// peels roughly one warp group per round — the "increased complexity of
	// tracking when a dependency can be resolved" that made the paper
	// reject this variant. The in-warp DE strategy needs exactly one round.
	src := testCorpus()
	streams, rawLens := splitBlocks(t, src, 64<<10, lz77.Options{DE: lz77.DEStrict})
	in := LZ77Input{RawLens: rawLens, BlockSize: 64 << 10, Out: make([]byte, len(src))}
	for _, ts := range streams {
		in.Tokens = append(in.Tokens, FromTokenStream(ts))
	}
	_, rounds, err := MRRGlobalLaunch(testDevice(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in.Out, src) {
		t.Fatal("output mismatch")
	}
	if rounds < 2 {
		t.Fatalf("expected the conservative watermark to need many rounds, got %d", rounds)
	}
}
