// Package bitio provides LSB-first bit-level readers and writers used by the
// Huffman and ANS entropy coders.
//
// Bits are packed least-significant-bit first within each byte, the same
// convention as DEFLATE (RFC 1951): the first bit written becomes bit 0 of
// byte 0. This lets the decoder refill a 64-bit buffer with cheap shifts and
// peek a fixed number of bits for table-driven decoding.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOverrun is returned when a read requests more bits than remain.
var ErrOverrun = errors.New("bitio: read past end of stream")

// Writer accumulates bits LSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, LSB-first
	nacc uint   // number of valid bits in acc (< 8 after flushAcc)
	bits int64  // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits appends the n low bits of v, LSB-first. n must be in [0, 57].
// The limit of 57 keeps the accumulator from overflowing with up to 7
// leftover bits; all users write codes of at most 32 bits.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	v &= (1 << n) - 1
	w.acc |= v << w.nacc
	w.nacc += n
	w.bits += int64(n)
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// WriteBool writes a single bit.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int64 { return w.bits }

// AlignByte pads with zero bits to the next byte boundary.
func (w *Writer) AlignByte() {
	if rem := w.bits % 8; rem != 0 {
		w.WriteBits(0, uint(8-rem))
	}
}

// Bytes flushes any partial byte (zero-padded) and returns the underlying
// buffer. The Writer may continue to be used; the padding bits are counted.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset clears the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
	w.bits = 0
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int    // next byte index to load into acc
	acc  uint64 // bit buffer, next bit is LSB
	nacc uint   // valid bits in acc
	read int64  // total bits consumed
	lim  int64  // total bits available
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader {
	r := &Reader{}
	r.Reset(data)
	return r
}

// NewReaderBits returns a Reader over data that exposes exactly nbits bits.
func NewReaderBits(data []byte, nbits int64) *Reader {
	r := NewReader(data)
	if nbits > r.lim {
		panic("bitio: nbits exceeds data length")
	}
	r.lim = nbits
	return r
}

// NewReaderAtBit returns a Reader positioned at absolute bit offset bitOff
// within data, exposing nbits bits from there. Gompresso's parallel Huffman
// decoder uses this to seek each lane directly to its sub-block, whose
// starting offset is the prefix sum of the sub-block bit sizes stored in the
// block header (paper §III-B1).
func NewReaderAtBit(data []byte, bitOff, nbits int64) (*Reader, error) {
	if bitOff < 0 || nbits < 0 || bitOff+nbits > int64(len(data))*8 {
		return nil, ErrOverrun
	}
	r := &Reader{}
	r.data = data
	r.pos = int(bitOff / 8)
	r.lim = bitOff + nbits
	r.read = bitOff
	if rem := uint(bitOff % 8); rem > 0 {
		r.fill()
		r.acc >>= rem
		r.nacc -= rem
	}
	return r, nil
}

// Reset re-points the reader at data with an empty bit buffer.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.acc = 0
	r.nacc = 0
	r.read = 0
	r.lim = int64(len(data)) * 8
}

func (r *Reader) fill() {
	for r.nacc <= 56 && r.pos < len(r.data) {
		r.acc |= uint64(r.data[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// ReadBits consumes and returns the next n bits (n ≤ 57), LSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	if r.read+int64(n) > r.lim {
		return 0, ErrOverrun
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			return 0, ErrOverrun
		}
	}
	v := r.acc & ((1 << n) - 1)
	r.acc >>= n
	r.nacc -= n
	r.read += int64(n)
	return v, nil
}

// ReadBool consumes one bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Peek returns the next n bits without consuming them. If fewer than n bits
// remain, the missing high bits are zero — this is the standard convention
// for LUT-based Huffman decoding near the end of a stream.
func (r *Reader) Peek(n uint) uint64 {
	if r.nacc < n {
		r.fill()
	}
	return r.acc & ((1 << n) - 1)
}

// Skip consumes n bits previously inspected with Peek.
func (r *Reader) Skip(n uint) error {
	if r.read+int64(n) > r.lim {
		return ErrOverrun
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			return ErrOverrun
		}
	}
	r.acc >>= n
	r.nacc -= n
	r.read += int64(n)
	return nil
}

// BitsRead reports the number of bits consumed so far.
func (r *Reader) BitsRead() int64 { return r.read }

// BitsRemaining reports the number of bits left.
func (r *Reader) BitsRemaining() int64 { return r.lim - r.read }
