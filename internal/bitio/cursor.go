package bitio

import "encoding/binary"

// Cursor is the fast-path counterpart of Reader: an LSB-first bit cursor
// whose accumulator stays in registers across symbols. Its methods are small
// enough to inline, so a decode loop pays no call overhead per symbol — the
// batched-decode primitive the fused Huffman paths are built on.
//
// Protocol: call Refill, then consume at most 56 bits through Peek/Skip/Bits
// before the next Refill. Refill loads eight bytes at a time while they are
// available and falls back to a byte loop near the end of the buffer, where
// missing bits read as zero (the usual convention for LUT decoding at end of
// stream). There is no per-bit error path: consuming past the end of data is
// detected after the fact with Overrun, and position accounting is derived
// from the cursor state (Consumed), so Skip and Bits compile to a couple of
// register ops.
type Cursor struct {
	data []byte
	next int    // index of the next byte to load
	acc  uint64 // bit buffer, next bit is LSB
	nacc uint   // valid bits in acc
	base int64  // absolute bit offset the cursor started at
}

// NewCursor returns a Cursor over data starting at absolute bit offset
// bitOff. Consumed is relative to bitOff.
func NewCursor(data []byte, bitOff int64) Cursor {
	c := Cursor{data: data, next: int(bitOff >> 3), base: bitOff}
	if rem := uint(bitOff & 7); rem > 0 {
		c.refillSlow()
		c.acc >>= rem
		c.nacc -= rem
	}
	return c
}

// Refill tops the accumulator up to at least 56 valid bits (fewer only near
// the end of data). The fast path loads a whole little-endian word and
// advances by the bytes that fit; re-loading a partially consumed byte ORs
// identical bits, so it is harmless.
func (c *Cursor) Refill() {
	if c.next+8 <= len(c.data) {
		c.acc |= binary.LittleEndian.Uint64(c.data[c.next:]) << c.nacc
		adv := (63 - c.nacc) >> 3
		c.next += int(adv)
		c.nacc += adv << 3
		return
	}
	c.refillSlow()
}

func (c *Cursor) refillSlow() {
	for c.nacc <= 56 && c.next < len(c.data) {
		c.acc |= uint64(c.data[c.next]) << c.nacc
		c.next++
		c.nacc += 8
	}
}

// Buffered reports the valid bits currently in the accumulator. Decode loops
// use it to refill only when the buffer is actually low — entropy-coded
// symbols average far fewer bits than their worst case, so `if Buffered() <
// worstCase { Refill() }` skips most refills (and both halves inline, which
// a combined ensure-method would not).
func (c *Cursor) Buffered() uint { return c.nacc }

// Peek returns the next n bits without consuming them; bits past the end of
// data read as zero. n must be ≤ 56 and covered by the preceding Refill.
func (c *Cursor) Peek(n uint) uint64 { return c.acc & (1<<n - 1) }

// Window returns the upcoming bits selected by a precomputed mask (a LUT's
// size-1). Equivalent to Peek(log2(mask+1)) with one op less in the symbol
// loop.
func (c *Cursor) Window(mask uint64) uint64 { return c.acc & mask }

// Skip consumes n bits. n must not exceed the valid bits from the preceding
// Refill; consuming past end-of-data is caught later via Overrun.
func (c *Cursor) Skip(n uint) {
	c.acc >>= n
	c.nacc -= n
}

// Bits consumes and returns the next n bits (n ≤ 56, covered by the
// preceding Refill).
func (c *Cursor) Bits(n uint) uint64 {
	v := c.acc & (1<<n - 1)
	c.Skip(n)
	return v
}

// Overrun reports whether the cursor has consumed bits past the end of data.
// A Skip larger than the bits actually remaining underflows nacc (a uint),
// which is irreversible: refills are no-ops once the data is exhausted, so
// the underflow persists and one check at the end of a decode covers the
// whole run. Mid-buffer underflow is impossible — Refill guarantees ≥ 56
// valid bits while ≥ 8 bytes remain, and the protocol caps consumption at 56
// bits per refill.
func (c *Cursor) Overrun() bool { return c.nacc > 64 }

// Consumed reports the number of bits consumed since the cursor was created.
// Only meaningful when !Overrun().
func (c *Cursor) Consumed() int64 {
	return int64(c.next)*8 - int64(c.nacc) - c.base
}
