package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundtrip(t *testing.T) {
	w := NewWriter(16)
	vals := []struct {
		v uint64
		n uint
	}{
		{0x1, 1}, {0x0, 1}, {0x5, 3}, {0xff, 8}, {0x1234, 16},
		{0xabcdef, 24}, {0x7fffffff, 31}, {0, 0}, {1, 1},
	}
	for _, x := range vals {
		w.WriteBits(x.v, x.n)
	}
	r := NewReaderBits(w.Bytes(), w.BitLen())
	for i, x := range vals {
		got, err := r.ReadBits(x.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := x.v & ((1 << x.n) - 1)
		if got != want {
			t.Fatalf("read %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestLSBFirstLayout(t *testing.T) {
	// DEFLATE convention: first bit written is bit 0 of byte 0.
	w := NewWriter(4)
	w.WriteBits(1, 1)     // bit 0
	w.WriteBits(0, 1)     // bit 1
	w.WriteBits(0b11, 2)  // bits 2-3
	w.WriteBits(0b101, 3) // bits 4-6
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len=%d", len(b))
	}
	want := byte(1 | 0<<1 | 0b11<<2 | 0b101<<4)
	if b[0] != want {
		t.Fatalf("byte layout got %08b want %08b", b[0], want)
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xdead, 16)
	w.WriteBits(0xbe, 8)
	r := NewReader(w.Bytes())
	if got := r.Peek(16); got != 0xdead {
		t.Fatalf("peek got %#x", got)
	}
	if got := r.Peek(8); got != 0xad {
		t.Fatalf("peek8 got %#x", got)
	}
	if err := r.Skip(16); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil || got != 0xbe {
		t.Fatalf("got %#x err %v", got, err)
	}
}

func TestPeekPastEndZeroFilled(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0x3, 2)
	r := NewReaderBits(w.Bytes(), 2)
	if got := r.Peek(10); got != 0x3 {
		t.Fatalf("peek past end got %#x want 0x3", got)
	}
}

func TestOverrun(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrOverrun {
		t.Fatalf("want ErrOverrun, got %v", err)
	}
	r2 := NewReaderBits([]byte{0xff}, 3)
	if _, err := r2.ReadBits(4); err != ErrOverrun {
		t.Fatalf("want ErrOverrun for limited reader, got %v", err)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 3)
	w.AlignByte()
	if w.BitLen() != 8 {
		t.Fatalf("bitlen=%d", w.BitLen())
	}
	w.WriteBits(0xab, 8)
	b := w.Bytes()
	if b[1] != 0xab {
		t.Fatalf("second byte %#x", b[1])
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xff, 8)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("reset did not clear")
	}
	w.Reset()
	w.WriteBits(0x5, 3)
	r := NewReaderBits(w.Bytes(), w.BitLen())
	v, err := r.ReadBits(3)
	if err != nil || v != 0x5 {
		t.Fatalf("after reset got %v err %v", v, err)
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, n)
		w := NewWriter(n)
		for i := range items {
			width := uint(rng.Intn(33))
			v := rng.Uint64()
			items[i] = item{v & ((1 << width) - 1), width}
			w.WriteBits(v, width)
		}
		r := NewReaderBits(w.Bytes(), w.BitLen())
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Peek/Skip with ReadBits is equivalent to ReadBits.
func TestQuickPeekSkipEquiv(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(64)
		var widths []uint
		var vals []uint64
		for i := 0; i < 40; i++ {
			width := uint(rng.Intn(17))
			v := rng.Uint64() & ((1 << width) - 1)
			w.WriteBits(v, width)
			widths = append(widths, width)
			vals = append(vals, v)
		}
		r := NewReaderBits(w.Bytes(), w.BitLen())
		for i, width := range widths {
			if rng.Intn(2) == 0 {
				got := r.Peek(width)
				if got != vals[i] {
					return false
				}
				if err := r.Skip(width); err != nil {
					return false
				}
			} else {
				got, err := r.ReadBits(width)
				if err != nil || got != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<18 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 11)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 1<<14; i++ {
		w.WriteBits(uint64(i), 11)
	}
	data := w.Bytes()
	r := NewReader(data)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if r.BitsRemaining() < 11 {
			r.Reset(data)
		}
		r.ReadBits(11)
	}
}
