package format

import (
	"bytes"
	"math/rand"
	"testing"

	"gompresso/internal/lz77"
)

// fastPathBlock builds one encoded Bit block plus its expected output.
func fastPathBlock(t testing.TB, n int, seed int64) (*BitBlock, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := []string{"block", "warp", "decode", "huffman", "gompresso", " the ", "<tag>", "\n"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(20) == 0 {
			raw := make([]byte, rng.Intn(30))
			rng.Read(raw)
			b.Write(raw)
		}
	}
	src := b.Bytes()[:n]
	ts, err := lz77.Parse(src, lz77.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := EncodeBit(ts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return blk, src
}

// The fused path must be byte-identical to the reference pipeline.
func TestDecodeBitIntoMatchesReference(t *testing.T) {
	for _, n := range []int{1, 50, 4096, 100_000} {
		blk, src := fastPathBlock(t, n, int64(n))
		ref, err := blk.DecodeBit(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Decompress(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, n)
		if err := blk.DecodeBitInto(got, nil); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, want) || !bytes.Equal(got, src) {
			t.Fatalf("n=%d: fused output differs from reference", n)
		}
	}
}

// Steady-state per-block decoding through the fast path must not allocate:
// the scratch holds every table and the output buffer is caller-owned.
func TestDecodeBitIntoZeroAllocs(t *testing.T) {
	blk, src := fastPathBlock(t, 64<<10, 7)
	dst := make([]byte, len(src))
	sc := GetScratch()
	defer PutScratch(sc)
	if err := blk.DecodeBitInto(dst, sc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := blk.DecodeBitInto(dst, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fast path allocates %v times per block in steady state, want 0", allocs)
	}
}

// The Byte fused path is allocation-free even without scratch.
func TestDecodeByteIntoZeroAllocs(t *testing.T) {
	_, src := fastPathBlock(t, 64<<10, 8)
	ts, err := lz77.Parse(src, lz77.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeByte(ts)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := DecodeByteInto(dst, payload, len(ts.Seqs)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("byte fused output differs from input")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := DecodeByteInto(dst, payload, len(ts.Seqs)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("byte fast path allocates %v times per block, want 0", allocs)
	}
}

// Corrupt payloads must error, never panic or overrun dst.
func TestDecodeBitIntoCorrupt(t *testing.T) {
	blk, src := fastPathBlock(t, 32<<10, 9)
	rng := rand.New(rand.NewSource(3))
	dst := make([]byte, len(src))
	for trial := 0; trial < 200; trial++ {
		mut := &BitBlock{
			LitLenLengths: blk.LitLenLengths,
			OffLengths:    blk.OffLengths,
			SubBits:       blk.SubBits,
			SubLits:       blk.SubLits,
			Payload:       append([]byte(nil), blk.Payload...),
			NumSeqs:       blk.NumSeqs,
			SeqsPerSub:    blk.SeqsPerSub,
		}
		switch trial % 4 {
		case 0: // flip a bit
			i := rng.Intn(len(mut.Payload))
			mut.Payload[i] ^= 1 << rng.Intn(8)
		case 1: // truncate the payload
			mut.Payload = mut.Payload[:rng.Intn(len(mut.Payload))]
		case 2: // inflate the sequence count
			mut.NumSeqs += 1 + rng.Intn(100)
		case 3: // wrong output size
			dst = dst[:rng.Intn(len(src))]
		}
		err := mut.DecodeBitInto(dst, nil)
		// A bit flip may still decode to *something* the size of dst; the
		// point of the trial is that no mutation panics or writes out of
		// bounds. Structural mutations must be detected.
		if trial%4 != 0 && err == nil && len(dst) == len(src) {
			t.Fatalf("trial %d: structural corruption not detected", trial)
		}
		dst = dst[:cap(dst)]
	}
}
