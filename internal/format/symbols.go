// Package format defines the Gompresso on-disk format (paper Fig. 3) and the
// two block payload encodings:
//
//   - Byte: LZ4-style byte-aligned sequences (Gompresso/Byte),
//   - Bit: Huffman-coded sequences with two canonical trees per block and
//     fixed-sequence-count sub-blocks for parallel decoding (Gompresso/Bit).
package format

import "math/bits"

// Bit-variant symbol spaces. Following DEFLATE (and the paper §III-A), one
// tree covers literals and match lengths — literal bytes are symbols 0..255
// and length symbols terminate a literal run — while a second tree covers
// match offsets. Values too large for a direct symbol use exponential
// buckets with extra bits, like DEFLATE's length/distance codes.

const (
	// LitLenSyms is the literal/length alphabet size: 256 literals, 8 direct
	// length symbols (lengths 0–7, 0 = sequence with no match), and 14
	// bucket symbols covering lengths up to 2^17-1.
	LitLenSyms = 256 + 8 + 14
	// OffSyms is the offset alphabet: 7 direct symbols (offsets 1–7) and 18
	// buckets covering offsets up to 2^20, the window ceiling.
	OffSyms = 7 + 18

	lenSymBase  = 256 // length symbol for value v<8 is lenSymBase+v
	lenBucket0  = 264 // first bucketed length symbol (e = 1)
	offBucket0  = 7   // first bucketed offset symbol (e = 1)
	MaxLenValue = 1<<17 - 1
	MaxOffValue = 1 << 20
	maxLenExtra = 16
	maxOffExtra = 20
)

// LenSym maps a match length (0 = null sequence) to its symbol, the number
// of extra bits, and the extra-bit payload.
func LenSym(v uint32) (sym int, extraBits uint, extra uint32) {
	if v < 8 {
		return lenSymBase + int(v), 0, 0
	}
	e := bits.Len32(v) - 3 // v in [2^(e+2), 2^(e+3))
	base := uint32(1) << (e + 2)
	return lenBucket0 + e - 1, uint(e + 2), v - base
}

// LenVal inverts LenSym: given a decoded symbol it reports the value base
// and how many extra bits the decoder must read. ok is false for literal
// symbols (< 256) or out-of-range symbols.
func LenVal(sym int) (base uint32, extraBits uint, ok bool) {
	switch {
	case sym < lenSymBase || sym >= LitLenSyms:
		return 0, 0, false
	case sym < lenBucket0:
		return uint32(sym - lenSymBase), 0, true
	default:
		e := sym - lenBucket0 + 1
		return 1 << (e + 2), uint(e + 2), true
	}
}

// OffSym maps a match offset (≥ 1) to symbol, extra bits and payload.
func OffSym(v uint32) (sym int, extraBits uint, extra uint32) {
	if v < 8 {
		return int(v) - 1, 0, 0
	}
	e := bits.Len32(v) - 3
	base := uint32(1) << (e + 2)
	return offBucket0 + e - 1, uint(e + 2), v - base
}

// OffVal inverts OffSym.
func OffVal(sym int) (base uint32, extraBits uint, ok bool) {
	switch {
	case sym < 0 || sym >= OffSyms:
		return 0, 0, false
	case sym < offBucket0:
		return uint32(sym + 1), 0, true
	default:
		e := sym - offBucket0 + 1
		return 1 << (e + 2), uint(e + 2), true
	}
}

// IsLiteralSym reports whether a literal/length-tree symbol is a literal byte.
func IsLiteralSym(sym int) bool { return sym >= 0 && sym < 256 }
