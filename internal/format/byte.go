package format

import (
	"encoding/binary"
	"fmt"

	"gompresso/internal/lz77"
)

// Gompresso/Byte block payload: a stream of byte-aligned sequences, LZ4-like
// (paper §II-A cites LZ4/Snappy as the byte-level family). Each sequence is:
//
//	token byte: low nibble = literal length (15 ⇒ extension bytes follow),
//	            high nibble = match length (15 ⇒ extension bytes follow)
//	[litLen extension: 255-run bytes]
//	[matchLen extension: 255-run bytes]
//	[offset: 2 bytes little-endian, present only when matchLen > 0]
//	[literal bytes]
//
// Unlike LZ4 we store the match length raw (0 = literal-only sequence), so
// null sequences from the DE parse and the trailing literal sequence need no
// special casing. Offsets are ≤ 64 KiB − 1; the compressor enforces a window
// that fits.

// MaxByteOffset is the largest offset the 2-byte field can carry.
const MaxByteOffset = 1<<16 - 1

func appendExt(dst []byte, v uint32) []byte {
	for {
		if v >= 255 {
			dst = append(dst, 255)
			v -= 255
			continue
		}
		dst = append(dst, byte(v))
		return dst
	}
}

// AppendSeqByte appends one encoded sequence; lit is the sequence's literal
// string.
func AppendSeqByte(dst []byte, s lz77.Seq, lit []byte) ([]byte, error) {
	if s.MatchLen > 0 && (s.Offset == 0 || s.Offset > MaxByteOffset) {
		return nil, fmt.Errorf("format: byte encoding: offset %d out of range", s.Offset)
	}
	litN := s.LitLen
	if litN > 14 {
		litN = 15
	}
	matchN := s.MatchLen
	if matchN > 14 {
		matchN = 15
	}
	dst = append(dst, byte(litN)|byte(matchN)<<4)
	if litN == 15 {
		dst = appendExt(dst, s.LitLen-15)
	}
	if matchN == 15 {
		dst = appendExt(dst, s.MatchLen-15)
	}
	if s.MatchLen > 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(s.Offset))
	}
	dst = append(dst, lit...)
	return dst, nil
}

// EncodeByte encodes a whole token stream as a Byte payload.
func EncodeByte(ts *lz77.TokenStream) ([]byte, error) {
	dst := make([]byte, 0, len(ts.Literals)+4*len(ts.Seqs))
	lit := ts.Literals
	for i := range ts.Seqs {
		s := ts.Seqs[i]
		if int(s.LitLen) > len(lit) {
			return nil, fmt.Errorf("format: seq %d literal overrun", i)
		}
		var err error
		dst, err = AppendSeqByte(dst, s, lit[:s.LitLen])
		if err != nil {
			return nil, err
		}
		lit = lit[s.LitLen:]
	}
	if len(lit) != 0 {
		return nil, fmt.Errorf("format: %d literal bytes not covered by sequences", len(lit))
	}
	return dst, nil
}

// ParsedSeq is one decoded Byte-payload sequence. LitOff points into the
// payload at the literal string; Cost is the number of header bytes parsed
// (token + extensions + offset), used by the kernel cost model.
type ParsedSeq struct {
	Seq    lz77.Seq
	LitOff int
	Cost   int
}

// ParseSeqByte decodes the sequence starting at payload[off], returning it
// and the offset of the next sequence.
func ParseSeqByte(payload []byte, off int) (ParsedSeq, int, error) {
	var p ParsedSeq
	if off >= len(payload) {
		return p, 0, errCorrupt("sequence header past end (off %d)", off)
	}
	start := off
	tok := payload[off]
	off++
	litLen := uint32(tok & 0x0f)
	matchLen := uint32(tok >> 4)
	var err error
	if litLen == 15 {
		litLen, off, err = parseExt(payload, off, 15)
		if err != nil {
			return p, 0, err
		}
	}
	if matchLen == 15 {
		matchLen, off, err = parseExt(payload, off, 15)
		if err != nil {
			return p, 0, err
		}
	}
	var offset uint32
	if matchLen > 0 {
		if off+2 > len(payload) {
			return p, 0, errCorrupt("truncated offset at %d", off)
		}
		offset = uint32(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if offset == 0 {
			return p, 0, errCorrupt("zero offset at %d", start)
		}
	}
	p.Cost = off - start
	p.LitOff = off
	if off+int(litLen) > len(payload) {
		return p, 0, errCorrupt("truncated literals at %d", off)
	}
	off += int(litLen)
	p.Seq = lz77.Seq{LitLen: litLen, MatchLen: matchLen, Offset: offset}
	return p, off, nil
}

func parseExt(payload []byte, off int, base uint32) (uint32, int, error) {
	v := base
	for {
		if off >= len(payload) {
			return 0, 0, errCorrupt("truncated length extension at %d", off)
		}
		b := payload[off]
		off++
		v += uint32(b)
		if b != 255 {
			return v, off, nil
		}
	}
}

// DecodeByte parses a whole Byte payload back into a token stream with
// rawLen as the declared uncompressed size.
func DecodeByte(payload []byte, numSeqs, rawLen int) (*lz77.TokenStream, error) {
	ts := &lz77.TokenStream{RawLen: rawLen}
	off := 0
	for i := 0; i < numSeqs; i++ {
		p, next, err := ParseSeqByte(payload, off)
		if err != nil {
			return nil, fmt.Errorf("format: seq %d: %w", i, err)
		}
		ts.Seqs = append(ts.Seqs, p.Seq)
		ts.Literals = append(ts.Literals, payload[p.LitOff:p.LitOff+int(p.Seq.LitLen)]...)
		off = next
	}
	if off != len(payload) {
		return nil, errCorrupt("%d trailing payload bytes", len(payload)-off)
	}
	return ts, nil
}
