package format

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// The container (paper Fig. 3): a file header carrying the global run-time
// parameters (dictionary/window size, maximum match length, uncompressed
// size, block size, sequences per sub-block), followed by the compressed
// blocks. Each block carries its own trees and sub-block size list so it is
// independently decompressible.

// Variant selects the entropy-coding layer.
type Variant uint8

const (
	// VariantByte is Gompresso/Byte: LZ77 with byte-aligned coding.
	VariantByte Variant = 0
	// VariantBit is Gompresso/Bit: LZ77 with limited-length Huffman coding.
	VariantBit Variant = 1
)

func (v Variant) String() string {
	switch v {
	case VariantByte:
		return "Gompresso/Byte"
	case VariantBit:
		return "Gompresso/Bit"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

var magic = [4]byte{'G', 'P', 'Z', '1'}

// Magic returns the container's four magic bytes, for callers that sniff
// container formats without parsing a full header.
func Magic() [4]byte { return magic }

// ErrFormat reports a malformed container.
var ErrFormat = errors.New("format: invalid Gompresso file")

// FileHeader is the decoded file header.
type FileHeader struct {
	Variant    Variant
	DEMode     lz77.DEMode
	CWL        uint8 // bit variant: codeword length limit
	Window     uint32
	MinMatch   uint8
	MaxMatch   uint32
	BlockSize  uint32
	RawSize    uint64
	SeqsPerSub uint16
	NumBlocks  uint32
}

// Block is one compressed data block. For the Byte variant only RawLen,
// NumSeqs and Payload are set.
type Block struct {
	RawLen  int
	NumSeqs int
	Payload []byte

	// Bit variant:
	LitLenLengths []uint8
	OffLengths    []uint8
	SubBits       []int64
	SubLits       []int32
}

// File is a parsed Gompresso container. Payload slices alias the input
// buffer passed to ParseFile.
type File struct {
	Header FileHeader
	Blocks []Block
}

const headerSize = 4 + 1 + 1 + 1 + 1 + 4 + 1 + 4 + 4 + 8 + 2 + 4

// AppendHeader serializes the file header.
func AppendHeader(dst []byte, h FileHeader) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, 1, byte(h.Variant), byte(h.DEMode), h.CWL)
	dst = binary.LittleEndian.AppendUint32(dst, h.Window)
	dst = append(dst, h.MinMatch)
	dst = binary.LittleEndian.AppendUint32(dst, h.MaxMatch)
	dst = binary.LittleEndian.AppendUint32(dst, h.BlockSize)
	dst = binary.LittleEndian.AppendUint64(dst, h.RawSize)
	dst = binary.LittleEndian.AppendUint16(dst, h.SeqsPerSub)
	dst = binary.LittleEndian.AppendUint32(dst, h.NumBlocks)
	return dst
}

// AppendBlock serializes one block (header fields, trees, size lists,
// payload) according to the file variant.
func AppendBlock(dst []byte, variant Variant, b *Block) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.RawLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.NumSeqs))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Payload)))
	if variant == VariantBit {
		dst = huffman.AppendLengths(dst, b.LitLenLengths)
		dst = huffman.AppendLengths(dst, b.OffLengths)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.SubBits)))
		for i, v := range b.SubBits {
			dst = binary.AppendUvarint(dst, uint64(v))
			dst = binary.AppendUvarint(dst, uint64(b.SubLits[i]))
		}
	}
	dst = append(dst, b.Payload...)
	return dst
}

// ParseHeader decodes and validates the fixed-size file header. data must
// hold at least HeaderSize bytes.
func ParseHeader(data []byte) (FileHeader, error) {
	var h FileHeader
	if len(data) < headerSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrFormat, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:4])
	}
	if data[4] != 1 {
		return h, fmt.Errorf("%w: unsupported version %d", ErrFormat, data[4])
	}
	h.Variant = Variant(data[5])
	h.DEMode = lz77.DEMode(data[6])
	h.CWL = data[7]
	h.Window = binary.LittleEndian.Uint32(data[8:])
	h.MinMatch = data[12]
	h.MaxMatch = binary.LittleEndian.Uint32(data[13:])
	h.BlockSize = binary.LittleEndian.Uint32(data[17:])
	h.RawSize = binary.LittleEndian.Uint64(data[21:])
	h.SeqsPerSub = binary.LittleEndian.Uint16(data[29:])
	h.NumBlocks = binary.LittleEndian.Uint32(data[31:])
	if h.Variant != VariantByte && h.Variant != VariantBit {
		return h, fmt.Errorf("%w: unknown variant %d", ErrFormat, h.Variant)
	}
	if h.Variant == VariantBit && (h.CWL == 0 || h.CWL > huffman.MaxCodeLen) {
		return h, fmt.Errorf("%w: CWL %d out of range", ErrFormat, h.CWL)
	}
	if h.NumBlocks > 1<<28 {
		return h, fmt.Errorf("%w: implausible block count %d", ErrFormat, h.NumBlocks)
	}
	return h, nil
}

// HeaderSize is the encoded size of the fixed file header.
const HeaderSize = headerSize

// ParseBlock parses block record bi of an h-headed container from data,
// which must start at the record's first byte. b's slices are reused when
// they have capacity; Payload aliases data. It returns the bytes remaining
// after the record.
func ParseBlock(h FileHeader, bi uint32, data []byte, b *Block) ([]byte, error) {
	rest := data
	if len(rest) < 12 {
		return nil, fmt.Errorf("%w: block %d: truncated header", ErrFormat, bi)
	}
	b.RawLen = int(binary.LittleEndian.Uint32(rest))
	b.NumSeqs = int(binary.LittleEndian.Uint32(rest[4:]))
	payloadLen := int(binary.LittleEndian.Uint32(rest[8:]))
	rest = rest[12:]
	if h.BlockSize != 0 && uint32(b.RawLen) > h.BlockSize {
		return nil, fmt.Errorf("%w: block %d: raw length %d exceeds block size %d", ErrFormat, bi, b.RawLen, h.BlockSize)
	}
	// Decoders place block bi's output at bi*BlockSize, so every block
	// except the last must be exactly full.
	if bi != h.NumBlocks-1 && uint32(b.RawLen) != h.BlockSize {
		return nil, fmt.Errorf("%w: block %d: non-final block is %d bytes, block size is %d", ErrFormat, bi, b.RawLen, h.BlockSize)
	}
	b.LitLenLengths = b.LitLenLengths[:0]
	b.OffLengths = b.OffLengths[:0]
	b.SubBits = b.SubBits[:0]
	b.SubLits = b.SubLits[:0]
	if h.Variant == VariantBit {
		var err error
		b.LitLenLengths, rest, err = huffman.ParseLengths(rest, LitLenSyms)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %w", ErrFormat, bi, err)
		}
		b.OffLengths, rest, err = huffman.ParseLengths(rest, OffSyms)
		if err != nil {
			return nil, fmt.Errorf("%w: block %d: %w", ErrFormat, bi, err)
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: block %d: truncated sub-block count", ErrFormat, bi)
		}
		numSubs := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if h.SeqsPerSub == 0 {
			return nil, fmt.Errorf("%w: block %d: zero sequences per sub-block", ErrFormat, bi)
		}
		want := 0
		if b.NumSeqs > 0 {
			want = (b.NumSeqs + int(h.SeqsPerSub) - 1) / int(h.SeqsPerSub)
		}
		if numSubs != want {
			return nil, fmt.Errorf("%w: block %d: %d sub-blocks for %d seqs (%d per sub)", ErrFormat, bi, numSubs, b.NumSeqs, h.SeqsPerSub)
		}
		// Each sub-block entry is at least two varint bytes, which bounds
		// the preallocation by the remaining input — a lying count cannot
		// force a huge allocation.
		if numSubs > len(rest)/2 {
			return nil, fmt.Errorf("%w: block %d: %d sub-blocks exceed remaining input", ErrFormat, bi, numSubs)
		}
		if cap(b.SubBits) < numSubs {
			b.SubBits = make([]int64, 0, numSubs)
			b.SubLits = make([]int32, 0, numSubs)
		}
		var totalBits int64
		for s := 0; s < numSubs; s++ {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: block %d: bad sub-block size varint", ErrFormat, bi)
			}
			rest = rest[n:]
			lv, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: block %d: bad sub-block literal varint", ErrFormat, bi)
			}
			rest = rest[n:]
			b.SubBits = append(b.SubBits, int64(v))
			b.SubLits = append(b.SubLits, int32(lv))
			totalBits += int64(v)
		}
		if totalBits > int64(payloadLen)*8 {
			return nil, fmt.Errorf("%w: block %d: sub-block bits %d exceed payload", ErrFormat, bi, totalBits)
		}
	}
	if len(rest) < payloadLen {
		return nil, fmt.Errorf("%w: block %d: truncated payload (%d of %d bytes)", ErrFormat, bi, len(rest), payloadLen)
	}
	b.Payload = rest[:payloadLen:payloadLen]
	return rest[payloadLen:], nil
}

// ParseFile parses a container. Block payloads alias data. A trailing index
// (see AppendIndex) is validated and skipped.
func ParseFile(data []byte) (*File, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	f := &File{Header: h}
	rest := data[headerSize:]
	var totalRaw uint64
	for bi := uint32(0); bi < h.NumBlocks; bi++ {
		var b Block
		rest, err = ParseBlock(h, bi, rest, &b)
		if err != nil {
			return nil, err
		}
		totalRaw += uint64(b.RawLen)
		f.Blocks = append(f.Blocks, b)
	}
	if len(rest) != 0 {
		// The only thing allowed after the last block is an index trailer
		// whose offsets end exactly where the parsed blocks actually did.
		idx, err := ParseIndexTrailer(data, h)
		if err != nil || idx.Offsets[h.NumBlocks] != int64(len(data)-len(rest)) {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(rest))
		}
	}
	if totalRaw != h.RawSize {
		return nil, fmt.Errorf("%w: blocks total %d raw bytes, header says %d", ErrFormat, totalRaw, h.RawSize)
	}
	return f, nil
}

// BitBlockOf reconstructs the BitBlock view of a parsed block.
func (f *File) BitBlockOf(i int) *BitBlock {
	b := &f.Blocks[i]
	return &BitBlock{
		LitLenLengths: b.LitLenLengths,
		OffLengths:    b.OffLengths,
		SubBits:       b.SubBits,
		SubLits:       b.SubLits,
		Payload:       b.Payload,
		NumSeqs:       b.NumSeqs,
		SeqsPerSub:    int(f.Header.SeqsPerSub),
	}
}
