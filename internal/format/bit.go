package format

import (
	"fmt"

	"gompresso/internal/bitio"
	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// BitBlock is the encoded form of one Gompresso/Bit data block: two
// canonical trees (paper Fig. 3: literal tree and match-distance tree), the
// per-sub-block size list that lets decoder lanes seek independently, and
// the concatenated sub-block bitstreams.
type BitBlock struct {
	LitLenLengths []uint8 // LitLenSyms code lengths (0 = unused symbol)
	OffLengths    []uint8 // OffSyms code lengths; all-zero if the block has no matches
	SubBits       []int64 // compressed size in bits of each sub-block
	SubLits       []int32 // literal bytes produced by each sub-block (format extension: lets decode lanes write literals at exact offsets)
	Payload       []byte
	NumSeqs       int
	SeqsPerSub    int
}

// DefaultSeqsPerSub is the paper's sub-block granularity (§V: "we split the
// sequence stream into sub-blocks that are 16 sequences long").
const DefaultSeqsPerSub = 16

// EncodeBit Huffman-encodes a token stream into sub-blocks of seqsPerSub
// sequences, with codeword lengths limited to cwl bits.
func EncodeBit(ts *lz77.TokenStream, cwl, seqsPerSub int) (*BitBlock, error) {
	if cwl <= 0 {
		cwl = huffman.DefaultCWL
	}
	if seqsPerSub <= 0 {
		seqsPerSub = DefaultSeqsPerSub
	}
	// Histogram pass.
	litLenFreq := make([]int64, LitLenSyms)
	offFreq := make([]int64, OffSyms)
	lit := ts.Literals
	hasMatches := false
	for i := range ts.Seqs {
		s := ts.Seqs[i]
		if s.MatchLen > uint32(MaxLenValue) {
			return nil, fmt.Errorf("format: match length %d exceeds bit-encoding maximum", s.MatchLen)
		}
		if int(s.LitLen) > len(lit) {
			return nil, fmt.Errorf("format: seq %d literal overrun", i)
		}
		for _, b := range lit[:s.LitLen] {
			litLenFreq[b]++
		}
		lit = lit[s.LitLen:]
		sym, _, _ := LenSym(s.MatchLen)
		litLenFreq[sym]++
		if s.MatchLen > 0 {
			if s.Offset == 0 || s.Offset > uint32(MaxOffValue) {
				return nil, fmt.Errorf("format: seq %d offset %d out of range", i, s.Offset)
			}
			osym, _, _ := OffSym(s.Offset)
			offFreq[osym]++
			hasMatches = true
		}
	}
	if len(lit) != 0 {
		return nil, fmt.Errorf("format: %d literal bytes not covered by sequences", len(lit))
	}

	litEnc, litLengths, err := huffman.NewEncoder(litLenFreq, cwl)
	if err != nil {
		return nil, fmt.Errorf("format: literal/length tree: %w", err)
	}
	var offEnc *huffman.Encoder
	offLengths := make([]uint8, OffSyms)
	if hasMatches {
		offEnc, offLengths, err = huffman.NewEncoder(offFreq, cwl)
		if err != nil {
			return nil, fmt.Errorf("format: offset tree: %w", err)
		}
	}

	// Encoding pass, recording per-sub-block bit sizes and literal counts.
	blk := &BitBlock{
		LitLenLengths: litLengths,
		OffLengths:    offLengths,
		NumSeqs:       len(ts.Seqs),
		SeqsPerSub:    seqsPerSub,
	}
	w := bitio.NewWriter(len(ts.Literals))
	lit = ts.Literals
	for base := 0; base < len(ts.Seqs); base += seqsPerSub {
		end := base + seqsPerSub
		if end > len(ts.Seqs) {
			end = len(ts.Seqs)
		}
		startBits := w.BitLen()
		var subLits int32
		for _, s := range ts.Seqs[base:end] {
			for _, b := range lit[:s.LitLen] {
				litEnc.Encode(w, int(b))
			}
			lit = lit[s.LitLen:]
			subLits += int32(s.LitLen)
			sym, eb, extra := LenSym(s.MatchLen)
			litEnc.Encode(w, sym)
			if eb > 0 {
				w.WriteBits(uint64(extra), eb)
			}
			if s.MatchLen > 0 {
				osym, oeb, oextra := OffSym(s.Offset)
				offEnc.Encode(w, osym)
				if oeb > 0 {
					w.WriteBits(uint64(oextra), oeb)
				}
			}
		}
		blk.SubBits = append(blk.SubBits, w.BitLen()-startBits)
		blk.SubLits = append(blk.SubLits, subLits)
	}
	blk.Payload = w.Bytes()
	return blk, nil
}

// SubDecodeStats reports the work one sub-block decode performed, for the
// kernel cost model.
type SubDecodeStats struct {
	Symbols   int // Huffman table lookups
	ExtraBits int // extra-bit reads
}

// DecodeSubBlock decodes nSeqs sequences from the bitstream window
// [bitOff, bitOff+bitLen) of payload. Literals are appended to lits; the
// sequences are appended to seqs. Both slices are returned.
func DecodeSubBlock(payload []byte, bitOff, bitLen int64, litDec, offDec *huffman.Decoder,
	nSeqs int, lits []byte, seqs []lz77.Seq) ([]byte, []lz77.Seq, SubDecodeStats, error) {

	var st SubDecodeStats
	r, err := bitio.NewReaderAtBit(payload, bitOff, bitLen)
	if err != nil {
		return lits, seqs, st, fmt.Errorf("format: sub-block window: %w", err)
	}
	for n := 0; n < nSeqs; n++ {
		var s lz77.Seq
		for {
			sym, err := litDec.Decode(r)
			if err != nil {
				return lits, seqs, st, fmt.Errorf("format: literal/length decode: %w", err)
			}
			st.Symbols++
			if IsLiteralSym(sym) {
				lits = append(lits, byte(sym))
				s.LitLen++
				continue
			}
			base, eb, ok := LenVal(sym)
			if !ok {
				return lits, seqs, st, fmt.Errorf("format: bad length symbol %d", sym)
			}
			s.MatchLen = base
			if eb > 0 {
				extra, err := r.ReadBits(eb)
				if err != nil {
					return lits, seqs, st, fmt.Errorf("format: length extra bits: %w", err)
				}
				st.ExtraBits += int(eb)
				s.MatchLen += uint32(extra)
			}
			break
		}
		if s.MatchLen > 0 {
			if offDec == nil {
				return lits, seqs, st, fmt.Errorf("format: match present but block has no offset tree")
			}
			osym, err := offDec.Decode(r)
			if err != nil {
				return lits, seqs, st, fmt.Errorf("format: offset decode: %w", err)
			}
			st.Symbols++
			base, eb, ok := OffVal(osym)
			if !ok {
				return lits, seqs, st, fmt.Errorf("format: bad offset symbol %d", osym)
			}
			s.Offset = base
			if eb > 0 {
				extra, err := r.ReadBits(eb)
				if err != nil {
					return lits, seqs, st, fmt.Errorf("format: offset extra bits: %w", err)
				}
				st.ExtraBits += int(eb)
				s.Offset += uint32(extra)
			}
		}
		seqs = append(seqs, s)
	}
	return lits, seqs, st, nil
}

// Decoders builds the block's two LUT decoders from its code-length arrays.
// offDec is nil when the block contains no matches (all-zero offset tree).
func (b *BitBlock) Decoders() (litDec, offDec *huffman.Decoder, err error) {
	litDec, err = huffman.NewDecoder(b.LitLenLengths, maxTreeBits(b.LitLenLengths))
	if err != nil {
		return nil, nil, fmt.Errorf("format: literal/length tree: %w", err)
	}
	if anyNonZero(b.OffLengths) {
		offDec, err = huffman.NewDecoder(b.OffLengths, maxTreeBits(b.OffLengths))
		if err != nil {
			return nil, nil, fmt.Errorf("format: offset tree: %w", err)
		}
	}
	return litDec, offDec, nil
}

// DecodeBit decodes an entire BitBlock sequentially (host reference path).
func (b *BitBlock) DecodeBit(rawLen int) (*lz77.TokenStream, error) {
	litDec, offDec, err := b.Decoders()
	if err != nil {
		return nil, err
	}
	ts := &lz77.TokenStream{RawLen: rawLen}
	bitOff := int64(0)
	remaining := b.NumSeqs
	for i, bl := range b.SubBits {
		n := b.SeqsPerSub
		if n > remaining {
			n = remaining
		}
		ts.Literals, ts.Seqs, _, err = DecodeSubBlock(b.Payload, bitOff, bl, litDec, offDec, n, ts.Literals, ts.Seqs)
		if err != nil {
			return nil, fmt.Errorf("format: sub-block %d: %w", i, err)
		}
		bitOff += bl
		remaining -= n
	}
	if remaining != 0 {
		return nil, fmt.Errorf("format: %d sequences missing from sub-blocks", remaining)
	}
	return ts, nil
}

// maxTreeBits returns the table width needed for a code-length array: the
// largest length present (the encoder's CWL bound).
func maxTreeBits(lengths []uint8) int {
	m := 1
	for _, l := range lengths {
		if int(l) > m {
			m = int(l)
		}
	}
	return m
}

func anyNonZero(lengths []uint8) bool {
	for _, l := range lengths {
		if l != 0 {
			return true
		}
	}
	return false
}
