package format

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gompresso/internal/lz77"
)

func TestLenSymRoundtrip(t *testing.T) {
	for v := uint32(0); v <= 2048; v++ {
		sym, eb, extra := LenSym(v)
		base, eb2, ok := LenVal(sym)
		if !ok || eb != eb2 {
			t.Fatalf("v=%d: sym %d not invertible (eb %d vs %d)", v, sym, eb, eb2)
		}
		if base+extra != v {
			t.Fatalf("v=%d: base %d + extra %d != v", v, base, extra)
		}
		if extra >= 1<<eb && eb > 0 {
			t.Fatalf("v=%d: extra %d does not fit %d bits", v, extra, eb)
		}
	}
	// Boundary.
	sym, eb, extra := LenSym(MaxLenValue)
	if sym >= LitLenSyms {
		t.Fatalf("max length symbol %d out of alphabet", sym)
	}
	base, _, _ := LenVal(sym)
	if base+extra != MaxLenValue || eb > 16 {
		t.Fatalf("max length maps badly: base %d extra %d eb %d", base, extra, eb)
	}
}

func TestOffSymRoundtrip(t *testing.T) {
	vals := []uint32{1, 2, 7, 8, 9, 255, 256, 4096, 8192, 65535, 65536, MaxOffValue}
	for _, v := range vals {
		sym, eb, extra := OffSym(v)
		if sym >= OffSyms {
			t.Fatalf("v=%d: symbol %d out of alphabet", v, sym)
		}
		base, eb2, ok := OffVal(sym)
		if !ok || eb != eb2 || base+extra != v {
			t.Fatalf("v=%d: sym %d base %d extra %d eb %d/%d ok %v", v, sym, base, extra, eb, eb2, ok)
		}
	}
}

func TestLenValRejectsLiterals(t *testing.T) {
	if _, _, ok := LenVal(100); ok {
		t.Fatal("literal symbol accepted as length")
	}
	if _, _, ok := LenVal(LitLenSyms); ok {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, _, ok := OffVal(-1); ok {
		t.Fatal("negative offset symbol accepted")
	}
	if _, _, ok := OffVal(OffSyms); ok {
		t.Fatal("out-of-range offset symbol accepted")
	}
}

func parseFor(t *testing.T, src []byte, de lz77.DEMode) *lz77.TokenStream {
	t.Helper()
	ts, err := lz77.Parse(src, lz77.Options{DE: de})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestByteRoundtrip(t *testing.T) {
	src := []byte(strings.Repeat("abcabcabc hello world ", 500))
	ts := parseFor(t, src, lz77.DEOff)
	payload, err := EncodeByte(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeByte(payload, len(ts.Seqs), ts.RawLen)
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("byte payload roundtrip mismatch")
	}
}

func TestByteLongLiteralsAndMatches(t *testing.T) {
	// Hand-built stream with extension-triggering lengths.
	lit := bytes.Repeat([]byte{'x'}, 1000)
	ts := &lz77.TokenStream{
		Literals: lit,
		Seqs: []lz77.Seq{
			{LitLen: 1000, MatchLen: 600, Offset: 999},
			{LitLen: 0, MatchLen: 0},
		},
		RawLen: 1600,
	}
	payload, err := EncodeByte(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeByte(payload, 2, 1600)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ts.Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("extension roundtrip mismatch")
	}
}

func TestByteRejectsHugeOffset(t *testing.T) {
	ts := &lz77.TokenStream{
		Literals: []byte("abcd"),
		Seqs:     []lz77.Seq{{LitLen: 4, MatchLen: 4, Offset: 1 << 17}},
		RawLen:   8,
	}
	if _, err := EncodeByte(ts); err == nil {
		t.Fatal("offset beyond 2-byte field accepted")
	}
}

func TestParseSeqByteTruncation(t *testing.T) {
	ts := &lz77.TokenStream{
		Literals: []byte("abcdefgh"),
		Seqs:     []lz77.Seq{{LitLen: 8, MatchLen: 20, Offset: 4}},
		RawLen:   28,
	}
	payload, err := EncodeByte(ts)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := ParseSeqByte(payload[:cut], 0); err == nil {
			// Truncations that still parse must at least not read OOB;
			// only full payload should decode the declared seq count.
			if _, err := DecodeByte(payload[:cut], 1, 28); err == nil {
				t.Fatalf("truncated payload (%d bytes) decoded", cut)
			}
		}
	}
}

func TestBitRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	srcs := map[string][]byte{
		"text":   []byte(strings.Repeat("the compressed bitstream of block ", 800)),
		"nolit":  bytes.Repeat([]byte{'z'}, 4096),
		"random": make([]byte, 4096),
		"short":  []byte("x"),
		"empty":  {},
	}
	rng.Read(srcs["random"])
	for name, src := range srcs {
		for _, de := range []lz77.DEMode{lz77.DEOff, lz77.DEStrict} {
			ts := parseFor(t, src, de)
			blk, err := EncodeBit(ts, 10, 16)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := blk.DecodeBit(ts.RawLen)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			out, err := got.Decompress(nil)
			if err != nil {
				t.Fatalf("%s: decompress: %v", name, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("%s (%v): bit roundtrip mismatch", name, de)
			}
			// Sub-block invariants.
			if len(blk.SubBits) != (len(ts.Seqs)+15)/16 {
				t.Fatalf("%s: %d sub-blocks for %d seqs", name, len(blk.SubBits), len(ts.Seqs))
			}
			var totalLits int32
			for _, l := range blk.SubLits {
				totalLits += l
			}
			if int(totalLits) != len(ts.Literals) {
				t.Fatalf("%s: sub-block literal counts sum %d, want %d", name, totalLits, len(ts.Literals))
			}
		}
	}
}

func TestBitSubBlockIndependentSeek(t *testing.T) {
	// Decoding sub-block k via its bit offset must agree with sequential
	// decoding — this is what lets GPU lanes decode sub-blocks in parallel.
	src := []byte(strings.Repeat("independent sub-block seek test 0123456789 ", 400))
	ts := parseFor(t, src, lz77.DEOff)
	blk, err := EncodeBit(ts, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	full, err := blk.DecodeBit(ts.RawLen)
	if err != nil {
		t.Fatal(err)
	}
	litDec, offDec, err := blk.Decoders()
	if err != nil {
		t.Fatal(err)
	}
	bitOff := int64(0)
	seqIdx := 0
	litIdx := 0
	for sb, bl := range blk.SubBits {
		n := blk.SeqsPerSub
		if rem := blk.NumSeqs - seqIdx; n > rem {
			n = rem
		}
		lits, seqs, _, err := DecodeSubBlock(blk.Payload, bitOff, bl, litDec, offDec, n, nil, nil)
		if err != nil {
			t.Fatalf("sub-block %d: %v", sb, err)
		}
		for i, s := range seqs {
			if full.Seqs[seqIdx+i] != s {
				t.Fatalf("sub-block %d seq %d differs", sb, i)
			}
		}
		if !bytes.Equal(lits, full.Literals[litIdx:litIdx+len(lits)]) {
			t.Fatalf("sub-block %d literals differ", sb)
		}
		if int32(len(lits)) != blk.SubLits[sb] {
			t.Fatalf("sub-block %d literal count %d, header says %d", sb, len(lits), blk.SubLits[sb])
		}
		bitOff += bl
		seqIdx += n
		litIdx += len(lits)
	}
}

func TestContainerRoundtrip(t *testing.T) {
	src := []byte(strings.Repeat("container roundtrip block data ", 1000))
	half := len(src) / 2
	blocks := [][]byte{src[:half], src[half:]}

	for _, variant := range []Variant{VariantByte, VariantBit} {
		h := FileHeader{
			Variant: variant, DEMode: lz77.DEStrict, CWL: 10,
			Window: 8 << 10, MinMatch: 4, MaxMatch: 64,
			// Non-final blocks must be exactly full (decoders place block i
			// at i*BlockSize), so the two halves define the block size.
			BlockSize: uint32(half), RawSize: uint64(len(src)),
			SeqsPerSub: 16, NumBlocks: 2,
		}
		data := AppendHeader(nil, h)
		for _, bsrc := range blocks {
			ts := parseFor(t, bsrc, lz77.DEStrict)
			var blk Block
			blk.RawLen = len(bsrc)
			blk.NumSeqs = len(ts.Seqs)
			if variant == VariantByte {
				p, err := EncodeByte(ts)
				if err != nil {
					t.Fatal(err)
				}
				blk.Payload = p
			} else {
				bb, err := EncodeBit(ts, 10, 16)
				if err != nil {
					t.Fatal(err)
				}
				blk.Payload = bb.Payload
				blk.LitLenLengths = bb.LitLenLengths
				blk.OffLengths = bb.OffLengths
				blk.SubBits = bb.SubBits
				blk.SubLits = bb.SubLits
			}
			data = AppendBlock(data, variant, &blk)
		}
		f, err := ParseFile(data)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if f.Header != h {
			t.Fatalf("%v: header mismatch: %+v vs %+v", variant, f.Header, h)
		}
		var out []byte
		for i := range f.Blocks {
			var ts *lz77.TokenStream
			if variant == VariantByte {
				ts, err = DecodeByte(f.Blocks[i].Payload, f.Blocks[i].NumSeqs, f.Blocks[i].RawLen)
			} else {
				ts, err = f.BitBlockOf(i).DecodeBit(f.Blocks[i].RawLen)
			}
			if err != nil {
				t.Fatalf("%v block %d: %v", variant, i, err)
			}
			part, err := ts.Decompress(nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, part...)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%v: container roundtrip mismatch", variant)
		}
	}
}

func TestParseFileCorruption(t *testing.T) {
	src := []byte(strings.Repeat("corrupt me ", 500))
	ts := parseFor(t, src, lz77.DEOff)
	h := FileHeader{
		Variant: VariantBit, CWL: 10, Window: 8 << 10, MinMatch: 4,
		MaxMatch: 64, BlockSize: uint32(len(src)), RawSize: uint64(len(src)),
		SeqsPerSub: 16, NumBlocks: 1,
	}
	bb, err := EncodeBit(ts, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	blk := Block{
		RawLen: len(src), NumSeqs: len(ts.Seqs), Payload: bb.Payload,
		LitLenLengths: bb.LitLenLengths, OffLengths: bb.OffLengths,
		SubBits: bb.SubBits, SubLits: bb.SubLits,
	}
	good := AppendBlock(AppendHeader(nil, h), VariantBit, &blk)
	if _, err := ParseFile(good); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}

	// Every truncation must be rejected, never panic.
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := ParseFile(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ParseFile(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Trailing garbage.
	if _, err := ParseFile(append(append([]byte{}, good...), 0xEE)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Wrong raw size.
	bad = append([]byte{}, good...)
	bad[21] ^= 0xff
	if _, err := ParseFile(bad); err == nil {
		t.Fatal("raw size mismatch accepted")
	}
}

// Property: bit encoding of random parses roundtrips and the sub-block size
// list is exact (each sub-block decodes from its computed offset).
func TestQuickBitPayload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4096)
		src := make([]byte, n)
		for i := range src {
			if rng.Intn(3) == 0 {
				src[i] = byte(rng.Intn(256))
			} else {
				src[i] = byte('a' + rng.Intn(6))
			}
		}
		ts, err := lz77.Parse(src, lz77.Options{})
		if err != nil {
			return false
		}
		blk, err := EncodeBit(ts, 10, 16)
		if err != nil {
			return false
		}
		got, err := blk.DecodeBit(len(src))
		if err != nil {
			return false
		}
		out, err := got.Decompress(nil)
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 3000))
	ts, err := lz77.Parse(src, lz77.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBit(ts, 10, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBit(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 3000))
	ts, err := lz77.Parse(src, lz77.Options{})
	if err != nil {
		b.Fatal(err)
	}
	blk, err := EncodeBit(ts, 10, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := blk.DecodeBit(len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
