package format

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// craftBitContainer builds a valid single-block Bit container for mutation
// tests.
func craftBitContainer(t *testing.T) ([]byte, []byte) {
	t.Helper()
	src := []byte(strings.Repeat("crafted container data ", 200))
	ts := parseFor(t, src, lz77.DEStrict)
	bb, err := EncodeBit(ts, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	h := FileHeader{
		Variant: VariantBit, DEMode: lz77.DEStrict, CWL: 10,
		Window: 8 << 10, MinMatch: 4, MaxMatch: 64,
		BlockSize: uint32(len(src)), RawSize: uint64(len(src)),
		SeqsPerSub: 16, NumBlocks: 1,
	}
	data := AppendHeader(nil, h)
	blk := Block{
		RawLen: len(src), NumSeqs: bb.NumSeqs, Payload: bb.Payload,
		LitLenLengths: bb.LitLenLengths, OffLengths: bb.OffLengths,
		SubBits: bb.SubBits, SubLits: bb.SubLits,
	}
	data = AppendBlock(data, VariantBit, &blk)
	if _, err := ParseFile(data); err != nil {
		t.Fatalf("crafted container does not parse: %v", err)
	}
	return data, src
}

// A header claiming SeqsPerSub = 0 must be rejected, not divide by zero.
func TestParseFileZeroSeqsPerSub(t *testing.T) {
	data, _ := craftBitContainer(t)
	binary.LittleEndian.PutUint16(data[29:], 0)
	if _, err := ParseFile(data); err == nil {
		t.Fatal("SeqsPerSub=0 container accepted")
	}
}

// A short non-final block would make block placement at i*BlockSize wrong;
// both parsers must reject it.
func TestParseFileShortNonFinalBlock(t *testing.T) {
	src := []byte(strings.Repeat("short block data ", 500))
	half := len(src) / 2
	h := FileHeader{
		Variant: VariantByte, Window: 8 << 10, MinMatch: 4, MaxMatch: 64,
		BlockSize: uint32(half + 7), RawSize: uint64(len(src)), NumBlocks: 2,
		SeqsPerSub: 16,
	}
	data := AppendHeader(nil, h)
	for _, part := range [][]byte{src[:half], src[half:]} {
		ts := parseFor(t, part, lz77.DEOff)
		p, err := EncodeByte(ts)
		if err != nil {
			t.Fatal(err)
		}
		data = AppendBlock(data, VariantByte, &Block{RawLen: len(part), NumSeqs: len(ts.Seqs), Payload: p})
	}
	if _, err := ParseFile(data); err == nil {
		t.Fatal("container with short non-final block accepted")
	}
}

// A lying sub-block count must fail fast on the input-size bound instead of
// attempting a multi-gigabyte preallocation.
func TestParseFileHugeSubBlockCount(t *testing.T) {
	data, src := craftBitContainer(t)
	// Rewrite NumSeqs (block header field 2) and the sub-block count to a
	// huge matching pair: with SeqsPerSub=16, numSubs = ceil(NumSeqs/16).
	blockOff := HeaderSize
	huge := uint32(1) << 30
	binary.LittleEndian.PutUint32(data[blockOff+4:], huge)
	subCountOff := blockOff + 12 + huffman.LengthsSize(LitLenSyms) + huffman.LengthsSize(OffSyms)
	binary.LittleEndian.PutUint32(data[subCountOff:], huge/16)
	_ = src
	start := time.Now()
	if _, err := ParseFile(data); err == nil {
		t.Fatal("huge sub-block count accepted")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("rejection took implausibly long — likely attempted the allocation")
	}
}
