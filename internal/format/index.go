package format

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Random access. Blocks are independently decompressible and every
// non-final block expands to exactly BlockSize raw bytes, so the raw offset
// of block i is i*BlockSize — the only thing a seek needs that the header
// does not already give is where each block's record starts in the
// compressed container. An Index holds those offsets. It is obtained three
// ways, cheapest first: read back from an optional index trailer appended
// by the compressor (AppendIndex), reconstructed by scanning an in-memory
// container (BuildIndex), or by scanning a stream (ScanIndex).
//
// Trailer layout, appended after the last block:
//
//	uvarint × NumBlocks   compressed length of each block record
//	uint32                length of the varint area above
//	"GPIX"                trailer magic
//
// The fixed-size footer at the very end lets a reader with random access
// find the trailer without scanning; readers without one (BlockReader)
// validate and absorb it after the last block. Containers without a
// trailer remain valid, and a container with one remains readable by any
// consumer that tolerates it (all of this package's parsers do).

var indexMagic = [4]byte{'G', 'P', 'I', 'X'}

// IndexFooterSize is the size of the trailer's fixed footer.
const IndexFooterSize = 8

// Index maps block numbers to compressed byte offsets. Offsets has
// NumBlocks+1 entries: Offsets[i] is the container-relative offset of block
// i's record, and the final entry is the end of the block section (where an
// index trailer, if any, begins).
type Index struct {
	Offsets []int64
}

// NumBlocks returns the number of blocks the index describes.
func (ix *Index) NumBlocks() int { return len(ix.Offsets) - 1 }

// maxTrailerSize bounds how many bytes a valid trailer for h can occupy.
func maxTrailerSize(h FileHeader) int64 {
	return int64(h.NumBlocks)*binary.MaxVarintLen64 + IndexFooterSize
}

// AppendIndex serializes an index trailer for the given block offsets
// (NumBlocks+1 entries, as in Index.Offsets) onto dst, which must end at
// the block section's last byte.
func AppendIndex(dst []byte, offsets []int64) []byte {
	start := len(dst)
	for i := 0; i+1 < len(offsets); i++ {
		dst = binary.AppendUvarint(dst, uint64(offsets[i+1]-offsets[i]))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dst)-start))
	return append(dst, indexMagic[:]...)
}

// parseIndexBytes decodes a trailer that occupies exactly tail, returning
// the reconstructed index. It validates framing (magic, varint-area length)
// and shape (one record length per block, nothing left over) but not that
// the offsets match the actual block layout — callers cross-check the final
// offset against where the block section really ended.
func parseIndexBytes(tail []byte, h FileHeader) (*Index, error) {
	if len(tail) < IndexFooterSize {
		return nil, fmt.Errorf("%w: index trailer too short", ErrFormat)
	}
	foot := tail[len(tail)-IndexFooterSize:]
	if [4]byte(foot[4:]) != indexMagic {
		return nil, fmt.Errorf("%w: bad index magic", ErrFormat)
	}
	if int(binary.LittleEndian.Uint32(foot)) != len(tail)-IndexFooterSize {
		return nil, fmt.Errorf("%w: index trailer length mismatch", ErrFormat)
	}
	area := tail[:len(tail)-IndexFooterSize]
	// Each record length is at least one varint byte, which bounds the
	// offsets allocation by the input actually present — a lying block
	// count cannot force a huge allocation.
	if int64(h.NumBlocks) > int64(len(area)) {
		return nil, fmt.Errorf("%w: %d index entries exceed trailer size", ErrFormat, h.NumBlocks)
	}
	offsets := make([]int64, h.NumBlocks+1)
	offsets[0] = HeaderSize
	for i := uint32(0); i < h.NumBlocks; i++ {
		v, n := binary.Uvarint(area)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad index varint for block %d", ErrFormat, i)
		}
		area = area[n:]
		offsets[i+1] = offsets[i] + int64(v)
	}
	if len(area) != 0 {
		return nil, fmt.Errorf("%w: %d stray index bytes", ErrFormat, len(area))
	}
	return &Index{Offsets: offsets}, nil
}

// ParseIndexTrailer reads the index trailer of an in-memory container whose
// header is h. It reports ErrFormat if the container carries no (valid)
// trailer; BuildIndex is the fallback.
func ParseIndexTrailer(data []byte, h FileHeader) (*Index, error) {
	if len(data) < HeaderSize+IndexFooterSize {
		return nil, fmt.Errorf("%w: no index trailer", ErrFormat)
	}
	foot := data[len(data)-IndexFooterSize:]
	if [4]byte(foot[4:]) != indexMagic {
		return nil, fmt.Errorf("%w: no index trailer", ErrFormat)
	}
	total := int(binary.LittleEndian.Uint32(foot)) + IndexFooterSize
	if total > len(data)-HeaderSize || int64(total) > maxTrailerSize(h) {
		return nil, fmt.Errorf("%w: implausible index trailer", ErrFormat)
	}
	idx, err := parseIndexBytes(data[len(data)-total:], h)
	if err != nil {
		return nil, err
	}
	if idx.Offsets[h.NumBlocks] != int64(len(data)-total) {
		return nil, fmt.Errorf("%w: index trailer disagrees with container size", ErrFormat)
	}
	return idx, nil
}

// ReadIndexAt reads the index trailer of a size-byte container stored in
// ra, whose header is h. It reports ErrFormat when the container carries no
// valid trailer; callers fall back to BuildIndex or ScanIndex.
func ReadIndexAt(ra io.ReaderAt, size int64, h FileHeader) (*Index, error) {
	if size < HeaderSize+IndexFooterSize {
		return nil, fmt.Errorf("%w: no index trailer", ErrFormat)
	}
	var foot [IndexFooterSize]byte
	if _, err := ra.ReadAt(foot[:], size-IndexFooterSize); err != nil {
		return nil, fmt.Errorf("%w: reading index footer: %w", ErrFormat, err)
	}
	if [4]byte(foot[4:]) != indexMagic {
		return nil, fmt.Errorf("%w: no index trailer", ErrFormat)
	}
	total := int64(binary.LittleEndian.Uint32(foot[:])) + IndexFooterSize
	if total > size-HeaderSize || total > maxTrailerSize(h) {
		return nil, fmt.Errorf("%w: implausible index trailer", ErrFormat)
	}
	tail := make([]byte, total)
	if _, err := ra.ReadAt(tail, size-total); err != nil {
		return nil, fmt.Errorf("%w: reading index trailer: %w", ErrFormat, err)
	}
	idx, err := parseIndexBytes(tail, h)
	if err != nil {
		return nil, err
	}
	if idx.Offsets[h.NumBlocks] != size-total {
		return nil, fmt.Errorf("%w: index trailer disagrees with container size", ErrFormat)
	}
	return idx, nil
}

// BuildIndex reconstructs the index of an in-memory container by walking
// its block records (headers, trees and size lists are parsed; payloads are
// only skipped, so the scan is cheap relative to decompression).
func BuildIndex(data []byte, h FileHeader) (*Index, error) {
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("%w: short container", ErrFormat)
	}
	// Every block record starts with a 12-byte fixed header, which bounds
	// the offsets allocation by the input actually present.
	if int64(h.NumBlocks) > int64(len(data))/12 {
		return nil, fmt.Errorf("%w: %d blocks exceed container size", ErrFormat, h.NumBlocks)
	}
	offsets := make([]int64, h.NumBlocks+1)
	offsets[0] = HeaderSize
	rest := data[HeaderSize:]
	var b Block
	var err error
	for bi := uint32(0); bi < h.NumBlocks; bi++ {
		rest, err = ParseBlock(h, bi, rest, &b)
		if err != nil {
			return nil, err
		}
		offsets[bi+1] = int64(len(data) - len(rest))
	}
	return &Index{Offsets: offsets}, nil
}

// ScanIndex reconstructs the index of a container streamed from r, which
// must be positioned at the file header. The whole container is read once.
func ScanIndex(r io.Reader) (FileHeader, *Index, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return FileHeader{}, nil, err
	}
	h := br.Header()
	// Grown as blocks actually parse (each consumes ≥ 12 stream bytes), so
	// a lying block count in the header cannot force a huge allocation.
	offsets := make([]int64, 0, 64)
	var b Block
	for bi := uint32(0); bi < h.NumBlocks; bi++ {
		offsets = append(offsets, br.Offset())
		if err := br.Next(&b); err != nil {
			return h, nil, err
		}
	}
	offsets = append(offsets, br.Offset())
	return h, &Index{Offsets: offsets}, nil
}
