package format

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"gompresso/internal/lz77"
)

// indexContainer builds a Byte-variant multi-block container (optionally
// with an index trailer) plus the true block-record offsets.
func indexContainer(t *testing.T, src []byte, blockSize int, withIndex bool) ([]byte, FileHeader, []int64) {
	t.Helper()
	nb := (len(src) + blockSize - 1) / blockSize
	h := FileHeader{
		Variant:   VariantByte,
		Window:    lz77.DefaultWindow,
		MinMatch:  uint8(lz77.DefaultMinMatch),
		MaxMatch:  uint32(lz77.DefaultMaxMatch),
		BlockSize: uint32(blockSize),
		RawSize:   uint64(len(src)),
		NumBlocks: uint32(nb),
	}
	out := AppendHeader(nil, h)
	offsets := make([]int64, 0, nb+1)
	for i := 0; i < nb; i++ {
		lo, hi := i*blockSize, (i+1)*blockSize
		if hi > len(src) {
			hi = len(src)
		}
		ts, err := lz77.Parse(src[lo:hi], lz77.Options{})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := EncodeByte(ts)
		if err != nil {
			t.Fatal(err)
		}
		blk := Block{RawLen: hi - lo, NumSeqs: len(ts.Seqs), Payload: payload}
		offsets = append(offsets, int64(len(out)))
		out = AppendBlock(out, VariantByte, &blk)
	}
	offsets = append(offsets, int64(len(out)))
	if withIndex {
		out = AppendIndex(out, offsets)
	}
	return out, h, offsets
}

func indexTestSrc(n int) []byte {
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i>>3) ^ byte(i%251)
	}
	return src
}

func TestIndexTrailerRoundTrip(t *testing.T) {
	src := indexTestSrc(10000)
	comp, h, offsets := indexContainer(t, src, 2048, true)

	// ParseFile accepts and skips the trailer.
	f, err := ParseFile(comp)
	if err != nil {
		t.Fatalf("ParseFile with trailer: %v", err)
	}
	if len(f.Blocks) != int(h.NumBlocks) {
		t.Fatalf("parsed %d blocks, want %d", len(f.Blocks), h.NumBlocks)
	}

	// All three index sources agree with the true offsets.
	check := func(name string, idx *Index, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(idx.Offsets) != len(offsets) {
			t.Fatalf("%s: %d offsets, want %d", name, len(idx.Offsets), len(offsets))
		}
		for i := range offsets {
			if idx.Offsets[i] != offsets[i] {
				t.Fatalf("%s: offset[%d] = %d, want %d", name, i, idx.Offsets[i], offsets[i])
			}
		}
	}
	idx, err := ParseIndexTrailer(comp, h)
	check("ParseIndexTrailer", idx, err)
	idx, err = ReadIndexAt(bytes.NewReader(comp), int64(len(comp)), h)
	check("ReadIndexAt", idx, err)
	idx, err = BuildIndex(comp, h)
	check("BuildIndex", idx, err)
	_, idx, err = ScanIndex(bytes.NewReader(comp))
	check("ScanIndex", idx, err)

	// A container without a trailer has no trailer to read, but scans fine.
	plain, _, _ := indexContainer(t, src, 2048, false)
	if _, err := ReadIndexAt(bytes.NewReader(plain), int64(len(plain)), h); err == nil {
		t.Fatal("ReadIndexAt invented a trailer")
	}
	idx, err = BuildIndex(plain, h)
	check("BuildIndex plain", idx, err)
}

// BlockReader must absorb a valid trailer (same blocks, clean io.EOF) and
// report record offsets that match the index.
func TestBlockReaderTrailerAndOffsets(t *testing.T) {
	src := indexTestSrc(9000)
	comp, h, offsets := indexContainer(t, src, 2048, true)
	br, err := NewBlockReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	var b Block
	for i := uint32(0); i < h.NumBlocks; i++ {
		if br.Offset() != offsets[i] {
			t.Fatalf("block %d: Offset() = %d, want %d", i, br.Offset(), offsets[i])
		}
		if err := br.Next(&b); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	if br.Offset() != offsets[h.NumBlocks] {
		t.Fatalf("end Offset() = %d, want %d", br.Offset(), offsets[h.NumBlocks])
	}
	if err := br.Next(&b); err != io.EOF {
		t.Fatalf("after last block: %v, want io.EOF", err)
	}
}

// Resuming mid-container yields the remaining blocks and the same
// end-of-stream validation.
func TestBlockReaderResume(t *testing.T) {
	src := indexTestSrc(9000)
	for _, withIndex := range []bool{false, true} {
		comp, h, offsets := indexContainer(t, src, 2048, withIndex)
		for first := uint32(0); first <= h.NumBlocks; first++ {
			br := NewBlockReaderAt(bytes.NewReader(comp[offsets[first]:]), h, first, offsets[first])
			var b Block
			for i := first; i < h.NumBlocks; i++ {
				if err := br.Next(&b); err != nil {
					t.Fatalf("withIndex=%v first=%d block %d: %v", withIndex, first, i, err)
				}
				wantLen := 2048
				if i == h.NumBlocks-1 {
					wantLen = len(src) - int(i)*2048
				}
				if b.RawLen != wantLen {
					t.Fatalf("first=%d block %d: RawLen %d, want %d", first, i, b.RawLen, wantLen)
				}
			}
			if err := br.Next(&b); err != io.EOF {
				t.Fatalf("withIndex=%v first=%d: end error %v, want io.EOF", withIndex, first, err)
			}
		}
	}
}

// Trailing bytes that are not a valid trailer must still be rejected.
func TestIndexTrailerCorruption(t *testing.T) {
	src := indexTestSrc(9000)
	comp, _, _ := indexContainer(t, src, 2048, true)
	plain, _, _ := indexContainer(t, src, 2048, false)

	mutations := map[string][]byte{
		"junk after blocks":  append(append([]byte(nil), plain...), 1, 2, 3),
		"junk after trailer": append(append([]byte(nil), comp...), 0),
		"bad magic":          flipByte(comp, len(comp)-1),
		"bad varint area":    flipByte(comp, len(comp)-IndexFooterSize-1),
		"bad length":         flipByte(comp, len(comp)-IndexFooterSize+1),
	}
	for name, mut := range mutations {
		if _, err := ParseFile(mut); err == nil {
			t.Errorf("%s: ParseFile accepted a corrupt container", name)
		}
		br, err := NewBlockReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		var b Block
		for err == nil {
			err = br.Next(&b)
		}
		if err == io.EOF {
			t.Errorf("%s: BlockReader accepted a corrupt container", name)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xff
	return out
}

// Lying counts in a tiny crafted container must error without provoking
// count-proportional allocations (a 35-byte file claiming 2^28 blocks).
func TestIndexLyingCounts(t *testing.T) {
	h := FileHeader{
		Variant:   VariantByte,
		Window:    8 << 10,
		MinMatch:  4,
		MaxMatch:  64,
		BlockSize: 256 << 10,
		RawSize:   1 << 40,
		NumBlocks: 1 << 28,
	}
	tiny := AppendHeader(nil, h)
	if _, err := BuildIndex(tiny, h); err == nil {
		t.Fatal("BuildIndex accepted a 35-byte container claiming 2^28 blocks")
	}
	if _, _, err := ScanIndex(bytes.NewReader(tiny)); err == nil {
		t.Fatal("ScanIndex accepted a 35-byte container claiming 2^28 blocks")
	}
	// A crafted footer claiming 2^28 index entries in a short trailer.
	forged := append(append([]byte(nil), tiny...), 0, 0, 0, 0)
	forged = append(forged, binary.LittleEndian.AppendUint32(nil, 4)...)
	forged = append(forged, 'G', 'P', 'I', 'X')
	if _, err := ReadIndexAt(bytes.NewReader(forged), int64(len(forged)), h); err == nil {
		t.Fatal("ReadIndexAt accepted a forged trailer for 2^28 blocks")
	}
}

// A block record claiming a ~4 GiB payload must be detected by reading,
// not trusted with an up-front allocation.
func TestBlockReaderLyingPayloadLen(t *testing.T) {
	h := FileHeader{
		Variant:   VariantByte,
		Window:    8 << 10,
		MinMatch:  4,
		MaxMatch:  64,
		BlockSize: 256 << 10,
		RawSize:   1 << 10,
		NumBlocks: 1,
	}
	comp := AppendHeader(nil, h)
	comp = binary.LittleEndian.AppendUint32(comp, 1<<10)      // RawLen
	comp = binary.LittleEndian.AppendUint32(comp, 1)          // NumSeqs
	comp = binary.LittleEndian.AppendUint32(comp, 0xFFFFFFF0) // payloadLen lie
	comp = append(comp, make([]byte, 4096)...)                // far fewer bytes
	br, err := NewBlockReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	var b Block
	if err := br.Next(&b); err == nil {
		t.Fatal("BlockReader accepted a block claiming a 4 GiB payload")
	}
}
