package format

import (
	"fmt"
	"sync"

	"gompresso/internal/bitio"
	"gompresso/internal/huffman"
	"gompresso/internal/lz77"
)

// Fused host decode paths. The reference pipeline materializes a
// lz77.TokenStream per block (DecodeBit, then TokenStream.Decompress); the
// functions here go bitstream→output in a single pass with no intermediate
// token stream and no steady-state allocations: decode tables live in a
// pooled DecodeScratch, the bit buffer stays in registers across symbols
// (bitio.Cursor), and match expansion uses chunked copies (lz77.CopyWithin).

// Packed-entry layout shared by the fused tables. Unlike the generic
// huffman.Decoder LUT, entries pre-resolve symbol semantics so the hot loop
// never consults LenVal/OffVal:
//
//	bits 0–3   bits to consume (codeLen; a pair entry stores both codes' sum)
//	bit  4     length-symbol flag
//	bit  5     literal-pair flag
//	bits 8–15  literal byte, or first literal of a pair
//	bits 16–23 second literal of a pair
//	bits 8–12  extra-bit count ≤ 16    (length flag set)
//	bits 13–30 length base     ≤ 2^16  (length flag set)
//
// Offset-table entries pack codeLen (0–3), extra-bit count ≤ 20 (4–8) and
// the offset base ≤ 2^20 (9–29).
const (
	entryLenFlag  = 16
	entryPairFlag = 32
)

// pairTableBits caps the widened literal/length table. Each window whose
// first bits form a complete literal code followed by another complete
// literal code decodes BOTH in one lookup — the prefix property guarantees
// the second decode is the true next symbol. 2^13 entries is 32 KB, sized to
// stay L1-resident.
const pairTableBits = 13

// DecodeScratch holds the per-block decode tables the fused Bit path
// rebuilds for every block. Reusing one across blocks (or taking one from
// the package pool, or passing nil to DecodeBitInto) makes the steady state
// allocation-free.
type DecodeScratch struct {
	lit  []uint32 // 2^litBits entries, single-symbol
	off  []uint32
	pair []uint32 // 2^pairTableBits entries, literal pairs pre-merged
}

var scratchPool = sync.Pool{New: func() any { return new(DecodeScratch) }}

// GetScratch takes a DecodeScratch from the package pool.
//lint:allow poolescape sanctioned lifecycle helper, paired with PutScratch
func GetScratch() *DecodeScratch { return scratchPool.Get().(*DecodeScratch) }

// PutScratch returns a DecodeScratch to the package pool.
func PutScratch(sc *DecodeScratch) { scratchPool.Put(sc) }

func packLitLen(sym int, codeLen uint8) uint32 {
	if sym < 256 {
		return uint32(sym)<<8 | uint32(codeLen)
	}
	base, eb, _ := LenVal(sym)
	return base<<13 | uint32(eb)<<8 | entryLenFlag | uint32(codeLen)
}

func packOff(sym int, codeLen uint8) uint32 {
	base, eb, _ := OffVal(sym)
	return base<<9 | uint32(eb)<<4 | uint32(codeLen)
}

// buildPairTable widens the single-symbol table to pairTableBits and merges
// adjacent literal pairs into one entry. Windows that do not start two
// complete literal codes keep their single-symbol entry.
func buildPairTable(pair, lit []uint32) []uint32 {
	n := 1 << pairTableBits
	if cap(pair) < n {
		pair = make([]uint32, n)
	} else {
		pair = pair[:n]
	}
	litMask := uint32(len(lit) - 1)
	for w := 0; w < n; w++ {
		e1 := lit[uint32(w)&litMask]
		if e1&(entryLenFlag|entryPairFlag) == 0 && e1&15 != 0 {
			l1 := e1 & 15
			e2 := lit[(uint32(w)>>l1)&litMask]
			if l2 := e2 & 15; e2&(entryLenFlag|entryPairFlag) == 0 && l2 != 0 && l1+l2 <= pairTableBits {
				pair[w] = entryPairFlag | (l1 + l2) | (e1 & 0xff00) | (e2&0xff00)<<8
				continue
			}
		}
		pair[w] = e1
	}
	return pair
}

// errCorrupt is the fused paths' error constructor; the hot loops only ever
// take it on malformed input, so the fmt cost is irrelevant.
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{lz77.ErrCorrupt}, args...)...)
}

// DecodeBitInto decodes the whole block straight from the Huffman bitstream
// into dst, whose length must be the block's uncompressed size. The encoder
// writes sub-blocks back to back into one bitstream, so the sequential fused
// decoder ignores sub-block boundaries and decodes NumSeqs sequences from
// bit zero. sc may be nil, in which case a pooled scratch is used. Output is
// byte-identical to DecodeBit + TokenStream.Decompress on every valid
// stream.
func (b *BitBlock) DecodeBitInto(dst []byte, sc *DecodeScratch) error {
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	litBits := maxTreeBits(b.LitLenLengths)
	var err error
	// Unused windows (degenerate single-symbol trees only) become a bare
	// length-flag entry: codeLen 0, so the literal loop needs no per-symbol
	// validity branch; the once-per-sequence check after the loop catches it.
	sc.lit, err = huffman.FillTable(sc.lit, b.LitLenLengths, litBits, entryLenFlag, packLitLen)
	if err != nil {
		return errCorrupt("literal/length tree: %v", err)
	}
	var offTab []uint32
	var offMask uint64
	if anyNonZero(b.OffLengths) {
		sc.off, err = huffman.FillTable(sc.off, b.OffLengths, maxTreeBits(b.OffLengths), 0, packOff)
		if err != nil {
			return errCorrupt("offset tree: %v", err)
		}
		offTab, offMask = sc.off, uint64(len(sc.off)-1)
	}
	var totalBits int64
	for _, v := range b.SubBits {
		totalBits += v
	}
	if totalBits > int64(len(b.Payload))*8 {
		return errCorrupt("sub-block bits exceed payload")
	}

	c := bitio.NewCursor(b.Payload, 0)
	pos := 0
	if litBits <= pairTableBits {
		sc.pair = buildPairTable(sc.pair, sc.lit)
		pos, err = decodeSeqsPair(dst, c, b.NumSeqs, sc.pair, offTab, offMask)
	} else {
		pos, err = decodeSeqsSingle(dst, c, b.NumSeqs, sc.lit, uint64(len(sc.lit)-1), offTab, offMask)
	}
	if err != nil {
		return err
	}
	if pos != len(dst) {
		return errCorrupt("decompressed %d bytes, header says %d", pos, len(dst))
	}
	return nil
}

// decodeSeqsPair is the fused sequence loop over the pair-merged table.
// Worst-case consumption per refill: three 13-bit lookups plus 16 length
// extra bits = 55 of the guaranteed 56.
func decodeSeqsPair(dst []byte, c bitio.Cursor, nSeqs int, litTab []uint32, offTab []uint32, offMask uint64) (int, error) {
	const litMask = uint64(1)<<pairTableBits - 1
	pos := 0
	for n := 0; n < nSeqs; n++ {
		// Literal run, terminated by a length symbol: up to three lookups —
		// up to six literals — per refill.
		var e uint32
	litrun:
		for {
			c.Refill()
			e = litTab[c.Window(litMask)]
			c.Skip(uint(e & 15))
			if e&entryPairFlag != 0 {
				if uint(pos)+2 > uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				dst[pos+1] = byte(e >> 16)
				pos += 2
			} else if e&entryLenFlag != 0 {
				break litrun
			} else {
				if uint(pos) >= uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				pos++
			}
			e = litTab[c.Window(litMask)]
			c.Skip(uint(e & 15))
			if e&entryPairFlag != 0 {
				if uint(pos)+2 > uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				dst[pos+1] = byte(e >> 16)
				pos += 2
			} else if e&entryLenFlag != 0 {
				break litrun
			} else {
				if uint(pos) >= uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				pos++
			}
			e = litTab[c.Window(litMask)]
			c.Skip(uint(e & 15))
			if e&entryPairFlag != 0 {
				if uint(pos)+2 > uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				dst[pos+1] = byte(e >> 16)
				pos += 2
			} else if e&entryLenFlag != 0 {
				break litrun
			} else {
				if uint(pos) >= uint(len(dst)) {
					return pos, errCorrupt("output overrun at seq %d", n)
				}
				dst[pos] = byte(e >> 8)
				pos++
			}
		}
		if e&15 == 0 {
			return pos, errCorrupt("invalid lit/len code in seq %d", n)
		}
		matchLen := e >> 13
		if eb := uint(e>>8) & 31; eb > 0 {
			matchLen += uint32(c.Bits(eb))
		}
		if matchLen == 0 {
			continue
		}
		if offTab == nil {
			return pos, errCorrupt("match present but block has no offset tree")
		}
		c.Refill()
		e = offTab[c.Window(offMask)]
		c.Skip(uint(e & 15))
		if e&15 == 0 {
			return pos, errCorrupt("invalid offset code in seq %d", n)
		}
		off := e >> 9
		if eb := uint(e>>4) & 31; eb > 0 {
			off += uint32(c.Bits(eb))
		}
		if off == 0 || int(off) > pos || int(matchLen) > len(dst)-pos {
			return pos, errCorrupt("offset %d len %d at seq %d (pos %d of %d)",
				off, matchLen, n, pos, len(dst))
		}
		pos = lz77.CopyWithin(dst, pos, int(off), int(matchLen))
	}
	if c.Overrun() {
		return pos, errCorrupt("bitstream overrun")
	}
	return pos, nil
}

// decodeSeqsSingle is the fallback for trees deeper than pairTableBits
// (CWL 14–15): two single-symbol lookups per refill (2·15+16 ≤ 56).
func decodeSeqsSingle(dst []byte, c bitio.Cursor, nSeqs int, litTab []uint32, litMask uint64, offTab []uint32, offMask uint64) (int, error) {
	pos := 0
	for n := 0; n < nSeqs; n++ {
		var e uint32
	litrun:
		for {
			c.Refill()
			e = litTab[c.Window(litMask)]
			c.Skip(uint(e & 15))
			if e&entryLenFlag != 0 {
				break litrun
			}
			if uint(pos) >= uint(len(dst)) {
				return pos, errCorrupt("output overrun at seq %d", n)
			}
			dst[pos] = byte(e >> 8)
			pos++
			e = litTab[c.Window(litMask)]
			c.Skip(uint(e & 15))
			if e&entryLenFlag != 0 {
				break litrun
			}
			if uint(pos) >= uint(len(dst)) {
				return pos, errCorrupt("output overrun at seq %d", n)
			}
			dst[pos] = byte(e >> 8)
			pos++
		}
		if e&15 == 0 {
			return pos, errCorrupt("invalid lit/len code in seq %d", n)
		}
		matchLen := e >> 13
		if eb := uint(e>>8) & 31; eb > 0 {
			matchLen += uint32(c.Bits(eb))
		}
		if matchLen == 0 {
			continue
		}
		if offTab == nil {
			return pos, errCorrupt("match present but block has no offset tree")
		}
		c.Refill()
		e = offTab[c.Window(offMask)]
		c.Skip(uint(e & 15))
		if e&15 == 0 {
			return pos, errCorrupt("invalid offset code in seq %d", n)
		}
		off := e >> 9
		if eb := uint(e>>4) & 31; eb > 0 {
			off += uint32(c.Bits(eb))
		}
		if off == 0 || int(off) > pos || int(matchLen) > len(dst)-pos {
			return pos, errCorrupt("offset %d len %d at seq %d (pos %d of %d)",
				off, matchLen, n, pos, len(dst))
		}
		pos = lz77.CopyWithin(dst, pos, int(off), int(matchLen))
	}
	if c.Overrun() {
		return pos, errCorrupt("bitstream overrun")
	}
	return pos, nil
}

// DecodeByteInto decodes a Byte-variant payload of numSeqs sequences straight
// into dst (length = the block's uncompressed size), with no intermediate
// token stream and no allocations. Output is byte-identical to DecodeByte +
// TokenStream.Decompress.
func DecodeByteInto(dst, payload []byte, numSeqs int) error {
	pos, off := 0, 0
	for n := 0; n < numSeqs; n++ {
		p, next, err := ParseSeqByte(payload, off)
		if err != nil {
			return fmt.Errorf("format: seq %d: %w", n, err)
		}
		off = next
		s := p.Seq
		if int(s.LitLen) > len(dst)-pos {
			return errCorrupt("output overrun at seq %d", n)
		}
		pos += copy(dst[pos:], payload[p.LitOff:p.LitOff+int(s.LitLen)])
		if s.MatchLen == 0 {
			continue
		}
		if int(s.Offset) > pos || int(s.MatchLen) > len(dst)-pos {
			return errCorrupt("offset %d len %d at seq %d (pos %d of %d)",
				s.Offset, s.MatchLen, n, pos, len(dst))
		}
		pos = lz77.CopyWithin(dst, pos, int(s.Offset), int(s.MatchLen))
	}
	if off != len(payload) {
		return errCorrupt("%d trailing payload bytes", len(payload)-off)
	}
	if pos != len(dst) {
		return errCorrupt("decompressed %d bytes, header says %d", pos, len(dst))
	}
	return nil
}
