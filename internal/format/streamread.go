package format

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"gompresso/internal/huffman"
)

// BlockReader incrementally parses a Gompresso container from an io.Reader,
// one block at a time, without buffering the whole file — the streaming
// counterpart of ParseFile used by the public gompresso.Reader. Block fields
// are decoded into caller-provided storage that is reused across calls, so a
// steady-state read loop performs no allocations once buffers have grown to
// the stream's block size.
type BlockReader struct {
	r      *bufio.Reader
	hdr    FileHeader
	left   uint32 // blocks not yet returned
	seen   uint64 // raw bytes described by returned blocks
	off    int64  // container offset of the next unread byte
	head   [HeaderSize]byte
	packed []byte // scratch for nibble-packed code-length arrays
}

// NewBlockReader reads and validates the file header.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := &BlockReader{r: bufio.NewReaderSize(r, 64<<10)}
	if _, err := io.ReadFull(br.r, br.head[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrFormat, err)
	}
	h, err := ParseHeader(br.head[:])
	if err != nil {
		return nil, err
	}
	br.hdr = h
	br.left = h.NumBlocks
	br.off = HeaderSize
	return br, nil
}

// NewBlockReaderAt resumes block-at-a-time reading in the middle of a
// container whose header h has already been parsed: r must be positioned at
// block firstBlock's record, whose container offset is off (both typically
// from an Index). The returned reader yields blocks firstBlock..NumBlocks-1
// and then applies the same end-of-stream validation as a full read.
func NewBlockReaderAt(r io.Reader, h FileHeader, firstBlock uint32, off int64) *BlockReader {
	seen := uint64(firstBlock) * uint64(h.BlockSize)
	if seen > h.RawSize {
		seen = h.RawSize
	}
	return &BlockReader{
		r:    bufio.NewReaderSize(r, 64<<10),
		hdr:  h,
		left: h.NumBlocks - firstBlock,
		seen: seen,
		off:  off,
	}
}

// Header returns the parsed file header.
func (br *BlockReader) Header() FileHeader { return br.hdr }

// Offset returns the container offset of the next unread byte — after Next
// returns block i, the offset where block i+1's record starts.
func (br *BlockReader) Offset() int64 { return br.off }

// Next reads the next block into b, reusing b's slices when they have
// capacity. It returns io.EOF after the last block, verifying that the
// stream's blocks add up to the header's raw size and that no trailing bytes
// remain.
func (br *BlockReader) Next(b *Block) error {
	if br.left == 0 {
		if br.seen != br.hdr.RawSize {
			return fmt.Errorf("%w: blocks total %d raw bytes, header says %d", ErrFormat, br.seen, br.hdr.RawSize)
		}
		// The only bytes allowed after the last block are a valid index
		// trailer whose offsets reproduce the block section just read.
		tail, err := io.ReadAll(io.LimitReader(br.r, maxTrailerSize(br.hdr)+1))
		if err != nil {
			return fmt.Errorf("%w: reading past last block: %w", ErrFormat, err)
		}
		if len(tail) == 0 {
			return io.EOF
		}
		idx, err := parseIndexBytes(tail, br.hdr)
		if err != nil || idx.Offsets[br.hdr.NumBlocks] != br.off {
			return fmt.Errorf("%w: trailing bytes after last block", ErrFormat)
		}
		if _, err := br.r.ReadByte(); err != io.EOF {
			return fmt.Errorf("%w: trailing bytes after index trailer", ErrFormat)
		}
		br.off += int64(len(tail))
		return io.EOF
	}
	bi := br.hdr.NumBlocks - br.left

	var fixed [12]byte
	if _, err := io.ReadFull(br.r, fixed[:]); err != nil {
		return fmt.Errorf("%w: block %d: truncated header (%w)", ErrFormat, bi, err)
	}
	br.off += 12
	b.RawLen = int(binary.LittleEndian.Uint32(fixed[:]))
	b.NumSeqs = int(binary.LittleEndian.Uint32(fixed[4:]))
	payloadLen := int(binary.LittleEndian.Uint32(fixed[8:]))
	if br.hdr.BlockSize != 0 && uint32(b.RawLen) > br.hdr.BlockSize {
		return fmt.Errorf("%w: block %d: raw length %d exceeds block size %d", ErrFormat, bi, b.RawLen, br.hdr.BlockSize)
	}
	if bi != br.hdr.NumBlocks-1 && uint32(b.RawLen) != br.hdr.BlockSize {
		return fmt.Errorf("%w: block %d: non-final block is %d bytes, block size is %d", ErrFormat, bi, b.RawLen, br.hdr.BlockSize)
	}
	b.LitLenLengths = b.LitLenLengths[:0]
	b.OffLengths = b.OffLengths[:0]
	b.SubBits = b.SubBits[:0]
	b.SubLits = b.SubLits[:0]

	if br.hdr.Variant == VariantBit {
		var err error
		b.LitLenLengths, err = br.readLengths(b.LitLenLengths, LitLenSyms)
		if err != nil {
			return fmt.Errorf("%w: block %d: %w", ErrFormat, bi, err)
		}
		b.OffLengths, err = br.readLengths(b.OffLengths, OffSyms)
		if err != nil {
			return fmt.Errorf("%w: block %d: %w", ErrFormat, bi, err)
		}
		var cnt [4]byte
		if _, err := io.ReadFull(br.r, cnt[:]); err != nil {
			return fmt.Errorf("%w: block %d: truncated sub-block count (%w)", ErrFormat, bi, err)
		}
		br.off += 4
		numSubs := int(binary.LittleEndian.Uint32(cnt[:]))
		if br.hdr.SeqsPerSub == 0 {
			return fmt.Errorf("%w: block %d: zero sequences per sub-block", ErrFormat, bi)
		}
		want := 0
		if b.NumSeqs > 0 {
			want = (b.NumSeqs + int(br.hdr.SeqsPerSub) - 1) / int(br.hdr.SeqsPerSub)
		}
		if numSubs != want {
			return fmt.Errorf("%w: block %d: %d sub-blocks for %d seqs (%d per sub)", ErrFormat, bi, numSubs, b.NumSeqs, br.hdr.SeqsPerSub)
		}
		var totalBits int64
		cr := countingByteReader{r: br.r}
		for s := 0; s < numSubs; s++ {
			v, err := binary.ReadUvarint(&cr)
			if err != nil {
				return fmt.Errorf("%w: block %d: bad sub-block size varint", ErrFormat, bi)
			}
			lv, err := binary.ReadUvarint(&cr)
			if err != nil {
				return fmt.Errorf("%w: block %d: bad sub-block literal varint", ErrFormat, bi)
			}
			b.SubBits = append(b.SubBits, int64(v))
			b.SubLits = append(b.SubLits, int32(lv))
			totalBits += int64(v)
		}
		if totalBits > int64(payloadLen)*8 {
			return fmt.Errorf("%w: block %d: sub-block bits %d exceed payload", ErrFormat, bi, totalBits)
		}
		br.off += cr.n
	}

	if err := br.readPayload(b, payloadLen); err != nil {
		return fmt.Errorf("%w: block %d: truncated payload (%w)", ErrFormat, bi, err)
	}
	br.off += int64(payloadLen)
	br.seen += uint64(b.RawLen)
	br.left--
	return nil
}

// readPayload fills b.Payload with payloadLen bytes from the stream. The
// length field is attacker-controlled, so when the buffer must grow it
// grows incrementally, verifying each chunk actually arrives — a lying
// length cannot force an allocation larger than the bytes present. The
// steady state (buffer already at block size) stays one ReadFull, no
// allocations.
func (br *BlockReader) readPayload(b *Block, payloadLen int) error {
	if cap(b.Payload) >= payloadLen {
		b.Payload = b.Payload[:payloadLen]
		_, err := io.ReadFull(br.r, b.Payload)
		return err
	}
	const chunk = 1 << 20
	b.Payload = b.Payload[:0]
	for len(b.Payload) < payloadLen {
		n := payloadLen - len(b.Payload)
		if n > chunk {
			n = chunk
		}
		start := len(b.Payload)
		b.Payload = slices.Grow(b.Payload, n)[:start+n]
		if _, err := io.ReadFull(br.r, b.Payload[start:]); err != nil {
			return err
		}
	}
	return nil
}

// countingByteReader counts the bytes ReadUvarint consumes so Next can
// account for variable-length fields in the container offset.
type countingByteReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// readLengths reads an n-symbol nibble-packed code-length array into dst.
func (br *BlockReader) readLengths(dst []uint8, n int) ([]uint8, error) {
	need := huffman.LengthsSize(n)
	if cap(br.packed) < need {
		br.packed = make([]byte, need)
	}
	packed := br.packed[:need]
	if _, err := io.ReadFull(br.r, packed); err != nil {
		return dst, fmt.Errorf("tree truncated: %w", err)
	}
	br.off += int64(need)
	if cap(dst) < n {
		dst = make([]uint8, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		b := packed[i/2]
		if i%2 == 0 {
			dst[i] = b & 0x0f
		} else {
			dst[i] = b >> 4
		}
	}
	return dst, nil
}
