package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForShareCoverageAndBounds(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, w := range []int{0, 1, 3, 64} {
			want := Workers(n, w)
			var mu sync.Mutex
			seen := make(map[int]int)
			ForShare(n, w, func(share, i int) {
				if share < 0 || (n > 0 && share >= want) {
					t.Errorf("n=%d w=%d: share %d out of [0,%d)", n, w, share, want)
				}
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			if len(seen) != n {
				t.Fatalf("n=%d w=%d: %d items visited", n, w, len(seen))
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: item %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

// Results must arrive in submission order regardless of completion order.
func TestOrderedDelivery(t *testing.T) {
	o := NewOrdered[int](4, 8)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			v := i
			if !o.Submit(func() int {
				if v%7 == 0 {
					runtime.Gosched() // perturb completion order
				}
				return v
			}) {
				t.Error("Submit returned false without Stop")
				break
			}
		}
		o.Finish()
	}()
	for i := 0; i < n; i++ {
		v, ok := o.Next()
		if !ok {
			t.Fatalf("queue finished after %d of %d results", i, n)
		}
		if v != i {
			t.Fatalf("result %d delivered out of order (got %d)", i, v)
		}
	}
	if _, ok := o.Next(); ok {
		t.Fatal("Next returned a result after Finish drained")
	}
	o.Stop()
	o.Wait()
}

// With a stalled consumer, Submit must block once readahead results are
// pending — the pipeline's back-pressure bound.
func TestOrderedBackPressure(t *testing.T) {
	const readahead = 3
	o := NewOrdered[int](2, readahead)
	var accepted atomic.Int32
	go func() {
		for i := 0; i < 100; i++ {
			if !o.Submit(func() int { return 0 }) {
				return
			}
			accepted.Add(1)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if got := accepted.Load(); got > readahead {
		t.Fatalf("%d submissions accepted with no consumer; readahead is %d", got, readahead)
	}
	// Draining the queue lets the producer make progress again.
	for i := 0; i < readahead; i++ {
		if _, ok := o.Next(); !ok {
			t.Fatal("queue finished unexpectedly")
		}
	}
	deadline := time.After(2 * time.Second)
	for accepted.Load() <= readahead {
		select {
		case <-deadline:
			t.Fatal("producer did not resume after consumer drained")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	o.Stop()
	o.Wait()
}

// Stop must unblock a producer stuck in Submit and make further Submit
// calls return false, while results already queued stay readable.
func TestOrderedStop(t *testing.T) {
	o := NewOrdered[int](1, 2)
	blocked := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			v := i
			if !o.Submit(func() int { return v }) {
				close(blocked)
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	o.Stop()
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not unblock Submit")
	}
	o.Wait()
	// Queued results are still delivered in order.
	for i := 0; i < 2; i++ {
		v, ok := o.Next()
		if !ok || v != i {
			t.Fatalf("queued result %d: got %d, ok=%v", i, v, ok)
		}
	}
}
