package parallel

import "sync"

// Ordered fans tasks out to the shared worker pool and delivers their
// results in submission order — the ordered-completion primitive under the
// streaming decompression pipeline. A producer goroutine calls Submit, a
// consumer calls Next; neither needs to know about the other's pace:
//
//   - At most `workers` submitted tasks execute concurrently (a semaphore,
//     so one Ordered cannot monopolize the shared pool).
//   - At most `readahead` results are in flight — submitted but not yet
//     handed to Next. When the consumer stalls, Submit blocks: that is the
//     back-pressure bound that keeps memory O(readahead × task footprint).
//
// Tasks run on the persistent pool when it has a free slot and inline on
// the submitting goroutine otherwise, so an Ordered can never deadlock
// behind other pool users. Tasks must not block indefinitely: a task queued
// or running always produces exactly one result, which is what lets Next
// use a plain receive and Wait drain cleanly after Stop.
type Ordered[T any] struct {
	slots    chan chan T   // submission-ordered delivery queue, cap = readahead
	sem      chan struct{} // concurrency limiter, cap = workers
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewOrdered returns an Ordered running at most workers concurrent tasks
// with at most readahead undelivered results. workers <= 0 selects the pool
// size; readahead is clamped up to workers (a smaller value would idle
// workers for no memory benefit).
func NewOrdered[T any](workers, readahead int) *Ordered[T] {
	once.Do(start)
	if workers <= 0 || workers > size {
		workers = size
	}
	if readahead < workers {
		readahead = workers
	}
	return &Ordered[T]{
		slots: make(chan chan T, readahead),
		sem:   make(chan struct{}, workers),
		stop:  make(chan struct{}),
	}
}

// Submit queues fn for execution and reserves the next delivery slot. It
// blocks while readahead results are undelivered or workers tasks are
// running, and returns false — without running fn — once Stop has been
// called. A true return guarantees fn's result will reach Next.
func (o *Ordered[T]) Submit(fn func() T) bool {
	slot := make(chan T, 1)
	select {
	case o.slots <- slot:
	case <-o.stop:
		return false
	}
	// No stop-select here: a queued slot must always receive a result, and
	// the wait is bounded because running tasks never block indefinitely.
	o.sem <- struct{}{}
	o.wg.Add(1)
	run := func() {
		defer o.wg.Done()
		slot <- fn()
		<-o.sem
	}
	select {
	case tasks <- run:
	default:
		run()
	}
	return true
}

// Finish closes the delivery queue: after all submitted results are
// consumed, Next returns ok=false. Submit must not be called after Finish.
func (o *Ordered[T]) Finish() { close(o.slots) }

// Next returns the next result in submission order, blocking until it is
// ready. ok is false once the queue is finished and drained.
func (o *Ordered[T]) Next() (v T, ok bool) {
	slot, ok := <-o.slots
	if !ok {
		return v, false
	}
	return <-slot, true
}

// Stop makes all current and future Submit calls return false. Results
// already queued remain readable. Safe to call more than once.
func (o *Ordered[T]) Stop() { o.stopOnce.Do(func() { close(o.stop) }) }

// Wait blocks until every dispatched task has finished. Call after Stop
// (and after the producer has exited) before reclaiming resources that
// running tasks may still hold.
func (o *Ordered[T]) Wait() { o.wg.Wait() }
