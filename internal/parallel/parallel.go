// Package parallel provides the persistent host worker pool shared by the
// compression pipeline and the device simulator. Callers previously spawned
// one goroutine per block per call; serving workloads pay that churn on
// every request. The pool starts GOMAXPROCS workers once, lazily, and every
// call dispatches a handful of strided shares instead of per-item
// goroutines.
package parallel

import (
	"runtime"
	"sync"
)

var (
	once  sync.Once
	tasks chan func()
	size  int
)

func start() {
	size = runtime.GOMAXPROCS(0)
	tasks = make(chan func(), size)
	for i := 0; i < size; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// Workers returns the number of concurrent executors For and ForShare will
// actually use for n items and a requested worker count — the clamp applied
// by both. Callers use it to size per-share state (scratch buffers) before
// a ForShare call.
func Workers(n, workers int) int {
	once.Do(start)
	if workers <= 0 || workers > size {
		workers = size
	}
	if workers > n {
		workers = n
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using at most workers concurrent
// executors: up to workers-1 strided shares on the persistent pool, plus one
// share inline on the caller. The inline share guarantees progress even when
// the pool is saturated by concurrent calls; if the pool's queue is full, a
// share simply runs inline too, so a call can never deadlock and never
// blocks behind unrelated work. workers ≤ 0 selects the pool size.
func For(n, workers int, fn func(i int)) {
	ForShare(n, workers, func(_, i int) { fn(i) })
}

// ForShare is For with the executing share's index passed to fn: every call
// with the same share value runs on the same executor, and share is always
// in [0, Workers(n, workers)), so callers can hoist per-worker state (e.g.
// decode scratch) out of the per-item body without locking.
func ForShare(n, workers int, fn func(share, i int)) {
	if n == 0 {
		return
	}
	workers = Workers(n, workers)
	var wg sync.WaitGroup
	for t := 1; t < workers; t++ {
		share := t
		task := func() {
			defer wg.Done()
			for i := share; i < n; i += workers {
				fn(share, i)
			}
		}
		wg.Add(1)
		select {
		case tasks <- task:
		default:
			task()
		}
	}
	for i := 0; i < n; i += workers {
		fn(0, i)
	}
	wg.Wait()
}
