// Package gzidx persists deflate seek indexes as sidecar files, turning
// arbitrary foreign gzip/zlib streams into randomly-accessible containers
// (the rapidgzip trick): after any full decode has captured checkpoints,
// the sidecar stores each checkpoint's compressed bit offset, decompressed
// offset, and 32 KiB window snapshot (compressed with our own Bit codec),
// guarded by a CRC-32 and staleness metadata keyed to the source's size
// and mtime.
//
// Wire format (GZX1, little-endian):
//
//	magic   "GZX1"
//	u8      version (1)
//	u8      deflate form (gzip/zlib/raw)
//	u16     reserved (0)
//	i64     source compressed size
//	i64     source mtime (UnixNano)
//	i64     decompressed size
//	u32     member count
//	u32     checkpoint count
//	per checkpoint:
//	  i64   compressed bit offset
//	  i64   decompressed offset
//	  u8    window encoding (0 = raw bytes, 1 = Gompresso/Bit container)
//	  u16   window length (decoded)
//	  u32   stored window bytes
//	  ...   stored window
//	u32     CRC-32 (IEEE) of every preceding byte
package gzidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"gompresso/internal/core"
	"gompresso/internal/deflate"
	"gompresso/internal/format"
)

// Ext is the sidecar file suffix: `object.gz` indexes to `object.gz.gzx`.
const Ext = ".gzx"

const (
	magic   = "GZX1"
	version = 1

	winEncRaw = 0 // window stored verbatim
	winEncBit = 1 // window stored as a Gompresso/Bit container

	maxWindow = 32768

	// MaxSidecar bounds how many bytes a loader will read: windows cap a
	// sidecar at ~32 KiB per megabyte of decompressed data, so even a
	// terabyte-scale object stays far under this. Anything larger is
	// corrupt or hostile.
	MaxSidecar = 256 << 20
)

// ErrSidecar is wrapped by every malformed- or mismatched-sidecar failure,
// so callers can treat "bad sidecar" uniformly (ignore and rebuild) while
// still logging the specific cause.
var ErrSidecar = errors.New("invalid seek-index sidecar")

func badf(msg string, args ...any) error {
	return fmt.Errorf("gzidx: %w: %s", ErrSidecar, fmt.Sprintf(msg, args...))
}

// Meta is the staleness key stored alongside the index: the source file's
// size and mtime at build time. A sidecar whose Meta disagrees with the
// live source must be ignored and rebuilt.
type Meta struct {
	SrcSize  int64
	SrcMtime int64 // UnixNano
}

// Stale reports whether the sidecar no longer describes a source of the
// given size and mtime.
func (m Meta) Stale(size int64, mtime time.Time) bool {
	return m.SrcSize != size || m.SrcMtime != mtime.UnixNano()
}

// Build runs a full sequential decode of data purely to capture an index —
// the offline path (`gompresso index`) and tests. Servers should not call
// this: they hook CollectIndex into a decode they were doing anyway.
func Build(data []byte, form deflate.Format, spacing int64, opt deflate.Options) (*deflate.Index, error) {
	r, err := deflate.NewReaderBytes(nil, data, form, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.CollectIndex(spacing); err != nil {
		return nil, err
	}
	if _, err := r.WriteTo(io.Discard); err != nil {
		return nil, err
	}
	return r.Index()
}

// Encode serializes idx with staleness metadata into sidecar wire format.
// Windows are compressed with the Bit codec when that wins, stored raw
// otherwise.
func Encode(idx *deflate.Index, srcMtime time.Time) ([]byte, error) {
	if err := idx.Validate(idx.SrcSize); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 40+len(idx.Checkpoints)*256)
	buf = append(buf, magic...)
	buf = append(buf, version, byte(idx.Form), 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(idx.SrcSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(srcMtime.UnixNano()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(idx.RawSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(idx.Members))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(idx.Checkpoints)))
	for i := range idx.Checkpoints {
		cp := &idx.Checkpoints[i]
		if len(cp.Window) > maxWindow {
			return nil, badf("checkpoint %d window %d bytes", i, len(cp.Window))
		}
		enc, stored := byte(winEncRaw), cp.Window
		if len(cp.Window) > 0 {
			comp, _, err := core.Compress(cp.Window, core.Options{Variant: format.VariantBit, Workers: 1})
			if err == nil && len(comp) < len(cp.Window) {
				enc, stored = winEncBit, comp
			}
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Bit))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Out))
		buf = append(buf, enc)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cp.Window)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stored)))
		buf = append(buf, stored...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode parses a sidecar, verifying the trailing CRC and the decoded
// index's internal consistency. All failures wrap ErrSidecar.
func Decode(data []byte) (*deflate.Index, Meta, error) {
	var meta Meta
	if len(data) < 44 || string(data[:4]) != magic {
		return nil, meta, badf("missing magic")
	}
	if data[4] != version {
		return nil, meta, badf("unknown version %d", data[4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, meta, badf("checksum mismatch")
	}
	idx := &deflate.Index{Form: deflate.Format(data[5])}
	meta.SrcSize = int64(binary.LittleEndian.Uint64(data[8:]))
	meta.SrcMtime = int64(binary.LittleEndian.Uint64(data[16:]))
	idx.SrcSize = meta.SrcSize
	idx.RawSize = int64(binary.LittleEndian.Uint64(data[24:]))
	idx.Members = int(binary.LittleEndian.Uint32(data[32:]))
	n := binary.LittleEndian.Uint32(data[36:])
	if n > uint32(len(body)/21) { // 21 bytes is the minimum checkpoint record
		return nil, meta, badf("checkpoint count %d larger than sidecar", n)
	}
	idx.Checkpoints = make([]deflate.Checkpoint, n)
	off := 40
	for i := range idx.Checkpoints {
		if off+23 > len(body) {
			return nil, meta, badf("checkpoint %d truncated", i)
		}
		cp := &idx.Checkpoints[i]
		cp.Bit = int64(binary.LittleEndian.Uint64(body[off:]))
		cp.Out = int64(binary.LittleEndian.Uint64(body[off+8:]))
		enc := body[off+16]
		wlen := int(binary.LittleEndian.Uint16(body[off+17:]))
		clen := int(binary.LittleEndian.Uint32(body[off+19:]))
		off += 23
		if wlen > maxWindow || clen > len(body)-off {
			return nil, meta, badf("checkpoint %d window fields out of range", i)
		}
		stored := body[off : off+clen]
		off += clen
		switch enc {
		case winEncRaw:
			if clen != wlen {
				return nil, meta, badf("checkpoint %d raw window length mismatch", i)
			}
			cp.Window = append([]byte(nil), stored...)
		case winEncBit:
			win, _, err := core.Decompress(stored, core.DecompressOptions{Engine: core.EngineHost, Workers: 1})
			if err != nil {
				return nil, meta, badf("checkpoint %d window: %v", i, err)
			}
			if len(win) != wlen {
				return nil, meta, badf("checkpoint %d window decoded to %d bytes, want %d", i, len(win), wlen)
			}
			cp.Window = win
		default:
			return nil, meta, badf("checkpoint %d unknown window encoding %d", i, enc)
		}
	}
	if off != len(body) {
		return nil, meta, badf("%d trailing bytes", len(body)-off)
	}
	if err := idx.Validate(meta.SrcSize); err != nil {
		return nil, meta, fmt.Errorf("gzidx: %w: %w", ErrSidecar, err)
	}
	return idx, meta, nil
}

// SidecarPath is the canonical sidecar name for a source path.
func SidecarPath(src string) string { return src + Ext }

// WriteFileAtomic persists an encoded sidecar: parents created, written to
// a temp file in the destination directory, fsynced, then renamed into
// place so readers never observe a partial sidecar.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads, decodes, and validates the sidecar at path against the
// live source's size and mtime. A missing file returns an error satisfying
// os.IsNotExist; a present-but-unusable sidecar wraps ErrSidecar.
func LoadFile(path string, srcSize int64, srcMtime time.Time) (*deflate.Index, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() > MaxSidecar {
		return nil, badf("sidecar is %d bytes", st.Size())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	idx, meta, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if meta.Stale(srcSize, srcMtime) {
		return nil, badf("stale: built for size=%d mtime=%d", meta.SrcSize, meta.SrcMtime)
	}
	return idx, nil
}
