package gzidx

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gompresso/internal/deflate"
	"gompresso/internal/deflate/corpus"
)

func testIndex(t *testing.T) (*deflate.Index, []byte) {
	t.Helper()
	data := corpus.Files()["window.gz"]
	idx, err := Build(data, deflate.FormatGzip, 8<<10, deflate.Options{Workers: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx, data
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	idx, data := testIndex(t)
	mtime := time.Unix(1700000000, 123456789)
	enc, err := Encode(idx, mtime)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, meta, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if meta.SrcSize != int64(len(data)) || meta.SrcMtime != mtime.UnixNano() {
		t.Fatalf("meta = %+v", meta)
	}
	if got.Form != idx.Form || got.RawSize != idx.RawSize || got.Members != idx.Members || got.SrcSize != idx.SrcSize {
		t.Fatalf("header fields differ: %+v vs %+v", got, idx)
	}
	if len(got.Checkpoints) != len(idx.Checkpoints) {
		t.Fatalf("%d checkpoints, want %d", len(got.Checkpoints), len(idx.Checkpoints))
	}
	for i := range idx.Checkpoints {
		a, b := &idx.Checkpoints[i], &got.Checkpoints[i]
		if a.Bit != b.Bit || a.Out != b.Out || !bytes.Equal(a.Window, b.Window) {
			t.Fatalf("checkpoint %d differs", i)
		}
	}
	if meta.Stale(int64(len(data)), mtime) {
		t.Fatal("fresh sidecar reported stale")
	}
	if !meta.Stale(int64(len(data))+1, mtime) || !meta.Stale(int64(len(data)), mtime.Add(time.Second)) {
		t.Fatal("size/mtime change not reported stale")
	}
}

// TestDecodeCorrupt flips every byte position (stride to keep runtime
// sane) and checks Decode rejects the damage — the trailing CRC makes
// this exhaustive in spirit.
func TestDecodeCorrupt(t *testing.T) {
	idx, _ := testIndex(t)
	enc, err := Encode(idx, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(enc); pos += 7 {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x01
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted corruption at byte %d", pos)
		} else if !errors.Is(err, ErrSidecar) {
			t.Fatalf("corruption at byte %d: error %v does not wrap ErrSidecar", pos, err)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	idx, _ := testIndex(t)
	enc, err := Encode(idx, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 20, 43, len(enc) / 2, len(enc) - 1} {
		if n >= len(enc) {
			continue
		}
		if _, _, err := Decode(enc[:n]); !errors.Is(err, ErrSidecar) {
			t.Fatalf("Decode of %d/%d bytes: %v", n, len(enc), err)
		}
	}
}

func TestLoadFile(t *testing.T) {
	idx, data := testIndex(t)
	mtime := time.Unix(1700000000, 0)
	enc, err := Encode(idx, mtime)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "obj.gz"+Ext)
	if err := WriteFileAtomic(path, enc); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d entries in sidecar dir, want 1", len(ents))
	}
	if _, err := LoadFile(path, int64(len(data)), mtime); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	// Stale by size and by mtime.
	if _, err := LoadFile(path, int64(len(data))-1, mtime); !errors.Is(err, ErrSidecar) {
		t.Fatalf("stale size: %v", err)
	}
	if _, err := LoadFile(path, int64(len(data)), mtime.Add(time.Minute)); !errors.Is(err, ErrSidecar) {
		t.Fatalf("stale mtime: %v", err)
	}
	// Missing file surfaces as not-exist, so callers can rebuild quietly.
	if _, err := LoadFile(filepath.Join(dir, "nope"), 0, mtime); !os.IsNotExist(err) {
		t.Fatalf("missing sidecar: %v", err)
	}
}

// TestWindowCompression checks that compressible windows actually take
// the Bit-codec path (enc=1) and still roundtrip.
func TestWindowCompression(t *testing.T) {
	idx, _ := testIndex(t)
	var withWin *deflate.Checkpoint
	for i := range idx.Checkpoints {
		if len(idx.Checkpoints[i].Window) > 0 {
			withWin = &idx.Checkpoints[i]
			break
		}
	}
	if withWin == nil {
		t.Fatal("no checkpoint with a window in test index")
	}
	enc, err := Encode(idx, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// The corpus windows are XML-ish text: the sidecar must be smaller
	// than the raw windows it stores, proving compression engaged.
	var rawWin int
	for i := range idx.Checkpoints {
		rawWin += len(idx.Checkpoints[i].Window)
	}
	if len(enc) >= rawWin+44+23*len(idx.Checkpoints) {
		t.Fatalf("sidecar %d bytes ≥ raw windows %d + framing: compression never engaged", len(enc), rawWin)
	}
}
