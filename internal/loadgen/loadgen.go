// Package loadgen is the open-loop load harness for gompresso serve:
// it fires a seeded, zipfian-popularity, mixed-range-size request
// schedule at a target (in-process handler or remote URL) at a fixed
// arrival rate, and records ground-truth latency for every request in
// an HDR-style histogram.
//
// Open-loop is the load-bearing property. A closed-loop client (fixed
// worker pool, next request after the previous response) slows its own
// arrival rate exactly when the server degrades, so the latencies it
// reports omit the queueing delay real independent clients would see.
// Here every request's latency clock starts at its *scheduled* arrival
// instant: if the server (or the client's own dispatch loop) falls
// behind, that lag is measured, not absorbed.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the target server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil gets a keep-alive tuned default.
	Client *http.Client
	// Objects is the corpus the schedule draws from (names resolve
	// relative to BaseURL). Sizes bound the generated ranges.
	Objects []Object
	// RPS is the open-loop arrival rate (Poisson mean), required > 0.
	RPS float64
	// Duration is the total run length, split into three equal phases:
	// cold, warm, hot.
	Duration time.Duration
	// ZipfS is the popularity exponent (0 = uniform).
	ZipfS float64
	// Ranges is the request-size mix; nil = DefaultRangeMix.
	Ranges []RangeClass
	// Deadline bounds each request; 0 = no per-request deadline.
	Deadline time.Duration
	// Seed fixes the whole schedule.
	Seed uint64
	// Closed switches the run to closed-loop: at most one request in
	// flight, the next dispatched at its scheduled instant or when the
	// previous completes, whichever is later. This deliberately gives up
	// the open-loop property — use it only for clock calibration, where
	// the point is comparing the harness's service clock against the
	// server's own histogram over *isolated* requests. Under concurrency
	// on a small box, tail requests accumulate client-side scheduling
	// and socket-drain time the server clock cannot see, so an open-loop
	// tail is the wrong instrument for validating /metrics; a serial run
	// makes both clocks bracket the same work.
	Closed bool
}

// Phase names, in order. Cold starts against empty caches, warm and hot
// measure the steady state the SLO actually covers.
var PhaseNames = [3]string{"cold", "warm", "hot"}

// PhaseReport is the measured outcome of one phase (or the whole run).
type PhaseReport struct {
	Phase    string `json:"phase"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	Shed     int64  `json:"shed"`
	Timeout  int64  `json:"timeout"`
	Errors   int64  `json:"errors"`
	// ErrorRate counts everything that is not an intentional response:
	// timeouts + transport/status errors, over all requests. Sheds are
	// reported separately — a 503 with Retry-After is the server
	// working as designed, and folding it into errors would hide real
	// failures behind load shedding.
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`
	// Latency quantiles over OK responses only, milliseconds. Shed and
	// errored requests answer fast for the wrong reason; mixing them in
	// would flatter the tail.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Service latency is clocked from the moment the request is actually
	// sent, not its scheduled arrival — the per-request cost the server
	// itself can see. The headline quantiles above charge open-loop
	// dispatch lag (the SLO view); these don't, which makes them the
	// number to cross-check against the server's own /metrics histogram.
	ServiceP50Ms float64 `json:"service_p50_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`
	// AchievedRPS is completions/second; under open-loop overload it
	// stays below the configured rate while latency grows.
	AchievedRPS float64 `json:"achieved_rps"`
	Bytes       int64   `json:"bytes"`
}

// Report is the full result of a run.
type Report struct {
	Target   string        `json:"target"`
	RPS      float64       `json:"rps"`
	Duration float64       `json:"duration_s"`
	ZipfS    float64       `json:"zipf_s"`
	Objects  int           `json:"objects"`
	Seed     uint64        `json:"seed"`
	Overall  PhaseReport   `json:"overall"`
	Phases   []PhaseReport `json:"phases"`
	// Slowest holds the top requests by open-loop latency, worst first.
	// IDs come from the server's X-Request-Id response header, so a slow
	// entry here can be joined against the server's /debug/requests dump
	// and its access log — that join is how a tail spike is attributed
	// to a stage rather than argued about.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest is one entry in Report.Slowest.
type SlowRequest struct {
	ID      string `json:"id,omitempty"` // server-assigned request id ("" if tracing is off)
	Object  string `json:"object"`
	Range   string `json:"range,omitempty"`
	Phase   string `json:"phase"`
	Outcome string `json:"outcome"`
	// LatencyMs is the open-loop latency (from intended arrival);
	// ServiceMs is from the actual send.
	LatencyMs float64 `json:"latency_ms"`
	ServiceMs float64 `json:"service_ms"`
	// StageUs is the server-side per-stage breakdown, merged in from
	// /debug/requests by the CLI when the ids can be joined; nil when
	// the server no longer remembers the request.
	StageUs map[string]int64 `json:"stage_us,omitempty"`
}

// SlowestSize is how many requests Run keeps in Report.Slowest.
const SlowestSize = 10

// slowTracker keeps the top-K requests by open-loop latency.
type slowTracker struct {
	mu      sync.Mutex
	entries []SlowRequest
}

func (s *slowTracker) add(e SlowRequest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) < SlowestSize {
		s.entries = append(s.entries, e)
		return
	}
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].LatencyMs < s.entries[min].LatencyMs {
			min = i
		}
	}
	if e.LatencyMs > s.entries[min].LatencyMs {
		s.entries[min] = e
	}
}

// snapshot returns the tracked entries sorted worst-first.
func (s *slowTracker) snapshot() []SlowRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]SlowRequest(nil), s.entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyMs > out[j].LatencyMs })
	return out
}

func outcomeName(o int) string {
	switch o {
	case outcomeOK:
		return "ok"
	case outcomeShed:
		return "shed"
	case outcomeTimeout:
		return "timeout"
	default:
		return "error"
	}
}

// phaseStats accumulates one phase while the run is live.
type phaseStats struct {
	lat      Recorder // open-loop latency (from intended arrival), OK only
	svc      Recorder // service latency (from actual send), OK only
	requests int64
	ok       int64
	shed     int64
	timeout  int64
	errors   int64
	bytes    int64
	mu       sync.Mutex // guards the plain counters above
}

func (p *phaseStats) record(outcome int, lat, svc time.Duration, n int64) {
	p.mu.Lock()
	p.requests++
	p.bytes += n
	switch outcome {
	case outcomeOK:
		p.ok++
	case outcomeShed:
		p.shed++
	case outcomeTimeout:
		p.timeout++
	default:
		p.errors++
	}
	p.mu.Unlock()
	if outcome == outcomeOK {
		p.lat.Observe(lat)
		p.svc.Observe(svc)
	}
}

const (
	outcomeOK = iota
	outcomeShed
	outcomeTimeout
	outcomeError
)

func (p *phaseStats) report(name string, wall time.Duration) PhaseReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := PhaseReport{
		Phase:    name,
		Requests: p.requests,
		OK:       p.ok,
		Shed:     p.shed,
		Timeout:  p.timeout,
		Errors:   p.errors,
		Bytes:    p.bytes,
		P50Ms:    ms(p.lat.Quantile(0.50)),
		P95Ms:    ms(p.lat.Quantile(0.95)),
		P99Ms:    ms(p.lat.Quantile(0.99)),
		P999Ms:   ms(p.lat.Quantile(0.999)),
		MaxMs:    ms(p.lat.Max()),
		MeanMs:   ms(p.lat.Mean()),

		ServiceP50Ms: ms(p.svc.Quantile(0.50)),
		ServiceP99Ms: ms(p.svc.Quantile(0.99)),
	}
	if p.requests > 0 {
		r.ErrorRate = float64(p.timeout+p.errors) / float64(p.requests)
		r.ShedRate = float64(p.shed) / float64(p.requests)
	}
	if wall > 0 {
		r.AchievedRPS = float64(p.requests) / wall.Seconds()
	}
	return r
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// DefaultClient returns an http.Client suited to open-loop load: a wide
// idle-connection pool so concurrency spikes do not serialize on
// connection setup, and no client-level timeout (deadlines are per
// request, from Config.Deadline).
func DefaultClient() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: t}
}

// Run executes the configured load against the target and blocks until
// every dispatched request has completed (or ctx is cancelled, which
// cancels in-flight requests too).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Objects) == 0 {
		return nil, fmt.Errorf("loadgen: no objects")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", cfg.Duration)
	}
	sched, err := NewSchedule(cfg.Objects, cfg.RPS, cfg.ZipfS, cfg.Ranges, cfg.Seed)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = DefaultClient()
	}
	base := strings.TrimRight(cfg.BaseURL, "/")

	var phases [3]phaseStats
	var overall phaseStats
	var slow slowTracker
	dur := cfg.Duration.Seconds()
	phaseLen := dur / 3

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var wg sync.WaitGroup
dispatch:
	for {
		req := sched.Next()
		if req.At >= dur {
			break
		}
		// Open-loop pacing: wait for the scheduled instant, then fire
		// regardless of how many requests are still in flight.
		timer.Reset(time.Until(start.Add(time.Duration(req.At * float64(time.Second)))))
		select {
		case <-timer.C:
		case <-ctx.Done():
			break dispatch
		}
		phase := int(req.At / phaseLen)
		if phase > 2 {
			phase = 2
		}
		intended := start.Add(time.Duration(req.At * float64(time.Second)))
		one := func(req Request, phase int, intended time.Time) {
			sent := time.Now()
			outcome, n, id := issue(ctx, client, base, cfg.Objects[req.Obj], req, cfg.Deadline)
			done := time.Now()
			// The headline latency clock starts at the intended arrival,
			// not the actual send: dispatch lag is server-visible
			// queueing from the workload's point of view and must be
			// charged. The service clock starts at the send.
			lat := done.Sub(intended)
			svc := done.Sub(sent)
			phases[phase].record(outcome, lat, svc, n)
			overall.record(outcome, lat, svc, n)
			sr := SlowRequest{
				ID:        id,
				Object:    cfg.Objects[req.Obj].Name,
				Phase:     PhaseNames[phase],
				Outcome:   outcomeName(outcome),
				LatencyMs: ms(lat),
				ServiceMs: ms(svc),
			}
			if req.Len >= 0 {
				sr.Range = fmt.Sprintf("bytes=%d-%d", req.Off, req.Off+req.Len-1)
			}
			slow.add(sr)
		}
		if cfg.Closed {
			one(req, phase, intended)
			continue
		}
		wg.Add(1)
		go func(req Request, phase int, intended time.Time) {
			defer wg.Done()
			one(req, phase, intended)
		}(req, phase, intended)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{
		Target:   cfg.BaseURL,
		RPS:      cfg.RPS,
		Duration: dur,
		ZipfS:    cfg.ZipfS,
		Objects:  len(cfg.Objects),
		Seed:     cfg.Seed,
		Overall:  overall.report("overall", wall),
		Slowest:  slow.snapshot(),
	}
	for i := range phases {
		w := time.Duration(phaseLen * float64(time.Second))
		if i == 2 && wall < cfg.Duration {
			w = wall - 2*w
		}
		rep.Phases = append(rep.Phases, phases[i].report(PhaseNames[i], w))
	}
	return rep, ctx.Err()
}

// issue sends one scheduled request and classifies the outcome,
// returning the body byte count and the server-assigned request id
// (X-Request-Id; "" before a response arrives or with tracing off).
func issue(ctx context.Context, client *http.Client, base string, obj Object, req Request, deadline time.Duration) (int, int64, string) {
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/"+obj.Name, nil)
	if err != nil {
		return outcomeError, 0, ""
	}
	wantStatus := http.StatusOK
	wantLen := obj.Size
	if req.Len >= 0 {
		hr.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", req.Off, req.Off+req.Len-1))
		wantStatus = http.StatusPartialContent
		wantLen = req.Len
	}
	resp, err := client.Do(hr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return outcomeTimeout, 0, ""
		}
		return outcomeError, 0, ""
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	n, err := io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return outcomeShed, n, id
	case err != nil:
		if errors.Is(err, context.DeadlineExceeded) {
			return outcomeTimeout, n, id
		}
		return outcomeError, n, id
	case resp.StatusCode != wantStatus || n != wantLen:
		return outcomeError, n, id
	}
	return outcomeOK, n, id
}

// Text renders the report for humans, one aligned row per phase.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %s  rps %.0f  duration %.0fs  zipf %.2f  objects %d  seed %d\n",
		r.Target, r.RPS, r.Duration, r.ZipfS, r.Objects, r.Seed)
	fmt.Fprintf(&b, "%-8s %8s %6s %6s %6s %6s %9s %9s %9s %9s %9s %8s\n",
		"phase", "requests", "ok", "shed", "tmo", "err", "p50ms", "p95ms", "p99ms", "p999ms", "maxms", "rps")
	rows := append([]PhaseReport{}, r.Phases...)
	rows = append(rows, r.Overall)
	for _, p := range rows {
		fmt.Fprintf(&b, "%-8s %8d %6d %6d %6d %6d %9.2f %9.2f %9.2f %9.2f %9.2f %8.1f\n",
			p.Phase, p.Requests, p.OK, p.Shed, p.Timeout, p.Errors,
			p.P50Ms, p.P95Ms, p.P99Ms, p.P999Ms, p.MaxMs, p.AchievedRPS)
	}
	fmt.Fprintf(&b, "error_rate %.4f  shed_rate %.4f  bytes %d\n",
		r.Overall.ErrorRate, r.Overall.ShedRate, r.Overall.Bytes)
	if len(r.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest requests (open-loop):\n")
		fmt.Fprintf(&b, "  %-24s %-8s %-8s %10s %10s  %s\n",
			"id", "phase", "outcome", "latms", "svcms", "object")
		for _, s := range r.Slowest {
			id := s.ID
			if id == "" {
				id = "-"
			}
			obj := s.Object
			if s.Range != "" {
				obj += " " + s.Range
			}
			fmt.Fprintf(&b, "  %-24s %-8s %-8s %10.2f %10.2f  %s\n",
				id, s.Phase, s.Outcome, s.LatencyMs, s.ServiceMs, obj)
			if len(s.StageUs) > 0 {
				keys := make([]string, 0, len(s.StageUs))
				for k := range s.StageUs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteString("    stages:")
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%dus", strings.TrimSuffix(k, "_us"), s.StageUs[k])
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}
