package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"gompresso/internal/server"
)

// The schedule must replay identically from its seed: same arrival
// instants, same objects, same ranges. This is what makes a regression
// visible across machines and Go releases — "rps 40, seed 7" names one
// exact request sequence.
func TestScheduleDeterministic(t *testing.T) {
	objs := SpecObjects(CorpusSpec{Objects: 16, Seed: 3})
	mk := func() []Request {
		s, err := NewSchedule(objs, 100, 1.1, nil, 42)
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 500)
		for i := range reqs {
			reqs[i] = s.Next()
		}
		return reqs
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across replays: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must actually change the sequence.
	s2, err := NewSchedule(objs, 100, 1.1, nil, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 100; i++ {
		if s2.Next() == a[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seed 43 repeats %d/100 of seed 42's requests", same)
	}
}

// SpecObjects must be a pure function of the spec — remote mode depends
// on the load box reconstructing the serving box's corpus exactly.
func TestSpecObjectsDeterministic(t *testing.T) {
	a := SpecObjects(CorpusSpec{Objects: 24, Seed: 9})
	b := SpecObjects(CorpusSpec{Objects: 24, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, o := range a {
		if o.Size < 64<<10 || o.Size > 2<<20 {
			t.Fatalf("object %s size %d outside default [64k, 2m]", o.Name, o.Size)
		}
	}
}

// Poisson sanity: exponential inter-arrivals at rate rps must average
// 1/rps, and must not be a metronome (nontrivial variance).
func TestPoissonArrivals(t *testing.T) {
	objs := SpecObjects(CorpusSpec{Objects: 4, Seed: 1})
	s, err := NewSchedule(objs, 200, 0, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	gaps := make([]float64, n)
	prev := 0.0
	for i := range gaps {
		r := s.Next()
		gaps[i] = r.At - prev
		prev = r.At
	}
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	if math.Abs(mean-1.0/200) > 0.1/200 {
		t.Fatalf("mean inter-arrival %.6fs, want ~%.6fs", mean, 1.0/200)
	}
	// For an exponential distribution the standard deviation equals the
	// mean; a fixed-interval generator would have ~0.
	sd := math.Sqrt(sumSq/n - mean*mean)
	if sd < 0.5*mean || sd > 1.5*mean {
		t.Fatalf("inter-arrival stddev %.6f vs mean %.6f: not exponential", sd, mean)
	}
}

// Zipf sanity: with s=1.0 over many draws, the hottest object must take
// a disproportionate share and the ordering of popularity must follow
// the (permuted) rank order.
func TestZipfPopularity(t *testing.T) {
	objs := SpecObjects(CorpusSpec{Objects: 10, Seed: 2})
	s, err := NewSchedule(objs, 100, 1.0, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[s.Next().Obj]++
	}
	freq := make([]int, 0, len(counts))
	for _, c := range counts {
		freq = append(freq, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	// Harmonic number H_10 ≈ 2.93: rank-1 share ≈ 1/2.93 ≈ 34%.
	if share := float64(freq[0]) / n; share < 0.25 || share > 0.45 {
		t.Fatalf("hottest object share %.3f, want ~0.34", share)
	}
	if freq[0] < 5*freq[len(freq)-1] {
		t.Fatalf("popularity too flat for zipf s=1: hottest %d vs coldest %d", freq[0], freq[len(freq)-1])
	}
}

// Generated ranges must stay inside their object and respect the mix's
// class bounds (small objects legitimately fall back to full GETs).
func TestScheduleRangeBounds(t *testing.T) {
	objs := SpecObjects(CorpusSpec{Objects: 12, Seed: 5})
	mix := DefaultRangeMix()
	s, err := NewSchedule(objs, 100, 1.1, mix, 13)
	if err != nil {
		t.Fatal(err)
	}
	fulls := 0
	for i := 0; i < 10000; i++ {
		r := s.Next()
		size := objs[r.Obj].Size
		if r.Len < 0 {
			fulls++
			continue
		}
		if r.Off < 0 || r.Len <= 0 || r.Off+r.Len > size {
			t.Fatalf("range [%d,+%d] outside object size %d", r.Off, r.Len, size)
		}
	}
	if fulls == 0 {
		t.Fatal("mix includes a full-object class but no full GETs were generated")
	}
}

func TestParseRangeMix(t *testing.T) {
	mix, err := ParseRangeMix("50:4k-64k,35:64k-1m,10:1m-4m,5:full")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 4 {
		t.Fatalf("got %d classes, want 4", len(mix))
	}
	if mix[0].Min != 4<<10 || mix[0].Max != 64<<10 || mix[0].Weight != 50 {
		t.Fatalf("class 0 = %+v", mix[0])
	}
	if mix[3].Max != 0 {
		t.Fatalf("full class = %+v, want Max 0", mix[3])
	}
	for _, bad := range []string{"", "x", "0:1k-2k", "5:2k-1k", "5:1k", "5:a-b"} {
		if _, err := ParseRangeMix(bad); err == nil {
			t.Fatalf("ParseRangeMix(%q) accepted", bad)
		}
	}
}

// The recorder's quantiles must stay within one fine sub-bucket
// (~3.1%) of an exact oracle.
func TestRecorderQuantiles(t *testing.T) {
	var r Recorder
	rng := newRNG(17)
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.next()%1_000_000) + 1
		if i%100 == 0 {
			v *= 1000 // outlier tail
		}
		vals = append(vals, v)
		r.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		rank := int(q * float64(len(vals)))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		est := int64(r.Quantile(q))
		if est < exact {
			t.Fatalf("q%.3f: estimate %d below exact %d (upper-bound property violated)", q, est, exact)
		}
		if float64(est) > float64(exact)*(1+2.0/recSubBuckets) {
			t.Fatalf("q%.3f: estimate %d too far above exact %d", q, est, exact)
		}
	}
	if r.Count() != 5000 {
		t.Fatalf("count %d", r.Count())
	}
	if r.Max() != time.Duration(vals[len(vals)-1]) {
		t.Fatalf("max %d, want %d", r.Max(), vals[len(vals)-1])
	}
}

// Closed-loop mode must never have two requests in flight — that is
// the whole point of the calibration mode (both clocks bracket the
// same isolated work).
func TestClosedLoopSerial(t *testing.T) {
	const size = 64 << 10
	body := make([]byte, size)
	var inflight, maxSeen atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			m := maxSeen.Load()
			if c <= m || maxSeen.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		w.Write(body)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Objects:  []Object{{Name: "a", Size: size}},
		RPS:      500, // far beyond what serial 2ms handlers can absorb
		Duration: 500 * time.Millisecond,
		Ranges:   []RangeClass{{Weight: 1}}, // full GETs only
		Seed:     3,
		Closed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("closed-loop run reached %d concurrent requests, want 1", got)
	}
	o := rep.Overall
	if o.Requests == 0 || o.OK != o.Requests {
		t.Fatalf("closed-loop run: %+v", o)
	}
}

// End-to-end: a short open-loop run against a real in-process server
// must complete with zero errors, report every request, and split them
// across the three phases.
func TestRunAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir, err := os.MkdirTemp(t.TempDir(), "corpus")
	if err != nil {
		t.Fatal(err)
	}
	spec := CorpusSpec{Objects: 4, MinSize: 32 << 10, MaxSize: 128 << 10, Seed: 21}
	objs, err := BuildCorpus(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Root: dir, CacheBytes: 16 << 20, Logf: nil})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Objects:  objs,
		RPS:      60,
		Duration: 3 * time.Second,
		ZipfS:    1.1,
		Deadline: 5 * time.Second,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Overall
	if o.Requests < 100 {
		t.Fatalf("only %d requests in 3s at 60 rps", o.Requests)
	}
	if o.Errors != 0 || o.Timeout != 0 || o.Shed != 0 {
		t.Fatalf("fault-free run had failures: %+v", o)
	}
	if o.OK != o.Requests {
		t.Fatalf("ok %d != requests %d", o.OK, o.Requests)
	}
	if o.P50Ms <= 0 || o.P99Ms < o.P50Ms || o.MaxMs < o.P99Ms {
		t.Fatalf("non-monotone quantiles: %+v", o)
	}
	if o.ServiceP99Ms <= 0 || o.ServiceP99Ms > o.P99Ms*1.05 {
		t.Fatalf("service p99 %.2f vs open-loop p99 %.2f", o.ServiceP99Ms, o.P99Ms)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phases", len(rep.Phases))
	}
	var phaseSum int64
	for i, p := range rep.Phases {
		if p.Phase != PhaseNames[i] {
			t.Fatalf("phase %d named %q", i, p.Phase)
		}
		if p.Requests == 0 {
			t.Fatalf("phase %q empty", p.Phase)
		}
		phaseSum += p.Requests
	}
	if phaseSum != o.Requests {
		t.Fatalf("phases sum to %d, overall %d", phaseSum, o.Requests)
	}
	if o.Bytes == 0 {
		t.Fatal("no bytes recorded")
	}
}
