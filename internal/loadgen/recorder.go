package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Recorder is the harness's ground-truth latency store: an HDR-style
// log-linear histogram fine enough (32 sub-buckets per octave, ~3.1%
// relative error) that the server's coarser /metrics histogram is
// checked against it, never the reverse. Recording is a single atomic
// add, so completion goroutines never serialize on a lock; quantiles
// are extracted once at report time.
//
// This intentionally duplicates the shape of perf.Histogram rather than
// reusing it: the server's histogram trades precision for a footprint
// it can afford on every request path, while the harness pays 15 KiB
// per phase for precision — different budgets, same math.
type Recorder struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [recNumBuckets]atomic.Int64
}

const (
	recSubBits    = 5
	recSubBuckets = 1 << recSubBits
	recNumBuckets = (64-recSubBits)<<recSubBits + recSubBuckets
)

// Observe records one latency. Non-positive values land in bucket 0.
func (r *Recorder) Observe(d time.Duration) {
	v := int64(d)
	r.count.Add(1)
	if v > 0 {
		r.sum.Add(v)
	}
	for {
		cur := r.max.Load()
		if v <= cur || r.max.CompareAndSwap(cur, v) {
			break
		}
	}
	r.buckets[recBucketFor(v)].Add(1)
}

func recBucketFor(v int64) int {
	if v < recSubBuckets {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - recSubBits
	return int(uint64(v)>>e&(recSubBuckets-1)) + (e+1)<<recSubBits
}

// recBucketUpper is the exclusive upper bound of bucket i (exact for
// the low buckets, saturating at MaxInt64 at the top).
func recBucketUpper(i int) int64 {
	if i < recSubBuckets {
		return int64(i)
	}
	e := i>>recSubBits - 1
	base := uint64(recSubBuckets + i&(recSubBuckets-1) + 1)
	if bits.Len64(base)+e > 63 {
		return math.MaxInt64
	}
	return int64(base << e)
}

// Count returns the number of observations.
func (r *Recorder) Count() int64 { return r.count.Load() }

// Max returns the largest observation (0 with none).
func (r *Recorder) Max() time.Duration { return time.Duration(r.max.Load()) }

// Mean returns the arithmetic mean (0 with no observations).
func (r *Recorder) Mean() time.Duration {
	n := r.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(r.sum.Load() / n)
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1),
// within one sub-bucket (~3.1%) of the true value, or 0 with no
// observations.
func (r *Recorder) Quantile(q float64) time.Duration {
	total := r.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range r.buckets {
		seen += r.buckets[i].Load()
		if seen >= rank {
			return time.Duration(recBucketUpper(i))
		}
	}
	return time.Duration(recBucketUpper(recNumBuckets - 1))
}
