package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The request schedule: WHAT to ask for and WHEN, fully determined by
// the seed before a single request is sent. Arrivals are an open-loop
// Poisson process — the next request fires at its scheduled instant
// whether or not earlier ones have completed, so queueing delay inside
// the server is observed instead of absorbed by the client (a
// closed-loop client slows down exactly when the server does, hiding
// the latency it should be measuring — the coordinated-omission trap).
// Object popularity is zipfian over the corpus and range sizes follow a
// configurable weighted mix, approximating a CDN-ish workload: a few
// hot objects take most of the traffic, most requests are small ranges,
// a tail of large sweeps keeps the decode path honest.

// rng is the same splitmix64 used by internal/datagen: tiny, seedable,
// and stable across Go releases, so a (seed, rps, corpus) triple names
// one exact request sequence forever. math/rand/v2 would be as fast but
// ties the schedule to the stdlib's generator choice.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (s *rng) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *rng) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// int63n returns a uniform value in [0, n); 0 when n <= 0.
func (s *rng) int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.next() % uint64(n))
}

// zipf draws ranks in [0, n) with probability ∝ 1/(rank+1)^s via a
// precomputed cumulative table and binary search.
type zipf struct {
	cum []float64
	rng *rng
}

func newZipf(r *rng, n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n), rng: r}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

func (z *zipf) draw() int {
	u := z.rng.float()
	return sort.SearchFloat64s(z.cum, u)
}

// RangeClass is one stratum of the request-size mix: with probability
// proportional to Weight, the request asks for a range of uniform
// length in [Min, Max] bytes. Max == 0 means a full-object GET (no
// Range header) — the sequential sweep class.
type RangeClass struct {
	Weight float64 `json:"weight"`
	Min    int64   `json:"min,omitempty"`
	Max    int64   `json:"max,omitempty"`
}

// DefaultRangeMix approximates ranged-object traffic: mostly small
// probes, a solid band of block-sized reads, a few multi-block sweeps,
// and the occasional whole-object download.
func DefaultRangeMix() []RangeClass {
	return []RangeClass{
		{Weight: 0.50, Min: 4 << 10, Max: 64 << 10},
		{Weight: 0.35, Min: 64 << 10, Max: 1 << 20},
		{Weight: 0.10, Min: 1 << 20, Max: 4 << 20},
		{Weight: 0.05}, // full object
	}
}

// ParseRangeMix parses a "weight:min-max,weight:min-max,..." spec, e.g.
// "50:4k-64k,35:64k-1m,10:1m-4m,5:full". Sizes accept k/m/g suffixes;
// "full" (or "0-0") is a whole-object GET.
func ParseRangeMix(spec string) ([]RangeClass, error) {
	var mix []RangeClass
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ws, sizes, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: range class %q: want weight:min-max", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("loadgen: range class %q: bad weight", part)
		}
		if sizes == "full" {
			mix = append(mix, RangeClass{Weight: w})
			continue
		}
		lo, hi, ok := strings.Cut(sizes, "-")
		if !ok {
			return nil, fmt.Errorf("loadgen: range class %q: want min-max sizes", part)
		}
		min, err := parseSize(lo)
		if err != nil {
			return nil, fmt.Errorf("loadgen: range class %q: %w", part, err)
		}
		max, err := parseSize(hi)
		if err != nil {
			return nil, fmt.Errorf("loadgen: range class %q: %w", part, err)
		}
		if min <= 0 || max < min {
			return nil, fmt.Errorf("loadgen: range class %q: need 0 < min <= max", part)
		}
		mix = append(mix, RangeClass{Weight: w, Min: min, Max: max})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty range mix %q", spec)
	}
	return mix, nil
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// Request is one scheduled request: fire At after run start, against
// object Obj, for Len bytes at Off (Len < 0 = full-object GET).
type Request struct {
	At  float64 // seconds since run start (intended arrival)
	Obj int
	Off int64
	Len int64
}

// Schedule generates the deterministic request sequence. One rng drives
// everything — arrival gaps, popularity draws, range choices — so the
// whole sequence replays from the seed alone.
type Schedule struct {
	rng     *rng
	zipf    *zipf
	perm    []int // popularity rank -> object index
	objects []Object
	mix     []RangeClass
	mixCum  []float64
	rps     float64
	now     float64 // seconds; arrival clock
}

// NewSchedule builds a schedule over objects at rps requests/second.
// zipfS is the popularity exponent (≥ 0; 0 = uniform); mix is the range
// mix (nil = DefaultRangeMix). The popularity permutation is drawn from
// the same seed, so which objects are hot is stable per seed but not
// correlated with generation order or size.
func NewSchedule(objects []Object, rps, zipfS float64, mix []RangeClass, seed uint64) (*Schedule, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("loadgen: no objects to schedule over")
	}
	if rps <= 0 {
		return nil, fmt.Errorf("loadgen: rps must be positive, got %g", rps)
	}
	if zipfS < 0 {
		return nil, fmt.Errorf("loadgen: negative zipf exponent %g", zipfS)
	}
	if mix == nil {
		mix = DefaultRangeMix()
	}
	r := newRNG(seed)
	s := &Schedule{
		rng:     r,
		zipf:    newZipf(r, len(objects), zipfS),
		perm:    make([]int, len(objects)),
		objects: objects,
		mix:     mix,
		rps:     rps,
	}
	for i := range s.perm {
		s.perm[i] = i
	}
	// Fisher–Yates off the schedule rng: rank r serves object perm[r].
	for i := len(s.perm) - 1; i > 0; i-- {
		j := int(r.int63n(int64(i + 1)))
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
	var total float64
	for _, c := range mix {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: range class weight %g not positive", c.Weight)
		}
		total += c.Weight
		s.mixCum = append(s.mixCum, total)
	}
	for i := range s.mixCum {
		s.mixCum[i] /= total
	}
	return s, nil
}

// Next returns the next scheduled request. Inter-arrival gaps are
// exponential with mean 1/rps — a Poisson process, memoryless, so
// bursts and lulls occur at realistic odds rather than a metronome's.
func (s *Schedule) Next() Request {
	// Invert the exponential CDF; clamp u away from 0 so log is finite.
	u := s.rng.float()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	s.now += -math.Log(u) / s.rps

	obj := s.perm[s.zipf.draw()]
	size := s.objects[obj].Size

	class := s.mix[sort.SearchFloat64s(s.mixCum, s.rng.float())]
	if class.Max == 0 || size <= class.Min {
		// Full-object class, or the object is too small to carve the
		// class's range from: GET the whole thing.
		return Request{At: s.now, Obj: obj, Off: 0, Len: -1}
	}
	max := class.Max
	if max > size {
		max = size
	}
	n := class.Min + s.rng.int63n(max-class.Min+1)
	off := s.rng.int63n(size - n + 1)
	return Request{At: s.now, Obj: obj, Off: off, Len: n}
}
