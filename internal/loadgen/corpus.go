package loadgen

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"gompresso"
	"gompresso/internal/datagen"
)

// Object is one corpus member as the harness addresses it: a served
// name and its decompressed size (the coordinate space Range headers
// select over).
type Object struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// CorpusSpec describes a generated multi-object corpus. Everything
// derives from the seed, so two boxes given the same spec build
// byte-identical corpora — the remote-target mode depends on this: the
// serving box materializes the corpus with BuildCorpus, the load box
// reconstructs the same Objects list with SpecObjects and never reads
// the files at all.
type CorpusSpec struct {
	Objects int    `json:"objects"` // object count (default 32)
	MinSize int64  `json:"min_size"`
	MaxSize int64  `json:"max_size"`
	Seed    uint64 `json:"seed"`
	BlockKB int    `json:"block_kb"` // container block size (default 64)
}

func (s *CorpusSpec) normalize() {
	if s.Objects <= 0 {
		s.Objects = 32
	}
	if s.MinSize <= 0 {
		s.MinSize = 64 << 10
	}
	if s.MaxSize < s.MinSize {
		s.MaxSize = 2 << 20
	}
	if s.MaxSize < s.MinSize {
		s.MaxSize = s.MinSize
	}
	if s.BlockKB <= 0 {
		s.BlockKB = 64
	}
}

// SpecObjects returns the object list the spec implies without touching
// disk: names, and decompressed sizes drawn log-uniformly in
// [MinSize, MaxSize] — a few big objects, many small ones, like any
// real object store.
func SpecObjects(spec CorpusSpec) []Object {
	spec.normalize()
	r := newRNG(spec.Seed ^ 0xc0ffee)
	objs := make([]Object, spec.Objects)
	ratio := math.Log(float64(spec.MaxSize) / float64(spec.MinSize))
	for i := range objs {
		size := int64(float64(spec.MinSize) * math.Exp(r.float()*ratio))
		if size > spec.MaxSize {
			size = spec.MaxSize
		}
		objs[i] = Object{Name: fmt.Sprintf("lt-%04d.gpz", i), Size: size}
	}
	return objs
}

// BuildCorpus materializes the spec's objects under dir as indexed
// Gompresso containers (the primary random-access serving path) filled
// with compressible WikiXML text, and returns the object list. Existing
// files of the right size are reused — re-running against a warm root
// only pays generation for what's missing.
func BuildCorpus(dir string, spec CorpusSpec) ([]Object, error) {
	spec.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("loadgen: corpus dir: %w", err)
	}
	objs := SpecObjects(spec)
	for i, o := range objs {
		path := filepath.Join(dir, o.Name)
		raw := datagen.WikiXML(int(o.Size), spec.Seed+uint64(i)*0x9e37+1)
		comp, _, err := gompresso.Compress(raw, gompresso.Options{
			Variant:   gompresso.VariantBit,
			DE:        gompresso.DEStrict,
			BlockSize: spec.BlockKB << 10,
			Index:     true,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: compress %s: %w", o.Name, err)
		}
		if st, err := os.Stat(path); err == nil && st.Size() == int64(len(comp)) {
			continue // already materialized by an earlier run of this spec
		}
		if err := os.WriteFile(path, comp, 0o644); err != nil {
			return nil, fmt.Errorf("loadgen: write %s: %w", o.Name, err)
		}
	}
	return objs, nil
}
