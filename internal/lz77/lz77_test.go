package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// corpora returns a varied set of test inputs.
func corpora(rng *rand.Rand) map[string][]byte {
	random := make([]byte, 20000)
	rng.Read(random)
	lowEntropy := make([]byte, 20000)
	for i := range lowEntropy {
		lowEntropy[i] = byte(rng.Intn(4))
	}
	textish := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	runs := bytes.Repeat([]byte{'a'}, 10000)
	mixed := append(append([]byte{}, textish[:5000]...), random[:5000]...)
	return map[string][]byte{
		"empty":      {},
		"one":        {42},
		"tiny":       []byte("abc"),
		"random":     random,
		"lowentropy": lowEntropy,
		"text":       textish,
		"runs":       runs,
		"mixed":      mixed,
	}
}

func roundtrip(t *testing.T, name string, src []byte, opts Options) *TokenStream {
	t.Helper()
	ts, err := Parse(src, opts)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("%s: validate: %v", name, err)
	}
	got, err := ts.Decompress(make([]byte, 0, len(src)))
	if err != nil {
		t.Fatalf("%s: decompress: %v", name, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s: roundtrip mismatch: got %d bytes want %d", name, len(got), len(src))
	}
	return ts
}

func TestRoundtripGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, src := range corpora(rng) {
		roundtrip(t, name, src, Options{})
	}
}

func TestRoundtripDEStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for name, src := range corpora(rng) {
		ts := roundtrip(t, name, src, Options{DE: DEStrict})
		if err := CheckDE(ts, DefaultGroupSize); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRoundtripDELit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, src := range corpora(rng) {
		ts := roundtrip(t, name, src, Options{DE: DELit})
		if err := CheckDE(ts, DefaultGroupSize); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRoundtripSingleMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for name, src := range corpora(rng) {
		for _, de := range []DEMode{DEOff, DEStrict, DELit} {
			ts := roundtrip(t, name+"/"+de.String(), src, Options{DE: de, Staleness: DefaultStaleness})
			if de != DEOff {
				if err := CheckDE(ts, DefaultGroupSize); err != nil {
					t.Fatalf("%s %s: %v", name, de, err)
				}
			}
		}
	}
}

// DEStrict structural property: every match's source interval ends at or
// before the input position where its warp group began.
func TestDEStrictStructural(t *testing.T) {
	src := []byte(strings.Repeat("gompresso decompresses blocks in parallel on warps. ", 2000))
	ts, err := Parse(src, Options{DE: DEStrict})
	if err != nil {
		t.Fatal(err)
	}
	outPos := 0
	groupStart := 0
	for i, s := range ts.Seqs {
		if i%DefaultGroupSize == 0 {
			groupStart = outPos
		}
		outPos += int(s.LitLen)
		if s.MatchLen > 0 {
			readEnd := outPos - int(s.Offset) + int(s.MatchLen)
			if readEnd > groupStart {
				t.Fatalf("seq %d: source end %d beyond group start %d", i, readEnd, groupStart)
			}
			outPos += int(s.MatchLen)
		}
	}
}

// Unrestricted parses of self-similar data should contain intra-group
// dependencies (that is what MRR exists for).
func TestGreedyHasDependencies(t *testing.T) {
	src := []byte(strings.Repeat("abcdefghij", 5000))
	ts, err := Parse(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDE(ts, DefaultGroupSize); err == nil {
		t.Fatal("expected intra-group dependencies in greedy parse of repetitive data")
	}
	stats := AnalyzeMRR(ts, DefaultGroupSize)
	if stats.MaxRounds < 2 {
		t.Fatalf("expected ≥2 rounds, got %d", stats.MaxRounds)
	}
}

// Compression-ratio ordering: restricting matches can only cost ratio.
func TestDERatioCost(t *testing.T) {
	src := []byte(strings.Repeat("row col value 1.00321 17 42\n", 8000))
	sizes := map[DEMode]int{}
	for _, de := range []DEMode{DEOff, DELit, DEStrict} {
		ts, err := Parse(src, Options{DE: de})
		if err != nil {
			t.Fatal(err)
		}
		sizes[de] = ts.CompressedSizeByte()
	}
	if sizes[DEOff] > sizes[DEStrict] {
		t.Fatalf("DE strict (%d) compressed smaller than unrestricted (%d)", sizes[DEStrict], sizes[DEOff])
	}
	if sizes[DELit] > 2*sizes[DEOff] || sizes[DEStrict] > 3*sizes[DEOff] {
		t.Fatalf("DE cost too large: off=%d lit=%d strict=%d", sizes[DEOff], sizes[DELit], sizes[DEStrict])
	}
	if sizes[DEOff] >= len(src) {
		t.Fatalf("repetitive data did not compress: %d >= %d", sizes[DEOff], len(src))
	}
}

func TestAnalyzeMRRHandBuilt(t *testing.T) {
	// Three sequences forming a dependency chain: seq2 reads seq1's
	// back-reference output, seq3 reads seq2's. Must take 3 rounds.
	ts := &TokenStream{
		Literals: []byte("abcd"),
		Seqs: []Seq{
			{LitLen: 4, MatchLen: 4, Offset: 4},
			{LitLen: 0, MatchLen: 4, Offset: 4},
			{LitLen: 0, MatchLen: 4, Offset: 4},
		},
		RawLen: 16,
	}
	out, err := ts.Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "abcdabcdabcdabcd" {
		t.Fatalf("decompress got %q", out)
	}
	stats := AnalyzeMRR(ts, 32)
	if len(stats.Rounds) != 1 || stats.Rounds[0] != 3 {
		t.Fatalf("rounds = %v, want [3]", stats.Rounds)
	}
	want := []int64{4, 4, 4}
	for r, b := range stats.BytesPerRound {
		if b != want[r] {
			t.Fatalf("bytes per round = %v, want %v", stats.BytesPerRound, want)
		}
	}
}

func TestAnalyzeMRRIndependent(t *testing.T) {
	// Back-references that only read literals resolve in one round.
	ts := &TokenStream{
		Literals: []byte("abcdefgh"),
		Seqs: []Seq{
			{LitLen: 4, MatchLen: 4, Offset: 4}, // reads lit of seq1
			{LitLen: 4, MatchLen: 4, Offset: 12},
		},
		RawLen: 16,
	}
	if _, err := ts.Decompress(nil); err != nil {
		t.Fatal(err)
	}
	stats := AnalyzeMRR(ts, 32)
	if stats.MaxRounds != 1 {
		t.Fatalf("max rounds = %d, want 1", stats.MaxRounds)
	}
}

func TestSelfOverlapRLE(t *testing.T) {
	// offset < length: classic RLE back-reference.
	ts := &TokenStream{
		Literals: []byte("ab"),
		Seqs:     []Seq{{LitLen: 2, MatchLen: 10, Offset: 2}},
		RawLen:   12,
	}
	out, err := ts.Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ababababobab"[:0]+"abababababab" {
		t.Fatalf("got %q", out)
	}
	// Self-overlap resolves in one round via the first-pending rule.
	stats := AnalyzeMRR(ts, 32)
	if stats.MaxRounds != 1 {
		t.Fatalf("rounds %d", stats.MaxRounds)
	}
}

func TestCorruptStreams(t *testing.T) {
	cases := map[string]*TokenStream{
		"litOverrun":  {Literals: []byte("ab"), Seqs: []Seq{{LitLen: 5}}, RawLen: 5},
		"badOffset":   {Literals: []byte("ab"), Seqs: []Seq{{LitLen: 2, MatchLen: 3, Offset: 9}}, RawLen: 5},
		"zeroOffset":  {Literals: []byte("ab"), Seqs: []Seq{{LitLen: 2, MatchLen: 3, Offset: 0}}, RawLen: 5},
		"trailingLit": {Literals: []byte("abcd"), Seqs: []Seq{{LitLen: 2}}, RawLen: 2},
		"rawLen":      {Literals: []byte("ab"), Seqs: []Seq{{LitLen: 2}}, RawLen: 99},
	}
	for name, ts := range cases {
		if _, err := ts.Decompress(nil); err == nil {
			t.Errorf("%s: Decompress accepted corrupt stream", name)
		}
		if err := ts.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt stream", name)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Window: 4},
		{MinMatch: 2},
		{MinMatch: 5, MaxMatch: 4},
		{GroupSize: -1},
	}
	for i, o := range bad {
		if _, err := Parse([]byte("hello world"), o); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

func TestSingleMatcherStaleness(t *testing.T) {
	opts := Options{Staleness: 100, Window: 1 << 16}.withDefaults()
	m := newSingleMatcher(opts)
	src := bytes.Repeat([]byte("abcdwxyz"), 100)
	m.insert(src, 0)
	// Re-inserting the same trigram within the staleness horizon must keep
	// the old entry.
	m.insert(src, 8)
	off, l := m.find(src, 16, 16, 8)
	if l == 0 || off != 16 {
		t.Fatalf("expected match against stale entry at 0 (off 16), got off=%d len=%d", off, l)
	}
	// Beyond the horizon the entry is replaced.
	m.insert(src, 120)
	off, _ = m.find(src, 128, 128, 8)
	if off != 8 {
		t.Fatalf("expected replacement entry at 120 (off 8), got off=%d", off)
	}
}

// Property: parses of random structured inputs roundtrip for all modes.
func TestQuickRoundtripAllModes(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8192)
		src := make([]byte, n)
		// Mix of runs and randomness to exercise matches.
		for i := 0; i < n; {
			if rng.Intn(2) == 0 {
				runLen := 1 + rng.Intn(64)
				b := byte(rng.Intn(8))
				for j := 0; j < runLen && i < n; j++ {
					src[i] = b
					i++
				}
			} else {
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		opts := Options{DE: DEMode(mode % 3)}
		if seed%2 == 0 {
			opts.Staleness = 256
		}
		ts, err := Parse(src, opts)
		if err != nil {
			return false
		}
		got, err := ts.Decompress(nil)
		if err != nil || !bytes.Equal(got, src) {
			return false
		}
		if opts.DE != DEOff {
			if err := CheckDE(ts, DefaultGroupSize); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseGreedy(b *testing.B) { benchParse(b, Options{}) }
func BenchmarkParseDEStrict(b *testing.B) {
	benchParse(b, Options{DE: DEStrict})
}
func BenchmarkParseDELit(b *testing.B) { benchParse(b, Options{DE: DELit}) }
func BenchmarkParseSingleHash(b *testing.B) {
	benchParse(b, Options{Staleness: DefaultStaleness})
}

func benchParse(b *testing.B, opts Options) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 3000))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressReference(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 3000))
	ts, err := Parse(src, Options{})
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, len(src))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ts.Decompress(dst); err != nil {
			b.Fatal(err)
		}
	}
}
