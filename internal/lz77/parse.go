package lz77

import "math"

// Parse compresses one block into a token stream. With opts.DE == DEOff this
// is a conventional greedy LZ77 parse; otherwise it runs the
// Dependency-Elimination parse of paper Fig. 7.
func Parse(src []byte, opts Options) (*TokenStream, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.DE != DEOff {
		return parseDE(src, opts)
	}
	return parseGreedy(src, opts)
}

// parseGreedy is the unrestricted parse: matches may reference any window
// position, including overlapping the match's own output (offset < length).
func parseGreedy(src []byte, opts Options) (*TokenStream, error) {
	ts := &TokenStream{RawLen: len(src)}
	m := newMatcher(opts, len(src))
	pos, litStart := 0, 0
	for pos < len(src) {
		off, l := m.find(src, pos, math.MaxInt32, opts.MaxMatch)
		if l >= opts.MinMatch {
			ts.Literals = append(ts.Literals, src[litStart:pos]...)
			ts.Seqs = append(ts.Seqs, Seq{
				LitLen:   uint32(pos - litStart),
				MatchLen: uint32(l),
				Offset:   uint32(off),
			})
			end := pos + l
			for ; pos < end; pos++ {
				m.insert(src, pos)
			}
			litStart = pos
			continue
		}
		m.insert(src, pos)
		pos++
	}
	if litStart < len(src) || len(ts.Seqs) == 0 {
		ts.Literals = append(ts.Literals, src[litStart:]...)
		ts.Seqs = append(ts.Seqs, Seq{LitLen: uint32(len(src) - litStart)})
	}
	return ts, nil
}

// parseDE is the modified compressor of paper Fig. 7. For each group of
// GroupSize sequences it fixes warpHWM to the input position completed
// before the group started and only accepts matches whose source interval is
// fully available to the decompressing warp in its single back-reference
// round:
//
//   - DEStrict: source end ≤ warpHWM (the paper's rule), or
//   - DELit: additionally, source end within the gapless run of literal
//     bytes at the start of the current group (those are written in the
//     literal phase before back-references resolve).
//
// Because no match can exist below warpHWM at a block start, a literal run is
// force-closed as a null-match sequence after MaxLitRun bytes so the group
// makes progress (the paper's pseudocode leaves this case implicit).
func parseDE(src []byte, opts Options) (*TokenStream, error) {
	ts := &TokenStream{RawLen: len(src)}
	m := newMatcher(opts, len(src))
	pos, litStart := 0, 0
	for pos < len(src) {
		warpHWM := pos
		// availEnd is the input position below which every byte is available
		// during the group's back-reference round. For DELit it tracks the
		// cursor until the group's first match freezes it.
		availEnd := warpHWM
		frozen := opts.DE != DELit
		for s := 0; s < opts.GroupSize && pos < len(src); {
			if !frozen {
				availEnd = pos
			}
			off, l := m.find(src, pos, availEnd, opts.MaxMatch)
			if l >= opts.MinMatch {
				ts.Literals = append(ts.Literals, src[litStart:pos]...)
				ts.Seqs = append(ts.Seqs, Seq{
					LitLen:   uint32(pos - litStart),
					MatchLen: uint32(l),
					Offset:   uint32(off),
				})
				frozen = true
				end := pos + l
				for ; pos < end; pos++ {
					m.insert(src, pos)
				}
				litStart = pos
				s++
				continue
			}
			m.insert(src, pos)
			pos++
			if pos-litStart >= opts.MaxLitRun {
				// Force-close so the group (and block starts, where no match
				// below HWM can exist) terminates.
				ts.Literals = append(ts.Literals, src[litStart:pos]...)
				ts.Seqs = append(ts.Seqs, Seq{LitLen: uint32(pos - litStart)})
				litStart = pos
				s++
			}
		}
	}
	if litStart < len(src) || len(ts.Seqs) == 0 {
		ts.Literals = append(ts.Literals, src[litStart:]...)
		ts.Seqs = append(ts.Seqs, Seq{LitLen: uint32(len(src) - litStart)})
	}
	return ts, nil
}
