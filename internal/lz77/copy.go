package lz77

import "encoding/binary"

// CopyWithin expands the back-reference (offset, length) at position pos of
// dst: it copies dst[pos-offset : pos-offset+length] to dst[pos : pos+length],
// replicating bytes the copy itself produces when the intervals overlap
// (offset < length), and returns the new position pos+length.
//
// The caller guarantees 0 < offset ≤ pos and pos+length ≤ len(dst). Writes
// never go past pos+length except for the wild-copy fast path, which may
// scribble up to 7 bytes into dst[pos+length:] when that slack exists inside
// dst — bytes a valid stream overwrites with its next sequences. Writes never
// leave dst, so dst may be an exactly-sized block region inside a larger
// shared output buffer (adjacent block regions can be written concurrently).
func CopyWithin(dst []byte, pos, offset, length int) int {
	src := pos - offset
	end := pos + length
	if offset >= 8 && end+8 <= len(dst) {
		// Wild copy: 8-byte chunks, no memmove call. offset ≥ 8 means every
		// load reads bytes finalized before this chunk's store; matches are
		// short (the parser's lookahead caps them at 64 bytes by default), so
		// call overhead would dominate a memmove.
		for p := pos; p < end; p += 8 {
			binary.LittleEndian.PutUint64(dst[p:], binary.LittleEndian.Uint64(dst[src:]))
			src += 8
		}
		return end
	}
	if offset >= length {
		// Disjoint intervals: one memmove.
		copy(dst[pos:end], dst[src:src+length])
		return end
	}
	if offset == 1 {
		// Run-length case: splat one byte.
		b := dst[src]
		tail := dst[pos:end]
		for i := range tail {
			tail[i] = b
		}
		return end
	}
	// Overlapping copy with widening stride: each pass copies everything
	// written so far, doubling the stride (offset, 2·offset, 4·offset, …), so
	// the loop runs O(log(length/offset)) memmoves instead of `length`
	// byte stores.
	for pos < end {
		pos += copy(dst[pos:end], dst[src:pos])
	}
	return end
}

// CopyWithinExact is CopyWithin for callers that cannot tolerate the wild
// copy's scribble past pos+length — the dual-stream fused decoder pre-places
// upcoming literals in dst before resolving match gaps, so an overshoot
// would clobber finalized bytes. Writes stop exactly at pos+length.
func CopyWithinExact(dst []byte, pos, offset, length int) int {
	src := pos - offset
	end := pos + length
	if offset >= 8 {
		for pos+8 <= end {
			binary.LittleEndian.PutUint64(dst[pos:], binary.LittleEndian.Uint64(dst[src:]))
			src += 8
			pos += 8
		}
		for pos < end {
			dst[pos] = dst[src]
			pos++
			src++
		}
		return end
	}
	if offset >= length {
		copy(dst[pos:end], dst[src:src+length])
		return end
	}
	if offset == 1 {
		b := dst[src]
		tail := dst[pos:end]
		for i := range tail {
			tail[i] = b
		}
		return end
	}
	for pos < end {
		pos += copy(dst[pos:end], dst[src:pos])
	}
	return end
}
