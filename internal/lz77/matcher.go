package lz77

import (
	"encoding/binary"
	"math/bits"
)

// A matcher finds the longest match for the bytes at src[pos:] whose source
// interval lies within [pos-window, srcEndLimit). srcEndLimit is the key DE
// hook: the normal parse passes the block length (matches may even overlap
// their own output, which the reference and MRR decoders both handle), while
// the DE parse passes the warp high-water mark so the match is fully
// available before the group's back-reference phase (paper Fig. 7,
// find_match_below_hwm).
type matcher interface {
	// insert registers position pos in the dictionary.
	insert(src []byte, pos int)
	// find returns the best match (offset, length) for src[pos:], with
	// length ≤ maxLen and the source interval ending at or before
	// srcEndLimit. length 0 means no acceptable match.
	find(src []byte, pos, srcEndLimit, maxLen int) (offset, length int)
}

func hash4(v uint32, bits uint) uint32 {
	// Fibonacci hashing on the next four bytes.
	return (v * 2654435761) >> (32 - bits)
}

func hash3(v uint32, bits uint) uint32 {
	return ((v << 8) * 506832829) >> (32 - bits)
}

func load32(src []byte, pos int) uint32 {
	return uint32(src[pos]) | uint32(src[pos+1])<<8 | uint32(src[pos+2])<<16 | uint32(src[pos+3])<<24
}

func load24(src []byte, pos int) uint32 {
	return uint32(src[pos]) | uint32(src[pos+1])<<8 | uint32(src[pos+2])<<16
}

// matchLen counts equal bytes between src[a:] and src[b:], up to max, and
// not past len(src). a < b; reading src[a+i] for i < max requires only that
// a+i < len(src), which allows overlapping matches (a+max may exceed b).
//
// The hot loop compares eight bytes per iteration and locates the first
// difference with a single trailing-zero count of the XOR, falling back to
// byte compares only for the tail where an 8-byte load would run past the
// slice.
func matchLen(src []byte, a, b, max int) int {
	if max > len(src)-b {
		max = len(src) - b
	}
	n := 0
	for n+8 <= max {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < max && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// chainMatcher is a zlib-style head/prev hash-chain matcher: best ratio,
// used by the default Gompresso compressor.
type chainMatcher struct {
	opts     Options
	hashBits uint
	head     []int32
	prev     []int32
	minPos   func([]byte, int) uint32
}

func newChainMatcher(opts Options, srcLen int) *chainMatcher {
	m := &chainMatcher{opts: opts, hashBits: 15}
	m.head = make([]int32, 1<<m.hashBits)
	for i := range m.head {
		m.head[i] = -1
	}
	m.prev = make([]int32, srcLen)
	return m
}

func (m *chainMatcher) hash(src []byte, pos int) uint32 {
	if m.opts.MinMatch >= 4 {
		return hash4(load32(src, pos), m.hashBits)
	}
	return hash3(load24(src, pos), m.hashBits)
}

func (m *chainMatcher) insert(src []byte, pos int) {
	if pos+m.opts.MinMatch > len(src) || pos+4 > len(src) {
		return
	}
	h := m.hash(src, pos)
	m.prev[pos] = m.head[h]
	m.head[h] = int32(pos)
}

func (m *chainMatcher) find(src []byte, pos, srcEndLimit, maxLen int) (int, int) {
	if pos+m.opts.MinMatch > len(src) || pos+4 > len(src) {
		return 0, 0
	}
	if maxLen > len(src)-pos {
		maxLen = len(src) - pos
	}
	if maxLen < m.opts.MinMatch {
		return 0, 0
	}
	lo := pos - m.opts.Window
	if lo < 0 {
		lo = 0
	}
	bestLen, bestOff := 0, 0
	cand := m.head[m.hash(src, pos)]
	// Candidates above the source-end limit (recent positions the DE rule
	// forbids) do not count against the chain depth — this plays the role of
	// the paper's match-finder modification for find_match_below_hwm, which
	// otherwise starves on recent entries. A hard traversal cap bounds the
	// walk on degenerate chains.
	depth := 0
	for walked := 0; depth < m.opts.MaxChain && walked < 16*m.opts.MaxChain && cand >= 0; walked++ {
		c := int(cand)
		if c < lo {
			break // chains are position-ordered; older entries only get older
		}
		// Cap the length so the source interval ends within the limit.
		max := maxLen
		if c+max > srcEndLimit {
			max = srcEndLimit - c
		}
		if max >= m.opts.MinMatch {
			depth++
			if max > bestLen {
				if l := matchLen(src, c, pos, max); l >= m.opts.MinMatch && l > bestLen {
					bestLen, bestOff = l, pos-c
				}
			}
		}
		cand = m.prev[c]
	}
	return bestOff, bestLen
}

// singleMatcher is the LZ4-style single-entry hash table with the paper's
// "minimal staleness" replacement policy (§IV-B): an entry is replaced by a
// more recent occurrence only once it is more than Staleness bytes behind the
// cursor. Keeping entries old makes them more likely to fall below the warp
// high-water mark, which is what lets the DE parse keep finding matches.
type singleMatcher struct {
	opts     Options
	hashBits uint
	table    []int32
}

func newSingleMatcher(opts Options) *singleMatcher {
	m := &singleMatcher{opts: opts, hashBits: 14}
	m.table = make([]int32, 1<<m.hashBits)
	for i := range m.table {
		m.table[i] = -1
	}
	return m
}

func (m *singleMatcher) hash(src []byte, pos int) uint32 {
	if m.opts.MinMatch >= 4 {
		return hash4(load32(src, pos), m.hashBits)
	}
	return hash3(load24(src, pos), m.hashBits)
}

func (m *singleMatcher) insert(src []byte, pos int) {
	if pos+m.opts.MinMatch > len(src) || pos+4 > len(src) {
		return
	}
	h := m.hash(src, pos)
	old := m.table[h]
	if old < 0 || pos-int(old) > m.opts.Staleness {
		m.table[h] = int32(pos)
	}
}

func (m *singleMatcher) find(src []byte, pos, srcEndLimit, maxLen int) (int, int) {
	if pos+m.opts.MinMatch > len(src) || pos+4 > len(src) {
		return 0, 0
	}
	if maxLen > len(src)-pos {
		maxLen = len(src) - pos
	}
	if maxLen < m.opts.MinMatch {
		return 0, 0
	}
	cand := m.table[m.hash(src, pos)]
	if cand < 0 {
		return 0, 0
	}
	c := int(cand)
	if c >= pos || pos-c > m.opts.Window {
		return 0, 0
	}
	max := maxLen
	if c+max > srcEndLimit {
		max = srcEndLimit - c
	}
	if max < m.opts.MinMatch {
		return 0, 0
	}
	l := matchLen(src, c, pos, max)
	if l < m.opts.MinMatch {
		return 0, 0
	}
	return pos - c, l
}

func newMatcher(opts Options, srcLen int) matcher {
	if opts.Staleness > 0 {
		return newSingleMatcher(opts)
	}
	return newChainMatcher(opts, srcLen)
}
