package lz77

import "fmt"

// MRRStats summarizes a Multi-Round Resolution simulation of a token stream:
// how many rounds each warp group of sequences needs, and how many
// back-reference bytes resolve in each round. This is the quantity behind
// paper Figs. 9b and 9c, computed here analytically as an oracle for the
// simulated kernels.
type MRRStats struct {
	GroupSize     int
	Groups        int     // groups containing at least one back-reference
	Rounds        []int   // per group (only groups with ≥ 1 back-reference)
	BytesPerRound []int64 // [r-1] = total match bytes resolved in round r
	SeqsPerRound  []int64 // [r-1] = back-references resolved in round r
	MaxRounds     int
	TotalBytes    int64 // total match bytes
}

// AvgRounds is the mean round count over groups with back-references
// (paper §V-A: ≈ 3 for Wikipedia, ≈ 4 for the matrix dataset).
func (s *MRRStats) AvgRounds() float64 {
	if s.Groups == 0 {
		return 0
	}
	total := 0
	for _, r := range s.Rounds {
		total += r
	}
	return float64(total) / float64(s.Groups)
}

// AvgBytesPerRound divides the total bytes resolved in round r by the number
// of groups that executed round r, matching the paper's Fig. 9b metric.
func (s *MRRStats) AvgBytesPerRound() []float64 {
	out := make([]float64, len(s.BytesPerRound))
	for r := range out {
		groupsAtRound := 0
		for _, g := range s.Rounds {
			if g > r {
				groupsAtRound++
			}
		}
		if groupsAtRound > 0 {
			out[r] = float64(s.BytesPerRound[r]) / float64(groupsAtRound)
		}
	}
	return out
}

// groupLayout holds the output-coordinate layout of one warp group.
type groupLayout struct {
	outStart  int   // output position where the group's first literal lands
	litPos    []int // per lane: literal write position
	brPos     []int // per lane: back-reference write position
	brEnd     []int // per lane: back-reference end position
	readStart []int // per lane: match source start (-1 if no match)
	readEnd   []int
}

func layoutGroup(seqs []Seq, outStart int) groupLayout {
	g := groupLayout{outStart: outStart}
	pos := outStart
	for _, s := range seqs {
		g.litPos = append(g.litPos, pos)
		pos += int(s.LitLen)
		g.brPos = append(g.brPos, pos)
		pos += int(s.MatchLen)
		g.brEnd = append(g.brEnd, pos)
		if s.MatchLen > 0 {
			rs := g.brPos[len(g.brPos)-1] - int(s.Offset)
			g.readStart = append(g.readStart, rs)
			g.readEnd = append(g.readEnd, rs+int(s.MatchLen))
		} else {
			g.readStart = append(g.readStart, -1)
			g.readEnd = append(g.readEnd, -1)
		}
	}
	return g
}

// AnalyzeMRR simulates the MRR availability rule over a token stream without
// running the device kernels:
//
//	round: HWM = back-reference write position of the first pending lane
//	       (all literals are already written, so the gapless prefix extends
//	       through that lane's literal); every pending lane whose source
//	       interval ends at or below HWM resolves, and the first pending lane
//	       always resolves (overlap-aware sequential copy — see DESIGN.md).
//
// The kernel implementation in internal/kernels must produce identical round
// structure; tests cross-check the two.
func AnalyzeMRR(ts *TokenStream, groupSize int) *MRRStats {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	stats := &MRRStats{GroupSize: groupSize}
	outStart := 0
	for base := 0; base < len(ts.Seqs); base += groupSize {
		end := base + groupSize
		if end > len(ts.Seqs) {
			end = len(ts.Seqs)
		}
		group := ts.Seqs[base:end]
		g := layoutGroup(group, outStart)
		outStart = g.brEnd[len(g.brEnd)-1]

		pending := make([]bool, len(group))
		nPending := 0
		for i, s := range group {
			if s.MatchLen > 0 {
				pending[i] = true
				nPending++
				stats.TotalBytes += int64(s.MatchLen)
			}
		}
		if nPending == 0 {
			continue
		}
		stats.Groups++
		round := 0
		for nPending > 0 {
			round++
			firstPending := -1
			for i := range pending {
				if pending[i] {
					firstPending = i
					break
				}
			}
			hwm := g.brPos[firstPending]
			resolvedAny := false
			var roundBytes int64
			var roundSeqs int64
			for i := range pending {
				if !pending[i] {
					continue
				}
				if i == firstPending || g.readEnd[i] <= hwm {
					pending[i] = false
					nPending--
					resolvedAny = true
					roundBytes += int64(group[i].MatchLen)
					roundSeqs++
				}
			}
			if !resolvedAny {
				panic(fmt.Sprintf("lz77: MRR made no progress in group at seq %d", base))
			}
			for len(stats.BytesPerRound) < round {
				stats.BytesPerRound = append(stats.BytesPerRound, 0)
				stats.SeqsPerRound = append(stats.SeqsPerRound, 0)
			}
			stats.BytesPerRound[round-1] += roundBytes
			stats.SeqsPerRound[round-1] += roundSeqs
		}
		stats.Rounds = append(stats.Rounds, round)
		if round > stats.MaxRounds {
			stats.MaxRounds = round
		}
	}
	return stats
}

// CheckDE verifies that a token stream is resolvable in a single
// back-reference round per warp group, i.e. that a Dependency-Elimination
// parse really eliminated intra-group dependencies. Streams produced with
// DEStrict or DELit must always pass.
func CheckDE(ts *TokenStream, groupSize int) error {
	stats := AnalyzeMRR(ts, groupSize)
	if stats.MaxRounds > 1 {
		return fmt.Errorf("lz77: stream needs %d MRR rounds; not dependency-free", stats.MaxRounds)
	}
	return nil
}
