// Package lz77 implements the LZ77 layer of Gompresso: parsing input into
// sequences (literal string + back-reference pairs, paper §III-B2), the
// Dependency-Elimination compressor variant (paper §IV-B, Fig. 7), a
// sequential reference decompressor, and analyzers for back-reference
// nesting depth used by the Multi-Round Resolution experiments.
package lz77

import (
	"errors"
	"fmt"
)

// Defaults mirror the paper's experimental setup (§V): an 8 KB sliding
// window, 64-byte match lookahead, and warps of 32 sequences.
const (
	DefaultWindow    = 8 << 10
	DefaultMinMatch  = 4
	DefaultMaxMatch  = 64
	DefaultMaxChain  = 64
	DefaultGroupSize = 32
	DefaultStaleness = 1 << 10 // paper §IV-B: 1K minimal staleness
	MaxWindow        = 1 << 20
)

// DEMode selects how the Dependency-Elimination parse constrains matches.
type DEMode int

const (
	// DEOff emits unrestricted matches (normal LZ77); decompression needs
	// MRR (or sequential copying) to resolve intra-warp dependencies.
	DEOff DEMode = iota
	// DEStrict is the paper's Fig. 7 rule: a match's source interval must end
	// at or below the warp high-water mark (the input position completed
	// before the current group of 32 sequences began). Guarantees one-round
	// back-reference resolution.
	DEStrict
	// DELit additionally allows matches into literal intervals already
	// emitted within the current group. Those bytes are written in the
	// literal phase before any back-reference resolves, so decompression
	// still needs only one round. This is an ablation on the paper's rule
	// that recovers some ratio at block starts.
	DELit
)

func (m DEMode) String() string {
	switch m {
	case DEOff:
		return "off"
	case DEStrict:
		return "strict"
	case DELit:
		return "strict+lit"
	default:
		return fmt.Sprintf("DEMode(%d)", int(m))
	}
}

// Seq is one sequence: LitLen literal bytes (taken from the shared literal
// buffer) followed by a back-reference of MatchLen bytes at distance Offset.
// MatchLen == 0 denotes a literal-only sequence (the final sequence of a
// block, or a forced close in the DE parse near block starts).
type Seq struct {
	LitLen   uint32
	MatchLen uint32
	Offset   uint32
}

// TokenStream is the parsed form of one data block.
type TokenStream struct {
	Literals []byte // concatenation of all literal strings, in order
	Seqs     []Seq
	RawLen   int // uncompressed block length
}

// Options configures the parser.
type Options struct {
	Window    int    // sliding window size; matches cannot start earlier than pos-Window
	MinMatch  int    // minimum match length (3 or 4)
	MaxMatch  int    // maximum match length (lookahead)
	MaxChain  int    // hash-chain search depth for the chain matcher
	DE        DEMode // dependency elimination mode
	GroupSize int    // sequences per warp group (DE granularity)
	// Staleness activates the LZ4-style single-entry hash matcher with the
	// paper's minimal-staleness replacement policy (§IV-B) instead of hash
	// chains. Zero selects hash chains.
	Staleness int
	// MaxLitRun forces a literal-only sequence close after this many literal
	// bytes without a match. Required for DEStrict termination at block
	// starts (no matches can exist below warpHWM = 0); harmless otherwise.
	// Zero means 4*MaxMatch.
	MaxLitRun int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MinMatch == 0 {
		o.MinMatch = DefaultMinMatch
	}
	if o.MaxMatch == 0 {
		o.MaxMatch = DefaultMaxMatch
	}
	if o.MaxChain == 0 {
		o.MaxChain = DefaultMaxChain
	}
	if o.GroupSize == 0 {
		o.GroupSize = DefaultGroupSize
	}
	if o.MaxLitRun == 0 {
		o.MaxLitRun = 4 * o.MaxMatch
	}
	return o
}

// validate rejects nonsensical configurations.
func (o Options) validate() error {
	switch {
	case o.Window < 16 || o.Window > MaxWindow:
		return fmt.Errorf("lz77: window %d out of range", o.Window)
	case o.MinMatch < 3 || o.MinMatch > 16:
		return fmt.Errorf("lz77: min match %d out of range", o.MinMatch)
	case o.MaxMatch < o.MinMatch:
		return fmt.Errorf("lz77: max match %d < min match %d", o.MaxMatch, o.MinMatch)
	case o.MaxMatch > 1<<16:
		return fmt.Errorf("lz77: max match %d too large", o.MaxMatch)
	case o.GroupSize < 1 || o.GroupSize > 1024:
		return fmt.Errorf("lz77: group size %d out of range", o.GroupSize)
	}
	return nil
}

// ErrCorrupt reports a token stream that does not describe a valid block.
var ErrCorrupt = errors.New("lz77: corrupt token stream")

// Decompress sequentially reconstructs the block. It is the reference
// decoder used to validate the parallel kernels. dst must have capacity for
// RawLen bytes; the decompressed block is returned.
func (ts *TokenStream) Decompress(dst []byte) ([]byte, error) {
	// Size the output up front so the inner loop writes by index and match
	// expansion can use chunked copies instead of byte-at-a-time appends.
	total := 0
	for si := range ts.Seqs {
		total += int(ts.Seqs[si].LitLen) + int(ts.Seqs[si].MatchLen)
	}
	if cap(dst) < total {
		dst = make([]byte, total)
	}
	dst = dst[:total]
	pos := 0
	lit := ts.Literals
	for si := range ts.Seqs {
		s := &ts.Seqs[si]
		if int(s.LitLen) > len(lit) {
			return nil, fmt.Errorf("%w: literal overrun at seq %d", ErrCorrupt, si)
		}
		pos += copy(dst[pos:], lit[:s.LitLen])
		lit = lit[s.LitLen:]
		if s.MatchLen == 0 {
			continue
		}
		off := int(s.Offset)
		if off <= 0 || off > pos {
			return nil, fmt.Errorf("%w: offset %d at seq %d (have %d bytes)", ErrCorrupt, off, si, pos)
		}
		pos = CopyWithin(dst, pos, off, int(s.MatchLen))
	}
	if len(lit) != 0 {
		return nil, fmt.Errorf("%w: %d trailing literal bytes", ErrCorrupt, len(lit))
	}
	if ts.RawLen != 0 && pos != ts.RawLen {
		return nil, fmt.Errorf("%w: decompressed %d bytes, header says %d", ErrCorrupt, pos, ts.RawLen)
	}
	return dst[:pos], nil
}

// Validate structurally checks the stream without materializing output.
func (ts *TokenStream) Validate() error {
	var out, lit int
	for si := range ts.Seqs {
		s := &ts.Seqs[si]
		lit += int(s.LitLen)
		if lit > len(ts.Literals) {
			return fmt.Errorf("%w: literal overrun at seq %d", ErrCorrupt, si)
		}
		out += int(s.LitLen)
		if s.MatchLen > 0 {
			if int(s.Offset) <= 0 || int(s.Offset) > out {
				return fmt.Errorf("%w: offset %d at seq %d", ErrCorrupt, s.Offset, si)
			}
			out += int(s.MatchLen)
		}
	}
	if lit != len(ts.Literals) {
		return fmt.Errorf("%w: %d literal bytes unused", ErrCorrupt, len(ts.Literals)-lit)
	}
	if ts.RawLen != 0 && out != ts.RawLen {
		return fmt.Errorf("%w: stream describes %d bytes, header says %d", ErrCorrupt, out, ts.RawLen)
	}
	return nil
}

// CompressedSizeByte estimates the Gompresso/Byte wire size of the stream
// (used by ratio experiments before any container overhead).
func (ts *TokenStream) CompressedSizeByte() int {
	size := len(ts.Literals)
	for _, s := range ts.Seqs {
		size += seqHeaderSizeByte(s)
	}
	return size
}

// seqHeaderSizeByte mirrors the byte-level encoding in internal/format:
// 1 token byte + LZ4-style length extensions + 2-byte offset when a match is
// present.
func seqHeaderSizeByte(s Seq) int {
	size := 1
	if s.LitLen >= 15 {
		size += int(s.LitLen-15)/255 + 1
	}
	if s.MatchLen > 0 {
		size += 2
		if s.MatchLen >= 15 {
			size += int(s.MatchLen-15)/255 + 1
		}
	}
	return size
}
