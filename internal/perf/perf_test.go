package perf

import "testing"

func TestEnergy(t *testing.T) {
	if Energy(100, 2) != 200 {
		t.Fatal("energy arithmetic")
	}
	if got := EnergyPerGB(200, 1, 1<<29); got != 400 {
		// 200 J spent on half a GB is 400 J/GB.
		t.Fatalf("EnergyPerGB half-GB run = %v, want 400", got)
	}
	if EnergyPerGB(200, 1, 0) != 0 {
		t.Fatal("zero bytes should not divide")
	}
}

func TestCalibrationTable(t *testing.T) {
	for _, d := range []Dataset{Wikipedia, Matrix} {
		for _, c := range CPUCodecs() {
			pt, err := CalibratedCPU(d, c)
			if err != nil {
				t.Fatalf("%v/%s: %v", d, c, err)
			}
			if pt.GBps <= 0 || pt.Ratio <= 1 {
				t.Fatalf("%v/%s: implausible point %+v", d, c, pt)
			}
		}
	}
	if _, err := CalibratedCPU(Wikipedia, "nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := CalibratedCPU(Dataset(9), "zlib"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPaperRelationsHold(t *testing.T) {
	// The calibration must preserve the paper's qualitative geometry:
	// byte-aligned codecs are faster but compress less than bit-aligned.
	for _, d := range []Dataset{Wikipedia, Matrix} {
		lz4, _ := CalibratedCPU(d, "LZ4")
		snappy, _ := CalibratedCPU(d, "Snappy")
		zlib, _ := CalibratedCPU(d, "zlib")
		zstd, _ := CalibratedCPU(d, "Zstd")
		if !(lz4.GBps > zlib.GBps && snappy.GBps > zlib.GBps) {
			t.Fatalf("%v: byte codecs should out-run zlib", d)
		}
		if !(zlib.Ratio > lz4.Ratio && zstd.Ratio > snappy.Ratio) {
			t.Fatalf("%v: bit codecs should out-compress byte codecs", d)
		}
	}
	// Wikipedia gzip ratio must match the paper's quoted 3.09.
	w, _ := CalibratedCPU(Wikipedia, "zlib")
	if w.Ratio != 3.09 {
		t.Fatalf("zlib Wikipedia ratio %v, paper says 3.09", w.Ratio)
	}
	m, _ := CalibratedCPU(Matrix, "zlib")
	if m.Ratio != 4.99 {
		t.Fatalf("zlib Matrix ratio %v, paper says 4.99", m.Ratio)
	}
}
