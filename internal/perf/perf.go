// Package perf holds the performance models that turn simulated or measured
// times into the paper's reported quantities: wall-socket energy (Fig. 14)
// and the paper-calibrated CPU-library operating points used by the
// machine-independent "calibrated" figure mode (Fig. 13).
package perf

import "fmt"

// System power presets, wall socket, under decompression load. The paper
// measured energy with a power meter at the plug and notes that power "does
// not differ significantly for different algorithms" on the same platform
// (§V-D) — energy differences come from runtime. For CPU-only runs the GPUs
// were physically removed.
const (
	// CPUSystemWatts models the dual-socket E5-2620v2 server (paper §V),
	// GPUs removed.
	CPUSystemWatts = 230.0
	// GPUSystemWatts models the same server while the Tesla K40 does the
	// decompression: the host sockets sit near idle (~110 W) and the K40
	// board draws close to its 235 W TDP under memory-intensive kernels.
	// This is the operating point behind the paper's 17 % energy saving.
	GPUSystemWatts = 300.0
)

// Energy returns joules for a run of the given duration at the given system
// power.
func Energy(watts, seconds float64) float64 { return watts * seconds }

// EnergyPerGB normalizes to the paper's Fig. 14 unit (joules for 1 GB of
// uncompressed data) from any measured size.
func EnergyPerGB(watts, seconds float64, rawBytes int64) float64 {
	if rawBytes <= 0 {
		return 0
	}
	return watts * seconds * float64(1<<30) / float64(rawBytes)
}

// Dataset identifies a calibration corpus.
type Dataset int

const (
	Wikipedia Dataset = iota
	Matrix
)

func (d Dataset) String() string {
	switch d {
	case Wikipedia:
		return "Wikipedia"
	case Matrix:
		return "Matrix"
	default:
		return fmt.Sprintf("Dataset(%d)", int(d))
	}
}

// OperatingPoint is a (decompression speed, compression ratio) pair.
type OperatingPoint struct {
	GBps  float64
	Ratio float64
}

// CalibratedCPU returns the operating point of a parallel CPU library as
// read off the paper's Fig. 13 (24 hardware threads on the dual E5-2620v2).
// The "calibrated" figure mode uses these so the CPU side of Figs. 13/14
// reproduces the paper's geometry regardless of the host running the
// reproduction; the "measured" mode runs the real Go codecs instead.
func CalibratedCPU(d Dataset, codec string) (OperatingPoint, error) {
	table := map[Dataset]map[string]OperatingPoint{
		Wikipedia: {
			"Snappy": {GBps: 6.5, Ratio: 2.07},
			"LZ4":    {GBps: 7.0, Ratio: 2.10},
			"Zstd":   {GBps: 4.6, Ratio: 3.20},
			"zlib":   {GBps: 5.0, Ratio: 3.09},
		},
		Matrix: {
			"Snappy": {GBps: 7.5, Ratio: 3.50},
			"LZ4":    {GBps: 8.0, Ratio: 3.60},
			"Zstd":   {GBps: 5.0, Ratio: 6.20},
			"zlib":   {GBps: 5.5, Ratio: 4.99},
		},
	}
	pts, ok := table[d]
	if !ok {
		return OperatingPoint{}, fmt.Errorf("perf: unknown dataset %v", d)
	}
	pt, ok := pts[codec]
	if !ok {
		return OperatingPoint{}, fmt.Errorf("perf: no calibration for codec %q", codec)
	}
	return pt, nil
}

// CPUCodecs lists the codecs with calibration points, in Fig. 13 order.
func CPUCodecs() []string { return []string{"Snappy", "LZ4", "Zstd", "zlib"} }
