package perf

// Runtime metrics for the serving layer. The package's other half turns
// measured times into the paper's reported quantities offline; this half
// is the live counterpart: cheap atomic counters and gauges a daemon
// bumps on the request path, collected by a Registry that renders a
// Prometheus-style text exposition or JSON for a /metrics endpoint.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which should be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, resident
// bytes). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram records durations (or any non-negative values) into
// log-linear buckets and reports approximate quantiles. Observations
// are a single atomic add on the request path; quantile extraction
// walks the buckets at scrape time. Each power-of-two octave is split
// into 2^subBucketBits equal sub-buckets (values below the first
// octave are recorded exactly), so quantile upper bounds are within
// one sub-bucket — at most 25% — of the true value, tight enough to
// gate "did p99 move 20%" SLOs rather than just "did p99 blow up".
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

const (
	// subBucketBits selects 4 sub-buckets per octave: bucket width is
	// 1/4 of the octave's base, bounding relative quantile error at
	// (subBuckets+1)/subBuckets = 1.25x.
	subBucketBits = 2
	subBuckets    = 1 << subBucketBits
	// numBuckets covers every non-negative int64: the top value
	// (2^63 - 1) has exponent 62, landing in bucket
	// (62-subBucketBits+1)<<subBucketBits + 3 = 247.
	numBuckets = (64-subBucketBits)<<subBucketBits + subBuckets
)

// Observe records one value. Non-positive values land in bucket 0.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	h.buckets[bucketFor(v)].Add(1)
}

// bucketFor maps a value to its log-linear bucket. Values below
// subBuckets get their own exact bucket; above that, the bucket is the
// exponent octave split subBuckets ways by the next mantissa bits. The
// mapping is continuous: bucketFor(subBuckets) == subBuckets, and each
// octave's last sub-bucket abuts the next octave's first.
func bucketFor(v int64) int {
	if v < subBuckets {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - subBucketBits
	return int(uint64(v)>>e&(subBuckets-1)) + (e+1)<<subBucketBits
}

// bucketUpper is the exclusive upper bound of bucket i — the smallest
// value that does NOT land in it (for the exact low buckets, the value
// itself). The top buckets saturate at MaxInt64 rather than overflow.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	e := i>>subBucketBits - 1
	base := uint64(subBuckets + i&(subBuckets-1) + 1)
	if bits.Len64(base)+e > 63 {
		return math.MaxInt64
	}
	return int64(base << e)
}

// BucketIndex exposes the bucket mapping so external recorders (the
// load harness) can check agreement with a scraped quantile in units of
// sub-buckets.
func BucketIndex(v int64) int { return bucketFor(v) }

// BucketBounds returns the [lo, hi) value range of the bucket holding v.
func BucketBounds(v int64) (lo, hi int64) {
	i := bucketFor(v)
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	e := i>>subBucketBits - 1
	return int64(subBuckets+i&(subBuckets-1)) << e, bucketUpper(i)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1)
// of everything observed so far, or 0 with no observations. The bound
// is the top of the sub-bucket holding the q-th sample: exact for
// values below subBuckets, at most 1.25x the true value elsewhere.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// Histogram registers a histogram under name, exposing
// name_count, name_sum, and name_{p50,p95,p99,p999} samplers.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(name+"_count", help+" (observations)", func() float64 { return float64(h.count.Load()) })
	r.register(name+"_sum", help+" (sum)", func() float64 { return float64(h.sum.Load()) })
	for _, q := range []struct {
		label string
		q     float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}} {
		q := q
		r.register(name+"_"+q.label, help+" ("+q.label+", upper bound)",
			func() float64 { return float64(h.Quantile(q.q)) })
	}
	return h
}

// metric is one registered name with its sampler. labels, when
// non-empty, is the pre-rendered `{k="v",...}` suffix for the text
// exposition (only Info metrics carry labels; the JSON rendering keys
// on the bare name).
type metric struct {
	name   string
	help   string
	labels string
	sample func() float64
}

// Registry collects named metrics and renders them. Registration is
// expected at setup time; rendering may run concurrently with updates
// (samples are individually atomic, the exposition is not a consistent
// cut — the usual contract for scrape endpoints).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// register adds (or replaces) a sampler under name.
func (r *Registry) register(name, help string, sample func() float64) {
	r.registerLabeled(name, help, "", sample)
}

func (r *Registry) registerLabeled(name, help, labels string, sample func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		r.metrics[i] = metric{name, help, labels, sample}
		return
	}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name, help, labels, sample})
}

// Counter registers and returns a counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, func() float64 { return float64(c.Load()) })
	return c
}

// Gauge registers and returns a gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, func() float64 { return float64(g.Load()) })
	return g
}

// Func registers a computed metric, sampled at render time — the hook
// for values owned elsewhere (cache residency, hit rate).
func (r *Registry) Func(name, help string, sample func() float64) {
	r.register(name, help, sample)
}

// Info registers a constant-1 gauge whose information lives in its
// labels (the Prometheus build_info idiom). Labels render in the text
// exposition as `name{k="v",...} 1`, in given order; the JSON rendering
// keeps the bare name. Label values are escaped per the text format.
func (r *Registry) Info(name, help string, labels ...[2]string) {
	var b []byte
	for i, kv := range labels {
		if i == 0 {
			b = append(b, '{')
		} else {
			b = append(b, ',')
		}
		b = append(b, kv[0]...)
		b = append(b, '=', '"')
		for _, c := range []byte(kv[1]) {
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			default:
				b = append(b, c)
			}
		}
		b = append(b, '"')
	}
	if len(b) > 0 {
		b = append(b, '}')
	}
	r.registerLabeled(name, help, string(b), func() float64 { return 1 })
}

// Snapshot samples every metric once, in registration order.
func (r *Registry) Snapshot() (names []string, values []float64) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	names = make([]string, len(ms))
	values = make([]float64, len(ms))
	for i, m := range ms {
		names[i] = m.name
		values[i] = m.sample()
	}
	return names, values
}

// WriteText renders the registry in Prometheus text exposition style:
// a "# HELP" line per metric followed by "name value".
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatValue(m.sample())); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as a flat JSON object, keys sorted for
// stable output.
func (r *Registry) WriteJSON(w io.Writer) error {
	names, values := r.Snapshot()
	obj := make(map[string]float64, len(names))
	for i, n := range names {
		obj[n] = values[i]
	}
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Hand-rolled ordered emission: encoding/json writes maps in sorted
	// key order already, but emitting explicitly keeps integers integral
	// (no 1e+06 notation) for shell-friendly scraping.
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		sep := ","
		if i == 0 {
			sep = ""
		}
		kb, _ := json.Marshal(k)
		if _, err := fmt.Fprintf(w, "%s\n  %s: %s", sep, kb, formatValue(obj[k])); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// formatValue renders integers without an exponent and floats compactly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
