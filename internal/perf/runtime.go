package perf

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per scrape window so the
// several Go-runtime metrics below cost one stats read per second, not
// one stop-the-world read each.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (s *memSampler) get() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > time.Second {
		runtime.ReadMemStats(&s.stat)
		s.at = time.Now()
	}
	return &s.stat
}

// RegisterRuntime adds Go-runtime health metrics — goroutine count,
// heap residency, GC activity, process start time — to the registry.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	ms := &memSampler{}
	r.Func("go_goroutines", "goroutines running now", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Func("go_heap_alloc_bytes", "heap bytes allocated and in use", func() float64 {
		return float64(ms.get().HeapAlloc)
	})
	r.Func("go_heap_sys_bytes", "heap bytes obtained from the OS", func() float64 {
		return float64(ms.get().HeapSys)
	})
	r.Func("go_gc_cycles_total", "completed GC cycles", func() float64 {
		return float64(ms.get().NumGC)
	})
	r.Func("go_gc_pause_ns_total", "cumulative stop-the-world GC pause, nanoseconds", func() float64 {
		return float64(ms.get().PauseTotalNs)
	})
	r.Func("go_gc_last_pause_ns", "most recent stop-the-world GC pause, nanoseconds", func() float64 {
		s := ms.get()
		if s.NumGC == 0 {
			return 0
		}
		return float64(s.PauseNs[(s.NumGC+255)%256])
	})
	r.Func("process_start_time_seconds", "process start, seconds since the epoch", func() float64 {
		return float64(start.Unix())
	})
	r.Func("process_uptime_seconds", "seconds since process start", func() float64 {
		return time.Since(start).Seconds()
	})
}
