package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	if g.Load() != 10 {
		t.Fatalf("gauge = %d", g.Load())
	}
	g.Set(-3)
	if g.Load() != -3 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	r.Gauge("inflight", "").Set(2)
	r.Func("hit_rate", "cache hit rate", func() float64 { return 0.25 })
	c.Add(7)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests served\n",
		"requests_total 7\n",
		"inflight 2\n",
		"hit_rate 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP inflight") {
		t.Fatalf("empty help rendered:\n%s", out)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(1000000) // must not render as 1e+06
	r.Func("a_rate", "", func() float64 { return 0.5 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if got["b_total"] != 1000000 || got["a_rate"] != 0.5 {
		t.Fatalf("got %v", got)
	}
	if strings.Contains(buf.String(), "e+") {
		t.Fatalf("exponent notation in JSON: %s", buf.String())
	}
}

func TestRegistryReplaceAndConcurrency(t *testing.T) {
	r := NewRegistry()
	r.Func("x", "", func() float64 { return 1 })
	r.Func("x", "", func() float64 { return 2 }) // replace, not duplicate
	names, values := r.Snapshot()
	if len(names) != 1 || values[0] != 2 {
		t.Fatalf("snapshot = %v %v", names, values)
	}

	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				var buf bytes.Buffer
				r.WriteText(&buf)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_ns", "request latency")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d", got)
	}
	// 99 fast observations around 1000, one slow outlier at 1<<20.
	for i := 0; i < 99; i++ {
		h.Observe(1000)
	}
	h.Observe(1 << 20)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Bucket bounds are powers of two: 1000 lands in [512,1024) → bound 1024.
	if p50 := h.Quantile(0.50); p50 != 1024 {
		t.Fatalf("p50 = %d, want 1024", p50)
	}
	if p95 := h.Quantile(0.95); p95 != 1024 {
		t.Fatalf("p95 = %d, want 1024", p95)
	}
	// The outlier is exactly the 100th sample: p99 rank 99 is still fast,
	// p100 (q=1) must see it.
	if p100 := h.Quantile(1); p100 != 1<<21 {
		t.Fatalf("p100 = %d, want %d", p100, 1<<21)
	}
	// The registry exposes derived samplers.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"req_ns_count 100", "req_ns_p50 1024", "req_ns_p99 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Non-positive observations count but go to bucket zero.
	h2 := Histogram{}
	h2.Observe(0)
	h2.Observe(-5)
	if h2.Count() != 2 || h2.Quantile(0.5) != 2 {
		t.Fatalf("zero-bucket handling: count=%d q=%d", h2.Count(), h2.Quantile(0.5))
	}
}
