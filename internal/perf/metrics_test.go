package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	if g.Load() != 10 {
		t.Fatalf("gauge = %d", g.Load())
	}
	g.Set(-3)
	if g.Load() != -3 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	r.Gauge("inflight", "").Set(2)
	r.Func("hit_rate", "cache hit rate", func() float64 { return 0.25 })
	c.Add(7)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests served\n",
		"requests_total 7\n",
		"inflight 2\n",
		"hit_rate 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP inflight") {
		t.Fatalf("empty help rendered:\n%s", out)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(1000000) // must not render as 1e+06
	r.Func("a_rate", "", func() float64 { return 0.5 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if got["b_total"] != 1000000 || got["a_rate"] != 0.5 {
		t.Fatalf("got %v", got)
	}
	if strings.Contains(buf.String(), "e+") {
		t.Fatalf("exponent notation in JSON: %s", buf.String())
	}
}

func TestRegistryReplaceAndConcurrency(t *testing.T) {
	r := NewRegistry()
	r.Func("x", "", func() float64 { return 1 })
	r.Func("x", "", func() float64 { return 2 }) // replace, not duplicate
	names, values := r.Snapshot()
	if len(names) != 1 || values[0] != 2 {
		t.Fatalf("snapshot = %v %v", names, values)
	}

	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				var buf bytes.Buffer
				r.WriteText(&buf)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_ns", "request latency")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d", got)
	}
	// 99 fast observations around 1000, one slow outlier at 1<<20.
	for i := 0; i < 99; i++ {
		h.Observe(1000)
	}
	h.Observe(1 << 20)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log-linear buckets, 4 per octave: 1000 lands in [896,1024) → bound 1024.
	if p50 := h.Quantile(0.50); p50 != 1024 {
		t.Fatalf("p50 = %d, want 1024", p50)
	}
	if p95 := h.Quantile(0.95); p95 != 1024 {
		t.Fatalf("p95 = %d, want 1024", p95)
	}
	// The outlier is exactly the 100th sample: p99 rank 99 is still fast,
	// p100 (q=1) must see it. 1<<20 lands in [1<<20, 5<<18) → bound 5<<18.
	if p100 := h.Quantile(1); p100 != 5<<18 {
		t.Fatalf("p100 = %d, want %d", p100, int64(5)<<18)
	}
	// The registry exposes derived samplers.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"req_ns_count 100", "req_ns_p50 1024", "req_ns_p99 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Non-positive observations count but go to bucket zero, whose
	// upper bound is exact: 0.
	h2 := Histogram{}
	h2.Observe(0)
	h2.Observe(-5)
	if h2.Count() != 2 || h2.Quantile(0.5) != 0 {
		t.Fatalf("zero-bucket handling: count=%d q=%d", h2.Count(), h2.Quantile(0.5))
	}
}

// TestBucketMapping pins the log-linear bucket layout: exact low
// buckets, continuity across octave boundaries, and bounds that
// actually contain their values.
func TestBucketMapping(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 11, 15, 16, 31, 32, 63,
		1000, 1023, 1024, 1<<20 - 1, 1 << 20, 1<<62 - 1, 1 << 62, 1<<63 - 1} {
		i := BucketIndex(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		lo, hi := BucketBounds(v)
		// The top bucket's bound saturates at MaxInt64 (inclusive).
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d outside its bucket bounds [%d,%d)", v, lo, hi)
		}
	}
	// Exact small buckets: one value per bucket below subBuckets.
	for v := int64(0); v < subBuckets; v++ {
		if got := BucketIndex(v); got != int(v) {
			t.Fatalf("BucketIndex(%d) = %d, want exact", v, got)
		}
	}
	// Adjacent buckets abut: each log-linear bucket's upper bound is the
	// next bucket's lower bound (no gaps, no overlaps). The exact low
	// buckets report the value itself, so they are excluded.
	for i := subBuckets; i < numBuckets-1; i++ {
		up := bucketUpper(i)
		if up == math.MaxInt64 {
			break // top reachable bucket: bound saturates
		}
		if got := bucketFor(up); got != i+1 {
			t.Fatalf("bucketFor(bucketUpper(%d)=%d) = %d, want %d", i, up, got, i+1)
		}
	}
}

// TestHistogramQuantileError bounds the refined quantile estimate
// against an exact oracle: the estimate must never be below the true
// quantile and at most one sub-bucket (25%) above it — the property
// that makes "did p99 move 20%" SLO gating meaningful.
func TestHistogramQuantileError(t *testing.T) {
	// Deterministic heavy-tailed-ish sample: a quadratic ramp with a
	// sprinkle of large outliers, microsecond-to-second scale.
	var h Histogram
	var vals []int64
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 20000; i++ {
		v := int64(1000 + (next() % 1000000))
		if i%97 == 0 {
			v *= int64(1 + next()%500) // tail out to ~5e8
		}
		vals = append(vals, v)
		h.Observe(v)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int64(q * float64(len(sorted)))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		est := h.Quantile(q)
		if est < exact {
			t.Fatalf("q=%g: estimate %d below exact %d", q, est, exact)
		}
		if est*4 > exact*5 {
			t.Fatalf("q=%g: estimate %d exceeds exact %d by more than one sub-bucket (25%%)", q, est, exact)
		}
	}
}
