package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	if g.Load() != 10 {
		t.Fatalf("gauge = %d", g.Load())
	}
	g.Set(-3)
	if g.Load() != -3 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	r.Gauge("inflight", "").Set(2)
	r.Func("hit_rate", "cache hit rate", func() float64 { return 0.25 })
	c.Add(7)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests served\n",
		"requests_total 7\n",
		"inflight 2\n",
		"hit_rate 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP inflight") {
		t.Fatalf("empty help rendered:\n%s", out)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(1000000) // must not render as 1e+06
	r.Func("a_rate", "", func() float64 { return 0.5 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if got["b_total"] != 1000000 || got["a_rate"] != 0.5 {
		t.Fatalf("got %v", got)
	}
	if strings.Contains(buf.String(), "e+") {
		t.Fatalf("exponent notation in JSON: %s", buf.String())
	}
}

func TestRegistryReplaceAndConcurrency(t *testing.T) {
	r := NewRegistry()
	r.Func("x", "", func() float64 { return 1 })
	r.Func("x", "", func() float64 { return 2 }) // replace, not duplicate
	names, values := r.Snapshot()
	if len(names) != 1 || values[0] != 2 {
		t.Fatalf("snapshot = %v %v", names, values)
	}

	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				var buf bytes.Buffer
				r.WriteText(&buf)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter = %d", c.Load())
	}
}
