package figures

import (
	"fmt"

	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Fig13Row is one point of paper Fig. 13: decompression speed vs compression
// ratio for Gompresso and the parallel CPU libraries.
type Fig13Row struct {
	Dataset string
	System  string
	GBps    float64
	Ratio   float64
}

// gompressoPoints produces the Gompresso series of Fig. 13: Bit with
// transfers, and Byte at the three transfer accountings.
func gompressoPoints(cfg Config, ds Dataset) ([]Fig13Row, error) {
	var rows []Fig13Row
	bit, bitStats, err := core.Compress(ds.Data, core.Options{
		Variant: format.VariantBit, DE: lz77.DEStrict, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	byteComp, byteStats, err := core.Compress(ds.Data, core.Options{
		Variant: format.VariantByte, DE: lz77.DEStrict, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	series := []struct {
		name  string
		comp  []byte
		ratio float64
		pcie  core.PCIeMode
	}{
		{"Gomp/Bit (In/Out)", bit, bitStats.Ratio, core.PCIeInOut},
		{"Gomp/Byte (In/Out)", byteComp, byteStats.Ratio, core.PCIeInOut},
		{"Gomp/Byte (In)", byteComp, byteStats.Ratio, core.PCIeIn},
		{"Gomp/Byte (No PCIe)", byteComp, byteStats.Ratio, core.PCIeNone},
	}
	for _, s := range series {
		_, st, err := core.Decompress(s.comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.DE,
			Device: cfg.Device, PCIe: s.pcie, TileTo: paperScale,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		rows = append(rows, Fig13Row{
			Dataset: ds.Name, System: s.name,
			GBps: GBps(st.RawSize, st.SimSeconds), Ratio: s.ratio,
		})
	}
	return rows, nil
}

// Fig13 produces both datasets' speed/ratio scatter: four CPU libraries
// (calibrated or measured per cfg.Mode) and the Gompresso series.
func Fig13(cfg Config) ([]Fig13Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig13Row
	for _, ds := range Datasets(cfg) {
		for _, codec := range []string{"Snappy", "LZ4", "Zstd", "zlib"} {
			pt, err := cpuPoint(cfg, ds, codec)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s/%s: %w", ds.Name, codec, err)
			}
			rows = append(rows, Fig13Row{
				Dataset: ds.Name, System: codec + " (CPU)",
				GBps: pt.GBps, Ratio: pt.Ratio,
			})
		}
		gp, err := gompressoPoints(cfg, ds)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", ds.Name, err)
		}
		rows = append(rows, gp...)
	}
	return rows, nil
}

// RenderFig13 formats the rows.
func RenderFig13(rows []Fig13Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.System,
			fmt.Sprintf("%.2f", r.GBps),
			fmt.Sprintf("%.2f", r.Ratio),
		})
	}
	return "Fig 13 — decompression speed vs compression ratio, GPU vs multicore CPU\n" +
		table([]string{"dataset", "system", "GB/s", "ratio"}, cells)
}
