package figures

import (
	"testing"

	"gompresso/internal/lz77"
)

func TestAblationStaleness(t *testing.T) {
	rows, err := AblationStaleness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 points, got %d", len(rows))
	}
	// Longer staleness keeps entries older, so the DE ratio loss must be no
	// worse at 1K than at 64 (the paper's reason for choosing 1K).
	loss := map[int]float64{}
	for _, r := range rows {
		if r.RatioDE <= 0 || r.RatioNoDE <= 0 {
			t.Fatalf("bad ratios: %+v", r)
		}
		loss[r.Staleness] = r.RatioLossPct
	}
	if loss[1024] > loss[64]+1 {
		t.Errorf("DE loss at staleness 1K (%.1f%%) worse than 64 (%.1f%%)", loss[1024], loss[64])
	}
}

func TestAblationDEMode(t *testing.T) {
	rows, err := AblationDEMode(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[lz77.DEMode]DEModeRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	// Unrestricted parse compresses best; DE decompresses fastest; DELit
	// recovers some ratio over DEStrict.
	if byMode[lz77.DEOff].Ratio < byMode[lz77.DEStrict].Ratio {
		t.Errorf("DEOff ratio below DEStrict: %+v", rows)
	}
	if byMode[lz77.DELit].Ratio < byMode[lz77.DEStrict].Ratio-0.01 {
		t.Errorf("DELit should not compress worse than DEStrict: %+v", rows)
	}
	if byMode[lz77.DEStrict].DevGBps <= byMode[lz77.DEOff].DevGBps {
		t.Errorf("DE decompression not faster than MRR: %+v", rows)
	}
	if byMode[lz77.DEStrict].AvgRounds != 1 || byMode[lz77.DELit].AvgRounds != 1 {
		t.Errorf("DE parses must resolve in one round: %+v", rows)
	}
}

func TestAblationSubBlocks(t *testing.T) {
	rows, err := AblationSubBlocks(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fewer sequences per sub-block → more sub-blocks → more header
	// overhead: ratio must be monotone non-decreasing in seqs/sub.
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio < rows[i-1].Ratio-0.005 {
			t.Errorf("ratio not improving with bigger sub-blocks: %+v", rows)
		}
	}
}

func TestAblationCWL(t *testing.T) {
	rows, err := AblationCWL(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var r8, r12 CWLRow
	for _, r := range rows {
		if r.CWL == 8 {
			r8 = r
		}
		if r.CWL == 12 {
			r12 = r
		}
	}
	// Longer codes compress no worse...
	if r12.Ratio < r8.Ratio-0.005 {
		t.Errorf("CWL 12 ratio (%.3f) worse than CWL 8 (%.3f)", r12.Ratio, r8.Ratio)
	}
	// ...but bigger LUTs cannot increase decode occupancy.
	if r12.WarpsPerSM > r8.WarpsPerSM {
		t.Errorf("CWL 12 occupancy (%d) above CWL 8 (%d)", r12.WarpsPerSM, r8.WarpsPerSM)
	}
}
