package figures

import (
	"fmt"
	"time"

	"gompresso/internal/lz77"
)

// Fig11Row is one dataset of paper Fig. 11: the cost of Dependency
// Elimination on the compression side. The paper implemented DE inside LZ4
// (single-entry hash table with the minimal-staleness policy, §IV-B), so
// this experiment uses the same matcher configuration.
type Fig11Row struct {
	Dataset      string
	RatioNoDE    float64
	RatioDE      float64
	SpeedNoDE    float64 // MB/s, host wall clock
	SpeedDE      float64
	RatioLossPct float64
	SpeedLossPct float64
}

// Fig11 parses each dataset with and without DE and reports ratio and
// compression speed (byte-level encoded size, as LZ4 would store it).
func Fig11(cfg Config) ([]Fig11Row, error) {
	cfg = cfg.withDefaults()
	base := lz77.Options{
		Staleness: lz77.DefaultStaleness, // LZ4-style single-entry matcher
		Window:    1<<16 - 1,
	}
	var rows []Fig11Row
	for _, ds := range Datasets(cfg) {
		run := func(de lz77.DEMode) (ratio, mbps float64, err error) {
			opts := base
			opts.DE = de
			start := time.Now()
			ts, err := lz77.Parse(ds.Data, opts)
			if err != nil {
				return 0, 0, err
			}
			secs := time.Since(start).Seconds()
			size := ts.CompressedSizeByte()
			return float64(len(ds.Data)) / float64(size),
				float64(len(ds.Data)) / secs / 1e6, nil
		}
		rOff, sOff, err := run(lz77.DEOff)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", ds.Name, err)
		}
		rDE, sDE, err := run(lz77.DEStrict)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", ds.Name, err)
		}
		rows = append(rows, Fig11Row{
			Dataset:      ds.Name,
			RatioNoDE:    rOff,
			RatioDE:      rDE,
			SpeedNoDE:    sOff,
			SpeedDE:      sDE,
			RatioLossPct: 100 * (1 - rDE/rOff),
			SpeedLossPct: 100 * (1 - sDE/sOff),
		})
	}
	return rows, nil
}

// RenderFig11 formats the rows.
func RenderFig11(rows []Fig11Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset,
			fmt.Sprintf("%.2f", r.RatioNoDE),
			fmt.Sprintf("%.2f", r.RatioDE),
			fmt.Sprintf("%.1f%%", r.RatioLossPct),
			fmt.Sprintf("%.0f", r.SpeedNoDE),
			fmt.Sprintf("%.0f", r.SpeedDE),
			fmt.Sprintf("%.1f%%", r.SpeedLossPct),
		})
	}
	return "Fig 11 — Dependency Elimination cost (LZ4-style matcher; paper: ≤19% ratio, ≤13% speed)\n" +
		table([]string{"dataset", "ratio w/o DE", "ratio w/ DE", "ratio loss",
			"MB/s w/o DE", "MB/s w/ DE", "speed loss"}, cells)
}
