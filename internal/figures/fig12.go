package figures

import (
	"fmt"

	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Fig12Row is one block size of paper Fig. 12: Gompresso/Bit decompression
// speed (transfers included) and compression ratio.
type Fig12Row struct {
	BlockKB   int
	GBps      float64
	Ratio     float64
	Occupancy int // resident decode warps per SM (the figure's mechanism)
}

// Fig12 sweeps the data block size for Gompresso/Bit on the Wikipedia
// dataset with DE streams and In/Out transfers, the configuration of the
// paper's §V-C.
func Fig12(cfg Config) ([]Fig12Row, error) {
	cfg = cfg.withDefaults()
	ds := Datasets(cfg)[0] // Wikipedia
	var rows []Fig12Row
	for _, kb := range []int{32, 64, 128, 256} {
		comp, cs, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantBit, DE: lz77.DEStrict,
			BlockSize: kb << 10, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fig12 %dKB: %w", kb, err)
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.DE,
			Device: cfg.Device, PCIe: core.PCIeInOut, TileTo: paperScale,
		})
		if err != nil {
			return nil, fmt.Errorf("fig12 %dKB: %w", kb, err)
		}
		occ := 0
		if st.DecodeLaunch != nil {
			occ = st.DecodeLaunch.OccupantWarpsPerSM
		}
		rows = append(rows, Fig12Row{
			BlockKB:   kb,
			GBps:      GBps(st.RawSize, st.SimSeconds),
			Ratio:     cs.Ratio,
			Occupancy: occ,
		})
	}
	return rows, nil
}

// RenderFig12 formats the rows.
func RenderFig12(rows []Fig12Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.BlockKB),
			fmt.Sprintf("%.2f", r.GBps),
			fmt.Sprintf("%.2f", r.Ratio),
			fmt.Sprintf("%d", r.Occupancy),
		})
	}
	return "Fig 12 — Gompresso/Bit speed (incl. PCIe) and ratio vs block size (Wikipedia)\n" +
		table([]string{"block KB", "GB/s", "ratio", "decode warps/SM"}, cells)
}
