package figures

import (
	"fmt"

	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Ablations for the design choices DESIGN.md calls out. The paper fixes
// these parameters after internal experiments; the tables below regenerate
// the trade-offs.

// StalenessRow is one point of the minimal-staleness sweep (§IV-B: "by
// testing different values ranging from 64–8K ... we determined that 1K
// results in the lowest compression ratio degradation").
type StalenessRow struct {
	Staleness    int
	RatioDE      float64
	RatioNoDE    float64
	RatioLossPct float64
}

// AblationStaleness sweeps the single-entry hash replacement horizon on the
// Wikipedia corpus.
func AblationStaleness(cfg Config) ([]StalenessRow, error) {
	cfg = cfg.withDefaults()
	ds := Datasets(cfg)[0]
	var rows []StalenessRow
	for _, st := range []int{64, 256, 1024, 4096, 8192} {
		opts := lz77.Options{Staleness: st, Window: 1<<16 - 1}
		tsOff, err := lz77.Parse(ds.Data, opts)
		if err != nil {
			return nil, err
		}
		opts.DE = lz77.DEStrict
		tsDE, err := lz77.Parse(ds.Data, opts)
		if err != nil {
			return nil, err
		}
		rOff := float64(len(ds.Data)) / float64(tsOff.CompressedSizeByte())
		rDE := float64(len(ds.Data)) / float64(tsDE.CompressedSizeByte())
		rows = append(rows, StalenessRow{
			Staleness: st, RatioDE: rDE, RatioNoDE: rOff,
			RatioLossPct: 100 * (1 - rDE/rOff),
		})
	}
	return rows, nil
}

// RenderAblationStaleness formats the sweep.
func RenderAblationStaleness(rows []StalenessRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Staleness),
			fmt.Sprintf("%.3f", r.RatioNoDE),
			fmt.Sprintf("%.3f", r.RatioDE),
			fmt.Sprintf("%.1f%%", r.RatioLossPct),
		})
	}
	return "Ablation — minimal staleness (paper §IV-B picks 1K)\n" +
		table([]string{"staleness", "ratio w/o DE", "ratio w/ DE", "DE ratio loss"}, cells)
}

// DEModeRow compares the three parse rules end to end.
type DEModeRow struct {
	Mode      lz77.DEMode
	Ratio     float64
	DevGBps   float64 // device decompression, best usable strategy
	Strategy  kernels.Strategy
	AvgRounds float64
}

// AblationDEMode compares DEOff (MRR decompression) against DEStrict and
// DELit (single-round DE decompression) on the Wikipedia corpus, Byte
// variant: the ratio/speed frontier behind paper §IV.
func AblationDEMode(cfg Config) ([]DEModeRow, error) {
	cfg = cfg.withDefaults()
	ds := Datasets(cfg)[0]
	var rows []DEModeRow
	for _, mode := range []lz77.DEMode{lz77.DEOff, lz77.DEStrict, lz77.DELit} {
		comp, cs, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantByte, DE: mode, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		strat := kernels.DE
		if mode == lz77.DEOff {
			strat = kernels.MRR
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: strat,
			Device: cfg.Device, TileTo: paperScale,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DEModeRow{
			Mode: mode, Ratio: cs.Ratio,
			DevGBps: GBps(st.RawSize, st.SimSeconds), Strategy: strat,
			AvgRounds: st.Rounds.AvgRounds(),
		})
	}
	return rows, nil
}

// RenderAblationDEMode formats the comparison.
func RenderAblationDEMode(rows []DEModeRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode.String(), fmt.Sprintf("%.3f", r.Ratio),
			r.Strategy.String(), fmt.Sprintf("%.2f", r.DevGBps),
			fmt.Sprintf("%.2f", r.AvgRounds),
		})
	}
	return "Ablation — DE parse rules (off→MRR; strict/strict+lit→single-round DE)\n" +
		table([]string{"parse", "ratio", "strategy", "GB/s", "avg rounds"}, cells)
}

// SubBlockRow is one point of the sequences-per-sub-block sweep (paper §III:
// "more sub-blocks per block increases parallelism and hence performance,
// but diminishes sub-block size and hence compression ratio").
type SubBlockRow struct {
	SeqsPerSub int
	Ratio      float64
	DevGBps    float64
}

// AblationSubBlocks sweeps the sub-block granularity for Gompresso/Bit.
func AblationSubBlocks(cfg Config) ([]SubBlockRow, error) {
	cfg = cfg.withDefaults()
	ds := Datasets(cfg)[0]
	var rows []SubBlockRow
	for _, n := range []int{4, 8, 16, 32, 64} {
		comp, cs, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantBit, DE: lz77.DEStrict,
			SeqsPerSub: n, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.DE,
			Device: cfg.Device, TileTo: paperScale,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SubBlockRow{
			SeqsPerSub: n, Ratio: cs.Ratio,
			DevGBps: GBps(st.RawSize, st.SimSeconds),
		})
	}
	return rows, nil
}

// RenderAblationSubBlocks formats the sweep.
func RenderAblationSubBlocks(rows []SubBlockRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.SeqsPerSub),
			fmt.Sprintf("%.3f", r.Ratio),
			fmt.Sprintf("%.2f", r.DevGBps),
		})
	}
	return "Ablation — sequences per sub-block (paper picks 16)\n" +
		table([]string{"seqs/sub-block", "ratio", "GB/s"}, cells)
}

// CWLRow is one point of the codeword-length-limit sweep (paper §V-C:
// CWL = 10 fits the LUTs in on-chip memory at ≈9 % ratio cost).
type CWLRow struct {
	CWL        int
	Ratio      float64
	DevGBps    float64
	WarpsPerSM int
}

// AblationCWL sweeps the Huffman length limit; larger tables cost occupancy.
func AblationCWL(cfg Config) ([]CWLRow, error) {
	cfg = cfg.withDefaults()
	ds := Datasets(cfg)[0]
	var rows []CWLRow
	for _, cwl := range []int{8, 9, 10, 11, 12} {
		comp, cs, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantBit, DE: lz77.DEStrict,
			CWL: cwl, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.DE,
			Device: cfg.Device, TileTo: paperScale,
		})
		if err != nil {
			return nil, err
		}
		occ := 0
		if st.DecodeLaunch != nil {
			occ = st.DecodeLaunch.OccupantWarpsPerSM
		}
		rows = append(rows, CWLRow{
			CWL: cwl, Ratio: cs.Ratio,
			DevGBps: GBps(st.RawSize, st.SimSeconds), WarpsPerSM: occ,
		})
	}
	return rows, nil
}

// RenderAblationCWL formats the sweep.
func RenderAblationCWL(rows []CWLRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.CWL),
			fmt.Sprintf("%.3f", r.Ratio),
			fmt.Sprintf("%.2f", r.DevGBps),
			fmt.Sprintf("%d", r.WarpsPerSM),
		})
	}
	return "Ablation — Huffman codeword length limit (paper picks CWL=10)\n" +
		table([]string{"CWL", "ratio", "GB/s", "decode warps/SM"}, cells)
}
