package figures

import (
	"fmt"

	"gompresso/internal/baseline"
	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Scalar is one quoted result from the paper's text with its reproduced
// value.
type Scalar struct {
	Name     string
	Paper    string
	Measured string
}

// Scalars reproduces every scalar claim in §V.
func Scalars(cfg Config) ([]Scalar, error) {
	cfg = cfg.withDefaults()
	var out []Scalar
	dss := Datasets(cfg)

	// gzip -6 ratios of the two corpora.
	fl := baseline.NewFlate(6)
	for i, want := range []string{"3.09:1", "4.99:1"} {
		comp, err := fl.Compress(dss[i].Data)
		if err != nil {
			return nil, err
		}
		out = append(out, Scalar{
			Name:     fmt.Sprintf("gzip -6 ratio, %s", dss[i].Name),
			Paper:    want,
			Measured: fmt.Sprintf("%.2f:1", float64(len(dss[i].Data))/float64(len(comp))),
		})
	}

	// Strategy speeds and MRR rounds.
	f9a, err := Fig9a(cfg)
	if err != nil {
		return nil, err
	}
	speed := map[string]map[kernels.Strategy]float64{}
	rounds := map[string]float64{}
	for _, r := range f9a {
		if speed[r.Dataset] == nil {
			speed[r.Dataset] = map[kernels.Strategy]float64{}
		}
		speed[r.Dataset][r.Strategy] = r.GBps
		if r.Strategy == kernels.MRR {
			rounds[r.Dataset] = r.AvgRounds
		}
	}
	out = append(out,
		Scalar{"avg MRR rounds, Wikipedia", "≈ 3", fmt.Sprintf("%.1f", rounds["Wikipedia"])},
		Scalar{"avg MRR rounds, Matrix", "≈ 4", fmt.Sprintf("%.1f", rounds["Matrix"])},
	)
	for _, name := range []string{"Wikipedia", "Matrix"} {
		s := speed[name]
		out = append(out,
			Scalar{
				Name:     fmt.Sprintf("DE speedup over SC, %s", name),
				Paper:    "≥ 5×",
				Measured: fmt.Sprintf("%.1f×", s[kernels.DE]/s[kernels.SC]),
			},
			Scalar{
				Name:     fmt.Sprintf("DE speedup over MRR, %s", name),
				Paper:    "2–3×",
				Measured: fmt.Sprintf("%.1f×", s[kernels.DE]/s[kernels.MRR]),
			},
		)
	}

	// Cross-library speedups from Fig. 13.
	f13, err := Fig13(cfg)
	if err != nil {
		return nil, err
	}
	pts := map[string]map[string]Fig13Row{}
	for _, r := range f13 {
		if pts[r.Dataset] == nil {
			pts[r.Dataset] = map[string]Fig13Row{}
		}
		pts[r.Dataset][r.System] = r
	}
	for _, name := range []string{"Wikipedia", "Matrix"} {
		p := pts[name]
		out = append(out, Scalar{
			Name:     fmt.Sprintf("Gompresso/Bit vs parallel zlib, %s", name),
			Paper:    "≈ 2×",
			Measured: fmt.Sprintf("%.1f×", p["Gomp/Bit (In/Out)"].GBps/p["zlib (CPU)"].GBps),
		})
	}
	wiki := pts["Wikipedia"]
	out = append(out, Scalar{
		Name:     "Gompresso/Byte (In) vs parallel LZ4, Wikipedia",
		Paper:    "≈ 1.35×",
		Measured: fmt.Sprintf("%.2f×", wiki["Gomp/Byte (In)"].GBps/wiki["LZ4 (CPU)"].GBps),
	})

	// DE compression-side costs from Fig. 11.
	f11, err := Fig11(cfg)
	if err != nil {
		return nil, err
	}
	maxRatioLoss, maxSpeedLoss := 0.0, 0.0
	for _, r := range f11 {
		if r.RatioLossPct > maxRatioLoss {
			maxRatioLoss = r.RatioLossPct
		}
		if r.SpeedLossPct > maxSpeedLoss {
			maxSpeedLoss = r.SpeedLossPct
		}
	}
	out = append(out,
		Scalar{"max DE compression-ratio degradation", "19 %", fmt.Sprintf("%.1f %%", maxRatioLoss)},
		Scalar{"max DE compression-speed degradation", "13 %", fmt.Sprintf("%.1f %%", maxSpeedLoss)},
	)

	// Limited-length Huffman cost: CWL 10 vs unconstrained (15).
	wikiData := dss[0].Data
	ratioAt := func(cwl int) (float64, error) {
		_, cs, err := core.Compress(wikiData, core.Options{
			Variant: format.VariantBit, DE: lz77.DEStrict, CWL: cwl, Workers: cfg.Workers,
		})
		if err != nil {
			return 0, err
		}
		return cs.Ratio, nil
	}
	r10, err := ratioAt(10)
	if err != nil {
		return nil, err
	}
	r15, err := ratioAt(15)
	if err != nil {
		return nil, err
	}
	zl := pts["Wikipedia"]["zlib (CPU)"].Ratio
	out = append(out,
		Scalar{
			Name:     "limited-length Huffman (CWL 10 vs 15) ratio cost, Wikipedia",
			Paper:    "part of the ≈9 % gap to zlib",
			Measured: fmt.Sprintf("%.1f %%", 100*(1-r10/r15)),
		},
		Scalar{
			Name:     "Gompresso/Bit ratio vs zlib ratio, Wikipedia",
			Paper:    "≈ 9 % lower",
			Measured: fmt.Sprintf("%.1f %% lower (%.2f vs %.2f)", 100*(1-r10/zl), r10, zl),
		},
	)

	// Energy saving from Fig. 14.
	f14, err := Fig14(cfg)
	if err != nil {
		return nil, err
	}
	var eBit, eZlib float64
	for _, r := range f14 {
		switch r.System {
		case "Gomp/Bit (In/Out)":
			eBit = r.JoulesGB
		case "zlib (CPU)":
			eZlib = r.JoulesGB
		}
	}
	if eZlib > 0 {
		out = append(out, Scalar{
			Name:     "Gompresso/Bit energy saving vs parallel zlib",
			Paper:    "17 %",
			Measured: fmt.Sprintf("%.0f %%", 100*(1-eBit/eZlib)),
		})
	}
	return out, nil
}

// RenderScalars formats the scalar table.
func RenderScalars(rows []Scalar) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, r.Paper, r.Measured})
	}
	return "Quoted scalar results (§V)\n" +
		table([]string{"quantity", "paper", "reproduced"}, cells)
}
