package figures

import (
	"strings"
	"testing"

	"gompresso/internal/kernels"
)

// Small datasets keep the suite fast; figure shapes must already hold at
// this scale.
func testConfig() Config { return Config{DataSize: 6 << 20, Seed: 1} }

func TestFig9aShape(t *testing.T) {
	rows, err := Fig9a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows (2 datasets × 3 strategies), got %d", len(rows))
	}
	speed := map[string]map[kernels.Strategy]float64{}
	for _, r := range rows {
		if r.GBps <= 0 {
			t.Fatalf("%+v: no speed", r)
		}
		if speed[r.Dataset] == nil {
			speed[r.Dataset] = map[kernels.Strategy]float64{}
		}
		speed[r.Dataset][r.Strategy] = r.GBps
	}
	for name, s := range speed {
		// Paper Fig. 9a: DE > MRR > SC, DE ≥ 5× SC.
		if !(s[kernels.DE] > s[kernels.MRR] && s[kernels.MRR] > s[kernels.SC]) {
			t.Errorf("%s: ordering violated: %+v", name, s)
		}
		if s[kernels.DE] < 5*s[kernels.SC] {
			t.Errorf("%s: DE %.2f not ≥5× SC %.2f", name, s[kernels.DE], s[kernels.SC])
		}
	}
	if !strings.Contains(RenderFig9a(rows), "MRR") {
		t.Fatal("render missing strategy")
	}
}

func TestFig9bShape(t *testing.T) {
	rows, err := Fig9b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 9b: bytes per round fall steeply after round 1.
	first := map[string]float64{}
	for _, r := range rows {
		if r.Round == 1 {
			first[r.Dataset] = r.AvgBytes
		}
		if r.Round == 3 && r.AvgBytes > first[r.Dataset]/2 {
			t.Errorf("%s: round 3 resolves %.0f bytes, round 1 %.0f — expected steep decay",
				r.Dataset, r.AvgBytes, first[r.Dataset])
		}
	}
	if len(first) != 2 {
		t.Fatalf("expected both datasets, got %v", first)
	}
}

func TestFig9cShape(t *testing.T) {
	cfg := testConfig()
	cfg.DataSize = 4 << 20
	rows, err := Fig9c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 depths, got %d", len(rows))
	}
	// Time must rise with designed depth (rows are ordered shallow→deep).
	for i := 1; i < len(rows); i++ {
		if rows[i].TimeMs < rows[i-1].TimeMs*0.95 {
			t.Errorf("time not increasing with depth: %+v then %+v", rows[i-1], rows[i])
		}
	}
	// Deepest should be several times the shallowest (paper: sharp rise).
	if rows[len(rows)-1].TimeMs < 2.5*rows[0].TimeMs {
		t.Errorf("depth-32 time %.2fms not ≫ depth-1 %.2fms",
			rows[len(rows)-1].TimeMs, rows[0].TimeMs)
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RatioDE > r.RatioNoDE {
			t.Errorf("%s: DE improved ratio?!", r.Dataset)
		}
		// Paper: ≤ 19 % ratio, ≤ 13 % speed degradation; allow headroom for
		// the synthetic corpora and host variance.
		if r.RatioLossPct > 30 {
			t.Errorf("%s: ratio loss %.1f%% too large", r.Dataset, r.RatioLossPct)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 block sizes, got %d", len(rows))
	}
	// Paper Fig. 12: speed grows with block size; ratio roughly flat.
	if rows[len(rows)-1].GBps <= rows[0].GBps {
		t.Errorf("256KB (%.2f) not faster than 32KB (%.2f)",
			rows[len(rows)-1].GBps, rows[0].GBps)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio < rows[i-1].Ratio*0.97 {
			t.Errorf("ratio degraded sharply across block sizes: %+v", rows)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := map[string]map[string]Fig13Row{}
	for _, r := range rows {
		if pts[r.Dataset] == nil {
			pts[r.Dataset] = map[string]Fig13Row{}
		}
		pts[r.Dataset][r.System] = r
	}
	for name, p := range pts {
		// Paper: Gompresso/Bit ≈ 2× zlib; Byte No-PCIe fastest of the
		// Gompresso series; In/Out slowest of the Byte series.
		if p["Gomp/Bit (In/Out)"].GBps < 1.4*p["zlib (CPU)"].GBps {
			t.Errorf("%s: Bit (%.2f) not ≈2× zlib (%.2f)", name,
				p["Gomp/Bit (In/Out)"].GBps, p["zlib (CPU)"].GBps)
		}
		if !(p["Gomp/Byte (No PCIe)"].GBps > p["Gomp/Byte (In)"].GBps &&
			p["Gomp/Byte (In)"].GBps >= p["Gomp/Byte (In/Out)"].GBps) {
			t.Errorf("%s: PCIe series ordering violated: %+v", name, p)
		}
		if p["Gomp/Bit (In/Out)"].Ratio <= p["Gomp/Byte (In/Out)"].Ratio {
			t.Errorf("%s: Bit should out-compress Byte", name)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	rows, err := Fig14(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := map[string]float64{}
	for _, r := range rows {
		if r.JoulesGB <= 0 {
			t.Fatalf("%+v: no energy", r)
		}
		e[r.System] = r.JoulesGB
	}
	// Paper: Gompresso/Bit uses ~17 % less energy than parallel zlib.
	if e["Gomp/Bit (In/Out)"] >= e["zlib (CPU)"] {
		t.Errorf("Bit energy %.1f not below zlib %.1f", e["Gomp/Bit (In/Out)"], e["zlib (CPU)"])
	}
}

func TestScalars(t *testing.T) {
	rows, err := Scalars(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 12 {
		t.Fatalf("expected ≥12 scalar claims, got %d", len(rows))
	}
	text := RenderScalars(rows)
	for _, want := range []string{"gzip -6 ratio", "MRR rounds", "energy saving"} {
		if !strings.Contains(text, want) {
			t.Errorf("scalar table missing %q", want)
		}
	}
}

func TestMeasuredModeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("measured mode times real codecs")
	}
	cfg := testConfig()
	cfg.Mode = Measured
	cfg.DataSize = 2 << 20
	rows, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GBps <= 0 || r.Ratio <= 0 {
			t.Fatalf("measured point %+v invalid", r)
		}
	}
}
