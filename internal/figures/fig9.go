package figures

import (
	"fmt"

	"gompresso/internal/core"
	"gompresso/internal/datagen"
	"gompresso/internal/format"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Fig9aRow is one bar of paper Fig. 9a: LZ decompression speed of
// Gompresso/Byte under a back-reference resolution strategy, transfers
// excluded.
type Fig9aRow struct {
	Dataset   string
	Strategy  kernels.Strategy
	GBps      float64
	AvgRounds float64
}

// Fig9a measures SC/MRR on a normally-parsed stream and DE on a
// Dependency-Elimination stream, Byte variant, no PCIe (paper: "we place the
// compressed input and the decompressed output in device memory").
func Fig9a(cfg Config) ([]Fig9aRow, error) {
	cfg = cfg.withDefaults()
	var rows []Fig9aRow
	for _, ds := range Datasets(cfg) {
		normal, _, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantByte, DE: lz77.DEOff, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9a %s: %w", ds.Name, err)
		}
		deStream, _, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantByte, DE: lz77.DEStrict, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9a %s: %w", ds.Name, err)
		}
		for _, tc := range []struct {
			strat  kernels.Strategy
			stream []byte
		}{{kernels.SC, normal}, {kernels.MRR, normal}, {kernels.DE, deStream}} {
			_, st, err := core.Decompress(tc.stream, core.DecompressOptions{
				Engine: core.EngineDevice, Strategy: tc.strat,
				Device: cfg.Device, PCIe: core.PCIeNone, TileTo: paperScale,
			})
			if err != nil {
				return nil, fmt.Errorf("fig9a %s/%v: %w", ds.Name, tc.strat, err)
			}
			row := Fig9aRow{
				Dataset:  ds.Name,
				Strategy: tc.strat,
				GBps:     GBps(st.RawSize, st.SimSeconds),
			}
			if st.Rounds != nil {
				row.AvgRounds = st.Rounds.AvgRounds()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFig9a formats the rows.
func RenderFig9a(rows []Fig9aRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Strategy.String(),
			fmt.Sprintf("%.2f", r.GBps),
			fmt.Sprintf("%.2f", r.AvgRounds),
		})
	}
	return "Fig 9a — Gompresso/Byte LZ decompression speed by strategy (no PCIe)\n" +
		table([]string{"dataset", "strategy", "GB/s", "avg rounds"}, cells)
}

// Fig9bRow is one point of paper Fig. 9b: average bytes resolved per MRR
// round.
type Fig9bRow struct {
	Dataset  string
	Round    int
	AvgBytes float64
	Groups   int64 // groups that executed this round
}

// Fig9b decompresses the normally-parsed Byte streams with MRR and reports
// per-round byte counts averaged over the groups reaching each round.
func Fig9b(cfg Config) ([]Fig9bRow, error) {
	cfg = cfg.withDefaults()
	var rows []Fig9bRow
	for _, ds := range Datasets(cfg) {
		comp, _, err := core.Compress(ds.Data, core.Options{
			Variant: format.VariantByte, DE: lz77.DEOff, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.MRR, Device: cfg.Device, TileTo: paperScale,
		})
		if err != nil {
			return nil, err
		}
		rs := st.Rounds
		// Groups reaching round r = sum of histogram entries ≥ r.
		for r := 0; r < len(rs.BytesPerRound); r++ {
			var reaching int64
			for h := r; h < len(rs.RoundsHist); h++ {
				reaching += rs.RoundsHist[h]
			}
			avg := 0.0
			if reaching > 0 {
				avg = float64(rs.BytesPerRound[r]) / float64(reaching)
			}
			rows = append(rows, Fig9bRow{Dataset: ds.Name, Round: r + 1, AvgBytes: avg, Groups: reaching})
		}
	}
	return rows, nil
}

// RenderFig9b formats the rows.
func RenderFig9b(rows []Fig9bRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, fmt.Sprintf("%d", r.Round),
			fmt.Sprintf("%.1f", r.AvgBytes),
			fmt.Sprintf("%d", r.Groups),
		})
	}
	return "Fig 9b — average bytes resolved per MRR round\n" +
		table([]string{"dataset", "round", "avg bytes", "groups"}, cells)
}

// Fig9cRow is one point of paper Fig. 9c: decompression time vs designed
// nesting depth on the artificial datasets.
type Fig9cRow struct {
	Families      int
	DesignedDepth int
	AvgRounds     float64
	TimeMs        float64 // simulated, for cfg.DataSize bytes
	TimeMsPerGB   float64 // scaled to the paper's 1 GB
}

// Fig9c generates Nesting datasets across family counts and times MRR
// decompression (Byte variant, no PCIe, NestingWindow).
func Fig9c(cfg Config) ([]Fig9cRow, error) {
	cfg = cfg.withDefaults()
	var rows []Fig9cRow
	for _, fams := range []int{32, 16, 8, 4, 2, 1} {
		data := datagen.Nesting(cfg.DataSize, fams, cfg.Seed)
		comp, _, err := core.Compress(data, core.Options{
			Variant: format.VariantByte, DE: lz77.DEOff,
			Window: datagen.NestingWindow, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		_, st, err := core.Decompress(comp, core.DecompressOptions{
			Engine: core.EngineDevice, Strategy: kernels.MRR, Device: cfg.Device, TileTo: paperScale,
		})
		if err != nil {
			return nil, err
		}
		ms := st.SimSeconds * 1e3
		rows = append(rows, Fig9cRow{
			Families:      fams,
			DesignedDepth: datagen.NestingDepthFor(fams),
			AvgRounds:     st.Rounds.AvgRounds(),
			TimeMs:        ms,
			TimeMsPerGB:   ms * float64(1<<30) / float64(len(data)),
		})
	}
	return rows, nil
}

// RenderFig9c formats the rows.
func RenderFig9c(rows []Fig9cRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Families),
			fmt.Sprintf("%d", r.DesignedDepth),
			fmt.Sprintf("%.1f", r.AvgRounds),
			fmt.Sprintf("%.2f", r.TimeMs),
			fmt.Sprintf("%.1f", r.TimeMsPerGB),
		})
	}
	return "Fig 9c — MRR decompression time vs nesting depth (artificial data)\n" +
		table([]string{"families", "designed depth", "avg rounds", "time (ms)", "ms per GB"}, cells)
}
