package figures

import (
	"fmt"

	"gompresso/internal/perf"
)

// Fig14Row is one point of paper Fig. 14: wall-socket energy to decompress
// the Wikipedia dataset (normalized to 1 GB) vs compression ratio.
type Fig14Row struct {
	System   string
	Ratio    float64
	JoulesGB float64
	Watts    float64
}

// Fig14 converts the Fig. 13 Wikipedia operating points into energy with
// the perf power model: CPU libraries at CPU-only system power (GPUs
// physically removed, §V-D), Gompresso at GPU system power.
func Fig14(cfg Config) ([]Fig14Row, error) {
	cfg = cfg.withDefaults()
	f13, err := Fig13(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig14Row
	for _, r := range f13 {
		if r.Dataset != "Wikipedia" || r.GBps <= 0 {
			continue
		}
		watts := perf.GPUSystemWatts
		if len(r.System) > 5 && r.System[len(r.System)-5:] == "(CPU)" {
			watts = perf.CPUSystemWatts
		}
		secondsPerGB := 1.0 / r.GBps // decimal GB as in GBps
		rows = append(rows, Fig14Row{
			System:   r.System,
			Ratio:    r.Ratio,
			JoulesGB: perf.Energy(watts, secondsPerGB),
			Watts:    watts,
		})
	}
	return rows, nil
}

// RenderFig14 formats the rows.
func RenderFig14(rows []Fig14Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.System,
			fmt.Sprintf("%.2f", r.Ratio),
			fmt.Sprintf("%.1f", r.JoulesGB),
			fmt.Sprintf("%.0f", r.Watts),
		})
	}
	return "Fig 14 — energy vs compression ratio, Wikipedia (J per GB at the wall socket)\n" +
		table([]string{"system", "ratio", "J/GB", "system W"}, cells)
}
