package blockcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fill(v byte) func(dst []byte) error {
	return func(dst []byte) error {
		for i := range dst {
			dst[i] = v
		}
		return nil
	}
}

func TestHitMissAndContents(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	k := Key{Object: NextObject(), Block: 3}

	b, err := c.GetOrDecode(ctx, k, 100, fill(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bytes()) != 100 || b.Bytes()[0] != 7 || b.Bytes()[99] != 7 {
		t.Fatalf("bad decode result: len=%d", len(b.Bytes()))
	}
	b.Release()

	b2, err := c.GetOrDecode(ctx, k, 100, func([]byte) error {
		t.Fatal("decode ran on a resident entry")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b2.Release()

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestShardCount(t *testing.T) {
	cases := []struct {
		maxBytes int64
		want     int
	}{
		{0, 1}, {256 << 10, 1}, {1 << 20, 1}, {4 << 20, 4},
		{16 << 20, 16}, {64 << 20, 16},
	}
	for _, tc := range cases {
		if got := shardCount(tc.maxBytes); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.maxBytes, got, tc.want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// A 300-byte cache gets one shard (see shardCount), so the LRU
	// order across keys is deterministic.
	c := New(300)
	keys := []Key{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	ctx := context.Background()
	get := func(k Key) {
		b, err := c.GetOrDecode(ctx, k, 100, fill(byte(k.Block)))
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	get(keys[0])
	get(keys[1])
	get(keys[2]) // full: 300 bytes
	get(keys[0]) // touch 0 → LRU order is now 1, 2, 0
	get(keys[3]) // evicts keys[1]

	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 300 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// keys[1] must re-decode; keys[0], [2], [3] must not.
	decoded := false
	b, err := c.GetOrDecode(ctx, keys[1], 100, func(dst []byte) error {
		decoded = true
		return fill(1)(dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if !decoded {
		t.Fatal("evicted entry served without a decode")
	}
}

func TestOversizedEntryNotRetained(t *testing.T) {
	c := New(64)
	ctx := context.Background()
	b, err := c.GetOrDecode(ctx, Key{Object: 9, Block: 0}, 1000, fill(5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), bytes.Repeat([]byte{5}, 1000)) {
		t.Fatal("oversized decode corrupted")
	}
	b.Release()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized entry retained: %+v", s)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(1 << 20)
	k := Key{Object: NextObject(), Block: 1}
	var decodes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := c.GetOrDecode(context.Background(), k, 64, func(dst []byte) error {
				if decodes.Add(1) == 1 {
					close(started)
				}
				<-release
				return fill(42)(dst)
			})
			errs[i] = err
			if err == nil {
				results[i] = append([]byte(nil), b.Bytes()...)
				b.Release()
			}
		}(i)
	}
	<-started
	time.Sleep(10 * time.Millisecond) // let the rest pile onto the flight table
	close(release)
	wg.Wait()

	if got := decodes.Load(); got != 1 {
		t.Fatalf("decode ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], bytes.Repeat([]byte{42}, 64)) {
			t.Fatalf("caller %d: wrong bytes", i)
		}
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != n || s.Coalesced != n-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDecodeErrorPropagatesAndIsNotCached(t *testing.T) {
	c := New(1 << 20)
	k := Key{Object: NextObject(), Block: 0}
	boom := errors.New("boom")
	if _, err := c.GetOrDecode(context.Background(), k, 8, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key.
	b, err := c.GetOrDecode(context.Background(), k, 8, fill(1))
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWaiterContextCancel(t *testing.T) {
	c := New(1 << 20)
	k := Key{Object: NextObject(), Block: 0}
	inDecode := make(chan struct{})
	release := make(chan struct{})
	go func() {
		b, err := c.GetOrDecode(context.Background(), k, 8, func(dst []byte) error {
			close(inDecode)
			<-release
			return fill(1)(dst)
		})
		if err == nil {
			b.Release()
		}
	}()
	<-inDecode
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.GetOrDecode(ctx, k, 8, fill(1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

// A winner aborted by its own context must not fail waiters whose
// contexts are live: they retry the decode themselves.
func TestWaiterRetriesAfterWinnerCancelled(t *testing.T) {
	c := New(1 << 20)
	k := Key{Object: NextObject(), Block: 0}
	winnerCtx, cancelWinner := context.WithCancel(context.Background())
	inDecode := make(chan struct{})
	go func() {
		c.GetOrDecode(winnerCtx, k, 8, func(dst []byte) error {
			close(inDecode)
			<-winnerCtx.Done() // a decode path that honors cancellation
			return winnerCtx.Err()
		})
	}()
	<-inDecode
	done := make(chan error, 1)
	go func() {
		b, err := c.GetOrDecode(context.Background(), k, 8, fill(9))
		if err == nil {
			if b.Bytes()[0] != 9 {
				err = fmt.Errorf("wrong bytes after retry")
			}
			b.Release()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelWinner()
	if err := <-done; err != nil {
		t.Fatalf("waiter after winner cancel: %v", err)
	}
}

// Evicting an entry a reader still holds must not recycle its bytes
// until the reader releases.
func TestEvictionRespectsReferences(t *testing.T) {
	c := New(100) // one shard holding exactly one 100-byte entry
	keys := []Key{{2, 0}, {2, 1}}
	ctx := context.Background()
	held, err := c.GetOrDecode(ctx, keys[0], 100, fill(11))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the shard so keys[0] evicts while held.
	b2, err := c.GetOrDecode(ctx, keys[1], 100, fill(22))
	if err != nil {
		t.Fatal(err)
	}
	b2.Release()
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Decode more blocks through the pool; held's bytes must survive.
	for i := 0; i < 8; i++ {
		b, err := c.GetOrDecode(ctx, Key{Object: 3, Block: uint32(i)}, 100, fill(33))
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	if !bytes.Equal(held.Bytes(), bytes.Repeat([]byte{11}, 100)) {
		t.Fatal("evicted-but-held buffer was recycled under the reader")
	}
	held.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	// Use an oversized entry (not retained by the cache) so the second
	// Release drives the count negative and trips the guard; on a
	// resident entry the cache's own reference masks the bug.
	c := New(16)
	b, err := c.GetOrDecode(context.Background(), Key{Object: NextObject()}, 64, fill(1))
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

// Concurrent stress over a small budget: many goroutines, overlapping
// keys, constant eviction. Run with -race.
func TestConcurrentStress(t *testing.T) {
	c := New(16 << 20) // 16 shards: exercise the multi-shard hash path
	if len(c.shards) != maxShards {
		t.Fatalf("want %d shards, got %d", maxShards, len(c.shards))
	}
	const (
		objects = 4
		blocks  = 32
		workers = 8
		iters   = 100
		// objects×blocks×entSize = 32 MiB demand against the 16 MiB
		// budget: constant eviction across all shards.
		entSize = 256 << 10
	)
	objs := make([]uint64, objects)
	for i := range objs {
		objs[i] = NextObject()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint32(seed*2654435761 + 1)
			for i := 0; i < iters; i++ {
				r = r*1664525 + 1013904223
				k := Key{Object: objs[r%objects], Block: (r >> 8) % blocks}
				want := byte(k.Object*31 + uint64(k.Block))
				b, err := c.GetOrDecode(context.Background(), k, entSize, fill(want))
				if err != nil {
					t.Error(err)
					return
				}
				d := b.Bytes()
				if len(d) != entSize || d[0] != want || d[entSize-1] != want {
					t.Errorf("key %v: corrupt buffer", k)
					b.Release()
					return
				}
				b.Release()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > s.MaxBytes {
		t.Fatalf("cache over budget: %+v", s)
	}
	if s.Hits+s.Misses != workers*iters {
		t.Fatalf("lost requests: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("demand 2x budget but no evictions: %+v", s)
	}
}

// A panicking decode must surface as an error — to the winner AND to
// every coalesced waiter — never strand the singleflight entry, and
// never poison the cache.
func TestDecodePanicIsolated(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	k := Key{Object: NextObject(), Block: 1}

	var started sync.WaitGroup
	started.Add(1)
	release := make(chan struct{})
	winnerErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrDecode(ctx, k, 64, func([]byte) error {
			started.Done()
			<-release
			panic("decoder exploded")
		})
		winnerErr <- err
	}()
	started.Wait()

	// A waiter joins the in-flight decode before the panic fires.
	waiterErr := make(chan error, 1)
	go func() {
		for {
			if c.Stats().Coalesced > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		waiterErr <- nil
	}()
	joined := make(chan error, 1)
	go func() {
		_, err := c.GetOrDecode(ctx, k, 64, fill(1))
		joined <- err
	}()
	<-waiterErr
	close(release)

	for i, ch := range []chan error{winnerErr, joined} {
		select {
		case err := <-ch:
			if err == nil || !strings.Contains(err.Error(), "decode panicked") {
				t.Fatalf("caller %d: err = %v, want decode-panicked error", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("caller %d wedged after decode panic", i)
		}
	}
	// The panic was not cached; a retry decodes cleanly.
	b, err := c.GetOrDecode(ctx, k, 64, fill(9))
	if err != nil || b.Bytes()[0] != 9 {
		t.Fatalf("post-panic decode: %v", err)
	}
	b.Release()
	if s := c.Stats(); s.InFlight != 0 {
		t.Fatalf("inflight stuck at %d after panic", s.InFlight)
	}
}

func TestForgetObject(t *testing.T) {
	c := New(64 << 20)
	ctx := context.Background()
	objA, objB := NextObject(), NextObject()
	for blk := uint32(0); blk < 8; blk++ {
		for _, obj := range []uint64{objA, objB} {
			b, err := c.GetOrDecode(ctx, Key{Object: obj, Block: blk}, 128, fill(byte(blk)))
			if err != nil {
				t.Fatal(err)
			}
			b.Release()
		}
	}
	// Pin one of A's buffers across the forget: its bytes must survive.
	pinned, err := c.GetOrDecode(ctx, Key{Object: objA, Block: 0}, 128, fill(0))
	if err != nil {
		t.Fatal(err)
	}

	if n := c.ForgetObject(objA); n != 8 {
		t.Fatalf("ForgetObject dropped %d entries, want 8", n)
	}
	if s := c.Stats(); s.Entries != 8 || s.Bytes != 8*128 {
		t.Fatalf("stats after forget: %+v", s)
	}
	if pinned.Bytes()[0] != 0 || len(pinned.Bytes()) != 128 {
		t.Fatal("pinned buffer damaged by ForgetObject")
	}
	pinned.Release()

	// A's blocks are gone (a get decodes again); B's are resident.
	decoded := false
	b, err := c.GetOrDecode(ctx, Key{Object: objA, Block: 3}, 128, func(dst []byte) error {
		decoded = true
		return fill(3)(dst)
	})
	if err != nil || !decoded {
		t.Fatalf("forgotten block still resident (err=%v)", err)
	}
	b.Release()
	b, err = c.GetOrDecode(ctx, Key{Object: objB, Block: 3}, 128, func([]byte) error {
		t.Fatal("B's entry was dropped by ForgetObject(A)")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if n := c.ForgetObject(objA); n != 1 {
		t.Fatalf("second forget dropped %d, want 1 (the re-decoded block)", n)
	}
}
