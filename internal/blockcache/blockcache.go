// Package blockcache is a sharded, size-bounded LRU cache of decoded
// blocks, shared by every reader a serving process opens. The paper's
// container makes each block independently decodable, which cuts both
// ways for a range server: any request can start at any block, but two
// concurrent requests for the same hot block would each pay a full
// decode. The cache closes that gap with two mechanisms:
//
//   - Singleflight decode: concurrent GetOrDecode calls for the same
//     (object, block) key coalesce into one decode — the first caller
//     runs it, the rest wait on its result — so a hot block is decoded
//     once, not once per request.
//
//   - Refcounted buffers: a hit hands back the cached buffer itself (no
//     copy), pinned by a reference count. Eviction only recycles a
//     buffer once every reader has released it, so a response can stream
//     a cached block to a socket while the LRU churns underneath.
//
// The cache is bounded by total decoded bytes and sharded to keep lock
// contention off the serving path; keys hash to a shard, and each shard
// owns an independent LRU list, singleflight table, and byte budget.
package blockcache

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Key identifies one decoded block: an object identity (assigned by the
// reader that owns the underlying container, see NextObject) and the
// block's index within it.
type Key struct {
	Object uint64
	Block  uint32
}

var objectIDs atomic.Uint64

// NextObject returns a process-unique object identity. Every reader that
// shares a Cache must key its blocks under its own identity unless it
// can prove it views the same bytes as another reader.
func NextObject() uint64 { return objectIDs.Add(1) }

// Buf is a refcounted decoded-block buffer. The cache holds one
// reference while the entry is resident; every GetOrDecode that returns
// it holds another. Callers must Release exactly once when done; after
// Release the contents must not be touched. When the last reference
// drops, the backing array returns to a pool for the next decode.
type Buf struct {
	data []byte
	refs atomic.Int32
	pool *sync.Pool
}

// Bytes returns the decoded block. The slice is shared and must be
// treated as read-only; it is valid until Release.
func (b *Buf) Bytes() []byte { return b.data }

// Release drops the caller's reference.
func (b *Buf) Release() {
	if n := b.refs.Add(-1); n == 0 {
		if b.pool != nil {
			d := b.data
			b.data = nil
			b.pool.Put(&d)
		}
	} else if n < 0 {
		panic("blockcache: Buf released twice")
	}
}

// Stats is a point-in-time snapshot of cache effectiveness, the raw
// material for a server's metrics endpoint.
type Stats struct {
	Hits      int64 // GetOrDecode served from a resident entry
	Misses    int64 // GetOrDecode ran (or joined) a decode
	Coalesced int64 // misses that joined another caller's in-flight decode
	Evictions int64 // entries dropped to fit the byte budget
	Entries   int64 // resident entries now
	Bytes     int64 // resident decoded bytes now
	MaxBytes  int64 // configured budget
	InFlight  int64 // decodes running now
}

// HitRate returns Hits/(Hits+Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Shard count: 16 ways for contention, but never so many that a
// shard's budget (maxBytes/shards) drops below minShardBytes — a small
// cache with 16 tiny shards would fail the `fits` check for every
// normal-sized block and silently cache nothing.
const (
	maxShards     = 16 // power of two
	minShardBytes = 1 << 20
)

// shardCount picks the largest power-of-two shard count ≤ maxShards
// whose per-shard budget is at least minShardBytes (floor 1).
func shardCount(maxBytes int64) int {
	n := maxShards
	for n > 1 && maxBytes/int64(n) < minShardBytes {
		n /= 2
	}
	return n
}

// entry is one resident block: an LRU list node owning one buffer
// reference.
type entry struct {
	key        Key
	buf        *Buf
	prev, next *entry // LRU ring neighbors
}

// call is one in-flight decode that later arrivals can join.
type call struct {
	done    chan struct{}
	buf     *Buf // set before done closes; nil on error
	err     error
	waiters int32 // joiners to reserve references for, guarded by shard.mu
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	flight  map[Key]*call
	ring    entry // sentinel: ring.next is MRU, ring.prev is LRU
	bytes   int64
	max     int64
}

// Cache is the shared decoded-block cache. Safe for concurrent use.
type Cache struct {
	shards []shard
	pool   sync.Pool // *[]byte decode buffers

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	inflight  atomic.Int64
	entries   atomic.Int64 // mirrors Σ len(shard.entries), for lock-free Stats
	bytes     atomic.Int64 // mirrors Σ shard.bytes
	maxBytes  int64
}

// New builds a cache bounded at maxBytes of decoded data. The budget is
// split evenly across the shards (see shardCount), so a single entry
// larger than a shard's budget is served but never retained.
func New(maxBytes int64) *Cache {
	n := shardCount(maxBytes)
	c := &Cache{maxBytes: maxBytes, shards: make([]shard, n)}
	per := maxBytes / int64(n)
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[Key]*entry)
		s.flight = make(map[Key]*call)
		s.ring.next = &s.ring
		s.ring.prev = &s.ring
		s.max = per
	}
	return c
}

// shardOf hashes a key to its shard.
func (c *Cache) shardOf(k Key) *shard {
	h := k.Object*0x9e3779b97f4a7c15 + uint64(k.Block)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// getBuf returns a pooled buffer of length n with one reference held by
// the caller.
func (c *Cache) getBuf(n int) *Buf {
	b := &Buf{pool: &c.pool}
	if p, ok := c.pool.Get().(*[]byte); ok && cap(*p) >= n {
		b.data = (*p)[:n] //lint:allow poolescape Buf's refcount owns the memory; Release returns it
	} else {
		b.data = make([]byte, n)
	}
	b.refs.Store(1)
	return b
}

// GetOrDecode returns the decoded block for key, running decode (into a
// cache-owned buffer of exactly size bytes) on a miss. Concurrent calls
// for the same key coalesce: one runs the decode, the rest block until
// it finishes (or their own ctx is cancelled) and share the result.
// Decode errors are returned to every caller and are not cached. If the
// winning caller's context cancellation aborted the decode, waiters
// whose own contexts are still live retry the decode themselves.
//
// The caller must Release the returned Buf exactly once.
func (c *Cache) GetOrDecode(ctx context.Context, key Key, size int, decode func(dst []byte) error) (*Buf, error) {
	sh := c.shardOf(key)
	for {
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			e.buf.refs.Add(1) // under sh.mu: eviction can't race the pin
			sh.moveToFront(e)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e.buf, nil
		}
		if cl, ok := sh.flight[key]; ok {
			cl.waiters++
			sh.mu.Unlock()
			c.misses.Add(1)
			c.coalesced.Add(1)
			buf, err, joined := c.wait(ctx, sh, key, cl)
			if !joined {
				continue // winner aborted on its ctx; ours is live, retry
			}
			return buf, err
		}
		// About to become the singleflight winner and pay a decode: a
		// cancelled caller (e.g. an abandoned prefetch) must not.
		if err := ctx.Err(); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		cl := &call{done: make(chan struct{})}
		sh.flight[key] = cl
		sh.mu.Unlock()
		c.misses.Add(1)
		return c.decodeAndInsert(sh, key, size, decode, cl)
	}
}

// wait blocks a joiner on an in-flight decode. joined=false means the
// decode failed with a context error that was not ours — the caller
// should retry.
func (c *Cache) wait(ctx context.Context, sh *shard, key Key, cl *call) (buf *Buf, err error, joined bool) {
	select {
	case <-cl.done:
	case <-ctx.Done():
		sh.mu.Lock()
		select {
		case <-cl.done:
			// Completed while we were giving up: a reference was already
			// reserved for us; give it back.
			sh.mu.Unlock()
			if cl.buf != nil {
				cl.buf.Release()
			}
		default:
			cl.waiters--
			sh.mu.Unlock()
		}
		return nil, ctx.Err(), true
	}
	if cl.err != nil {
		if isCtxErr(cl.err) && ctx.Err() == nil {
			return nil, nil, false
		}
		return nil, cl.err, true
	}
	return cl.buf, nil, true
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runDecode executes a decode callback with panic isolation: a panicking
// decoder becomes an error instead of unwinding past the singleflight
// bookkeeping. Without this, a panic would strand the in-flight call
// entry and every waiter joined to it would block forever — one corrupt
// object taking down not just its own request but every request that
// coalesced behind it.
func runDecode(decode func(dst []byte) error, dst []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("blockcache: decode panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return decode(dst)
}

// decodeAndInsert runs the decode as the singleflight winner, publishes
// the result to waiters, and inserts the entry into the LRU.
func (c *Cache) decodeAndInsert(sh *shard, key Key, size int, decode func(dst []byte) error, cl *call) (*Buf, error) {
	c.inflight.Add(1)
	buf := c.getBuf(size)
	err := runDecode(decode, buf.data)
	c.inflight.Add(-1)

	sh.mu.Lock()
	delete(sh.flight, key)
	if err != nil {
		cl.err = err
		close(cl.done)
		sh.mu.Unlock()
		buf.refs.Store(1)
		buf.Release() // back to the pool
		return nil, err
	}
	// One reference per waiter, one for this caller, and — if the entry
	// fits the shard budget — one for the cache. All reserved under
	// sh.mu, before done closes, so no reader can observe a stale count.
	refs := cl.waiters + 1
	fits := int64(size) <= sh.max
	if fits {
		refs++
		e := &entry{key: key, buf: buf}
		sh.entries[key] = e
		sh.pushFront(e)
		sh.bytes += int64(size)
		c.entries.Add(1)
		c.bytes.Add(int64(size))
		c.evict(sh)
	}
	buf.refs.Store(refs)
	cl.buf = buf
	close(cl.done)
	sh.mu.Unlock()
	return buf, nil
}

// evict drops LRU entries until the shard fits its budget. Caller holds
// sh.mu.
func (c *Cache) evict(sh *shard) {
	for sh.bytes > sh.max {
		lru := sh.ring.prev
		if lru == &sh.ring {
			return
		}
		sh.unlink(lru)
		delete(sh.entries, lru.key)
		sh.bytes -= int64(len(lru.buf.data))
		c.entries.Add(-1)
		c.bytes.Add(-int64(len(lru.buf.data)))
		c.evictions.Add(1)
		lru.buf.Release() // cache's reference; readers may still hold theirs
	}
}

// ForgetObject drops every resident entry keyed under obj — called when
// a served object is retired (replaced on disk, evicted from a registry,
// or quarantined after a decode failure), so its dead blocks stop
// crowding live ones out of the budget instead of aging out of the LRU.
// Buffers pinned by in-flight readers survive until their last Release;
// in-flight decodes are untouched (their entries simply insert and age
// out normally). Returns the number of entries dropped.
func (c *Cache) ForgetObject(obj uint64) int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			if key.Object != obj {
				continue
			}
			sh.unlink(e)
			delete(sh.entries, key)
			sh.bytes -= int64(len(e.buf.data))
			c.entries.Add(-1)
			c.bytes.Add(-int64(len(e.buf.data)))
			c.evictions.Add(1)
			e.buf.Release()
			dropped++
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Stats snapshots the cache counters. It takes no locks — every value
// is an atomic read — so a metrics scrape never contends with the
// serving hot path (and, like any scrape, is not a consistent cut).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.maxBytes,
		InFlight:  c.inflight.Load(),
	}
}

// LRU ring plumbing. All callers hold sh.mu.

func (sh *shard) pushFront(e *entry) {
	e.prev = &sh.ring
	e.next = sh.ring.next
	e.prev.next = e
	e.next.prev = e
}

func (sh *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	sh.unlink(e)
	sh.pushFront(e)
}
