// Package buildinfo reads the binary's identity from the build metadata
// stamped by the Go toolchain (runtime/debug.ReadBuildInfo) — module
// version, toolchain, VCS revision — so the CLI's `version` output and
// the server's build_info metric agree without any ldflags plumbing.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the binary's build identity. Fields are never empty: unknown
// values degrade to "devel"/"unknown" so metric labels stay well-formed.
type Info struct {
	// Version is the main module version ("devel" for untagged builds).
	Version string
	// GoVersion is the toolchain that built the binary, e.g. "go1.24.0".
	GoVersion string
	// Revision is the 12-char VCS revision with a "+dirty" suffix when
	// the tree was modified, or "" when no VCS stamp is present.
	Revision string
}

var (
	once sync.Once
	info Info
)

// Get returns the process's build identity (computed once).
func Get() Info {
	once.Do(func() {
		info = Info{Version: "devel", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			info.Version = v
		}
		if bi.GoVersion != "" {
			info.GoVersion = bi.GoVersion
		}
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			info.Revision = rev + dirty
		}
	})
	return info
}

// String renders the identity for `gompresso version`:
// "gompresso devel (go1.24.0) rev abcdef123456+dirty".
func (i Info) String() string {
	out := fmt.Sprintf("gompresso %s (%s)", i.Version, i.GoVersion)
	if i.Revision != "" {
		out += " rev " + i.Revision
	}
	return out
}
