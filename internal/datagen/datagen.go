// Package datagen produces the deterministic synthetic datasets used by the
// reproduction in place of the paper's corpora (§V):
//
//   - WikiXML stands in for the 1 GB English Wikipedia XML dump (enwik),
//     gzip ratio ≈ 3:1 (paper: 3.09:1);
//   - MatrixMarket stands in for the Hollywood-2009 sparse matrix in Matrix
//     Market coordinate format, gzip ratio ≈ 5:1 (paper: 4.99:1);
//   - Nesting implements the paper's Fig. 10 construction: repeated 16-byte
//     strings with alternating first/last-byte mutations separated by
//     non-repeating separators, inducing a chosen back-reference nesting
//     depth inside each warp group.
//
// All generators are seeded and reproducible.
package datagen

import "math"

// splitmix64 is a tiny, stable PRNG so generated corpora never change
// across Go releases (math/rand's stream is not guaranteed stable).
type splitmix64 struct{ state uint64 }

func newRNG(seed uint64) *splitmix64 { return &splitmix64{state: seed} }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (s *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// float returns a uniform value in [0, 1).
func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// zipf draws ranks in [0, n) with probability ∝ 1/(rank+1)^s using a
// precomputed cumulative table.
type zipf struct {
	cum []float64
	rng *splitmix64
}

func newZipf(rng *splitmix64, n int, s float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum, rng: rng}
}

func (z *zipf) draw() int {
	u := z.rng.float()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Zeros returns n zero bytes (maximally compressible).
func Zeros(n int) []byte { return make([]byte, n) }

// Random returns n incompressible bytes.
func Random(n int, seed uint64) []byte {
	rng := newRNG(seed)
	out := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := rng.next()
		for j := 0; j < 8; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	for i := n &^ 7; i < n; i++ {
		out[i] = byte(rng.next())
	}
	return out
}

// RepeatPhrase returns n bytes of a repeated phrase (highly compressible
// with deep intra-warp dependencies under a greedy parse).
func RepeatPhrase(n int, phrase string) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, phrase...)
	}
	return out[:n]
}
