package datagen

import (
	"fmt"
	"strings"
)

// WikiXML generates a synthetic XML dump resembling the enwik benchmark used
// by the paper (§V: "a 1 GB XML dump of the English Wikipedia"): MediaWiki
// page elements with titles, ids, timestamps and Zipf-distributed article
// text with phrase reuse. The redundancy structure is tuned so DEFLATE
// compresses it about 3:1, matching the paper's 3.09:1.
func WikiXML(n int, seed uint64) []byte {
	rng := newRNG(seed)
	vocab := makeVocab(rng, 4096)
	z := newZipf(rng, len(vocab), 1.05)

	var b strings.Builder
	b.Grow(n + 4096)
	b.WriteString("<mediawiki xmlns=\"http://www.mediawiki.org/xml/export-0.3/\" xml:lang=\"en\">\n")
	b.WriteString("  <siteinfo>\n    <sitename>Wikipedia</sitename>\n    <generator>datagen</generator>\n  </siteinfo>\n")

	// Recent sentences for phrase reuse (quotes, boilerplate, link reuse).
	var recent []string
	pageID := 1000
	for b.Len() < n {
		title := titleCase(vocab[z.draw()]) + " " + titleCase(vocab[z.draw()])
		fmt.Fprintf(&b, "  <page>\n    <title>%s</title>\n    <id>%d</id>\n", title, pageID)
		fmt.Fprintf(&b, "    <revision>\n      <id>%d</id>\n      <timestamp>2006-0%d-%02dT%02d:%02d:%02dZ</timestamp>\n",
			pageID*7+13, 1+rng.intn(9), 1+rng.intn(28), rng.intn(24), rng.intn(60), rng.intn(60))
		b.WriteString("      <contributor>\n        <username>")
		b.WriteString(titleCase(vocab[z.draw()]))
		b.WriteString("</username>\n      </contributor>\n      <text xml:space=\"preserve\">")
		paragraphs := 2 + rng.intn(5)
		for p := 0; p < paragraphs && b.Len() < n; p++ {
			sentences := 3 + rng.intn(6)
			for s := 0; s < sentences; s++ {
				if len(recent) > 8 && rng.intn(100) < 22 {
					// Reuse a recent sentence verbatim — article text repeats
					// names, links and boilerplate heavily.
					b.WriteString(recent[rng.intn(len(recent))])
					continue
				}
				sent := makeSentence(rng, z, vocab)
				b.WriteString(sent)
				recent = append(recent, sent)
				if len(recent) > 64 {
					recent = recent[1:]
				}
			}
			b.WriteString("\n\n")
		}
		b.WriteString("</text>\n    </revision>\n  </page>\n")
		pageID += 1 + rng.intn(9)
	}
	b.WriteString("</mediawiki>\n")
	out := []byte(b.String())
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func makeVocab(rng *splitmix64, n int) []string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	common := []string{"the", "of", "and", "in", "to", "a", "is", "was", "for",
		"as", "on", "with", "by", "that", "from", "at", "which", "his", "it",
		"were", "are", "this", "also", "be", "an", "has", "its", "first",
		"new", "one", "two", "who", "city", "state", "year", "world", "war",
		"american", "national", "university", "county", "century", "people"}
	vocab := append([]string{}, common...)
	for len(vocab) < n {
		wl := 3 + rng.intn(8)
		var w strings.Builder
		for i := 0; i < wl; i++ {
			w.WriteByte(letters[rng.intn(26)])
		}
		vocab = append(vocab, w.String())
	}
	return vocab
}

func titleCase(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}

func makeSentence(rng *splitmix64, z *zipf, vocab []string) string {
	var b strings.Builder
	words := 6 + rng.intn(12)
	for i := 0; i < words; i++ {
		w := vocab[z.draw()]
		if i == 0 {
			w = titleCase(w)
		}
		if rng.intn(100) < 8 {
			// wiki link markup
			b.WriteString("[[")
			b.WriteString(w)
			b.WriteString("]]")
		} else {
			b.WriteString(w)
		}
		if i < words-1 {
			b.WriteByte(' ')
		}
	}
	b.WriteString(". ")
	return b.String()
}
