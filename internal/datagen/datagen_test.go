package datagen

import (
	"bytes"
	"compress/flate"
	"io"
	"testing"

	"gompresso/internal/lz77"
)

// gzipRatio compresses with stdlib DEFLATE at the default level (the paper
// quotes gzip -6) and returns raw/compressed.
func gzipRatio(t *testing.T, data []byte) float64 {
	t.Helper()
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return float64(len(data)) / float64(buf.Len())
}

func TestWikiXMLRatio(t *testing.T) {
	data := WikiXML(4<<20, 1)
	if len(data) != 4<<20 {
		t.Fatalf("size %d", len(data))
	}
	r := gzipRatio(t, data)
	// Paper: gzip -6 compresses the Wikipedia dump 3.09:1.
	if r < 2.4 || r > 3.9 {
		t.Fatalf("WikiXML gzip ratio %.2f, want ≈ 3.1", r)
	}
	// Structure sanity.
	if !bytes.Contains(data, []byte("<page>")) || !bytes.Contains(data, []byte("<title>")) {
		t.Fatal("missing XML structure")
	}
}

func TestMatrixMarketRatio(t *testing.T) {
	data := MatrixMarket(4<<20, 1)
	if len(data) != 4<<20 {
		t.Fatalf("size %d", len(data))
	}
	r := gzipRatio(t, data)
	// Paper: gzip -6 compresses hollywood-2009 4.99:1.
	if r < 3.9 || r > 6.4 {
		t.Fatalf("MatrixMarket gzip ratio %.2f, want ≈ 5.0", r)
	}
	if !bytes.HasPrefix(data, []byte("%%MatrixMarket")) {
		t.Fatal("missing Matrix Market header")
	}
}

func TestDeterminism(t *testing.T) {
	if !bytes.Equal(WikiXML(1<<20, 7), WikiXML(1<<20, 7)) {
		t.Fatal("WikiXML not deterministic")
	}
	if bytes.Equal(WikiXML(1<<20, 7), WikiXML(1<<20, 8)) {
		t.Fatal("WikiXML ignores seed")
	}
	if !bytes.Equal(MatrixMarket(1<<20, 7), MatrixMarket(1<<20, 7)) {
		t.Fatal("MatrixMarket not deterministic")
	}
	if !bytes.Equal(Nesting(1<<20, 4, 7), Nesting(1<<20, 4, 7)) {
		t.Fatal("Nesting not deterministic")
	}
}

func TestNestingInducesDepth(t *testing.T) {
	for _, families := range []int{1, 2, 4, 8, 16, 32} {
		data := Nesting(512<<10, families, 3)
		ts, err := lz77.Parse(data, lz77.Options{Window: NestingWindow})
		if err != nil {
			t.Fatal(err)
		}
		stats := lz77.AnalyzeMRR(ts, 32)
		want := NestingDepthFor(families)
		got := stats.AvgRounds()
		// Allow slack for block-start literals and group misalignment.
		lo, hi := float64(want)*0.55, float64(want)*1.45+2
		if got < lo || got > hi {
			t.Errorf("families=%d: avg rounds %.1f, designed depth %d", families, got, want)
		}
	}
}

func TestNestingMonotoneInDepth(t *testing.T) {
	prev := 0.0
	for _, families := range []int{32, 16, 8, 4, 2, 1} {
		data := Nesting(256<<10, families, 5)
		ts, err := lz77.Parse(data, lz77.Options{Window: NestingWindow})
		if err != nil {
			t.Fatal(err)
		}
		got := lz77.AnalyzeMRR(ts, 32).AvgRounds()
		if got < prev {
			t.Fatalf("rounds not monotone: families=%d gives %.1f after %.1f", families, got, prev)
		}
		prev = got
	}
}

func TestNestingCompressible(t *testing.T) {
	data := Nesting(1<<20, 1, 9)
	ts, err := lz77.Parse(data, lz77.Options{Window: NestingWindow})
	if err != nil {
		t.Fatal(err)
	}
	if size := ts.CompressedSizeByte(); size > len(data)/2 {
		t.Fatalf("nesting data should compress at least 2:1, got %d/%d", size, len(data))
	}
	out, err := ts.Decompress(nil)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("nesting roundtrip failed")
	}
}

func TestRandomIncompressible(t *testing.T) {
	data := Random(1<<20, 3)
	if r := gzipRatio(t, data); r > 1.01 {
		t.Fatalf("random data compressed %.3f:1", r)
	}
}

func TestZerosAndRepeat(t *testing.T) {
	if len(Zeros(100)) != 100 {
		t.Fatal("zeros length")
	}
	rp := RepeatPhrase(100, "abc")
	if len(rp) != 100 || rp[0] != 'a' || rp[3] != 'a' {
		t.Fatal("repeat phrase")
	}
}

func TestFlateRoundtripOnGenerated(t *testing.T) {
	// The generated corpora must be valid inputs for real codecs.
	data := WikiXML(1<<20, 2)
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, 6)
	w.Write(data)
	w.Close()
	r := flate.NewReader(&buf)
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("flate roundtrip failed on WikiXML")
	}
}

func BenchmarkWikiXML(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		WikiXML(1<<20, uint64(i))
	}
}

func BenchmarkMatrixMarket(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		MatrixMarket(1<<20, uint64(i))
	}
}
