package datagen

import (
	"fmt"
	"strings"
)

// MatrixMarket generates a synthetic sparse matrix in Matrix Market
// coordinate format, standing in for the paper's "Hollywood-2009" social
// graph (§V: stored as a 0.77 GB Matrix Market file, gzip 4.99:1). The
// structure that makes such files compress well is reproduced: long runs of
// lines sharing the same (textual) row index, ascending column indices with
// small deltas drawn from a power-law degree distribution, all over the
// small digit alphabet.
func MatrixMarket(n int, seed uint64) []byte {
	rng := newRNG(seed)
	var b strings.Builder
	b.Grow(n + 256)
	b.WriteString("%%MatrixMarket matrix coordinate pattern symmetric\n")
	b.WriteString("% synthetic hollywood-2009 stand-in (datagen)\n")
	const nodes = 1139905 // hollywood-2009 dimension
	fmt.Fprintf(&b, "%d %d %d\n", nodes, nodes, 57515616)

	// Hub vertices: film-actor graphs have a small set of extremely popular
	// vertices. Edges to hubs repeat the same column text all over the file,
	// so their lines compress against far-back occurrences (no intra-warp
	// dependency), while clustered ascending runs compress against the
	// immediately preceding line (chained). The mix reproduces the moderate
	// nesting the paper measures on hollywood-2009 (≈4 MRR rounds).
	hubs := make([]int, 20)
	for i := range hubs {
		hubs[i] = 100000 + rng.intn(900000)
	}
	row := 1 + rng.intn(1000)
	for b.Len() < n {
		deg := 1 + int(float64(1+rng.intn(4))/(rng.float()+0.08))
		if deg > 24 {
			deg = 24
		}
		col := 1 + rng.intn(row+64)
		for d := 0; d < deg && b.Len() < n; d++ {
			if rng.intn(100) < 72 {
				fmt.Fprintf(&b, "%d %d\n", row, hubs[rng.intn(len(hubs))])
			} else {
				fmt.Fprintf(&b, "%d %d\n", row, col)
				if rng.intn(100) < 80 {
					col += 1 + rng.intn(9)
				} else {
					col += 10 + rng.intn(5000)
				}
			}
		}
		row += 1 + rng.intn(5)
	}
	out := []byte(b.String())
	if len(out) > n {
		out = out[:n]
	}
	return out
}
