package datagen

// Nesting implements the paper's artificial nesting-depth datasets (§V-A,
// Fig. 10): a 16-byte string is repeated with a one-byte change alternating
// between the first and last byte position, each instance preceded by a
// separator drawn from a disjoint byte set so no accidental matches cross
// instances.
//
// One repeated family produces a dependency chain through every instance:
// all 32 sequences of a warp group depend on their predecessor → 32 MRR
// rounds. Alternating k distinct families shortens each chain to 32/k
// (paper: "two repeated strings result in depth 16, four repeated strings in
// depth 8, and so on").
//
// Construction invariants (each prevents a chain short-circuit):
//
//   - Separators: 4 bytes in 0x80+, each byte c·mᵢ mod 61 for invertible
//     multipliers mᵢ, so any byte-level separator coincidence requires two
//     instances 61 apart (1220 bytes — outside NestingWindow).
//   - Families: every even string position holds a per-family byte
//     (0x20+f), so no 4-byte window of one family ever matches another.
//   - Mutations: the changed byte cycles over 53 values in 0xC0+ per
//     family; each position sees every other mutation, so the nearest
//     same-position same-value repeat is 106·families instances
//     (2120·families bytes) away — outside the window.
//
// Parse nesting data with Window = NestingWindow: large enough to reach the
// previous instance of every family (32 families × 20 bytes = 640), small
// enough to exclude all the coincidences above.
func Nesting(n int, families int, seed uint64) []byte {
	if families < 1 {
		families = 1
	}
	if families > 32 {
		families = 32
	}
	_ = seed // construction is fully deterministic; seed kept for API symmetry
	const strLen = 16

	cur := make([][]byte, families)
	for f := range cur {
		s := make([]byte, strLen)
		for i := range s {
			if i%2 == 0 {
				s[i] = byte(0x20 + f) // family marker byte
			} else {
				s[i] = byte('A' + i%26)
			}
		}
		cur[f] = s
	}
	mutCount := make([]int, families)

	out := make([]byte, 0, n+64)
	c := 0
	f := 0
	for len(out) < n {
		// Separator: all four bytes change every instance; any repeat is 61
		// instances away.
		out = append(out,
			0x80|byte((c*1)%61),
			0x80|byte((c*2)%61),
			0x80|byte((c*3)%61),
			0x80|byte((c*5)%61))
		c++

		// Mutate one byte, alternating first/last (paper Fig. 10).
		s := cur[f]
		pos := 0
		if mutCount[f]%2 == 1 {
			pos = strLen - 1
		}
		s[pos] = 0xC0 | byte(mutCount[f]%53)
		mutCount[f]++
		out = append(out, s...)

		f = (f + 1) % families
	}
	return out[:n]
}

// NestingWindow is the LZ77 window to use when parsing Nesting data; see
// the Nesting doc comment.
const NestingWindow = 1024

// NestingDepthFor reports the designed nesting depth for a family count.
func NestingDepthFor(families int) int {
	if families < 1 {
		families = 1
	}
	if families > 32 {
		families = 32
	}
	return (32 + families - 1) / families
}
