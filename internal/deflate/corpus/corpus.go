// Package corpus deterministically generates the DEFLATE/gzip conformance
// corpus checked in under testdata/deflate. Each file targets a structural
// feature of RFC 1951/1952 that the decoder must handle: stored blocks,
// fixed-Huffman blocks, dynamic blocks with degenerate single-symbol trees,
// empty final blocks, Z_SYNC_FLUSH boundaries, multi-member files, and the
// optional header fields. Files are produced three ways: through
// compress/gzip (the reference implementation the decoder is held
// byte-equal to), through compress/flate with hand-assembled gzip framing,
// and fully hand-crafted at the bit level for shapes the stdlib compressor
// never emits.
//
// cmd/mkcorpus writes these files to disk; the conformance tests regenerate
// them and assert the checked-in bytes match, so the corpus can neither
// drift nor become unreproducible. Regenerate with:
//
//	go run ./cmd/mkcorpus
package corpus

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"hash/crc32"
	"sort"

	"gompresso/internal/bitio"
	"gompresso/internal/datagen"
	"gompresso/internal/huffman"
)

// Files returns the corpus: file name → gzip bytes. Deterministic for a
// fixed Go toolchain version (stdlib-compressed entries depend on the
// stdlib encoder; the pinned CI toolchain keeps them stable).
func Files() map[string][]byte {
	return map[string][]byte{
		"stored.gz":             storedFile(),
		"fixed.gz":              fixedFile(),
		"dynamic-degenerate.gz": degenerateFile(),
		"empty.gz":              stdGzip(nil, gzip.BestCompression),
		"empty-final.gz":        emptyFinalFile(),
		"multimember.gz":        multiMemberFile(),
		"syncflush.gz":          syncFlushFile(),
		"headers.gz":            headersFile(),
		"hcrc.gz":               hcrcFile(),
		"window.gz":             stdGzip(datagen.WikiXML(160<<10, 42), gzip.BestCompression),
	}
}

// stdGzip compresses raw with compress/gzip at the given level.
func stdGzip(raw []byte, level int) []byte {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		panic(err)
	}
	if _, err := w.Write(raw); err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// gzipWrap frames a raw deflate stream as a single gzip member carrying
// raw's checksum and size.
func gzipWrap(deflated, raw []byte) []byte {
	out := []byte{0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255}
	out = append(out, deflated...)
	out = le32(out, crc32.ChecksumIEEE(raw))
	return le32(out, uint32(len(raw)))
}

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// storedFile: incompressible data, so the stdlib encoder emits stored
// blocks only.
func storedFile() []byte {
	return stdGzip(datagen.Random(12<<10, 7), gzip.NoCompression)
}

// multiMemberFile: three concatenated members, including an empty one —
// the shape produced by `cat a.gz b.gz c.gz`.
func multiMemberFile() []byte {
	a := stdGzip(datagen.WikiXML(24<<10, 3), gzip.BestCompression)
	b := stdGzip(nil, gzip.BestSpeed)
	c := stdGzip(datagen.RepeatPhrase(8<<10, "the deflate format is everywhere "), gzip.BestSpeed)
	return append(append(a, b...), c...)
}

// syncFlushFile: Flush between writes inserts Z_SYNC_FLUSH-style empty
// stored blocks mid-stream.
func syncFlushFile() []byte {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(w, "segment %d: %s\n", i, datagen.RepeatPhrase(900, "flush boundary "))
		if err := w.Flush(); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// headersFile: the optional FEXTRA, FNAME, and FCOMMENT header fields.
func headersFile() []byte {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Name = "conformance.txt"
	w.Comment = "gompresso deflate conformance corpus"
	w.Extra = []byte{'g', 'z', 4, 0, 0xde, 0xfa, 0x7e, 0x00}
	w.Write([]byte("header fields exercised\n"))
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// hcrcFile hand-assembles a member with the FHCRC header checksum, which
// compress/gzip verifies on read but never writes.
func hcrcFile() []byte {
	raw := []byte("the header CRC guards the member header\n")
	var db bytes.Buffer
	fw, _ := flate.NewWriter(&db, flate.BestCompression)
	fw.Write(raw)
	fw.Close()
	hdr := []byte{0x1f, 0x8b, 8, 0x02, 0, 0, 0, 0, 0, 255}
	sum := crc32.ChecksumIEEE(hdr) & 0xffff
	out := append(hdr, byte(sum), byte(sum>>8))
	out = append(out, db.Bytes()...)
	out = le32(out, crc32.ChecksumIEEE(raw))
	return le32(out, uint32(len(raw)))
}

// fixedLens is the fixed-Huffman litlen code (RFC 1951 §3.2.6).
func fixedLens() ([]uint8, []uint8) {
	lit := make([]uint8, 288)
	for i := range lit {
		switch {
		case i < 144:
			lit[i] = 8
		case i < 256:
			lit[i] = 9
		case i < 280:
			lit[i] = 7
		default:
			lit[i] = 8
		}
	}
	dist := make([]uint8, 32)
	for i := range dist {
		dist[i] = 5
	}
	return lit, dist
}

// lengthSym maps a match length to its litlen symbol, base, and extra-bit
// count; distSym does the same for distances.
var lengthBase = []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
var lengthExtra = []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
var distBase = []int{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
var distExtra = []int{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}

func symFor(v int, base []int) int {
	i := sort.SearchInts(base, v+1) - 1
	if i < 0 || (i+1 < len(base) && base[i+1] <= v) {
		// SearchInts already guarantees base[i] ≤ v < base[i+1].
		panic("corpus: bad symbol lookup")
	}
	return i
}

// emit writes one Huffman-coded symbol (pre-reversed canonical code).
func emit(w *bitio.Writer, codes []huffman.Code, sym int) {
	c := codes[sym]
	if c.Len == 0 {
		panic(fmt.Sprintf("corpus: symbol %d has no code", sym))
	}
	w.WriteBits(uint64(c.Bits), uint(c.Len))
}

// fixedFile hand-crafts a fixed-Huffman block — literals, an overlapping
// match, and a long match — which the stdlib encoder emits only under rare
// size conditions.
func fixedFile() []byte {
	litLens, distLens := fixedLens()
	litCodes, err := huffman.CanonicalCodes(litLens, 9)
	if err != nil {
		panic(err)
	}
	distCodes, err := huffman.CanonicalCodes(distLens, 5)
	if err != nil {
		panic(err)
	}
	w := bitio.NewWriter(0)
	w.WriteBits(1, 1) // BFINAL
	w.WriteBits(1, 2) // fixed
	var raw []byte
	lit := func(s string) {
		for _, b := range []byte(s) {
			emit(w, litCodes, int(b))
			raw = append(raw, b)
		}
	}
	match := func(length, dist int) {
		ls := symFor(length, lengthBase)
		emit(w, litCodes, 257+ls)
		w.WriteBits(uint64(length-lengthBase[ls]), uint(lengthExtra[ls]))
		ds := symFor(dist, distBase)
		emit(w, distCodes, ds)
		w.WriteBits(uint64(dist-distBase[ds]), uint(distExtra[ds]))
		from := len(raw) - dist
		for i := 0; i < length; i++ {
			raw = append(raw, raw[from+i])
		}
	}
	lit("fixed huffman blocks need no tree transmission. ")
	match(30, 21) // overlapping region follows
	lit("ha")
	match(258, 2) // maximum-length match over a 2-byte period
	lit(" end.")
	emit(w, litCodes, 256)
	return gzipWrap(w.Bytes(), raw)
}

// degenerateFile hand-crafts a dynamic block whose distance tree is a
// single code of length one — the RFC's "one distance code" degenerate
// case — and whose litlen tree has exactly four symbols.
func degenerateFile() []byte {
	const (
		matchLen = 96  // litlen symbol 278 (base 83, 4 extra bits)
		matchSym = 278 // covers lengths 83..98
		hlit     = matchSym + 1 - 257
		hdist    = 2 - 1 // distance symbol 1 (distance 2), so two dist lengths
	)
	litLens := make([]uint8, matchSym+1)
	litLens['a'], litLens['b'], litLens[256], litLens[matchSym] = 2, 2, 2, 2
	distLens := []uint8{0, 1}
	litCodes, err := huffman.CanonicalCodes(litLens, 2)
	if err != nil {
		panic(err)
	}
	distCodes, err := huffman.CanonicalCodes(distLens, 1)
	if err != nil {
		panic(err)
	}
	// Code-length code over {0, 1, 2, 18}, all length 2.
	var clLens [19]uint8
	clLens[0], clLens[1], clLens[2], clLens[18] = 2, 2, 2, 2
	clCodes, err := huffman.CanonicalCodes(clLens[:], 7)
	if err != nil {
		panic(err)
	}
	clOrder := []int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}
	hclen := 18 // through index 17 of the order, covering symbols 2 and 1

	w := bitio.NewWriter(0)
	w.WriteBits(1, 1) // BFINAL
	w.WriteBits(2, 2) // dynamic
	w.WriteBits(hlit, 5)
	w.WriteBits(hdist, 5)
	w.WriteBits(uint64(hclen-4), 4)
	for i := 0; i < hclen; i++ {
		w.WriteBits(uint64(clLens[clOrder[i]]), 3)
	}
	zeros := func(n int) {
		for n > 0 {
			rep := n
			if rep > 138 {
				rep = 138
			}
			if rep < 11 { // too short for symbol 18: emit literal zeros
				for i := 0; i < rep; i++ {
					emit(w, clCodes, 0)
				}
			} else {
				emit(w, clCodes, 18)
				w.WriteBits(uint64(rep-11), 7)
			}
			n -= rep
		}
	}
	// Litlen lengths: zeros to 'a', then a,b, zeros to 256, the end-of-block
	// code, zeros to the match symbol, the match symbol.
	zeros('a')
	emit(w, clCodes, 2)
	emit(w, clCodes, 2)
	zeros(256 - 'b' - 1)
	emit(w, clCodes, 2)
	zeros(matchSym - 256 - 1)
	emit(w, clCodes, 2)
	// Distance lengths.
	emit(w, clCodes, 0)
	emit(w, clCodes, 1)
	// Content: "ab", then a 96-byte copy at distance 2, written with the
	// tree's single one-bit distance code.
	emit(w, litCodes, 'a')
	emit(w, litCodes, 'b')
	emit(w, litCodes, matchSym)
	w.WriteBits(matchLen-83, 4)
	emit(w, distCodes, 1)
	emit(w, litCodes, 256)

	raw := []byte("ab")
	for i := 0; i < matchLen; i++ {
		raw = append(raw, raw[i])
	}
	return gzipWrap(w.Bytes(), raw)
}

// emptyFinalFile: a non-final fixed block followed by an empty final
// stored block — the classic "flush then close" stream tail.
func emptyFinalFile() []byte {
	litLens, _ := fixedLens()
	litCodes, err := huffman.CanonicalCodes(litLens, 9)
	if err != nil {
		panic(err)
	}
	raw := []byte("payload before an empty final block")
	w := bitio.NewWriter(0)
	w.WriteBits(0, 1) // not final
	w.WriteBits(1, 2) // fixed
	for _, b := range raw {
		emit(w, litCodes, int(b))
	}
	emit(w, litCodes, 256)
	w.WriteBits(1, 1) // final
	w.WriteBits(0, 2) // stored
	w.AlignByte()
	w.WriteBits(0, 16)      // LEN
	w.WriteBits(0xffff, 16) // NLEN
	return gzipWrap(w.Bytes(), raw)
}
