package deflate

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"runtime"
	"testing"
	"time"

	"gompresso/internal/datagen"
)

// noLeaks asserts the goroutine count returns to its baseline after fn —
// the scanner and every in-flight chunk decode must wind down whether the
// stream completed, failed mid-pipeline, or was abandoned.
func noLeaks(t *testing.T, fn func()) {
	t.Helper()
	base := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func gzipped(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Write(raw)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A worker hitting a corrupt chunk mid-pipeline must not strand the
// scanner or any chunk decode.
func TestNoLeakOnCorruptChunk(t *testing.T) {
	data := gzipped(t, datagen.WikiXML(512<<10, 23))
	mut := append([]byte(nil), data...)
	mut[len(mut)/3] ^= 0xff
	noLeaks(t, func() {
		for i := 0; i < 5; i++ {
			r, err := NewReaderBytes(nil, mut, FormatGzip, Options{Workers: 4, ChunkSize: minChunkSize})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, r); err == nil {
				t.Fatal("corrupt stream decoded without error")
			}
			r.Close()
		}
	})
}

// Closing a parallel Reader mid-stream stops the scanner and releases
// every in-flight chunk without waiting for the consumer to drain.
func TestNoLeakOnEarlyClose(t *testing.T) {
	data := gzipped(t, datagen.WikiXML(512<<10, 29))
	noLeaks(t, func() {
		for i := 0; i < 5; i++ {
			r, err := NewReaderBytes(nil, data, FormatGzip, Options{Workers: 4, ChunkSize: minChunkSize})
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 100)
			if _, err := io.ReadFull(r, buf); err != nil {
				t.Fatal(err)
			}
			r.Close()
		}
	})
}

// Context cancellation surfaces as the context's error and winds the
// pipeline down.
func TestContextCancel(t *testing.T) {
	data := gzipped(t, datagen.WikiXML(512<<10, 31))
	noLeaks(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		r, err := NewReaderBytes(ctx, data, FormatGzip, Options{Workers: 4, ChunkSize: minChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
		cancel()
		if _, err := io.Copy(io.Discard, r); err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		r.Close()
	})
}
