package deflate

import (
	"bytes"
	"compress/gzip"
	"testing"

	"gompresso/internal/datagen"
)

// blockBoundaries walks a member's deflate stream sequentially and returns
// every block-start bit offset — the ground truth the probe must land on.
func blockBoundaries(t *testing.T, data []byte, firstBit int64) []int64 {
	t.Helper()
	var eng engine
	eng.reset(data, firstBit)
	defer eng.release()
	bounds := []int64{firstBit}
	buf := make([]byte, winSize+segSize+maxMatch+8)
	pos := 0
	for {
		npos, ev, err := eng.decodeInto(buf, pos, winSize+segSize)
		if err != nil {
			t.Fatal(err)
		}
		pos = npos
		switch ev {
		case evEOS:
			return bounds
		case evBoundary:
			bounds = append(bounds, eng.bit)
		case evSpace:
			// Slide: keep the window, drop the rest.
			keep := pos
			if keep > winSize {
				keep = winSize
			}
			copy(buf, buf[pos-keep:pos])
			pos = keep
		}
	}
}

// The probe must find real block boundaries in stdlib-compressed streams —
// this is what parallel speedup rides on — and every candidate it reports
// must be on the true boundary chain (false positives are tolerated by the
// resolver but should be essentially nonexistent on well-formed input).
func TestFindCandidateOnStdlibStream(t *testing.T) {
	raw := datagen.WikiXML(256<<10, 13)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw)
	zw.Close()
	data := buf.Bytes()
	start, err := parseGzipHeader(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]bool{}
	for _, b := range blockBoundaries(t, data, start*8) {
		truth[b] = true
	}
	if len(truth) < 3 {
		t.Skipf("stream has only %d blocks; nothing to probe", len(truth))
	}
	tabs := getTables()
	defer putTables(tabs)
	found := 0
	for from := 2 << 10; from < len(data)-1024; from += 8 << 10 {
		cand := findCandidate(data, from, 32<<10, tabs)
		if cand < 0 {
			continue
		}
		if !truth[cand] {
			t.Fatalf("probe at byte %d returned bit %d, not a true block boundary", from, cand)
		}
		found++
	}
	if found == 0 {
		t.Fatal("probe found no block boundaries in a stdlib stream")
	}
}

// The probe accepts stored-block chains (incompressible archives) and
// rejects random garbage.
func TestFindCandidateStoredAndGarbage(t *testing.T) {
	raw := datagen.Random(192<<10, 9)
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.NoCompression)
	zw.Write(raw)
	zw.Close()
	data := buf.Bytes()
	start, err := parseGzipHeader(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]bool{}
	for _, b := range blockBoundaries(t, data, start*8) {
		truth[b] = true
	}
	tabs := getTables()
	defer putTables(tabs)
	cand := findCandidate(data, 16<<10, 96<<10, tabs)
	if cand < 0 {
		t.Fatal("probe found no stored-block boundary")
	}
	// Stored headers have bit-phase aliases: a candidate a few bits before
	// the true boundary reads the same byte-aligned LEN/NLEN and decodes
	// the same payload (the resolver's splice check absorbs the
	// difference). The probe must land on the true boundary's byte-aligned
	// payload, i.e. resynchronize at the LEN offset of a real boundary.
	lenOff := func(b int64) int64 { return (b + 3 + 7) >> 3 }
	ok := false
	for b := range truth {
		if lenOff(b) == lenOff(cand) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("stored probe returned bit %d, which resynchronizes with no true boundary", cand)
	}
	// Pure random bytes (no valid deflate structure) must not produce
	// false positives within a realistic span.
	garbage := datagen.Random(64<<10, 31337)
	if c := findCandidate(garbage, 0, len(garbage), tabs); c >= 0 {
		// Verify it would at least be caught downstream: the resolver
		// tolerates false positives, but flag unexpectedly weak filtering.
		t.Logf("probe accepted bit %d in random garbage (resolver would discard)", c)
	}
}
