package deflate

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"runtime"
	"testing"

	"gompresso/internal/datagen"
)

// wantErr asserts err is a typed *Error of the given kind at the exact
// byte offset (off == -1 accepts any offset).
func wantErr(t *testing.T, name string, err, kind error, off int64) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: decoded without error", name)
	}
	var de *Error
	if !errors.As(err, &de) {
		t.Fatalf("%s: error %v is not a typed *deflate.Error", name, err)
	}
	if !errors.Is(err, kind) {
		t.Fatalf("%s: error kind %v, want %v (err: %v)", name, de.Kind, kind, err)
	}
	if off >= 0 && de.Off != off {
		t.Fatalf("%s: error offset %d, want %d (err: %v)", name, de.Off, off, err)
	}
}

// Truncating a stream at structurally distinct points must yield
// ErrTruncated pinned to the input length — the exact byte at which the
// stream stops making sense.
func TestTruncation(t *testing.T) {
	full := stdGzip(t, datagen.WikiXML(32<<10, 11))
	stored := stdGzip(t, datagen.Random(4<<10, 3)) // stored-block body
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", full[:0]},
		{"mid-magic", full[:1]},
		{"mid-header", full[:5]},
		{"start-of-deflate", full[:10]},
		{"mid-dynamic-header", full[:12]},
		{"mid-block", full[:len(full)/2]},
		{"mid-footer", full[:len(full)-3]},
		{"missing-footer", full[:len(full)-8]},
		{"mid-stored-block", stored[:64]},
	}
	for _, tc := range cases {
		for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
			_, err := Decompress(tc.data, FormatGzip, Options{Workers: w, ChunkSize: minChunkSize})
			wantErr(t, tc.name, err, ErrTruncated, int64(len(tc.data)))
		}
	}
}

func stdGzip(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Flipping bytes at structurally known positions must yield the right
// typed error at the right offset, at every worker count.
func TestCorruption(t *testing.T) {
	full := stdGzip(t, datagen.WikiXML(32<<10, 11))
	stored := stdGzip(t, datagen.Random(4<<10, 3))
	flip := func(data []byte, i int) []byte {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		return mut
	}
	cases := []struct {
		name string
		data []byte
		kind error
		off  int64 // -1: any
	}{
		{"bad-magic", flip(full, 0), ErrHeader, 0},
		{"bad-method", flip(full, 2), ErrHeader, 2},
		// Stored blocks start right after the 10-byte member header: one
		// header byte, then LEN at 11 and NLEN at 13. Breaking the
		// complement is detected at LEN's offset.
		{"stored-len-check", flip(stored, 13), ErrCorrupt, 11},
		// A flipped payload byte decodes "fine" and fails the CRC check at
		// the footer.
		{"payload-crc", flip(stored, 100), ErrChecksum, int64(len(stored) - 8)},
		{"bad-isize", flip(full, len(full)-2), ErrChecksum, int64(len(full) - 4)},
		{"bad-crc", flip(full, len(full)-6), ErrChecksum, int64(len(full) - 8)},
	}
	for _, tc := range cases {
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			_, err := Decompress(tc.data, FormatGzip, Options{Workers: w, ChunkSize: minChunkSize})
			wantErr(t, tc.name, err, tc.kind, tc.off)
		}
	}
}

// A corrupt byte mid-stream must surface identically at every pipeline
// configuration: same served prefix (a prefix of the true output), same
// typed error, same offset. The parallel resolver falls back to the
// sequential engine for the corrupt region, so worker count must not
// change what the consumer observes.
func TestCorruptMidStreamParity(t *testing.T) {
	raw := datagen.WikiXML(256<<10, 19)
	full := stdGzip(t, raw)
	mut := append([]byte(nil), full...)
	mut[len(mut)/2] ^= 0x5a

	type outcome struct {
		prefix []byte
		err    error
	}
	decode := func(w, chunk int) outcome {
		r, err := NewReaderBytes(nil, mut, FormatGzip, Options{Workers: w, ChunkSize: chunk})
		if err != nil {
			return outcome{err: err}
		}
		defer r.Close()
		var buf bytes.Buffer
		_, err = io.Copy(&buf, r)
		return outcome{prefix: buf.Bytes(), err: err}
	}

	base := decode(1, minChunkSize)
	if base.err == nil {
		t.Skip("corruption at this position decodes cleanly; CRC would catch it at the footer")
	}
	var de *Error
	if !errors.As(base.err, &de) {
		t.Fatalf("untyped error: %v", base.err)
	}
	// DEFLATE has no mid-stream integrity, so bytes decoded from the
	// corrupted region may be garbage before the structural error surfaces
	// (compress/flate behaves the same; only the footer CRC is decisive).
	// What must hold: bytes decoded from before the flipped byte are
	// intact, and every pipeline configuration observes the identical
	// prefix and error. The intact estimate maps the flip's compressed
	// offset to an output offset linearly, halved for safety.
	intact := int(int64(len(raw)) * int64(len(mut)/2-10) / int64(len(full)) / 2)
	if intact > len(base.prefix) {
		intact = len(base.prefix)
	}
	if !bytes.Equal(base.prefix[:intact], raw[:intact]) {
		t.Fatal("bytes before the corrupt region differ from the true output")
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		for _, chunk := range []int{minChunkSize, 16 << 10} {
			got := decode(w, chunk)
			if !bytes.Equal(got.prefix, base.prefix) {
				t.Fatalf("W=%d chunk=%d: served %d bytes, want %d", w, chunk, len(got.prefix), len(base.prefix))
			}
			var gde *Error
			if !errors.As(got.err, &gde) {
				t.Fatalf("W=%d chunk=%d: untyped error %v", w, chunk, got.err)
			}
			if gde.Off != de.Off || !errors.Is(got.err, de.Kind) {
				t.Fatalf("W=%d chunk=%d: error %v, want %v", w, chunk, got.err, base.err)
			}
		}
	}
}

// Zlib-specific failures: bad header check, FDICT, Adler mismatch.
func TestZlibErrors(t *testing.T) {
	_, err := Decompress([]byte{0x78, 0x9d}, FormatZlib, Options{Workers: 1})
	wantErr(t, "bad-check", err, ErrHeader, 1)
	_, err = Decompress([]byte{0x78, 0xbb}, FormatZlib, Options{Workers: 1})
	wantErr(t, "fdict", err, ErrDictionary, 1)
}
