package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"gompresso/internal/datagen"
	"gompresso/internal/deflate/corpus"
)

// stdGunzip is the reference: whatever compress/gzip produces (bytes or an
// error) is what this package must produce.
func stdGunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib gzip.NewReader: %v", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("stdlib gzip read: %v", err)
	}
	return out
}

// decodeMatrix decodes data at every worker-count × readahead × chunk-size
// combination and asserts each result is byte-identical to want — the
// PR-2-style pipeline-parity matrix for the foreign-format path. Small
// chunk sizes force the speculative scanner/resolver machinery to engage
// even on small files.
func decodeMatrix(t *testing.T, name string, data, want []byte, form Format) {
	t.Helper()
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		for _, ra := range []int{0, 2} {
			for _, chunk := range []int{0, minChunkSize} {
				got, err := Decompress(data, form, Options{Workers: w, Readahead: ra, ChunkSize: chunk})
				if err != nil {
					t.Fatalf("%s W=%d RA=%d chunk=%d: %v", name, w, ra, chunk, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s W=%d RA=%d chunk=%d: output differs (%d vs %d bytes)",
						name, w, ra, chunk, len(got), len(want))
				}
			}
		}
	}
}

// corpusFiles returns the checked-in conformance corpus.
func corpusFiles(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob("../../testdata/deflate/*.gz")
	if err != nil || len(paths) == 0 {
		t.Fatalf("conformance corpus missing (run `go run ./cmd/mkcorpus`): %v", err)
	}
	files := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		files[filepath.Base(p)] = data
	}
	return files
}

// The checked-in corpus must match what the generator produces, so the
// crafted files stay reproducible and cannot drift from their source.
func TestCorpusReproducible(t *testing.T) {
	disk := corpusFiles(t)
	gen := corpus.Files()
	var names []string
	for n := range gen {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !bytes.Equal(disk[n], gen[n]) {
			t.Errorf("%s: checked-in bytes differ from generator output (run `go run ./cmd/mkcorpus`)", n)
		}
		delete(disk, n)
	}
	for n := range disk {
		t.Errorf("%s: on disk but not produced by the generator", n)
	}
}

// Golden round-trip: every conformance file decodes byte-identically to
// compress/gzip at every pipeline configuration.
func TestConformanceCorpus(t *testing.T) {
	for name, data := range corpusFiles(t) {
		want := stdGunzip(t, data)
		decodeMatrix(t, name, data, want, FormatGzip)
	}
}

// The bench corpora, stdlib-compressed at every level 1-9 (plus 0 and
// HuffmanOnly), must round-trip byte-identically — gzip framing, zlib
// framing, and raw deflate alike.
func TestStdlibLevelsParity(t *testing.T) {
	size := 192 << 10
	if testing.Short() {
		size = 48 << 10
	}
	corpora := map[string][]byte{
		"wiki":   datagen.WikiXML(size, 1),
		"matrix": datagen.MatrixMarket(size, 1),
		"random": datagen.Random(size/4, 2),
		"zeros":  datagen.Zeros(size / 2),
	}
	levels := []int{flate.NoCompression, 1, 2, 3, 4, 5, 6, 7, 8, 9, flate.HuffmanOnly}
	if testing.Short() {
		levels = []int{flate.NoCompression, 1, 6, 9, flate.HuffmanOnly}
	}
	for cname, raw := range corpora {
		for _, level := range levels {
			name := fmt.Sprintf("%s/L%d", cname, level)

			var gz bytes.Buffer
			zw, err := gzip.NewWriterLevel(&gz, level)
			if err != nil {
				t.Fatal(err)
			}
			zw.Write(raw)
			zw.Close()
			decodeMatrix(t, name+"/gzip", gz.Bytes(), raw, FormatGzip)

			var zl bytes.Buffer
			zlw, err := zlib.NewWriterLevel(&zl, level)
			if err != nil {
				t.Fatal(err)
			}
			zlw.Write(raw)
			zlw.Close()
			decodeMatrix(t, name+"/zlib", zl.Bytes(), raw, FormatZlib)

			var df bytes.Buffer
			fw, err := flate.NewWriter(&df, level)
			if err != nil {
				t.Fatal(err)
			}
			fw.Write(raw)
			fw.Close()
			decodeMatrix(t, name+"/raw", df.Bytes(), raw, FormatRaw)
		}
	}
}

// Reads through small buffers and the WriteTo fast path must agree.
func TestReaderSmallReads(t *testing.T) {
	raw := datagen.WikiXML(96<<10, 5)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()

	r, err := NewReaderBytes(nil, gz.Bytes(), FormatGzip, Options{Workers: 2, ChunkSize: minChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got bytes.Buffer
	buf := make([]byte, 777)
	for {
		n, err := r.Read(buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), raw) {
		t.Fatal("small-read output differs")
	}

	r2, err := NewReaderBytes(nil, gz.Bytes(), FormatGzip, Options{Workers: 2, ChunkSize: minChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	var got2 bytes.Buffer
	if _, err := io.Copy(&got2, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Bytes(), raw) {
		t.Fatal("WriteTo output differs")
	}
}

// Multi-member gzip decodes across member boundaries at every worker
// count, and Members reports the member count.
func TestMultiMember(t *testing.T) {
	data := corpusFiles(t)["multimember.gz"]
	want := stdGunzip(t, data)
	r, err := NewReaderBytes(nil, data, FormatGzip, Options{Workers: 2, ChunkSize: minChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("multimember output differs")
	}
	if r.Members() != 3 {
		t.Fatalf("Members = %d, want 3", r.Members())
	}
}
