package deflate

import (
	"encoding/binary"

	"gompresso/internal/bitio"
)

// Candidate discovery: the scanner walks the compressed stream at chunk
// granularity looking for bit positions that start a DEFLATE block. A
// position is only a *candidate* — the decode pipeline verifies that the
// preceding chunk's decode lands exactly on it, and falls back to
// sequential decoding when it does not — so the probe's job is to make
// false positives rare, not impossible:
//
//  1. A cheap per-bit filter accepts only dynamic block headers whose
//     counts are in range and whose code-length code satisfies the Kraft
//     equality (the same completeness rule the decoder enforces), plus
//     stored blocks whose LEN/NLEN complement checks out.
//  2. Survivors are verified by parsing the full header (both trees must
//     build) and trial-decoding several hundred symbols across block
//     boundaries; stored candidates must chain into further verifiable
//     blocks, since 16 bits of LEN/NLEN alone are too weak an anchor.
//
// Fixed-Huffman blocks are never primary anchors (3 header bits filter
// nothing; trial-decoding every third bit position would dominate the scan)
// but chains may pass through them. Regions where no candidate verifies —
// fixed-only stretches, pathological content — simply extend the current
// chunk while the scanner keeps probing ahead; correctness never depends
// on the probe.

const (
	trialSymbols = 512 // trial-decode budget per verification
	trialBlocks  = 8   // chain-follow budget per verification
)

// bitsAt returns the n (≤ 57) bits at absolute bit offset `bit`, zero-
// padded past the end of data.
func bitsAt(data []byte, bit int64, n uint) uint64 {
	i := int(bit >> 3)
	sh := uint(bit & 7)
	if i+8 <= len(data) {
		return binary.LittleEndian.Uint64(data[i:]) >> sh & (1<<n - 1)
	}
	var w uint64
	for k := 0; i+k < len(data) && k < 8; k++ {
		w |= uint64(data[i+k]) << (8 * uint(k))
	}
	return w >> sh & (1<<n - 1)
}

// findCandidate returns the first verified block-start bit offset at or
// after byte offset fromByte, scanning at most span bytes; -1 if none.
func findCandidate(data []byte, fromByte, span int, t *tables) int64 {
	end := fromByte + span
	if end > len(data) {
		end = len(data)
	}
	for p := fromByte; p < end; p++ {
		w := bitsAt(data, int64(p)*8, 57)
		for sub := uint(0); sub < 8; sub++ {
			b := int64(p)*8 + int64(sub)
			switch (w >> (sub + 1)) & 3 {
			case 2:
				if quickDynamic(data, b, w>>sub) && verifyCandidate(data, b, t) {
					return b
				}
			case 0:
				if quickStored(data, b) && verifyCandidate(data, b, t) {
					return b
				}
			}
		}
	}
	return -1
}

// quickDynamic applies the cheap dynamic-header filter at bit b. v holds
// the stream's bits starting at b (≥ 17 valid bits).
func quickDynamic(data []byte, b int64, v uint64) bool {
	if (v>>3)&31 > 29 || (v>>8)&31 > 29 { // HLIT, HDIST
		return false
	}
	ncl := int((v>>13)&15) + 4
	lens := bitsAt(data, b+17, uint(3*ncl))
	// The code-length code must be complete (Kraft sum exactly one) or a
	// degenerate single code of length 1 — mirroring buildTab exactly.
	kraft, used, last := 0, 0, 0
	for i := 0; i < ncl; i++ {
		l := int(lens & 7)
		lens >>= 3
		if l == 0 {
			continue
		}
		used++
		last = l
		kraft += 128 >> l
		if kraft > 128 {
			return false
		}
	}
	if used == 0 {
		return false
	}
	if used == 1 {
		return last == 1
	}
	return kraft == 128
}

// quickStored checks a stored block header at bit b: the LEN/NLEN
// complement, payload bounds, and zero alignment padding. The RFC leaves
// the padding bits unspecified but every real encoder writes zeros, and
// requiring them cuts the false-positive rate by another ~2^4 — a missed
// nonzero-padding block merely costs the probe a candidate, never
// correctness.
func quickStored(data []byte, b int64) bool {
	off := (b + 3 + 7) >> 3
	if off+4 > int64(len(data)) {
		return false
	}
	if pad := uint(off*8 - (b + 3)); pad > 0 && bitsAt(data, b+3, pad) != 0 {
		return false
	}
	n := int(data[off]) | int(data[off+1])<<8
	inv := int(data[off+2]) | int(data[off+3])<<8
	return n == ^inv&0xffff && off+4+int64(n) <= int64(len(data))
}

// verifyCandidate deep-verifies a candidate block start: it follows the
// block chain from bit, fully parsing headers and trial-decoding symbols,
// and accepts once the evidence is strong enough that a false positive is
// vanishingly unlikely.
func verifyCandidate(data []byte, bit int64, t *tables) bool {
	syms, storedLinks := 0, 0
	weakOK := func() bool {
		return storedLinks >= 2 || (storedLinks >= 1 && syms >= 128)
	}
	for blocks := 0; blocks < trialBlocks && syms < trialSymbols; blocks++ {
		h, err := readBlockHeader(data, bit, t)
		if err != nil {
			return false
		}
		switch h.kind {
		case 0:
			if int(h.bit>>3)+h.storedLen > len(data) {
				return false
			}
			storedLinks++
			bit = h.bit + int64(h.storedLen)*8
		default:
			tt := t
			if h.kind == 1 {
				tt = fixed()
			}
			n, end, ok := skimHuff(data, h.bit, tt, trialSymbols-syms)
			if !ok {
				return false
			}
			syms += n
			if h.kind == 2 {
				// A fully-validated dynamic header plus a clean partial
				// decode is decisive.
				return true
			}
			if end < 0 { // trial budget exhausted inside a fixed block
				return storedLinks >= 1
			}
			bit = end
		}
		if h.final {
			// A chain ending at end-of-stream still needs the accumulated
			// evidence: a lone final stored block is only a 16-bit check,
			// far too weak over millions of scanned positions.
			return weakOK()
		}
		if weakOK() {
			return true
		}
	}
	return weakOK()
}

// skimHuff trial-decodes up to budget symbols at bit without producing
// output. It returns the symbols consumed and the bit offset just past the
// end-of-block symbol, or end = -1 if the budget ran out mid-block; ok is
// false on any invalid code, symbol, or overrun.
func skimHuff(data []byte, bit int64, t *tables, budget int) (n int, end int64, ok bool) {
	lit, dist := t.lit, t.dist
	litMask, distMask := t.litMask, t.distMask
	cur := bitio.NewCursor(data, bit)
	for ; n < budget; n++ {
		if cur.Buffered() < huffWorst {
			cur.Refill()
		}
		eL := lit[cur.Window(litMask)]
		l := uint(eL & 0xff)
		if l == 0 {
			return n, 0, false
		}
		cur.Skip(l)
		sym := eL >> 8
		if sym < endBlock {
			continue
		}
		if sym == endBlock {
			if cur.Overrun() {
				return n, 0, false
			}
			return n + 1, bit + cur.Consumed(), true
		}
		if sym >= maxLitLen {
			return n, 0, false
		}
		cur.Skip(uint(lengthExtra[sym-endBlock-1]))
		eD := dist[cur.Window(distMask)]
		dl := uint(eD & 0xff)
		if dl == 0 {
			return n, 0, false
		}
		cur.Skip(dl)
		if dsym := eD >> 8; dsym >= maxDist {
			return n, 0, false
		} else {
			cur.Skip(uint(distExtra[dsym]))
		}
		if cur.Overrun() {
			return n, 0, false
		}
	}
	return n, -1, !cur.Overrun()
}
