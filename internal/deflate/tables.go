package deflate

import (
	"sync"

	"gompresso/internal/bitio"
	"gompresso/internal/huffman"
)

// tables holds the decode tables of one DEFLATE block plus the scratch the
// dynamic-header parser needs. Tables are the packed single-lookup LUTs of
// internal/huffman (entry = sym<<8 | codeLen, built by huffman.FillTable),
// sized to the block's actual maximum code length so short-code blocks pay
// small fills. Instances are pooled: a worker reuses one tables value for
// every block of its chunk with zero steady-state allocations.
type tables struct {
	lit      []uint32
	dist     []uint32
	litMask  uint64
	distMask uint64

	// Dynamic-header scratch: litlen and dist code lengths back to back
	// (repeat codes may run across the boundary, per the RFC), the
	// code-length code's lengths, and its decode table.
	lens   [maxLitLen + maxDist]uint8
	clLens [19]uint8
	clTab  []uint32
	clMask uint64
}

var tablesPool = sync.Pool{New: func() any { return new(tables) }}

//lint:allow poolescape sanctioned lifecycle helper, paired with putTables
func getTables() *tables  { return tablesPool.Get().(*tables) }
func putTables(t *tables) { tablesPool.Put(t) }

// emptyTab is the decode table of an empty tree: every window is invalid.
// DEFLATE permits an empty distance tree (a block with no matches); using
// it is the error, not declaring it — the same rule as compress/flate.
var emptyTab = []uint32{0, 0}

// buildTab constructs a packed decode table for a canonical code described
// by its code-length array, mirroring compress/flate's validity rules
// exactly (the differential fuzz harness holds this equivalence): a code
// must be complete, or a single code of length 1, or empty.
func buildTab(store []uint32, lengths []uint8) (tab []uint32, mask uint64, err error) {
	used, max, one := 0, 0, -1
	for s, l := range lengths {
		if l > 0 {
			used++
			one = s
			if int(l) > max {
				max = int(l)
			}
		}
	}
	if used == 0 {
		return emptyTab, 1, nil
	}
	if used == 1 && lengths[one] != 1 {
		return nil, 0, huffman.ErrBadLengths
	}
	tab, err = huffman.FillTable(store, lengths, max, 0, func(sym int, codeLen uint8) uint32 {
		return uint32(sym)<<8 | uint32(codeLen)
	})
	if err != nil {
		return nil, 0, err
	}
	return tab, uint64(1)<<max - 1, nil
}

// readDynamic parses a dynamic block header (cur positioned after the
// 3 header bits) and fills t.lit/t.dist. bitBase is cur's absolute starting
// bit, used to pin error offsets. Reads past end-of-input surface as an
// ErrTruncated error via the cursor's deferred overrun accounting.
func (t *tables) readDynamic(data []byte, cur *bitio.Cursor, bitBase int64) error {
	fail := func(msg string) error {
		if cur.Overrun() {
			return truncatedAt(int64(len(data)), "dynamic block header past end of input")
		}
		return corruptAt((bitBase+cur.Consumed())>>3, msg)
	}
	cur.Refill()
	hlit := int(cur.Bits(5)) + 257
	hdist := int(cur.Bits(5)) + 1
	hclen := int(cur.Bits(4)) + 4
	if hlit > maxLitLen || hdist > maxDist {
		return fail("dynamic header symbol counts out of range")
	}
	t.clLens = [19]uint8{}
	for i := 0; i < hclen; i++ {
		if cur.Buffered() < 3 {
			cur.Refill()
		}
		t.clLens[codeOrder[i]] = uint8(cur.Bits(3))
	}
	if cur.Overrun() {
		return fail("")
	}
	var err error
	t.clTab, t.clMask, err = buildTab(t.clTab, t.clLens[:])
	if err != nil {
		return fail("invalid code-length code")
	}
	// Decode the hlit+hdist code lengths, with 16/17/18 repeats allowed to
	// run from the litlen section into the dist section.
	n := hlit + hdist
	lens := t.lens[:]
	prev := -1
	for i := 0; i < n; {
		if cur.Buffered() < 14 {
			cur.Refill()
		}
		e := t.clTab[cur.Window(t.clMask)]
		l := uint(e & 0xff)
		if l == 0 {
			return fail("invalid code-length symbol")
		}
		cur.Skip(l)
		sym := int(e >> 8)
		switch {
		case sym < 16:
			lens[i] = uint8(sym)
			prev = sym
			i++
		case sym == 16:
			if prev < 0 {
				return fail("length repeat with no previous length")
			}
			rep := int(cur.Bits(2)) + 3
			if i+rep > n {
				return fail("length repeat overflows code count")
			}
			for j := 0; j < rep; j++ {
				lens[i+j] = uint8(prev)
			}
			i += rep
		case sym == 17:
			rep := int(cur.Bits(3)) + 3
			if i+rep > n {
				return fail("zero repeat overflows code count")
			}
			for j := 0; j < rep; j++ {
				lens[i+j] = 0
			}
			i += rep
			prev = 0
		default: // 18
			rep := int(cur.Bits(7)) + 11
			if i+rep > n {
				return fail("zero repeat overflows code count")
			}
			for j := 0; j < rep; j++ {
				lens[i+j] = 0
			}
			i += rep
			prev = 0
		}
	}
	if cur.Overrun() {
		return fail("")
	}
	if t.lit, t.litMask, err = buildTab(t.lit, lens[:hlit]); err != nil {
		return fail("invalid literal/length code")
	}
	if t.dist, t.distMask, err = buildTab(t.dist, lens[hlit:n]); err != nil {
		return fail("invalid distance code")
	}
	return nil
}

var (
	fixedOnce sync.Once
	fixedTabs tables
)

func fixed() *tables {
	fixedOnce.Do(func() {
		var litLens [288]uint8
		for i := range litLens {
			switch {
			case i < 144:
				litLens[i] = 8
			case i < 256:
				litLens[i] = 9
			case i < 280:
				litLens[i] = 7
			default:
				litLens[i] = 8
			}
		}
		var distLens [32]uint8
		for i := range distLens {
			distLens[i] = 5
		}
		var err error
		if fixedTabs.lit, fixedTabs.litMask, err = buildTab(nil, litLens[:]); err != nil {
			panic(err)
		}
		if fixedTabs.dist, fixedTabs.distMask, err = buildTab(nil, distLens[:]); err != nil {
			panic(err)
		}
	})
	return &fixedTabs
}
