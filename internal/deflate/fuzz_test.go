package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"io"
	"testing"

	"gompresso/internal/datagen"
	"gompresso/internal/deflate/corpus"
)

// FuzzDeflateParity differentially fuzzes this decoder against
// compress/flate over raw deflate streams: for every input, either both
// decoders succeed with byte-identical output, or both fail. The parallel
// pipeline at a forced-small chunk size must additionally agree with the
// sequential path, so speculation bugs (bad splices, marker resolution,
// fallback handling) surface as parity failures rather than silent
// corruption.
func FuzzDeflateParity(f *testing.F) {
	// Valid streams of every block type, plus truncations and bit flips.
	for name, gz := range corpus.Files() {
		if len(gz) < 19 || gz[3] != 0 { // skip members with optional fields
			continue
		}
		payload := gz[10 : len(gz)-8]
		f.Add(payload)
		if len(payload) > 3 {
			f.Add(payload[:len(payload)/2])
			mut := append([]byte(nil), payload...)
			mut[len(mut)/3] ^= 0x10
			f.Add(mut)
		}
		_ = name
	}
	var df bytes.Buffer
	fw, _ := flate.NewWriter(&df, 6)
	fw.Write(datagen.WikiXML(8<<10, 77))
	fw.Close()
	f.Add(df.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00})       // empty fixed final block
	f.Add([]byte{0x01, 0x00, 0x00}) // truncated stored header

	f.Fuzz(func(t *testing.T, data []byte) {
		// Deflate expands up to ~1032×, so even small inputs produce
		// multi-megabyte outputs on both sides; the cap keeps exec
		// throughput high enough for the mutator to explore structure.
		if len(data) > 1<<13 {
			return
		}
		want, werr := io.ReadAll(flate.NewReader(bytes.NewReader(data)))

		got, gerr := Decompress(data, FormatRaw, Options{Workers: 1})
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error parity: stdlib=%v ours=%v", werr, gerr)
		}
		if werr == nil && !bytes.Equal(got, want) {
			t.Fatalf("output parity: stdlib %d bytes, ours %d bytes", len(want), len(got))
		}

		pgot, pgerr := Decompress(data, FormatRaw, Options{Workers: 4, ChunkSize: minChunkSize})
		if (gerr == nil) != (pgerr == nil) {
			t.Fatalf("parallel error parity: sequential=%v parallel=%v", gerr, pgerr)
		}
		if gerr == nil && !bytes.Equal(pgot, got) {
			t.Fatalf("parallel output parity: %d vs %d bytes", len(pgot), len(got))
		}
	})
}

// FuzzGzipParity is the same differential harness over full gzip framing
// (headers, checksums, multistream), against compress/gzip.
func FuzzGzipParity(f *testing.F) {
	for _, gz := range corpus.Files() {
		f.Add(gz)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<13 {
			return
		}
		var want []byte
		zr, werr := gzip.NewReader(bytes.NewReader(data))
		if werr == nil {
			want, werr = io.ReadAll(zr)
		}
		got, gerr := Decompress(data, FormatGzip, Options{Workers: 2, ChunkSize: minChunkSize})
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error parity: stdlib=%v ours=%v", werr, gerr)
		}
		if werr == nil && !bytes.Equal(got, want) {
			t.Fatalf("output parity: stdlib %d bytes, ours %d bytes", len(want), len(got))
		}
	})
}
