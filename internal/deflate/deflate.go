// Package deflate decodes foreign DEFLATE streams (RFC 1951) and their
// gzip (RFC 1952) and zlib (RFC 1950) framings — the formats carrying the
// overwhelming majority of compressed data in the wild. The paper's
// container is block-parallel by construction; DEFLATE is not, so this
// package recovers parallelism the way rapidgzip does (Knespel & Brunst,
// 2023): a scanner discovers candidate deflate block boundaries inside the
// compressed stream, workers decode the chunks between candidates
// speculatively — representing bytes they cannot know (back-references into
// the unseen 32 KiB window before the chunk) as 16-bit markers — and an
// in-order resolution stage patches the markers once the preceding output
// exists, verifying that each speculative chunk splices exactly onto the
// decoded stream and falling back to sequential decoding when it does not.
//
// The decoder reuses the repository's existing machinery: canonical Huffman
// tables are built with huffman.FillTable's packed entries, the hot symbol
// loop runs on bitio.Cursor, in-window match copies go through
// lz77.CopyWithin, and chunk scheduling uses parallel.Ordered on the shared
// worker pool.
package deflate

import (
	"errors"
	"fmt"
)

// Format selects the framing around the raw DEFLATE stream.
type Format uint8

const (
	// FormatGzip is RFC 1952: a member header, a deflate stream, and a
	// CRC-32 + size footer; multiple members may be concatenated.
	FormatGzip Format = iota
	// FormatZlib is RFC 1950: a two-byte header, a deflate stream, and an
	// Adler-32 footer.
	FormatZlib
	// FormatRaw is a bare RFC 1951 deflate stream with no framing.
	FormatRaw
)

func (f Format) String() string {
	switch f {
	case FormatGzip:
		return "gzip"
	case FormatZlib:
		return "zlib"
	case FormatRaw:
		return "deflate"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// Error kinds. Every decode failure is an *Error wrapping one of these, so
// callers can classify with errors.Is while still reading the exact input
// byte offset from the *Error.
var (
	// ErrCorrupt reports structurally invalid compressed data.
	ErrCorrupt = errors.New("deflate: corrupt stream")
	// ErrTruncated reports input that ends mid-stream.
	ErrTruncated = errors.New("deflate: truncated stream")
	// ErrChecksum reports a CRC-32, Adler-32, or size-field mismatch.
	ErrChecksum = errors.New("deflate: checksum mismatch")
	// ErrHeader reports an invalid gzip or zlib framing header.
	ErrHeader = errors.New("deflate: invalid header")
	// ErrDictionary reports a zlib stream requiring a preset dictionary,
	// which this package does not support.
	ErrDictionary = errors.New("deflate: preset dictionary not supported")
)

// Error is a decode failure pinned to a byte offset of the compressed
// input. Off is where the problem was detected: the byte holding the
// offending bits for corruption, the input length for truncation, and the
// footer position for checksum mismatches.
type Error struct {
	Off  int64
	Kind error
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%v at input byte %d: %s", e.Kind, e.Off, e.Msg)
}

// Unwrap lets errors.Is match the Kind sentinels.
func (e *Error) Unwrap() error { return e.Kind }

func corruptAt(off int64, msg string) error {
	return &Error{Off: off, Kind: ErrCorrupt, Msg: msg}
}

func truncatedAt(off int64, msg string) error {
	return &Error{Off: off, Kind: ErrTruncated, Msg: msg}
}

const (
	winSize  = 32768 // DEFLATE window: the maximum back-reference distance
	maxMatch = 258   // maximum match length
	endBlock = 256   // litlen symbol terminating a block
	// maxLitLen/maxDist are the valid symbol counts; the fixed trees define
	// codes beyond them (286-287, 30-31) whose appearance is an error.
	maxLitLen = 286
	maxDist   = 30
)

// Length codes 257-285 (index 0-28): base length and extra bits (RFC 1951
// §3.2.5). Code 284 + 31 extra also reaches 258; both encodings are valid.
var (
	lengthBase = [29]uint16{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lengthExtra = [29]uint8{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
	}
	distBase = [30]uint32{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
		8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint8{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
	}
	// codeOrder is the transmission order of the code-length code's
	// lengths in a dynamic block header (RFC 1951 §3.2.7).
	codeOrder = [19]uint8{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}
)
