package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"testing"

	"gompresso/internal/datagen"
	"gompresso/internal/deflate/corpus"
)

// buildIndex runs a full decode of data with checkpoint capture enabled
// and returns the resulting index alongside the decoded bytes.
func buildIndex(t *testing.T, data []byte, form Format, spacing int64, workers int) (*Index, []byte) {
	t.Helper()
	r, err := NewReaderBytes(nil, data, form, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewReaderBytes: %v", err)
	}
	defer r.Close()
	if err := r.CollectIndex(spacing); err != nil {
		t.Fatalf("CollectIndex: %v", err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	idx, err := r.Index()
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	return idx, buf.Bytes()
}

// TestIndexChunkParity builds an index over every conformance-corpus file
// (multimember, FHCRC, degenerate trees, stored, sync-flush, ...) at both
// worker counts, then decodes each checkpointed chunk in isolation and
// checks byte parity against the full sequential decode.
func TestIndexChunkParity(t *testing.T) {
	for name, data := range corpus.Files() {
		for _, workers := range []int{1, 4} {
			idx, want := buildIndex(t, data, FormatGzip, 2048, workers)
			if err := idx.Validate(int64(len(data))); err != nil {
				t.Fatalf("%s w%d: Validate: %v", name, workers, err)
			}
			if idx.RawSize != int64(len(want)) {
				t.Fatalf("%s w%d: RawSize %d, decoded %d", name, workers, idx.RawSize, len(want))
			}
			// Streams much longer than the spacing must actually split —
			// the threshold allows for encoders that emit huge blocks.
			if len(want) > 64<<10 && idx.NumChunks() < 2 {
				t.Fatalf("%s w%d: expected multiple chunks, got %d", name, workers, idx.NumChunks())
			}
			src := bytes.NewReader(data)
			for i := 0; i < idx.NumChunks(); i++ {
				dst := make([]byte, idx.ChunkLen(i))
				if err := idx.DecodeChunkInto(dst, src, i); err != nil {
					t.Fatalf("%s w%d: chunk %d: %v", name, workers, i, err)
				}
				lo := idx.ChunkStart(i)
				if !bytes.Equal(dst, want[lo:lo+int64(len(dst))]) {
					t.Fatalf("%s w%d: chunk %d bytes differ", name, workers, i)
				}
			}
		}
	}
}

// TestIndexChunkParityZlib covers the zlib framing path.
func TestIndexChunkParityZlib(t *testing.T) {
	raw := datagen.WikiXML(96<<10, 9)
	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	data := buf.Bytes()
	idx, want := buildIndex(t, data, FormatZlib, 8<<10, 1)
	if err := idx.Validate(int64(len(data))); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	src := bytes.NewReader(data)
	for i := 0; i < idx.NumChunks(); i++ {
		dst := make([]byte, idx.ChunkLen(i))
		if err := idx.DecodeChunkInto(dst, src, i); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		lo := idx.ChunkStart(i)
		if !bytes.Equal(dst, want[lo:lo+int64(len(dst))]) {
			t.Fatalf("chunk %d bytes differ", i)
		}
	}
}

// TestChunkOf pins the chunk lookup against the chunk span arithmetic.
func TestChunkOf(t *testing.T) {
	data := corpus.Files()["window.gz"]
	idx, _ := buildIndex(t, data, FormatGzip, 4096, 1)
	for off := int64(0); off < idx.RawSize; off += 777 {
		i := idx.ChunkOf(off)
		if lo, hi := idx.ChunkStart(i), idx.ChunkStart(i)+idx.ChunkLen(i); off < lo || off >= hi {
			t.Fatalf("ChunkOf(%d) = %d spanning [%d,%d)", off, i, lo, hi)
		}
	}
	if got := idx.ChunkOf(idx.RawSize - 1); got != idx.NumChunks()-1 {
		t.Fatalf("last byte in chunk %d, want %d", got, idx.NumChunks()-1)
	}
}

// TestCollectIndexAfterRead rejects enabling capture on a started Reader:
// checkpoints from a partial decode would silently describe a partial
// stream.
func TestCollectIndexAfterRead(t *testing.T) {
	data := corpus.Files()["window.gz"]
	r, err := NewReaderBytes(nil, data, FormatGzip, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Read(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.CollectIndex(0); err == nil {
		t.Fatal("CollectIndex succeeded after Read")
	}
}

// TestIndexIncomplete: Index before EOF must fail rather than return a
// truncated index.
func TestIndexIncomplete(t *testing.T) {
	data := corpus.Files()["window.gz"]
	r, err := NewReaderBytes(nil, data, FormatGzip, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CollectIndex(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Index(); err == nil {
		t.Fatal("Index succeeded mid-stream")
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Index(); err != nil {
		t.Fatalf("Index after EOF: %v", err)
	}
}

// TestIndexStaleSource: an index replayed against different bytes must
// fail decode (typed corruption), not return wrong data silently.
func TestIndexStaleSource(t *testing.T) {
	data := corpus.Files()["window.gz"]
	idx, _ := buildIndex(t, data, FormatGzip, 4096, 1)
	if idx.NumChunks() < 2 {
		t.Skip("corpus too small for multi-chunk index")
	}
	bad := append([]byte(nil), data...)
	// Flip bits inside the second chunk's compressed span.
	lo := idx.Checkpoints[1].Bit >> 3
	for i := lo + 1; i < lo+64 && i < int64(len(bad))-8; i++ {
		bad[i] ^= 0xa5
	}
	dst := make([]byte, idx.ChunkLen(1))
	if err := idx.DecodeChunkInto(dst, bytes.NewReader(bad), 1); err == nil {
		// A bit flip may decode to different bytes without a structural
		// error; parity is the real gate, checked elsewhere. But it must
		// never panic — reaching here alive is the assertion.
		t.Log("chunk decoded despite corruption (structurally valid stream)")
	}
}

// TestUseParallel pins the effective-parallelism gate: Workers>1 with a
// single-slot pool (GOMAXPROCS=1) must take the sequential engine — the
// BENCH_5 Gzip_Bit_W2 regression — while real parallelism still starts
// the scanner.
func TestUseParallel(t *testing.T) {
	opt := Options{Workers: 2}.normalize()
	long := opt.ChunkSize + minChunkSize
	cases := []struct {
		dataLen, pool int
		opt           Options
		want          bool
	}{
		{long, 1, opt, false},                             // 1-vCPU box: no speculation
		{long, 2, opt, true},                              // real parallelism
		{long, 2, Options{Workers: 1}.normalize(), false}, // sequential requested
		{minChunkSize, 2, opt, false},                     // input below chunk threshold
	}
	for i, c := range cases {
		if got := useParallel(c.dataLen, c.opt, c.pool); got != c.want {
			t.Errorf("case %d: useParallel(%d, workers=%d, pool=%d) = %v, want %v",
				i, c.dataLen, c.opt.Workers, c.pool, got, c.want)
		}
	}
}
