package deflate

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"runtime"
	"sync"

	"gompresso/internal/parallel"
)

// DefaultChunkSize is the compressed-byte granule of speculative parallel
// decoding. Bigger chunks amortize the scanner's probe cost; smaller ones
// expose more parallelism on short streams.
const DefaultChunkSize = 512 << 10

const (
	minChunkSize = 4 << 10
	segSize      = 256 << 10 // sequential-path output segment granularity
)

// Options tunes the decoder.
type Options struct {
	// Workers is the number of chunks decoded concurrently. 0 selects
	// GOMAXPROCS; 1 selects the purely sequential path.
	Workers int
	// Readahead bounds how many speculative chunk results may be buffered
	// ahead of the consumer. 0 selects 2×Workers.
	Readahead int
	// ChunkSize is the compressed bytes per speculative chunk (0 selects
	// DefaultChunkSize; the floor is 4 KiB).
	ChunkSize int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Readahead <= 0 {
		o.Readahead = 2 * o.Workers
	}
	if o.Readahead < o.Workers {
		o.Readahead = o.Workers
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.ChunkSize < minChunkSize {
		o.ChunkSize = minChunkSize
	}
	return o
}

// memberState is the framing-level position within the stream.
type memberState uint8

const (
	msHeader memberState = iota // at a member header (byte-aligned)
	msBlocks                    // inside a member's deflate stream
	msFooter                    // member's final block done; footer next
	msDone                      // stream fully decoded
)

// Reader streams the decompressed contents of an in-memory DEFLATE, gzip,
// or zlib stream. With Workers > 1 it runs the two-pass parallel pipeline:
// a scanner goroutine probes for block-boundary candidates and submits
// speculative chunk decodes to the shared worker pool through
// parallel.Ordered; the Reader's serving goroutine is the in-order
// resolution stage, splicing each verified chunk (patching its window
// markers against the live 32 KiB history) or decoding sequentially across
// mispredicted gaps, member boundaries, and error regions. Output bytes,
// checksums, and error offsets are identical at every worker count.
//
// A Reader is not safe for concurrent use.
type Reader struct {
	data []byte
	form Format
	opt  Options
	ctx  context.Context

	eng     engine
	ms      memberState
	bytePos int64 // next member's byte offset (ms == msHeader)
	members int

	win    [winSize]byte // last ≤32768 bytes of member output
	winLen int
	sum    uint32 // running CRC-32 (gzip) or Adler-32 (zlib)
	msize  uint32 // member output size mod 2^32

	sbuf   []byte // sequential decode buffer: window + segment + slack
	segbuf []byte // resolved speculative chunk output

	seg     []byte // current segment being served
	segOff  int
	err     error // sticky; io.EOF after the last byte
	pendErr error // error to surface after the current segment drains
	closed  bool

	par     *parRun
	collect *collector // seek-index capture; nil unless CollectIndex enabled
}

var errClosed = errors.New("deflate: reader closed")

// NewReaderBytes returns a Reader over an in-memory compressed stream.
// The framing header of the first member is parsed eagerly, so garbage
// input fails here rather than at the first Read.
func NewReaderBytes(ctx context.Context, data []byte, form Format, opt Options) (*Reader, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.normalize()
	r := &Reader{data: data, form: form, opt: opt, ctx: ctx, ms: msHeader}
	if err := r.beginMember(); err != nil {
		r.eng.release()
		return nil, err
	}
	if useParallel(len(data), opt, parallel.Workers(opt.Workers, opt.Workers)) {
		r.par = startScan(ctx, data, r.eng.bit, opt)
	}
	return r, nil
}

// useParallel reports whether the speculative two-pass pipeline is worth
// starting: the caller asked for more than one worker, the shared pool can
// actually run more than one share at once, and the input is long enough
// to split. On a GOMAXPROCS=1 box Workers>1 used to start the scanner
// anyway and pay scan+marker overhead with zero concurrency (BENCH_5
// Gzip_Bit_W2: 0.138 GB/s vs 0.213 sequential); now effective parallelism
// of 1 degrades to the sequential engine.
func useParallel(dataLen int, opt Options, poolWorkers int) bool {
	return opt.Workers > 1 && poolWorkers > 1 && dataLen >= opt.ChunkSize+minChunkSize
}

// NewReader reads all of src into memory and returns a Reader over it. The
// two-pass parallel decode needs random access to the compressed bytes, so
// streaming sources are buffered whole; bounded-memory foreign streaming is
// future work (see DESIGN.md).
func NewReader(ctx context.Context, src io.Reader, form Format, opt Options) (*Reader, error) {
	data, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	return NewReaderBytes(ctx, data, form, opt)
}

// Decompress expands a whole in-memory stream.
func Decompress(data []byte, form Format, opt Options) ([]byte, error) {
	r, err := NewReaderBytes(nil, data, form, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Members reports how many framing members have been started so far.
func (r *Reader) Members() int { return r.members }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for r.segOff == len(r.seg) {
		if r.err != nil {
			return 0, r.err
		}
		r.fill()
	}
	n := copy(p, r.seg[r.segOff:])
	r.segOff += n
	return n, nil
}

// WriteTo implements io.WriterTo, streaming whole decoded segments to w.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for {
		if r.segOff < len(r.seg) {
			n, err := w.Write(r.seg[r.segOff:])
			r.segOff += n
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if r.err != nil {
			if r.err == io.EOF {
				return total, nil
			}
			return total, r.err
		}
		r.fill()
	}
}

// Close stops the scanner, waits for in-flight chunk decodes, and returns
// pooled resources. It does not fail; closing mid-stream is the supported
// way to abandon a parallel decode without leaking goroutines.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.par != nil {
		r.par.shutdown()
		r.par = nil
	}
	r.eng.release()
	r.seg = nil
	if r.err == nil {
		r.err = errClosed
	}
	return nil
}

func (r *Reader) fill() {
	seg, err := r.nextSegment()
	r.seg, r.segOff = seg, 0
	if err != nil {
		r.err = err
		return
	}
	// Checkpoint capture: after a segment lands with the engine parked at
	// a block boundary mid-member, r.win holds exactly the history visible
	// at r.eng.bit — both the spliced-parallel and sequential paths leave
	// this invariant.
	if r.collect != nil && r.pendErr == nil && r.ms == msBlocks && r.eng.st == stBlock {
		r.collect.maybeAdd(r.eng.bit, r.win[:r.winLen])
	}
}

// nextSegment advances the framing state machine until it produces output
// bytes or a terminal condition.
func (r *Reader) nextSegment() ([]byte, error) {
	if r.pendErr != nil {
		return nil, r.pendErr
	}
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		switch r.ms {
		case msDone:
			return nil, io.EOF
		case msHeader:
			if err := r.beginMember(); err != nil {
				return nil, err
			}
		case msFooter:
			if err := r.checkFooter(); err != nil {
				return nil, err
			}
		default: // msBlocks
			seg, err := r.decodeSome()
			if err != nil || len(seg) > 0 {
				return seg, err
			}
		}
	}
}

// beginMember parses the framing header at r.bytePos and resets the
// per-member state (engine position, history window, checksum).
func (r *Reader) beginMember() error {
	var start int64
	var err error
	switch r.form {
	case FormatGzip:
		start, err = parseGzipHeader(r.data, r.bytePos)
	case FormatZlib:
		start, err = parseZlibHeader(r.data)
	default:
		start = r.bytePos
	}
	if err != nil {
		return err
	}
	r.eng.reset(r.data, start*8)
	r.ms = msBlocks
	r.winLen = 0
	r.msize = 0
	r.sum = 0
	if r.form == FormatZlib {
		r.sum = 1
	}
	r.members++
	if r.collect != nil {
		// Member starts are always checkpointed (windowless — no history
		// crosses a framing boundary), so a chunk never spans members.
		r.collect.add(Checkpoint{Bit: r.eng.bit, Out: r.collect.total})
	}
	return nil
}

// checkFooter verifies the member footer against the running checksum and
// output size, then advances to the next member (gzip multistream) or ends
// the stream.
func (r *Reader) checkFooter() error {
	off := (r.eng.bit + 7) >> 3
	n := int64(len(r.data))
	switch r.form {
	case FormatGzip:
		if off+8 > n {
			return truncatedAt(n, "gzip footer past end of input")
		}
		crc := binary.LittleEndian.Uint32(r.data[off:])
		isize := binary.LittleEndian.Uint32(r.data[off+4:])
		if crc != r.sum {
			return &Error{Off: off, Kind: ErrChecksum, Msg: "gzip CRC-32 mismatch"}
		}
		if isize != r.msize {
			return &Error{Off: off + 4, Kind: ErrChecksum, Msg: "gzip ISIZE mismatch"}
		}
		off += 8
		if off == n {
			r.ms = msDone
		} else {
			// Multistream, as compress/gzip: anything after a member must
			// be another member.
			r.ms = msHeader
			r.bytePos = off
		}
	case FormatZlib:
		if off+4 > n {
			return truncatedAt(n, "zlib footer past end of input")
		}
		adler := binary.BigEndian.Uint32(r.data[off:])
		if adler != r.sum {
			return &Error{Off: off, Kind: ErrChecksum, Msg: "zlib Adler-32 mismatch"}
		}
		r.ms = msDone // trailing bytes ignored, as compress/zlib
	default:
		r.ms = msDone // raw deflate: trailing bytes ignored, as compress/flate
	}
	return nil
}

// decodeSome produces the next run of output bytes within a member: a
// spliced speculative chunk when the next pending result starts exactly at
// the verified stream position, otherwise a sequentially decoded segment.
func (r *Reader) decodeSome() ([]byte, error) {
	if r.par != nil && r.eng.st == stBlock {
		for {
			c := r.par.peek()
			if c == nil || c.start > r.eng.bit {
				break
			}
			if c.start < r.eng.bit {
				r.par.drop() // stale: superseded by sequential progress
				continue
			}
			if c.err != nil {
				if !isDecodeErr(c.err) {
					return nil, c.err // context cancellation
				}
				// The chunk start is verified, so the failure is real —
				// but re-derive it sequentially for the authoritative
				// offset and the exact served prefix.
				r.par.drop()
				break
			}
			c = r.par.take()
			seg, ok := r.splice(c)
			putCells(c.cells)
			if ok {
				return seg, nil
			}
			break // marker out of range: the sequential engine will explain
		}
	}
	return r.decodeSeq()
}

// splice applies a verified speculative chunk: resolve its cells against
// the live window, advance the engine past the chunk, and account the
// output. ok is false when a marker reaches beyond the member's actual
// history (corrupt stream; caller re-decodes sequentially).
func (r *Reader) splice(c *chunkResult) ([]byte, bool) {
	n := len(c.cells)
	if cap(r.segbuf) < n {
		r.segbuf = make([]byte, n)
	}
	out := r.segbuf[:n]
	if !resolveCells(out, c.cells, r.win[:r.winLen]) {
		return nil, false
	}
	r.eng.bit = c.end
	if c.sawEOS {
		r.eng.st = stEOS
		r.ms = msFooter
	} else {
		r.eng.st = stBlock
	}
	r.account(out)
	return out, true
}

// decodeSeq decodes sequentially into the window-prefixed segment buffer
// until the segment fills, the member ends, an error occurs, or (in
// parallel mode) the stream position reaches the next pending chunk.
func (r *Reader) decodeSeq() ([]byte, error) {
	if r.sbuf == nil {
		r.sbuf = make([]byte, winSize+segSize+maxMatch+8)
	}
	hist := r.winLen
	copy(r.sbuf, r.win[:hist])
	start, pos := hist, hist
	limit := winSize + segSize
	for {
		npos, ev, err := r.eng.decodeInto(r.sbuf, pos, limit)
		pos = npos
		if err != nil {
			seg := r.emit(start, pos)
			if len(seg) > 0 {
				r.pendErr = err // serve the valid prefix first
				return seg, nil
			}
			return nil, err
		}
		if ev == evEOS {
			r.ms = msFooter
			break
		}
		if ev == evSpace {
			break
		}
		// evBoundary: stop here if the next speculative chunk can splice,
		// or if index capture owes a checkpoint — ending the segment lets
		// fill() snapshot the window at this boundary, giving checkpoints
		// at the requested spacing rather than segment (256 KiB)
		// granularity.
		if r.collect != nil && r.collect.due(pos-start) {
			break
		}
		if r.par != nil {
			if c := r.par.peek(); c != nil && c.start == r.eng.bit && c.err == nil {
				break
			}
		}
	}
	return r.emit(start, pos), nil
}

func (r *Reader) emit(start, pos int) []byte {
	seg := r.sbuf[start:pos]
	r.account(seg)
	return seg
}

// account folds freshly produced member output into the running checksum,
// size, and history window.
func (r *Reader) account(p []byte) {
	if len(p) == 0 {
		return
	}
	if r.collect != nil {
		r.collect.total += int64(len(p))
	}
	switch r.form {
	case FormatGzip:
		r.sum = crc32.Update(r.sum, crc32.IEEETable, p)
	case FormatZlib:
		r.sum = adlerUpdate(r.sum, p)
	}
	r.msize += uint32(len(p))
	if len(p) >= winSize {
		copy(r.win[:], p[len(p)-winSize:])
		r.winLen = winSize
		return
	}
	keep := r.winLen
	if keep+len(p) > winSize {
		keep = winSize - len(p)
		copy(r.win[:], r.win[r.winLen-keep:r.winLen])
	}
	copy(r.win[keep:], p)
	r.winLen = keep + len(p)
}

func isDecodeErr(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

// parRun is the parallel pipeline's lifecycle: one scanner goroutine
// probing candidates and submitting speculative chunk decodes, an ordered
// queue delivering results to the resolver, and a one-result lookahead the
// resolver uses to match chunk starts against the verified position.
type parRun struct {
	ord     *parallel.Ordered[chunkResult]
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	cur     *chunkResult
	drained bool
}

func startScan(ctx context.Context, data []byte, firstBit int64, opt Options) *parRun {
	p := &parRun{
		ord:  parallel.NewOrdered[chunkResult](opt.Workers, opt.Readahead),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.scan(ctx, data, firstBit, opt.ChunkSize)
	return p
}

// scan probes for block-start candidates at chunk granularity and submits
// the chunk between consecutive candidates for speculative decode. A
// barren span (no verifiable candidate — e.g. a run of fixed-Huffman
// blocks, which are never primary anchors) just grows the current chunk:
// the probe keeps advancing span by span so parallelism resumes at the
// next anchor-bearing region, and the total scan work stays O(input) for
// the whole stream. Only end of input ends the scanner, with a final
// chunk that decodes to the end of the stream.
func (p *parRun) scan(ctx context.Context, data []byte, firstBit int64, chunkBytes int) {
	defer close(p.done)
	defer p.ord.Finish()
	t := getTables()
	defer putTables(t)
	prev := firstBit
	for {
		cand := int64(-1)
		for from := int(prev>>3) + chunkBytes; cand < 0 && from < len(data); from += 4 * chunkBytes {
			select {
			case <-p.stop:
				return
			case <-ctx.Done():
				p.ord.Submit(func() chunkResult { return chunkResult{start: prev, err: ctx.Err()} })
				return
			default:
			}
			cand = findCandidate(data, from, 4*chunkBytes, t)
		}
		pv, cd := prev, cand
		if !p.ord.Submit(func() chunkResult { return decodeChunk(data, pv, cd) }) {
			return
		}
		if cand < 0 {
			return
		}
		prev = cand
	}
}

// peek returns the next undelivered chunk result, pulling from the ordered
// queue as needed; nil once the queue is drained.
func (p *parRun) peek() *chunkResult {
	if p.cur == nil && !p.drained {
		c, ok := p.ord.Next()
		if !ok {
			p.drained = true
			return nil
		}
		p.cur = &c
	}
	return p.cur
}

// drop discards the pending result and recycles its cells.
func (p *parRun) drop() {
	if p.cur != nil {
		putCells(p.cur.cells)
		p.cur = nil
	}
}

// take hands ownership of the pending result (cells included) to the
// caller.
func (p *parRun) take() *chunkResult {
	c := p.cur
	p.cur = nil
	return c
}

// shutdown stops the scanner, drains and recycles every outstanding
// result, and waits for in-flight chunk decodes. Idempotent.
func (p *parRun) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.ord.Stop()
	<-p.done
	p.drop()
	for !p.drained {
		c, ok := p.ord.Next()
		if !ok {
			p.drained = true
			break
		}
		putCells(c.cells)
	}
	p.ord.Wait()
}
