package deflate

import (
	"gompresso/internal/bitio"
	"gompresso/internal/lz77"
)

// blockHdr is one parsed DEFLATE block header.
type blockHdr struct {
	final     bool
	kind      uint8 // 0 stored, 1 fixed, 2 dynamic
	bit       int64 // first bit of the block's content (stored: byte-aligned)
	storedLen int
}

// readBlockHeader parses the block header at absolute bit offset `bit`,
// filling t's tables for dynamic blocks. Fixed blocks use the shared
// fixed() tables; stored blocks report their payload position and length.
func readBlockHeader(data []byte, bit int64, t *tables) (blockHdr, error) {
	var h blockHdr
	if bit+3 > int64(len(data))*8 {
		return h, truncatedAt(int64(len(data)), "block header past end of input")
	}
	cur := bitio.NewCursor(data, bit)
	cur.Refill()
	h.final = cur.Bits(1) == 1
	switch cur.Bits(2) {
	case 0:
		off := (bit + 3 + 7) >> 3 // LEN/NLEN at the next byte boundary
		if off+4 > int64(len(data)) {
			return h, truncatedAt(int64(len(data)), "stored block length past end of input")
		}
		n := int(data[off]) | int(data[off+1])<<8
		inv := int(data[off+2]) | int(data[off+3])<<8
		if n != ^inv&0xffff {
			return h, corruptAt(off, "stored block length check failed")
		}
		h.kind = 0
		h.storedLen = n
		h.bit = (off + 4) * 8
	case 1:
		h.kind = 1
		h.bit = bit + 3
	case 2:
		h.kind = 2
		cur = bitio.NewCursor(data, bit+3)
		if err := t.readDynamic(data, &cur, bit+3); err != nil {
			return h, err
		}
		h.bit = bit + 3 + cur.Consumed()
	default:
		h.kind = 3
		return h, corruptAt(bit>>3, "reserved block type")
	}
	return h, nil
}

// event reports why a decode step returned.
type event uint8

const (
	evSpace    event = iota // output space exhausted; more of this block remains
	evBoundary              // a non-final block ended
	evEOS                   // the final block ended; the deflate stream is done
)

// engine is the sequential DEFLATE block decoder: a resumable state machine
// over an in-memory compressed stream. It decodes into caller-provided
// buffers whose prefix is the member's live history window, so back-
// references resolve with lz77.CopyWithin directly. The engine knows
// nothing about gzip/zlib framing or checksums; the Reader drives it
// between member boundaries, and the parallel resolver uses it both for
// catch-up decoding between speculative chunks and as the authority that
// re-derives exact error offsets when a speculative chunk fails.
type engine struct {
	data   []byte
	bit    int64 // absolute bit position of the next unread bit
	st     state
	final  bool
	stored int  // remaining stored-block bytes (st == stStored)
	fixed  bool // current Huffman block uses the fixed tables
	tabs   *tables
}

type state uint8

const (
	stBlock state = iota // expecting a block header at e.bit
	stStored             // inside a stored block
	stHuff               // inside a Huffman-coded block
	stEOS                // final block complete
)

// reset points the engine at a deflate stream starting at bit within data.
func (e *engine) reset(data []byte, bit int64) {
	if e.tabs == nil {
		e.tabs = getTables()
	}
	e.data = data
	e.bit = bit
	e.st = stBlock
	e.final = false
	e.stored = 0
}

// release returns pooled resources. The engine may be reset and reused.
func (e *engine) release() {
	if e.tabs != nil {
		putTables(e.tabs)
		e.tabs = nil
	}
}

// decodeInto resumes decoding into dst[pos:], stopping when pos reaches
// limit, at every block boundary, at end of stream, or on error. dst[:pos]
// must hold the member's history (for back-references) and dst must extend
// at least maxMatch+8 bytes past limit: match copies run to completion and
// lz77.CopyWithin's wild path may scribble a further 7 bytes.
func (e *engine) decodeInto(dst []byte, pos, limit int) (int, event, error) {
	for {
		switch e.st {
		case stEOS:
			return pos, evEOS, nil
		case stBlock:
			h, err := readBlockHeader(e.data, e.bit, e.tabs)
			if err != nil {
				return pos, 0, err
			}
			e.final = h.final
			e.bit = h.bit
			switch h.kind {
			case 0:
				if int(h.bit>>3)+h.storedLen > len(e.data) {
					return pos, 0, truncatedAt(int64(len(e.data)), "stored block past end of input")
				}
				e.st = stStored
				e.stored = h.storedLen
			case 1:
				e.st = stHuff
				e.fixed = true
			default:
				e.st = stHuff
				e.fixed = false
			}
		case stStored:
			off := int(e.bit >> 3)
			n := e.stored
			if n > limit-pos {
				n = limit - pos
			}
			copy(dst[pos:pos+n], e.data[off:off+n])
			pos += n
			e.stored -= n
			e.bit += int64(n) * 8
			if e.stored > 0 {
				return pos, evSpace, nil
			}
			return pos, e.endBlock(), nil
		default: // stHuff
			return e.huffLoop(dst, pos, limit)
		}
	}
}

// endBlock advances past a completed block.
func (e *engine) endBlock() event {
	if e.final {
		e.st = stEOS
		return evEOS
	}
	e.st = stBlock
	return evBoundary
}

// huffWorst is the worst-case bits one litlen+extra+dist+extra group can
// consume: 15+5+15+13. A refill guaranteeing this many bits covers a whole
// iteration, so the fast loop needs no per-read bounds checks.
const huffWorst = 48

// huffLoop decodes Huffman-coded symbols into dst[pos:limit]. It is the
// host hot path: one packed-LUT lookup per symbol on a register-resident
// bitio.Cursor, match expansion via lz77.CopyWithin. Truncation is handled
// with the cursor's deferred overrun accounting: while ≥ huffWorst bits are
// buffered the iteration cannot overrun; once the refill comes up short
// (end of input near) the loop snapshots pos each iteration so an
// overrunning symbol's partial output is rolled back, never served.
func (e *engine) huffLoop(dst []byte, pos, limit int) (int, event, error) {
	t := e.tabs
	if e.fixed {
		t = fixed()
	}
	lit, dist := t.lit, t.dist
	litMask, distMask := t.litMask, t.distMask
	cur := bitio.NewCursor(e.data, e.bit)
	base := e.bit
	tail := false
	fail := func(msg string) (int, event, error) {
		if cur.Overrun() {
			return pos, 0, truncatedAt(int64(len(e.data)), "compressed data past end of input")
		}
		return pos, 0, corruptAt((base+cur.Consumed())>>3, msg)
	}
	for {
		if pos >= limit {
			e.bit = base + cur.Consumed()
			return pos, evSpace, nil
		}
		if cur.Buffered() < huffWorst {
			cur.Refill()
			if cur.Overrun() {
				return fail("")
			}
			tail = cur.Buffered() < huffWorst
		}
		posIter := pos
		eL := lit[cur.Window(litMask)]
		l := uint(eL & 0xff)
		if l == 0 {
			return fail("invalid literal/length code")
		}
		cur.Skip(l)
		sym := eL >> 8
		if sym < endBlock {
			dst[pos] = byte(sym)
			pos++
			if tail && cur.Overrun() {
				pos = posIter
				return fail("")
			}
			continue
		}
		if sym == endBlock {
			if tail && cur.Overrun() {
				return fail("")
			}
			e.bit = base + cur.Consumed()
			return pos, e.endBlock(), nil
		}
		if sym >= maxLitLen {
			return fail("invalid length symbol")
		}
		li := sym - endBlock - 1
		length := int(lengthBase[li]) + int(cur.Bits(uint(lengthExtra[li])))
		eD := dist[cur.Window(distMask)]
		dl := uint(eD & 0xff)
		if dl == 0 {
			return fail("invalid distance code")
		}
		cur.Skip(dl)
		dsym := eD >> 8
		if dsym >= maxDist {
			return fail("invalid distance symbol")
		}
		d := int(distBase[dsym]) + int(cur.Bits(uint(distExtra[dsym])))
		if tail && cur.Overrun() {
			pos = posIter
			return fail("")
		}
		if d > pos {
			return fail("distance beyond available history")
		}
		pos = lz77.CopyWithin(dst, pos, d, length)
	}
}
