package deflate

import (
	"sync"

	"gompresso/internal/bitio"
)

// Speculative chunk decoding. A worker decoding mid-stream cannot know the
// 32 KiB of output preceding its chunk, so it decodes into 16-bit cells:
// values < 256 are literal bytes; values with bit 15 set are markers naming
// a position in the unseen window (0x8000|i ↦ "the byte produced 32768-i
// positions before this chunk"). In-chunk match copies move cells, so
// markers propagate through nested back-references and remain exact; the
// in-order resolution stage later replaces each marker with one window
// lookup. This is rapidgzip's two-pass window-resolution scheme.
const markerBit = 0x8000

// cell output growth/size policy. A chunk's decompressed size is unknown in
// advance; buffers grow geometrically and a runaway chunk (a pathological
// ratio that would balloon speculative memory) aborts with errOversize so
// the resolver decodes that region sequentially in bounded memory instead.
const (
	cellSlack    = maxMatch + 8
	maxCellChunk = 8 << 20 // cells per chunk before giving up speculation
)

var errOversize = corruptAt(0, "speculative chunk output too large") // internal; never surfaces

var cellsPool sync.Pool

func getCells() []uint16 {
	if v := cellsPool.Get(); v != nil {
		return v.([]uint16)
	}
	return make([]uint16, 0, 1<<20)
}

func putCells(c []uint16) {
	if c != nil {
		cellsPool.Put(c[:0]) //lint:ignore SA6002 slice header allocation is amortized
	}
}

// chunkResult is one speculative chunk's outcome, delivered in submission
// order to the resolver. The chunk decoded the bit range [start, end) into
// cells; sawEOS reports that the member's final block completed inside the
// chunk. err records a speculative decode failure — the resolver never
// trusts it directly, it re-decodes sequentially to obtain the
// authoritative error (or to discover the chunk start was a misprediction
// and the "failure" was garbage).
type chunkResult struct {
	start  int64
	end    int64
	sawEOS bool
	cells  []uint16
	err    error
}

// decodeChunk speculatively decodes from absolute bit offset start until it
// reaches a block boundary at or past endTarget (endTarget < 0: until end
// of stream). It stops only at block boundaries, so the resolver can splice
// the next chunk or resume the sequential engine exactly at c.end.
func decodeChunk(data []byte, start, endTarget int64) chunkResult {
	t := getTables()
	defer putTables(t)
	cells := getCells()
	c := chunkResult{start: start}
	bit := start
	for {
		if endTarget >= 0 && bit >= endTarget {
			break
		}
		h, err := readBlockHeader(data, bit, t)
		if err != nil {
			c.err = err
			break
		}
		switch h.kind {
		case 0:
			off := int(h.bit >> 3)
			if off+h.storedLen > len(data) {
				c.err = truncatedAt(int64(len(data)), "stored block past end of input")
			} else {
				if cells, err = ensureCells(cells, h.storedLen); err != nil {
					c.err = err
				} else {
					for _, b := range data[off : off+h.storedLen] {
						cells = append(cells, uint16(b))
					}
					bit = h.bit + int64(h.storedLen)*8
				}
			}
		case 1, 2:
			cells, bit, err = cellHuffLoop(data, h.bit, t, h.kind == 1, cells)
			c.err = err
		}
		if c.err != nil {
			break
		}
		if h.final {
			c.sawEOS = true
			break
		}
	}
	c.end = bit
	if c.err != nil {
		putCells(cells)
		c.cells = nil
	} else {
		c.cells = cells
	}
	return c
}

// ensureCells guarantees room to append n more cells, enforcing the
// speculation size cap.
func ensureCells(cells []uint16, n int) ([]uint16, error) {
	need := len(cells) + n
	if need > maxCellChunk {
		return cells, errOversize
	}
	if need <= cap(cells) {
		return cells, nil
	}
	newCap := 2 * cap(cells)
	if newCap < need {
		newCap = need
	}
	if newCap > maxCellChunk+cellSlack {
		newCap = maxCellChunk + cellSlack
	}
	grown := make([]uint16, len(cells), newCap)
	copy(grown, cells)
	return grown, nil
}

// cellHuffLoop is huffLoop's speculative twin: same symbol decode on the
// same packed tables, but emitting cells and representing back-references
// into the unseen pre-chunk window as markers.
func cellHuffLoop(data []byte, bit int64, t *tables, useFixed bool, cells []uint16) ([]uint16, int64, error) {
	if useFixed {
		t = fixed()
	}
	lit, dist := t.lit, t.dist
	litMask, distMask := t.litMask, t.distMask
	cur := bitio.NewCursor(data, bit)
	base := bit
	tail := false
	pos := len(cells)
	fail := func(msg string) ([]uint16, int64, error) {
		if cur.Overrun() {
			return cells, 0, truncatedAt(int64(len(data)), "compressed data past end of input")
		}
		return cells, 0, corruptAt((base+cur.Consumed())>>3, msg)
	}
	for {
		if pos+cellSlack > cap(cells) {
			var err error
			if cells, err = ensureCells(cells[:pos], cellSlack); err != nil {
				return cells, 0, err
			}
		}
		cells = cells[:pos+cellSlack]
		if cur.Buffered() < huffWorst {
			cur.Refill()
			if cur.Overrun() {
				return fail("")
			}
			tail = cur.Buffered() < huffWorst
		}
		posIter := pos
		eL := lit[cur.Window(litMask)]
		l := uint(eL & 0xff)
		if l == 0 {
			return fail("invalid literal/length code")
		}
		cur.Skip(l)
		sym := eL >> 8
		if sym < endBlock {
			cells[pos] = uint16(sym)
			pos++
			if tail && cur.Overrun() {
				pos = posIter
				return fail("")
			}
			continue
		}
		if sym == endBlock {
			if tail && cur.Overrun() {
				return fail("")
			}
			return cells[:pos], base + cur.Consumed(), nil
		}
		if sym >= maxLitLen {
			return fail("invalid length symbol")
		}
		li := sym - endBlock - 1
		length := int(lengthBase[li]) + int(cur.Bits(uint(lengthExtra[li])))
		eD := dist[cur.Window(distMask)]
		dl := uint(eD & 0xff)
		if dl == 0 {
			return fail("invalid distance code")
		}
		cur.Skip(dl)
		dsym := eD >> 8
		if dsym >= maxDist {
			return fail("invalid distance symbol")
		}
		d := int(distBase[dsym]) + int(cur.Bits(uint(distExtra[dsym])))
		if tail && cur.Overrun() {
			pos = posIter
			return fail("")
		}
		// d ≤ 32768 by construction, so every source position is either an
		// in-chunk cell or a window marker; no distance can escape both.
		pos = copyCells(cells, pos, d, length)
	}
}

// copyCells expands the back-reference (d, length) at cell position pos,
// synthesizing markers for source positions before the chunk start and
// replicating cells (markers included) for overlapping copies.
func copyCells(cells []uint16, pos, d, length int) int {
	src := pos - d
	end := pos + length
	for src < 0 && pos < end {
		cells[pos] = markerBit | uint16(winSize+src)
		src++
		pos++
	}
	if pos >= end {
		return end
	}
	if rem := end - pos; d >= rem {
		copy(cells[pos:end], cells[src:src+rem])
		return end
	}
	if d == 1 {
		v := cells[src]
		for ; pos < end; pos++ {
			cells[pos] = v
		}
		return end
	}
	// Overlapping copy with widening stride, as lz77.CopyWithin.
	for pos < end {
		pos += copy(cells[pos:end], cells[src:pos])
	}
	return end
}

// resolveCells converts a speculative chunk's cells to bytes, patching
// window markers against win — the up-to-32768 bytes of member output
// preceding the chunk. ok is false when a marker reaches past the output
// that actually exists (the stream is corrupt, or the splice was wrong);
// the caller falls back to the sequential engine for the authoritative
// error offset.
func resolveCells(dst []byte, cells []uint16, win []byte) bool {
	short := winSize - len(win)
	for i, c := range cells {
		if c < 256 {
			dst[i] = byte(c)
			continue
		}
		w := int(c&^markerBit) - short
		if w < 0 {
			return false
		}
		dst[i] = win[w]
	}
	return true
}
