package deflate

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"
	"testing"

	"gompresso/internal/datagen"
)

// Benchmarks comparing this decoder against compress/gzip on the wiki
// bench corpus. The W1 path must beat the stdlib single-threaded; the
// parallel path pays speculative-decode overhead (16-bit cells, marker
// resolution, boundary probing) that only wins with ≥ 2 real cores, so its
// numbers on a single-CPU machine measure overhead, not speedup.

var (
	gzBenchOnce sync.Once
	gzBenchRaw  []byte
	gzBenchComp []byte
)

func gzBenchData() ([]byte, []byte) {
	gzBenchOnce.Do(func() {
		gzBenchRaw = datagen.WikiXML(8<<20, 1)
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		w.Write(gzBenchRaw)
		w.Close()
		gzBenchComp = buf.Bytes()
	})
	return gzBenchRaw, gzBenchComp
}

func BenchmarkGzipStdlib(b *testing.B) {
	raw, gz := gzBenchData()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gzip.NewReader(bytes.NewReader(gz))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOurs(b *testing.B, workers int) {
	raw, gz := gzBenchData()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReaderBytes(nil, gz, FormatGzip, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkGzipW1(b *testing.B) { benchOurs(b, 1) }
func BenchmarkGzipW4(b *testing.B) { benchOurs(b, 4) }
