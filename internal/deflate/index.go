package deflate

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Seek-index support: rapidgzip-style random access into foreign streams.
// A full decode (sequential or speculative-parallel) can record checkpoints
// — (compressed bit offset, decompressed offset, 32 KiB window) triples at
// block boundaries — and the resulting Index later re-seeds an engine at
// any checkpoint to decode just that chunk, no markers needed since the
// history is known. Member starts are always checkpointed, so a chunk
// never crosses a framing boundary and chunk decode never touches headers
// or footers.

// DefaultCheckpointSpacing is the decompressed-byte gap between
// checkpoints when the caller does not choose one. Each checkpoint costs
// up to 32 KiB of window in memory (compressed on disk), so 1 MiB spacing
// bounds index overhead near 3% of the decompressed size while keeping
// random access to ~1 MiB of decode work per chunk.
const DefaultCheckpointSpacing = 1 << 20

// Checkpoint pins one resumable position in a compressed stream.
type Checkpoint struct {
	// Bit is the absolute bit offset of a block header in the compressed
	// stream (for a member-start checkpoint: of the member's first block,
	// just past the framing header).
	Bit int64
	// Out is the decompressed stream offset this checkpoint resumes at,
	// cumulative across members.
	Out int64
	// Window is the tail (≤32768 bytes) of the current member's output
	// preceding Out — the history back-references may reach. Empty at
	// member starts.
	Window []byte
}

// Index is a seek index over one compressed stream: everything needed to
// decode an arbitrary decompressed range by chunk. Checkpoint Outs are
// strictly increasing and start at 0; the chunk i spans
// [Checkpoints[i].Out, Checkpoints[i+1].Out) (the last chunk ends at
// RawSize).
type Index struct {
	Form        Format
	SrcSize     int64 // compressed input size the index was built from
	RawSize     int64 // total decompressed size
	Members     int   // framing members in the stream
	Checkpoints []Checkpoint
}

// NumChunks reports how many checkpointed chunks the index carries.
func (x *Index) NumChunks() int { return len(x.Checkpoints) }

// ChunkStart returns the decompressed offset chunk i begins at.
func (x *Index) ChunkStart(i int) int64 { return x.Checkpoints[i].Out }

// ChunkLen returns the decompressed length of chunk i.
func (x *Index) ChunkLen(i int) int64 {
	if i+1 < len(x.Checkpoints) {
		return x.Checkpoints[i+1].Out - x.Checkpoints[i].Out
	}
	return x.RawSize - x.Checkpoints[i].Out
}

// ChunkOf returns the chunk containing decompressed offset off. The caller
// guarantees 0 <= off < RawSize.
func (x *Index) ChunkOf(off int64) int {
	i := sort.Search(len(x.Checkpoints), func(i int) bool { return x.Checkpoints[i].Out > off })
	return i - 1
}

// Validate checks the index's internal consistency against a compressed
// source of srcSize bytes: monotone checkpoints within bounds, windows no
// larger than the DEFLATE history, sizes coherent. It is the gate both for
// sidecars loaded from disk and for indexes handed to a ReaderAt.
func (x *Index) Validate(srcSize int64) error {
	switch x.Form {
	case FormatGzip, FormatZlib, FormatRaw:
	default:
		return fmt.Errorf("deflate: index: unknown format %d", x.Form)
	}
	if x.SrcSize != srcSize {
		return fmt.Errorf("deflate: index built for %d compressed bytes, source has %d", x.SrcSize, srcSize)
	}
	if x.RawSize < 0 || x.Members < 1 {
		return errors.New("deflate: index: bad sizes")
	}
	if len(x.Checkpoints) == 0 {
		if x.RawSize != 0 {
			return errors.New("deflate: index: no checkpoints for non-empty stream")
		}
		return nil
	}
	if x.Checkpoints[0].Out != 0 {
		return errors.New("deflate: index: first checkpoint not at offset 0")
	}
	prevOut, prevBit := int64(-1), int64(-1)
	for i := range x.Checkpoints {
		cp := &x.Checkpoints[i]
		if cp.Out <= prevOut || cp.Bit <= prevBit {
			return fmt.Errorf("deflate: index: checkpoint %d not monotone", i)
		}
		if cp.Bit < 0 || cp.Bit >= srcSize*8 {
			return fmt.Errorf("deflate: index: checkpoint %d bit offset out of range", i)
		}
		if len(cp.Window) > winSize {
			return fmt.Errorf("deflate: index: checkpoint %d window larger than %d", i, winSize)
		}
		prevOut, prevBit = cp.Out, cp.Bit
	}
	if x.RawSize <= x.Checkpoints[len(x.Checkpoints)-1].Out {
		return errors.New("deflate: index: raw size not past last checkpoint")
	}
	return nil
}

// Chunk decode scratch: the compressed span read from the source and the
// window-prefixed output buffer. Both vary in size with chunk spacing, so
// pool the backing arrays and grow on demand.
var (
	idxCompPool sync.Pool
	idxOutPool  sync.Pool
)

func getIdxBuf(pool *sync.Pool, n int) []byte {
	if v := pool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putIdxBuf(pool *sync.Pool, b []byte) {
	if cap(b) > 0 {
		pool.Put(b[:0]) //nolint:staticcheck // slice header allocation is fine here
	}
}

// DecodeChunkInto decodes chunk i from src (the compressed stream the
// index was built over) into dst, which must be exactly ChunkLen(i) bytes.
// It reads only the compressed span covering the chunk, seeds a fresh
// engine from the checkpoint's window and bit offset, and decodes until
// dst fills. Safe for concurrent use.
func (x *Index) DecodeChunkInto(dst []byte, src io.ReaderAt, i int) error {
	cp := &x.Checkpoints[i]
	if int64(len(dst)) != x.ChunkLen(i) {
		return fmt.Errorf("deflate: chunk %d is %d bytes, dst is %d", i, x.ChunkLen(i), len(dst))
	}
	// The span ends at the next checkpoint's (partial) byte — block
	// boundaries are monotone, so every bit chunk i consumes lies below
	// it — or at end of source for the final chunk.
	first := cp.Bit >> 3
	end := x.SrcSize
	if i+1 < len(x.Checkpoints) {
		end = (x.Checkpoints[i+1].Bit + 7) >> 3
	}
	comp := getIdxBuf(&idxCompPool, int(end-first))
	defer putIdxBuf(&idxCompPool, comp)
	if n, err := src.ReadAt(comp, first); err != nil && !(err == io.EOF && n == len(comp)) {
		return err
	}
	hist := len(cp.Window)
	limit := hist + len(dst)
	buf := getIdxBuf(&idxOutPool, limit+maxMatch+8)
	defer putIdxBuf(&idxOutPool, buf)
	copy(buf, cp.Window)
	var e engine
	e.reset(comp, cp.Bit-first*8)
	defer e.release()
	pos := hist
	for pos < limit {
		npos, ev, err := e.decodeInto(buf, pos, limit)
		pos = npos
		if err != nil {
			return reoffset(err, first)
		}
		if ev == evEOS && pos < limit {
			return corruptAt(first, "seek index disagrees with stream (member ended early)")
		}
	}
	copy(dst, buf[hist:limit])
	return nil
}

// reoffset shifts a decode Error's offset from span-relative to
// stream-absolute so chunk-decode failures report real positions.
func reoffset(err error, delta int64) error {
	var e *Error
	if errors.As(err, &e) {
		shifted := *e
		shifted.Off += delta
		return &shifted
	}
	return err
}

// collector accumulates checkpoints during a full decode.
type collector struct {
	every int64
	total int64 // decompressed bytes produced so far, across members
	cps   []Checkpoint
}

// add appends a checkpoint, replacing the previous one when it would make
// a zero-length chunk (empty member: two member starts at the same Out).
func (c *collector) add(cp Checkpoint) {
	if n := len(c.cps); n > 0 && c.cps[n-1].Out == cp.Out {
		c.cps[n-1] = cp
		return
	}
	c.cps = append(c.cps, cp)
}

// due reports whether a checkpoint will be owed once `pending` more
// output bytes are accounted.
func (c *collector) due(pending int) bool {
	return c.total+int64(pending)-c.cps[len(c.cps)-1].Out >= c.every
}

// maybeAdd records a block-boundary checkpoint once the spacing since the
// last checkpoint is reached, snapshotting the live window.
func (c *collector) maybeAdd(bit int64, win []byte) {
	if c.total-c.cps[len(c.cps)-1].Out < c.every {
		return
	}
	w := make([]byte, len(win))
	copy(w, win)
	c.add(Checkpoint{Bit: bit, Out: c.total, Window: w})
}

// CollectIndex arranges for this Reader to capture seek checkpoints every
// `every` decompressed bytes (0 selects DefaultCheckpointSpacing) as a
// side effect of a normal full decode — the first counting pass a server
// makes over a foreign object yields the index for free. It must be
// called before the first Read; Index returns the result after EOF.
func (r *Reader) CollectIndex(every int64) error {
	if r.collect != nil {
		return errors.New("deflate: index collection already enabled")
	}
	if every <= 0 {
		every = DefaultCheckpointSpacing
	}
	if r.closed || r.err != nil || r.members != 1 || r.winLen != 0 || len(r.seg) != 0 || r.ms != msBlocks {
		return errors.New("deflate: CollectIndex requires an unread Reader")
	}
	r.collect = &collector{every: every}
	// NewReaderBytes already parsed the first member's header; record its
	// member-start checkpoint retroactively.
	r.collect.add(Checkpoint{Bit: r.eng.bit, Out: 0})
	return nil
}

// Index returns the seek index captured by CollectIndex. It is only
// complete once the stream decoded to EOF; before that it returns an
// error.
func (r *Reader) Index() (*Index, error) {
	if r.collect == nil {
		return nil, errors.New("deflate: index collection not enabled")
	}
	if r.err != io.EOF || r.ms != msDone {
		return nil, errors.New("deflate: stream not fully decoded")
	}
	c := r.collect
	cps := c.cps
	// Trim trailing checkpoints at or past the end (empty final member,
	// empty final blocks): they would make zero-length chunks.
	for len(cps) > 0 && cps[len(cps)-1].Out >= c.total {
		cps = cps[:len(cps)-1]
	}
	return &Index{
		Form:        r.form,
		SrcSize:     int64(len(r.data)),
		RawSize:     c.total,
		Members:     r.members,
		Checkpoints: cps,
	}, nil
}
