package deflate

import "hash/crc32"

// gzip (RFC 1952) and zlib (RFC 1950) framing. Header parsing is strict
// where compress/gzip and compress/zlib are strict (magic, method, FHCRC,
// preset dictionaries) and lenient where they are lenient (reserved flag
// bits), since the conformance harness holds the behaviors equal.

const (
	flagHCRC    = 1 << 1
	flagExtra   = 1 << 2
	flagName    = 1 << 3
	flagComment = 1 << 4
)

func headerAt(off int64, msg string) error {
	return &Error{Off: off, Kind: ErrHeader, Msg: msg}
}

// parseGzipHeader parses the member header at byte offset off and returns
// the byte offset of the member's deflate stream.
func parseGzipHeader(data []byte, off int64) (int64, error) {
	n := int64(len(data))
	if off+10 > n {
		return 0, truncatedAt(n, "gzip header past end of input")
	}
	if data[off] != 0x1f || data[off+1] != 0x8b {
		return 0, headerAt(off, "bad gzip magic")
	}
	if data[off+2] != 8 {
		return 0, headerAt(off+2, "unknown gzip compression method")
	}
	flg := data[off+3]
	p := off + 10
	if flg&flagExtra != 0 {
		if p+2 > n {
			return 0, truncatedAt(n, "gzip FEXTRA past end of input")
		}
		xlen := int64(data[p]) | int64(data[p+1])<<8
		p += 2 + xlen
		if p > n {
			return 0, truncatedAt(n, "gzip FEXTRA past end of input")
		}
	}
	for _, f := range []byte{flagName, flagComment} {
		if flg&f == 0 {
			continue
		}
		for {
			if p >= n {
				return 0, truncatedAt(n, "gzip header string past end of input")
			}
			p++
			if data[p-1] == 0 {
				break
			}
		}
	}
	if flg&flagHCRC != 0 {
		if p+2 > n {
			return 0, truncatedAt(n, "gzip FHCRC past end of input")
		}
		want := uint32(data[p]) | uint32(data[p+1])<<8
		got := crc32.ChecksumIEEE(data[off:p]) & 0xffff
		if got != want {
			return 0, headerAt(p, "gzip header CRC mismatch")
		}
		p += 2
	}
	return p, nil
}

// parseZlibHeader parses the 2-byte zlib header at offset 0 and returns the
// deflate stream's byte offset.
func parseZlibHeader(data []byte) (int64, error) {
	if len(data) < 2 {
		return 0, truncatedAt(int64(len(data)), "zlib header past end of input")
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0f != 8 || cmf>>4 > 7 {
		return 0, headerAt(0, "unknown zlib compression method or window")
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return 0, headerAt(1, "zlib header check failed")
	}
	if flg&0x20 != 0 {
		return 0, &Error{Off: 1, Kind: ErrDictionary, Msg: "zlib FDICT set"}
	}
	return 2, nil
}

const adlerMod = 65521

// adlerUpdate extends a running Adler-32 (initial value 1) over p.
func adlerUpdate(s uint32, p []byte) uint32 {
	s1, s2 := s&0xffff, s>>16
	for len(p) > 0 {
		n := len(p)
		if n > 5552 { // the largest batch that cannot overflow uint32
			n = 5552
		}
		for _, b := range p[:n] {
			s1 += uint32(b)
			s2 += s1
		}
		s1 %= adlerMod
		s2 %= adlerMod
		p = p[n:]
	}
	return s2<<16 | s1
}
