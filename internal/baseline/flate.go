package baseline

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Flate wraps the standard library DEFLATE implementation. DEFLATE is the
// algorithm of zlib and gzip, so this codec is the reproduction's "zlib"
// comparator (the paper: "zlib implements the DEFLATE scheme for the CPU").
type Flate struct {
	level int
}

// NewFlate returns a DEFLATE codec at the given compression level
// (the paper's gzip figures use the default level, 6).
func NewFlate(level int) *Flate {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		level = flate.DefaultCompression
	}
	return &Flate{level: level}
}

// Name implements Codec.
func (*Flate) Name() string { return "zlib" }

// Compress implements Codec.
func (f *Flate) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, f.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements Codec.
func (f *Flate) Decompress(comp []byte, rawLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(comp))
	defer r.Close()
	dst := make([]byte, 0, rawLen)
	buf := bytes.NewBuffer(dst)
	if _, err := io.Copy(buf, r); err != nil {
		return nil, fmt.Errorf("baseline: flate: %w", err)
	}
	out := buf.Bytes()
	if rawLen >= 0 && len(out) != rawLen {
		return nil, fmt.Errorf("baseline: flate produced %d bytes, want %d", len(out), rawLen)
	}
	return out, nil
}
