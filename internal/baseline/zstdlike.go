package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gompresso/internal/ans"
	"gompresso/internal/lz77"
)

// ZstdLike pairs an LZ77 parse with a tANS entropy stage, mirroring Zstd's
// architecture (entropy-coded literals over an LZ layer). The paper includes
// Zstd as "a different coding algorithm on top of LZ-compression that is
// typically faster than Huffman decoding" (§V-D).
//
// Layout: varint rawLen | varint numSeqs | varint headerLen | sequence
// headers (LZ4-style tokens without inline literals) | tANS-coded literal
// stream.
type ZstdLike struct {
	window int
}

// NewZstdLike returns the codec with a 64 KB window (offsets must fit the
// 2-byte field, so the window is one short of 64 Ki).
func NewZstdLike() *ZstdLike { return &ZstdLike{window: 1<<16 - 1} }

// Name implements Codec.
func (*ZstdLike) Name() string { return "Zstd" }

var errZstdCorrupt = errors.New("baseline: corrupt zstd-like block")

// Compress implements Codec.
func (z *ZstdLike) Compress(src []byte) ([]byte, error) {
	ts, err := lz77.Parse(src, lz77.Options{
		Window:   z.window,
		MaxMatch: 1 << 16,
	})
	if err != nil {
		return nil, err
	}
	// Sequence headers: token byte (litLen nibble / matchLen nibble with
	// 255-run extensions) + 2-byte offset, literals separated out.
	var headers []byte
	for _, s := range ts.Seqs {
		litN, matchN := s.LitLen, s.MatchLen
		ln, mn := litN, matchN
		if ln > 14 {
			ln = 15
		}
		if mn > 14 {
			mn = 15
		}
		headers = append(headers, byte(ln)|byte(mn)<<4)
		if ln == 15 {
			headers = appendExt255(headers, litN-15)
		}
		if mn == 15 {
			headers = appendExt255(headers, matchN-15)
		}
		if matchN > 0 {
			headers = binary.LittleEndian.AppendUint16(headers, uint16(s.Offset))
		}
	}
	lits := ans.Encode(ts.Literals)
	out := binary.AppendUvarint(nil, uint64(len(src)))
	out = binary.AppendUvarint(out, uint64(len(ts.Seqs)))
	out = binary.AppendUvarint(out, uint64(len(headers)))
	out = append(out, headers...)
	out = append(out, lits...)
	return out, nil
}

func appendExt255(dst []byte, v uint32) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress implements Codec.
func (z *ZstdLike) Decompress(comp []byte, rawLen int) ([]byte, error) {
	rl, k := binary.Uvarint(comp)
	if k <= 0 {
		return nil, fmt.Errorf("%w: raw length", errZstdCorrupt)
	}
	comp = comp[k:]
	if rawLen >= 0 && rl != uint64(rawLen) {
		return nil, fmt.Errorf("%w: declares %d, want %d", errZstdCorrupt, rl, rawLen)
	}
	numSeqs, k := binary.Uvarint(comp)
	if k <= 0 || numSeqs > rl+1 {
		return nil, fmt.Errorf("%w: sequence count", errZstdCorrupt)
	}
	comp = comp[k:]
	headerLen, k := binary.Uvarint(comp)
	if k <= 0 || headerLen > uint64(len(comp)-k) {
		return nil, fmt.Errorf("%w: header length", errZstdCorrupt)
	}
	comp = comp[k:]
	headers := comp[:headerLen]
	lits, err := ans.Decode(comp[headerLen:])
	if err != nil {
		return nil, err
	}

	dst := make([]byte, 0, rl)
	hi := 0
	for s := uint64(0); s < numSeqs; s++ {
		if hi >= len(headers) {
			return nil, fmt.Errorf("%w: header overrun", errZstdCorrupt)
		}
		tok := headers[hi]
		hi++
		litLen := int(tok & 15)
		matchLen := int(tok >> 4)
		if litLen == 15 {
			litLen, hi, err = readExt255(headers, hi, 15)
			if err != nil {
				return nil, err
			}
		}
		if matchLen == 15 {
			matchLen, hi, err = readExt255(headers, hi, 15)
			if err != nil {
				return nil, err
			}
		}
		if litLen > len(lits) {
			return nil, fmt.Errorf("%w: literal overrun", errZstdCorrupt)
		}
		dst = append(dst, lits[:litLen]...)
		lits = lits[litLen:]
		if matchLen == 0 {
			continue
		}
		if hi+2 > len(headers) {
			return nil, fmt.Errorf("%w: truncated offset", errZstdCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(headers[hi:]))
		hi += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: offset %d", errZstdCorrupt, offset)
		}
		start := len(dst) - offset
		for j := 0; j < matchLen; j++ {
			dst = append(dst, dst[start+j])
		}
	}
	if hi != len(headers) || len(lits) != 0 {
		return nil, fmt.Errorf("%w: trailing data", errZstdCorrupt)
	}
	if uint64(len(dst)) != rl {
		return nil, fmt.Errorf("%w: produced %d, declared %d", errZstdCorrupt, len(dst), rl)
	}
	return dst, nil
}

func readExt255(b []byte, i, base int) (int, int, error) {
	v := base
	for {
		if i >= len(b) {
			return 0, 0, fmt.Errorf("%w: truncated extension", errZstdCorrupt)
		}
		x := b[i]
		i++
		v += int(x)
		if x != 255 {
			return v, i, nil
		}
	}
}
