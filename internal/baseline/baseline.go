// Package baseline implements the CPU compression libraries Gompresso is
// compared against in paper §V-D, parallelized exactly as the paper did:
// "we parallelized the single-threaded implementations of the CPU-based
// state-of-the-art compression libraries by splitting the input data into
// equally-sized blocks that are then processed by the different cores in
// parallel ... once a thread has completed decompressing a data block, it
// immediately processes the next block from a common queue."
//
// Codecs:
//
//   - Flate: stdlib compress/flate — DEFLATE, the algorithm of zlib/gzip;
//   - LZ4: the LZ4 block format, implemented from scratch;
//   - Snappy: the Snappy block format, implemented from scratch;
//   - ZstdLike: LZ77 with tANS-coded literals — standing in for Zstd's
//     "different coding algorithm on top of LZ-compression" (§V-D).
package baseline

import "fmt"

// Codec is a single-threaded block codec.
type Codec interface {
	Name() string
	// Compress returns the compressed form of src.
	Compress(src []byte) ([]byte, error)
	// Decompress expands comp; rawLen is the expected output size.
	Decompress(comp []byte, rawLen int) ([]byte, error)
}

// All returns one instance of every baseline codec, in the order the paper
// lists them.
func All() []Codec {
	return []Codec{NewSnappy(), NewLZ4(), NewZstdLike(), NewFlate(6)}
}

// ByName returns the codec with the given Name.
func ByName(name string) (Codec, error) {
	for _, c := range All() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("baseline: unknown codec %q", name)
}
