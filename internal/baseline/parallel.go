package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// The paper's CPU parallelization (§V-D): split into equally-sized blocks
// (2 MB gave the best decompression speed), compress/decompress blocks on a
// pool of workers pulling from a common queue so load stays balanced despite
// input-dependent block times.

// DefaultParallelBlockSize is the paper's choice: "we chose a block size of
// 2 MB, as this size resulted in the highest decompression speeds for the
// parallelized libraries."
const DefaultParallelBlockSize = 2 << 20

var errParallel = errors.New("baseline: corrupt parallel container")

var parMagic = [4]byte{'B', 'P', 'A', 'R'}

// CompressParallel compresses src with the codec over independent blocks.
func CompressParallel(c Codec, src []byte, blockSize, workers int) ([]byte, error) {
	if blockSize <= 0 {
		blockSize = DefaultParallelBlockSize
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nb := (len(src) + blockSize - 1) / blockSize
	parts := make([][]byte, nb)
	errs := make([]error, nb)
	queue := make(chan int, nb)
	for i := 0; i < nb; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				lo := i * blockSize
				hi := lo + blockSize
				if hi > len(src) {
					hi = len(src)
				}
				parts[i], errs[i] = c.Compress(src[lo:hi])
			}
		}()
	}
	wg.Wait()

	out := append([]byte{}, parMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(nb))
	out = binary.LittleEndian.AppendUint32(out, uint32(blockSize))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(src)))
	for i := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("baseline: block %d: %w", i, errs[i])
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(parts[i])))
		out = append(out, parts[i]...)
	}
	return out, nil
}

// DecompressParallel reverses CompressParallel with a worker pool fed from a
// common queue (the paper's load-balancing scheme).
func DecompressParallel(c Codec, data []byte, workers int) ([]byte, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(data) < 20 || [4]byte(data[:4]) != parMagic {
		return nil, fmt.Errorf("%w: bad header", errParallel)
	}
	nb := int(binary.LittleEndian.Uint32(data[4:]))
	blockSize := int(binary.LittleEndian.Uint32(data[8:]))
	rawSize := binary.LittleEndian.Uint64(data[12:])
	if nb < 0 || blockSize <= 0 || nb > 1<<26 {
		return nil, fmt.Errorf("%w: implausible geometry", errParallel)
	}
	rest := data[20:]
	type blk struct {
		payload []byte
		rawLen  int
	}
	blocks := make([]blk, nb)
	remaining := rawSize
	for i := 0; i < nb; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated block %d", errParallel, i)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest) {
			return nil, fmt.Errorf("%w: block %d payload", errParallel, i)
		}
		rawLen := blockSize
		if uint64(rawLen) > remaining {
			rawLen = int(remaining)
		}
		remaining -= uint64(rawLen)
		blocks[i] = blk{payload: rest[:n], rawLen: rawLen}
		rest = rest[n:]
	}
	if len(rest) != 0 || remaining != 0 {
		return nil, fmt.Errorf("%w: trailing bytes or size mismatch", errParallel)
	}

	out := make([]byte, rawSize)
	errs := make([]error, nb)
	queue := make(chan int, nb)
	for i := 0; i < nb; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				got, err := c.Decompress(blocks[i].payload, blocks[i].rawLen)
				if err != nil {
					errs[i] = err
					continue
				}
				copy(out[i*blockSize:], got)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("baseline: block %d: %w", i, err)
		}
	}
	return out, nil
}
