package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snappy implements the Snappy block format: a varint uncompressed length
// followed by elements tagged in their low two bits —
//
//	00 literal (length-1 in the upper 6 bits; 60..63 select 1..4 extra
//	   little-endian length bytes)
//	01 copy with 1-byte offset extension (length 4..11, 11-bit offset)
//	10 copy with 2-byte offset (length 1..64)
//	11 copy with 4-byte offset (length 1..64)
//
// The compressor mirrors the reference: single-entry hash table, greedy,
// emitting tag-10 copies in ≤ 64-byte pieces.
type Snappy struct{}

// NewSnappy returns the Snappy codec.
func NewSnappy() *Snappy { return &Snappy{} }

// Name implements Codec.
func (*Snappy) Name() string { return "Snappy" }

var errSnappyCorrupt = errors.New("baseline: corrupt snappy block")

const snappyHashBits = 14

func snappyHash(v uint32) uint32 { return (v * 2654435761) >> (32 - snappyHashBits) }

// Compress implements Codec.
func (*Snappy) Compress(src []byte) ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(len(src)))
	var table [1 << snappyHashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart, pos := 0, 0
	for pos+4 <= len(src) {
		h := snappyHash(le32(src, pos))
		cand := table[h]
		table[h] = int32(pos)
		c := int(cand)
		if cand < 0 || pos-c > 1<<16-1 || le32(src, c) != le32(src, pos) {
			pos++
			continue
		}
		offset := pos - c
		mlen := 4
		for pos+mlen < len(src) && src[c+mlen] == src[pos+mlen] {
			mlen++
		}
		dst = appendSnappyLiteral(dst, src[litStart:pos])
		// Tag-10 copies carry 1..64 bytes each; same-offset pieces continue
		// the source run because offsets are relative to the output end.
		for rem := mlen; rem > 0; {
			piece := rem
			if piece > 64 {
				piece = 64
			}
			dst = append(dst, byte((piece-1)<<2|2))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(offset))
			rem -= piece
		}
		pos += mlen
		litStart = pos
	}
	dst = appendSnappyLiteral(dst, src[litStart:])
	return dst, nil
}

func appendSnappyLiteral(dst, lits []byte) []byte {
	n := len(lits)
	if n == 0 {
		return dst
	}
	switch {
	case n <= 60:
		dst = append(dst, byte(n-1)<<2)
	case n <= 1<<8:
		dst = append(dst, 60<<2, byte(n-1))
	case n <= 1<<16:
		dst = append(dst, 61<<2, byte(n-1), byte((n-1)>>8))
	case n <= 1<<24:
		dst = append(dst, 62<<2, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
	default:
		dst = append(dst, 63<<2, byte(n-1), byte((n-1)>>8), byte((n-1)>>16), byte((n-1)>>24))
	}
	return append(dst, lits...)
}

// Decompress implements Codec.
func (*Snappy) Decompress(comp []byte, rawLen int) ([]byte, error) {
	declared, k := binary.Uvarint(comp)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad length varint", errSnappyCorrupt)
	}
	if rawLen >= 0 && declared != uint64(rawLen) {
		return nil, fmt.Errorf("%w: declares %d bytes, want %d", errSnappyCorrupt, declared, rawLen)
	}
	i := k
	dst := make([]byte, 0, declared)
	for i < len(comp) {
		tag := comp[i]
		i++
		switch tag & 3 {
		case 0: // literal
			n := int(tag>>2) + 1
			if n > 60 {
				extra := n - 60
				if i+extra > len(comp) {
					return nil, fmt.Errorf("%w: literal length overrun", errSnappyCorrupt)
				}
				n = 0
				for b := extra - 1; b >= 0; b-- {
					n = n<<8 | int(comp[i+b])
				}
				n++
				i += extra
			}
			if i+n > len(comp) {
				return nil, fmt.Errorf("%w: literal overrun", errSnappyCorrupt)
			}
			dst = append(dst, comp[i:i+n]...)
			i += n
		case 1: // copy, 1-byte offset extension
			if i >= len(comp) {
				return nil, fmt.Errorf("%w: truncated copy1", errSnappyCorrupt)
			}
			n := int(tag>>2)&7 + 4
			offset := int(tag>>5)<<8 | int(comp[i])
			i++
			if err := snappyCopy(&dst, offset, n); err != nil {
				return nil, err
			}
		case 2: // copy, 2-byte offset
			if i+2 > len(comp) {
				return nil, fmt.Errorf("%w: truncated copy2", errSnappyCorrupt)
			}
			n := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint16(comp[i:]))
			i += 2
			if err := snappyCopy(&dst, offset, n); err != nil {
				return nil, err
			}
		default: // copy, 4-byte offset
			if i+4 > len(comp) {
				return nil, fmt.Errorf("%w: truncated copy4", errSnappyCorrupt)
			}
			n := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(comp[i:]))
			i += 4
			if err := snappyCopy(&dst, offset, n); err != nil {
				return nil, err
			}
		}
	}
	if uint64(len(dst)) != declared {
		return nil, fmt.Errorf("%w: produced %d bytes, declared %d", errSnappyCorrupt, len(dst), declared)
	}
	return dst, nil
}

func snappyCopy(dst *[]byte, offset, n int) error {
	d := *dst
	if offset <= 0 || offset > len(d) {
		return fmt.Errorf("%w: offset %d at output %d", errSnappyCorrupt, offset, len(d))
	}
	start := len(d) - offset
	for j := 0; j < n; j++ {
		d = append(d, d[start+j])
	}
	*dst = d
	return nil
}
