package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LZ4 implements the LZ4 block format (the codec the paper modified to
// implement Dependency Elimination, §IV-B): sequences of
//
//	token (litLen high nibble, matchLen-4 low nibble, 15 ⇒ 255-run extension)
//	[litLen extension] literals [2-byte LE offset] [matchLen extension]
//
// ending with a literals-only sequence. The compressor is the classic
// single-entry hash-table greedy matcher.
type LZ4 struct{}

// NewLZ4 returns the LZ4 codec.
func NewLZ4() *LZ4 { return &LZ4{} }

// Name implements Codec.
func (*LZ4) Name() string { return "LZ4" }

const (
	lz4MinMatch  = 4
	lz4HashBits  = 14
	lz4MaxOffset = 1<<16 - 1
	// The reference implementation requires the last match to end at least
	// 12 bytes before the block end; the tail is emitted as literals.
	lz4TailLiterals = 12
)

var errLZ4Corrupt = errors.New("baseline: corrupt LZ4 block")

func lz4Hash(v uint32) uint32 { return (v * 2654435761) >> (32 - lz4HashBits) }

func le32(src []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(src[i:])
}

// Compress implements Codec.
func (*LZ4) Compress(src []byte) ([]byte, error) {
	dst := make([]byte, 0, len(src)+len(src)/255+16)
	var table [1 << lz4HashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	pos := 0
	limit := len(src) - lz4TailLiterals
	for pos < limit {
		h := lz4Hash(le32(src, pos))
		cand := table[h]
		table[h] = int32(pos)
		if cand < 0 || pos-int(cand) > lz4MaxOffset || le32(src, int(cand)) != le32(src, pos) {
			pos++
			continue
		}
		// Extend the match, but leave the tail as literals.
		c := int(cand)
		mlen := 4
		for pos+mlen < limit && src[c+mlen] == src[pos+mlen] {
			mlen++
		}
		dst = appendLZ4Seq(dst, src[litStart:pos], pos-c, mlen)
		pos += mlen
		litStart = pos
	}
	// Final literals-only sequence.
	lits := src[litStart:]
	litLen := len(lits)
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = appendLZ4Ext(dst, litLen-15)
	}
	dst = append(dst, lits...)
	return dst, nil
}

func appendLZ4Seq(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	ml := mlen - lz4MinMatch
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	if ml >= 15 {
		tok |= 15
	} else {
		tok |= byte(ml)
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = appendLZ4Ext(dst, litLen-15)
	}
	dst = append(dst, lits...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(offset))
	if ml >= 15 {
		dst = appendLZ4Ext(dst, ml-15)
	}
	return dst
}

func appendLZ4Ext(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress implements Codec. This is the hot path the paper benchmarks;
// it is written as the standard branchy byte-pushing LZ4 decoder.
func (*LZ4) Decompress(comp []byte, rawLen int) ([]byte, error) {
	dst := make([]byte, 0, rawLen)
	i := 0
	for i < len(comp) {
		tok := comp[i]
		i++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = readLZ4Ext(comp, i, 15)
			if err != nil {
				return nil, err
			}
		}
		if i+litLen > len(comp) {
			return nil, fmt.Errorf("%w: literals overrun", errLZ4Corrupt)
		}
		dst = append(dst, comp[i:i+litLen]...)
		i += litLen
		if i == len(comp) {
			break // final literals-only sequence
		}
		if i+2 > len(comp) {
			return nil, fmt.Errorf("%w: truncated offset", errLZ4Corrupt)
		}
		offset := int(binary.LittleEndian.Uint16(comp[i:]))
		i += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: offset %d at output %d", errLZ4Corrupt, offset, len(dst))
		}
		mlen := int(tok & 15)
		if mlen == 15 {
			var err error
			mlen, i, err = readLZ4Ext(comp, i, 15)
			if err != nil {
				return nil, err
			}
		}
		mlen += lz4MinMatch
		start := len(dst) - offset
		for j := 0; j < mlen; j++ {
			dst = append(dst, dst[start+j])
		}
	}
	if rawLen >= 0 && len(dst) != rawLen {
		return nil, fmt.Errorf("%w: produced %d bytes, want %d", errLZ4Corrupt, len(dst), rawLen)
	}
	return dst, nil
}

func readLZ4Ext(comp []byte, i, base int) (int, int, error) {
	v := base
	for {
		if i >= len(comp) {
			return 0, 0, fmt.Errorf("%w: truncated extension", errLZ4Corrupt)
		}
		b := comp[i]
		i++
		v += int(b)
		if b != 255 {
			return v, i, nil
		}
	}
}
