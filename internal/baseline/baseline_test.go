package baseline

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gompresso/internal/datagen"
)

func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(21))
	random := make([]byte, 100000)
	rng.Read(random)
	return map[string][]byte{
		"empty":  {},
		"one":    {42},
		"short":  []byte("hello hello hello"),
		"text":   []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 2000)),
		"runs":   bytes.Repeat([]byte{0}, 90000),
		"random": random,
		"wiki":   datagen.WikiXML(200000, 4),
		"matrix": datagen.MatrixMarket(200000, 4),
	}
}

func TestCodecRoundtrips(t *testing.T) {
	for _, c := range All() {
		for name, src := range testInputs() {
			comp, err := c.Compress(src)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", c.Name(), name, err)
			}
			got, err := c.Decompress(comp, len(src))
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s/%s: roundtrip mismatch", c.Name(), name)
			}
		}
	}
}

func TestCodecsCompress(t *testing.T) {
	src := datagen.WikiXML(1<<20, 9)
	ratios := map[string]float64{}
	for _, c := range All() {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		ratios[c.Name()] = float64(len(src)) / float64(len(comp))
	}
	// DEFLATE must beat the byte-aligned codecs on ratio; all must compress.
	for name, r := range ratios {
		if r < 1.2 {
			t.Errorf("%s ratio %.2f — should compress text", name, r)
		}
	}
	if ratios["zlib"] <= ratios["LZ4"] || ratios["zlib"] <= ratios["Snappy"] {
		t.Errorf("ratio ordering: %v", ratios)
	}
	if ratios["Zstd"] <= ratios["LZ4"] {
		t.Errorf("Zstd-like (%v) should out-compress LZ4 (%v)", ratios["Zstd"], ratios["LZ4"])
	}
}

func TestCodecsRejectCorruption(t *testing.T) {
	src := datagen.WikiXML(100000, 5)
	for _, c := range All() {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		// Truncations must error, never panic.
		for cut := 0; cut < len(comp); cut += 997 {
			if got, err := c.Decompress(comp[:cut], len(src)); err == nil && bytes.Equal(got, src) {
				t.Errorf("%s: truncation at %d decoded to original", c.Name(), cut)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"LZ4", "Snappy", "Zstd", "zlib"} {
		c, err := ByName(want)
		if err != nil || c.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v", want, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestParallelRoundtrip(t *testing.T) {
	src := datagen.WikiXML(5<<20, 6)
	for _, c := range All() {
		comp, err := CompressParallel(c, src, 1<<20, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := DecompressParallel(c, comp, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: parallel roundtrip mismatch", c.Name())
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	c := NewLZ4()
	// Empty input.
	comp, err := CompressParallel(c, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressParallel(c, comp, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v, %d bytes", err, len(got))
	}
	// Exactly one block.
	src := bytes.Repeat([]byte("x"), DefaultParallelBlockSize)
	comp, err = CompressParallel(c, src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecompressParallel(c, comp, 0)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("single-block roundtrip failed")
	}
	// Corrupt container.
	if _, err := DecompressParallel(c, []byte("garbage!"), 0); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLZ4FormatDetails(t *testing.T) {
	c := NewLZ4()
	// Long literal run (extension bytes) and long match.
	src := append(bytes.Repeat([]byte{1, 2, 3, 9, 8, 7, 11, 13}, 10),
		bytes.Repeat([]byte{'z'}, 400)...)
	src = append(src, bytes.Repeat([]byte{1, 2, 3, 9, 8, 7, 11, 13}, 40)...)
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("format details roundtrip failed")
	}
	if len(comp) >= len(src) {
		t.Fatalf("repetitive input did not compress: %d >= %d", len(comp), len(src))
	}
}

func TestSnappyFormatDetails(t *testing.T) {
	c := NewSnappy()
	// >64-byte match forces multi-piece copies; >60-byte literal forces
	// extended literal tags.
	src := append(datagen.Random(100, 1), bytes.Repeat([]byte("abcd"), 100)...)
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("snappy details roundtrip failed")
	}
}

func TestQuickAllCodecs(t *testing.T) {
	codecs := All()
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := codecs[int(pick)%len(codecs)]
		n := rng.Intn(30000)
		src := make([]byte, n)
		for i := 0; i < n; {
			if rng.Intn(2) == 0 {
				b := byte(rng.Intn(5))
				run := 1 + rng.Intn(80)
				for j := 0; j < run && i < n; j++ {
					src[i] = b
					i++
				}
			} else {
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		comp, err := c.Compress(src)
		if err != nil {
			return false
		}
		got, err := c.Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := datagen.WikiXML(4<<20, 12)
	for _, c := range All() {
		comp, err := CompressParallel(c, src, DefaultParallelBlockSize, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := DecompressParallel(c, comp, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
