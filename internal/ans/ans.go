// Package ans implements a table-based asymmetric numeral system (tANS)
// entropy coder over the byte alphabet, in the style of FSE. It is the
// coding layer of the repository's Zstd-like baseline codec: the paper
// (§V-D) compares against Zstd as a representative of "a different coding
// algorithm on top of LZ-compression that is typically faster than Huffman
// decoding".
package ans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"gompresso/internal/bitio"
)

// TableLog is the state-table size exponent: 2^11 states.
const TableLog = 11

const tableSize = 1 << TableLog

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("ans: corrupt stream")

// normalize scales a histogram so it sums to tableSize with every used
// symbol keeping at least one slot (largest-remainder method).
func normalize(hist []int) ([]int, error) {
	total := 0
	used := 0
	for _, c := range hist {
		total += c
		if c > 0 {
			used++
		}
	}
	if total == 0 {
		return nil, errors.New("ans: empty input histogram")
	}
	if used == 1 {
		return nil, errMonoByte
	}
	norm := make([]int, len(hist))
	type rem struct {
		sym  int
		frac float64
	}
	var rems []rem
	sum := 0
	for s, c := range hist {
		if c == 0 {
			continue
		}
		exact := float64(c) * tableSize / float64(total)
		n := int(exact)
		if n == 0 {
			n = 1
		}
		norm[s] = n
		sum += n
		rems = append(rems, rem{s, exact - float64(n)})
	}
	// Distribute the remaining slots (or reclaim excess) by remainder size,
	// never dropping a symbol below one slot.
	for sum != tableSize {
		best := -1
		if sum < tableSize {
			var bf float64 = -1
			for i, r := range rems {
				if r.frac > bf {
					bf = r.frac
					best = i
				}
			}
			norm[rems[best].sym]++
			rems[best].frac -= 1
			sum++
		} else {
			var bf float64 = 2
			for i, r := range rems {
				if norm[r.sym] > 1 && r.frac < bf {
					bf = r.frac
					best = i
				}
			}
			if best < 0 {
				return nil, errors.New("ans: cannot normalize histogram")
			}
			norm[rems[best].sym]--
			rems[best].frac += 1
			sum--
		}
	}
	return norm, nil
}

var errMonoByte = errors.New("ans: single-symbol input")

// spread places symbols into the state table with the zstd spreading step.
func spread(norm []int) []uint8 {
	table := make([]uint8, tableSize)
	const step = (tableSize >> 1) + (tableSize >> 3) + 3
	pos := 0
	for s, n := range norm {
		for i := 0; i < n; i++ {
			table[pos] = uint8(s)
			pos = (pos + step) & (tableSize - 1)
		}
	}
	return table
}

type encSym struct {
	deltaNbBits uint32
	deltaFindSt int32
}

type decEntry struct {
	sym    uint8
	nbBits uint8
	base   uint16 // new state base after subtracting tableSize
}

type codec struct {
	enc      []encSym
	encTable []uint16
	dec      []decEntry
}

func buildCodec(norm []int) *codec {
	table := spread(norm)
	c := &codec{
		enc:      make([]encSym, len(norm)),
		encTable: make([]uint16, tableSize),
		dec:      make([]decEntry, tableSize),
	}
	// Decoding table.
	next := make([]int, len(norm))
	copy(next, norm)
	for i := 0; i < tableSize; i++ {
		s := table[i]
		x := next[s]
		next[s]++
		nb := TableLog - (bits.Len(uint(x)) - 1)
		c.dec[i] = decEntry{
			sym:    s,
			nbBits: uint8(nb),
			base:   uint16((x << nb) - tableSize),
		}
	}
	// Encoding table: slot k for symbol s maps sub-state to table state.
	cumul := make([]int, len(norm)+1)
	for s, n := range norm {
		cumul[s+1] = cumul[s] + n
	}
	pos := make([]int, len(norm))
	copy(pos, cumul)
	for i := 0; i < tableSize; i++ {
		s := table[i]
		c.encTable[pos[s]] = uint16(tableSize + i)
		pos[s]++
	}
	for s, n := range norm {
		if n == 0 {
			continue
		}
		maxBits := TableLog - (bits.Len(uint(n)) - 1)
		minStatePlus := uint32(n) << maxBits
		c.enc[s] = encSym{
			deltaNbBits: uint32(maxBits)<<16 - minStatePlus,
			deltaFindSt: int32(cumul[s] - n),
		}
	}
	return c
}

// Encode compresses src. The output carries a small header (raw length,
// normalized histogram, final state) followed by the bitstream. Inputs whose
// histogram cannot be ANS-coded (empty or single-symbol) use a stored/RLE
// escape.
func Encode(src []byte) []byte {
	hist := make([]int, 256)
	for _, b := range src {
		hist[b]++
	}
	norm, err := normalize(hist)
	if err != nil {
		// Escape: 0 = stored, 1 = RLE. Both carry the raw length first so
		// Decode shares one header parse.
		if len(src) > 0 && err == errMonoByte {
			out := []byte{1}
			out = binary.AppendUvarint(out, uint64(len(src)))
			return append(out, src[0])
		}
		out := []byte{0}
		out = binary.AppendUvarint(out, uint64(len(src)))
		return append(out, src...)
	}
	c := buildCodec(norm)

	// Encode backwards, buffering per-symbol emissions, then write the
	// chunks in reverse so the decoder can stream forward.
	type chunk struct {
		bits uint16
		n    uint8
	}
	chunks := make([]chunk, len(src))
	state := uint32(tableSize) // arbitrary valid start state
	for i := len(src) - 1; i >= 0; i-- {
		s := src[i]
		e := c.enc[s]
		nb := (state + e.deltaNbBits) >> 16
		chunks[i] = chunk{bits: uint16(state & (1<<nb - 1)), n: uint8(nb)}
		state = uint32(c.encTable[int32(state>>nb)+e.deltaFindSt])
	}
	out := []byte{2} // 2 = ANS-coded
	out = binary.AppendUvarint(out, uint64(len(src)))
	out = binary.AppendUvarint(out, uint64(state-tableSize))
	// Histogram: norm counts as uvarints (0 for unused symbols).
	for s := 0; s < 256; s++ {
		out = binary.AppendUvarint(out, uint64(norm[s]))
	}
	w := bitio.NewWriter(len(src) / 2)
	for i := 0; i < len(src); i++ {
		w.WriteBits(uint64(chunks[i].bits), uint(chunks[i].n))
	}
	out = binary.AppendUvarint(out, uint64(w.BitLen()))
	return append(out, w.Bytes()...)
}

// Decode reverses Encode.
func Decode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	mode := data[0]
	data = data[1:]
	n, k := binary.Uvarint(data)
	if k <= 0 || n > 1<<31 {
		return nil, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	data = data[k:]
	switch mode {
	case 0: // stored
		if uint64(len(data)) != n {
			return nil, fmt.Errorf("%w: stored length mismatch", ErrCorrupt)
		}
		return append([]byte{}, data...), nil
	case 1: // RLE
		if len(data) != 1 {
			return nil, fmt.Errorf("%w: RLE payload", ErrCorrupt)
		}
		out := make([]byte, n)
		for i := range out {
			out[i] = data[0]
		}
		return out, nil
	case 2:
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, mode)
	}

	stateU, k := binary.Uvarint(data)
	if k <= 0 || stateU >= tableSize {
		return nil, fmt.Errorf("%w: bad state", ErrCorrupt)
	}
	data = data[k:]
	norm := make([]int, 256)
	sum := 0
	for s := 0; s < 256; s++ {
		v, k := binary.Uvarint(data)
		if k <= 0 || v > tableSize {
			return nil, fmt.Errorf("%w: bad histogram", ErrCorrupt)
		}
		norm[s] = int(v)
		sum += int(v)
		data = data[k:]
	}
	if sum != tableSize {
		return nil, fmt.Errorf("%w: histogram sums to %d", ErrCorrupt, sum)
	}
	bitLen, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad bit length", ErrCorrupt)
	}
	data = data[k:]
	if bitLen > uint64(len(data))*8 {
		return nil, fmt.Errorf("%w: bitstream truncated", ErrCorrupt)
	}
	c := buildCodec(norm)
	r := bitio.NewReaderBits(data, int64(bitLen))
	out := make([]byte, n)
	state := uint32(stateU)
	for i := range out {
		e := c.dec[state]
		out[i] = e.sym
		bitsV, err := r.ReadBits(uint(e.nbBits))
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		state = uint32(e.base) + uint32(bitsV)
	}
	// The encoder starts from state index 0, so a correct decode must end
	// there — a cheap integrity check on the whole stream.
	if state != 0 {
		return nil, fmt.Errorf("%w: final state %d", ErrCorrupt, state)
	}
	return out, nil
}
