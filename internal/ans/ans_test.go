package ans

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundtripBasic(t *testing.T) {
	cases := map[string][]byte{
		"text":   []byte(strings.Repeat("the entropy coder compresses skewed data well. ", 200)),
		"skewed": bytes.Repeat([]byte{'a', 'a', 'a', 'a', 'a', 'a', 'b', 'c'}, 1000),
		"empty":  {},
		"one":    {42},
		"mono":   bytes.Repeat([]byte{7}, 5000),
		"twosym": bytes.Repeat([]byte{0, 255}, 2500),
		"allsyms": func() []byte {
			b := make([]byte, 256)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
	}
	for name, src := range cases {
		enc := Encode(src)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: roundtrip mismatch (%d vs %d bytes)", name, len(got), len(src))
		}
	}
}

func TestCompressesSkewedData(t *testing.T) {
	// Heavily skewed data should approach its entropy.
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 100000)
	for i := range src {
		r := rng.Intn(100)
		switch {
		case r < 70:
			src[i] = 'a'
		case r < 90:
			src[i] = 'b'
		case r < 97:
			src[i] = 'c'
		default:
			src[i] = byte(rng.Intn(8))
		}
	}
	enc := Encode(src)
	// Shannon entropy of the distribution is ~1.3 bits/byte; allow overhead.
	hist := make([]float64, 256)
	for _, b := range src {
		hist[b]++
	}
	entropy := 0.0
	for _, c := range hist {
		if c > 0 {
			p := c / float64(len(src))
			entropy -= p * math.Log2(p)
		}
	}
	idealBytes := entropy * float64(len(src)) / 8
	if float64(len(enc)) > idealBytes*1.1+600 {
		t.Fatalf("encoded %d bytes, entropy bound %.0f", len(enc), idealBytes)
	}
	got, err := Decode(enc)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("skewed roundtrip failed")
	}
}

func TestRandomDataRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := make([]byte, 65536)
	rng.Read(src)
	enc := Encode(src)
	got, err := Decode(enc)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("random roundtrip failed")
	}
	// Random data cannot compress; overhead must stay modest (header ≈ 600B).
	if len(enc) > len(src)+len(src)/10+700 {
		t.Fatalf("random data blew up: %d → %d", len(src), len(enc))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	src := []byte(strings.Repeat("corrupt the ans stream ", 500))
	enc := Encode(src)
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte{9, 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	// Bit flips must be detected or at minimum produce different output —
	// the final-state check catches the vast majority.
	detected := 0
	for trial := 0; trial < 40; trial++ {
		bad := append([]byte{}, enc...)
		bad[600+trial*7%max(1, len(bad)-601)] ^= 0x10
		got, err := Decode(bad)
		if err != nil || !bytes.Equal(got, src) {
			detected++
		}
	}
	if detected < 35 {
		t.Fatalf("only %d/40 corruptions detected", detected)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNormalizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hist := make([]int, 256)
		used := 0
		for i := range hist {
			if rng.Intn(4) == 0 {
				hist[i] = rng.Intn(100000) + 1
				used++
			}
		}
		if used < 2 {
			hist[0], hist[1] = 3, 5
		}
		norm, err := normalize(hist)
		if err != nil {
			return false
		}
		sum := 0
		for s, n := range norm {
			if hist[s] > 0 && n < 1 {
				return false // used symbols keep a slot
			}
			if hist[s] == 0 && n != 0 {
				return false
			}
			sum += n
		}
		return sum == tableSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20000)
		src := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range src {
			src[i] = byte(rng.Intn(alpha))
		}
		got, err := Decode(Encode(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	src := []byte(strings.Repeat("benchmark the ans entropy coder throughput ", 2000))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Encode(src)
	}
}

func BenchmarkDecode(b *testing.B) {
	src := []byte(strings.Repeat("benchmark the ans entropy coder throughput ", 2000))
	enc := Encode(src)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
