package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gompresso/internal/perf"
)

// DefaultRingSize is the slow-request ring capacity when the caller
// passes 0.
const DefaultRingSize = 64

// ringTTL makes the ring track *recent* slow requests: an entry older
// than this is replaceable by any newcomer regardless of latency, so a
// cold-start spike ages out instead of squatting the ring forever.
const ringTTL = 5 * time.Minute

// idSeq seeds process-unique request ids across every Tracer (tests
// construct several servers per process).
var idSeq atomic.Uint64

// Tracer owns a server's tracing state: the per-stage histograms, the
// request-id sequence, the trace pool, the access logger, and the
// slow-request ring. A nil *Tracer is valid and disables everything.
type Tracer struct {
	hists  [numStages]*perf.Histogram
	seq    atomic.Uint64
	base   string
	pool   sync.Pool
	access *slog.Logger

	ringCap int
	ringMu  sync.Mutex
	ring    []*Trace
}

// NewTracer builds a Tracer, registering one stage_<name>_ns histogram
// per stage in reg. accessLog, when non-nil, receives one JSON line per
// finished request (log/slog; WARN for 5xx). ringSize bounds the
// slow-request ring (0 selects DefaultRingSize).
func NewTracer(reg *perf.Registry, accessLog io.Writer, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	tr := &Tracer{
		base:    fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff^int64(idSeq.Add(1)<<24)),
		ringCap: ringSize,
	}
	tr.pool.New = func() any { return new(Trace) }
	for st := Stage(0); st < numStages; st++ {
		tr.hists[st] = reg.Histogram("stage_"+st.String()+"_ns",
			"request time inside the "+st.String()+" stage in nanoseconds")
	}
	if accessLog != nil {
		tr.access = slog.New(slog.NewJSONHandler(accessLog, nil))
	}
	return tr
}

func (tr *Tracer) observe(stage Stage, ns int64) {
	tr.hists[stage].Observe(ns)
}

// Begin attaches a fresh trace to ctx and assigns the request id. A nil
// tracer returns ctx unchanged and a nil trace (every Trace method is
// nil-safe), so callers need no enabled check.
func (tr *Tracer) Begin(ctx context.Context, method, path, rng string) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	t := tr.pool.Get().(*Trace)
	t.reset(tr, tr.base+"-"+strconv.FormatUint(tr.seq.Add(1), 10), method, path, rng)
	//lint:allow poolescape sanctioned lifecycle helper; Finish recycles the trace into the pool
	return context.WithValue(ctx, ctxKey{}, &ctxRef{t: t, parent: -1}), t
}

// Finish completes the trace: stamps status and bytes, emits the access
// log line, and either parks the trace in the slow-request ring or
// recycles it. Call exactly once, after the last span has ended and
// every request goroutine has returned.
func (t *Trace) Finish(status int, bytes int64) {
	if t == nil {
		return
	}
	t.status = status
	t.bytes = bytes
	t.dur = time.Since(t.start)
	tr := t.tr
	if tr.access != nil {
		tr.logAccess(t)
	}
	if evicted := tr.offer(t); evicted != nil {
		tr.pool.Put(evicted)
	}
}

// logAccess emits the one-line JSON access record. 5xx responses log at
// WARN with the typed-error class, so backend failures (quarantine
// 502s, retry-exhausted reads) are never silent.
func (tr *Tracer) logAccess(t *Trace) {
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("id", t.id),
		slog.String("method", t.method),
		slog.String("path", t.path),
		slog.Int("status", t.status),
		slog.Int64("bytes", t.bytes),
		slog.Float64("dur_ms", float64(t.dur)/float64(time.Millisecond)),
		slog.Int64("cache_hits", t.hits.Load()),
		slog.Int64("cache_misses", t.misses.Load()),
	)
	if t.rng != "" {
		attrs = append(attrs, slog.String("range", t.rng))
	}
	if t.verdict != "" {
		attrs = append(attrs, slog.String("verdict", t.verdict))
	}
	if t.errCls != "" {
		attrs = append(attrs, slog.String("err", t.errCls))
	}
	var stages []any
	for st, ns := range t.stageTotals() {
		if ns > 0 {
			stages = append(stages, slog.Int64(Stage(st).String()+"_us", ns/1000))
		}
	}
	attrs = append(attrs, slog.Group("stages", stages...))
	// 5xx answers and mid-body failures (a committed 200 that aborted
	// with a typed error) both warn; a client hanging up is routine.
	level := slog.LevelInfo
	if t.status >= 500 || (t.errCls != "" && t.errCls != "canceled") {
		level = slog.LevelWarn
	}
	tr.access.LogAttrs(context.Background(), level, "request", attrs...)
}

// stageTotals sums span durations and cumulative time per stage.
// Stages overlap (a seq_decode span contains its source reads), so
// totals are per-stage attributions, not an exclusive partition.
func (t *Trace) stageTotals() [numStages]int64 {
	var out [numStages]int64
	for i := int32(0); i < t.nspans; i++ {
		sp := &t.spans[i]
		if sp.durNs > 0 {
			out[sp.stage] += sp.durNs
		}
	}
	for st := range out {
		out[st] += t.cumNs[st].Load()
	}
	return out
}

// offer inserts t into the slow-request ring if it ranks among the
// slowest recent requests, returning the trace the pool gets back (the
// evicted entry, or t itself when it doesn't qualify; nil when the ring
// simply grew).
func (tr *Tracer) offer(t *Trace) *Trace {
	tr.ringMu.Lock()
	defer tr.ringMu.Unlock()
	if len(tr.ring) < tr.ringCap {
		tr.ring = append(tr.ring, t)
		return nil
	}
	// Replace the most replaceable entry: expired ones first, then the
	// fastest. A newcomer slower than the victim (or any expired victim)
	// takes the slot.
	now := time.Now()
	victim := 0
	for i := 1; i < len(tr.ring); i++ {
		ve, ce := now.Sub(tr.ring[victim].start) > ringTTL, now.Sub(tr.ring[i].start) > ringTTL
		if ce != ve {
			if ce {
				victim = i
			}
			continue
		}
		if tr.ring[i].dur < tr.ring[victim].dur {
			victim = i
		}
	}
	if now.Sub(tr.ring[victim].start) > ringTTL || t.dur > tr.ring[victim].dur {
		evicted := tr.ring[victim]
		tr.ring[victim] = t
		return evicted
	}
	return t
}

// DumpSpan is one span in a /debug/requests dump. Parent is the index
// of the enclosing span in the same Spans slice, -1 for request-level
// spans; DurUs is -1 for a span never ended (a bug spanbalance should
// have caught).
type DumpSpan struct {
	Stage   string `json:"stage"`
	Parent  int32  `json:"parent"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	N       int64  `json:"n,omitempty"`
}

// DumpEntry is one request in a /debug/requests dump.
type DumpEntry struct {
	ID           string           `json:"id"`
	Method       string           `json:"method"`
	Path         string           `json:"path"`
	Range        string           `json:"range,omitempty"`
	Status       int              `json:"status"`
	Bytes        int64            `json:"bytes"`
	Start        time.Time        `json:"start"`
	DurMs        float64          `json:"dur_ms"`
	Verdict      string           `json:"verdict,omitempty"`
	Err          string           `json:"err,omitempty"`
	CacheHits    int64            `json:"cache_hits"`
	CacheMisses  int64            `json:"cache_misses"`
	DroppedSpans int32            `json:"dropped_spans,omitempty"`
	Stages       map[string]int64 `json:"stages"`
	Spans        []DumpSpan       `json:"spans"`
}

// Slowest snapshots the n slowest recent requests, slowest first. The
// conversion happens under the ring lock because a concurrent Finish
// may recycle an evicted trace.
func (tr *Tracer) Slowest(n int) []DumpEntry {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.ringMu.Lock()
	defer tr.ringMu.Unlock()
	traces := make([]*Trace, len(tr.ring))
	copy(traces, tr.ring)
	sort.Slice(traces, func(i, j int) bool { return traces[i].dur > traces[j].dur })
	if n > len(traces) {
		n = len(traces)
	}
	out := make([]DumpEntry, 0, n)
	for _, t := range traces[:n] {
		out = append(out, t.dump())
	}
	return out
}

// dump converts a finished trace to its JSON form.
func (t *Trace) dump() DumpEntry {
	e := DumpEntry{
		ID:           t.id,
		Method:       t.method,
		Path:         t.path,
		Range:        t.rng,
		Status:       t.status,
		Bytes:        t.bytes,
		Start:        t.start,
		DurMs:        float64(t.dur) / float64(time.Millisecond),
		Verdict:      t.verdict,
		Err:          t.errCls,
		CacheHits:    t.hits.Load(),
		CacheMisses:  t.misses.Load(),
		DroppedSpans: t.dropped,
		Stages:       make(map[string]int64, numStages),
		Spans:        make([]DumpSpan, 0, t.nspans),
	}
	for st, ns := range t.stageTotals() {
		if ns > 0 {
			e.Stages[Stage(st).String()+"_us"] = ns / 1000
		}
	}
	for i := int32(0); i < t.nspans; i++ {
		sp := &t.spans[i]
		durUs := sp.durNs / 1000
		if sp.durNs < 0 {
			durUs = -1
		}
		e.Spans = append(e.Spans, DumpSpan{
			Stage:   sp.stage.String(),
			Parent:  sp.parent,
			StartUs: sp.startNs / 1000,
			DurUs:   durUs,
			N:       sp.n,
		})
	}
	return e
}

// ServeDebugRequests is the /debug/requests?n=K handler body: a JSON
// object with the K slowest recent requests' full span trees.
func (tr *Tracer) ServeDebugRequests(w http.ResponseWriter, r *http.Request) {
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k > 0 {
			n = k
		}
	}
	entries := tr.Slowest(n) // nil-safe: a nil tracer dumps nothing
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Requests []DumpEntry `json:"requests"`
	}{Requests: entries})
}
