package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"gompresso/internal/perf"
)

func TestDisabledPathIsNoop(t *testing.T) {
	ctx := context.Background()
	if tr := FromContext(ctx); tr != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", tr)
	}
	ctx2, sp := Start(ctx, StageResolve)
	if ctx2 != ctx {
		t.Fatal("Start without a trace must return ctx unchanged")
	}
	sp.SetN(7)
	sp.End() // must not panic
	Cum(ctx, StageBodyWrite, time.Millisecond, 1)

	ra := strings.NewReader("hello")
	if got := SourceReaderAt(ctx, ra); got != io.ReaderAt(ra) {
		t.Fatal("SourceReaderAt without a trace must return the reader unchanged")
	}

	var nilTracer *Tracer
	ctx3, trace := nilTracer.Begin(ctx, "GET", "/x", "")
	if ctx3 != ctx || trace != nil {
		t.Fatal("nil Tracer.Begin must be a no-op")
	}
	trace.SetVerdict("shed")
	trace.SetError("backend")
	trace.CountCache(true)
	trace.Finish(200, 1)
	if d := nilTracer.Slowest(5); d != nil {
		t.Fatalf("nil Tracer.Slowest = %v, want nil", d)
	}
}

func TestSpansNestAndDump(t *testing.T) {
	reg := perf.NewRegistry()
	tr := NewTracer(reg, nil, 4)
	ctx, trace := tr.Begin(context.Background(), "GET", "/a.gz", "bytes=0-99")
	if trace.ID() == "" {
		t.Fatal("empty request id")
	}

	ctx1, outer := Start(ctx, StageCacheLookup)
	outer.SetN(3)
	_, inner := Start(ctx1, StageBlockDecode)
	inner.End()
	outer.End()
	trace.Cum(StageSourceRead, 2*time.Millisecond, 1)
	trace.CountCache(false)
	trace.CountCache(true)
	trace.Finish(200, 100)

	dumps := tr.Slowest(10)
	if len(dumps) != 1 {
		t.Fatalf("Slowest = %d entries, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Status != 200 || d.Bytes != 100 || d.Range != "bytes=0-99" {
		t.Fatalf("dump header mismatch: %+v", d)
	}
	if d.CacheHits != 1 || d.CacheMisses != 1 {
		t.Fatalf("cache counters = %d/%d, want 1/1", d.CacheHits, d.CacheMisses)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(d.Spans))
	}
	if d.Spans[0].Stage != "cache_lookup" || d.Spans[0].Parent != -1 || d.Spans[0].N != 3 {
		t.Fatalf("outer span: %+v", d.Spans[0])
	}
	if d.Spans[1].Stage != "block_decode" || d.Spans[1].Parent != 0 {
		t.Fatalf("inner span should parent to slot 0: %+v", d.Spans[1])
	}
	if d.Stages["source_read_us"] < 1900 {
		t.Fatalf("source_read_us = %d, want ~2000", d.Stages["source_read_us"])
	}
	// The stage histograms observed the operations.
	var buf bytes.Buffer
	reg.WriteJSON(&buf)
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["stage_cache_lookup_ns_count"] != 1 || m["stage_block_decode_ns_count"] != 1 || m["stage_source_read_ns_count"] != 1 {
		t.Fatalf("histogram counts off: %v", m)
	}
}

func TestSpanTableOverflowCounts(t *testing.T) {
	tr := NewTracer(perf.NewRegistry(), nil, 2)
	ctx, trace := tr.Begin(context.Background(), "GET", "/x", "")
	for i := 0; i < maxSpans+5; i++ {
		_, sp := Start(ctx, StageBlockDecode)
		sp.End()
	}
	trace.Finish(200, 0)
	d := tr.Slowest(1)[0]
	if len(d.Spans) != maxSpans {
		t.Fatalf("spans = %d, want %d", len(d.Spans), maxSpans)
	}
	if d.DroppedSpans != 5 {
		t.Fatalf("dropped = %d, want 5", d.DroppedSpans)
	}
}

func TestRingKeepsSlowest(t *testing.T) {
	tr := NewTracer(perf.NewRegistry(), nil, 2)
	mk := func(path string, d time.Duration) {
		_, trace := tr.Begin(context.Background(), "GET", path, "")
		trace.start = trace.start.Add(-d) // synthesize the latency
		trace.Finish(200, 0)
	}
	mk("/fast", 1*time.Millisecond)
	mk("/slow", 100*time.Millisecond)
	mk("/mid", 50*time.Millisecond)
	mk("/tiny", 100*time.Microsecond) // should not displace anything
	got := tr.Slowest(10)
	if len(got) != 2 {
		t.Fatalf("ring = %d entries, want 2", len(got))
	}
	if got[0].Path != "/slow" || got[1].Path != "/mid" {
		t.Fatalf("ring order = %s, %s; want /slow, /mid", got[0].Path, got[1].Path)
	}
}

func TestAccessLogJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(perf.NewRegistry(), &buf, 2)
	ctx, trace := tr.Begin(context.Background(), "GET", "/obj.gz", "bytes=1-2")
	_, sp := Start(ctx, StageResolve)
	sp.End()
	trace.SetVerdict("quarantined")
	trace.SetError("backend")
	trace.Finish(502, 0)

	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, line)
	}
	for _, k := range []string{"id", "method", "path", "status", "bytes", "dur_ms", "cache_hits", "cache_misses", "stages", "range", "verdict", "err"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("access log missing key %q: %s", k, line)
		}
	}
	if rec["level"] != "WARN" {
		t.Errorf("5xx must log at WARN, got %v", rec["level"])
	}
	if rec["verdict"] != "quarantined" || rec["err"] != "backend" {
		t.Errorf("verdict/err = %v/%v", rec["verdict"], rec["err"])
	}
}

func TestSourceReaderAtAccrues(t *testing.T) {
	tr := NewTracer(perf.NewRegistry(), nil, 2)
	ctx, trace := tr.Begin(context.Background(), "GET", "/x", "")
	ra := SourceReaderAt(ctx, strings.NewReader("0123456789"))
	var p [4]byte
	if n, err := ra.ReadAt(p[:], 2); err != nil || n != 4 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	trace.Finish(200, 4)
	d := tr.Slowest(1)[0]
	if _, ok := d.Stages["source_read_us"]; !ok {
		t.Fatalf("source_read stage missing from %v", d.Stages)
	}
}

func TestStagesPinned(t *testing.T) {
	want := []string{"queue_wait", "resolve", "source_read", "cache_lookup", "block_decode", "seq_decode", "body_write"}
	got := Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q (stage names are a pinned API)", i, got[i], want[i])
		}
	}
}
