// Package obs is the serving stack's observability layer: per-request
// span traces, structured access logging, and the slow-request ring
// behind /debug/requests.
//
// The design constraint is the request path's cost budget. When tracing
// is off (no Tracer, or a context that never passed through Begin),
// every hook here is a nil-check on a context value — no clock reads,
// no allocation. When tracing is on, span records live in a fixed array
// inside a pooled Trace, so steady-state tracing allocates only the
// small context nodes that carry parentage; the records themselves
// recycle through a sync.Pool and the slow-request ring.
//
// Propagation rules: Tracer.Begin attaches a Trace to the request
// context; Start derives a child context carrying the new span's
// identity, so spans started under that context nest beneath it — from
// any goroutine, since the span table is append-locked and every
// counter is atomic. Layers that do many tiny operations (source
// ReadAt, response-body writes) record cumulative stage time via Cum
// or the SourceReaderAt wrapper instead of one span per call; the
// totals surface as per-stage histograms on /metrics and as stage
// sums in the access log and /debug/requests dumps.
package obs

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one instrumented phase of the serving path. Stages are a
// closed set so per-trace accumulation is a fixed array and the
// /metrics histogram families are stable names.
type Stage uint8

const (
	// StageQueueWait is time queued on the concurrency limiter.
	StageQueueWait Stage = iota
	// StageResolve is path resolution: stat, open, header sniff, index load.
	StageResolve
	// StageSourceRead is time inside source ReadAt calls (compressed bytes).
	StageSourceRead
	// StageCacheLookup is block-cache GetOrDecode wall time — a hit's
	// copy, a coalesced wait, or (as a child span) a winner's decode.
	StageCacheLookup
	// StageBlockDecode is entropy/LZ decode of one block or chunk.
	StageBlockDecode
	// StageSeqDecode is one sequential-fallback decode attempt.
	StageSeqDecode
	// StageBodyWrite is time inside response-body writes.
	StageBodyWrite

	numStages
)

var stageNames = [numStages]string{
	"queue_wait",
	"resolve",
	"source_read",
	"cache_lookup",
	"block_decode",
	"seq_decode",
	"body_write",
}

// String returns the stage's metric-safe name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns the stage names in order — the pinned set behind the
// stage_<name>_ns histogram families.
func Stages() []string { return stageNames[:] }

// maxSpans bounds one trace's span table. A typical range request
// records ~2 spans per overlapped block plus a handful of request-level
// spans; 192 covers a 24-block (6 MiB at the default block size) range
// with room to spare. Excess spans are counted, not recorded.
const maxSpans = 192

// Span is one timed operation inside a trace. Spans are slots in the
// owning Trace's fixed table — never allocated individually — and a
// started span must be ended on every path (enforced by the
// spanbalance analyzer).
type Span struct {
	t       *Trace
	stage   Stage
	parent  int32
	startNs int64
	durNs   int64
	n       int64
}

// noopSpan is handed out when tracing is disabled. Shared and
// immutable: every method nil-checks the owning trace before writing.
var noopSpan = &Span{}

// End closes the span, recording its duration in the trace and the
// stage histogram.
func (sp *Span) End() {
	if sp.t == nil {
		return
	}
	sp.durNs = time.Since(sp.t.start).Nanoseconds() - sp.startNs
	sp.t.tr.observe(sp.stage, sp.durNs)
}

// SetN attaches a numeric annotation (typically a block index) shown in
// span dumps.
func (sp *Span) SetN(n int64) {
	if sp.t != nil {
		sp.n = n
	}
}

// Trace is one request's span record. Obtain via Tracer.Begin; the
// server finishes it exactly once, after the handler returns.
type Trace struct {
	tr      *Tracer
	id      string
	method  string
	path    string
	rng     string
	status  int
	bytes   int64
	verdict string
	errCls  string
	start   time.Time
	dur     time.Duration

	mu      sync.Mutex
	nspans  int32
	dropped int32
	spans   [maxSpans]Span

	cumNs  [numStages]atomic.Int64
	cumN   [numStages]atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// ID returns the request id (echoed as X-Request-Id).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetVerdict records a serving-policy outcome ("shed", "quarantined")
// for the access log and dumps.
func (t *Trace) SetVerdict(v string) {
	if t != nil {
		t.verdict = v
	}
}

// SetError records the request's typed-error class ("corrupt",
// "canceled", "deadline", "backend", "panic").
func (t *Trace) SetError(class string) {
	if t != nil {
		t.errCls = class
	}
}

// Cum adds d to the stage's cumulative time (and n to its op count) and
// observes d in the stage histogram. For layers where one span per
// operation would be noise: source reads, body writes, pipelined block
// decodes.
func (t *Trace) Cum(stage Stage, d time.Duration, n int64) {
	if t == nil {
		return
	}
	t.cumNs[stage].Add(d.Nanoseconds())
	t.cumN[stage].Add(n)
	t.tr.observe(stage, d.Nanoseconds())
}

// CountCache tallies one block obtained from the decoded-block cache:
// hit means no decode ran on this request's behalf (resident, or
// coalesced onto another request's decode).
func (t *Trace) CountCache(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
}

// startSpan claims the next slot. The table lock is held only for slot
// assignment; the record is written before the span pointer escapes.
func (t *Trace) startSpan(stage Stage, parent int32) (*Span, int32) {
	t.mu.Lock()
	if t.nspans >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return noopSpan, -1
	}
	i := t.nspans
	t.nspans++
	t.mu.Unlock()
	sp := &t.spans[i]
	sp.t = t
	sp.stage = stage
	sp.parent = parent
	sp.startNs = time.Since(t.start).Nanoseconds()
	sp.durNs = -1
	sp.n = 0
	return sp, i
}

func (t *Trace) reset(tr *Tracer, id, method, path, rng string) {
	t.tr = tr
	t.id = id
	t.method = method
	t.path = path
	t.rng = rng
	t.status = 0
	t.bytes = 0
	t.verdict = ""
	t.errCls = ""
	t.start = time.Now()
	t.dur = 0
	t.nspans = 0
	t.dropped = 0
	for i := range t.cumNs {
		t.cumNs[i].Store(0)
		t.cumN[i].Store(0)
	}
	t.hits.Store(0)
	t.misses.Store(0)
}

// ctxKey carries the trace (and current parent span) through contexts.
type ctxKey struct{}

type ctxRef struct {
	t      *Trace
	parent int32
}

// FromContext returns the trace attached by Tracer.Begin, or nil. The
// lookup is the disabled path's entire cost.
func FromContext(ctx context.Context) *Trace {
	if ref, ok := ctx.Value(ctxKey{}).(*ctxRef); ok {
		return ref.t
	}
	return nil
}

// Start opens a span of the given stage under ctx's current span,
// returning a derived context (for nesting children) and the span. With
// no trace attached it returns ctx unchanged and a shared no-op span —
// zero allocation. The returned span must be ended on every path.
func Start(ctx context.Context, stage Stage) (context.Context, *Span) {
	ref, ok := ctx.Value(ctxKey{}).(*ctxRef)
	if !ok {
		return ctx, noopSpan
	}
	sp, idx := ref.t.startSpan(stage, ref.parent)
	if sp.t == nil {
		return ctx, sp // table full: children attach to the same parent
	}
	return context.WithValue(ctx, ctxKey{}, &ctxRef{t: ref.t, parent: idx}), sp
}

// Cum is Trace.Cum through a context, for layers that hold a ctx but
// not the trace.
func Cum(ctx context.Context, stage Stage, d time.Duration, n int64) {
	FromContext(ctx).Cum(stage, d, n)
}

// SourceReaderAt wraps ra so every ReadAt accrues to the trace's
// source_read stage. Without a trace it returns ra unchanged, so the
// disabled path pays nothing — not even the indirection.
func SourceReaderAt(ctx context.Context, ra io.ReaderAt) io.ReaderAt {
	t := FromContext(ctx)
	if t == nil {
		return ra
	}
	return &tracedReaderAt{t: t, ra: ra}
}

type tracedReaderAt struct {
	t  *Trace
	ra io.ReaderAt
}

func (r *tracedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	t0 := time.Now()
	n, err := r.ra.ReadAt(p, off)
	r.t.Cum(StageSourceRead, time.Since(t0), 1)
	return n, err
}
