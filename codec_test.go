package gompresso_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// New with no options must resolve to the paper's headline defaults.
func TestCodecDefaults(t *testing.T) {
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	o := c.Options()
	if o.Variant != gompresso.VariantBit {
		t.Fatalf("default variant %v, want Gompresso/Bit", o.Variant)
	}
	if o.BlockSize != 256<<10 {
		t.Fatalf("default block size %d", o.BlockSize)
	}
	if o.Window != 8<<10 {
		t.Fatalf("default window %d", o.Window)
	}
	if c.Workers() < 1 {
		t.Fatalf("default workers %d", c.Workers())
	}
}

// Every constructor must reject negative tuning values with the shared
// typed error.
func TestInvalidOptionsRejected(t *testing.T) {
	bad := [][]gompresso.Option{
		{gompresso.WithWorkers(-1)},
		{gompresso.WithReadahead(-2)},
		{gompresso.WithBlockSize(-4096)},
		{gompresso.WithBlockSize(100)},
		{gompresso.WithVariant(gompresso.Variant(9))},
		{gompresso.WithCWL(1)},
		{gompresso.WithSeqsPerSub(-1)},
		{gompresso.WithCache(-1)},
	}
	for i, opts := range bad {
		if _, err := gompresso.New(opts...); !errors.Is(err, gompresso.ErrInvalidOption) {
			t.Errorf("case %d: want ErrInvalidOption, got %v", i, err)
		}
	}
	// Reader validation shares the same error.
	comp, _, err := gompresso.Compress([]byte("some data"), gompresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []gompresso.ReaderOptions{{Workers: -1}, {Readahead: -1}} {
		if _, err := gompresso.NewReaderWith(bytes.NewReader(comp), opt); !errors.Is(err, gompresso.ErrInvalidOption) {
			t.Errorf("ReaderOptions %+v: want ErrInvalidOption, got %v", opt, err)
		}
	}
	// Legacy whole-buffer calls too.
	if _, _, err := gompresso.Compress(nil, gompresso.Options{Variant: gompresso.VariantBit, Workers: -3}); !errors.Is(err, gompresso.ErrInvalidOption) {
		t.Errorf("Compress negative workers: got %v", err)
	}
	if _, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{Workers: -3}); !errors.Is(err, gompresso.ErrInvalidOption) {
		t.Errorf("Decompress negative workers: got %v", err)
	}
}

// A codec without WithCache reports a disabled cache; with it, the
// stats reflect the configured budget.
func TestCacheStats(t *testing.T) {
	plain, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	if st := plain.CacheStats(); st.Enabled || st != (gompresso.CacheStats{}) {
		t.Fatalf("uncached codec stats = %+v", st)
	}
	cached, err := gompresso.New(gompresso.WithCache(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	st := cached.CacheStats()
	if !st.Enabled || st.MaxBytes != 1<<20 || st.HitRate() != 0 {
		t.Fatalf("cached codec stats = %+v", st)
	}
}

// Codec round trip: Compress/Decompress produce the same bytes as the
// top-level calls with equivalent options, on both engines.
func TestCodecRoundTrip(t *testing.T) {
	src := datagen.WikiXML(300_000, 5)
	c, err := gompresso.New(gompresso.WithDE(gompresso.DEStrict), gompresso.WithIndex(true))
	if err != nil {
		t.Fatal(err)
	}
	comp, cs, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Ratio <= 1 {
		t.Fatalf("ratio %.2f", cs.Ratio)
	}
	want, _, err := gompresso.Compress(src, gompresso.Options{
		Variant: gompresso.VariantBit, DE: gompresso.DEStrict, Index: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp, want) {
		t.Fatal("codec Compress differs from top-level Compress")
	}
	out, _, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("host decompress: %v", err)
	}
	// Device engine with auto strategy (DE stream → DE strategy).
	dev, err := gompresso.New(gompresso.WithEngine(gompresso.EngineDevice))
	if err != nil {
		t.Fatal(err)
	}
	out, ds, err := dev.Decompress(comp)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("device decompress: %v", err)
	}
	if ds.Rounds == nil || ds.Rounds.MaxRounds > 1 {
		t.Fatalf("auto strategy should pick DE for a DE stream: %+v", ds.Rounds)
	}
}

// A cancelled codec context fails Compress and Decompress with ctx.Err().
func TestCodecContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := gompresso.New(gompresso.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	src := datagen.WikiXML(64<<10, 3)
	if _, _, err := c.Compress(src); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compress: want context.Canceled, got %v", err)
	}
	comp, _, err := gompresso.Compress(src, gompresso.Options{Variant: gompresso.VariantBit})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress(comp); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decompress: want context.Canceled, got %v", err)
	}
}

// A Reader built from a cancelled-context codec surfaces ctx.Err() from
// Read instead of hanging or leaking, in both pipeline and sync modes.
func TestCodecReaderContextCancelled(t *testing.T) {
	src := datagen.WikiXML(512<<10, 29)
	comp, _, err := gompresso.Compress(src, gompresso.Options{
		Variant: gompresso.VariantBit, BlockSize: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		c, err := gompresso.New(gompresso.WithWorkers(workers), gompresso.WithContext(ctx))
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		one := make([]byte, 1)
		if _, err := io.ReadFull(r, one); err != nil {
			t.Fatal(err)
		}
		cancel()
		_, err = io.Copy(io.Discard, r)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled from Read, got %v", workers, err)
		}
		r.Close()
	}
}

// The codec's worker budget reaches ReaderAt.
func TestCodecReaderAt(t *testing.T) {
	src := datagen.WikiXML(256<<10, 31)
	c, err := gompresso.New(gompresso.WithBlockSize(16<<10), gompresso.WithIndex(true), gompresso.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 60_000)
	if _, err := ra.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[1000:61_000]) {
		t.Fatal("ReadAt mismatch")
	}
}
