// Command bench runs the repository's figure and host-engine benchmarks
// in-process and writes a machine-readable BENCH_<n>.json so the performance
// trajectory is tracked from PR to PR (see EXPERIMENTS.md).
//
//	go run ./cmd/bench                 # full run, writes BENCH_10.json
//	go run ./cmd/bench -short          # CI smoke: small corpus, 1 iteration
//	go run ./cmd/bench -o results.json # custom output path
//
// Device-engine rows report the modeled simulator throughput ("sim-GB/s",
// the paper-figure quantity); host rows report measured wall-clock GB/s.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gompresso"
	"gompresso/internal/datagen"
	"gompresso/internal/loadgen"
	"gompresso/internal/perf"
	"gompresso/internal/server"
)

// seedHostBitMBps is the pre-optimization BenchmarkHostEngine_Bit
// throughput measured at the seed commit (byte-at-a-time match copies,
// TokenStream materialization): mean of three 20-iteration runs on the PR-1
// build machine. Kept here so every BENCH_<n>.json carries the baseline the
// fast path is compared against.
const seedHostBitMBps = 90.6

type result struct {
	Name     string  `json:"name"`
	SimGBps  float64 `json:"sim_gbps,omitempty"`
	HostGBps float64 `json:"host_gbps,omitempty"`
	HitRate  float64 `json:"hit_rate,omitempty"` // ServeRange rows: decoded-block cache hit rate
	// ServeLatency rows: open-loop load-harness quantiles (milliseconds)
	// and error/shed rates for one phase.
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P95Ms     float64 `json:"p95_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
	ErrorRate float64 `json:"error_rate,omitempty"`
	ShedRate  float64 `json:"shed_rate,omitempty"`
}

type report struct {
	Generated    string   `json:"generated"`
	GoVersion    string   `json:"go_version"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	CorpusBytes  int      `json:"corpus_bytes"`
	Iterations   int      `json:"iterations"`
	Benchmarks   []result `json:"benchmarks"`
	HostFastPath struct {
		SeedBaselineMBps float64 `json:"seed_baseline_mbps"`
		ReferenceMBps    float64 `json:"reference_mbps"`
		OptimizedMBps    float64 `json:"optimized_mbps"`
		SpeedupVsSeed    float64 `json:"speedup_vs_seed"`
	} `json:"host_fast_path"`
	// ServeLatency cross-checks the load harness's ground-truth p99
	// against the server's own /metrics histogram: both are bucket upper
	// bounds, so agreement means the same (or an adjacent) refined
	// sub-bucket of the server's 4-per-octave histogram.
	ServeLatency *serveLatencySummary `json:"serve_latency,omitempty"`
}

type serveLatencySummary struct {
	RPS          float64 `json:"rps"`
	DurationS    float64 `json:"duration_s"`
	Seed         uint64  `json:"seed"`
	HarnessP99Ms float64 `json:"harness_p99_ms"`
	MetricsP99Ms float64 `json:"metrics_p99_ms"`
	// SubBucketsApart is the distance between the two p99 estimates in
	// units of the refined histogram's sub-bucket ratio (1.25×):
	// |log(harness/metrics)| / log(1.25). Agree means ≤ 1 — the
	// distance is within one sub-bucket width, measured in value space
	// rather than by bucket index so a hair's-width gap straddling a
	// bucket boundary doesn't read as a two-bucket miss.
	SubBucketsApart float64 `json:"sub_buckets_apart"`
	Agree           bool    `json:"agree"`
}

func main() {
	size := flag.Int("size", 8<<20, "corpus size in bytes")
	iters := flag.Int("iters", 3, "timed iterations per benchmark (best is reported)")
	out := flag.String("o", "BENCH_10.json", "output JSON path")
	short := flag.Bool("short", false, "smoke mode: 2 MB corpus, 1 iteration")
	flag.Parse()
	if *short {
		*size = 2 << 20
		*iters = 1
	}

	wiki := datagen.WikiXML(*size, 1)

	compress := func(variant gompresso.Variant, de gompresso.DEMode, blockSize int) []byte {
		comp, _, err := gompresso.Compress(wiki, gompresso.Options{Variant: variant, DE: de, BlockSize: blockSize})
		if err != nil {
			fatal("compress: %v", err)
		}
		return comp
	}
	byteOff := compress(gompresso.VariantByte, gompresso.DEOff, 0)
	byteDE := compress(gompresso.VariantByte, gompresso.DEStrict, 0)
	bitDE := compress(gompresso.VariantBit, gompresso.DEStrict, 0)

	// device measures a device-engine configuration: sim-GB/s is modeled,
	// host GB/s is the wall clock of the whole simulated run.
	device := func(name string, comp []byte, strat gompresso.Strategy, pcie gompresso.PCIeMode) result {
		var best result
		for i := 0; i < *iters; i++ {
			start := time.Now()
			outBuf, ds, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
				Engine: gompresso.EngineDevice, Strategy: strat, PCIe: pcie, TileTo: 1 << 30,
			})
			if err != nil {
				fatal("%s: %v", name, err)
			}
			if i == 0 && !bytes.Equal(outBuf, wiki) {
				fatal("%s: roundtrip mismatch", name)
			}
			host := float64(len(wiki)) / time.Since(start).Seconds() / 1e9
			sim := float64(ds.RawSize) / ds.SimSeconds / 1e9
			if host > best.HostGBps {
				best = result{Name: name, SimGBps: sim, HostGBps: host}
			}
		}
		return best
	}
	// host measures a host-engine decompression closure.
	host := func(name string, fn func() int) result {
		var best float64
		for i := 0; i < *iters; i++ {
			start := time.Now()
			n := fn()
			if gbps := float64(n) / time.Since(start).Seconds() / 1e9; gbps > best {
				best = gbps
			}
		}
		return result{Name: name, HostGBps: best}
	}
	decompressHost := func(comp []byte, ref bool) int {
		outBuf, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineHost, HostReference: ref,
		})
		if err != nil {
			fatal("host decompress: %v", err)
		}
		return len(outBuf)
	}

	var rep report
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.CorpusBytes = *size
	rep.Iterations = *iters

	rep.Benchmarks = append(rep.Benchmarks,
		device("Fig09a_Wikipedia_SC", byteOff, gompresso.SC, gompresso.PCIeNone),
		device("Fig09a_Wikipedia_MRR", byteOff, gompresso.MRR, gompresso.PCIeNone),
		device("Fig09a_Wikipedia_DE", byteDE, gompresso.DE, gompresso.PCIeNone),
		device("Fig12_GompBit_InOut", bitDE, gompresso.DE, gompresso.PCIeInOut),
		device("Fig13_GompBit_InOut", bitDE, gompresso.DE, gompresso.PCIeInOut),
	)

	fast := host("HostEngine_Bit", func() int { return decompressHost(bitDE, false) })
	ref := host("HostEngine_Bit_Reference", func() int { return decompressHost(bitDE, true) })
	stream := func(workers int) int {
		r, err := gompresso.NewReaderWith(bytes.NewReader(bitDE), gompresso.ReaderOptions{Workers: workers})
		if err != nil {
			fatal("stream: %v", err)
		}
		defer r.Close()
		n, err := io.Copy(io.Discard, r)
		if err != nil {
			fatal("stream: %v", err)
		}
		return int(n)
	}
	rep.Benchmarks = append(rep.Benchmarks, fast, ref,
		host("HostEngine_Byte", func() int { return decompressHost(byteDE, false) }),
		// StreamReader_Bit keeps PR-1's name and configuration (default
		// options) so the series stays comparable across BENCH_<n>.json;
		// the _W<n> rows are the parallel pipeline at fixed worker counts.
		host("StreamReader_Bit", func() int { return stream(0) }),
		host("StreamReader_Bit_W1", func() int { return stream(1) }),
		host("StreamReader_Bit_W2", func() int { return stream(2) }),
	)
	if p := runtime.GOMAXPROCS(0); p > 2 {
		rep.Benchmarks = append(rep.Benchmarks,
			host(fmt.Sprintf("StreamReader_Bit_W%d", p), func() int { return stream(p) }))
	}

	// Compression-side scaling: the streaming Writer at fixed worker
	// counts, plus the one-shot encoder as the reference point. The first
	// W1 run cross-checks that the Writer's container is byte-identical to
	// Compress.
	writerCodec := func(workers int) *gompresso.Codec {
		c, err := gompresso.New(
			gompresso.WithVariant(gompresso.VariantBit),
			gompresso.WithDE(gompresso.DEStrict),
			gompresso.WithWorkers(workers),
		)
		if err != nil {
			fatal("writer codec: %v", err)
		}
		return c
	}
	var wbuf bytes.Buffer
	w := writerCodec(1).NewWriter(&wbuf)
	if _, err := w.Write(wiki); err != nil {
		fatal("writer: %v", err)
	}
	if err := w.Close(); err != nil {
		fatal("writer: %v", err)
	}
	if !bytes.Equal(wbuf.Bytes(), bitDE) {
		fatal("Writer output differs from one-shot Compress")
	}
	wbuf = bytes.Buffer{}
	writer := func(workers int) int {
		w := writerCodec(workers).NewWriter(io.Discard)
		if _, err := w.Write(wiki); err != nil {
			fatal("writer: %v", err)
		}
		if err := w.Close(); err != nil {
			fatal("writer: %v", err)
		}
		return len(wiki)
	}
	oneShot := func() int {
		if _, _, err := gompresso.Compress(wiki, gompresso.Options{
			Variant: gompresso.VariantBit, DE: gompresso.DEStrict,
		}); err != nil {
			fatal("compress: %v", err)
		}
		return len(wiki)
	}
	rep.Benchmarks = append(rep.Benchmarks,
		host("CompressOneShot_Bit", oneShot),
		host("Writer_Bit_W1", func() int { return writer(1) }),
		host("Writer_Bit_W2", func() int { return writer(2) }),
	)
	if p := runtime.GOMAXPROCS(0); p > 2 {
		rep.Benchmarks = append(rep.Benchmarks,
			host(fmt.Sprintf("Writer_Bit_W%d", p), func() int { return writer(p) }))
	}

	// Foreign-format serving: the same corpus as a stdlib-compressed .gz,
	// decoded by the two-pass deflate pipeline at fixed worker counts,
	// against the single-threaded compress/gzip baseline. The first run
	// cross-checks byte identity with the stdlib decoder.
	var gzBuf bytes.Buffer
	gzw := gzip.NewWriter(&gzBuf)
	if _, err := gzw.Write(wiki); err != nil {
		fatal("gzip: %v", err)
	}
	if err := gzw.Close(); err != nil {
		fatal("gzip: %v", err)
	}
	gzData := gzBuf.Bytes()
	// Both sides materialize the full output and read gzData in place
	// (Codec.Decompress hands the slice to the decoder directly, where
	// NewReader on an io.Reader would buffer a copy), so the comparison
	// measures the decoders, not allocation artifacts.
	gzStdlib := func() int {
		r, err := gzip.NewReader(bytes.NewReader(gzData))
		if err != nil {
			fatal("stdlib gunzip: %v", err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			fatal("stdlib gunzip: %v", err)
		}
		return len(out)
	}
	gzOurs := func(workers int) int {
		c, err := gompresso.New(gompresso.WithFormat(gompresso.FormatGzip), gompresso.WithWorkers(workers))
		if err != nil {
			fatal("gzip codec: %v", err)
		}
		out, _, err := c.Decompress(gzData)
		if err != nil {
			fatal("gzip decompress: %v", err)
		}
		return len(out)
	}
	{
		c, err := gompresso.New(gompresso.WithFormat(gompresso.FormatGzip), gompresso.WithWorkers(2))
		if err != nil {
			fatal("gzip codec: %v", err)
		}
		out, _, err := c.Decompress(gzData)
		if err != nil || !bytes.Equal(out, wiki) {
			fatal("gzip decode differs from stdlib (%v)", err)
		}
	}
	rep.Benchmarks = append(rep.Benchmarks,
		host("GzipStdlib", gzStdlib),
		host("Gzip_Bit_W1", func() int { return gzOurs(1) }),
		host("Gzip_Bit_W2", func() int { return gzOurs(2) }),
		host("Gzip_Bit_WMAX", func() int { return gzOurs(runtime.GOMAXPROCS(0)) }),
	)

	// Serving layer: range GETs against an in-process `serve` daemon over
	// an indexed container. Cold builds a fresh server (empty cache) per
	// iteration and sweeps the whole object in 1 MiB ranges — every block
	// decodes once, through cache misses. Hot re-requests one range from
	// a warmed server, so blocks come from the decoded-block cache; its
	// row also records the cache hit rate. Single-run, like everything in
	// this file — never concurrently with tests on a small runner.
	serveDir, err := os.MkdirTemp("", "gompresso-bench-serve")
	if err != nil {
		fatal("serve dir: %v", err)
	}
	defer os.RemoveAll(serveDir)
	idxComp, _, err := gompresso.Compress(wiki, gompresso.Options{
		Variant: gompresso.VariantBit, DE: gompresso.DEStrict, Index: true,
	})
	if err != nil {
		fatal("serve compress: %v", err)
	}
	if err := os.WriteFile(filepath.Join(serveDir, "corpus.gpz"), idxComp, 0o644); err != nil {
		fatal("serve fixture: %v", err)
	}
	newServerOpts := func(opts server.Options) (*server.Server, *httptest.Server) {
		opts.Root = serveDir
		opts.CacheBytes = 256 << 20
		s, err := server.New(opts)
		if err != nil {
			fatal("server: %v", err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}
	// The default serving rows run with full observability — tracing on
	// and the access log rendering to io.Discard — so the headline
	// numbers include the cost every production request pays.
	newServer := func() (*server.Server, *httptest.Server) {
		return newServerOpts(server.Options{AccessLog: io.Discard})
	}
	rangeGet := func(base, name string, off, n int) int {
		req, err := http.NewRequest(http.MethodGet, base+"/"+name, nil)
		if err != nil {
			fatal("serve request: %v", err)
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal("serve get: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusPartialContent {
			fatal("serve get: status %d", resp.StatusCode)
		}
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			fatal("serve body: %v", err)
		}
		return len(got)
	}
	const rangeLen = 1 << 20
	{ // byte-identity cross-check before timing anything
		_, ts := newServer()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/corpus.gpz", nil)
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", 12345, 12345+rangeLen-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal("serve check: %v", err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ts.Close()
		if !bytes.Equal(got, wiki[12345:12345+rangeLen]) {
			fatal("served range differs from corpus")
		}
	}
	cold := host("ServeRange_Cold", func() int {
		_, ts := newServer()
		defer ts.Close()
		total := 0
		for off := 0; off < len(wiki); off += rangeLen {
			n := rangeLen
			if off+n > len(wiki) {
				n = len(wiki) - off
			}
			total += rangeGet(ts.URL, "corpus.gpz", off, n)
		}
		return total
	})
	hotSrv, hotTS := newServer()
	rangeGet(hotTS.URL, "corpus.gpz", 0, rangeLen) // warm the cache
	hot := host("ServeRange_Hot", func() int {
		total := 0
		for i := 0; i < 8; i++ {
			total += rangeGet(hotTS.URL, "corpus.gpz", 0, rangeLen)
		}
		return total
	})
	hot.HitRate = hotSrv.Codec().CacheStats().HitRate()
	hotTS.Close()
	// Same hot sweep with observability disabled: the delta between this
	// row and ServeRange_Hot is the whole tracing + access-log overhead
	// (budget: within 3% on the hot path).
	_, noObsTS := newServerOpts(server.Options{NoTrace: true})
	rangeGet(noObsTS.URL, "corpus.gpz", 0, rangeLen) // warm the cache
	hotNoObs := host("ServeRange_Hot_NoObs", func() int {
		total := 0
		for i := 0; i < 8; i++ {
			total += rangeGet(noObsTS.URL, "corpus.gpz", 0, rangeLen)
		}
		return total
	})
	noObsTS.Close()
	rep.Benchmarks = append(rep.Benchmarks, cold, hot, hotNoObs)

	// Foreign random access (PR 7): the .gz corpus behind a checkpoint
	// seek index. GzipReadAt drives the index-backed ReaderAt directly —
	// a sweep of 64 KiB reads that decodes each ~1 MiB chunk once.
	gzIdx := func() *gompresso.SeekIndex {
		c, err := gompresso.New()
		if err != nil {
			fatal("gz index codec: %v", err)
		}
		r, err := c.NewReader(bytes.NewReader(gzData))
		if err != nil {
			fatal("gz index reader: %v", err)
		}
		defer r.Close()
		if !r.CollectForeignIndex(1 << 20) {
			fatal("CollectForeignIndex refused the bench gzip")
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			fatal("gz index decode: %v", err)
		}
		return r.ForeignIndex()
	}()
	gzReadAt := host("GzipReadAt", func() int {
		c, err := gompresso.New(gompresso.WithCache(256 << 20))
		if err != nil {
			fatal("gz readat codec: %v", err)
		}
		ra, err := c.NewReaderAtWithIndex(bytes.NewReader(gzData), int64(len(gzData)), gzIdx)
		if err != nil {
			fatal("gz readat: %v", err)
		}
		buf := make([]byte, 64<<10)
		total := 0
		for off := 0; off+len(buf) <= len(wiki); off += 256 << 10 {
			n, err := ra.ReadAt(buf, int64(off))
			if err != nil && err != io.EOF {
				fatal("gz readat at %d: %v", off, err)
			}
			if off == 0 && !bytes.Equal(buf[:n], wiki[:n]) {
				fatal("gz readat bytes differ")
			}
			total += n
		}
		return total
	})
	rep.Benchmarks = append(rep.Benchmarks, gzReadAt)

	// Ranged GETs on the served .gz. Cold: fresh in-memory server, one
	// range — the request pays the full counting decode that captures the
	// index (the PR 5 sequential-fallback cost, paid once instead of per
	// request). Warm: fresh server loading a persisted sidecar, sweeping
	// the object in 1 MiB ranges through chunk decodes. Hot: repeated
	// range on a warmed server, served from the decoded-block cache.
	if err := os.WriteFile(filepath.Join(serveDir, "corpus.txt.gz"), gzData, 0o644); err != nil {
		fatal("gz fixture: %v", err)
	}
	gzIdxDir, err := os.MkdirTemp("", "gompresso-bench-gzidx")
	if err != nil {
		fatal("gz index dir: %v", err)
	}
	defer os.RemoveAll(gzIdxDir)
	newGzServer := func(indexDir string) (*server.Server, *httptest.Server) {
		s, err := server.New(server.Options{
			Root: serveDir, CacheBytes: 256 << 20, IndexDir: indexDir, IndexSpacing: 1 << 20, Logf: nil,
		})
		if err != nil {
			fatal("gz server: %v", err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}
	gzCold := host("ServeRangeGz_Cold", func() int {
		_, ts := newGzServer("")
		defer ts.Close()
		return rangeGet(ts.URL, "corpus.txt.gz", 12345, rangeLen)
	})
	{ // build the persistent sidecar warm/hot servers will load
		_, ts := newGzServer(gzIdxDir)
		rangeGet(ts.URL, "corpus.txt.gz", 0, 4096)
		ts.Close()
	}
	gzWarm := host("ServeRangeGz_Warm", func() int {
		_, ts := newGzServer(gzIdxDir)
		defer ts.Close()
		total := 0
		for off := 0; off < len(wiki); off += rangeLen {
			n := rangeLen
			if off+n > len(wiki) {
				n = len(wiki) - off
			}
			total += rangeGet(ts.URL, "corpus.txt.gz", off, n)
		}
		return total
	})
	gzHotSrv, gzHotTS := newGzServer(gzIdxDir)
	rangeGet(gzHotTS.URL, "corpus.txt.gz", 0, rangeLen) // warm the cache
	gzHot := host("ServeRangeGz_Hot", func() int {
		total := 0
		for i := 0; i < 8; i++ {
			total += rangeGet(gzHotTS.URL, "corpus.txt.gz", 0, rangeLen)
		}
		return total
	})
	gzHot.HitRate = gzHotSrv.Codec().CacheStats().HitRate()
	gzHotTS.Close()
	rep.Benchmarks = append(rep.Benchmarks, gzCold, gzWarm, gzHot)

	// Serving latency under open-loop load (PR 9): a seeded zipfian run
	// from internal/loadgen against a fresh self-hosted server, reported
	// per phase. Unlike the throughput rows above, these are quantiles of
	// individual request latencies measured from each request's intended
	// arrival instant — queueing delay included. The run then cross-checks
	// the harness p99 against the server's own /metrics histogram; both
	// are bucket upper bounds, so they must land in the same or an
	// adjacent sub-bucket of the server's coarser 4-per-octave histogram.
	{
		ltDir, err := os.MkdirTemp("", "gompresso-bench-load")
		if err != nil {
			fatal("load dir: %v", err)
		}
		defer os.RemoveAll(ltDir)
		const ltSeed = 9
		spec := loadgen.CorpusSpec{Objects: 16, MinSize: 64 << 10, MaxSize: 1 << 20, Seed: ltSeed}
		ltRPS, ltDur := 40.0, 15*time.Second
		if *short {
			spec.Objects, spec.MaxSize = 8, 256<<10
			ltRPS, ltDur = 25.0, 6*time.Second
		}
		objs, err := loadgen.BuildCorpus(ltDir, spec)
		if err != nil {
			fatal("load corpus: %v", err)
		}
		ltSrv, err := server.New(server.Options{Root: ltDir, CacheBytes: 64 << 20, Logf: nil})
		if err != nil {
			fatal("load server: %v", err)
		}
		ltTS := httptest.NewServer(ltSrv.Handler())
		// Decode-heavy mix: ranges large enough that decode time dominates
		// per-request HTTP overhead, so harness service latency and the
		// server's handler-time histogram describe the same quantity.
		ltRep, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  ltTS.URL,
			Objects:  objs,
			RPS:      ltRPS,
			Duration: ltDur,
			ZipfS:    1.1,
			Ranges: []loadgen.RangeClass{
				{Weight: 0.7, Min: 128 << 10, Max: 512 << 10},
				{Weight: 0.3, Min: 512 << 10, Max: 1 << 20},
			},
			Deadline: 5 * time.Second,
			Seed:     ltSeed,
		})
		if err != nil {
			fatal("load run: %v", err)
		}
		for _, p := range ltRep.Phases {
			name := "ServeLatency_" + string(p.Phase[0]-'a'+'A') + p.Phase[1:]
			rep.Benchmarks = append(rep.Benchmarks, result{
				Name:      name,
				P50Ms:     p.P50Ms,
				P95Ms:     p.P95Ms,
				P99Ms:     p.P99Ms,
				ErrorRate: p.ErrorRate,
				ShedRate:  p.ShedRate,
			})
		}

		ltTS.Close()

		// Agreement run: a separate decode-heavy, *closed-loop* workload
		// against a fresh server. This is a calibration experiment, not
		// an SLO measurement: the question is whether the server's
		// histogram and the harness's service clock agree on the same
		// requests. Under open-loop concurrency on a 1-vCPU box the tail
		// requests are by construction the most contended ones, where
		// pre-handler goroutine scheduling and post-handler socket-drain
		// time accrue only on the client clock — measured divergence of
		// 1.3-1.4x at p99 regardless of mix. Serial requests make both
		// clocks bracket the same isolated work; the residual gap (request
		// parse, final kernel-buffered drain) stays well inside one
		// sub-bucket when decode dominates, hence the multi-MB ranges.
		agDir, err := os.MkdirTemp("", "gompresso-bench-agree")
		if err != nil {
			fatal("agree dir: %v", err)
		}
		defer os.RemoveAll(agDir)
		agSpec := loadgen.CorpusSpec{Objects: 5, MinSize: 6 << 20, MaxSize: 8 << 20, Seed: ltSeed}
		agRPS, agDur := 15.0, 12*time.Second
		agMix := []loadgen.RangeClass{{Weight: 1, Min: 2 << 20, Max: 6 << 20}}
		if *short {
			// Same object and range sizes as the full run — the residual
			// clock gap is roughly constant, so shrinking the decode would
			// inflate it relative to the bucket width — just fewer of them.
			agSpec.Objects = 4
			agDur = 8 * time.Second
		}
		agObjs, err := loadgen.BuildCorpus(agDir, agSpec)
		if err != nil {
			fatal("agree corpus: %v", err)
		}
		agSrv, err := server.New(server.Options{Root: agDir, CacheBytes: 64 << 20, Logf: nil})
		if err != nil {
			fatal("agree server: %v", err)
		}
		agTS := httptest.NewServer(agSrv.Handler())
		agRep, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  agTS.URL,
			Objects:  agObjs,
			RPS:      agRPS,
			Duration: agDur,
			ZipfS:    1.1,
			Ranges:   agMix,
			Deadline: 10 * time.Second,
			Seed:     ltSeed,
			Closed:   true,
		})
		if err != nil {
			fatal("agree run: %v", err)
		}
		metricsP99 := func() float64 {
			resp, err := http.Get(agTS.URL + "/metrics?format=json")
			if err != nil {
				fatal("metrics: %v", err)
			}
			defer resp.Body.Close()
			var m map[string]float64
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				fatal("metrics decode: %v", err)
			}
			return m["request_latency_ns_p99"]
		}()
		agTS.Close()
		// Compare service latency (clocked from the actual send), not the
		// open-loop headline number: dispatch lag is real workload-visible
		// queueing but the server's histogram cannot see it.
		harnessNs := agRep.Overall.ServiceP99Ms * 1e6
		bLo, bHi := perf.BucketBounds(int64(metricsP99) - 1)
		apart := math.Abs(math.Log(harnessNs/metricsP99)) / math.Log(float64(bHi)/float64(bLo))
		rep.ServeLatency = &serveLatencySummary{
			RPS:             agRPS,
			DurationS:       agDur.Seconds(),
			Seed:            ltSeed,
			HarnessP99Ms:    agRep.Overall.ServiceP99Ms,
			MetricsP99Ms:    metricsP99 / 1e6,
			SubBucketsApart: apart,
			Agree:           apart <= 1,
		}
		if !rep.ServeLatency.Agree {
			// Recorded, not fatal: on a loaded 1-vCPU runner the harness
			// clock legitimately includes client-side overhead the server
			// histogram cannot see.
			fmt.Fprintf(os.Stderr, "bench: WARNING: harness p99 %.2fms vs metrics p99 %.2fms (%.2f sub-buckets apart)\n",
				rep.ServeLatency.HarnessP99Ms, rep.ServeLatency.MetricsP99Ms, apart)
		}
	}

	rep.HostFastPath.SeedBaselineMBps = seedHostBitMBps
	rep.HostFastPath.ReferenceMBps = ref.HostGBps * 1000
	rep.HostFastPath.OptimizedMBps = fast.HostGBps * 1000
	rep.HostFastPath.SpeedupVsSeed = rep.HostFastPath.OptimizedMBps / seedHostBitMBps

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal("write: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, r := range rep.Benchmarks {
		switch {
		case r.SimGBps > 0:
			fmt.Printf("  %-28s %8.2f sim-GB/s  %6.3f host-GB/s\n", r.Name, r.SimGBps, r.HostGBps)
		case r.HitRate > 0:
			fmt.Printf("  %-28s %28.3f host-GB/s  hit rate %.3f\n", r.Name, r.HostGBps, r.HitRate)
		case r.P99Ms > 0:
			fmt.Printf("  %-28s p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  err %.4f  shed %.4f\n",
				r.Name, r.P50Ms, r.P95Ms, r.P99Ms, r.ErrorRate, r.ShedRate)
		default:
			fmt.Printf("  %-28s %28.3f host-GB/s\n", r.Name, r.HostGBps)
		}
	}
	if sl := rep.ServeLatency; sl != nil {
		fmt.Printf("  serve latency: harness p99 %.2fms vs /metrics p99 %.2fms (agree=%v, %.2f sub-buckets)\n",
			sl.HarnessP99Ms, sl.MetricsP99Ms, sl.Agree, sl.SubBucketsApart)
	}
	fmt.Printf("  host fast path: %.0f MB/s vs %.0f MB/s seed baseline (%.2fx)\n",
		rep.HostFastPath.OptimizedMBps, seedHostBitMBps, rep.HostFastPath.SpeedupVsSeed)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
