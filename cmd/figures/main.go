// Command figures regenerates the paper's evaluation (Figs. 9–14 and the
// quoted scalars). See DESIGN.md for the per-experiment index.
//
// Usage:
//
//	figures                      # all figures, calibrated CPU mode, 32 MiB
//	figures -fig 9a -size 64MiB
//	figures -mode measured       # time the real Go baselines on this host
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gompresso/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure: 9a, 9b, 9c, 11, 12, 13, 14, scalars, ablations, all")
	sizeStr := flag.String("size", "32MiB", "bytes per synthetic dataset (e.g. 8MiB, 128MiB)")
	seed := flag.Uint64("seed", 1, "dataset seed")
	mode := flag.String("mode", "calibrated", "CPU side of figs 13/14: calibrated or measured")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil {
		fail(err)
	}
	cfg := figures.Config{DataSize: size, Seed: *seed}
	switch *mode {
	case "calibrated":
		cfg.Mode = figures.Calibrated
	case "measured":
		cfg.Mode = figures.Measured
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	run := func(name string) {
		switch name {
		case "9a":
			rows, err := figures.Fig9a(cfg)
			check(err)
			fmt.Println(figures.RenderFig9a(rows))
		case "9b":
			rows, err := figures.Fig9b(cfg)
			check(err)
			fmt.Println(figures.RenderFig9b(rows))
		case "9c":
			rows, err := figures.Fig9c(cfg)
			check(err)
			fmt.Println(figures.RenderFig9c(rows))
		case "11":
			rows, err := figures.Fig11(cfg)
			check(err)
			fmt.Println(figures.RenderFig11(rows))
		case "12":
			rows, err := figures.Fig12(cfg)
			check(err)
			fmt.Println(figures.RenderFig12(rows))
		case "13":
			rows, err := figures.Fig13(cfg)
			check(err)
			fmt.Println(figures.RenderFig13(rows))
		case "14":
			rows, err := figures.Fig14(cfg)
			check(err)
			fmt.Println(figures.RenderFig14(rows))
		case "scalars":
			rows, err := figures.Scalars(cfg)
			check(err)
			fmt.Println(figures.RenderScalars(rows))
		case "ablations":
			st, err := figures.AblationStaleness(cfg)
			check(err)
			fmt.Println(figures.RenderAblationStaleness(st))
			dm, err := figures.AblationDEMode(cfg)
			check(err)
			fmt.Println(figures.RenderAblationDEMode(dm))
			sb, err := figures.AblationSubBlocks(cfg)
			check(err)
			fmt.Println(figures.RenderAblationSubBlocks(sb))
			cw, err := figures.AblationCWL(cfg)
			check(err)
			fmt.Println(figures.RenderAblationCWL(cw))
		default:
			fail(fmt.Errorf("unknown figure %q", name))
		}
	}
	fmt.Printf("# Gompresso reproduction — dataset size %s per corpus, %s CPU mode\n\n", *sizeStr, *mode)
	if *fig == "all" {
		for _, name := range []string{"9a", "9b", "9c", "11", "12", "13", "14", "scalars", "ablations"} {
			run(name)
		}
		return
	}
	run(*fig)
}

func parseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	mult := 1
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
