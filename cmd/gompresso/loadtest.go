package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gompresso/internal/fault"
	"gompresso/internal/loadgen"
	"gompresso/internal/server"
)

// loadtestCmd drives open-loop zipfian load against a gompresso serve
// instance and reports per-phase latency quantiles and error rates.
//
// Two targeting modes:
//
//   - `-url http://host:port`: load an already-running server. The
//     corpus must have been materialized on the serving box with the
//     same -objects/-min-size/-max-size/-seed (e.g. by running
//     `gompresso loadtest -root <dir> -build-only` there first); the
//     load box regenerates the object list from the spec alone.
//   - `-root dir` (default): self-host — build the corpus under dir,
//     start an in-process server on 127.0.0.1:0, and load it over real
//     HTTP. One box, zero setup, same code path as production.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	url := fs.String("url", "", "target base URL of a running server ('' = self-host from -root)")
	root := fs.String("root", "", "corpus directory for self-hosted mode ('' = temp dir)")
	buildOnly := fs.Bool("build-only", false, "materialize the corpus under -root and exit (serving-box setup for -url mode)")
	rps := fs.Float64("rps", 50, "open-loop arrival rate, requests/second")
	duration := fs.Duration("duration", 15*time.Second, "run length (split into cold/warm/hot thirds)")
	zipfS := fs.Float64("zipf-s", 1.1, "object popularity exponent (0 = uniform)")
	objects := fs.Int("objects", 32, "corpus object count")
	minSize := fs.String("min-size", "64k", "smallest object (k/m/g suffixes)")
	maxSize := fs.String("max-size", "2m", "largest object")
	ranges := fs.String("ranges", "", "range-size mix, e.g. '50:4k-64k,35:64k-1m,10:1m-4m,5:full' ('' = default mix)")
	deadline := fs.Duration("deadline", 5*time.Second, "per-request deadline (0 disables)")
	closed := fs.Bool("closed", false, "closed-loop calibration mode: one request in flight at a time (clock cross-checks, not SLOs)")
	seed := fs.Uint64("seed", 1, "schedule + corpus seed")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	// Self-hosted server knobs, mirroring `gompresso serve`.
	cacheMB := fs.Int64("cache", 64, "self-host: decoded-block cache budget in MiB")
	maxInFlight := fs.Int("max-inflight", 0, "self-host: max concurrent decoding requests (0 = 4x GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", 5*time.Second, "self-host: limiter queue bound before 503 shed")
	faultSpec := fs.String("fault", "", "self-host DEV ONLY: fault-injection script (see internal/fault)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("loadtest takes flags only")
	}

	mn, err := parseSizeFlag(*minSize)
	if err != nil {
		return fmt.Errorf("-min-size: %w", err)
	}
	mx, err := parseSizeFlag(*maxSize)
	if err != nil {
		return fmt.Errorf("-max-size: %w", err)
	}
	spec := loadgen.CorpusSpec{Objects: *objects, MinSize: mn, MaxSize: mx, Seed: *seed}

	var mix []loadgen.RangeClass
	if *ranges != "" {
		if mix, err = loadgen.ParseRangeMix(*ranges); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var objs []loadgen.Object
	target := *url
	if target == "" || *buildOnly {
		dir := *root
		if dir == "" {
			if *buildOnly {
				return fmt.Errorf("-build-only needs -root")
			}
			tmp, err := os.MkdirTemp("", "gompresso-loadtest-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		fmt.Fprintf(os.Stderr, "loadtest: building %d-object corpus under %s (seed %d)\n", *objects, dir, *seed)
		if objs, err = loadgen.BuildCorpus(dir, spec); err != nil {
			return err
		}
		if *buildOnly {
			fmt.Fprintf(os.Stderr, "loadtest: corpus ready; run with -url against the server serving %s\n", dir)
			return nil
		}

		opts := server.Options{
			Root:        dir,
			CacheBytes:  *cacheMB << 20,
			MaxInFlight: *maxInFlight,
			QueueWait:   *queueWait,
		}
		if *faultSpec != "" {
			script, err := fault.Parse(*faultSpec)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "loadtest: FAULT INJECTION ACTIVE: %s\n", script)
			opts.Source = server.NewFaultSource(server.NewDirSource(dir), script)
		}
		srv, err := server.New(opts)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go hs.Serve(ln)
		defer hs.Close()
		target = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadtest: self-hosted server on %s\n", target)
	} else {
		// Remote mode: the corpus already exists on the serving box;
		// reconstruct the same object list from the spec.
		objs = loadgen.SpecObjects(spec)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  target,
		Objects:  objs,
		RPS:      *rps,
		Duration: *duration,
		ZipfS:    *zipfS,
		Ranges:   mix,
		Deadline: *deadline,
		Seed:     *seed,
		Closed:   *closed,
	})
	if err != nil && rep == nil {
		return err
	}
	mergeSlowestStages(ctx, target, rep.Slowest)

	// Cross-check the harness's ground truth against the server's own
	// histogram: service p99 (clocked from the actual send, so it is the
	// same quantity the handler measures plus transport overhead) vs the
	// exported request_latency_ns_p99.
	out := struct {
		*loadgen.Report
		MetricsP99Ms float64 `json:"metrics_p99_ms,omitempty"`
	}{Report: rep}
	if p99, merr := scrapeMetricsP99(ctx, target); merr == nil && p99 > 0 {
		out.MetricsP99Ms = p99 / 1e6
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Text())
		if out.MetricsP99Ms > 0 {
			fmt.Printf("service p99 %.2fms vs server /metrics p99 %.2fms\n",
				rep.Overall.ServiceP99Ms, out.MetricsP99Ms)
		}
	}
	return err
}

// mergeSlowestStages joins the harness's slowest requests against the
// server's /debug/requests ring by request id and fills in the
// server-side per-stage timings. Best-effort: the ring is finite and
// TTL'd, so a slow request from the cold phase may already be gone, and
// a server running -no-trace has nothing to join against.
func mergeSlowestStages(ctx context.Context, target string, slowest []loadgen.SlowRequest) {
	if len(slowest) == 0 {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/debug/requests?n=64", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var dump struct {
		Requests []struct {
			ID     string           `json:"id"`
			Stages map[string]int64 `json:"stages"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return
	}
	byID := make(map[string]map[string]int64, len(dump.Requests))
	for _, r := range dump.Requests {
		byID[r.ID] = r.Stages
	}
	for i := range slowest {
		if st, ok := byID[slowest[i].ID]; ok && len(st) > 0 {
			slowest[i].StageUs = st
		}
	}
}

func scrapeMetricsP99(ctx context.Context, target string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics?format=json", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	return m["request_latency_ns_p99"], nil
}

func parseSizeFlag(s string) (int64, error) {
	mix, err := loadgen.ParseRangeMix("1:" + s + "-" + s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return mix[0].Min, nil
}
