package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gompresso/internal/buildinfo"
	"gompresso/internal/fault"
	"gompresso/internal/server"
)

// serveCmd runs the HTTP object-serving daemon: every file under -root
// is exposed at its path with Range/If-Range/HEAD semantics over the
// decompressed stream, hot blocks shared through the decoded-block
// cache, and /healthz, /readyz + /metrics for operations. See
// internal/server.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	root := fs.String("root", ".", "directory of objects to serve")
	cacheMB := fs.Int64("cache", 64, "decoded-block cache budget in MiB (0 disables)")
	workers := fs.Int("workers", 0, "decode worker budget shared by all requests (0 = GOMAXPROCS)")
	readahead := fs.Int("readahead", 0, "pipeline readahead in blocks (0 = 2x workers)")
	maxInFlight := fs.Int("max-inflight", 0, "max requests decoding concurrently (0 = 4x GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", 5*time.Second, "max time a request queues on the limiter before a 503 shed (negative = wait forever)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request decode deadline (0 disables)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "rolling per-write deadline on response bodies (0 disables)")
	quarTTL := fs.Duration("quarantine-ttl", 30*time.Second, "how long a corrupt object fails fast with 502 before re-probing (negative disables)")
	indexDir := fs.String("index-dir", "", "persist .gz/.zz seek-index sidecars here after the first decode ('' = in-memory only; use -root to keep them beside the objects)")
	indexSpacing := fs.Int64("index-spacing", 0, "decompressed bytes between seek-index checkpoints (0 = ~1 MiB default)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server full-request read timeout")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server keep-alive idle timeout")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace period for in-flight responses")
	drainWait := fs.Duration("drain-wait", 0, "pause between flipping /readyz unready and starting shutdown (lets load balancers catch up)")
	faultSpec := fs.String("fault", "", "DEV ONLY: fault-injection script, e.g. '*.gz:eio@4096;big*:latency=50ms' (see internal/fault)")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	accessLog := fs.String("access-log", "stderr", "structured JSON access log destination: stderr, off, or a file path (appended)")
	noTrace := fs.Bool("no-trace", false, "disable request tracing, the access log, and /debug/requests")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener; '' disables)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes flags only")
	}
	logger := log.New(os.Stderr, "gompresso-serve ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	var accessW io.Writer
	switch *accessLog {
	case "off", "":
	case "stderr":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("access-log: %w", err)
		}
		defer f.Close()
		accessW = f
	}
	opts := server.Options{
		Root:           *root,
		CacheBytes:     *cacheMB << 20,
		Workers:        *workers,
		Readahead:      *readahead,
		MaxInFlight:    *maxInFlight,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		WriteTimeout:   *writeTimeout,
		QuarantineTTL:  *quarTTL,
		IndexDir:       *indexDir,
		IndexSpacing:   *indexSpacing,
		Logf:           logf,
		AccessLog:      accessW,
		NoTrace:        *noTrace,
	}
	if *faultSpec != "" {
		script, err := fault.Parse(*faultSpec)
		if err != nil {
			return err
		}
		logger.Printf("FAULT INJECTION ACTIVE: %s", script)
		opts.Source = server.NewFaultSource(server.NewDirSource(*root), script)
	}
	s, err := server.New(opts)
	if err != nil {
		return err
	}
	// Listen explicitly (rather than ListenAndServe) so "listening on"
	// is printed only once the port is actually bound — the smoke test's
	// readiness signal.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Profiling stays off the serving listener: a different port means a
	// firewall can expose one without the other, and a runaway profile
	// download cannot occupy a serving connection slot.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof-addr: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Printf("pprof listening on http://%s/debug/pprof/", pln.Addr())
		go func() { _ = http.Serve(pln, pmux) }()
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	logger.Printf("%s", buildinfo.Get().String())
	logger.Printf("listening on http://%s root=%s cache=%dMiB", ln.Addr(), *root, *cacheMB)

	// Graceful shutdown: flip /readyz so load balancers stop routing,
	// wait out -drain-wait for them to notice, stop accepting, give
	// in-flight responses the -drain grace period, then cut them off.
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%v: draining", sig)
		s.BeginDrain()
		if *drainWait > 0 {
			time.Sleep(*drainWait)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
