package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gompresso/internal/server"
)

// serveCmd runs the HTTP object-serving daemon: every file under -root
// is exposed at its path with Range/If-Range/HEAD semantics over the
// decompressed stream, hot blocks shared through the decoded-block
// cache, and /healthz + /metrics for operations. See internal/server.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	root := fs.String("root", ".", "directory of objects to serve")
	cacheMB := fs.Int64("cache", 64, "decoded-block cache budget in MiB (0 disables)")
	workers := fs.Int("workers", 0, "decode worker budget shared by all requests (0 = GOMAXPROCS)")
	readahead := fs.Int("readahead", 0, "pipeline readahead in blocks (0 = 2x workers)")
	maxInFlight := fs.Int("max-inflight", 0, "max requests decoding concurrently (0 = 4x GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes flags only")
	}
	logger := log.New(os.Stderr, "gompresso-serve ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	s, err := server.New(server.Options{
		Root:        *root,
		CacheBytes:  *cacheMB << 20,
		Workers:     *workers,
		Readahead:   *readahead,
		MaxInFlight: *maxInFlight,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	// Listen explicitly (rather than ListenAndServe) so "listening on"
	// is printed only once the port is actually bound — the smoke test's
	// readiness signal.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	logger.Printf("listening on http://%s root=%s cache=%dMiB", ln.Addr(), *root, *cacheMB)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, give
	// in-flight responses a grace period, then cut them off.
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
