package main

import (
	"strings"
	"testing"

	"gompresso/internal/buildinfo"
)

func TestBuildDescription(t *testing.T) {
	desc := buildinfo.Get().String()
	if !strings.HasPrefix(desc, "gompresso ") {
		t.Errorf("buildinfo = %q, want gompresso prefix", desc)
	}
	if !strings.Contains(desc, "go1") {
		t.Errorf("buildinfo = %q, want a Go toolchain version", desc)
	}
	if err := versionCmd(nil); err != nil {
		t.Errorf("versionCmd: %v", err)
	}
}
