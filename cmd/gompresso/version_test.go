package main

import (
	"strings"
	"testing"
)

func TestBuildDescription(t *testing.T) {
	desc := buildDescription()
	if !strings.HasPrefix(desc, "gompresso ") {
		t.Errorf("buildDescription() = %q, want gompresso prefix", desc)
	}
	if !strings.Contains(desc, "go1") {
		t.Errorf("buildDescription() = %q, want a Go toolchain version", desc)
	}
	if err := versionCmd(nil); err != nil {
		t.Errorf("versionCmd: %v", err)
	}
}
