package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gompresso"
	"gompresso/internal/buildinfo"
	"gompresso/internal/format"
	"gompresso/internal/gzidx"
)

// statJSON is the machine-readable shape of `gompresso stat -json`.
type statJSON struct {
	Tool       string  `json:"tool,omitempty"` // build identity of the binary that produced this
	Format     string  `json:"format"`
	CompSize   int64   `json:"compressed_size"`
	RawSize    int64   `json:"raw_size,omitempty"`
	Ratio      float64 `json:"ratio,omitempty"`
	Variant    string  `json:"variant,omitempty"`
	DEMode     string  `json:"de_mode,omitempty"`
	Window     uint32  `json:"window,omitempty"`
	BlockSize  uint32  `json:"block_size,omitempty"`
	Blocks     uint32  `json:"blocks,omitempty"`
	Index      bool    `json:"index"`
	CWL        uint8   `json:"cwl,omitempty"`
	SeqsPerSub uint16  `json:"seqs_per_sub,omitempty"`
	MinBlockC  int64   `json:"min_block_comp,omitempty"`
	AvgBlockC  float64 `json:"avg_block_comp,omitempty"`
	MaxBlockC  int64   `json:"max_block_comp,omitempty"`

	// Foreign (.gz/.zz) fields, filled from a seek-index sidecar when a
	// fresh one sits beside the file.
	Members     int     `json:"members,omitempty"`
	Sidecar     string  `json:"sidecar,omitempty"` // none | valid | invalid
	Checkpoints int     `json:"checkpoints,omitempty"`
	AvgSpacing  float64 `json:"avg_checkpoint_spacing,omitempty"`
}

// statCmd prints container metadata without decompressing: the header
// fields, whether an index trailer is present, and the per-block
// compressed-size spread (the serving layer's cache granularity).
// Foreign formats report what the framing alone reveals.
func statCmd(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs <in>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	st := statJSON{CompSize: int64(len(data))}
	form := gompresso.DetectFormat(data)
	st.Format = form.String()
	switch form {
	case gompresso.FormatGompresso:
		// Full validating parse — stat doubles as an integrity check.
		f, err := format.ParseFile(data)
		if err != nil {
			return err
		}
		h := f.Header
		st.RawSize = int64(h.RawSize)
		if st.RawSize > 0 {
			st.Ratio = float64(st.RawSize) / float64(len(data))
		}
		st.Variant = h.Variant.String()
		st.DEMode = fmt.Sprint(h.DEMode)
		st.Window = h.Window
		st.BlockSize = h.BlockSize
		st.Blocks = h.NumBlocks
		if h.Variant == format.VariantBit {
			st.CWL = h.CWL
			st.SeqsPerSub = h.SeqsPerSub
		}
		if _, err := format.ReadIndexAt(bytes.NewReader(data), int64(len(data)), h); err == nil {
			st.Index = true
		}
		if idx, err := format.BuildIndex(data, h); err == nil && idx.NumBlocks() > 0 {
			min, max, sum := int64(1<<62), int64(0), int64(0)
			for i := 0; i < idx.NumBlocks(); i++ {
				n := idx.Offsets[i+1] - idx.Offsets[i]
				sum += n
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			st.MinBlockC, st.MaxBlockC = min, max
			st.AvgBlockC = float64(sum) / float64(idx.NumBlocks())
		}
	case gompresso.FormatGzip, gompresso.FormatZlib:
		// Framing alone hides the raw size; a fresh sidecar beside the
		// file reveals it (and the random-access geometry) for free.
		st.Sidecar = "none"
		if fst, err := os.Stat(fs.Arg(0)); err == nil {
			idx, err := gzidx.LoadFile(fs.Arg(0)+gzidx.Ext, fst.Size(), fst.ModTime())
			switch {
			case err == nil:
				st.Sidecar = "valid"
				st.RawSize = idx.RawSize
				if len(data) > 0 {
					st.Ratio = float64(st.RawSize) / float64(len(data))
				}
				st.Members = idx.Members
				st.Checkpoints = idx.NumChunks()
				if n := idx.NumChunks(); n > 0 {
					st.AvgSpacing = float64(idx.RawSize) / float64(n)
				}
			case !os.IsNotExist(err):
				st.Sidecar = "invalid"
			}
		}
	case gompresso.FormatAuto:
		return fmt.Errorf("%s: unrecognized format", fs.Arg(0))
	}

	if *asJSON {
		st.Tool = buildinfo.Get().String()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&st)
	}
	fmt.Printf("format       %s\n", st.Format)
	fmt.Printf("comp size    %d\n", st.CompSize)
	if form != gompresso.FormatGompresso {
		if st.Sidecar != "valid" {
			fmt.Printf("raw size     unknown (foreign stream; `gompresso index` to measure)\n")
			fmt.Printf("sidecar      %s\n", st.Sidecar)
			return nil
		}
		fmt.Printf("raw size     %d\n", st.RawSize)
		fmt.Printf("ratio        %.3f\n", st.Ratio)
		fmt.Printf("members      %d\n", st.Members)
		fmt.Printf("sidecar      valid\n")
		fmt.Printf("checkpoints  %d (avg spacing %.0f bytes)\n", st.Checkpoints, st.AvgSpacing)
		return nil
	}
	fmt.Printf("raw size     %d\n", st.RawSize)
	fmt.Printf("ratio        %.3f\n", st.Ratio)
	fmt.Printf("variant      %s\n", st.Variant)
	fmt.Printf("DE mode      %s\n", st.DEMode)
	fmt.Printf("window       %d\n", st.Window)
	fmt.Printf("block size   %d\n", st.BlockSize)
	fmt.Printf("blocks       %d\n", st.Blocks)
	fmt.Printf("index        %v\n", st.Index)
	if st.CWL != 0 {
		fmt.Printf("CWL          %d\n", st.CWL)
		fmt.Printf("seqs/sub     %d\n", st.SeqsPerSub)
	}
	if st.Blocks > 0 {
		fmt.Printf("block comp   min %d / avg %.0f / max %d\n", st.MinBlockC, st.AvgBlockC, st.MaxBlockC)
	}
	return nil
}
