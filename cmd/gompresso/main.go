// Command gompresso compresses and decompresses files in the Gompresso
// format (paper Fig. 3), and decompresses foreign gzip/zlib streams
// through the parallel two-pass deflate pipeline.
//
// Usage:
//
//	gompresso compress   [flags] <in> <out>   ("-" streams stdin/stdout)
//	gompresso decompress [flags] <in> <out>
//	gompresso cat        [flags] <in>     (stream a range to stdout)
//	gompresso info       <in>
//	gompresso stat       [-json] <in>     (container metadata, no decode)
//	gompresso verify     [flags] <in>     (compress+decompress in memory)
//	gompresso index      [flags] <in>     (build a .gzx seek-index sidecar for a .gz/.zz)
//	gompresso serve      [flags]          (HTTP range server over -root)
//	gompresso loadtest   [flags]          (open-loop latency load harness against serve)
//	gompresso version    [-v]             (build metadata from the embedded build info)
//
// compress streams its input through the parallel gompresso.Writer, so
// arbitrarily large inputs (including pipes) compress in bounded memory.
// decompress and cat sniff their input: Gompresso containers take the
// native block-parallel path, .gz/.zz files the deflate pipeline
// (`gompresso cat file.gz` is a parallel `gzip -dc`; -offset/-length
// require the native container's index).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gompresso"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compress":
		err = compressCmd(args)
	case "decompress":
		err = decompressCmd(args)
	case "cat":
		err = catCmd(args)
	case "info":
		err = infoCmd(args)
	case "stat":
		err = statCmd(args)
	case "verify":
		err = verifyCmd(args)
	case "index":
		err = indexCmd(args)
	case "serve":
		err = serveCmd(args)
	case "loadtest":
		err = loadtestCmd(args)
	case "version":
		err = versionCmd(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gompresso:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gompresso {compress|decompress|cat|info|stat|verify|index|serve|loadtest} [flags] <in> [out]")
	os.Exit(2)
}

func compressFlags(fs *flag.FlagSet) func() (gompresso.Options, error) {
	variant := fs.String("variant", "bit", "entropy coding: bit (Huffman) or byte (LZ4-style)")
	blockKB := fs.Int("block", 256, "data block size in KiB")
	window := fs.Int("window", 8<<10, "LZ77 sliding window in bytes")
	de := fs.String("de", "strict", "dependency elimination: off, strict, lit")
	cwl := fs.Int("cwl", 10, "Huffman codeword length limit (bit variant)")
	subSeqs := fs.Int("subseqs", 16, "sequences per sub-block (bit variant)")
	index := fs.Bool("index", false, "append an index trailer for fast seeking")
	return func() (gompresso.Options, error) {
		o := gompresso.Options{
			BlockSize:  *blockKB << 10,
			Window:     *window,
			CWL:        *cwl,
			SeqsPerSub: *subSeqs,
			Index:      *index,
		}
		switch *variant {
		case "bit":
			o.Variant = gompresso.VariantBit
		case "byte":
			o.Variant = gompresso.VariantByte
		default:
			return o, fmt.Errorf("unknown variant %q", *variant)
		}
		switch *de {
		case "off":
			o.DE = gompresso.DEOff
		case "strict":
			o.DE = gompresso.DEStrict
		case "lit":
			o.DE = gompresso.DELit
		default:
			return o, fmt.Errorf("unknown DE mode %q", *de)
		}
		return o, nil
	}
}

func decompressFlags(fs *flag.FlagSet) func() (gompresso.DecompressOptions, error) {
	engine := fs.String("engine", "device", "engine: device (simulated GPU) or host")
	strategy := fs.String("strategy", "auto", "back-reference strategy: auto, sc, mrr, de")
	pcie := fs.String("pcie", "none", "transfer accounting: none, in, inout")
	return func() (gompresso.DecompressOptions, error) {
		var o gompresso.DecompressOptions
		switch *engine {
		case "device":
			o.Engine = gompresso.EngineDevice
		case "host":
			o.Engine = gompresso.EngineHost
		default:
			return o, fmt.Errorf("unknown engine %q", *engine)
		}
		switch *strategy {
		case "auto", "mrr":
			o.Strategy = gompresso.MRR
		case "sc":
			o.Strategy = gompresso.SC
		case "de":
			o.Strategy = gompresso.DE
		default:
			return o, fmt.Errorf("unknown strategy %q", *strategy)
		}
		switch *pcie {
		case "none":
			o.PCIe = gompresso.PCIeNone
		case "in":
			o.PCIe = gompresso.PCIeIn
		case "inout":
			o.PCIe = gompresso.PCIeInOut
		default:
			return o, fmt.Errorf("unknown pcie mode %q", *pcie)
		}
		return o, nil
	}
}

// compressCmd streams the input through the parallel Writer: the source is
// read one block at a time (never whole-file), blocks compress concurrently
// on -workers goroutines, and the container streams to the output file with
// the header backpatched at the end.
func compressCmd(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	opts := compressFlags(fs)
	workers := fs.Int("workers", 0, "concurrent block compressions (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compress needs <in> <out>")
	}
	o, err := opts()
	if err != nil {
		return err
	}
	c, err := gompresso.New(gompresso.WithCompressOptions(o), gompresso.WithWorkers(*workers))
	if err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Compress into a temp file next to the destination and rename on
	// success, so a mid-stream failure never truncates or corrupts a
	// pre-existing output file.
	out := io.Writer(os.Stdout)
	var tmp *os.File
	if name := fs.Arg(1); name != "-" {
		f, err := os.CreateTemp(filepath.Dir(name), filepath.Base(name)+".tmp-*")
		if err != nil {
			return err
		}
		tmp = f
		out = f
		defer func() {
			if tmp != nil { // still set: we failed before the rename
				tmp.Close()
				os.Remove(tmp.Name())
			}
		}()
	}
	w := c.NewWriter(out)
	if _, err := io.Copy(w, in); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if tmp != nil {
		if err := tmp.Chmod(0o644); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), fs.Arg(1)); err != nil {
			return err
		}
		tmp = nil
	}
	stats := w.Stats()
	fmt.Fprintf(os.Stderr, "%d -> %d bytes  ratio %.3f  %.1f MB/s  %d blocks  %d sequences\n",
		stats.RawSize, stats.CompSize, stats.Ratio, stats.Speed/1e6, stats.Blocks, stats.Seqs)
	return nil
}

func decompressCmd(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	opts := decompressFlags(fs)
	workers := fs.Int("workers", 0, "concurrent decodes for foreign formats (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("decompress needs <in> <out>")
	}
	comp, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	// Foreign inputs (gzip/zlib, sniffed by magic) decode through the
	// codec's parallel host pipeline; only native containers reach the
	// engine/strategy machinery below. Routing is by magic bytes, not by
	// parse success, so a corrupt native container still surfaces its own
	// error under the flags the user selected.
	if gompresso.DetectFormat(comp) != gompresso.FormatGompresso {
		c, err := gompresso.New(gompresso.WithWorkers(*workers))
		if err != nil {
			return err
		}
		out, stats, err := c.Decompress(comp)
		if err != nil {
			return err
		}
		if err := os.WriteFile(fs.Arg(1), out, 0o644); err != nil {
			return err
		}
		fmt.Printf("%d bytes  host %.3f ms\n", stats.RawSize, stats.HostSeconds*1e3)
		return nil
	}
	o, err := opts()
	if err != nil {
		return err
	}
	// auto strategy: DE streams can use the single-round strategy.
	if h, err := gompresso.Info(comp); err == nil && h.DEMode != gompresso.DEOff && o.Strategy == gompresso.MRR {
		o.Strategy = gompresso.DE
	}
	out, stats, err := gompresso.Decompress(comp, o)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), out, 0o644); err != nil {
		return err
	}
	if stats.SimSeconds > 0 {
		fmt.Printf("%d bytes  simulated %.3f ms (%.2f GB/s device)  host %.3f ms\n",
			stats.RawSize, stats.SimSeconds*1e3, float64(stats.RawSize)/stats.SimSeconds/1e9,
			stats.HostSeconds*1e3)
		if stats.Rounds != nil && stats.Rounds.Groups > 0 {
			fmt.Printf("MRR: %.2f avg rounds, max %d\n", stats.Rounds.AvgRounds(), stats.Rounds.MaxRounds)
		}
	} else {
		fmt.Printf("%d bytes  host %.3f ms\n", stats.RawSize, stats.HostSeconds*1e3)
	}
	return nil
}

// catCmd streams (a range of) a container's decompressed contents to
// stdout through the parallel pipelined Reader — the serving path, as
// opposed to decompressCmd's whole-buffer engines.
func catCmd(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	workers := fs.Int("workers", 0, "concurrent block decodes (0 = GOMAXPROCS)")
	readahead := fs.Int("readahead", 0, "decoded blocks buffered ahead (0 = 2x workers)")
	offset := fs.Int64("offset", 0, "start at this decompressed byte offset")
	length := fs.Int64("length", -1, "stop after this many bytes (-1 = to the end)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cat needs <in>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := gompresso.NewReaderWith(f, gompresso.ReaderOptions{Workers: *workers, Readahead: *readahead})
	if err != nil {
		return err
	}
	defer r.Close()
	if *offset > 0 {
		if _, err := r.Seek(*offset, io.SeekStart); err != nil {
			return err
		}
	}
	var src io.Reader = r
	if *length >= 0 {
		src = io.LimitReader(r, *length)
	}
	_, err = io.Copy(os.Stdout, src)
	return err
}

func infoCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs <in>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	h, err := gompresso.Info(data)
	if err != nil {
		return err
	}
	fmt.Printf("variant      %v\n", h.Variant)
	fmt.Printf("DE mode      %v\n", h.DEMode)
	fmt.Printf("window       %d\n", h.Window)
	fmt.Printf("block size   %d\n", h.BlockSize)
	fmt.Printf("raw size     %d\n", h.RawSize)
	fmt.Printf("blocks       %d\n", h.NumBlocks)
	fmt.Printf("min match    %d\n", h.MinMatch)
	fmt.Printf("max match    %d\n", h.MaxMatch)
	if h.Variant == gompresso.VariantBit {
		fmt.Printf("CWL          %d\n", h.CWL)
		fmt.Printf("seqs/sub     %d\n", h.SeqsPerSub)
	}
	return nil
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	opts := compressFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify needs <in>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	o, err := opts()
	if err != nil {
		return err
	}
	comp, cs, err := gompresso.Compress(src, o)
	if err != nil {
		return err
	}
	strat := gompresso.MRR
	if o.DE != gompresso.DEOff {
		strat = gompresso.DE
	}
	for _, eng := range []struct {
		name string
		o    gompresso.DecompressOptions
	}{
		{"host", gompresso.DecompressOptions{Engine: gompresso.EngineHost}},
		{"device", gompresso.DecompressOptions{Engine: gompresso.EngineDevice, Strategy: strat}},
	} {
		out, _, err := gompresso.Decompress(comp, eng.o)
		if err != nil {
			return fmt.Errorf("%s engine: %w", eng.name, err)
		}
		if string(out) != string(src) {
			return fmt.Errorf("%s engine: roundtrip mismatch", eng.name)
		}
	}
	fmt.Printf("ok: %d bytes, ratio %.3f, verified on host and simulated device\n", cs.RawSize, cs.Ratio)
	return nil
}
