package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// buildDescription summarizes what binary is running: module version
// (when built from a tagged module), Go toolchain, and the VCS revision
// and dirty bit stamped by `go build`. Everything comes from
// runtime/debug.ReadBuildInfo, so it needs no ldflags plumbing and is
// accurate for any build, including `go run`.
func buildDescription() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "build info unavailable"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	rev, dirty := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				rev = s.Value[:12]
			} else {
				rev = s.Value
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	out := fmt.Sprintf("gompresso %s (%s)", version, bi.GoVersion)
	if rev != "" {
		out += fmt.Sprintf(" rev %s%s", rev, dirty)
	}
	return out
}

func versionCmd(args []string) error {
	fmt.Printf("%s %s/%s\n", buildDescription(), runtime.GOOS, runtime.GOARCH)
	if len(args) > 0 && args[0] == "-v" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprint(os.Stdout, bi)
		}
	}
	return nil
}
