package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"gompresso/internal/buildinfo"
)

// versionCmd prints the binary's identity. The same buildinfo feeds the
// serving daemon's build_info metric, so `gompresso version` and a
// scraped /metrics always agree on what is running.
func versionCmd(args []string) error {
	fmt.Printf("%s %s/%s\n", buildinfo.Get(), runtime.GOOS, runtime.GOARCH)
	if len(args) > 0 && args[0] == "-v" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprint(os.Stdout, bi)
		}
	}
	return nil
}
