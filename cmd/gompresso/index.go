package main

import (
	"flag"
	"fmt"
	"os"

	"gompresso"
	"gompresso/internal/deflate"
	"gompresso/internal/gzidx"
)

// indexCmd builds a seek-index sidecar for a foreign gzip/zlib file: one
// full decode captures block-boundary checkpoints, and the resulting
// .gzx beside the file (or at -o) lets the server and ReaderAt answer
// arbitrary decompressed ranges by decoding only the covering chunks.
func indexCmd(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	spacing := fs.Int64("spacing", 0, "decompressed bytes between checkpoints (0 = ~1 MiB default)")
	out := fs.String("o", "", "sidecar output path (default <in>"+gzidx.Ext+")")
	workers := fs.Int("workers", 0, "concurrent decode workers for the indexing pass (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("index needs <in>")
	}
	in := fs.Arg(0)
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	st, err := os.Stat(in)
	if err != nil {
		return err
	}
	var form deflate.Format
	switch gompresso.DetectFormat(data) {
	case gompresso.FormatGzip:
		form = deflate.FormatGzip
	case gompresso.FormatZlib:
		form = deflate.FormatZlib
	case gompresso.FormatGompresso:
		return fmt.Errorf("%s: native containers carry their own index (use compress -index)", in)
	default:
		return fmt.Errorf("%s: not a gzip or zlib stream", in)
	}
	idx, err := gzidx.Build(data, form, *spacing, deflate.Options{Workers: *workers})
	if err != nil {
		return err
	}
	enc, err := gzidx.Encode(idx, st.ModTime())
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = in + gzidx.Ext
	}
	if err := gzidx.WriteFileAtomic(dst, enc); err != nil {
		return err
	}
	fmt.Printf("%s: %d raw bytes, %d member(s), %d checkpoint(s) -> %s (%d bytes, %.2f%% of compressed)\n",
		in, idx.RawSize, idx.Members, idx.NumChunks(), dst, len(enc),
		100*float64(len(enc))/float64(len(data)))
	return nil
}
