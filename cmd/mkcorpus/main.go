// Command mkcorpus (re)generates the DEFLATE conformance corpus under
// testdata/deflate. The files are checked in; the conformance tests
// regenerate them in-process and fail if the checked-in bytes drift, so
// running this command is only needed when the corpus itself changes.
//
//	go run ./cmd/mkcorpus [-out testdata/deflate]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gompresso/internal/deflate/corpus"
)

func main() {
	out := flag.String("out", "testdata/deflate", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	files := corpus.Files()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%8d  %s\n", len(files[name]), path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkcorpus:", err)
	os.Exit(1)
}
