// Command gendata writes the reproduction's synthetic datasets to files.
//
// Usage:
//
//	gendata -kind wiki   -size 33554432 -seed 1 out.xml
//	gendata -kind matrix -size 33554432 -seed 1 out.mtx
//	gendata -kind nesting -families 4 -size 33554432 out.bin
//	gendata -kind random|zeros -size 1048576 out.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"gompresso/internal/datagen"
)

func main() {
	kind := flag.String("kind", "wiki", "dataset: wiki, matrix, nesting, random, zeros")
	size := flag.Int("size", 32<<20, "output size in bytes")
	seed := flag.Uint64("seed", 1, "generator seed")
	families := flag.Int("families", 1, "nesting: distinct repeated strings (depth = 32/families)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gendata [flags] <out>")
		os.Exit(2)
	}
	var data []byte
	switch *kind {
	case "wiki":
		data = datagen.WikiXML(*size, *seed)
	case "matrix":
		data = datagen.MatrixMarket(*size, *seed)
	case "nesting":
		data = datagen.Nesting(*size, *families, *seed)
	case "random":
		data = datagen.Random(*size, *seed)
	case "zeros":
		data = datagen.Zeros(*size)
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := os.WriteFile(flag.Arg(0), data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bytes of %s to %s\n", len(data), *kind, flag.Arg(0))
}
