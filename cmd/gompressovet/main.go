// Command gompressovet is the repository's multichecker: it runs the
// five custom analyzers from internal/analysis/passes over the module
// and exits nonzero on any unsuppressed finding. CI's lint job runs it
// next to `go vet` (scripts/lint.sh is the single local entry point).
//
// Usage:
//
//	gompressovet [-v] [-tests] [-vet] [patterns...]
//
// Patterns default to ./... and follow the go command's package
// pattern syntax ("./...", "./internal/server", full import paths).
// Intentional exceptions are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above. -v prints suppressed findings
// too, so exceptions stay auditable. -vet additionally runs `go vet`
// (copylocks, lostcancel, unusedresult, and the rest of the curated
// standard passes) and merges its exit status, making this binary a
// one-shot lint gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"gompresso/internal/analysis"
	"gompresso/internal/analysis/passes"
)

func main() {
	verbose := flag.Bool("v", false, "print suppressed findings too")
	withTests := flag.Bool("tests", false, "analyze in-package _test.go files as well")
	withVet := flag.Bool("vet", false, "also run `go vet` on the same patterns")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range passes.All() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	failed := false
	if *withVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	findings, err := run(dir, patterns, *withTests)
	if err != nil {
		fatal(err)
	}
	analysis.Write(os.Stdout, findings, *verbose)
	if open := analysis.Unsuppressed(findings); len(open) > 0 {
		fmt.Fprintf(os.Stderr, "gompressovet: %d finding(s)\n", len(open))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func run(dir string, patterns []string, withTests bool) ([]analysis.Finding, error) {
	modPath, err := analysis.ModulePath(dir)
	if err != nil {
		return nil, err
	}
	l := analysis.NewLoader(analysis.ModuleLocal(modPath, dir))
	l.IncludeTests = withTests
	paths, err := analysis.Match(dir, modPath, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.Run(pkgs, passes.All(), l.Fset)
}

// moduleRoot finds the enclosing module directory, so the tool works
// from any subdirectory, like go vet.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("gompressovet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gompressovet:", err)
	os.Exit(1)
}
