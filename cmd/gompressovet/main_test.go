package main

import (
	"path/filepath"
	"testing"

	"gompresso/internal/analysis"
)

// TestRunOnePackage drives the multichecker's run() over one small real
// package from the module root discovered the way main() discovers it.
func TestRunOnePackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the stdlib source importer; skipped in -short")
	}
	dir, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := filepath.Glob(filepath.Join(dir, "go.mod")); statErr != nil {
		t.Fatal(statErr)
	}
	findings, err := run(dir, []string{"./internal/perf"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if open := analysis.Unsuppressed(findings); len(open) > 0 {
		for _, f := range open {
			t.Errorf("unexpected finding: %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}

	if _, err := run(dir, []string{"./no/such/dir"}, false); err == nil {
		t.Error("run on a nonexistent package must fail")
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("one\ntwo"); got != "one" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("only"); got != "only" {
		t.Errorf("firstLine = %q", got)
	}
}

func TestLastSlash(t *testing.T) {
	if got := lastSlash("/a/b"); got != 2 {
		t.Errorf("lastSlash(/a/b) = %d", got)
	}
	if got := lastSlash("plain"); got != -1 {
		t.Errorf("lastSlash(plain) = %d", got)
	}
}
