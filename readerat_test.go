package gompresso_test

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// ReaderAt must serve any byte range of the decompressed stream, with and
// without an index trailer, byte-identical to Decompress output.
func TestReaderAt(t *testing.T) {
	const blockSize = 64 << 10
	src := datagen.WikiXML(1<<20, 31)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		for _, withIndex := range []bool{false, true} {
			comp, _, err := gompresso.Compress(src, gompresso.Options{
				Variant: variant, BlockSize: blockSize, Index: withIndex,
			})
			if err != nil {
				t.Fatal(err)
			}
			ra, err := gompresso.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
			if err != nil {
				t.Fatalf("variant=%v index=%v: %v", variant, withIndex, err)
			}
			if ra.Size() != int64(len(src)) {
				t.Fatalf("Size() = %d, want %d", ra.Size(), len(src))
			}
			ranges := []struct{ off, n int }{
				{0, 1}, {0, len(src)}, {5, 100},
				{blockSize - 1, 2}, {blockSize, blockSize},
				{blockSize + 7, 3 * blockSize}, {2*blockSize + 11, blockSize - 22},
				{len(src) - 1, 1},
			}
			for _, rg := range ranges {
				p := make([]byte, rg.n)
				n, err := ra.ReadAt(p, int64(rg.off))
				if err != nil {
					t.Fatalf("variant=%v index=%v ReadAt(%d,%d): %v", variant, withIndex, rg.off, rg.n, err)
				}
				if n != rg.n || !bytes.Equal(p[:n], src[rg.off:rg.off+n]) {
					t.Fatalf("variant=%v index=%v ReadAt(%d,%d): %d bytes, mismatch", variant, withIndex, rg.off, rg.n, n)
				}
			}
			// Ranges past the end: partial fill + io.EOF, or 0 + io.EOF.
			p := make([]byte, 200)
			n, err := ra.ReadAt(p, int64(len(src)-100))
			if n != 100 || err != io.EOF || !bytes.Equal(p[:100], src[len(src)-100:]) {
				t.Fatalf("EOF range: n=%d err=%v", n, err)
			}
			if n, err := ra.ReadAt(p, int64(len(src))); n != 0 || err != io.EOF {
				t.Fatalf("read at end: n=%d err=%v", n, err)
			}
			if n, err := ra.ReadAt(nil, 0); n != 0 || err != nil {
				t.Fatalf("empty read: n=%d err=%v", n, err)
			}
			if _, err := ra.ReadAt(p, -1); err == nil {
				t.Fatal("negative offset accepted")
			}
		}
	}
}

// A ReaderAt must serve many goroutines concurrently — the range-server
// shape. Run with -race to validate the pooled buffers and scratch.
func TestReaderAtConcurrent(t *testing.T) {
	const blockSize = 32 << 10
	src := datagen.WikiXML(1<<20, 37)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: blockSize, Index: true})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := gompresso.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := make([]byte, 4*blockSize)
			for i := 0; i < 40; i++ {
				off := rng.Intn(len(src))
				n := 1 + rng.Intn(len(p)-1)
				got, err := ra.ReadAt(p[:n], int64(off))
				want := len(src) - off
				if want > n {
					want = n
				}
				if got != want {
					t.Errorf("ReadAt(%d,%d) = %d bytes, want %d (err %v)", off, n, got, want, err)
					return
				}
				if err != nil && err != io.EOF {
					t.Errorf("ReadAt(%d,%d): %v", off, n, err)
					return
				}
				if !bytes.Equal(p[:got], src[off:off+got]) {
					t.Errorf("ReadAt(%d,%d): content mismatch", off, n)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// io.SectionReader over a ReaderAt gives an independent sequential view —
// the documented way to stream a sub-range.
func TestReaderAtSectionReader(t *testing.T) {
	src := datagen.WikiXML(512<<10, 41)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := gompresso.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatal(err)
	}
	sect := io.NewSectionReader(ra, 70_000, 100_000)
	out, err := io.ReadAll(sect)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src[70_000:170_000]) {
		t.Fatal("section read mismatch")
	}
}

// A corrupt block must fail the exact ReadAt calls that touch it, while
// ranges over healthy blocks keep working.
func TestReaderAtCorruptBlock(t *testing.T) {
	const blockSize = 64 << 10
	src := datagen.WikiXML(512<<10, 43)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	mut, ok := corruptBlock(t, comp, k)
	if !ok {
		t.Skip("block layout does not allow the mutation")
	}
	ra, err := gompresso.NewReaderAt(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, blockSize)
	if _, err := ra.ReadAt(p, 0); err != nil {
		t.Fatalf("healthy block 0: %v", err)
	}
	if !bytes.Equal(p, src[:blockSize]) {
		t.Fatal("healthy block 0: mismatch")
	}
	if _, err := ra.ReadAt(p, k*blockSize); err == nil {
		t.Fatal("corrupt block decoded without error")
	}
	// A spanning read reports the bytes decoded before the corrupt block.
	big := make([]byte, 3*blockSize)
	n, err := ra.ReadAt(big, blockSize)
	if err == nil {
		t.Fatal("spanning read over corrupt block succeeded")
	}
	if n != blockSize || !bytes.Equal(big[:n], src[blockSize:2*blockSize]) {
		t.Fatalf("spanning read: n=%d, want %d healthy bytes", n, blockSize)
	}
}
