package gompresso

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/parallel"
)

// Writer is the compression-side counterpart of Reader: a streaming
// compressor that cuts its input into independent blocks, compresses them
// concurrently on the shared worker pool, and emits a valid Gompresso
// container (header, block records in stream order, optional GPIX index
// trailer). Obtain one from Codec.NewWriter. The emitted container is
// byte-identical to what Codec.Compress would produce for the concatenated
// input.
//
// The pipeline mirrors the Reader's: Write/ReadFrom fill one raw block at
// a time and submit full blocks to a parallel.Ordered queue; encode tasks
// run on the shared pool, at most Workers concurrently; a drain goroutine
// receives finished records in submission order and writes them out. At
// most Readahead blocks may be finished-but-unwritten, so a stalled
// destination back-pressures Write and memory stays at
// O((Workers+Readahead) × BlockSize). With Workers=1 the Writer degrades
// to a synchronous encoder: no extra goroutines, each block compressed and
// written inline.
//
// The container header carries the total raw size and block count, which a
// streaming compressor only knows at Close. When the destination is an
// io.WriteSeeker (an *os.File, say) the Writer streams records directly
// after a placeholder header and backpatches the header at Close, keeping
// memory bounded. Otherwise compressed records spool in memory and the
// container is written at Close — the spool holds compressed bytes only,
// but very large streams should compress to a seekable destination.
//
// Writer implements io.WriteCloser and io.ReaderFrom (io.Copy streams
// source blocks straight into the block buffer). A Writer is not safe for
// concurrent use. Close must be called to finish the container; a Writer
// whose context is cancelled or that hit an error still releases its
// pipeline resources on Close.
type Writer struct {
	dst    io.Writer
	ws     io.WriteSeeker // non-nil: stream-and-backpatch mode
	wsBase int64          // container start offset within ws
	spool  bytes.Buffer   // non-seekable mode: compressed block records

	opt   core.Options  // normalized compression options
	pipe  core.Pipeline // normalized workers/readahead
	ctx   context.Context
	begin time.Time

	cur []byte // raw block being filled; cap is always opt.BlockSize
	rec []byte // sync mode: reusable encoded-record buffer

	// Parallel pipeline, nil until the first block completes:
	ord     *parallel.Ordered[writeResult]
	free    chan []byte   // recycled raw block buffers
	recs    sync.Pool     // recycled record buffers
	drained chan struct{} // drain goroutine exited
	failed  chan struct{} // closed by drain after setting derr
	derr    error         // drain-side error; read after failed or drained
	unwatch chan struct{} // stops the context watcher

	// Serialization state: owned by the drain goroutine in parallel mode
	// (until drained closes), by the calling goroutine otherwise.
	offsets  []int64 // container offset of each emitted record
	written  int64   // compressed bytes emitted after the header
	rawTotal uint64
	stats    CompressStats

	headerDone bool
	err        error // sticky Writer-side error
	closed     bool
	closeErr   error
}

// writeResult is one block's trip through the parallel pipeline: its
// encoded record, or the error that poisons the stream. A result with a
// flush channel is a Flush barrier marker.
type writeResult struct {
	rec    []byte
	rawLen int
	bs     core.BlockStats
	err    error
	flush  chan struct{}
}

var errWriterClosed = errors.New("gompresso: writer closed")

func newWriter(ctx context.Context, w io.Writer, opt core.Options, pipe core.Pipeline) *Writer {
	wr := &Writer{dst: w, opt: opt, pipe: pipe, ctx: ctx, begin: time.Now()}
	if ws, ok := w.(io.WriteSeeker); ok {
		// Probe: a pipe or terminal satisfies the interface but cannot
		// actually seek; fall back to the spool for those.
		if base, err := ws.Seek(0, io.SeekCurrent); err == nil {
			wr.ws, wr.wsBase = ws, base
		}
	}
	wr.cur = make([]byte, 0, opt.BlockSize)
	return wr
}

// check returns the error that should abort the current call, making it
// sticky: a previous failure, a closed Writer, a pipeline (drain-side)
// failure, or a cancelled context.
func (w *Writer) check() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = errWriterClosed
		return w.err
	}
	if w.failed != nil {
		select {
		case <-w.failed:
			w.err = w.derr
			return w.err
		default:
		}
	}
	if err := w.ctx.Err(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Write implements io.Writer, buffering p into block-size chunks and
// submitting each completed block to the compression pipeline.
func (w *Writer) Write(p []byte) (int, error) {
	if err := w.check(); err != nil {
		return 0, err
	}
	var n int
	for len(p) > 0 {
		if len(w.cur) == cap(w.cur) {
			if err := w.submit(); err != nil {
				w.err = err
				return n, err
			}
		}
		c := copy(w.cur[len(w.cur):cap(w.cur)], p)
		w.cur = w.cur[:len(w.cur)+c]
		p = p[c:]
		n += c
	}
	return n, nil
}

// ReadFrom implements io.ReaderFrom, reading r directly into the Writer's
// block buffers (io.Copy selects it automatically, so streaming a file
// into the Writer performs no intermediate copies).
func (w *Writer) ReadFrom(r io.Reader) (int64, error) {
	if err := w.check(); err != nil {
		return 0, err
	}
	var total int64
	for {
		if len(w.cur) == cap(w.cur) {
			if err := w.submit(); err != nil {
				w.err = err
				return total, err
			}
		}
		n, err := r.Read(w.cur[len(w.cur):cap(w.cur)])
		w.cur = w.cur[:len(w.cur)+n]
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		if err := w.check(); err != nil {
			return total, err
		}
	}
}

// submit hands the current (full, or final partial) block to the encoder
// and readies a fresh buffer. Workers=1 encodes and emits inline.
func (w *Writer) submit() error {
	if len(w.cur) == 0 {
		return nil
	}
	if err := w.ensureHeader(); err != nil {
		return err
	}
	if w.pipe.Workers <= 1 {
		return w.encodeSync()
	}
	w.ensurePipeline()
	raw := w.cur
	if !w.ord.Submit(func() writeResult { return w.encode(raw) }) {
		// Only the context watcher stops the queue.
		if err := w.ctx.Err(); err != nil {
			return err
		}
		return errWriterClosed
	}
	// Never blocks indefinitely: every in-flight encode task deposits its
	// raw buffer here when it finishes, and tasks never block.
	w.cur = (<-w.free)[:0]
	if cap(w.cur) < w.opt.BlockSize {
		w.cur = make([]byte, 0, w.opt.BlockSize)
	}
	return nil
}

// encodeSync is the Workers=1 path: compress and emit the block inline,
// reusing one record buffer.
func (w *Writer) encodeSync() error {
	if err := w.ctx.Err(); err != nil {
		return err
	}
	rec, bs, err := core.EncodeBlockRecord(w.rec[:0], w.cur, w.opt)
	w.rec = rec
	if err != nil {
		return fmt.Errorf("gompresso: block %d: %w", len(w.offsets), err)
	}
	if err := w.emit(rec, len(w.cur), bs); err != nil {
		return err
	}
	w.cur = w.cur[:0]
	return nil
}

// ensurePipeline lazily starts the parallel machinery: the ordered queue,
// the raw-buffer free list, the drain goroutine, and (for cancellable
// contexts) a watcher that stops the queue on cancellation.
func (w *Writer) ensurePipeline() {
	if w.ord != nil {
		return
	}
	ra := w.pipe.Readahead
	w.ord = parallel.NewOrdered[writeResult](w.pipe.Workers, ra)
	// Raw buffers in flight ≤ readahead (the queue's undelivered bound)
	// plus the one being filled; the free list's capacity covers all of
	// them so encode-side deposits never block.
	w.free = make(chan []byte, ra+1)
	for i := 0; i < ra; i++ {
		w.free <- nil // grown to BlockSize on first use
	}
	w.recs.New = func() any { return new([]byte) }
	w.drained = make(chan struct{})
	w.failed = make(chan struct{})
	if w.ctx.Done() != nil {
		w.unwatch = make(chan struct{})
		go func() {
			select {
			case <-w.ctx.Done():
				w.ord.Stop()
			case <-w.unwatch:
			}
		}()
	}
	go w.drain()
}

// encode runs on the worker pool: it compresses one raw block into a
// pooled record buffer and recycles the raw buffer as soon as its bytes
// are consumed.
func (w *Writer) encode(raw []byte) writeResult {
	res := writeResult{rawLen: len(raw)}
	if err := w.ctx.Err(); err != nil {
		res.err = err
	} else {
		rp := w.recs.Get().(*[]byte)
		rec, bs, err := core.EncodeBlockRecord((*rp)[:0], raw, w.opt)
		*rp = rec
		res.rec, res.bs, res.err = rec, bs, err
	}
	w.free <- raw
	return res
}

// drain is the pipeline's ordered consumer: it writes finished records to
// the destination in submission order, releases Flush barriers, and after
// the first failure keeps consuming (recycling buffers) so producers are
// never stranded on back-pressure.
func (w *Writer) drain() {
	defer close(w.drained)
	for {
		res, ok := w.ord.Next()
		if !ok {
			return
		}
		if res.flush != nil {
			close(res.flush)
			continue
		}
		if w.derr == nil {
			if res.err != nil {
				w.fail(fmt.Errorf("gompresso: block %d: %w", len(w.offsets), res.err))
			} else if err := w.emit(res.rec, res.rawLen, res.bs); err != nil {
				w.fail(err)
			}
		}
		if res.rec != nil {
			rec := res.rec
			w.recs.Put(&rec)
		}
	}
}

// fail records the drain-side error and signals producers. Only the first
// error is kept.
func (w *Writer) fail(err error) {
	if w.derr == nil {
		w.derr = err
		close(w.failed)
	}
}

// emit writes one encoded block record to the destination (directly in
// seekable mode, to the spool otherwise) and updates the container
// accounting shared with Close.
func (w *Writer) emit(rec []byte, rawLen int, bs core.BlockStats) error {
	w.offsets = append(w.offsets, int64(format.HeaderSize)+w.written)
	var err error
	if w.ws != nil {
		_, err = w.ws.Write(rec)
	} else {
		_, err = w.spool.Write(rec)
	}
	if err != nil {
		return fmt.Errorf("gompresso: writing block %d: %w", len(w.offsets)-1, err)
	}
	w.written += int64(len(rec))
	w.rawTotal += uint64(rawLen)
	w.stats.Accumulate(bs)
	return nil
}

// ensureHeader emits the placeholder header in seekable mode (backpatched
// with the final totals at Close). In spool mode the header is written at
// Close, when its contents are known.
func (w *Writer) ensureHeader() error {
	if w.headerDone || w.ws == nil {
		w.headerDone = true
		return nil
	}
	w.headerDone = true
	hb := format.AppendHeader(nil, w.opt.Header(0, 0))
	if _, err := w.ws.Write(hb); err != nil {
		return fmt.Errorf("gompresso: writing header: %w", err)
	}
	return nil
}

// Flush blocks until every block completed so far has been compressed and
// written out (to the destination in seekable mode, to the spool
// otherwise). Flush never ends a block early: the container format
// requires every non-final block to be exactly BlockSize raw bytes, so
// bytes short of a block boundary stay buffered until more input arrives
// or Close seals the final block — data becomes durable at block
// granularity.
func (w *Writer) Flush() error {
	if err := w.check(); err != nil {
		return err
	}
	// A block that filled exactly to the boundary is completed input: it
	// normally rides along with the next Write, but Flush must push it.
	if len(w.cur) == cap(w.cur) {
		if err := w.submit(); err != nil {
			w.err = err
			return err
		}
	}
	if w.ord == nil {
		return nil // sync mode emits eagerly; nothing in flight
	}
	ch := make(chan struct{})
	if !w.ord.Submit(func() writeResult { return writeResult{flush: ch} }) {
		if err := w.ctx.Err(); err != nil {
			w.err = err
			return err
		}
		w.err = errWriterClosed
		return w.err
	}
	<-ch
	return w.check()
}

// Close seals the container: it compresses the final partial block, waits
// for the pipeline to drain, writes the optional index trailer, and
// finalizes the header (backpatching it in seekable mode; writing header,
// spooled records, and trailer in spool mode). Close does not close the
// underlying writer. After Close, Stats reports the compression totals.
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	w.closeErr = w.finalize()
	if w.err == nil && w.closeErr != nil {
		w.err = w.closeErr
	}
	return w.closeErr
}

func (w *Writer) finalize() error {
	err := w.err
	if err == nil && len(w.cur) > 0 {
		err = w.submit()
	}
	if w.ord != nil {
		w.ord.Finish()
		<-w.drained
		if w.unwatch != nil {
			close(w.unwatch)
		}
		if err == nil {
			err = w.derr // visible: drained closed after the last write
		}
	}
	if err == nil {
		err = w.ctx.Err()
	}
	if err != nil {
		return err
	}
	return w.seal()
}

// seal writes the trailer and the final header once every record is out.
func (w *Writer) seal() error {
	if err := w.ensureHeader(); err != nil {
		return err
	}
	nb := uint32(len(w.offsets))
	w.offsets = append(w.offsets, int64(format.HeaderSize)+w.written)
	var trailer []byte
	if w.opt.Index {
		trailer = format.AppendIndex(nil, w.offsets)
	}
	hb := format.AppendHeader(nil, w.opt.Header(w.rawTotal, nb))
	if w.ws != nil {
		if len(trailer) > 0 {
			if _, err := w.ws.Write(trailer); err != nil {
				return fmt.Errorf("gompresso: writing index trailer: %w", err)
			}
		}
		end := w.wsBase + int64(format.HeaderSize) + w.written + int64(len(trailer))
		if _, err := w.ws.Seek(w.wsBase, io.SeekStart); err != nil {
			return fmt.Errorf("gompresso: sealing header: %w", err)
		}
		if _, err := w.ws.Write(hb); err != nil {
			return fmt.Errorf("gompresso: sealing header: %w", err)
		}
		// An O_APPEND file satisfies io.WriteSeeker and accepts the seek,
		// but the kernel redirects every write to end-of-file — the
		// backpatch lands after the trailer and the container keeps its
		// placeholder header. Detect the ignored seek by position and fail
		// loudly instead of sealing a corrupt file.
		if pos, err := w.ws.Seek(0, io.SeekCurrent); err == nil && pos != w.wsBase+int64(format.HeaderSize) {
			return fmt.Errorf("gompresso: destination ignored header backpatch (append-mode file?)")
		}
		if _, err := w.ws.Seek(end, io.SeekStart); err != nil {
			return fmt.Errorf("gompresso: sealing header: %w", err)
		}
	} else {
		if _, err := w.dst.Write(hb); err != nil {
			return fmt.Errorf("gompresso: writing header: %w", err)
		}
		if w.spool.Len() > 0 {
			if _, err := w.spool.WriteTo(w.dst); err != nil {
				return fmt.Errorf("gompresso: writing blocks: %w", err)
			}
		}
		if len(trailer) > 0 {
			if _, err := w.dst.Write(trailer); err != nil {
				return fmt.Errorf("gompresso: writing index trailer: %w", err)
			}
		}
	}
	w.stats.RawSize = int64(w.rawTotal)
	w.stats.Blocks = int(nb)
	w.stats.CompSize = int64(format.HeaderSize) + w.written + int64(len(trailer))
	w.stats.Seconds = time.Since(w.begin).Seconds()
	if w.stats.CompSize > 0 {
		w.stats.Ratio = float64(w.stats.RawSize) / float64(w.stats.CompSize)
	}
	if w.stats.Seconds > 0 {
		w.stats.Speed = float64(w.stats.RawSize) / w.stats.Seconds
	}
	return nil
}

// Stats reports the compression totals. Valid after a successful Close.
func (w *Writer) Stats() *CompressStats {
	s := w.stats
	return &s
}
